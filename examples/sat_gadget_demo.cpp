// Walk-through of the Section 9 hardness gadget (Figure 2).
//
// Takes the paper's example formula
//   (¬s ∨ t ∨ u) ∧ (¬s ∨ ¬t ∨ u) ∧ (s ∨ ¬t ∨ ¬u),
// finds a *nice fork-tripath* of q2 = R(x,u | x,y) R(u,y | x,z), assembles
// the database D[phi], and verifies Lemma 9.2 on it: phi is satisfiable
// iff some repair of D[phi] falsifies q2. The certain-answer side runs
// through cqa::Service with the exact exhaustive backend forced; when phi
// is satisfiable the report's witness is the falsifying repair the lemma
// promises.

#include <cstdio>

#include "api/service.h"
#include "reduction/sat_reduction.h"
#include "sat/cdcl.h"
#include "sat/gen.h"
#include "tripath/search.h"

int main() {
  using namespace cqa;

  Service service;
  StatusOr<CompiledQuery> q2 = service.Compile(
      "R(x, u | x, y) R(u, y | x, z)", CompileOptions{"exhaustive"});
  if (!q2.ok()) {
    std::fprintf(stderr, "%s\n", q2.status().ToString().c_str());
    return 1;
  }
  std::printf("query q2 = %s  (%s)\n", q2->text().c_str(),
              ToString(q2->classification().query_class).c_str());

  // Step 1: a nice fork-tripath of q2 (the Figure 1c normal form).
  auto nice = FindNiceForkTripath(q2->query());
  if (!nice) {
    std::fprintf(stderr, "no nice fork-tripath found — unexpected for q2\n");
    return 1;
  }
  std::printf("\nnice fork-tripath Theta (%zu facts):\n%s",
              nice->tripath.db.NumFacts(),
              nice->tripath.ToString().c_str());
  const auto& els = nice->tripath.db.elements();
  std::printf("niceness witnesses: x=%s y=%s z=%s | u=%s v=%s w=%s\n",
              els.Name(nice->validation.x).c_str(),
              els.Name(nice->validation.y).c_str(),
              els.Name(nice->validation.z).c_str(),
              els.Name(nice->validation.u).c_str(),
              els.Name(nice->validation.v).c_str(),
              els.Name(nice->validation.w).c_str());

  // Step 2: the Figure 2 formula.
  CnfFormula phi = Figure2Formula();
  std::printf("\nphi = %s\n", phi.ToString().c_str());
  SatResult sat = SolveCdcl(phi);
  std::printf("DPLL says: %s\n",
              sat.satisfiable ? "satisfiable" : "unsatisfiable");

  // Step 3: assemble D[phi] — one renamed copy of Theta per literal
  // occurrence, clause blocks shared through the root key, occurrence
  // copies chained through leaf keys, singleton blocks padded.
  SatGadget gadget = BuildSatGadget(q2->query(), *nice, phi);
  std::printf("\nD[phi]: %zu facts in %zu blocks (%zu padding facts)\n",
              gadget.db.NumFacts(), gadget.db.blocks().size(),
              gadget.num_padding_facts);
  std::printf("repairs: %.3g\n", gadget.db.CountRepairs());

  // Step 4: Lemma 9.2, answered through the facade.
  StatusOr<SolveReport> report = service.Solve(*q2, gadget.db);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("certain(q2) on D[phi]: %s\n",
              report->certain ? "yes" : "no");
  if (report->witness.has_value()) {
    Status checked =
        VerifyWitness(q2->query(), gadget.db, *report->witness);
    std::printf("falsifying repair witness (%zu facts): %s\n",
                report->witness->Facts().size(),
                checked.ToString().c_str());
  }
  bool lemma = (sat.satisfiable == !report->certain);
  std::printf("Lemma 9.2 (phi sat <=> D[phi] not certain): %s\n",
              lemma ? "verified" : "VIOLATED");
  return lemma ? 0 : 1;
}
