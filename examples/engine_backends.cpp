// engine_backends: tour of the engine layer through the Service facade.
//
//   ./build/engine_backends ["query"]
//
// Classifies the query, shows which backend the dichotomy dispatches to,
// runs every registered backend that supports the query on one random
// instance (forcing each via CompileOptions::forced_backend — backends
// that cannot answer the query surface a CAPABILITY_MISMATCH status), and
// finishes with a SolveBatch throughput measurement.

#include <cstdio>
#include <string>
#include <vector>

#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

int main(int argc, char** argv) {
  using namespace cqa;
  const char* text = argc > 1 ? argv[1] : "R(x | y, z) R(z | x, y)";

  Service service;
  StatusOr<CompiledQuery> q = service.Compile(text);
  if (!q.ok()) {
    std::fprintf(stderr, "error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  std::printf("query:     %s\n", q->text().c_str());
  std::printf("class:     %s\n",
              ToString(q->classification().query_class).c_str());
  std::printf("dispatch:  %s (backend \"%s\")\n\n",
              ToString(q->algorithm()).c_str(),
              std::string(q->backend_name()).c_str());

  Rng rng(2024);
  InstanceParams params;
  params.num_facts = 24;
  params.domain_size = 4;
  Database db = RandomInstance(q->query(), params, &rng);
  std::printf("one random instance (%zu facts, %zu blocks):\n",
              db.NumFacts(), db.blocks().size());
  for (const std::string& name : Service::BackendNames()) {
    CompileOptions forced;
    forced.forced_backend = name;
    StatusOr<CompiledQuery> fq = service.Compile(text, forced);
    if (!fq.ok()) {
      std::printf("  %-15s (%s)\n", name.c_str(),
                  std::string(ToString(fq.status().code())).c_str());
      continue;
    }
    StatusOr<SolveReport> report = service.Solve(*fq, db);
    if (!report.ok()) {
      std::printf("  %-15s (%s)\n", name.c_str(),
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("  %-15s -> %s%s\n", name.c_str(),
                report->certain ? "certain" : "not certain",
                report->witness.has_value() ? "  [witness attached]" : "");
  }

  std::vector<Database> batch_dbs;
  for (int i = 0; i < 64; ++i) {
    batch_dbs.push_back(RandomInstance(q->query(), params, &rng));
  }
  BatchStats stats;
  std::vector<StatusOr<SolveReport>> reports =
      service.SolveBatch(*q, batch_dbs, &stats);
  std::size_t certain = 0;
  std::size_t failed = 0;
  for (const StatusOr<SolveReport>& r : reports) {
    if (!r.ok()) {
      ++failed;
    } else if (r->certain) {
      ++certain;
    }
  }
  std::printf(
      "\nbatch: %llu databases on %u threads in %.3fs (%.0f queries/sec), "
      "%zu certain, %zu failed\n",
      static_cast<unsigned long long>(stats.queries), stats.threads_used,
      stats.wall_seconds, stats.queries_per_sec, certain, failed);
  return 0;
}
