// engine_backends: tour of the engine layer.
//
//   ./build/engine_backends ["query"]
//
// Classifies the query, shows which backend the dichotomy dispatches to,
// runs every registered backend that supports the query on one random
// instance, and finishes with a BatchSolver throughput measurement.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "base/rng.h"
#include "data/prepared.h"
#include "engine/batch.h"
#include "engine/registry.h"
#include "engine/solver.h"
#include "gen/workloads.h"
#include "query/query.h"

int main(int argc, char** argv) {
  using namespace cqa;
  const char* text = argc > 1 ? argv[1] : "R(x | y, z) R(z | x, y)";
  try {
    auto q = ParseQuery(text);
    CertainSolver solver(q);
    std::printf("query:     %s\n", q.ToString().c_str());
    std::printf("class:     %s\n",
                ToString(solver.classification().query_class).c_str());
    std::printf("dispatch:  %s (backend \"%s\")\n\n",
                ToString(solver.backend().algorithm()).c_str(),
                std::string(solver.backend().name()).c_str());

    Rng rng(2024);
    InstanceParams params;
    params.num_facts = 24;
    params.domain_size = 4;
    Database db = RandomInstance(q, params, &rng);
    PreparedDatabase pdb(db);
    std::printf("one random instance (%zu facts, %zu blocks):\n",
                db.NumFacts(), pdb.blocks().size());
    for (const std::string& name : BackendRegistry::Global().Names()) {
      auto backend = BackendRegistry::Global().Create(name);
      if (!backend->Prepare(q)) {
        std::printf("  %-15s (not applicable)\n", name.c_str());
        continue;
      }
      std::printf("  %-15s -> %s\n", name.c_str(),
                  backend->Solve(pdb) ? "certain" : "not certain");
    }

    std::vector<Database> batch_dbs;
    for (int i = 0; i < 64; ++i) {
      batch_dbs.push_back(RandomInstance(q, params, &rng));
    }
    BatchSolver batch(solver);
    BatchStats stats;
    std::vector<SolverAnswer> answers = batch.SolveAll(batch_dbs, &stats);
    std::size_t certain = 0;
    for (const SolverAnswer& a : answers) certain += a.certain ? 1 : 0;
    std::printf(
        "\nbatch: %llu databases on %u threads in %.3fs (%.0f queries/sec), "
        "%zu certain\n",
        static_cast<unsigned long long>(stats.queries), stats.threads_used,
        stats.wall_seconds, stats.queries_per_sec, certain);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
