// cqa_solve: command-line certain-answer solver over a facts file.
//
//   ./build/examples/cqa_solve "R(x | y) R(y | z)" facts.txt
//
// The facts file has one fact per line: relation name followed by
// whitespace-separated elements, e.g.
//   R a b
//   R b c
//   # comments and blank lines are ignored
// The arity/key split comes from the query's schema. With no facts file, a
// demo instance is generated from the query itself.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/sampling.h"
#include "base/rng.h"
#include "classify/solver.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace {

cqa::Database LoadFacts(const cqa::ConjunctiveQuery& q, const char* path) {
  cqa::Database db(q.schema());
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string rel_name;
    if (!(tokens >> rel_name) || rel_name[0] == '#') continue;
    cqa::RelationId rel = db.schema().Find(rel_name);
    if (rel == cqa::Schema::kNotFound) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown relation " + rel_name);
    }
    std::vector<std::string> elements;
    std::string token;
    while (tokens >> token) elements.push_back(token);
    if (elements.size() != db.schema().Relation(rel).arity) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": wrong arity for " + rel_name);
    }
    db.AddFactNamed(rel, elements);
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqa;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s \"<query>\" [facts.txt]\n"
                 "example: %s \"R(x | y) R(y | z)\" db.txt\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    ConjunctiveQuery q = ParseQuery(argv[1]);
    CertainSolver solver(q);
    std::printf("query: %s\n", q.ToString().c_str());
    std::printf("classification: %s (%s)\n",
                ToString(solver.classification().query_class).c_str(),
                ToString(solver.classification().complexity).c_str());

    Database db(q.schema());
    if (argc >= 3) {
      db = LoadFacts(q, argv[2]);
    } else {
      std::printf("(no facts file: generating a demo instance)\n");
      Rng rng(1);
      InstanceParams params;
      params.num_facts = 20;
      params.domain_size = 4;
      db = RandomInstance(q, params, &rng);
    }
    std::printf("database: %zu facts, %zu blocks, %.3g repairs\n",
                db.NumFacts(), db.blocks().size(), db.CountRepairs());

    SolverAnswer answer = solver.Solve(db);
    std::printf("certain(q): %s   [algorithm: %s]\n",
                answer.certain ? "YES" : "NO",
                ToString(answer.algorithm).c_str());

    // Context: how often does a random repair satisfy q?
    SamplingResult sample = SampleRepairs(q, db, 200, 42);
    std::printf("random-repair satisfaction rate: %.1f%% (%llu samples)\n",
                100.0 * sample.SatisfyingFraction(),
                static_cast<unsigned long long>(sample.samples));
    return answer.certain ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
