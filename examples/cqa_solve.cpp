// cqa_solve: command-line certain-answer solver over a facts file, built
// on the cqa::Service facade.
//
//   ./build/cqa_solve "R(x | y) R(y | z)" facts.txt
//
// The facts file has one fact per line: relation name followed by
// whitespace-separated elements, e.g.
//   R a b
//   R b c
//   # comments and blank lines are ignored
// The arity/key split comes from the query's schema. With no facts file, a
// demo instance is generated from the query itself.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "algo/sampling.h"
#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace {

/// Loads facts, reporting malformed lines as a Status instead of throwing.
cqa::StatusOr<cqa::Database> LoadFacts(const cqa::ConjunctiveQuery& q,
                                       const char* path) {
  cqa::Database db(q.schema());
  std::ifstream in(path);
  if (!in) {
    return cqa::Status(cqa::StatusCode::kNotFound,
                       std::string("cannot open ") + path);
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string rel_name;
    if (!(tokens >> rel_name) || rel_name[0] == '#') continue;
    cqa::RelationId rel = db.schema().Find(rel_name);
    if (rel == cqa::Schema::kNotFound) {
      return cqa::Status(cqa::StatusCode::kSchemaMismatch,
                         "line " + std::to_string(line_no) +
                             ": unknown relation " + rel_name);
    }
    std::vector<std::string> elements;
    std::string token;
    while (tokens >> token) elements.push_back(token);
    if (elements.size() != db.schema().Relation(rel).arity) {
      return cqa::Status(cqa::StatusCode::kSchemaMismatch,
                         "line " + std::to_string(line_no) +
                             ": wrong arity for " + rel_name);
    }
    db.AddFactNamed(rel, elements);
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cqa;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s \"<query>\" [facts.txt]\n"
                 "example: %s \"R(x | y) R(y | z)\" db.txt\n",
                 argv[0], argv[0]);
    return 2;
  }

  Service service;
  StatusOr<CompiledQuery> q = service.Compile(argv[1]);
  if (!q.ok()) {
    std::fprintf(stderr, "error: %s\n", q.status().ToString().c_str());
    return 2;
  }
  std::printf("query: %s\n", q->text().c_str());
  std::printf("classification: %s (%s)\n",
              ToString(q->classification().query_class).c_str(),
              ToString(q->classification().complexity).c_str());

  Database db(q->query().schema());
  if (argc >= 3) {
    StatusOr<Database> loaded = LoadFacts(q->query(), argv[2]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    db = std::move(loaded).value();
  } else {
    std::printf("(no facts file: generating a demo instance)\n");
    Rng rng(1);
    InstanceParams params;
    params.num_facts = 20;
    params.domain_size = 4;
    db = RandomInstance(q->query(), params, &rng);
  }
  std::printf("database: %zu facts, %zu blocks, %.3g repairs\n",
              db.NumFacts(), db.blocks().size(), db.CountRepairs());

  StatusOr<SolveReport> report = service.Solve(*q, db);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("certain(q): %s   [%s]\n",
              report->certain ? "YES" : "NO", report->Summary().c_str());

  // Context: how often does a random repair satisfy q?
  SamplingResult sample = SampleRepairs(q->query(), db, 200, 42);
  std::printf("random-repair satisfaction rate: %.1f%% (%llu samples)\n",
              100.0 * sample.SatisfyingFraction(),
              static_cast<unsigned long long>(sample.samples));
  return report->certain ? 0 : 1;
}
