// Data-integration scenario: the motivating use case from the paper's
// introduction. Two scraped sources disagree about an org chart; instead of
// arbitrarily cleaning the merged table, we keep all tuples and answer
// queries under certain-answer semantics — through the cqa::Service
// facade, whose reports explain non-certain answers with a falsifying
// repair.
//
// Schema: Emp(name | dept, manager)  —  name is the primary key.
// Boolean query ("is there an employee whose manager is recorded as an
// employee managed by someone in turn?"): q = Emp(x | d, y) Emp(y | e, z).

#include <cstdio>

#include "api/service.h"
#include "data/repair.h"
#include "query/eval.h"

int main() {
  using namespace cqa;

  Service service;

  // Self-join over the employee table: x's manager y is also an employee.
  // Force the exhaustive backend so non-certain reports carry a witness.
  StatusOr<CompiledQuery> q = service.Compile(
      "Emp(x | d, y) Emp(y | e, z)", CompileOptions{"exhaustive"});
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 2;
  }
  std::printf("query: %s\n", q->text().c_str());
  std::printf("classification: %s\n",
              ToString(q->classification().query_class).c_str());

  Database db(q->query().schema());
  // Source 1 (HR export).
  db.AddFactStr(0, "ana eng bob");
  db.AddFactStr(0, "bob eng carol");
  db.AddFactStr(0, "carol mgmt carol");
  // Source 2 (stale wiki scrape) disagrees on ana and bob.
  db.AddFactStr(0, "ana sales dave");
  db.AddFactStr(0, "bob eng dave");

  std::printf("merged, inconsistent table (%zu facts, %.0f repairs):\n%s",
              db.NumFacts(), db.CountRepairs(), db.ToString().c_str());

  StatusOr<SolveReport> a = service.Solve(*q, db);
  if (!a.ok()) {
    std::fprintf(stderr, "%s\n", a.status().ToString().c_str());
    return 2;
  }
  std::printf("certain(q): %s  (via %s)\n", a->certain ? "yes" : "no",
              ToString(a->algorithm).c_str());

  // Why: whichever tuple each key keeps, some manager chain exists —
  // unless a repair picks rows whose managers are all absent. Enumerate
  // the repairs to show what certain-answer semantics quantifies over.
  std::printf("\nper-repair evaluation:\n");
  int idx = 0;
  for (RepairIterator it(db); it.HasValue(); it.Next()) {
    Repair r = it.Current();
    std::printf("  repair %d:", idx++);
    for (FactId f : r.Facts()) {
      std::printf(" %s", db.FactToString(f).c_str());
    }
    std::printf("  ->  q %s\n",
                SatisfiesRepair(q->query(), db, r) ? "holds" : "fails");
  }

  // Adding a row whose manager is missing creates a falsifying repair —
  // and the report hands it to us instead of a bare "no".
  db.AddFactStr(0, "carol mgmt nobody");
  StatusOr<SolveReport> b = service.Solve(*q, db);
  if (!b.ok()) {
    std::fprintf(stderr, "%s\n", b.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "\nafter adding conflicting row Emp(carol | mgmt, nobody): "
      "certain(q) = %s\n",
      b->certain ? "yes" : "no");
  if (b->witness.has_value()) {
    std::printf("falsifying repair witness:");
    for (FactId f : b->witness->Facts()) {
      std::printf(" %s", db.FactToString(f).c_str());
    }
    std::printf("\n(checked: %s)\n",
                VerifyWitness(q->query(), db, *b->witness).ToString().c_str());
  }
  return 0;
}
