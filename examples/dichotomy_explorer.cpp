// Dichotomy explorer: classify any two-atom query from the command line.
//
//   ./build/dichotomy_explorer "R(x, u | x, y) R(u, y | x, z)"
//
// With no arguments, classifies the paper's whole catalog. Prints the
// class, the theorem it follows from, and — for 2way-determined queries —
// the tripath witness the decision rests on. Queries come in through
// Service::Compile, so malformed input is reported with line:column and a
// caret instead of an exception.

#include <cstdio>
#include <string>

#include "api/service.h"

namespace {

int Explore(cqa::Service& service, const std::string& text) {
  using namespace cqa;
  std::printf("----------------------------------------------------------\n");
  std::printf("query: %s\n", text.c_str());
  // allow_unresolved: the explorer reports the unresolved class rather
  // than refusing to classify.
  CompileOptions options;
  options.allow_unresolved = true;
  StatusOr<CompiledQuery> q = service.Compile(text, options);
  if (!q.ok()) {
    std::fprintf(stderr, "error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  const Classification& c = q->classification();
  std::printf("class: %s\n", ToString(c.query_class).c_str());
  std::printf("complexity: %s\n", ToString(c.complexity).c_str());
  std::printf("why: %s\n", c.explanation.c_str());
  std::printf("dispatch: %s (backend \"%s\")\n",
              ToString(q->algorithm()).c_str(),
              std::string(q->backend_name()).c_str());
  if (c.two_way_determined) {
    const TripathSearchResult& search = c.tripath_search;
    std::printf("tripath search: %llu candidates, %s\n",
                static_cast<unsigned long long>(search.candidates),
                search.exhausted ? "space exhausted" : "budget hit");
    if (search.HasFork()) {
      std::printf("fork-tripath witness:\n%s",
                  search.fork->tripath.ToString().c_str());
    } else if (search.HasTriangle()) {
      std::printf("triangle-tripath witness:\n%s",
                  search.triangle->tripath.ToString().c_str());
    } else {
      std::printf("no tripath found.\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* kCatalog[] = {
      "R(x, u | x, v) R(v, y | u, y)",  // q1
      "R(x, u | x, y) R(u, y | x, z)",  // q2
      "R(x | y) R(y | z)",              // q3
      "R(x, x | u, v) R(x, y | u, x)",  // q4
      "R(x | y, x) R(y | x, u)",        // q5
      "R(x | y, z) R(z | x, y)",        // q6
      "R(x | y) R(y | x)",
      "R(x | y) R(y | y)",
      "R1(x, u | x, v) R2(v, y | u, y)",
  };
  cqa::Service service;
  int rc = 0;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) rc |= Explore(service, argv[i]);
  } else {
    std::printf("(no query given: classifying the paper's catalog; pass "
                "a query string like \"R(x | y) R(y | z)\")\n");
    for (const char* text : kCatalog) rc |= Explore(service, text);
  }
  return rc;
}
