// Quickstart: the public API in one screen. Compile a query, register an
// inconsistent database, ask whether the query is certain, and inspect
// the report — including the falsifying-repair witness when it is not.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart

#include <cstdio>

#include "api/service.h"

int main() {
  using namespace cqa;

  Service service;

  // The paper's q3 = R(x | y) R(y | z): "some row points at a row that
  // points at another row". PTime by Theorem 6.1. Compile parses,
  // classifies, and binds the dichotomy's algorithm once; errors come
  // back as a typed Status, never an exception.
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  if (!q.ok()) {
    std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
    return 2;
  }
  std::printf("query: %s\n", q->text().c_str());
  std::printf("classification: %s\n",
              ToString(q->classification().query_class).c_str());
  std::printf("why: %s\n", q->classification().explanation.c_str());

  // An inconsistent database: key 'b' has two candidate tuples. Register
  // it once; the service prepares its indexes eagerly.
  Database db(q->query().schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");   // One candidate for key b ...
  db.AddFactStr(0, "b d");   // ... and another: a repair keeps exactly one.
  std::printf("database (%zu facts, %zu blocks, %.0f repairs):\n%s",
              db.NumFacts(), db.blocks().size(), db.CountRepairs(),
              db.ToString().c_str());
  if (Status s = service.RegisterDatabase("demo", std::move(db)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }

  StatusOr<SolveReport> report = service.Solve(*q, "demo");
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("certain(q): %s  (decided by: %s)\n",
              report->certain ? "yes" : "no",
              ToString(report->algorithm).c_str());

  // Both repairs satisfy q — R(a|b) joins with whichever tuple key b
  // keeps — so the answer is yes. Removing R(a|b)'s partner flips it,
  // and the report then carries a witness: a repair falsifying q.
  Database db2(q->query().schema());
  db2.AddFactStr(0, "a b");
  db2.AddFactStr(0, "b c");
  db2.AddFactStr(0, "a z");  // Now key 'a' can escape the join.
  // Unregistered databases can be solved ad hoc too. Force the
  // exhaustive backend, which can explain non-certain answers.
  StatusOr<CompiledQuery> q_explain =
      service.Compile("R(x | y) R(y | z)", CompileOptions{"exhaustive"});
  if (!q_explain.ok()) {
    std::fprintf(stderr, "%s\n", q_explain.status().ToString().c_str());
    return 2;
  }
  StatusOr<SolveReport> report2 = service.Solve(*q_explain, db2);
  if (!report2.ok()) {
    std::fprintf(stderr, "%s\n", report2.status().ToString().c_str());
    return 2;
  }
  std::printf("certain(q) on the second database: %s\n",
              report2->certain ? "yes" : "no");
  if (report2->witness.has_value()) {
    std::printf("falsifying repair:");
    for (FactId f : report2->witness->Facts()) {
      std::printf("  %s", db2.FactToString(f).c_str());
    }
    std::printf("\n");
    Status checked = VerifyWitness(q->query(), db2, *report2->witness);
    std::printf("witness verified: %s\n", checked.ToString().c_str());
  }
  return 0;
}
