// Quickstart: parse a query, build an inconsistent database, ask whether
// the query is certain, and see which algorithm the dichotomy picked.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "classify/solver.h"
#include "query/query.h"

int main() {
  using namespace cqa;

  // The paper's q3 = R(x | y) R(y | z): "some row points at a row that
  // points at another row". PTime by Theorem 6.1.
  ConjunctiveQuery q = ParseQuery("R(x | y) R(y | z)");
  std::printf("query: %s\n", q.ToString().c_str());

  // An inconsistent database: key 'b' has two candidate tuples.
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");   // One candidate for key b ...
  db.AddFactStr(0, "b d");   // ... and another: a repair keeps exactly one.
  std::printf("database (%zu facts, %zu blocks, %.0f repairs):\n%s",
              db.NumFacts(), db.blocks().size(), db.CountRepairs(),
              db.ToString().c_str());

  // Classify once, then answer certain(q) per database.
  CertainSolver solver(q);
  std::printf("classification: %s\n",
              ToString(solver.classification().query_class).c_str());
  std::printf("why: %s\n", solver.classification().explanation.c_str());

  SolverAnswer answer = solver.Solve(db);
  std::printf("certain(q): %s  (decided by: %s)\n",
              answer.certain ? "yes" : "no",
              ToString(answer.algorithm).c_str());

  // Both repairs satisfy q — R(a|b) joins with whichever tuple key b
  // keeps — so the answer is yes. Removing R(a|b)'s partner flips it:
  Database db2(q.schema());
  db2.AddFactStr(0, "a b");
  db2.AddFactStr(0, "b c");
  db2.AddFactStr(0, "a z");  // Now key 'a' can escape the join.
  SolverAnswer answer2 = solver.Solve(db2);
  std::printf("certain(q) on the second database: %s\n",
              answer2.certain ? "yes" : "no");
  return 0;
}
