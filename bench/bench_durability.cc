// Durability cost benchmark: what WAL logging and fsync policy do to
// mutation throughput, and what recovery costs cold vs warm.
//
//   ./bench_durability [--smoke] [--batches=N] [--label=L] [--out=DIR]
//
// Two experiments, both through the public cqa::Service API:
//
//   [1] Mutation throughput: the same seeded insert/delete batch program
//       against (a) durability off, (b) WAL + fsync per batch (the
//       acknowledged-means-durable guarantee), (c) WAL + batched fsync
//       (interval 32), (d) WAL + fsync only at snapshots. The spread
//       between (a) and (b) is the price of the guarantee; (c)/(d) show
//       what relaxing it buys.
//
//   [2] Recovery time: reopen the database written by (b) from its
//       snapshot + WAL tail, then time the first solve — once with the
//       persisted verdict cache deleted (cold: every component re-runs
//       the backend) and once with it in place (warm: the solve is pure
//       cache merge). The delta is what verdict persistence is worth.
//
// Emits BENCH_durability.json (bench/bench_json.h). --smoke shrinks the
// program for the main-CI artifact run; the nightly job runs full size.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "bench_json.h"
#include "store/io.h"
#include "store/store.h"

namespace cqa {
namespace {

constexpr const char* kQueryText = "R(x | y) R(y | z)";
constexpr const char* kDbName = "bench";

struct Config {
  std::size_t batches = 20000;
  std::string label = "after";
  std::string out_dir;
  bool smoke = false;
};

struct Batch {
  bool is_insert = true;
  std::vector<FactSpec> facts;
};

// The seeded program: inserts with periodic deletes, sized so snapshots
// and compactions both trigger. The domain is partitioned into groups
// and every fact stays within one group, so the database decomposes
// into many small q-connected components — the shape where the verdict
// cache matters (one giant component would make the warm/cold recovery
// contrast measure a single backend solve instead of the cache).
std::vector<Batch> BuildProgram(std::size_t n) {
  constexpr std::uint64_t kGroups = 150;
  constexpr std::uint64_t kGroupSize = 8;
  Rng rng(0xD04A11);
  std::vector<Batch> program;
  std::vector<FactSpec> alive;
  for (std::size_t b = 0; b < n; ++b) {
    Batch batch;
    batch.is_insert = alive.empty() || rng.Below(10) < 7;
    if (batch.is_insert) {
      std::uint64_t group = rng.Below(kGroups) * kGroupSize;
      auto element = [&](std::uint64_t i) {
        return "e" + std::to_string(group + i);
      };
      std::uint64_t count = 1 + rng.Below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        batch.facts.push_back(
            {"R", {element(rng.Below(kGroupSize)), element(rng.Below(kGroupSize))}});
      }
      for (const FactSpec& f : batch.facts) alive.push_back(f);
    } else {
      std::size_t pick = rng.Below(alive.size());
      batch.facts.push_back(alive[pick]);
      alive.erase(alive.begin() + pick);
    }
    program.push_back(std::move(batch));
  }
  return program;
}

Schema OneRelationSchema() {
  Schema schema;
  schema.AddRelation("R", 2, 1);
  return schema;
}

std::string DataDir(const std::string& variant) {
  return "/tmp/cqa_bench_durability_" + variant;
}

ServiceOptions DurableOptions(const std::string& dir,
                              store::FsyncPolicy fsync) {
  ServiceOptions options;
  options.durability.enabled = true;
  options.durability.data_dir = dir;
  options.durability.fsync = fsync;
  options.durability.fsync_interval = 32;
  options.durability.snapshot_interval = 4096;
  return options;
}

// Applies the whole program; duplicate-insert and delete-of-absent
// batches can arise from the generator reusing names, so tolerate
// kNotFound on deletes (the generator's alive list and the database's
// set semantics drift when a fact is inserted twice).
void ApplyProgram(Service& service, const std::vector<Batch>& program) {
  for (const Batch& batch : program) {
    Status applied = batch.is_insert
                         ? service.InsertFacts(kDbName, batch.facts)
                         : service.DeleteFacts(kDbName, batch.facts);
    CQA_CHECK_MSG(applied.ok() || applied.code() == StatusCode::kNotFound,
                  applied.ToString().c_str());
  }
}

double RunMutationVariant(const std::vector<Batch>& program,
                          const std::string& variant, ServiceOptions options,
                          std::FILE* out, bench::BenchJsonWriter* writer) {
  Service service(options);
  CQA_CHECK(service.RegisterDatabase(kDbName, Database(OneRelationSchema()))
                .ok());
  bench::Measurement m =
      bench::Measure([&] { ApplyProgram(service, program); }, 0.0);
  // Measure runs the program at least once; batches scale per iteration.
  double per_sec =
      static_cast<double>(program.size()) * m.iterations / m.wall_seconds;

  ServiceStats stats = service.Stats();
  std::map<std::string, double> counters = {
      {"batches", static_cast<double>(program.size())},
      {"batches_per_sec", per_sec},
      {"alive_facts", static_cast<double>(stats.databases[0].alive_facts)},
      {"snapshots", static_cast<double>(stats.databases[0].snapshots)},
      {"wal_bytes", static_cast<double>(stats.databases[0].wal_bytes)},
  };
  for (const auto& [key, value] : m.hw_counters) counters[key] = value;

  bench::BenchEntry entry;
  entry.name = "mutations/batches=" + std::to_string(program.size());
  entry.variant = variant;
  entry.wall_seconds = m.wall_seconds;
  entry.iterations = m.iterations;
  entry.counters = std::move(counters);
  writer->Add(std::move(entry));

  std::fprintf(out, "  %-16s %10.0f batches/sec\n", variant.c_str(), per_sec);
  return per_sec;
}

void RunRecoveryExperiment(const std::string& dir, std::FILE* out,
                           bench::BenchJsonWriter* writer) {
  // Warm first (recovery consumes the verdict file read-only), then cold
  // by deleting the verdict files and reopening again. Each reopen uses
  // a fresh Service; the on-disk state is never modified, so the two
  // runs recover identical databases.
  for (bool warm : {true, false}) {
    if (!warm) {
      auto entries = store::ListDir(dir + "/bench");
      CQA_CHECK(entries.ok());
      for (const std::string& name : *entries) {
        if (name.rfind("verdicts-", 0) == 0) {
          CQA_CHECK(store::RemoveFile(dir + "/bench/" + name).ok());
        }
      }
    }
    Service service(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
    bench::Measurement open = bench::Measure(
        [&] { CQA_CHECK(service.RecoverDatabase(kDbName).ok()); }, 0.0);
    double recover_seconds = open.wall_seconds;
    auto q = service.Compile(kQueryText);
    CQA_CHECK(q.ok());
    std::uint64_t cached = 0;
    std::uint64_t total = 0;
    bench::Measurement solve = bench::Measure(
        [&] {
          auto report = service.Solve(*q, kDbName);
          CQA_CHECK(report.ok());
          cached = report->components_cached;
          total = report->components_total;
        },
        0.0);
    double solve_seconds = solve.wall_seconds;

    bench::BenchEntry entry;
    entry.name = "recovery/first_solve";
    entry.variant = warm ? "warm_verdicts" : "cold_verdicts";
    entry.wall_seconds = recover_seconds + solve_seconds;
    entry.iterations = 1;
    entry.counters = {
        {"recover_seconds", recover_seconds},
        {"first_solve_seconds", solve_seconds},
        {"components_total", static_cast<double>(total)},
        {"components_cached", static_cast<double>(cached)},
    };
    writer->Add(std::move(entry));
    std::fprintf(out,
                 "  %-14s recover %.3fs, first solve %.3fs (%llu/%llu "
                 "components cached)\n",
                 warm ? "warm verdicts" : "cold verdicts", recover_seconds,
                 solve_seconds, static_cast<unsigned long long>(cached),
                 static_cast<unsigned long long>(total));
  }
}

void Run(const Config& config) {
  std::FILE* out = stdout;
  bench::BenchJsonWriter writer("durability", config.label);
  std::vector<Batch> program = BuildProgram(config.batches);
  std::fprintf(out, "bench_durability: batches=%zu%s\n\n", program.size(),
               config.smoke ? " (smoke)" : "");

  std::fprintf(out, "[1] mutation throughput by durability mode\n");
  double off = RunMutationVariant(program, "durability_off",
                                  ServiceOptions{}, out, &writer);

  std::string fsync_dir = DataDir("fsync_batch");
  CQA_CHECK(store::RemoveDirRecursive(fsync_dir).ok());
  double every = RunMutationVariant(
      program, "fsync_per_batch",
      DurableOptions(fsync_dir, store::FsyncPolicy::kEveryBatch), out,
      &writer);

  std::string interval_dir = DataDir("fsync_interval");
  CQA_CHECK(store::RemoveDirRecursive(interval_dir).ok());
  double interval = RunMutationVariant(
      program, "fsync_interval32",
      DurableOptions(interval_dir, store::FsyncPolicy::kInterval), out,
      &writer);

  std::string none_dir = DataDir("fsync_none");
  CQA_CHECK(store::RemoveDirRecursive(none_dir).ok());
  double none = RunMutationVariant(
      program, "fsync_at_snapshot",
      DurableOptions(none_dir, store::FsyncPolicy::kNone), out, &writer);

  std::fprintf(out,
               "  guarantee cost: %.2fx off->fsync_per_batch; batched "
               "fsync recovers %.2fx, snapshot-only %.2fx\n",
               off / every, interval / every, none / every);

  // Seed the recovery experiment: one durable run with a warmed verdict
  // cache, checkpointed so the snapshot carries it, then "crashed".
  std::fprintf(out, "\n[2] recovery time, cold vs warm verdict cache\n");
  std::string recover_dir = DataDir("recover");
  CQA_CHECK(store::RemoveDirRecursive(recover_dir).ok());
  {
    Service service(
        DurableOptions(recover_dir, store::FsyncPolicy::kEveryBatch));
    CQA_CHECK(service.RegisterDatabase(kDbName, Database(OneRelationSchema()))
                  .ok());
    ApplyProgram(service, program);
    auto q = service.Compile(kQueryText);
    CQA_CHECK(q.ok());
    auto warm = service.Solve(*q, kDbName);
    CQA_CHECK(warm.ok());
    CQA_CHECK(service.CheckpointDatabase(kDbName).ok());
    // Die hard: nothing else reaches the disk.
    store::FaultPlan plan;
    plan.crash_at_op = 0;
    store::InstallFault(plan);
  }
  store::ClearFault();
  RunRecoveryExperiment(recover_dir, out, &writer);

  std::string path = writer.WriteMerged(config.out_dir);
  std::fprintf(out, "\nwrote %s (label=%s, %zu entries)\n", path.c_str(),
               config.label.c_str(), writer.entries().size());
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  cqa::Config config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strncmp(arg, "--batches=", 10) == 0) {
      config.batches = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--label=", 8) == 0) {
      config.label = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      config.out_dir = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--batches=N] [--label=L] [--out=DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (config.smoke) {
    config.batches = std::min<std::size_t>(config.batches, 1500);
  }
  cqa::Run(config);
  return 0;
}
