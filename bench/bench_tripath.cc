// EXP-F1: Figure 1 — tripath search and validation for q2 (fork, Figures
// 1b/1c), q5 (none) and q6 (triangle). Prints the witnesses found, then
// benchmarks the searcher and the validator.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "query/query.h"
#include "tripath/search.h"
#include "tripath/validate.h"

namespace cqa {
namespace {

void PrintWitnesses() {
  std::printf("\n=== EXP-F1: tripath witnesses (Figure 1) ===\n");
  {
    auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
    TripathSearchResult r = SearchTripaths(q2);
    std::printf("[q2] fork-tripath found: %s (candidates tried: %llu)\n",
                r.HasFork() ? "yes" : "no",
                static_cast<unsigned long long>(r.candidates));
    if (r.HasFork()) std::printf("%s", r.fork->tripath.ToString().c_str());
    auto nice = FindNiceForkTripath(q2);
    std::printf("[q2] nice fork-tripath (Figure 1c analogue): %s\n",
                nice ? "yes" : "no");
    if (nice) {
      std::printf("%s", nice->tripath.ToString().c_str());
      const auto& db = nice->tripath.db;
      std::printf("  witnesses: x=%s y=%s z=%s u=%s v=%s w=%s\n",
                  db.elements().Name(nice->validation.x).c_str(),
                  db.elements().Name(nice->validation.y).c_str(),
                  db.elements().Name(nice->validation.z).c_str(),
                  db.elements().Name(nice->validation.u).c_str(),
                  db.elements().Name(nice->validation.v).c_str(),
                  db.elements().Name(nice->validation.w).c_str());
    }
  }
  {
    auto q5 = ParseQuery("R(x | y, x) R(y | x, u)");
    TripathSearchResult r = SearchTripaths(q5);
    std::printf("[q5] tripaths: fork=%s triangle=%s exhausted=%s\n",
                r.HasFork() ? "yes" : "no", r.HasTriangle() ? "yes" : "no",
                r.exhausted ? "yes" : "no");
  }
  {
    auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
    TripathSearchResult r = SearchTripaths(q6);
    std::printf("[q6] fork=%s triangle=%s (candidates: %llu)\n",
                r.HasFork() ? "yes" : "no", r.HasTriangle() ? "yes" : "no",
                static_cast<unsigned long long>(r.candidates));
    if (r.HasTriangle())
      std::printf("%s", r.triangle->tripath.ToString().c_str());
  }
  std::printf("\n");
}

void BM_SearchForkQ2(benchmark::State& state) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  for (auto _ : state) {
    TripathSearchResult r = SearchTripaths(q2);
    benchmark::DoNotOptimize(r.fork);
  }
}
BENCHMARK(BM_SearchForkQ2);

void BM_SearchNiceForkQ2(benchmark::State& state) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  for (auto _ : state) {
    auto nice = FindNiceForkTripath(q2);
    benchmark::DoNotOptimize(nice);
  }
}
BENCHMARK(BM_SearchNiceForkQ2);

void BM_SearchExhaustQ5(benchmark::State& state) {
  auto q5 = ParseQuery("R(x | y, x) R(y | x, u)");
  for (auto _ : state) {
    TripathSearchResult r = SearchTripaths(q5);
    benchmark::DoNotOptimize(r.exhausted);
  }
}
BENCHMARK(BM_SearchExhaustQ5);

void BM_SearchTriangleQ6(benchmark::State& state) {
  auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
  for (auto _ : state) {
    TripathSearchResult r = SearchTripaths(q6);
    benchmark::DoNotOptimize(r.triangle);
  }
}
BENCHMARK(BM_SearchTriangleQ6);

void BM_ValidateNiceFork(benchmark::State& state) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  auto nice = FindNiceForkTripath(q2);
  for (auto _ : state) {
    TripathValidation v = ValidateTripath(q2, nice->tripath);
    benchmark::DoNotOptimize(v.nice);
  }
}
BENCHMARK(BM_ValidateNiceFork);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintWitnesses();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
