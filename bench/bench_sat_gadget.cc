// EXP-F2: Figure 2 + Lemma 9.2 — the 3-SAT gadget. Prints the Figure 2
// walk-through (formula, gadget size, certain answer vs satisfiability),
// then benchmarks gadget construction and the exhaustive decision on it as
// the formula grows (the coNP-hardness in action).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algo/exhaustive.h"
#include "base/check.h"
#include "base/rng.h"
#include "query/query.h"
#include "reduction/sat_reduction.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "tripath/search.h"

namespace cqa {
namespace {

const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";

const FoundTripath& NiceFork() {
  static const FoundTripath kNice = [] {
    auto q2 = ParseQuery(kQ2);
    auto nice = FindNiceForkTripath(q2);
    CQA_CHECK(nice.has_value());
    return *nice;
  }();
  return kNice;
}

void PrintFigure2() {
  auto q2 = ParseQuery(kQ2);
  CnfFormula phi = Figure2Formula();
  std::printf("\n=== EXP-F2: Figure 2 SAT gadget for q2 ===\n");
  std::printf("formula: %s\n", phi.ToString().c_str());
  SatResult sat = SolveDpll(phi);
  std::printf("DPLL: %s\n", sat.satisfiable ? "satisfiable" : "unsat");
  SatGadget gadget = BuildSatGadget(q2, NiceFork(), phi);
  std::printf("gadget D[phi]: %zu facts, %zu blocks, %zu padding facts\n",
              gadget.db.NumFacts(), gadget.db.blocks().size(),
              gadget.num_padding_facts);
  bool certain = ExhaustiveCertain(q2, gadget.db);
  std::printf("certain(q2) on D[phi]: %s\n", certain ? "yes" : "no");
  std::printf("Lemma 9.2 check (sat <=> not certain): %s\n\n",
              (sat.satisfiable == !certain) ? "PASS" : "FAIL");
}

void BM_BuildGadget(benchmark::State& state) {
  auto q2 = ParseQuery(kQ2);
  Rng rng(42);
  CnfFormula phi = RandomReductionReady3Sat(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0)) * 3 / 2, &rng);
  for (auto _ : state) {
    SatGadget gadget = BuildSatGadget(q2, NiceFork(), phi);
    benchmark::DoNotOptimize(gadget.db.NumFacts());
  }
  state.counters["facts"] = static_cast<double>(
      BuildSatGadget(q2, NiceFork(), phi).db.NumFacts());
}
BENCHMARK(BM_BuildGadget)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_DecideGadget(benchmark::State& state) {
  auto q2 = ParseQuery(kQ2);
  Rng rng(77);
  CnfFormula phi = RandomReductionReady3Sat(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0)) * 3 / 2, &rng);
  SatGadget gadget = BuildSatGadget(q2, NiceFork(), phi);
  ExhaustiveStats stats;
  for (auto _ : state) {
    bool certain = ExhaustiveCertain(q2, gadget.db, &stats);
    benchmark::DoNotOptimize(certain);
  }
  state.counters["facts"] = static_cast<double>(gadget.db.NumFacts());
  state.counters["nodes"] = static_cast<double>(stats.nodes_explored);
}
BENCHMARK(BM_DecideGadget)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_DpllOnSameFormula(benchmark::State& state) {
  Rng rng(77);
  CnfFormula phi = RandomReductionReady3Sat(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0)) * 3 / 2, &rng);
  for (auto _ : state) {
    SatResult r = SolveDpll(phi);
    benchmark::DoNotOptimize(r.satisfiable);
  }
}
BENCHMARK(BM_DpllOnSameFormula)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
