// EXP-F2: Figure 2 + Lemma 9.2 — the 3-SAT gadget, now as a side-by-side
// solver shoot-out. For every formula in the gadget suite the driver
// builds D[phi], encodes the falsifier CNF, solves it with both the
// legacy chronological DPLL and the CDCL core, asserts the two return
// identical certain/non-certain verdicts (and that Lemma 9.2 holds
// against the formula's own satisfiability), and records wall times per
// solver in BENCH_sat_gadget.json. A raw-formula suite (reduction-ready
// and near-threshold random 3-SAT) stresses the solvers directly at
// sizes where watched literals and clause learning dominate.
//
// Custom main (not google-benchmark): the A/B needs per-case parity
// assertions and the shared BENCH_*.json emitter.
//
//   ./bench_sat_gadget [--smoke] [--label=L]
//                      [--solvers=dpll,cdcl,cdcl_inc] [--out=DIR]
//
// The DPLL stays available behind --solvers for A/B runs until a few
// PRs of BENCH history confirm the CDCL everywhere; CDCL is the
// production path (engine/backends.cc). The cdcl_inc solver is the
// persistent CdclSolver measured on the repeated-solve tier: the same
// CNF decided round after round under a shifting assumption literal
// (the mutate/re-solve shape the warm falsifier sessions see), warm
// incremental vs a fresh SolveCdcl per round, with per-round verdict
// parity asserted between the two.

#include <cstdio>
#include <string>
#include <vector>

#include "algo/exhaustive.h"
#include "base/check.h"
#include "base/rng.h"
#include "bench_json.h"
#include "query/eval.h"
#include "query/query.h"
#include "reduction/sat_reduction.h"
#include "sat/cdcl.h"
#include "sat/dpll.h"
#include "sat/gen.h"
#include "tripath/search.h"

namespace cqa {
namespace {

const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";

const FoundTripath& NiceFork() {
  static const FoundTripath kNice = [] {
    auto q2 = ParseQuery(kQ2);
    auto nice = FindNiceForkTripath(q2);
    CQA_CHECK(nice.has_value());
    return *nice;
  }();
  return kNice;
}

void PrintFigure2() {
  auto q2 = ParseQuery(kQ2);
  CnfFormula phi = Figure2Formula();
  std::printf("\n=== EXP-F2: Figure 2 SAT gadget for q2 ===\n");
  std::printf("formula: %s\n", phi.ToString().c_str());
  SatResult sat = SolveCdcl(phi);
  std::printf("CDCL: %s\n", sat.satisfiable ? "satisfiable" : "unsat");
  SatGadget gadget = BuildSatGadget(q2, NiceFork(), phi);
  std::printf("gadget D[phi]: %zu facts, %zu blocks, %zu padding facts\n",
              gadget.db.NumFacts(), gadget.db.blocks().size(),
              gadget.num_padding_facts);
  bool certain = ExhaustiveCertain(q2, gadget.db);
  std::printf("certain(q2) on D[phi]: %s\n", certain ? "yes" : "no");
  std::printf("Lemma 9.2 check (sat <=> not certain): %s\n\n",
              (sat.satisfiable == !certain) ? "PASS" : "FAIL");
}

struct Suite {
  struct Case {
    std::string name;
    CnfFormula phi;
    bool reduction_ready = false;  ///< Gadget construction possible.
  };
  std::vector<Case> cases;
};

Suite BuildSuite(bool smoke) {
  Suite suite;
  suite.cases.push_back({"fig2", Figure2Formula(), true});
  // Reduction-ready formulas: these admit the Section 9 gadget, growing
  // the falsifier CNF the sat backend actually solves.
  std::vector<std::uint32_t> rr_sizes =
      smoke ? std::vector<std::uint32_t>{8, 16}
            : std::vector<std::uint32_t>{16, 32, 64, 96};
  for (std::uint32_t n : rr_sizes) {
    Rng rng(1000 + n);
    suite.cases.push_back({"rr_" + std::to_string(n),
                           RandomReductionReady3Sat(n, n * 3 / 2, &rng),
                           true});
  }
  // Near-threshold random 3-SAT (m ~ 4.26 n): not reduction-ready, but
  // the regime where chronological backtracking falls off a cliff and
  // clause learning pays — the raw-solver stress tier.
  std::vector<std::uint32_t> hard_sizes =
      smoke ? std::vector<std::uint32_t>{20}
            : std::vector<std::uint32_t>{100, 150, 175};
  for (std::uint32_t n : hard_sizes) {
    Rng rng(2000 + n);
    suite.cases.push_back({"ksat_" + std::to_string(n),
                           RandomKSat(n, n * 426 / 100, 3, &rng), false});
  }
  return suite;
}

struct Options {
  bool smoke = false;
  bool run_dpll = true;
  bool run_cdcl = true;
  bool run_cdcl_inc = true;
  std::string label = "adhoc";
  std::string out_dir;
  double min_seconds = 0.3;
};

/// Deterministic shifting assumption for repeat round `r`: walk the
/// variables in order, flipping polarity on every pass.
Literal AssumptionFor(std::uint64_t r, std::uint32_t num_vars) {
  std::uint32_t var = static_cast<std::uint32_t>(r % num_vars);
  bool positive = (r / num_vars) % 2 == 0;
  return Literal{var, positive};
}

/// Repeated-solve tier: decide the same CNF over and over under a
/// shifting assumption literal. "cdcl" pays a fresh solver (clause
/// re-load included) per round, with the assumption appended as a unit
/// clause; "cdcl_inc" loads the clauses once and re-solves one warm
/// CdclSolver under the assumption, reusing watches, learned clauses,
/// scores, and phases. When both run, the first rounds are checked for
/// verdict parity (a unit clause and an assumption are equisatisfiable
/// constraints).
void RunRepeatTier(const Suite::Case& c, const Options& opt,
                   bench::BenchJsonWriter& writer) {
  if (!opt.run_cdcl && !opt.run_cdcl_inc) return;
  CQA_CHECK(c.phi.num_vars > 0);

  CdclSolver warm;
  warm.AddVars(c.phi.num_vars);
  for (const Clause& cl : c.phi.clauses) warm.AddClause(cl);

  // Fresh-path scratch formula: last clause slot holds the round's unit.
  CnfFormula work = c.phi;
  work.clauses.emplace_back();

  if (opt.run_cdcl && opt.run_cdcl_inc) {
    for (std::uint64_t r = 0; r < 12; ++r) {
      Literal lit = AssumptionFor(r, c.phi.num_vars);
      work.clauses.back() = Clause{lit};
      bool fresh_sat = SolveCdcl(work).satisfiable;
      bool warm_sat = warm.SolveUnderAssumptions({lit});
      CQA_CHECK_MSG(fresh_sat == warm_sat,
                    "warm incremental verdict diverged from fresh solve");
    }
  }

  std::uint64_t fresh_round = 0, warm_round = 0;
  std::uint64_t fresh_sat_rounds = 0, warm_sat_rounds = 0;
  bench::Measurement fresh_m, warm_m;
  if (opt.run_cdcl) {
    fresh_m = bench::Measure(
        [&] {
          Literal lit = AssumptionFor(fresh_round++, c.phi.num_vars);
          work.clauses.back() = Clause{lit};
          fresh_sat_rounds += SolveCdcl(work).satisfiable ? 1 : 0;
        },
        opt.min_seconds);
    writer.Add("repeat/" + c.name, "cdcl", fresh_m,
               {{"vars", static_cast<double>(c.phi.num_vars)},
                {"clauses", static_cast<double>(c.phi.clauses.size())}});
  }
  if (opt.run_cdcl_inc) {
    warm_m = bench::Measure(
        [&] {
          Literal lit = AssumptionFor(warm_round++, c.phi.num_vars);
          warm_sat_rounds += warm.SolveUnderAssumptions({lit}) ? 1 : 0;
        },
        opt.min_seconds);
    const CdclStats& s = warm.stats();
    writer.Add("repeat/" + c.name, "cdcl_inc", warm_m,
               {{"vars", static_cast<double>(c.phi.num_vars)},
                {"clauses", static_cast<double>(c.phi.clauses.size())},
                {"warm_solves", static_cast<double>(s.warm_solves)},
                {"conflicts", static_cast<double>(s.conflicts)},
                {"learned_kept", static_cast<double>(s.learned_kept)},
                {"db_reductions", static_cast<double>(s.db_reductions)}});
  }
  if (opt.run_cdcl && opt.run_cdcl_inc) {
    double fresh_op = fresh_m.wall_seconds / fresh_m.iterations;
    double warm_op = warm_m.wall_seconds / warm_m.iterations;
    std::printf(
        "repeat/%-11s  fresh=%9.1fus  warm=%9.1fus  speedup=%5.1fx\n",
        c.name.c_str(), fresh_op * 1e6, warm_op * 1e6, fresh_op / warm_op);
  }
  (void)fresh_sat_rounds;
  (void)warm_sat_rounds;
}

void RunSuite(const Options& opt) {
  auto q2 = ParseQuery(kQ2);
  Suite suite = BuildSuite(opt.smoke);
  bench::BenchJsonWriter writer("sat_gadget", opt.label);

  for (const Suite::Case& c : suite.cases) {
    // Raw-formula solve: dpll vs cdcl on phi itself.
    SatResult dpll_phi, cdcl_phi;
    CdclStats cdcl_stats;
    if (opt.run_dpll) {
      bench::Measurement m = bench::Measure(
          [&] { dpll_phi = SolveDpll(c.phi); }, opt.min_seconds);
      writer.Add("formula/" + c.name, "dpll", m,
                 {{"vars", static_cast<double>(c.phi.num_vars)},
                  {"clauses", static_cast<double>(c.phi.clauses.size())}});
    }
    if (opt.run_cdcl) {
      bench::Measurement m = bench::Measure(
          [&] { cdcl_phi = SolveCdcl(c.phi, &cdcl_stats); }, opt.min_seconds);
      writer.Add("formula/" + c.name, "cdcl", m,
                 {{"vars", static_cast<double>(c.phi.num_vars)},
                  {"clauses", static_cast<double>(c.phi.clauses.size())},
                  {"conflicts", static_cast<double>(cdcl_stats.conflicts)},
                  {"learned", static_cast<double>(
                                  cdcl_stats.learned_clauses)}});
    }
    if (opt.run_dpll && opt.run_cdcl) {
      CQA_CHECK_MSG(dpll_phi.satisfiable == cdcl_phi.satisfiable,
                    "solver verdict mismatch on raw formula");
    }
    std::printf("formula/%-10s  vars=%4u clauses=%4zu  %s\n", c.name.c_str(),
                c.phi.num_vars, c.phi.clauses.size(),
                (opt.run_cdcl ? cdcl_phi : dpll_phi).satisfiable
                    ? "sat"
                    : "unsat");

    RunRepeatTier(c, opt, writer);

    if (!c.reduction_ready) continue;

    // Gadget path: build D[phi], encode the falsifier CNF, decide
    // certainty with each solver, and hold the verdicts against each
    // other and against Lemma 9.2 (phi satisfiable <=> not certain).
    SatGadget gadget = BuildSatGadget(q2, NiceFork(), c.phi);
    bench::Measurement build_m = bench::Measure(
        [&] {
          SatGadget g = BuildSatGadget(q2, NiceFork(), c.phi);
          CQA_CHECK(g.db.NumFacts() > 0);
        },
        opt.min_seconds);
    writer.Add("gadget_build/" + c.name, "columnar", build_m,
               {{"facts", static_cast<double>(gadget.db.NumFacts())},
                {"blocks", static_cast<double>(gadget.db.blocks().size())}});

    PreparedDatabase pdb(gadget.db);
    SolutionSet solutions = ComputeSolutions(q2, pdb);
    CnfFormula falsifier = EncodeFalsifierCnf(solutions, pdb);
    bool dpll_certain = false, cdcl_certain = false;
    if (opt.run_dpll) {
      bench::Measurement m = bench::Measure(
          [&] { dpll_certain = !SolveDpll(falsifier).satisfiable; },
          opt.min_seconds);
      writer.Add("gadget_decide/" + c.name, "dpll", m,
                 {{"facts", static_cast<double>(gadget.db.NumFacts())},
                  {"cnf_vars", static_cast<double>(falsifier.num_vars)},
                  {"cnf_clauses",
                   static_cast<double>(falsifier.clauses.size())}});
    }
    if (opt.run_cdcl) {
      bench::Measurement m = bench::Measure(
          [&] { cdcl_certain = !SolveCdcl(falsifier).satisfiable; },
          opt.min_seconds);
      writer.Add("gadget_decide/" + c.name, "cdcl", m,
                 {{"facts", static_cast<double>(gadget.db.NumFacts())},
                  {"cnf_vars", static_cast<double>(falsifier.num_vars)},
                  {"cnf_clauses",
                   static_cast<double>(falsifier.clauses.size())}});
    }
    if (opt.run_dpll && opt.run_cdcl) {
      CQA_CHECK_MSG(dpll_certain == cdcl_certain,
                    "DPLL and CDCL disagree on a gadget verdict");
    }
    bool phi_sat = (opt.run_cdcl ? SolveCdcl(c.phi) : SolveDpll(c.phi))
                       .satisfiable;
    bool certain = opt.run_cdcl ? cdcl_certain : dpll_certain;
    CQA_CHECK_MSG(phi_sat == !certain, "Lemma 9.2 violated on gadget");
    std::printf("gadget/%-11s  facts=%5zu  certain=%s  parity=ok\n",
                c.name.c_str(), gadget.db.NumFacts(), certain ? "yes" : "no");
  }

  std::string path = writer.WriteMerged(opt.out_dir);
  std::printf("\nwrote %s (label=%s, %zu entries)\n", path.c_str(),
              opt.label.c_str(), writer.entries().size());
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintFigure2();
  cqa::Options opt;
  opt.smoke = cqa::bench::HasFlag(argc, argv, "--smoke");
  if (opt.smoke) opt.min_seconds = 0.02;
  opt.label = cqa::bench::FlagValue(argc, argv, "--label",
                                    opt.smoke ? "smoke" : "adhoc");
  opt.out_dir = cqa::bench::FlagValue(argc, argv, "--out", "");
  std::string solvers =
      cqa::bench::FlagValue(argc, argv, "--solvers", "dpll,cdcl,cdcl_inc");
  // Exact comma-separated tokens ("cdcl" must not also enable cdcl_inc).
  auto has_solver = [&solvers](const std::string& name) {
    std::size_t pos = 0;
    while (pos <= solvers.size()) {
      std::size_t comma = solvers.find(',', pos);
      std::size_t end = comma == std::string::npos ? solvers.size() : comma;
      if (solvers.compare(pos, end - pos, name) == 0) return true;
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return false;
  };
  opt.run_dpll = has_solver("dpll");
  opt.run_cdcl = has_solver("cdcl");
  opt.run_cdcl_inc = has_solver("cdcl_inc");
  CQA_CHECK_MSG(opt.run_dpll || opt.run_cdcl || opt.run_cdcl_inc,
                "--solvers named no solver");
  cqa::RunSuite(opt);
  return 0;
}
