// EXP-S3: the q-connected decomposition of Proposition 10.6 and the
// Monte Carlo repair-sampling baseline — cost of the decomposition, the
// component-wise solver vs the monolithic combined algorithm, and sampling
// as a cheap refuter.

#include <benchmark/benchmark.h>

#include "algo/combined.h"
#include "algo/components.h"
#include "algo/sampling.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

const char* kQ6 = "R(x | y, z) R(z | x, y)";

Database Make(const ConjunctiveQuery& q, std::uint32_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  InstanceParams params;
  params.num_facts = n;
  params.domain_size = 2 + n / 8;
  return RandomInstance(q, params, &rng);
}

void BM_QConnectedDecomposition(benchmark::State& state) {
  auto q = ParseQuery(kQ6);
  Database db = Make(q, static_cast<std::uint32_t>(state.range(0)), 31);
  std::size_t num_components = 0;
  for (auto _ : state) {
    auto comps = QConnectedComponents(q, db);
    num_components = comps.size();
    benchmark::DoNotOptimize(comps.size());
  }
  state.counters["components"] = static_cast<double>(num_components);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_QConnectedDecomposition)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity();

void BM_ComponentwiseVsMonolithic(benchmark::State& state) {
  auto q = ParseQuery(kQ6);
  Database db = Make(q, 192, 32);
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(ComponentwiseCertain(q, db, 3));
    }
    state.SetLabel("componentwise");
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(CombinedCertain(q, db, 3));
    }
    state.SetLabel("monolithic");
  }
}
BENCHMARK(BM_ComponentwiseVsMonolithic)->Arg(0)->Arg(1);

void BM_RepairSampling(benchmark::State& state) {
  auto q = ParseQuery(kQ6);
  Database db = Make(q, static_cast<std::uint32_t>(state.range(0)), 33);
  for (auto _ : state) {
    SamplingResult r = SampleRepairs(q, db, 100, 7);
    benchmark::DoNotOptimize(r.satisfying);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RepairSampling)
    ->RangeMultiplier(4)
    ->Range(32, 2048)
    ->Complexity();

void BM_SamplingAsRefuter(benchmark::State& state) {
  // Early-stopping sampling on a non-certain instance: usually one draw.
  auto q = ParseQuery(kQ6);
  Database db = Make(q, 256, 34);
  for (auto _ : state) {
    SamplingResult r = SampleRepairs(q, db, 1000, 7, true);
    benchmark::DoNotOptimize(r.found_falsifier);
  }
}
BENCHMARK(BM_SamplingAsRefuter);

}  // namespace
}  // namespace cqa

BENCHMARK_MAIN();
