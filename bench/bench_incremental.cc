// EXP-E2: delta-solve vs rebuild-solve on mutating databases.
//
// The streaming-update scenario this PR opens: a large database absorbs
// a small delta, then the certain answer is needed again. Two ways to
// get it:
//   - delta path: Service::InsertFacts/DeleteFacts (delta-maintained
//     preparation + component partition) and a component-cache solve
//     that re-runs the backend only on the components the delta touched;
//   - rebuild path: what every caller had to do before — re-prepare the
//     whole database and run the backend on all of it
//     (Service::Solve(q, const Database&), the ad-hoc full path).
//
// The workload is cluster-structured (many small q-connected
// components), which is where component-level re-solve is designed to
// win; the delta size sweep (1, 16, 128 facts per round) shows the win
// shrinking as the delta grows. The ISSUE acceptance bar: delta beats
// rebuild by >= 5x for single-fact deltas on >= 10k-fact databases.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "gbench_emit.h"

namespace cqa {
namespace {

constexpr const char* kQuery = "R(x | y) R(y | z)";

/// ~`num_facts` facts in independent 3-fact clusters
///   R(k_i | a_i), R(a_i | b_i), R(a_i | c_i)
/// — a join chain plus a blockmate, so every cluster is one inconsistent
/// q-connected component of its own.
std::vector<FactSpec> ClusteredFacts(std::uint32_t num_facts) {
  std::vector<FactSpec> facts;
  facts.reserve(num_facts);
  for (std::uint32_t i = 0; facts.size() + 3 <= num_facts; ++i) {
    std::string c = "c" + std::to_string(i) + "_";
    facts.push_back({"R", {c + "k", c + "a"}});
    facts.push_back({"R", {c + "a", c + "b"}});
    facts.push_back({"R", {c + "a", c + "x"}});
  }
  return facts;
}

Database BuildDatabase(const Schema& schema,
                       const std::vector<FactSpec>& facts) {
  Database db(schema);
  RelationId rel = schema.Find("R");
  for (const FactSpec& spec : facts) db.AddFactNamed(rel, spec.args);
  return db;
}

/// The delta for one round: `delta_size` fresh facts, each extending a
/// distinct cluster's chain (touching that cluster's component only).
std::vector<FactSpec> MakeDelta(std::uint32_t delta_size,
                                std::uint32_t num_clusters, Rng* rng,
                                std::uint64_t* fresh_counter) {
  std::vector<FactSpec> delta;
  delta.reserve(delta_size);
  for (std::uint32_t d = 0; d < delta_size; ++d) {
    std::string c = "c" + std::to_string(rng->Below(num_clusters)) + "_";
    delta.push_back(
        {"R", {c + "b", "fresh" + std::to_string((*fresh_counter)++)}});
  }
  return delta;
}

void BM_DeltaSolve(benchmark::State& state) {
  std::uint32_t num_facts = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t delta_size = static_cast<std::uint32_t>(state.range(1));
  std::uint32_t num_clusters = num_facts / 3;

  Service service;
  StatusOr<CompiledQuery> q = service.Compile(kQuery);
  CQA_CHECK(q.ok());
  std::vector<FactSpec> facts = ClusteredFacts(num_facts);
  CQA_CHECK(service
                .RegisterDatabase("stream",
                                  BuildDatabase(q->query().schema(), facts))
                .ok());
  // Warm the component cache (first solve pays the full partition).
  CQA_CHECK(service.Solve(*q, "stream").ok());

  Rng rng(0xBE7C);
  std::uint64_t fresh_counter = 0;
  std::uint64_t cached = 0;
  std::uint64_t resolved = 0;
  for (auto _ : state) {
    std::vector<FactSpec> delta =
        MakeDelta(delta_size, num_clusters, &rng, &fresh_counter);
    CQA_CHECK(service.InsertFacts("stream", delta).ok());
    StatusOr<SolveReport> after_insert = service.Solve(*q, "stream");
    CQA_CHECK(after_insert.ok());
    benchmark::DoNotOptimize(after_insert->certain);
    cached += after_insert->components_cached;
    resolved += after_insert->components_resolved;
    // Deleting the delta restores the previous content: the steady state
    // is stable no matter how long the benchmark runs.
    CQA_CHECK(service.DeleteFacts("stream", delta).ok());
    StatusOr<SolveReport> after_delete = service.Solve(*q, "stream");
    CQA_CHECK(after_delete.ok());
    benchmark::DoNotOptimize(after_delete->certain);
    cached += after_delete->components_cached;
    resolved += after_delete->components_resolved;
  }
  state.counters["solves"] = benchmark::Counter(
      2.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["components_cached_per_solve"] =
      cached / (2.0 * static_cast<double>(state.iterations()));
  state.counters["components_resolved_per_solve"] =
      resolved / (2.0 * static_cast<double>(state.iterations()));
}

void BM_RebuildSolve(benchmark::State& state) {
  std::uint32_t num_facts = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t delta_size = static_cast<std::uint32_t>(state.range(1));
  std::uint32_t num_clusters = num_facts / 3;

  Service service;
  StatusOr<CompiledQuery> q = service.Compile(kQuery);
  CQA_CHECK(q.ok());
  std::vector<FactSpec> facts = ClusteredFacts(num_facts);
  Database db = BuildDatabase(q->query().schema(), facts);
  RelationId rel = db.schema().Find("R");

  Rng rng(0xBE7C);
  std::uint64_t fresh_counter = 0;
  for (auto _ : state) {
    std::vector<FactSpec> delta =
        MakeDelta(delta_size, num_clusters, &rng, &fresh_counter);
    std::vector<FactId> ids;
    ids.reserve(delta.size());
    for (const FactSpec& spec : delta) {
      ids.push_back(db.AddFactNamed(rel, spec.args));
    }
    // Ad-hoc solve: full preparation + full backend run, every time.
    StatusOr<SolveReport> after_insert = service.Solve(*q, db);
    CQA_CHECK(after_insert.ok());
    benchmark::DoNotOptimize(after_insert->certain);
    for (FactId id : ids) db.RemoveFact(id);
    StatusOr<SolveReport> after_delete = service.Solve(*q, db);
    CQA_CHECK(after_delete.ok());
    benchmark::DoNotOptimize(after_delete->certain);
    // Reclaim the delta's tombstones so long runs keep comparing against
    // a clean-shaped database, matching the delta path's auto-compaction
    // (nothing external holds FactIds into this caller-owned db).
    (void)db.Compact();
  }
  state.counters["solves"] = benchmark::Counter(
      2.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

/// EXP-E3: warm SAT sessions vs rebuild-encoding, same delta path. Both
/// variants force the sat backend and re-solve only delta-touched
/// components through the verdict cache; the only difference is
/// ServiceOptions::warm_sat_solvers. Warm keeps one incremental CDCL
/// solver per component lineage (activation-literal retraction, learned
/// clauses surviving the mutation); cold re-materializes the component
/// sub-database and re-encodes its falsifier CNF into a fresh solver on
/// every dirty solve. The gap is the materialize+encode+load cost the
/// session amortizes, so the workload gives it something to amortize:
/// `width`-fact clusters — R(k | a) plus width-1 blockmates R(a | b_j)
/// in one wide block — mutated within a small hot set of clusters so the
/// per-lineage solver is warm after the first visit (the anchor block
/// R(k | a) never changes).
constexpr std::uint32_t kSatHotClusters = 32;

std::vector<FactSpec> WideClusteredFacts(std::uint32_t num_clusters,
                                         std::uint32_t width) {
  std::vector<FactSpec> facts;
  facts.reserve(static_cast<std::size_t>(num_clusters) * width);
  for (std::uint32_t i = 0; i < num_clusters; ++i) {
    std::string c = "w" + std::to_string(i) + "_";
    facts.push_back({"R", {c + "k", c + "a"}});
    for (std::uint32_t j = 0; j + 1 < width; ++j) {
      facts.push_back({"R", {c + "a", c + "b" + std::to_string(j)}});
    }
  }
  return facts;
}

void SatResolveBody(benchmark::State& state, bool warm) {
  std::uint32_t num_clusters = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t width = static_cast<std::uint32_t>(state.range(1));

  ServiceOptions options;
  options.warm_sat_solvers = warm;
  Service service(options);
  CompileOptions copts;
  copts.forced_backend = "sat";
  StatusOr<CompiledQuery> q = service.Compile(kQuery, copts);
  CQA_CHECK(q.ok());
  std::vector<FactSpec> facts = WideClusteredFacts(num_clusters, width);
  CQA_CHECK(service
                .RegisterDatabase("stream",
                                  BuildDatabase(q->query().schema(), facts))
                .ok());
  CQA_CHECK(service.Solve(*q, "stream").ok());

  Rng rng(0xBE7C);
  std::uint64_t fresh_counter = 0;
  std::uint32_t hot = std::min(num_clusters, kSatHotClusters);
  for (auto _ : state) {
    std::string c = "w" + std::to_string(rng.Below(hot)) + "_";
    std::vector<FactSpec> delta = {
        {"R", {c + "a", "fresh" + std::to_string(fresh_counter++)}}};
    CQA_CHECK(service.InsertFacts("stream", delta).ok());
    StatusOr<SolveReport> after_insert = service.Solve(*q, "stream");
    CQA_CHECK(after_insert.ok());
    CQA_CHECK(after_insert->sat_warm == warm);
    benchmark::DoNotOptimize(after_insert->certain);
    CQA_CHECK(service.DeleteFacts("stream", delta).ok());
    StatusOr<SolveReport> after_delete = service.Solve(*q, "stream");
    CQA_CHECK(after_delete.ok());
    benchmark::DoNotOptimize(after_delete->certain);
  }
  ServiceStats stats = service.Stats();
  const ServiceStats::DatabaseStats& d = stats.databases[0];
  double solves = 2.0 * static_cast<double>(state.iterations());
  state.counters["solves"] =
      benchmark::Counter(solves, benchmark::Counter::kIsRate);
  if (warm) {
    CQA_CHECK(d.sat.solves > 0);
    state.counters["warm_solves_per_solve"] =
        static_cast<double>(d.sat.warm_solves) / solves;
    state.counters["clauses_retracted"] =
        static_cast<double>(d.sat.clauses_retracted);
    state.counters["learned_kept"] = static_cast<double>(d.sat.learned_kept);
  }
}

void BM_SatSessionSolve(benchmark::State& state) {
  SatResolveBody(state, /*warm=*/true);
}

void BM_SatRebuildEncodingSolve(benchmark::State& state) {
  SatResolveBody(state, /*warm=*/false);
}

void DeltaArgs(benchmark::internal::Benchmark* bench) {
  for (std::int64_t facts : {10002, 30000}) {
    for (std::int64_t delta : {1, 16, 128}) {
      bench->Args({facts, delta});
    }
  }
  bench->Unit(benchmark::kMillisecond);
}

void SatArgs(benchmark::internal::Benchmark* bench) {
  // {clusters, cluster width}: 64x64 = 4k facts, 256x64 = 16k facts.
  for (std::int64_t clusters : {64, 256}) {
    for (std::int64_t width : {16, 64}) {
      bench->Args({clusters, width});
    }
  }
  bench->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_DeltaSolve)->Apply(DeltaArgs);
BENCHMARK(BM_RebuildSolve)->Apply(DeltaArgs);
BENCHMARK(BM_SatSessionSolve)->Apply(SatArgs);
BENCHMARK(BM_SatRebuildEncodingSolve)->Apply(SatArgs);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  std::string label = cqa::bench::FlagValue(argc, argv, "--label", "adhoc");
  std::string out_dir = cqa::bench::FlagValue(argc, argv, "--out", "");
  benchmark::Initialize(&argc, argv);
  cqa::bench::JsonEmitReporter reporter("incremental", label);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.WriteMerged(out_dir);
  return 0;
}
