// bench_churn: sustained insert/delete/solve churn against one registered
// database — the ROADMAP's long-lived high-churn deployment in miniature.
//
// Two experiments:
//   1. Compaction: alternating delete/insert over a fixed live set, with
//      automatic tombstone compaction off vs on. Reports mutations/sec,
//      solves/sec, and the peak resident fact-slot count (off: slots grow
//      with every re-insert; on: bounded by alive/(1-dead_ratio)).
//   2. Locking: T threads, each churning its own disjoint q-connected
//      components and solving after every round, under the PR 3-style
//      exclusive per-database lock (ServiceOptions::
//      exclusive_lock_baseline) vs the component-sharded scheme. Reports
//      combined throughput and the speedup.
//
// Custom main (not google-benchmark): the experiments need a shared
// Service across threads, peak-stat polling, and an A/B over
// ServiceOptions, which fit a plain driver better than the fixture API.
//
//   ./bench_churn [--smoke] [--facts=N] [--ops=N] [--threads=N]
//
// --smoke shrinks everything for CI artifact runs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "bench_json.h"

namespace cqa {
namespace {

struct Config {
  std::size_t facts = 10000;   // Live facts in the database.
  std::size_t ops = 100000;    // Mutations per experiment.
  std::size_t threads = 8;     // Max threads for the locking experiment.
  bool smoke = false;
  std::string label = "adhoc";  // Run label in BENCH_churn.json.
  std::string out_dir;          // BENCH file directory ("" = repo root).
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Disjoint two-fact inconsistent components for q3 = R(x | y) R(y | z):
/// block {R(a|b), R(a|c)} per index, namespaced per thread.
std::string NsName(std::size_t thread, const char* stem, std::size_t i) {
  return "t" + std::to_string(thread) + stem + std::to_string(i);
}

Database BuildDatabase(const Schema& schema, std::size_t threads,
                       std::size_t components_per_thread) {
  Database db(schema);
  for (std::size_t t = 0; t < threads; ++t) {
    for (std::size_t i = 0; i < components_per_thread; ++i) {
      db.AddFactNamed(0, {NsName(t, "a", i), NsName(t, "b", i)});
      db.AddFactNamed(0, {NsName(t, "a", i), NsName(t, "c", i)});
    }
  }
  return db;
}

// ---------------------------------------------------------------------
// Experiment 1: compaction on vs off under alternating delete/insert.
// ---------------------------------------------------------------------

void RunCompactionExperiment(const Config& config, bool compaction,
                             std::FILE* out, bench::BenchJsonWriter* writer) {
  ServiceOptions options;
  options.compact_dead_ratio = compaction ? 0.4 : 2.0;  // >=1 disables.
  options.compact_min_slots = 256;
  // Keep the verdict cache above the component count at any --facts:
  // this experiment measures compaction, not cache-thrash behavior.
  options.verdict_cache.max_entries =
      std::max<std::size_t>(options.verdict_cache.max_entries, config.facts);
  Service service(options);
  auto q = service.Compile("R(x | y) R(y | z)");
  if (!q.ok()) {
    std::fprintf(stderr, "compile: %s\n", q.status().ToString().c_str());
    std::exit(1);
  }
  std::size_t components = config.facts / 2;
  (void)service.RegisterDatabase(
      "db", BuildDatabase(q->query().schema(), 1, components));

  std::uint64_t peak_slots = 0;
  std::uint64_t compactions = 0;
  std::uint64_t solves = 0;
  double solve_seconds = 0.0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t op = 0; op < config.ops; op += 2) {
    std::size_t i = (op / 2) % components;
    FactSpec spec{"R", {NsName(0, "a", i), NsName(0, "c", i)}};
    MutationStats stats;
    (void)service.DeleteFacts("db", {spec}, &stats);
    (void)service.InsertFacts("db", {spec}, &stats);
    compactions += stats.compactions;
    if ((op / 2) % 64 == 0) {
      auto solve_start = std::chrono::steady_clock::now();
      auto report = service.Solve(*q, "db");
      solve_seconds += Seconds(solve_start);
      ++solves;
      if (!report.ok()) std::exit(1);
      ServiceStats snapshot = service.Stats();
      peak_slots = std::max(peak_slots, snapshot.databases[0].fact_slots);
    }
  }
  double elapsed = Seconds(start);
  ServiceStats stats = service.Stats();
  std::fprintf(
      out,
      "compaction=%-3s  mutations/sec=%9.0f  solves/sec=%7.1f  "
      "peak_slots=%8llu  final_slots=%8llu  alive=%llu  compactions=%llu\n",
      compaction ? "on" : "off",
      static_cast<double>(config.ops) / (elapsed - solve_seconds),
      static_cast<double>(solves) / solve_seconds,
      static_cast<unsigned long long>(peak_slots),
      static_cast<unsigned long long>(stats.databases[0].fact_slots),
      static_cast<unsigned long long>(stats.databases[0].alive_facts),
      static_cast<unsigned long long>(compactions));
  bench::BenchEntry entry;
  entry.name = std::string("compaction/") + (compaction ? "on" : "off");
  entry.variant = "churn";
  entry.wall_seconds = elapsed;
  entry.iterations = config.ops;
  entry.counters = {
      {"mutations_per_sec",
       static_cast<double>(config.ops) / (elapsed - solve_seconds)},
      {"solves_per_sec", static_cast<double>(solves) / solve_seconds},
      {"peak_slots", static_cast<double>(peak_slots)},
      {"final_slots", static_cast<double>(stats.databases[0].fact_slots)},
      {"alive", static_cast<double>(stats.databases[0].alive_facts)},
      {"compactions", static_cast<double>(compactions)},
  };
  writer->Add(std::move(entry));
}

// ---------------------------------------------------------------------
// Experiment 2: exclusive-lock baseline vs component-sharded locking,
// T threads of mutate+solve rounds on disjoint components.
// ---------------------------------------------------------------------

double RunLockingExperiment(const Config& config, std::size_t threads,
                            bool baseline, std::FILE* out,
                            bench::BenchJsonWriter* writer) {
  ServiceOptions options;
  options.exclusive_lock_baseline = baseline;
  options.compact_dead_ratio = 0.4;
  options.compact_min_slots = 256;
  options.verdict_cache.max_entries =
      std::max<std::size_t>(options.verdict_cache.max_entries, config.facts);
  Service service(options);
  auto q = service.Compile("R(x | y) R(y | z)");
  if (!q.ok()) std::exit(1);
  std::size_t per_thread = std::max<std::size_t>(1, config.facts / 2 / threads);
  (void)service.RegisterDatabase(
      "db", BuildDatabase(q->query().schema(), threads, per_thread));
  // Warm the verdict cache so the measured loop is steady-state churn,
  // not first-solve partition building.
  (void)service.Solve(*q, "db");

  std::size_t rounds_per_thread = config.ops / 2 / threads;
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t round = 0; round < rounds_per_thread; ++round) {
        std::size_t i = round % per_thread;
        FactSpec spec{"R", {NsName(t, "a", i), NsName(t, "c", i)}};
        if (!service.DeleteFacts("db", {spec}).ok()) ++failures;
        if (!service.InsertFacts("db", {spec}).ok()) ++failures;
        if (!service.Solve(*q, "db").ok()) ++failures;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = Seconds(start);
  if (failures.load() != 0) {
    std::fprintf(stderr, "locking experiment failures: %llu\n",
                 static_cast<unsigned long long>(failures.load()));
    std::exit(1);
  }
  double rounds = static_cast<double>(rounds_per_thread * threads);
  double per_sec = rounds / elapsed;
  std::fprintf(out,
               "threads=%2zu  locking=%-9s  rounds/sec=%9.0f  "
               "(each round = 2 mutations + 1 solve)\n",
               threads, baseline ? "exclusive" : "sharded", per_sec);
  bench::BenchEntry entry;
  entry.name = "locking/threads=" + std::to_string(threads);
  entry.variant = baseline ? "exclusive" : "sharded";
  entry.wall_seconds = elapsed;
  entry.iterations = rounds_per_thread * threads;
  entry.counters = {{"rounds_per_sec", per_sec},
                    {"threads", static_cast<double>(threads)}};
  writer->Add(std::move(entry));
  return per_sec;
}

void Run(const Config& config) {
  std::FILE* out = stdout;
  bench::BenchJsonWriter writer("churn", config.label);
  std::fprintf(out,
               "bench_churn: facts=%zu ops=%zu max_threads=%zu%s\n\n",
               config.facts, config.ops, config.threads,
               config.smoke ? " (smoke)" : "");

  std::fprintf(out, "[1] tombstone compaction (single-threaded churn)\n");
  RunCompactionExperiment(config, /*compaction=*/false, out, &writer);
  RunCompactionExperiment(config, /*compaction=*/true, out, &writer);

  std::fprintf(out, "\n[2] exclusive-lock baseline vs sharded locking\n");
  double base1 =
      RunLockingExperiment(config, 1, /*baseline=*/true, out, &writer);
  (void)base1;
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 2; t <= config.threads; t *= 2) {
    thread_counts.push_back(t);
  }
  for (std::size_t t : thread_counts) {
    double exclusive =
        RunLockingExperiment(config, t, /*baseline=*/true, out, &writer);
    double sharded =
        RunLockingExperiment(config, t, /*baseline=*/false, out, &writer);
    std::fprintf(out, "threads=%2zu  sharded/exclusive speedup: %.2fx\n", t,
                 sharded / exclusive);
  }

  std::string path = writer.WriteMerged(config.out_dir);
  std::fprintf(out, "\nwrote %s (label=%s, %zu entries)\n", path.c_str(),
               config.label.c_str(), writer.entries().size());
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  // Line-buffer stdout so the nightly CI tee shows progress live.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  cqa::Config config;
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw != 0) config.threads = std::max<std::size_t>(2, hw);
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strncmp(arg, "--facts=", 8) == 0) {
      config.facts = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--ops=", 6) == 0) {
      config.ops = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.threads = std::strtoull(arg + 10, nullptr, 10);
      threads_given = true;
    } else if (std::strncmp(arg, "--label=", 8) == 0) {
      config.label = arg + 8;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      config.out_dir = arg + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--facts=N] [--ops=N] [--threads=N] "
                   "[--label=L] [--out=DIR]\n",
                   argv[0]);
      return 2;
    }
  }
  if (config.smoke) {
    config.facts = std::min<std::size_t>(config.facts, 2000);
    config.ops = std::min<std::size_t>(config.ops, 20000);
    if (!threads_given) {
      config.threads = std::min<std::size_t>(config.threads, 4);
    }
  }
  cqa::Run(config);
  return 0;
}
