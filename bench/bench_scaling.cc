// EXP-S1: scaling ablation on growing workloads, recorded per PR.
//
// Measures the storage-bound hot paths — database preparation (block
// partition + per-relation indexes), the classify-once dispatcher solve,
// and two-atom solution enumeration — on q3/q5/q6 random instances up to
// the 30k-fact tier, plus the algorithm ablation on q6. Every case lands
// in BENCH_scaling.json via bench/bench_json so the columnar-layout
// before/after (and every future PR's numbers) are recorded side by side
// instead of living in commit-message prose.
//
// Custom main (not google-benchmark): the cases share built databases,
// and the emitter wants explicit variant labels (--variant=row-store for
// a pre-refactor binary, the columnar default afterwards).
//
//   ./bench_scaling [--smoke] [--label=L] [--variant=V] [--out=DIR]

#include <cstdio>
#include <string>
#include <vector>

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "bench_json.h"
#include "gen/workloads.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {
namespace {

struct Workload {
  const char* name;
  const char* query;
};

const Workload kWorkloads[] = {
    {"q3", "R(x | y) R(y | z)"},
    {"q5", "R(x | y, x) R(y | x, u)"},
    {"q6", "R(x | y, z) R(z | x, y)"},
};

Database Make(const ConjunctiveQuery& q, std::uint32_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  InstanceParams params;
  params.num_facts = n;
  params.domain_size = 2 + n / 8;
  return RandomInstance(q, params, &rng);
}

struct Options {
  bool smoke = false;
  std::string label = "adhoc";
  std::string variant = "columnar";
  std::string out_dir;
  double min_seconds = 0.3;
};

void Run(const Options& opt) {
  bench::BenchJsonWriter writer("scaling", opt.label);
  Service service;

  // Preparation tiers: block partition + per-relation index build on q3
  // instances, the purest storage-layout path (no algorithm above it).
  // This carries the 30k acceptance tier — the dispatcher backends are
  // superlinear and stay on their own, smaller tiers below.
  {
    StatusOr<CompiledQuery> q = service.Compile(kWorkloads[0].query);
    CQA_CHECK_MSG(q.ok(), "benchmark query failed to compile");
    std::vector<std::uint32_t> sizes =
        opt.smoke ? std::vector<std::uint32_t>{512}
                  : std::vector<std::uint32_t>{3000, 10000, 30000};
    for (std::uint32_t n : sizes) {
      Database fresh = Make(q->query(), n, 99);
      bench::Measurement m = bench::Measure(
          [&] {
            Database copy = fresh;  // Copy resets the lazy partition state.
            PreparedDatabase pdb(copy);
            CQA_CHECK(pdb.blocks().size() > 0);
          },
          opt.min_seconds);
      writer.Add("prepare/q3/" + std::to_string(n), opt.variant, m,
                 {{"facts", static_cast<double>(fresh.NumFacts())}});
      std::printf("%-24s  %8.3f ms/op\n",
                  ("prepare/q3/" + std::to_string(n)).c_str(),
                  1e3 * m.wall_seconds / static_cast<double>(m.iterations));
    }
  }

  // Dispatcher tiers: the classify-once solve through each workload's
  // dichotomy backend (cert2 / certk / certk+matching) — all superlinear
  // fixpoints, so the tiers stay moderate.
  struct Tier {
    int workload;
    std::uint32_t facts;
  };
  std::vector<Tier> tiers =
      opt.smoke ? std::vector<Tier>{{0, 128}, {1, 128}, {2, 128}}
                : std::vector<Tier>{{0, 128}, {0, 256}, {0, 512}, {1, 256},
                                    {1, 1024}, {2, 256}, {2, 1024}};
  for (const Tier& tier : tiers) {
    const Workload& w = kWorkloads[tier.workload];
    StatusOr<CompiledQuery> q = service.Compile(w.query);
    CQA_CHECK_MSG(q.ok(), "benchmark query failed to compile");
    Database db = Make(q->query(), tier.facts, 99);
    std::string case_name =
        std::string("dispatcher/") + w.name + "/" + std::to_string(tier.facts);

    bool certain = false;
    bench::Measurement m = bench::Measure(
        [&] {
          StatusOr<SolveReport> report = service.Solve(*q, db);
          CQA_CHECK(report.ok());
          certain = report->certain;
        },
        opt.min_seconds);
    writer.Add(case_name, opt.variant, m,
               {{"facts", static_cast<double>(db.NumFacts())},
                {"blocks", static_cast<double>(db.blocks().size())}});
    std::printf("%-24s  %8.3f ms/op  certain=%d\n", case_name.c_str(),
                1e3 * m.wall_seconds / static_cast<double>(m.iterations),
                certain ? 1 : 0);
  }

  // Algorithm ablation on q6 (fixed size): exhaustive vs cert3 vs
  // matching vs combined on one instance.
  {
    auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
    Database db = Make(q6, opt.smoke ? 48 : 96, 98);
    PreparedDatabase pdb(db);
    struct Algo {
      const char* name;
      bool (*run)(const ConjunctiveQuery&, const PreparedDatabase&);
    };
    const Algo algos[] = {
        {"exhaustive",
         [](const ConjunctiveQuery& q, const PreparedDatabase& p) {
           return ExhaustiveCertain(q, p);
         }},
        {"cert3",
         [](const ConjunctiveQuery& q, const PreparedDatabase& p) {
           return CertK(q, p, 3);
         }},
        {"not-matching",
         [](const ConjunctiveQuery& q, const PreparedDatabase& p) {
           return !MatchingAlgorithm(q, p);
         }},
        {"combined",
         [](const ConjunctiveQuery& q, const PreparedDatabase& p) {
           return CombinedCertain(q, p, 3);
         }},
    };
    for (const Algo& algo : algos) {
      bool result = false;
      bench::Measurement m = bench::Measure(
          [&] { result = algo.run(q6, pdb); }, opt.min_seconds);
      writer.Add(std::string("algo_q6/") + algo.name, opt.variant, m,
                 {{"facts", static_cast<double>(db.NumFacts())},
                  {"certain", result ? 1.0 : 0.0}});
    }
  }

  // Ingest: fact-by-fact AddFact (every insert probes the content index
  // for set semantics) followed by a FindFact sweep — the ArgSpan
  // equality + FactHash hot path, on an arity-4 relation so the word-wise
  // tuple compare/hash has whole 8-byte words to chew.
  {
    auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
    std::vector<std::uint32_t> sizes =
        opt.smoke ? std::vector<std::uint32_t>{1024}
                  : std::vector<std::uint32_t>{8192, 30000};
    for (std::uint32_t n : sizes) {
      Database source = Make(q, n, 96);
      std::vector<Fact> facts;
      facts.reserve(source.NumFacts());
      for (FactId f = 0; f < source.NumFacts(); ++f) {
        facts.push_back(source.MaterializeFact(f));
      }
      bench::Measurement m = bench::Measure(
          [&] {
            Database db(source.schema());
            for (const Fact& f : facts) {
              db.AddFact(f.relation, f.args);
            }
            std::size_t found = 0;
            for (const Fact& f : facts) {
              found += db.FindFact(f) != Database::kNoFact ? 1 : 0;
            }
            CQA_CHECK(found == facts.size());
          },
          opt.min_seconds);
      writer.Add("ingest/" + std::to_string(n), opt.variant, m,
                 {{"facts", static_cast<double>(facts.size())}});
      std::printf("%-24s  %8.3f ms/op\n",
                  ("ingest/" + std::to_string(n)).c_str(),
                  1e3 * m.wall_seconds / static_cast<double>(m.iterations));
    }
  }

  // Solution enumeration: the hash join over per-relation fact indexes —
  // the tight loop the argument arena feeds directly.
  {
    auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
    std::vector<std::uint32_t> sizes =
        opt.smoke ? std::vector<std::uint32_t>{1024}
                  : std::vector<std::uint32_t>{4096, 16384, 30000};
    for (std::uint32_t n : sizes) {
      Database db = Make(q, n, 97);
      PreparedDatabase pdb(db);
      std::size_t pairs = 0;
      bench::Measurement m = bench::Measure(
          [&] {
            SolutionSet s = ComputeSolutions(q, pdb);
            pairs = s.pairs.size();
          },
          opt.min_seconds);
      writer.Add("solutions/" + std::to_string(n), opt.variant, m,
                 {{"facts", static_cast<double>(db.NumFacts())},
                  {"pairs", static_cast<double>(pairs)}});
      std::printf("%-24s  %8.3f ms/op  pairs=%zu\n",
                  ("solutions/" + std::to_string(n)).c_str(),
                  1e3 * m.wall_seconds / static_cast<double>(m.iterations),
                  pairs);
    }
  }

  std::string path = writer.WriteMerged(opt.out_dir);
  std::printf("\nwrote %s (label=%s, variant=%s, %zu entries)\n", path.c_str(),
              opt.label.c_str(), opt.variant.c_str(),
              writer.entries().size());
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::Options opt;
  opt.smoke = cqa::bench::HasFlag(argc, argv, "--smoke");
  if (opt.smoke) opt.min_seconds = 0.02;
  opt.label = cqa::bench::FlagValue(argc, argv, "--label",
                                    opt.smoke ? "smoke" : "adhoc");
  opt.variant = cqa::bench::FlagValue(argc, argv, "--variant", "columnar");
  opt.out_dir = cqa::bench::FlagValue(argc, argv, "--out", "");
  cqa::Run(opt);
  return 0;
}
