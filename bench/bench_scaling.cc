// EXP-S1: ablation across algorithms — exhaustive vs Cert_k vs matching vs
// combined vs the classify-once dispatcher, on the same growing workloads.
// The point is the shape: the PTime algorithms scale polynomially where the
// exhaustive baseline blows up, and the dispatcher matches the best
// applicable algorithm.

#include <benchmark/benchmark.h>

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

struct Workload {
  const char* name;
  const char* query;
};

const Workload kWorkloads[] = {
    {"q3", "R(x | y) R(y | z)"},
    {"q5", "R(x | y, x) R(y | x, u)"},
    {"q6", "R(x | y, z) R(z | x, y)"},
};

Database Make(const ConjunctiveQuery& q, std::uint32_t n,
              std::uint64_t seed) {
  Rng rng(seed);
  InstanceParams params;
  params.num_facts = n;
  params.domain_size = 2 + n / 8;
  return RandomInstance(q, params, &rng);
}

void BM_Dispatcher(benchmark::State& state) {
  const Workload& w = kWorkloads[state.range(0)];
  Service service;
  StatusOr<CompiledQuery> q = service.Compile(w.query);
  CQA_CHECK_MSG(q.ok(), "benchmark query failed to compile");
  Database db =
      Make(q->query(), static_cast<std::uint32_t>(state.range(1)), 99);
  for (auto _ : state) {
    StatusOr<SolveReport> report = service.Solve(*q, db);
    benchmark::DoNotOptimize(report);
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_Dispatcher)
    ->ArgsProduct({{0, 1, 2}, {32, 128, 256}});

void BM_AllAlgorithmsOnQ6(benchmark::State& state) {
  auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
  Database db = Make(q6, 96, 98);
  switch (state.range(0)) {
    case 0:
      for (auto _ : state) {
        benchmark::DoNotOptimize(ExhaustiveCertain(q6, db));
      }
      state.SetLabel("exhaustive");
      break;
    case 1:
      for (auto _ : state) benchmark::DoNotOptimize(CertK(q6, db, 3));
      state.SetLabel("cert3");
      break;
    case 2:
      for (auto _ : state) {
        benchmark::DoNotOptimize(NotMatchingCertain(q6, db));
      }
      state.SetLabel("not-matching");
      break;
    case 3:
      for (auto _ : state) {
        benchmark::DoNotOptimize(CombinedCertain(q6, db, 3));
      }
      state.SetLabel("combined");
      break;
  }
}
BENCHMARK(BM_AllAlgorithmsOnQ6)->DenseRange(0, 3);

void BM_SolutionEnumeration(benchmark::State& state) {
  auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  Database db = Make(q, static_cast<std::uint32_t>(state.range(0)), 97);
  for (auto _ : state) {
    SolutionSet s = ComputeSolutions(q, db);
    benchmark::DoNotOptimize(s.pairs.size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolutionEnumeration)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity();

}  // namespace
}  // namespace cqa

BENCHMARK_MAIN();
