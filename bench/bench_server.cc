// bench_server: end-to-end serving-layer throughput and latency — the
// full path a real client pays (frame encode → socket → admission queue
// → worker pipeline → solve → frame decode), not just the engine.
//
// Tiers:
//   1. Closed-loop scaling over in-process socketpair transport: N
//      clients (1/2/4/8), each issuing requests back-to-back against a
//      shared registered database. Reports QPS and p50/p95/p99 request
//      latency per tier.
//   2. The same workload over real TCP (127.0.0.1), to price the kernel
//      network stack against tier 1.
//   3. Overload: more pipelining clients than workers against a small
//      bounded queue — the interesting numbers are the clean-shed rate
//      (every shed is a typed kOverloaded, never a lost response) and
//      the bounded peak queue depth.
//
// Custom main (not google-benchmark): the experiments need client thread
// fleets, a live Server, and post-run counter assertions, which fit a
// plain driver better than the fixture API.
//
//   ./bench_server [--smoke] [--requests=N] [--label=L] [--out=DIR]
//
// --smoke shrinks everything for CI artifact runs. Results append to
// BENCH_server.json via the shared emitter.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "bench_json.h"
#include "gen/workloads.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cqa {
namespace {

constexpr const char* kQuery = "R(x | y) R(y | z)";

struct Config {
  std::size_t requests_per_client = 2000;
  bool smoke = false;
  std::string label = "adhoc";
  std::string out_dir;
};

struct TierResult {
  double wall_seconds = 0.0;
  std::uint64_t requests = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
};

double Percentile(std::vector<double>& sorted_micros, double pct) {
  if (sorted_micros.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      pct * static_cast<double>(sorted_micros.size() - 1));
  return sorted_micros[idx];
}

void RegisterWorkload(Service& service, bool smoke) {
  StatusOr<CompiledQuery> q = service.Compile(kQuery);
  CQA_CHECK(q.ok());
  Rng rng(0xBE7C);
  Database db =
      ChainInstance(q->query(), smoke ? 6 : 24, 0.5, 0.6, &rng);
  CQA_CHECK(service.RegisterDatabase("bench", std::move(db)).ok());
  // Warm the compile cache and the incremental solver so the tiers
  // measure steady-state serving, not first-touch preparation.
  CQA_CHECK(service.Solve(*q, "bench").ok());
}

server::Client Connect(server::Server& server, bool tcp) {
  if (tcp) {
    StatusOr<server::Client> client =
        server::Client::ConnectTcp(server.port());
    CQA_CHECK(client.ok());
    return std::move(*client);
  }
  int client_fd = -1;
  int server_fd = -1;
  CQA_CHECK(server::LocalSocketPair(&client_fd, &server_fd).ok());
  CQA_CHECK(server.ServeFd(server_fd).ok());
  return server::Client::FromFd(client_fd);
}

/// Closed-loop tier: `clients` threads, each Call()ing back-to-back.
TierResult RunClosedLoop(Service& service, std::size_t clients,
                         std::size_t per_client, bool tcp) {
  server::ServerOptions options;
  options.num_workers = 4;
  options.max_queue = 256;
  server::Server server(service, options);
  if (tcp) CQA_CHECK(server.ListenTcp(0).ok());

  std::mutex latencies_mu;
  std::vector<double> latencies_micros;
  latencies_micros.reserve(clients * per_client);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  fleet.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    fleet.emplace_back([&, c] {
      server::Client client = Connect(server, tcp);
      std::vector<double> local;
      local.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        server::Request req;
        req.request_id = c * 1000000 + i + 1;
        req.db_name = "bench";
        req.query_text = kQuery;
        auto t0 = std::chrono::steady_clock::now();
        StatusOr<server::Response> resp = client.Call(req);
        auto t1 = std::chrono::steady_clock::now();
        CQA_CHECK(resp.ok());
        CQA_CHECK_MSG(resp->code == StatusCode::kOk,
                      "closed-loop tier must never shed");
        local.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
      std::lock_guard lock(latencies_mu);
      latencies_micros.insert(latencies_micros.end(), local.begin(),
                              local.end());
    });
  }
  for (std::thread& t : fleet) t.join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  server.Stop();

  std::sort(latencies_micros.begin(), latencies_micros.end());
  TierResult result;
  result.wall_seconds = wall;
  result.requests = clients * per_client;
  result.p50_micros = Percentile(latencies_micros, 0.50);
  result.p95_micros = Percentile(latencies_micros, 0.95);
  result.p99_micros = Percentile(latencies_micros, 0.99);
  return result;
}

void EmitTier(const char* name, const char* variant, const TierResult& r,
              std::map<std::string, double> extra,
              bench::BenchJsonWriter* writer) {
  bench::BenchEntry entry;
  entry.name = name;
  entry.variant = variant;
  entry.wall_seconds = r.wall_seconds;
  entry.iterations = r.requests;
  entry.seconds_per_op = r.wall_seconds / static_cast<double>(r.requests);
  entry.ops_per_second = static_cast<double>(r.requests) / r.wall_seconds;
  entry.counters["p50_micros"] = r.p50_micros;
  entry.counters["p95_micros"] = r.p95_micros;
  entry.counters["p99_micros"] = r.p99_micros;
  for (auto& [key, value] : extra) entry.counters[key] = value;
  std::printf("%-28s %-10s  %8.0f qps  p50=%6.0fus p95=%6.0fus p99=%6.0fus\n",
              name, variant, entry.ops_per_second, r.p50_micros,
              r.p95_micros, r.p99_micros);
  writer->Add(std::move(entry));
}

/// Overload tier: pipelining clients against a tiny queue; reports the
/// shed rate and asserts the sheds were clean and the queue bounded.
void RunOverloadTier(Service& service, const Config& config,
                     bench::BenchJsonWriter* writer) {
  constexpr std::size_t kClients = 16;
  const std::size_t per_client = config.smoke ? 50 : 400;

  server::ServerOptions options;
  options.num_workers = 2;
  options.max_queue = 8;
  server::Server server(service, options);

  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> shed_count{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> fleet;
  for (std::size_t c = 0; c < kClients; ++c) {
    fleet.emplace_back([&, c] {
      server::Client client = Connect(server, /*tcp=*/false);
      for (std::size_t i = 0; i < per_client; ++i) {
        server::Request req;
        req.request_id = c * 1000000 + i + 1;
        req.db_name = "bench";
        req.query_text = kQuery;
        CQA_CHECK(client.Send(req).ok());
      }
      for (std::size_t i = 0; i < per_client; ++i) {
        StatusOr<server::Response> resp = client.Receive();
        CQA_CHECK(resp.ok());
        if (resp->code == StatusCode::kOk) {
          ++ok_count;
        } else {
          CQA_CHECK_MSG(resp->code == StatusCode::kOverloaded,
                        "overload tier saw a non-kOverloaded failure");
          ++shed_count;
        }
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  ServiceStats stats = server.Stats();
  server.Stop();
  CQA_CHECK_MSG(shed_count.load() > 0,
                "overload tier failed to overload the queue");
  CQA_CHECK(ok_count.load() + shed_count.load() == kClients * per_client);
  CQA_CHECK_MSG(stats.server.peak_queue_depth <= stats.server.queue_capacity,
                "queue depth exceeded its bound");

  TierResult result;
  result.wall_seconds = wall;
  result.requests = ok_count.load();  // QPS counts *executed* requests
  std::map<std::string, double> extra;
  extra["clients"] = static_cast<double>(kClients);
  extra["shed_overloaded"] = static_cast<double>(shed_count.load());
  extra["offered"] = static_cast<double>(kClients * per_client);
  extra["peak_queue_depth"] =
      static_cast<double>(stats.server.peak_queue_depth);
  extra["queue_capacity"] = static_cast<double>(stats.server.queue_capacity);
  EmitTier("serve/q3/overload", "pipelined", result, std::move(extra),
           writer);
}

void Run(const Config& config) {
  Service service;
  RegisterWorkload(service, config.smoke);
  bench::BenchJsonWriter writer("server", config.label);
  std::printf("bench_server: requests/client=%zu%s\n\n",
              config.requests_per_client, config.smoke ? " (smoke)" : "");

  for (std::size_t clients : {1u, 2u, 4u, 8u}) {
    TierResult r = RunClosedLoop(service, clients,
                                 config.requests_per_client, /*tcp=*/false);
    std::string name = "serve/q3/clients=" + std::to_string(clients);
    std::map<std::string, double> extra;
    extra["clients"] = static_cast<double>(clients);
    EmitTier(name.c_str(), "socketpair", r, std::move(extra), &writer);
  }

  {
    TierResult r = RunClosedLoop(service, 4, config.requests_per_client,
                                 /*tcp=*/true);
    std::map<std::string, double> extra;
    extra["clients"] = 4.0;
    EmitTier("serve/q3/clients=4", "tcp", r, std::move(extra), &writer);
  }

  RunOverloadTier(service, config, &writer);

  std::string path = writer.WriteMerged(config.out_dir);
  std::printf("\nwrote %s (label=%s, %zu entries)\n", path.c_str(),
              config.label.c_str(), writer.entries().size());
}

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::Config config;
  config.smoke = cqa::bench::HasFlag(argc, argv, "--smoke");
  if (config.smoke) config.requests_per_client = 150;
  std::string requests = cqa::bench::FlagValue(argc, argv, "--requests", "");
  if (!requests.empty()) {
    config.requests_per_client =
        static_cast<std::size_t>(std::strtoull(requests.c_str(), nullptr, 10));
  }
  config.label = cqa::bench::FlagValue(argc, argv, "--label",
                                       config.smoke ? "smoke" : "adhoc");
  config.out_dir = cqa::bench::FlagValue(argc, argv, "--out", "");
  cqa::Run(config);
  return 0;
}
