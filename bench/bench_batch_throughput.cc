// EXP-E1: batch throughput through the public facade. Queries/sec of
// Service::SolveBatch across 1-8 worker threads vs a plain serial loop of
// Service::Solve, on the q3 (Cert_2), q5 (Cert_k) and q6 (Cert_k OR NOT
// matching) workloads. The compiled query (classification + backend) is
// shared; each job builds its own PreparedDatabase, exactly as in the
// serial loop, so the comparison isolates the scheduling win.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "api/service.h"
#include "base/check.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace cqa {
namespace {

constexpr std::uint32_t kBatchSize = 64;

std::vector<Database> MakeWorkload(const ConjunctiveQuery& q,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Database> dbs;
  dbs.reserve(kBatchSize);
  for (std::uint32_t i = 0; i < kBatchSize; ++i) {
    InstanceParams params;
    params.num_facts = 48;
    params.domain_size = 6;
    dbs.push_back(RandomInstance(q, params, &rng));
  }
  return dbs;
}

CompiledQuery MustCompile(Service& service, const char* query_text) {
  StatusOr<CompiledQuery> q = service.Compile(query_text);
  CQA_CHECK_MSG(q.ok(), "benchmark query failed to compile");
  return *q;
}

void RunSerial(benchmark::State& state, const char* query_text,
               std::uint64_t seed) {
  Service service;
  CompiledQuery q = MustCompile(service, query_text);
  std::vector<Database> dbs = MakeWorkload(q.query(), seed);
  std::uint64_t answered = 0;
  for (auto _ : state) {
    for (const Database& db : dbs) {
      StatusOr<SolveReport> report = service.Solve(q, db);
      benchmark::DoNotOptimize(report);
      ++answered;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(answered));
}

void RunBatch(benchmark::State& state, const char* query_text,
              std::uint64_t seed) {
  ServiceOptions options;
  options.batch_threads = static_cast<std::uint32_t>(state.range(0));
  Service service(options);
  CompiledQuery q = MustCompile(service, query_text);
  std::vector<Database> dbs = MakeWorkload(q.query(), seed);
  std::uint64_t answered = 0;
  double qps = 0.0;
  for (auto _ : state) {
    BatchStats stats;
    std::vector<StatusOr<SolveReport>> reports =
        service.SolveBatch(q, dbs, &stats);
    benchmark::DoNotOptimize(reports);
    answered += stats.queries;
    qps = stats.queries_per_sec;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(answered));
  state.counters["qps"] = qps;
}

void BM_Serial_Q3(benchmark::State& state) {
  RunSerial(state, "R(x | y) R(y | z)", 42);
}
BENCHMARK(BM_Serial_Q3);

void BM_Batch_Q3(benchmark::State& state) {
  RunBatch(state, "R(x | y) R(y | z)", 42);
}
BENCHMARK(BM_Batch_Q3)->DenseRange(1, 8);

void BM_Serial_Q5(benchmark::State& state) {
  RunSerial(state, "R(x | y, x) R(y | x, u)", 43);
}
BENCHMARK(BM_Serial_Q5);

void BM_Batch_Q5(benchmark::State& state) {
  RunBatch(state, "R(x | y, x) R(y | x, u)", 43);
}
BENCHMARK(BM_Batch_Q5)->DenseRange(1, 8);

void BM_Serial_Q6(benchmark::State& state) {
  RunSerial(state, "R(x | y, z) R(z | x, y)", 44);
}
BENCHMARK(BM_Serial_Q6);

void BM_Batch_Q6(benchmark::State& state) {
  RunBatch(state, "R(x | y, z) R(z | x, y)", 44);
}
BENCHMARK(BM_Batch_Q6)->DenseRange(1, 8);

}  // namespace
}  // namespace cqa

BENCHMARK_MAIN();
