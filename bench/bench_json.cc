#include "bench_json.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cqa {
namespace bench {
namespace {

std::string RunCommand(const char* cmd) {
  std::string out;
#if !defined(_WIN32)
  FILE* pipe = popen(cmd, "r");
  if (pipe == nullptr) return out;
  char buf[256];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
#endif
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out;
}

// -- perf_event_open cache counters ---------------------------------------
//
// Counts instructions, cycles, and last-level cache references/misses over
// a region. Every counter that fails to open (no permission, no PMU — the
// common case in containers) is simply reported absent.

#if defined(__linux__)
class HwCounterGroup {
 public:
  HwCounterGroup() {
    Open("hw_cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    Open("hw_instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
    Open("hw_cache_refs", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES);
    Open("hw_cache_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  }

  ~HwCounterGroup() {
    for (const Counter& c : counters_) close(c.fd);
  }

  void Start() {
    for (const Counter& c : counters_) {
      ioctl(c.fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(c.fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }

  void StopInto(std::map<std::string, double>* out) {
    for (const Counter& c : counters_) {
      ioctl(c.fd, PERF_EVENT_IOC_DISABLE, 0);
      long long value = 0;
      if (read(c.fd, &value, sizeof(value)) == sizeof(value)) {
        (*out)[c.name] = static_cast<double>(value);
      }
    }
  }

 private:
  struct Counter {
    std::string name;
    int fd;
  };

  void Open(const char* name, std::uint32_t type, std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = type;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    int fd = static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
    if (fd >= 0) counters_.push_back(Counter{name, fd});
  }

  std::vector<Counter> counters_;
};
#else
class HwCounterGroup {
 public:
  void Start() {}
  void StopInto(std::map<std::string, double>*) {}
};
#endif

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

std::string DoubleToJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string EntryToJson(const BenchEntry& e) {
  std::string out = "        {\"name\": \"";
  AppendEscaped(&out, e.name);
  out += "\", \"variant\": \"";
  AppendEscaped(&out, e.variant);
  out += "\", \"wall_seconds\": " + DoubleToJson(e.wall_seconds);
  out += ", \"iterations\": " + std::to_string(e.iterations);
  out += ", \"seconds_per_op\": " + DoubleToJson(e.seconds_per_op);
  out += ", \"ops_per_second\": " + DoubleToJson(e.ops_per_second);
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : e.counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    AppendEscaped(&out, key);
    out += "\": " + DoubleToJson(value);
  }
  out += "}}";
  return out;
}

}  // namespace

Measurement Measure(const std::function<void()>& fn, double min_seconds) {
  Measurement m;
  HwCounterGroup hw;
  hw.Start();
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++m.iterations;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_seconds);
  hw.StopInto(&m.hw_counters);
  m.wall_seconds = elapsed;
  return m;
}

std::string GitRevision() {
  std::string rev = RunCommand("git rev-parse --short HEAD 2>/dev/null");
  return rev.empty() ? "unknown" : rev;
}

std::string RepoRoot() {
  std::string root = RunCommand("git rev-parse --show-toplevel 2>/dev/null");
  return root.empty() ? "." : root;
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name, std::string label)
    : bench_name_(std::move(bench_name)), label_(std::move(label)) {}

void BenchJsonWriter::Add(BenchEntry entry) {
  if (entry.iterations > 0 && entry.seconds_per_op == 0.0) {
    entry.seconds_per_op =
        entry.wall_seconds / static_cast<double>(entry.iterations);
  }
  if (entry.seconds_per_op > 0.0 && entry.ops_per_second == 0.0) {
    entry.ops_per_second = 1.0 / entry.seconds_per_op;
  }
  entries_.push_back(std::move(entry));
}

void BenchJsonWriter::Add(const std::string& name, const std::string& variant,
                          const Measurement& m,
                          std::map<std::string, double> counters) {
  BenchEntry e;
  e.name = name;
  e.variant = variant;
  e.wall_seconds = m.wall_seconds;
  e.iterations = m.iterations;
  e.counters = std::move(counters);
  for (const auto& [key, value] : m.hw_counters) e.counters[key] = value;
  Add(std::move(e));
}

std::string BenchJsonWriter::WriteMerged(const std::string& dir) const {
  std::string base = dir.empty() ? RepoRoot() : dir;
  std::string path = base + "/BENCH_" + bench_name_ + ".json";

  // Recover earlier runs verbatim from a file this writer wrote: the runs
  // array is everything between the fixed '"runs": [' opener and the fixed
  // '\n  ]' closer. Anything unrecognizable is discarded (fresh file).
  std::string previous_runs;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::string text = buffer.str();
      const std::string opener = "\"runs\": [\n";
      const std::string closer = "\n  ]\n}";
      std::size_t begin = text.find(opener);
      std::size_t end = text.rfind(closer);
      if (begin != std::string::npos && end != std::string::npos &&
          begin + opener.size() < end) {
        previous_runs = text.substr(begin + opener.size(),
                                    end - begin - opener.size());
      }
    }
  }

  std::time_t now = std::time(nullptr);
  char timestamp[32];
  std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ",
                std::gmtime(&now));

  std::string run = "    {\n      \"label\": \"";
  AppendEscaped(&run, label_);
  run += "\",\n      \"git_rev\": \"";
  AppendEscaped(&run, GitRevision());
  run += "\",\n      \"timestamp\": \"";
  run += timestamp;
  run += "\",\n      \"entries\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    run += EntryToJson(entries_[i]);
    if (i + 1 < entries_.size()) run += ",";
    run += "\n";
  }
  run += "      ]\n    }";

  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"runs\": [\n";
  if (!previous_runs.empty()) out << previous_runs << ",\n";
  out << run << "\n  ]\n}\n";
  return path;
}

std::string FlagValue(int argc, char** argv, const std::string& flag,
                      const std::string& def) {
  std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace bench
}  // namespace cqa
