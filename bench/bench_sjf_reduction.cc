// EXP-T4: Proposition 4.1 — the reduction certain(sjf(q)) <=p certain(q).
// Benchmarks the translation itself (polynomial, element-pairing) and the
// end-to-end agreement of the two certain problems on translated instances.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algo/exhaustive.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"
#include "reduction/sjf_reduction.h"

namespace cqa {
namespace {

const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";

void PrintAgreement() {
  auto q = ParseQuery(kQ2);
  auto sjf = MakeSjfQuery(q);
  Rng rng(505);
  int agree = 0;
  int total = 0;
  int certain = 0;
  for (int round = 0; round < 30; ++round) {
    InstanceParams params;
    params.num_facts = 14;
    params.domain_size = 3;
    Database sdb = RandomInstance(sjf, params, &rng);
    Database tdb = TranslateSjfDatabase(q, sdb);
    bool lhs = CertainByEnumeration(sjf, sdb);
    bool rhs = ExhaustiveCertain(q, tdb);
    agree += (lhs == rhs) ? 1 : 0;
    certain += lhs ? 1 : 0;
    ++total;
  }
  std::printf("\n=== EXP-T4: Proposition 4.1 reduction ===\n");
  std::printf("q  = %s\nsjf(q) = %s\n", q.ToString().c_str(),
              sjf.ToString().c_str());
  std::printf("agreement on %d random instances: %d/%d (certain on %d)\n\n",
              total, agree, total, certain);
}

void BM_TranslateDatabase(benchmark::State& state) {
  auto q = ParseQuery(kQ2);
  auto sjf = MakeSjfQuery(q);
  Rng rng(506);
  InstanceParams params;
  params.num_facts = static_cast<std::uint32_t>(state.range(0));
  params.domain_size = 4 + params.num_facts / 8;
  Database sdb = RandomInstance(sjf, params, &rng);
  for (auto _ : state) {
    Database tdb = TranslateSjfDatabase(q, sdb);
    benchmark::DoNotOptimize(tdb.NumFacts());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TranslateDatabase)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity();

void BM_EndToEndReduction(benchmark::State& state) {
  auto q = ParseQuery(kQ2);
  auto sjf = MakeSjfQuery(q);
  Rng rng(507);
  InstanceParams params;
  params.num_facts = static_cast<std::uint32_t>(state.range(0));
  params.domain_size = 3;
  Database sdb = RandomInstance(sjf, params, &rng);
  for (auto _ : state) {
    Database tdb = TranslateSjfDatabase(q, sdb);
    bool answer = ExhaustiveCertain(q, tdb);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_EndToEndReduction)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
