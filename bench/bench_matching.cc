// EXP-T3: Theorems 10.1 / 10.4 / 10.5 — the matching algorithm on
// triangle-tripath queries (q6). Demonstrates the separation: the triangle
// instance is certain, matching proves it, Cert_k does not for any
// practical k; then benchmarks matching(q) and the combined algorithm as
// instances grow.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

const char* kQ6 = "R(x | y, z) R(z | x, y)";

// Both rotation families of (1,2,3) over three two-fact blocks: certain by
// pigeonhole, provable by matching, not by Cert_1.
Database GluedTriangles(const ConjunctiveQuery& q6) {
  Database db(q6.schema());
  db.AddFactStr(0, "e1 e2 e3");
  db.AddFactStr(0, "e3 e1 e2");
  db.AddFactStr(0, "e2 e3 e1");
  db.AddFactStr(0, "e1 e3 e2");
  db.AddFactStr(0, "e2 e1 e3");
  db.AddFactStr(0, "e3 e2 e1");
  return db;
}

void PrintSeparation() {
  auto q6 = ParseQuery(kQ6);
  Database db = GluedTriangles(q6);
  std::printf("\n=== EXP-T3: Theorem 10.1 separation on q6 ===\n");
  std::printf(
      "instance: glued triangles (both rotation families of (1,2,3); "
      "3 blocks x 2 facts)\n");
  std::printf("exhaustive certain: %s\n",
              ExhaustiveCertain(q6, db) ? "yes" : "no");
  for (std::uint32_t k = 1; k <= 3; ++k) {
    std::printf("Cert_%u: %s%s\n", k, CertK(q6, db, k) ? "yes" : "no",
                k == 1 ? "   <- false negative (Thm 10.1; per-k witnesses "
                         "grow with k)"
                       : "");
  }
  std::printf("not-matching: %s\n",
              NotMatchingCertain(q6, db) ? "yes" : "no");
  std::printf("combined (Thm 10.5, k=1): %s\n\n",
              CombinedCertain(q6, db, 1) ? "yes" : "no");
}

Database Q6Instance(std::uint32_t n, std::uint64_t seed) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(seed);
  InstanceParams params;
  params.num_facts = n;
  params.domain_size = 2 + n / 6;
  return RandomInstance(q6, params, &rng);
}

void BM_MatchingQ6(benchmark::State& state) {
  auto q6 = ParseQuery(kQ6);
  Database db = Q6Instance(static_cast<std::uint32_t>(state.range(0)), 7);
  MatchingStats stats;
  for (auto _ : state) {
    bool m = MatchingAlgorithm(q6, db, &stats);
    benchmark::DoNotOptimize(m);
  }
  state.counters["cliques"] = static_cast<double>(stats.num_cliques);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatchingQ6)->RangeMultiplier(2)->Range(16, 1024)->Complexity();

void BM_CombinedQ6(benchmark::State& state) {
  auto q6 = ParseQuery(kQ6);
  Database db = Q6Instance(static_cast<std::uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    bool c = CombinedCertain(q6, db, 3);
    benchmark::DoNotOptimize(c);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CombinedQ6)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_ExhaustiveQ6(benchmark::State& state) {
  auto q6 = ParseQuery(kQ6);
  Database db = Q6Instance(static_cast<std::uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    bool c = ExhaustiveCertain(q6, db);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ExhaustiveQ6)->RangeMultiplier(2)->Range(16, 256);

void BM_MatchingOnTriangleChain(benchmark::State& state) {
  // Many disjoint triangles: a clique-database where every block must be
  // matched; matching answers "no" (certain) in polynomial time.
  auto q6 = ParseQuery(kQ6);
  Database db(q6.schema());
  std::uint32_t triangles = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < triangles; ++i) {
    std::string a = "a" + std::to_string(i);
    std::string b = "b" + std::to_string(i);
    std::string c = "c" + std::to_string(i);
    db.AddFactStr(0, a + " " + b + " " + c);
    db.AddFactStr(0, c + " " + a + " " + b);
    db.AddFactStr(0, b + " " + c + " " + a);
  }
  for (auto _ : state) {
    bool m = NotMatchingCertain(q6, db);
    benchmark::DoNotOptimize(m);
  }
  state.counters["facts"] = static_cast<double>(db.NumFacts());
}
BENCHMARK(BM_MatchingOnTriangleChain)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintSeparation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
