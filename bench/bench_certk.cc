// EXP-T2 / EXP-S2: the greedy fixpoint algorithm Cert_k.
//   - Theorem 6.1 workloads (q3, q4): Cert_2 scaling with database size,
//     with answer agreement against the exhaustive baseline spot-checked.
//   - Ablation over k: cost of Cert_1..Cert_4 on the same instances.

#include <benchmark/benchmark.h>

#include "algo/certk.h"
#include "algo/exhaustive.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"

namespace cqa {
namespace {

Database MakeInstance(const ConjunctiveQuery& q, std::uint32_t n,
                      std::uint64_t seed) {
  Rng rng(seed);
  InstanceParams params;
  params.num_facts = n;
  params.domain_size = 2 + n / 8;
  return RandomInstance(q, params, &rng);
}

void BM_Cert2_Q3(benchmark::State& state) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db = MakeInstance(q, static_cast<std::uint32_t>(state.range(0)),
                             1001);
  CertKStats stats;
  for (auto _ : state) {
    bool answer = CertK(q, db, 2, &stats);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["antichain"] = static_cast<double>(stats.minimal_sets);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cert2_Q3)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_Cert2_Q4(benchmark::State& state) {
  auto q = ParseQuery("R(x, x | u, v) R(x, y | u, x)");
  Database db = MakeInstance(q, static_cast<std::uint32_t>(state.range(0)),
                             1002);
  for (auto _ : state) {
    bool answer = CertK(q, db, 2);
    benchmark::DoNotOptimize(answer);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Cert2_Q4)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_ExhaustiveBaseline_Q3(benchmark::State& state) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db = MakeInstance(q, static_cast<std::uint32_t>(state.range(0)),
                             1001);
  for (auto _ : state) {
    bool answer = ExhaustiveCertain(q, db);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ExhaustiveBaseline_Q3)->RangeMultiplier(2)->Range(16, 256);

void BM_CertK_AblationOverK(benchmark::State& state) {
  auto q = ParseQuery("R(x | y, x) R(y | x, u)");  // q5: no-tripath class.
  Database db = MakeInstance(q, 64, 1003);
  std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    bool answer = CertK(q, db, k);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_CertK_AblationOverK)->DenseRange(1, 4);

void BM_CertK_ChainWorstCase(benchmark::State& state) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Rng rng(1004);
  Database db = ChainInstance(q, static_cast<std::uint32_t>(state.range(0)),
                              0.6, 0.8, &rng);
  for (auto _ : state) {
    bool answer = CertK(q, db, 2);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["facts"] = static_cast<double>(db.NumFacts());
}
BENCHMARK(BM_CertK_ChainWorstCase)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace cqa

BENCHMARK_MAIN();
