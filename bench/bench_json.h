// BENCH_<name>.json emitter: the per-PR perf record.
//
// Every bench binary (bench_scaling, bench_sat_gadget, bench_incremental,
// bench_churn) funnels its measurements through this writer so the repo
// root accumulates machine-readable before/after numbers instead of prose
// claims in commit messages. One file per bench; each run appends a
// labeled block ({label, git_rev, timestamp, entries}) and keeps every
// earlier run, so A/B comparisons (row-store vs columnar, DPLL vs CDCL,
// this PR vs the last) live side by side in one file.
//
// The format is our own fixed JSON shape (see WriteMerged); merging
// re-reads only files this writer produced, so no general JSON parser is
// needed. Hardware cache counters come from perf_event_open when the
// kernel allows it and degrade to absent (not zero) when it does not
// (typical in containers), so numbers are never silently fabricated.

#ifndef CQA_BENCH_BENCH_JSON_H_
#define CQA_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cqa {
namespace bench {

/// One measured configuration: a (benchmark case, code-path variant) pair
/// with its timing, derived throughput, and free-form numeric counters
/// (workload sizes, cache hit rates, hardware counters, ...).
struct BenchEntry {
  std::string name;     ///< Case, e.g. "dispatcher/q3/30000".
  std::string variant;  ///< Code path, e.g. "cdcl", "dpll", "columnar".
  double wall_seconds = 0.0;    ///< Total measured wall time.
  std::uint64_t iterations = 0; ///< Loop iterations inside wall_seconds.
  double seconds_per_op = 0.0;
  double ops_per_second = 0.0;
  std::map<std::string, double> counters;
};

/// What one timing loop observed (Measure below).
struct Measurement {
  double wall_seconds = 0.0;
  std::uint64_t iterations = 0;
  /// Hardware counters over the measured region, when available:
  /// "hw_instructions", "hw_cycles", "hw_cache_refs", "hw_cache_misses".
  std::map<std::string, double> hw_counters;
};

/// Runs `fn` repeatedly until at least `min_seconds` of wall time (and at
/// least one iteration) accumulate, with hardware counters around the
/// whole region. `fn` must keep its own results alive (the caller asserts
/// on them) — this helper only times.
Measurement Measure(const std::function<void()>& fn, double min_seconds);

/// `git rev-parse --short HEAD` of the enclosing repo, or "unknown".
std::string GitRevision();

/// Root of the enclosing git repo (for placing BENCH files), or ".".
std::string RepoRoot();

class BenchJsonWriter {
 public:
  /// `bench_name` becomes the file stem: BENCH_<bench_name>.json.
  /// `label` tags this run, conventionally "before"/"after" within a PR.
  BenchJsonWriter(std::string bench_name, std::string label);

  void Add(BenchEntry entry);

  /// Convenience: build an entry from a Measurement (hw counters are
  /// folded into `counters`).
  void Add(const std::string& name, const std::string& variant,
           const Measurement& m,
           std::map<std::string, double> counters = {});

  /// Writes BENCH_<name>.json at `dir` (default: RepoRoot()). If the file
  /// already holds runs from this writer's format, the new run is appended
  /// after them; otherwise the file is rewritten with just this run.
  /// Returns the path written.
  std::string WriteMerged(const std::string& dir = "") const;

  const std::vector<BenchEntry>& entries() const { return entries_; }

 private:
  std::string bench_name_;
  std::string label_;
  std::vector<BenchEntry> entries_;
};

/// Tiny flag helpers for the custom-main benches: returns the value of
/// "--flag=value" in argv, or `def` when absent.
std::string FlagValue(int argc, char** argv, const std::string& flag,
                      const std::string& def);
bool HasFlag(int argc, char** argv, const std::string& flag);

}  // namespace bench
}  // namespace cqa

#endif  // CQA_BENCH_BENCH_JSON_H_
