// Bridge from google-benchmark to the BENCH_<name>.json emitter: a
// reporter that mirrors every finished run into a BenchJsonWriter while
// still printing the normal console output. Benches that keep the
// google-benchmark harness (bench_incremental) use this instead of
// converting to a custom main:
//
//   int main(int argc, char** argv) {
//     benchmark::Initialize(&argc, argv);
//     cqa::bench::JsonEmitReporter reporter("incremental",
//                                           /*label=*/"after");
//     benchmark::RunSpecifiedBenchmarks(&reporter);
//     reporter.WriteMerged();
//   }

#ifndef CQA_BENCH_GBENCH_EMIT_H_
#define CQA_BENCH_GBENCH_EMIT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_json.h"

namespace cqa {
namespace bench {

class JsonEmitReporter : public benchmark::ConsoleReporter {
 public:
  JsonEmitReporter(std::string bench_name, std::string label,
                   std::string variant = "gbench")
      : writer_(std::move(bench_name), std::move(label)),
        variant_(std::move(variant)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      BenchEntry entry;
      entry.name = run.benchmark_name();
      entry.variant = variant_;
      entry.wall_seconds = run.real_accumulated_time;
      entry.iterations = static_cast<std::uint64_t>(run.iterations);
      for (const auto& [name, counter] : run.counters) {
        entry.counters[name] = counter.value;
      }
      writer_.Add(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  /// Call after RunSpecifiedBenchmarks. Returns the path written.
  std::string WriteMerged(const std::string& dir = "") {
    std::string path = writer_.WriteMerged(dir);
    std::printf("wrote %s (%zu entries)\n", path.c_str(),
                writer_.entries().size());
    return path;
  }

 private:
  BenchJsonWriter writer_;
  std::string variant_;
};

}  // namespace bench
}  // namespace cqa

#endif  // CQA_BENCH_GBENCH_EMIT_H_
