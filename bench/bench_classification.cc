// EXP-T1: the dichotomy classification table (paper catalog, Sections
// 4-10). Prints the classification of every worked example and benchmarks
// the decision procedure, including the tripath search it embeds.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "classify/classifier.h"
#include "query/query.h"

namespace cqa {
namespace {

struct CatalogRow {
  const char* name;
  const char* text;
  const char* paper_claim;
};

const CatalogRow kCatalog[] = {
    {"q1", "R(x, u | x, v) R(v, y | u, y)", "coNP-complete (Thm 4.2)"},
    {"q2", "R(x, u | x, y) R(u, y | x, z)", "coNP-complete (Thm 9.1)"},
    {"q3", "R(x | y) R(y | z)", "PTime via Cert_2 (Thm 6.1)"},
    {"q4", "R(x, x | u, v) R(x, y | u, x)", "PTime via Cert_2 (Thm 6.1)"},
    {"q5", "R(x | y, x) R(y | x, u)", "PTime via Cert_k (Thm 8.1)"},
    {"q6", "R(x | y, z) R(z | x, y)",
     "PTime via Cert_k + matching (Thm 10.5)"},
    {"swap", "R(x | y) R(y | x)", "2way-determined"},
    {"trivial-hom", "R(x | y) R(y | y)", "trivial (one-atom)"},
    {"trivial-keys", "R(x, y | u) R(x, y | v)", "trivial (one-atom)"},
    {"sjf-hard", "R1(x, u | x, v) R2(v, y | u, y)",
     "coNP-complete (Kolaitis-Pema)"},
    {"sjf-fo", "R1(x | y) R2(y | z)", "FO (Koutris-Wijsen)"},
};

void PrintTable() {
  std::printf("\n=== EXP-T1: dichotomy classification table ===\n");
  std::printf("%-13s %-46s %-42s %s\n", "query", "definition",
              "paper claim", "measured classification");
  for (const CatalogRow& row : kCatalog) {
    Classification c = ClassifyQuery(ParseQuery(row.text));
    std::printf("%-13s %-46s %-42s %s [%s]\n", row.name, row.text,
                row.paper_claim, ToString(c.query_class).c_str(),
                ToString(c.complexity).c_str());
  }
  std::printf("\n");
}

void BM_ClassifyCatalogQuery(benchmark::State& state) {
  const CatalogRow& row = kCatalog[state.range(0)];
  auto q = ParseQuery(row.text);
  for (auto _ : state) {
    Classification c = ClassifyQuery(q);
    benchmark::DoNotOptimize(c.query_class);
  }
  state.SetLabel(row.name);
}
BENCHMARK(BM_ClassifyCatalogQuery)->DenseRange(0, 10);

void BM_SyntacticConditionsOnly(benchmark::State& state) {
  auto q = ParseQuery("R(x, u | x, v) R(v, y | u, y)");
  for (auto _ : state) {
    Classification c = ClassifyQuery(q);
    benchmark::DoNotOptimize(c.complexity);
  }
}
BENCHMARK(BM_SyntacticConditionsOnly);

}  // namespace
}  // namespace cqa

int main(int argc, char** argv) {
  cqa::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
