// Fuzzer for the durability decoders: arbitrary bytes in, typed Status
// out, never a crash and never a silently-loaded corrupt state.
//
// These decoders are the recovery path's trust boundary — they read
// whatever a torn write, a bit rot, or an attacker left on disk — so the
// contract is absolute: any input either decodes to a state that passes
// its own validation, or fails with kCorruptedData. An abort, an
// out-of-bounds read (ASan), or a decoded-but-inconsistent database is a
// bug this harness exists to find.
//
// Byte format: byte 0 selects the decoder target, the rest is its input.
//   0  DecodeWal          — framed record stream; on success every
//                           decoded record must re-encode byte-identical
//                           (the codec is canonical), and valid_bytes
//                           must cover exactly the decoded prefix.
//   1  DecodeSnapshot     — full database rebuild; on success the
//                           rebuilt database must pass the deep
//                           invariant audit (a decoder that "succeeds"
//                           into a corrupt database is the worst
//                           failure mode).
//   2  DecodeVerdicts     — validated against a small fixed database.
//   3  DecodeWal on bytes spliced after a valid WAL header + one valid
//      record: exercises the mid-stream truncation logic (valid prefix
//      kept, corrupt tail reported) that plain random bytes rarely
//      reach.
//
// Seed corpus: fuzz/corpus/wal_replay/ (valid files of each kind plus
// truncated/bit-flipped variants). Build: -DCQA_FUZZ=ON.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "data/audit.h"
#include "data/database.h"
#include "data/schema.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace {

using cqa::AuditReport;
using cqa::Database;
using cqa::Schema;
using cqa::StatusCode;
using cqa::StatusOr;

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_wal_replay: %s\n%s\n", what, detail.c_str());
  std::abort();
}

// Every decode outcome must be one of: ok, or typed kCorruptedData.
template <typename T>
void CheckTyped(const StatusOr<T>& result) {
  if (result.ok()) return;
  if (result.status().code() != StatusCode::kCorruptedData) {
    Die("decoder failed with an untyped/unexpected status",
        result.status().ToString());
  }
}

void FuzzWal(std::string_view bytes) {
  cqa::store::WalDecodeResult result = cqa::store::DecodeWal(bytes);
  if (!result.tail.ok() &&
      result.tail.code() != StatusCode::kCorruptedData) {
    Die("WAL tail failed with an untyped status", result.tail.ToString());
  }
  if (result.valid_bytes > bytes.size()) {
    Die("valid_bytes past the input", std::to_string(result.valid_bytes));
  }
  // Canonical codec: whatever decoded must re-encode into exactly the
  // bytes it was decoded from — that is what makes the truncation point
  // (valid_bytes) trustworthy.
  std::string reencoded;
  if (result.valid_bytes > 0) reencoded = std::string(cqa::store::kWalMagic);
  for (const cqa::store::WalRecord& record : result.records) {
    reencoded += cqa::store::EncodeWalRecord(record);
  }
  if (reencoded != bytes.substr(0, result.valid_bytes)) {
    Die("decoded prefix does not re-encode canonically",
        std::to_string(result.records.size()) + " records, " +
            std::to_string(result.valid_bytes) + " valid bytes");
  }
}

void FuzzSnapshot(std::string_view bytes) {
  StatusOr<cqa::store::DecodedSnapshot> decoded =
      cqa::store::DecodeSnapshot(bytes);
  CheckTyped(decoded);
  if (!decoded.ok()) return;
  // A decode that succeeds must have produced an *internally consistent*
  // database: run the deep auditor over it.
  AuditReport report = cqa::AuditDatabase(decoded->db);
  if (!report.ok()) {
    Die("snapshot decoded into a corrupt database", report.ToString());
  }
}

void FuzzVerdicts(std::string_view bytes) {
  Schema schema;
  schema.AddRelation("R", 2, 1);
  Database db(schema);
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  StatusOr<cqa::store::PersistedVerdictMap> decoded =
      cqa::store::DecodeVerdicts(bytes, db);
  CheckTyped(decoded);
  if (!decoded.ok()) return;
  // Validation promised every witness fact id is in range for `db`.
  for (const auto& [key, verdicts] : *decoded) {
    for (const cqa::store::PersistedVerdict& v : verdicts) {
      for (const cqa::Fact& fact : v.witness_facts) {
        if (fact.relation >= db.schema().NumRelations()) {
          Die("verdict with out-of-range relation survived validation", key);
        }
        for (cqa::ElementId el : fact.args) {
          if (el >= db.elements().size()) {
            Die("verdict with out-of-range element survived validation", key);
          }
        }
      }
    }
  }
}

void FuzzWalTail(std::string_view bytes) {
  // Splice the fuzz bytes after a known-valid prefix, so the decoder's
  // per-record loop (not just the header check) sees them.
  cqa::store::WalRecord record;
  record.seq = 1;
  record.kind = cqa::store::WalRecord::Kind::kInsert;
  record.facts = {{"R", {"a", "b"}}};
  std::string spliced = std::string(cqa::store::kWalMagic) +
                        cqa::store::EncodeWalRecord(record);
  std::size_t prefix = spliced.size();
  spliced.append(bytes);

  cqa::store::WalDecodeResult result = cqa::store::DecodeWal(spliced);
  // The valid prefix must never be lost to a corrupt tail.
  if (result.records.empty() || result.valid_bytes < prefix) {
    Die("corrupt tail destroyed the valid prefix",
        std::to_string(result.valid_bytes));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  std::string_view bytes(reinterpret_cast<const char*>(data + 1), size - 1);
  switch (data[0] % 4) {
    case 0:
      FuzzWal(bytes);
      break;
    case 1:
      FuzzSnapshot(bytes);
      break;
    case 2:
      FuzzVerdicts(bytes);
      break;
    case 3:
      FuzzWalTail(bytes);
      break;
  }
  return 0;
}
