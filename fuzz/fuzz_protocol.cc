// Fuzzer for the serving layer's wire decoders: arbitrary bytes in,
// typed Status (or a clean kCorrupt/kNeedMore) out, never a crash.
//
// The frame decoder and payload decoders are the server's trust
// boundary — they read whatever a client, a proxy, or an attacker puts
// on the socket — so the contract mirrors the durability decoders':
// any input either decodes into a value that re-encodes canonically, or
// fails with a typed error; no abort, no out-of-bounds read (ASan), no
// unbounded allocation from a lying length field.
//
// Byte format: byte 0 selects the target, the rest is its input.
//   0  DecodeRequest      — on success the decoded request must
//                           re-encode byte-identical (canonical codec).
//   1  DecodeResponse     — same, for the response payload.
//   2  FrameReader        — the input is fed in chunks whose sizes are
//                           derived from the input itself (torn frames),
//                           and every yielded payload must round-trip
//                           through DecodeRequest/DecodeResponse safely;
//                           frames the reader yields must equal what a
//                           whole-buffer feed yields.
//   3  Valid-prefix splice — the fuzz bytes are appended after a valid
//                           framed request: the reader must still yield
//                           the valid frame, then fail or wait cleanly.
//
// Seed corpus: fuzz/corpus/protocol/ (valid framed requests/responses
// plus truncated and bit-flipped variants). Build: -DCQA_FUZZ=ON.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "server/protocol.h"

namespace {

using cqa::Status;
using cqa::StatusCode;
using cqa::server::DecodeRequest;
using cqa::server::DecodeResponse;
using cqa::server::EncodeRequest;
using cqa::server::EncodeResponse;
using cqa::server::Frame;
using cqa::server::FrameReader;
using cqa::server::Request;
using cqa::server::Response;

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_protocol: %s\n%s\n", what, detail.c_str());
  std::abort();
}

void CheckTyped(const Status& status) {
  if (status.ok()) return;
  if (status.code() != StatusCode::kCorruptedData &&
      status.code() != StatusCode::kCapabilityMismatch) {
    Die("decoder failed with an untyped/unexpected status",
        status.ToString());
  }
}

void FuzzRequest(std::string_view bytes) {
  Request req;
  Status decoded = DecodeRequest(bytes, &req);
  CheckTyped(decoded);
  if (!decoded.ok()) return;
  // Canonical codec: success means the bytes were the one encoding.
  if (EncodeRequest(req) != bytes) {
    Die("decoded request does not re-encode canonically",
        std::to_string(bytes.size()) + " bytes");
  }
}

void FuzzResponse(std::string_view bytes) {
  Response resp;
  Status decoded = DecodeResponse(bytes, &resp);
  CheckTyped(decoded);
  if (!decoded.ok()) return;
  if (EncodeResponse(resp) != bytes) {
    Die("decoded response does not re-encode canonically",
        std::to_string(bytes.size()) + " bytes");
  }
}

void FuzzFrameReader(std::string_view bytes) {
  // Chunk sizes come from the input itself, so the fuzzer controls where
  // the tears land (header split, length split, mid-payload).
  FrameReader chunked;
  FrameReader whole;
  std::string chunked_payloads;
  std::string whole_payloads;
  std::string payload;

  std::string_view rest = bytes;
  std::size_t salt = bytes.size();
  while (!rest.empty()) {
    std::size_t chunk = 1 + (salt * 2654435761u + rest.size()) % 37;
    if (chunk > rest.size()) chunk = rest.size();
    chunked.Feed(rest.substr(0, chunk));
    rest.remove_prefix(chunk);
    for (;;) {
      FrameReader::Result result = chunked.Next(&payload);
      if (result != FrameReader::Result::kFrame) break;
      chunked_payloads += payload;
      chunked_payloads += '\x1e';
      // Whatever framing yields must be safe to hand to the decoders.
      FuzzRequest(payload);
      FuzzResponse(payload);
    }
  }

  whole.Feed(bytes);
  for (;;) {
    FrameReader::Result result = whole.Next(&payload);
    if (result != FrameReader::Result::kFrame) break;
    whole_payloads += payload;
    whole_payloads += '\x1e';
  }
  // Tearing must never change which frames come out.
  if (chunked_payloads != whole_payloads) {
    Die("chunked feed yielded different frames than whole feed",
        std::to_string(chunked_payloads.size()) + " vs " +
            std::to_string(whole_payloads.size()) + " payload bytes");
  }
}

void FuzzValidPrefixSplice(std::string_view bytes) {
  Request req;
  req.request_id = 7;
  req.db_name = "db";
  req.query_text = "R(x | y) R(y | z)";
  std::string valid = Frame(EncodeRequest(req));
  std::string spliced = valid;
  spliced.append(bytes);

  FrameReader reader;
  reader.Feed(spliced);
  std::string payload;
  // The valid frame must survive whatever follows it.
  if (reader.Next(&payload) != FrameReader::Result::kFrame) {
    Die("garbage tail destroyed a valid leading frame",
        std::to_string(bytes.size()) + " tail bytes");
  }
  if (payload != EncodeRequest(req)) {
    Die("leading frame payload corrupted by the tail", payload);
  }
  // The tail itself must resolve to more frames, a clean wait, or a
  // clean corrupt verdict — never a crash.
  for (;;) {
    FrameReader::Result result = reader.Next(&payload);
    if (result == FrameReader::Result::kFrame) {
      FuzzRequest(payload);
      continue;
    }
    break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  std::string_view bytes(reinterpret_cast<const char*>(data + 1), size - 1);
  switch (data[0] % 4) {
    case 0:
      FuzzRequest(bytes);
      break;
    case 1:
      FuzzResponse(bytes);
      break;
    case 2:
      FuzzFrameReader(bytes);
      break;
    case 3:
      FuzzValidPrefixSplice(bytes);
      break;
  }
  return 0;
}
