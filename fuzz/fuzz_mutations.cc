// Structured mutation-sequence fuzzer for the storage + service stack.
//
// The input is interpreted as a little program over a registered
// database: each opcode drives InsertFacts / DeleteFacts /
// CompactDatabase / Solve through the public cqa::Service API, a shadow
// model (a plain set of fact tuples) tracks what the database must
// contain, and after EVERY mutation the deep invariant auditor
// (data/audit.h, via Service::AuditDatabase) re-derives all five
// delta-maintained structures from first principles. Any violation — a
// stale index entry, a split component, a botched remap — aborts with
// the auditor's pinpointed report, which libFuzzer then minimizes into a
// replayable crash input.
//
// Stronger still, the kCheckParity opcode registers the shadow model's
// facts as a fresh database on a fresh Service and requires the verdict
// to match the mutated database's: the delta path and the rebuild path
// must always agree.
//
// Byte format (designed so random mutations stay in-grammar):
//   byte 0        query selector (one of the paper's shapes)
//   then repeating: 1 opcode byte (op = b % 8) + its argument bytes
//     0,1,2  insert: next `arity` bytes name the fact's elements
//     3      delete a fact currently in the shadow model (1 index byte)
//     4      delete a fact that is NOT present (1 byte): must be
//            kNotFound and leave everything untouched (all-or-nothing)
//     5      compact now
//     6      solve (must succeed; exercises cache fill + reuse)
//     7      parity check: delta-maintained verdict == fresh rebuild's
//
// Seed corpus: fuzz/corpus/mutations/. Build: -DCQA_FUZZ=ON (see
// fuzz/fuzz_query_parser.cc for the clang / non-clang split).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "data/audit.h"
#include "query/query.h"

namespace {

using cqa::AuditReport;
using cqa::FactSpec;
using cqa::Service;
using cqa::Status;
using cqa::StatusOr;

// The paper's query shapes: different key/arity geometries exercise
// different block, component, and solver behavior.
constexpr const char* kQueries[] = {
    "R(x | y) R(y | z)",
    "R(x, u | x, y) R(u, y | x, z)",
    "R(x | y, z) R(z | x, y)",
    "R(x | y) S(y | x)",
};

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_mutations: %s\n%s\n", what, detail.c_str());
  std::abort();
}

void MustBeClean(const Service& service, const char* after) {
  StatusOr<AuditReport> report = service.AuditDatabase("db");
  if (!report.ok()) Die("audit entry point failed", report.status().ToString());
  if (!report->ok()) {
    Die(after, report->ToString());
  }
}

/// Sequential byte reader; reports exhaustion instead of reading past the
/// end so a truncated program just ends.
struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool Next(std::uint8_t* out) {
    if (pos >= size) return false;
    *out = data[pos++];
    return true;
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  ByteReader in{data, size};

  std::uint8_t selector = 0;
  (void)in.Next(&selector);
  const std::string query_text =
      kQueries[selector % (sizeof(kQueries) / sizeof(kQueries[0]))];

  Service service;
  StatusOr<cqa::CompiledQuery> q = service.Compile(query_text);
  if (!q.ok()) Die("paper query failed to compile", q.status().ToString());
  const cqa::Schema& schema = q->query().schema();
  if (Status s = service.RegisterDatabase("db", cqa::Database(schema));
      !s.ok()) {
    Die("register failed", s.ToString());
  }

  // Shadow model: the set of (relation name, args) tuples that must be
  // alive. Kept sorted (std::set) so indexing by byte is deterministic.
  std::set<std::pair<std::string, std::vector<std::string>>> shadow;
  auto spec_of = [](const std::pair<std::string, std::vector<std::string>>&
                        entry) {
    return FactSpec{entry.first, entry.second};
  };

  int steps = 0;
  std::uint8_t op_byte = 0;
  while (steps++ < 512 && in.Next(&op_byte)) {
    switch (op_byte % 8) {
      case 0:
      case 1:
      case 2: {  // Insert one fact with arguments drawn from a 6-element
                 // domain (small enough that blocks and joins collide).
        cqa::RelationId rel = op_byte % schema.NumRelations();
        const cqa::RelationSchema& rs = schema.Relation(rel);
        std::vector<std::string> args;
        for (std::uint32_t a = 0; a < rs.arity; ++a) {
          std::uint8_t b = 0;
          if (!in.Next(&b)) return 0;  // Truncated program: done.
          args.push_back(std::string(1, static_cast<char>('a' + b % 6)));
        }
        if (shadow.size() >= 64) break;  // Keep per-step audits cheap.
        FactSpec spec{rs.name, args};
        cqa::MutationStats stats;
        if (Status s = service.InsertFacts("db", {spec}, &stats); !s.ok()) {
          Die("insert rejected", s.ToString());
        }
        bool fresh = shadow.emplace(rs.name, std::move(args)).second;
        if (fresh != (stats.applied == 1)) {
          Die("set semantics disagree with the shadow model",
              "fact " + spec.relation + " fresh=" + (fresh ? "1" : "0"));
        }
        MustBeClean(service, "audit violation after insert");
        break;
      }
      case 3: {  // Delete a present fact.
        std::uint8_t pick = 0;
        if (!in.Next(&pick)) return 0;
        if (shadow.empty()) break;
        auto it = shadow.begin();
        std::advance(it, pick % shadow.size());
        if (Status s = service.DeleteFacts("db", {spec_of(*it)}); !s.ok()) {
          Die("delete of a present fact rejected", s.ToString());
        }
        shadow.erase(it);
        MustBeClean(service, "audit violation after delete");
        break;
      }
      case 4: {  // Delete an absent fact: typed error, nothing changes.
        std::uint8_t b = 0;
        if (!in.Next(&b)) return 0;
        const cqa::RelationSchema& rs = schema.Relation(0);
        // Element 'z' is outside the insert domain, so the tuple cannot
        // exist.
        std::vector<std::string> args(rs.arity, "z");
        args[0] = std::string(1, static_cast<char>('a' + b % 6));
        Status s = service.DeleteFacts("db", {FactSpec{rs.name, args}});
        if (s.ok() || s.code() != cqa::StatusCode::kNotFound) {
          Die("absent-fact delete must be kNotFound", s.ToString());
        }
        MustBeClean(service, "audit violation after rejected delete");
        break;
      }
      case 5: {
        if (Status s = service.CompactDatabase("db"); !s.ok()) {
          Die("compact failed", s.ToString());
        }
        MustBeClean(service, "audit violation after compact");
        break;
      }
      case 6: {
        StatusOr<cqa::SolveReport> report = service.Solve(*q, "db");
        if (!report.ok()) Die("solve failed", report.status().ToString());
        break;
      }
      case 7: {  // Delta-vs-rebuild parity: the strongest oracle we have.
        StatusOr<cqa::SolveReport> delta = service.Solve(*q, "db");
        if (!delta.ok()) Die("delta solve failed", delta.status().ToString());

        Service fresh_service;
        StatusOr<cqa::CompiledQuery> fresh_q =
            fresh_service.Compile(query_text);
        if (Status s = fresh_service.RegisterDatabase(
                "db", cqa::Database(schema));
            !s.ok()) {
          Die("fresh register failed", s.ToString());
        }
        std::vector<FactSpec> all;
        for (const auto& entry : shadow) all.push_back(spec_of(entry));
        if (!all.empty()) {
          if (Status s = fresh_service.InsertFacts("db", all); !s.ok()) {
            Die("fresh bulk insert failed", s.ToString());
          }
        }
        StatusOr<cqa::SolveReport> rebuilt =
            fresh_service.Solve(*fresh_q, "db");
        if (!rebuilt.ok()) {
          Die("rebuild solve failed", rebuilt.status().ToString());
        }
        if (delta->certain != rebuilt->certain) {
          Die("delta and rebuild verdicts disagree",
              query_text + " after " + std::to_string(shadow.size()) +
                  " facts: delta=" + (delta->certain ? "yes" : "no") +
                  " rebuild=" + (rebuilt->certain ? "yes" : "no"));
        }
        break;
      }
    }
  }
  return 0;
}
