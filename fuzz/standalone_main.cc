// Corpus-replay driver for compilers without libFuzzer.
//
// Linked into every fuzz_*.cc harness when the toolchain is not clang
// (CMakeLists gates on CMAKE_CXX_COMPILER_ID): each command-line argument
// is a corpus file or a directory of them, fed one by one to
// LLVMFuzzerTestOneInput. No mutation happens — this is the regression
// half of fuzzing (the committed corpus and any minimized crash inputs
// keep replaying everywhere), while the exploration half runs under
// clang in CI's fuzz-smoke job.
//
// libFuzzer-style "-flag=value" arguments are ignored so the same
// command line works against both drivers.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "standalone fuzz driver: cannot read %s\n",
                 path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replayed = 0;
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;  // libFuzzer flag: ignore.
    std::filesystem::path path(arg);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        failures += ReplayFile(entry.path());
        ++replayed;
      }
    } else {
      failures += ReplayFile(path);
      ++replayed;
    }
  }
  std::printf("standalone fuzz driver: replayed %zu input(s)\n", replayed);
  return failures == 0 ? 0 : 1;
}
