// libFuzzer harness for the query parser (query/parser.cc).
//
// Input is raw query text. Properties enforced on every input:
//   - ParseQueryOrStatus never crashes, hangs, or throws; malformed input
//     yields kInvalidQuery with a non-empty located message.
//   - Round-trip: a successfully parsed query pretty-prints to text that
//     re-parses, and the re-parse pretty-prints identically (ToString is
//     a fixpoint of parse∘print).
//   - Structural sanity: every atom's variable list matches its
//     relation's arity, key lengths never exceed arities, and the
//     variable count respects the parser's 64-variable bound.
//   - Small two-atom queries additionally go through the classifier via
//     CertainSolver::Create, which must return either a solver or a
//     typed error — never crash. (The tripath search is bounded, so this
//     cannot hang.)
//
// Seed corpus: fuzz/corpus/query_parser/ — the paper's query shapes plus
// near-miss malformed variants, so coverage starts at the grammar instead
// of discovering parentheses byte by byte.
//
// Build: -DCQA_FUZZ=ON. With clang this links libFuzzer; elsewhere
// fuzz/standalone_main.cc replays the corpus (CI smoke + regression).

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/solver.h"
#include "query/query.h"

namespace {

[[noreturn]] void Die(const char* property, const std::string& detail) {
  std::fprintf(stderr, "fuzz_query_parser: %s\n%s\n", property,
               detail.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Giant inputs only test std::string; the grammar saturates far below
  // this bound.
  if (size > 4096) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);

  cqa::StatusOr<cqa::ConjunctiveQuery> parsed =
      cqa::ParseQueryOrStatus(text);
  if (!parsed.ok()) {
    if (parsed.status().code() != cqa::StatusCode::kInvalidQuery) {
      Die("parse errors must be kInvalidQuery", parsed.status().ToString());
    }
    if (parsed.status().message().empty()) {
      Die("parse error without a message", text);
    }
    return 0;
  }

  const cqa::ConjunctiveQuery& q = *parsed;
  if (q.NumVars() > 64) Die("parser accepted > 64 variables", text);
  for (std::size_t i = 0; i < q.NumAtoms(); ++i) {
    const cqa::QueryAtom& atom = q.atoms()[i];
    const cqa::RelationSchema& rel = q.schema().Relation(atom.relation);
    if (atom.vars.size() != rel.arity) {
      Die("atom arity disagrees with its relation schema", q.ToString());
    }
    if (rel.key_len > rel.arity) {
      Die("key longer than arity", q.ToString());
    }
  }

  std::string printed = q.ToString();
  cqa::StatusOr<cqa::ConjunctiveQuery> reparsed =
      cqa::ParseQueryOrStatus(printed);
  if (!reparsed.ok()) {
    Die("pretty-printed query fails to re-parse",
        printed + "\n" + reparsed.status().ToString());
  }
  if (reparsed->ToString() != printed) {
    Die("parse-print round trip is not a fixpoint",
        printed + "\nvs\n" + reparsed->ToString());
  }

  // Classification sweep for the paper's object of study: small two-atom
  // queries. Either outcome (solver or typed error) is fine; crashes and
  // CHECK-aborts are the bug.
  if (q.NumAtoms() == 2 && q.NumVars() <= 8) {
    cqa::StatusOr<cqa::CertainSolver> solver =
        cqa::CertainSolver::Create(q);
    if (!solver.ok() && solver.status().message().empty()) {
      Die("classifier error without a message", printed);
    }
  }
  return 0;
}
