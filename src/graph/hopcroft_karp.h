// Hopcroft–Karp maximum bipartite matching, O(E sqrt(V)).
//
// The matching(q) algorithm of Section 10.1 reduces certain answering on
// clique-databases to testing whether a bipartite graph (blocks vs. cliques)
// has a matching saturating the block side; reference [4] of the paper.

#ifndef CQA_GRAPH_HOPCROFT_KARP_H_
#define CQA_GRAPH_HOPCROFT_KARP_H_

#include <cstdint>
#include <vector>

namespace cqa {

/// Bipartite graph with `left` and `right` vertex sets.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t num_left, std::size_t num_right)
      : adjacency_(num_left), num_right_(num_right) {}

  void AddEdge(std::uint32_t left, std::uint32_t right);

  std::size_t NumLeft() const { return adjacency_.size(); }
  std::size_t NumRight() const { return num_right_; }
  const std::vector<std::uint32_t>& Neighbors(std::uint32_t left) const {
    return adjacency_[left];
  }

 private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::size_t num_right_;
};

/// Result of a maximum-matching computation.
struct MatchingResult {
  std::size_t size = 0;
  /// match_left[l] = matched right vertex or kUnmatched.
  std::vector<std::uint32_t> match_left;
  /// match_right[r] = matched left vertex or kUnmatched.
  std::vector<std::uint32_t> match_right;

  static constexpr std::uint32_t kUnmatched = 0xffffffffu;

  /// True if every left vertex is matched.
  bool SaturatesLeft() const { return size == match_left.size(); }
};

/// Computes a maximum matching with the Hopcroft–Karp algorithm.
MatchingResult MaximumMatching(const BipartiteGraph& g);

}  // namespace cqa

#endif  // CQA_GRAPH_HOPCROFT_KARP_H_
