#include "graph/undirected.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {

void UndirectedGraph::AddEdge(std::uint32_t u, std::uint32_t v) {
  CQA_CHECK(u < adjacency_.size() && v < adjacency_.size());
  if (u == v) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  finalized_ = false;
}

void UndirectedGraph::Finalize() {
  for (auto& list : adjacency_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  finalized_ = true;
}

bool UndirectedGraph::HasEdge(std::uint32_t u, std::uint32_t v) const {
  CQA_DCHECK(finalized_);
  const auto& list = adjacency_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

std::size_t UndirectedGraph::NumEdges() const {
  std::size_t total = 0;
  for (const auto& list : adjacency_) total += list.size();
  return total / 2;
}

std::vector<std::vector<std::uint32_t>> Components::Groups() const {
  std::vector<std::vector<std::uint32_t>> groups(count);
  for (std::uint32_t v = 0; v < component_of.size(); ++v) {
    groups[component_of[v]].push_back(v);
  }
  return groups;
}

Components ConnectedComponents(const UndirectedGraph& g) {
  Components out;
  const std::uint32_t kUnvisited = 0xffffffffu;
  out.component_of.assign(g.NumVertices(), kUnvisited);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < g.NumVertices(); ++start) {
    if (out.component_of[start] != kUnvisited) continue;
    std::uint32_t comp = out.count++;
    stack.push_back(start);
    out.component_of[start] = comp;
    while (!stack.empty()) {
      std::uint32_t v = stack.back();
      stack.pop_back();
      for (std::uint32_t w : g.Neighbors(v)) {
        if (out.component_of[w] == kUnvisited) {
          out.component_of[w] = comp;
          stack.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace cqa
