// Minimal undirected graph with connected-component computation.
//
// Used for the solution graph G(D, q) of Section 10.1 and by the tripath
// machinery. Vertices are dense integers (fact ids in practice).

#ifndef CQA_GRAPH_UNDIRECTED_H_
#define CQA_GRAPH_UNDIRECTED_H_

#include <cstdint>
#include <vector>

namespace cqa {

/// Undirected graph over vertices 0..n-1 with deduplicated adjacency lists.
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t n = 0) : adjacency_(n) {}

  std::size_t NumVertices() const { return adjacency_.size(); }

  /// Adds edge {u, v}; self-loops and duplicates are ignored
  /// (Finalize dedupes).
  void AddEdge(std::uint32_t u, std::uint32_t v);

  /// Sorts and dedupes adjacency lists; must be called before queries.
  void Finalize();

  const std::vector<std::uint32_t>& Neighbors(std::uint32_t v) const {
    return adjacency_[v];
  }

  /// True if {u, v} is an edge (binary search; requires Finalize()).
  bool HasEdge(std::uint32_t u, std::uint32_t v) const;

  std::size_t NumEdges() const;

 private:
  std::vector<std::vector<std::uint32_t>> adjacency_;
  bool finalized_ = false;
};

/// Connected components of an undirected graph.
struct Components {
  std::vector<std::uint32_t> component_of;  ///< Per vertex.
  std::uint32_t count = 0;

  /// Vertices of each component, grouped.
  std::vector<std::vector<std::uint32_t>> Groups() const;
};

Components ConnectedComponents(const UndirectedGraph& g);

}  // namespace cqa

#endif  // CQA_GRAPH_UNDIRECTED_H_
