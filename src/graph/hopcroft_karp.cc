#include "graph/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "base/check.h"

namespace cqa {

void BipartiteGraph::AddEdge(std::uint32_t left, std::uint32_t right) {
  CQA_CHECK(left < adjacency_.size() && right < num_right_);
  adjacency_[left].push_back(right);
}

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Layered BFS from unmatched left vertices; returns true if an augmenting
/// path exists. dist is indexed by left vertex.
bool Bfs(const BipartiteGraph& g, const std::vector<std::uint32_t>& match_left,
         const std::vector<std::uint32_t>& match_right,
         std::vector<std::uint32_t>* dist) {
  std::queue<std::uint32_t> queue;
  for (std::uint32_t l = 0; l < g.NumLeft(); ++l) {
    if (match_left[l] == MatchingResult::kUnmatched) {
      (*dist)[l] = 0;
      queue.push(l);
    } else {
      (*dist)[l] = kInf;
    }
  }
  bool found = false;
  while (!queue.empty()) {
    std::uint32_t l = queue.front();
    queue.pop();
    for (std::uint32_t r : g.Neighbors(l)) {
      std::uint32_t next = match_right[r];
      if (next == MatchingResult::kUnmatched) {
        found = true;
      } else if ((*dist)[next] == kInf) {
        (*dist)[next] = (*dist)[l] + 1;
        queue.push(next);
      }
    }
  }
  return found;
}

bool Dfs(const BipartiteGraph& g, std::uint32_t l,
         std::vector<std::uint32_t>* match_left,
         std::vector<std::uint32_t>* match_right,
         std::vector<std::uint32_t>* dist) {
  for (std::uint32_t r : g.Neighbors(l)) {
    std::uint32_t next = (*match_right)[r];
    if (next == MatchingResult::kUnmatched ||
        ((*dist)[next] == (*dist)[l] + 1 &&
         Dfs(g, next, match_left, match_right, dist))) {
      (*match_left)[l] = r;
      (*match_right)[r] = l;
      return true;
    }
  }
  (*dist)[l] = kInf;
  return false;
}

}  // namespace

MatchingResult MaximumMatching(const BipartiteGraph& g) {
  MatchingResult result;
  result.match_left.assign(g.NumLeft(), MatchingResult::kUnmatched);
  result.match_right.assign(g.NumRight(), MatchingResult::kUnmatched);
  std::vector<std::uint32_t> dist(g.NumLeft(), kInf);
  while (Bfs(g, result.match_left, result.match_right, &dist)) {
    for (std::uint32_t l = 0; l < g.NumLeft(); ++l) {
      if (result.match_left[l] == MatchingResult::kUnmatched &&
          Dfs(g, l, &result.match_left, &result.match_right, &dist)) {
        ++result.size;
      }
    }
  }
  return result;
}

}  // namespace cqa
