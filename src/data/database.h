// Databases: finite sets of facts, partitioned into key-equal blocks.
//
// A block (Section 2) is a maximal set of key-equal facts; a repair picks
// exactly one fact from every block. Database owns its element Interner and
// its Schema so that generated instances (reductions, workload generators)
// are self-contained value types.

#ifndef CQA_DATA_DATABASE_H_
#define CQA_DATA_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "data/fact.h"
#include "data/schema.h"

namespace cqa {

/// A maximal set of key-equal facts.
struct Block {
  RelationId relation = 0;
  std::vector<ElementId> key;   ///< Key tuple shared by all facts.
  std::vector<FactId> facts;    ///< Members, in insertion order.
};

/// Non-owning view of a fact's key prefix (C++17 stand-in for std::span).
/// Valid while the owning Database exists and no facts are added.
struct KeyView {
  const ElementId* data = nullptr;
  std::uint32_t len = 0;

  const ElementId* begin() const { return data; }
  const ElementId* end() const { return data + len; }
  std::uint32_t size() const { return len; }
  bool empty() const { return len == 0; }
  ElementId operator[](std::uint32_t i) const { return data[i]; }

  bool operator==(const KeyView& o) const {
    if (len != o.len) return false;
    for (std::uint32_t i = 0; i < len; ++i) {
      if (data[i] != o.data[i]) return false;
    }
    return true;
  }
  bool operator!=(const KeyView& o) const { return !(*this == o); }
};

/// The one hash recipe for a (relation, key tuple) pair, shared by the
/// block partition and PreparedDatabase's key index so the two can never
/// drift apart.
inline std::size_t HashRelationKey(RelationId relation, KeyView key) {
  return HashCombine(HashRange(key.begin(), key.end()), relation);
}

/// A finite set of facts with set semantics (duplicate inserts are no-ops).
class Database {
 public:
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  /// Adds a fact given pre-interned element ids; returns its FactId.
  /// Re-adding an identical fact returns the existing id.
  FactId AddFact(RelationId relation, std::vector<ElementId> args);

  /// Adds a fact given element names (interned on the fly).
  FactId AddFactNamed(RelationId relation,
                      const std::vector<std::string>& names);

  /// Convenience: parse "a b c d" (whitespace-separated element names).
  FactId AddFactStr(RelationId relation, std::string_view spaced_names);

  std::size_t NumFacts() const { return facts_.size(); }
  const Fact& fact(FactId id) const { return facts_[id]; }
  const std::vector<Fact>& facts() const { return facts_; }

  const Schema& schema() const { return schema_; }
  Interner& elements() { return elements_; }
  const Interner& elements() const { return elements_; }

  /// Key tuple of a fact (first key_len args), as an owned vector.
  /// Allocates; hot paths should prefer KeyViewOf.
  std::vector<ElementId> KeyOf(FactId id) const;

  /// Key prefix of a fact as a view into its args; no allocation. The view
  /// is invalidated by AddFact (facts_ may reallocate).
  KeyView KeyViewOf(FactId id) const {
    const Fact& f = facts_[id];
    return KeyView{f.args.data(), schema_.Relation(f.relation).key_len};
  }

  /// True if the two facts are key-equal (same relation, same key tuple).
  bool KeyEqual(FactId a, FactId b) const;

  /// The block partition. Built lazily, cached, invalidated by AddFact.
  const std::vector<Block>& blocks() const;

  /// Block containing fact `id`.
  BlockId BlockOf(FactId id) const;

  /// True if no block has two distinct facts.
  bool IsConsistent() const;

  /// Number of repairs as a double (may overflow 64-bit integers).
  double CountRepairs() const;

  /// Pretty-prints fact `id` as "R(a, b | c, d)" with the key before '|'.
  std::string FactToString(FactId id) const;

  /// Pretty-prints the whole database, one fact per line, grouped by block.
  std::string ToString() const;

  /// True if the database contains this exact fact.
  bool Contains(const Fact& f) const;

  /// Looks up the id of an existing fact, or kNoFact.
  FactId FindFact(const Fact& f) const;

  static constexpr FactId kNoFact = 0xffffffffu;

 private:
  void EnsureBlocks() const;

  Schema schema_;
  Interner elements_;
  std::vector<Fact> facts_;
  std::unordered_map<Fact, FactId, FactHash> fact_ids_;

  // Lazy block index.
  mutable bool blocks_dirty_ = true;
  mutable std::vector<Block> blocks_;
  mutable std::vector<BlockId> block_of_;
};

}  // namespace cqa

#endif  // CQA_DATA_DATABASE_H_
