// Databases: finite sets of facts, partitioned into key-equal blocks.
//
// A block (Section 2) is a maximal set of key-equal facts; a repair picks
// exactly one fact from every block. Database owns its element Interner and
// its Schema so that generated instances (reductions, workload generators)
// are self-contained value types.
//
// Storage layout: struct-of-arrays. Every fact's arguments live in one
// contiguous ElementId arena; a fact slot is an (offset, arity) pair plus
// a parallel relation column. fact(id) hands out a FactRef view into the
// arena, so key extraction, block partitioning, Cert_k fixpoints,
// solution-graph building, and component fingerprinting iterate over
// contiguous memory instead of chasing one heap vector per fact.
//
// Mutation model: FactIds are stable between compactions. AddFact appends
// (never reuses a slot); RemoveFact tombstones its slot instead of
// compacting, so ids held by indexes, components, and cached witnesses
// stay valid across deletions. The block partition is built lazily on
// first read (cheap bulk loads) and from then on maintained incrementally:
// an insert appends to its key's block (or opens one) via a persistent key
// index, a delete shrinks its block and swap-removes it when emptied.
//
// Under sustained churn tombstoned slots accumulate; Compact() reclaims
// them in one order-preserving pass — sliding both the slots and their
// argument spans down the arena, so offsets stay monotone in FactId — and
// publishes a FactIdRemap so every structure that holds FactIds
// (PreparedDatabase, DynamicComponents, IncrementalSolver) can delta-patch
// itself via its ApplyRemap instead of rebuilding. Content-addressed state
// (verdict fingerprints, cached witness tuples) survives a compaction
// untouched.

#ifndef CQA_DATA_DATABASE_H_
#define CQA_DATA_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "data/fact.h"
#include "data/schema.h"

namespace cqa {

/// A maximal set of key-equal facts.
struct Block {
  RelationId relation = 0;
  std::vector<ElementId> key;   ///< Key tuple shared by all facts.
  std::vector<FactId> facts;    ///< Members, in insertion order.
};

/// Non-owning view of a fact's key prefix: the same span type as a fact's
/// argument view (a key is a prefix of an argument tuple in the arena).
using KeyView = ArgSpan;

/// The one hash recipe for a (relation, key tuple) pair, shared by the
/// block partition and PreparedDatabase's key index so the two can never
/// drift apart. Identical to FactHash's recipe over a full-argument span.
inline std::size_t HashRelationKey(RelationId relation, KeyView key) {
  return HashCombine(FactHash::HashArgs(key.data, key.len), relation);
}

/// How Compact() renumbered fact slots: the contract between the Database
/// and every structure that holds FactIds. Alive facts keep their relative
/// order (the remap is monotonic on survivors), so min/ordering invariants
/// survive remapping; tombstoned slots map to kNoFact below.
struct FactIdRemap {
  /// new_id[old] is the surviving fact's new id, or Database::kNoFact for
  /// a slot that was tombstoned (and is now gone).
  std::vector<FactId> new_id;
  std::size_t old_slots = 0;  ///< Slot count before the compaction.
  std::size_t new_slots = 0;  ///< Slot count after (== alive facts).

  FactId Apply(FactId old_id) const { return new_id[old_id]; }
  /// True when the compaction reclaimed nothing (no dead slots).
  bool identity() const { return old_slots == new_slots; }
};

struct AuditReport;  // data/audit.h

/// A finite set of facts with set semantics (duplicate inserts are no-ops).
class Database {
 public:
  explicit Database(Schema schema) : schema_(std::move(schema)) {}

  /// Adds a fact given pre-interned element ids; returns its FactId.
  /// Re-adding an identical fact returns the existing id.
  FactId AddFact(RelationId relation, std::vector<ElementId> args);

  /// Adds a fact given element names (interned on the fly).
  FactId AddFactNamed(RelationId relation,
                      const std::vector<std::string>& names);

  /// Convenience: parse "a b c d" (whitespace-separated element names).
  FactId AddFactStr(RelationId relation, std::string_view spaced_names);

  /// What RemoveFact did to the block partition; consumed by
  /// PreparedDatabase::ApplyRemove to mirror the change in O(1) lookups.
  struct RemovedFact {
    BlockId block = 0;          ///< Block the fact was removed from.
    bool block_removed = false; ///< True if that block became empty.
    /// When block_removed: the id the (previously last) block that was
    /// swapped into `block`'s slot used to have; equal to `block` when the
    /// removed block already was the last one (no swap happened).
    BlockId moved_from = 0;
  };

  /// Tombstones an alive fact: its slot, id, and stored tuple remain (so
  /// held FactIds stay valid and the tuple stays printable), but the fact
  /// leaves the block partition, Contains/FindFact, and NumAliveFacts.
  /// Re-adding the same tuple later creates a fresh slot. If the block
  /// partition has been built it is maintained incrementally; an emptied
  /// block is swap-removed (the last block takes its id — see the returned
  /// RemovedFact, which is meaningful only when the partition was built).
  RemovedFact RemoveFact(FactId id);

  /// Number of fact slots ever allocated; the iteration bound for
  /// id-indexed arrays. Tombstoned slots count.
  std::size_t NumFacts() const { return slots_.size(); }

  /// Number of facts currently alive (NumFacts minus tombstones).
  std::size_t NumAliveFacts() const { return num_alive_; }

  /// Number of tombstoned slots awaiting compaction.
  std::size_t NumDeadSlots() const { return slots_.size() - num_alive_; }

  /// Fraction of slots that are tombstoned (0 for an empty database).
  double DeadSlotRatio() const {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(NumDeadSlots()) /
                     static_cast<double>(slots_.size());
  }

  /// Reclaims every tombstoned slot, renumbering the survivors while
  /// preserving their relative order — the argument arena is compacted in
  /// the same pass, so surviving spans slide down and offsets stay
  /// monotone in FactId — and returns the remap. Blocks keep their
  /// BlockIds (only their member ids are rewritten), so block-level
  /// indexes need no patching. Every external structure holding FactIds
  /// must be patched with the returned remap (ApplyRemap protocol) before
  /// its next use; Repair witnesses into this database are invalidated.
  /// O(slots + arena + blocks). A compaction with no dead slots is a
  /// no-op that returns an identity remap.
  FactIdRemap Compact();

  /// True if slot `id` holds a live fact (false after RemoveFact).
  bool alive(FactId id) const { return alive_[id]; }

  /// The fact in slot `id`, viewed in place in the argument arena. The
  /// view is invalidated by AddFact (arena may reallocate) and Compact.
  FactRef fact(FactId id) const {
    const FactSlot& s = slots_[id];
    return FactRef{relation_[id],
                   ArgSpan{arg_arena_.data() + s.offset, s.arity}};
  }

  /// Copies slot `id` out into an owned Fact that survives later mutation
  /// (witness materialization).
  Fact MaterializeFact(FactId id) const { return fact(id).ToFact(); }

  const Schema& schema() const { return schema_; }
  Interner& elements() { return elements_; }
  const Interner& elements() const { return elements_; }

  /// Key tuple of a fact (first key_len args), as an owned vector.
  /// Allocates; hot paths should prefer KeyViewOf.
  std::vector<ElementId> KeyOf(FactId id) const;

  /// Key prefix of a fact as a view into the argument arena; no
  /// allocation. Invalidated by AddFact (the arena may reallocate).
  KeyView KeyViewOf(FactId id) const {
    return KeyView{arg_arena_.data() + slots_[id].offset,
                   schema_.Relation(relation_[id]).key_len};
  }

  /// True if the two facts are key-equal (same relation, same key tuple).
  bool KeyEqual(FactId a, FactId b) const;

  /// The block partition. Built lazily on first read, then maintained
  /// incrementally across AddFact/RemoveFact (never rebuilt from scratch).
  const std::vector<Block>& blocks() const;

  /// Block containing fact `id`. Precondition: alive(id).
  BlockId BlockOf(FactId id) const;

  /// Looks up the block with the given relation and key tuple, or kNoBlock.
  /// Served by the same persistent key index that maintains the partition,
  /// so it stays correct across mutations.
  BlockId FindBlock(RelationId relation, KeyView key) const;

  static constexpr BlockId kNoBlock = 0xffffffffu;

  /// True if no block has two distinct facts.
  bool IsConsistent() const;

  /// Number of repairs as a double (may overflow 64-bit integers).
  double CountRepairs() const;

  /// Pretty-prints fact `id` as "R(a, b | c, d)" with the key before '|'.
  std::string FactToString(FactId id) const;

  /// Pretty-prints the whole database, one fact per line, grouped by block.
  std::string ToString() const;

  /// True if the database contains this exact fact (alive).
  bool Contains(const Fact& f) const;

  /// Looks up the id of an existing alive fact, or kNoFact.
  FactId FindFact(const Fact& f) const;

  static constexpr FactId kNoFact = 0xffffffffu;

  /// Arena introspection (tests, size accounting): total ElementIds
  /// stored, and a fact's span offset within the arena. Offsets are
  /// monotone in FactId right after construction or Compact().
  std::size_t ArgArenaSize() const { return arg_arena_.size(); }
  std::uint32_t ArgOffsetOf(FactId id) const { return slots_[id].offset; }

 private:
  // The deep auditor checks the private indexes (hash buckets, block_of_)
  // directly, and audit_test's corruptor plants targeted inconsistencies
  // for it to find. Neither is a production dependency.
  friend AuditReport AuditDatabase(const Database& db);
  friend class TestCorruptor;

  /// Slot metadata: where a fact's argument span lives in the arena.
  struct FactSlot {
    std::uint32_t offset = 0;  ///< First argument's index in arg_arena_.
    std::uint32_t arity = 0;   ///< Span length (== relation arity).
  };

  void EnsureBlocks() const;
  /// The one (relation, key) -> BlockId probe of the key index, shared by
  /// FindBlock and InsertIntoBlocks so lookup and partition maintenance
  /// can never disagree. Requires the partition to be built.
  BlockId ProbeBlock(RelationId relation, KeyView key) const;
  /// Appends `id` to its key's block (creating the block if needed),
  /// maintaining blocks_, block_of_, and block_index_. Requires the
  /// partition to be built.
  void InsertIntoBlocks(FactId id) const;
  /// Removes `b` from block_index_'s bucket for its key hash.
  void EraseBlockIndexEntry(BlockId b) const;
  /// Looks up an alive fact with this relation and argument span in the
  /// content index, or kNoFact.
  FactId ProbeFact(RelationId relation, ArgSpan args) const;

  Schema schema_;
  Interner elements_;

  // Columnar fact storage: one arena of all argument tuples plus
  // per-slot (offset, arity) and relation columns, indexed by FactId.
  std::vector<ElementId> arg_arena_;
  std::vector<FactSlot> slots_;
  std::vector<RelationId> relation_;
  std::vector<char> alive_;  // vector<char>: mutable per-slot, no bitproxy.
  std::size_t num_alive_ = 0;

  // Content index over alive facts: FactHash-of-span -> candidate ids
  // (collisions resolved by comparing relation + span against the arena).
  // Probing hashes the query tuple directly — no temporary Fact.
  std::unordered_map<std::size_t, std::vector<FactId>> fact_index_;

  // Block partition: lazily built, then incrementally maintained. The key
  // index buckets blocks by HashRelationKey (collisions resolved by
  // comparing stored keys) and is the partition's single source of truth
  // for key lookup, shared with PreparedDatabase::FindBlock.
  mutable bool blocks_dirty_ = true;
  mutable std::vector<Block> blocks_;
  mutable std::vector<BlockId> block_of_;
  mutable std::unordered_map<std::size_t, std::vector<BlockId>> block_index_;
};

}  // namespace cqa

#endif  // CQA_DATA_DATABASE_H_
