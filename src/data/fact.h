// Facts: ground tuples R(e1, ..., ek) over interned elements.
//
// Storage is columnar (data/database.h): the Database keeps every fact's
// arguments in one contiguous arena and hands out non-owning FactRef
// views into it. The owning Fact struct remains the boundary type — it
// is what callers build to insert or look up a tuple, and what witnesses
// carry once they must outlive the database's mutation stream.

#ifndef CQA_DATA_FACT_H_
#define CQA_DATA_FACT_H_

#include <cstdint>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "data/schema.h"

namespace cqa {

/// Index of a fact within a Database (insertion order, dense).
using FactId = std::uint32_t;

/// Index of a block within a Database's block index.
using BlockId = std::uint32_t;

/// Non-owning view of a contiguous argument tuple (C++17 stand-in for
/// std::span<const ElementId>). Valid while the owning Database exists
/// and no facts are added (the arena may reallocate on insert).
struct ArgSpan {
  const ElementId* data = nullptr;
  std::uint32_t len = 0;

  const ElementId* begin() const { return data; }
  const ElementId* end() const { return data + len; }
  std::uint32_t size() const { return len; }
  bool empty() const { return len == 0; }
  ElementId operator[](std::uint32_t i) const { return data[i]; }

  bool operator==(const ArgSpan& o) const {
    if (len != o.len) return false;
    // Word-wise fast path: compare two 32-bit elements per 64-bit load
    // (memcpy keeps it alignment- and aliasing-safe; compilers lower it
    // to a plain unaligned load). Tuples are short, so halving the
    // compare count matters on the content-index probe path.
    std::uint32_t i = 0;
    for (; i + 2 <= len; i += 2) {
      std::uint64_t a, b;
      __builtin_memcpy(&a, data + i, sizeof(a));
      __builtin_memcpy(&b, o.data + i, sizeof(b));
      if (a != b) return false;
    }
    return i == len || data[i] == o.data[i];
  }
  bool operator!=(const ArgSpan& o) const { return !(*this == o); }
};

/// An owned ground fact. `args.size()` equals the relation's arity.
struct Fact {
  RelationId relation = 0;
  std::vector<ElementId> args;

  bool operator==(const Fact& other) const {
    return relation == other.relation && args == other.args;
  }
};

/// A fact viewed in place in its database's argument arena: the hot-path
/// currency of every algorithm layer. Cheap to copy (pointer + lengths);
/// invalidated like ArgSpan. Implicitly constructible from an owned Fact
/// so pattern-matching helpers take FactRef and accept both.
struct FactRef {
  RelationId relation = 0;
  ArgSpan args;

  FactRef() = default;
  FactRef(RelationId rel, ArgSpan a) : relation(rel), args(a) {}
  FactRef(const Fact& f)  // NOLINT: implicit view of an owned fact
      : relation(f.relation),
        args{f.args.data(), static_cast<std::uint32_t>(f.args.size())} {}

  /// Copies the view out into an owned Fact (witness materialization).
  Fact ToFact() const {
    return Fact{relation, std::vector<ElementId>(args.begin(), args.end())};
  }

  bool operator==(const FactRef& o) const {
    return relation == o.relation && args == o.args;
  }
  bool operator!=(const FactRef& o) const { return !(*this == o); }
};

/// One hash recipe for both representations: hashing a FactRef over the
/// arena span and hashing the owned Fact it materializes agree by
/// construction (both feed the same word-wise mix over the same
/// contiguous elements). The recipe packs two 32-bit elements into one
/// 64-bit word per mix step — half the HashCombine avalanches of the
/// element-at-a-time HashRange on the FindFact/ProbeFact probe path.
/// In-process bucketing only: the value is endian-dependent and never
/// persisted.
struct FactHash {
  static std::size_t HashArgs(const ElementId* data, std::uint32_t len) {
    std::size_t h = 0x2545f4914f6cdd1dULL;
    std::uint32_t i = 0;
    for (; i + 2 <= len; i += 2) {
      std::uint64_t w;
      __builtin_memcpy(&w, data + i, sizeof(w));
      h = HashCombine(h, static_cast<std::size_t>(w));
    }
    if (i < len) h = HashCombine(h, static_cast<std::size_t>(data[i]));
    return h;
  }

  std::size_t operator()(const FactRef& f) const {
    return HashCombine(HashArgs(f.args.data, f.args.len), f.relation);
  }
  std::size_t operator()(const Fact& f) const {
    return HashCombine(
        HashArgs(f.args.data(), static_cast<std::uint32_t>(f.args.size())),
        f.relation);
  }
};

}  // namespace cqa

#endif  // CQA_DATA_FACT_H_
