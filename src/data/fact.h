// Facts: ground tuples R(e1, ..., ek) over interned elements.

#ifndef CQA_DATA_FACT_H_
#define CQA_DATA_FACT_H_

#include <cstdint>
#include <vector>

#include "base/hash.h"
#include "base/interner.h"
#include "data/schema.h"

namespace cqa {

/// Index of a fact within a Database (insertion order, dense).
using FactId = std::uint32_t;

/// Index of a block within a Database's block index.
using BlockId = std::uint32_t;

/// A ground fact. `args.size()` equals the relation's arity.
struct Fact {
  RelationId relation = 0;
  std::vector<ElementId> args;

  bool operator==(const Fact& other) const {
    return relation == other.relation && args == other.args;
  }
};

struct FactHash {
  std::size_t operator()(const Fact& f) const {
    return HashCombine(HashRange(f.args.begin(), f.args.end()), f.relation);
  }
};

}  // namespace cqa

#endif  // CQA_DATA_FACT_H_
