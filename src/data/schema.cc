#include "data/schema.h"

#include "base/check.h"

namespace cqa {

RelationId Schema::AddRelation(std::string_view name, std::uint32_t arity,
                               std::uint32_t key_len) {
  CQA_CHECK_MSG(arity >= 1, "relation arity must be >= 1");
  CQA_CHECK_MSG(key_len <= arity, "key length cannot exceed arity");
  CQA_CHECK_MSG(by_name_.find(std::string(name)) == by_name_.end(),
                "duplicate relation name");
  RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back(RelationSchema{std::string(name), arity, key_len});
  by_name_.emplace(std::string(name), id);
  return id;
}

RelationId Schema::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kNotFound : it->second;
}

const RelationSchema& Schema::Relation(RelationId id) const {
  CQA_CHECK(id < relations_.size());
  return relations_[id];
}

}  // namespace cqa
