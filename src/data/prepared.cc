#include "data/prepared.h"

namespace cqa {

PreparedDatabase::PreparedDatabase(const Database& db) : db_(&db) {
  const std::vector<Block>& blocks = db.blocks();  // Forces the partition.

  block_of_.resize(db.NumFacts());
  facts_by_relation_.resize(db.schema().NumRelations());
  blocks_by_relation_.resize(db.schema().NumRelations());
  for (FactId id = 0; id < db.NumFacts(); ++id) {
    block_of_[id] = db.BlockOf(id);
    facts_by_relation_[db.fact(id).relation].push_back(id);
  }

  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks_by_relation_[blocks[b].relation].push_back(b);
  }
}

void PreparedDatabase::EnsureKeyIndex() const {
  std::call_once(key_index_once_, [this] {
    const std::vector<Block>& blocks = db_->blocks();
    key_index_.reserve(blocks.size() * 2 + 1);
    for (BlockId b = 0; b < blocks.size(); ++b) {
      KeyView key{blocks[b].key.data(),
                  static_cast<std::uint32_t>(blocks[b].key.size())};
      key_index_[HashRelationKey(blocks[b].relation, key)].push_back(b);
    }
  });
}

BlockId PreparedDatabase::FindBlock(RelationId relation, KeyView key) const {
  EnsureKeyIndex();
  auto it = key_index_.find(HashRelationKey(relation, key));
  if (it == key_index_.end()) return kNoBlock;
  const std::vector<Block>& blocks = db_->blocks();
  for (BlockId b : it->second) {
    const Block& block = blocks[b];
    if (block.relation != relation) continue;
    KeyView stored{block.key.data(),
                   static_cast<std::uint32_t>(block.key.size())};
    if (stored == key) return b;
  }
  return kNoBlock;
}

}  // namespace cqa
