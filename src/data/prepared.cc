#include "data/prepared.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {

PreparedDatabase::PreparedDatabase(const Database& db) : db_(&db) {
  const std::vector<Block>& blocks = db.blocks();  // Forces the partition.

  facts_by_relation_.resize(db.schema().NumRelations());
  blocks_by_relation_.resize(db.schema().NumRelations());
  for (FactId id = 0; id < db.NumFacts(); ++id) {
    if (!db.alive(id)) continue;
    facts_by_relation_[db.fact(id).relation].push_back(id);
  }

  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks_by_relation_[blocks[b].relation].push_back(b);
  }
}

void PreparedDatabase::ApplyInsert(FactId id) {
  CQA_CHECK(db_->alive(id));
  RelationId relation = db_->fact(id).relation;
  facts_by_relation_[relation].push_back(id);
  BlockId b = db_->BlockOf(id);
  // A freshly opened block holds exactly the new fact; an insert into an
  // existing block changes no block index.
  if (db_->blocks()[b].facts.size() == 1) {
    blocks_by_relation_[relation].push_back(b);
  }
}

void PreparedDatabase::ApplyRemove(FactId id,
                                   const Database::RemovedFact& removed) {
  CQA_CHECK(!db_->alive(id));
  RelationId relation = db_->fact(id).relation;
  std::vector<FactId>& facts = facts_by_relation_[relation];
  facts.erase(std::find(facts.begin(), facts.end(), id));

  if (!removed.block_removed) return;
  // The emptied block vanished and (unless it was last) the previously
  // last block was renumbered onto its id; patch both relations' lists.
  std::vector<BlockId>& blocks = blocks_by_relation_[relation];
  blocks.erase(std::find(blocks.begin(), blocks.end(), removed.block));
  if (removed.moved_from != removed.block) {
    RelationId moved_rel = db_->blocks()[removed.block].relation;
    std::vector<BlockId>& moved = blocks_by_relation_[moved_rel];
    *std::find(moved.begin(), moved.end(), removed.moved_from) =
        removed.block;
  }
}

}  // namespace cqa
