#include "data/prepared.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {

PreparedDatabase::PreparedDatabase(const Database& db) : db_(&db) {
  const std::vector<Block>& blocks = db.blocks();  // Forces the partition.

  facts_by_relation_.resize(db.schema().NumRelations());
  blocks_by_relation_.resize(db.schema().NumRelations());
  pos_in_relation_.resize(db.NumFacts());
  for (FactId id = 0; id < db.NumFacts(); ++id) {
    if (!db.alive(id)) continue;
    std::vector<FactId>& facts = facts_by_relation_[db.fact(id).relation];
    pos_in_relation_[id] = static_cast<std::uint32_t>(facts.size());
    facts.push_back(id);
  }

  for (BlockId b = 0; b < blocks.size(); ++b) {
    blocks_by_relation_[blocks[b].relation].push_back(b);
  }
}

void PreparedDatabase::ApplyInsert(FactId id) {
  CQA_CHECK(db_->alive(id));
  RelationId relation = db_->fact(id).relation;
  std::vector<FactId>& facts = facts_by_relation_[relation];
  pos_in_relation_.resize(db_->NumFacts());
  pos_in_relation_[id] = static_cast<std::uint32_t>(facts.size());
  facts.push_back(id);
  BlockId b = db_->BlockOf(id);
  // A freshly opened block holds exactly the new fact; an insert into an
  // existing block changes no block index.
  if (db_->blocks()[b].facts.size() == 1) {
    blocks_by_relation_[relation].push_back(b);
  }
}

void PreparedDatabase::ApplyRemove(FactId id,
                                   const Database::RemovedFact& removed) {
  CQA_CHECK(!db_->alive(id));
  RelationId relation = db_->fact(id).relation;
  std::vector<FactId>& facts = facts_by_relation_[relation];
  std::uint32_t pos = pos_in_relation_[id];
  CQA_DCHECK(pos < facts.size() && facts[pos] == id);
  facts[pos] = facts.back();
  pos_in_relation_[facts[pos]] = pos;
  facts.pop_back();

  if (!removed.block_removed) return;
  // The emptied block vanished and (unless it was last) the previously
  // last block was renumbered onto its id; patch both relations' lists.
  std::vector<BlockId>& blocks = blocks_by_relation_[relation];
  blocks.erase(std::find(blocks.begin(), blocks.end(), removed.block));
  if (removed.moved_from != removed.block) {
    RelationId moved_rel = db_->blocks()[removed.block].relation;
    std::vector<BlockId>& moved = blocks_by_relation_[moved_rel];
    *std::find(moved.begin(), moved.end(), removed.moved_from) =
        removed.block;
  }
}

void PreparedDatabase::ApplyRemap(const FactIdRemap& remap) {
  std::vector<std::uint32_t> pos(remap.new_slots);
  for (std::vector<FactId>& facts : facts_by_relation_) {
    for (std::uint32_t i = 0; i < facts.size(); ++i) {
      FactId nid = remap.Apply(facts[i]);
      CQA_CHECK(nid != Database::kNoFact);
      facts[i] = nid;
      pos[nid] = i;
    }
  }
  pos_in_relation_ = std::move(pos);
}

}  // namespace cqa
