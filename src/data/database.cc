#include "data/database.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"
#include "base/hash.h"
#include "base/strings.h"

namespace cqa {

FactId Database::ProbeFact(RelationId relation, ArgSpan args) const {
  auto it = fact_index_.find(FactHash{}(FactRef{relation, args}));
  if (it == fact_index_.end()) return kNoFact;
  for (FactId id : it->second) {
    if (relation_[id] == relation && fact(id).args == args) return id;
  }
  return kNoFact;
}

FactId Database::AddFact(RelationId relation, std::vector<ElementId> args) {
  const RelationSchema& rel = schema_.Relation(relation);
  CQA_CHECK_MSG(args.size() == rel.arity, "fact arity mismatch");
  ArgSpan span{args.data(), static_cast<std::uint32_t>(args.size())};
  FactId existing = ProbeFact(relation, span);
  if (existing != kNoFact) return existing;

  FactId id = static_cast<FactId>(slots_.size());
  FactSlot slot;
  slot.offset = static_cast<std::uint32_t>(arg_arena_.size());
  slot.arity = rel.arity;
  arg_arena_.insert(arg_arena_.end(), args.begin(), args.end());
  slots_.push_back(slot);
  relation_.push_back(relation);
  alive_.push_back(1);
  ++num_alive_;
  fact_index_[FactHash{}(FactRef{relation, span})].push_back(id);
  // Bulk loads stay lazy (one linear build on first read); once the
  // partition exists it is maintained in place.
  if (!blocks_dirty_) {
    block_of_.push_back(0);
    InsertIntoBlocks(id);
  }
  return id;
}

Database::RemovedFact Database::RemoveFact(FactId id) {
  CQA_CHECK(id < slots_.size());
  CQA_CHECK_MSG(alive_[id], "RemoveFact on a tombstoned fact");
  alive_[id] = 0;
  --num_alive_;
  auto it = fact_index_.find(FactHash{}(fact(id)));
  CQA_CHECK(it != fact_index_.end());
  std::vector<FactId>& bucket = it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) fact_index_.erase(it);

  RemovedFact info;
  if (blocks_dirty_) return info;  // Partition not built; nothing to patch.

  BlockId b = block_of_[id];
  info.block = b;
  std::vector<FactId>& members = blocks_[b].facts;
  members.erase(std::find(members.begin(), members.end(), id));
  if (!members.empty()) {
    info.moved_from = b;
    return info;
  }

  // Block emptied: swap-remove it so BlockIds stay dense. The previously
  // last block takes over id `b`; its facts and key-index entry follow.
  info.block_removed = true;
  EraseBlockIndexEntry(b);
  BlockId last = static_cast<BlockId>(blocks_.size() - 1);
  info.moved_from = last;
  if (b != last) {
    EraseBlockIndexEntry(last);
    blocks_[b] = std::move(blocks_[last]);
    for (FactId f : blocks_[b].facts) block_of_[f] = b;
    KeyView key{blocks_[b].key.data(),
                static_cast<std::uint32_t>(blocks_[b].key.size())};
    block_index_[HashRelationKey(blocks_[b].relation, key)].push_back(b);
  }
  blocks_.pop_back();
  return info;
}

FactIdRemap Database::Compact() {
  FactIdRemap remap;
  remap.old_slots = slots_.size();
  remap.new_id.assign(slots_.size(), kNoFact);
  FactId next = 0;
  for (FactId id = 0; id < slots_.size(); ++id) {
    if (alive_[id]) remap.new_id[id] = next++;
  }
  remap.new_slots = next;
  if (remap.identity()) return remap;

  // Slide survivors down in order — slots and their argument spans in the
  // same pass. The remap is monotonic, so a destination span never
  // overlaps a source span that has not been copied yet (dest <= src
  // throughout; std::copy handles the forward-overlapping case).
  std::uint32_t write = 0;
  for (FactId id = 0; id < slots_.size(); ++id) {
    FactId nid = remap.new_id[id];
    if (nid == kNoFact) continue;
    FactSlot s = slots_[id];
    std::copy(arg_arena_.begin() + s.offset,
              arg_arena_.begin() + s.offset + s.arity,
              arg_arena_.begin() + write);
    slots_[nid] = FactSlot{write, s.arity};
    relation_[nid] = relation_[id];
    write += s.arity;
  }
  arg_arena_.resize(write);
  arg_arena_.shrink_to_fit();
  slots_.resize(next);
  slots_.shrink_to_fit();
  relation_.resize(next);
  relation_.shrink_to_fit();
  alive_.assign(next, 1);
  alive_.shrink_to_fit();
  CQA_CHECK(num_alive_ == next);

  // fact_index_ only holds alive facts (RemoveFact erases) and hashes are
  // content-based, so the buckets survive — only the ids move.
  for (auto& [hash, bucket] : fact_index_) {
    for (FactId& id : bucket) id = remap.new_id[id];
  }

  if (!blocks_dirty_) {
    // BlockIds are stable across a compaction: only member ids move.
    for (Block& block : blocks_) {
      for (FactId& f : block.facts) f = remap.new_id[f];
    }
    std::vector<BlockId> block_of(next);
    for (FactId id = 0; id < remap.old_slots; ++id) {
      if (remap.new_id[id] != kNoFact) {
        block_of[remap.new_id[id]] = block_of_[id];
      }
    }
    block_of_ = std::move(block_of);
  }
  return remap;
}

BlockId Database::ProbeBlock(RelationId relation, KeyView key) const {
  auto it = block_index_.find(HashRelationKey(relation, key));
  if (it == block_index_.end()) return kNoBlock;
  for (BlockId b : it->second) {
    const Block& block = blocks_[b];
    if (block.relation != relation) continue;
    KeyView stored{block.key.data(),
                   static_cast<std::uint32_t>(block.key.size())};
    if (stored == key) return b;
  }
  return kNoBlock;
}

void Database::InsertIntoBlocks(FactId id) const {
  KeyView key = KeyViewOf(id);
  RelationId relation = relation_[id];
  BlockId b = ProbeBlock(relation, key);
  if (b != kNoBlock) {
    blocks_[b].facts.push_back(id);
    block_of_[id] = b;
    return;
  }
  b = static_cast<BlockId>(blocks_.size());
  Block block;
  block.relation = relation;
  block.key.assign(key.begin(), key.end());
  block.facts.push_back(id);
  blocks_.push_back(std::move(block));
  block_index_[HashRelationKey(relation, key)].push_back(b);
  block_of_[id] = b;
}

void Database::EraseBlockIndexEntry(BlockId b) const {
  KeyView key{blocks_[b].key.data(),
              static_cast<std::uint32_t>(blocks_[b].key.size())};
  auto it = block_index_.find(HashRelationKey(blocks_[b].relation, key));
  CQA_CHECK(it != block_index_.end());
  std::vector<BlockId>& bucket = it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), b));
  if (bucket.empty()) block_index_.erase(it);
}

FactId Database::AddFactNamed(RelationId relation,
                              const std::vector<std::string>& names) {
  std::vector<ElementId> args;
  args.reserve(names.size());
  for (const std::string& n : names) args.push_back(elements_.Intern(n));
  return AddFact(relation, std::move(args));
}

FactId Database::AddFactStr(RelationId relation,
                            std::string_view spaced_names) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : spaced_names) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) names.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) names.push_back(std::move(cur));
  return AddFactNamed(relation, names);
}

std::vector<ElementId> Database::KeyOf(FactId id) const {
  KeyView k = KeyViewOf(id);
  return std::vector<ElementId>(k.begin(), k.end());
}

bool Database::KeyEqual(FactId a, FactId b) const {
  if (relation_[a] != relation_[b]) return false;
  return KeyViewOf(a) == KeyViewOf(b);
}

void Database::EnsureBlocks() const {
  if (!blocks_dirty_) return;
  blocks_.clear();
  block_index_.clear();
  block_index_.reserve(slots_.size() * 2 + 1);
  block_of_.assign(slots_.size(), 0);
  for (FactId id = 0; id < slots_.size(); ++id) {
    if (alive_[id]) InsertIntoBlocks(id);
  }
  blocks_dirty_ = false;
}

BlockId Database::FindBlock(RelationId relation, KeyView key) const {
  EnsureBlocks();
  return ProbeBlock(relation, key);
}

const std::vector<Block>& Database::blocks() const {
  EnsureBlocks();
  return blocks_;
}

BlockId Database::BlockOf(FactId id) const {
  EnsureBlocks();
  CQA_CHECK(id < block_of_.size());
  CQA_DCHECK(alive_[id]);
  return block_of_[id];
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks()) {
    if (b.facts.size() > 1) return false;
  }
  return true;
}

double Database::CountRepairs() const {
  double count = 1.0;
  for (const Block& b : blocks()) count *= static_cast<double>(b.facts.size());
  return count;
}

std::string Database::FactToString(FactId id) const {
  FactRef f = fact(id);
  const RelationSchema& rel = schema_.Relation(f.relation);
  std::ostringstream out;
  out << rel.name << '(';
  for (std::uint32_t i = 0; i < rel.arity; ++i) {
    if (i == rel.key_len && rel.key_len > 0) out << " | ";
    else if (i > 0) out << ", ";
    out << elements_.Name(f.args[i]);
  }
  out << ')';
  return out.str();
}

std::string Database::ToString() const {
  std::ostringstream out;
  for (BlockId b = 0; b < blocks().size(); ++b) {
    out << "block " << b << ":";
    for (FactId id : blocks()[b].facts) out << ' ' << FactToString(id);
    out << '\n';
  }
  return out.str();
}

bool Database::Contains(const Fact& f) const {
  return FindFact(f) != kNoFact;
}

FactId Database::FindFact(const Fact& f) const {
  return ProbeFact(f.relation,
                   ArgSpan{f.args.data(),
                           static_cast<std::uint32_t>(f.args.size())});
}

}  // namespace cqa
