#include "data/database.h"

#include <sstream>

#include "base/check.h"
#include "base/hash.h"
#include "base/strings.h"

namespace cqa {

FactId Database::AddFact(RelationId relation, std::vector<ElementId> args) {
  const RelationSchema& rel = schema_.Relation(relation);
  CQA_CHECK_MSG(args.size() == rel.arity, "fact arity mismatch");
  Fact f{relation, std::move(args)};
  auto it = fact_ids_.find(f);
  if (it != fact_ids_.end()) return it->second;
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(f);
  fact_ids_.emplace(std::move(f), id);
  blocks_dirty_ = true;
  return id;
}

FactId Database::AddFactNamed(RelationId relation,
                              const std::vector<std::string>& names) {
  std::vector<ElementId> args;
  args.reserve(names.size());
  for (const std::string& n : names) args.push_back(elements_.Intern(n));
  return AddFact(relation, std::move(args));
}

FactId Database::AddFactStr(RelationId relation,
                            std::string_view spaced_names) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : spaced_names) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) names.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) names.push_back(std::move(cur));
  return AddFactNamed(relation, names);
}

std::vector<ElementId> Database::KeyOf(FactId id) const {
  const Fact& f = facts_[id];
  std::uint32_t l = schema_.Relation(f.relation).key_len;
  return std::vector<ElementId>(f.args.begin(), f.args.begin() + l);
}

bool Database::KeyEqual(FactId a, FactId b) const {
  const Fact& fa = facts_[a];
  const Fact& fb = facts_[b];
  if (fa.relation != fb.relation) return false;
  std::uint32_t l = schema_.Relation(fa.relation).key_len;
  for (std::uint32_t i = 0; i < l; ++i) {
    if (fa.args[i] != fb.args[i]) return false;
  }
  return true;
}

void Database::EnsureBlocks() const {
  if (!blocks_dirty_) return;
  blocks_.clear();
  block_of_.assign(facts_.size(), 0);
  // Key of the map: relation id prepended to the key tuple.
  std::unordered_map<std::vector<ElementId>, BlockId, VectorHash> index;
  for (FactId id = 0; id < facts_.size(); ++id) {
    const Fact& f = facts_[id];
    std::uint32_t l = schema_.Relation(f.relation).key_len;
    std::vector<ElementId> key;
    key.reserve(l + 1);
    key.push_back(f.relation);
    key.insert(key.end(), f.args.begin(), f.args.begin() + l);
    auto [it, inserted] = index.emplace(key, static_cast<BlockId>(blocks_.size()));
    if (inserted) {
      Block b;
      b.relation = f.relation;
      b.key.assign(key.begin() + 1, key.end());
      blocks_.push_back(std::move(b));
    }
    blocks_[it->second].facts.push_back(id);
    block_of_[id] = it->second;
  }
  blocks_dirty_ = false;
}

const std::vector<Block>& Database::blocks() const {
  EnsureBlocks();
  return blocks_;
}

BlockId Database::BlockOf(FactId id) const {
  EnsureBlocks();
  CQA_CHECK(id < block_of_.size());
  return block_of_[id];
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks()) {
    if (b.facts.size() > 1) return false;
  }
  return true;
}

double Database::CountRepairs() const {
  double count = 1.0;
  for (const Block& b : blocks()) count *= static_cast<double>(b.facts.size());
  return count;
}

std::string Database::FactToString(FactId id) const {
  const Fact& f = facts_[id];
  const RelationSchema& rel = schema_.Relation(f.relation);
  std::ostringstream out;
  out << rel.name << '(';
  for (std::uint32_t i = 0; i < rel.arity; ++i) {
    if (i == rel.key_len && rel.key_len > 0) out << " | ";
    else if (i > 0) out << ", ";
    out << elements_.Name(f.args[i]);
  }
  out << ')';
  return out.str();
}

std::string Database::ToString() const {
  std::ostringstream out;
  for (BlockId b = 0; b < blocks().size(); ++b) {
    out << "block " << b << ":";
    for (FactId id : blocks()[b].facts) out << ' ' << FactToString(id);
    out << '\n';
  }
  return out.str();
}

bool Database::Contains(const Fact& f) const {
  return fact_ids_.find(f) != fact_ids_.end();
}

FactId Database::FindFact(const Fact& f) const {
  auto it = fact_ids_.find(f);
  return it == fact_ids_.end() ? kNoFact : it->second;
}

}  // namespace cqa
