#include "data/database.h"

#include <sstream>

#include "base/check.h"
#include "base/hash.h"
#include "base/strings.h"

namespace cqa {

FactId Database::AddFact(RelationId relation, std::vector<ElementId> args) {
  const RelationSchema& rel = schema_.Relation(relation);
  CQA_CHECK_MSG(args.size() == rel.arity, "fact arity mismatch");
  Fact f{relation, std::move(args)};
  auto it = fact_ids_.find(f);
  if (it != fact_ids_.end()) return it->second;
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(f);
  fact_ids_.emplace(std::move(f), id);
  blocks_dirty_ = true;
  return id;
}

FactId Database::AddFactNamed(RelationId relation,
                              const std::vector<std::string>& names) {
  std::vector<ElementId> args;
  args.reserve(names.size());
  for (const std::string& n : names) args.push_back(elements_.Intern(n));
  return AddFact(relation, std::move(args));
}

FactId Database::AddFactStr(RelationId relation,
                            std::string_view spaced_names) {
  std::vector<std::string> names;
  std::string cur;
  for (char c : spaced_names) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) names.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) names.push_back(std::move(cur));
  return AddFactNamed(relation, names);
}

std::vector<ElementId> Database::KeyOf(FactId id) const {
  KeyView k = KeyViewOf(id);
  return std::vector<ElementId>(k.begin(), k.end());
}

bool Database::KeyEqual(FactId a, FactId b) const {
  if (facts_[a].relation != facts_[b].relation) return false;
  return KeyViewOf(a) == KeyViewOf(b);
}

namespace {

/// Hash/equality over facts' (relation, key prefix), reading the key
/// in place via KeyViewOf — block building allocates no per-fact vectors.
struct FactKeyHash {
  const Database* db;
  std::size_t operator()(FactId id) const {
    return HashRelationKey(db->fact(id).relation, db->KeyViewOf(id));
  }
};

struct FactKeyEqual {
  const Database* db;
  bool operator()(FactId a, FactId b) const { return db->KeyEqual(a, b); }
};

}  // namespace

void Database::EnsureBlocks() const {
  if (!blocks_dirty_) return;
  blocks_.clear();
  block_of_.assign(facts_.size(), 0);
  // Maps a representative fact of each block to the block id; keys are
  // compared through their in-place views.
  std::unordered_map<FactId, BlockId, FactKeyHash, FactKeyEqual> index(
      facts_.size() * 2 + 1, FactKeyHash{this}, FactKeyEqual{this});
  for (FactId id = 0; id < facts_.size(); ++id) {
    auto [it, inserted] = index.emplace(id, static_cast<BlockId>(blocks_.size()));
    if (inserted) {
      KeyView k = KeyViewOf(id);
      Block b;
      b.relation = facts_[id].relation;
      b.key.assign(k.begin(), k.end());
      blocks_.push_back(std::move(b));
    }
    blocks_[it->second].facts.push_back(id);
    block_of_[id] = it->second;
  }
  blocks_dirty_ = false;
}

const std::vector<Block>& Database::blocks() const {
  EnsureBlocks();
  return blocks_;
}

BlockId Database::BlockOf(FactId id) const {
  EnsureBlocks();
  CQA_CHECK(id < block_of_.size());
  return block_of_[id];
}

bool Database::IsConsistent() const {
  for (const Block& b : blocks()) {
    if (b.facts.size() > 1) return false;
  }
  return true;
}

double Database::CountRepairs() const {
  double count = 1.0;
  for (const Block& b : blocks()) count *= static_cast<double>(b.facts.size());
  return count;
}

std::string Database::FactToString(FactId id) const {
  const Fact& f = facts_[id];
  const RelationSchema& rel = schema_.Relation(f.relation);
  std::ostringstream out;
  out << rel.name << '(';
  for (std::uint32_t i = 0; i < rel.arity; ++i) {
    if (i == rel.key_len && rel.key_len > 0) out << " | ";
    else if (i > 0) out << ", ";
    out << elements_.Name(f.args[i]);
  }
  out << ')';
  return out.str();
}

std::string Database::ToString() const {
  std::ostringstream out;
  for (BlockId b = 0; b < blocks().size(); ++b) {
    out << "block " << b << ":";
    for (FactId id : blocks()[b].facts) out << ' ' << FactToString(id);
    out << '\n';
  }
  return out.str();
}

bool Database::Contains(const Fact& f) const {
  return fact_ids_.find(f) != fact_ids_.end();
}

FactId Database::FindFact(const Fact& f) const {
  auto it = fact_ids_.find(f);
  return it == fact_ids_.end() ? kNoFact : it->second;
}

}  // namespace cqa
