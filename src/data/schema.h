// Relational schemas with primary-key constraints.
//
// Following the paper (Section 2), a relation symbol R has a signature
// [k, l]: arity k >= 1 and the first l positions (0 <= l <= k) form the
// primary key. The paper works with a single relation symbol; the
// self-join-free substrate (Section 4, Kolaitis–Pema / Koutris–Wijsen)
// needs several, so Schema supports any number of relations.

#ifndef CQA_DATA_SCHEMA_H_
#define CQA_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cqa {

/// Dense id of a relation within a Schema.
using RelationId = std::uint32_t;

/// One relation symbol with signature [arity, key_len].
struct RelationSchema {
  std::string name;
  std::uint32_t arity = 0;    ///< k: number of positions, k >= 1.
  std::uint32_t key_len = 0;  ///< l: first l positions form the key, l <= k.
};

/// A set of relation symbols. Immutable after relations are added.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation; name must be fresh, 1 <= arity, key_len <= arity.
  RelationId AddRelation(std::string_view name, std::uint32_t arity,
                         std::uint32_t key_len);

  /// Returns the relation id for `name`, or kNotFound.
  RelationId Find(std::string_view name) const;

  const RelationSchema& Relation(RelationId id) const;

  std::size_t NumRelations() const { return relations_.size(); }

  static constexpr RelationId kNotFound = 0xffffffffu;

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace cqa

#endif  // CQA_DATA_SCHEMA_H_
