// Repairs: one-fact-per-block selections of an inconsistent database.
//
// A repair of D is a subset-maximal consistent subset, i.e. a choice of one
// fact from every block. We represent a repair as a choice vector indexed by
// BlockId. RepairIterator enumerates all repairs in odometer order (the
// number of repairs is the product of block sizes, so callers are expected
// to use it only on small databases or to bail out early). RepairSampler
// draws repairs uniformly at random.

#ifndef CQA_DATA_REPAIR_H_
#define CQA_DATA_REPAIR_H_

#include <vector>

#include "base/rng.h"
#include "data/database.h"

namespace cqa {

/// A repair as a per-block choice. choice[b] indexes into blocks()[b].facts.
class Repair {
 public:
  Repair() = default;
  Repair(const Database* db, std::vector<std::uint32_t> choice)
      : db_(db), choice_(std::move(choice)) {}

  /// The fact selected in block b.
  FactId FactIn(BlockId b) const {
    return db_->blocks()[b].facts[choice_[b]];
  }

  /// True if fact `id` is selected.
  bool Contains(FactId id) const;

  /// All selected fact ids, in block order.
  std::vector<FactId> Facts() const;

  /// Replaces the selection in `id`'s block with `id` itself
  /// (the paper's r[a -> a'] operation).
  void Select(FactId id);

  const std::vector<std::uint32_t>& choice() const { return choice_; }
  const Database* database() const { return db_; }

 private:
  const Database* db_ = nullptr;
  std::vector<std::uint32_t> choice_;
};

/// Enumerates every repair of a database in lexicographic (odometer) order.
class RepairIterator {
 public:
  explicit RepairIterator(const Database& db);

  /// True if a current repair exists.
  bool HasValue() const { return has_value_; }

  /// Current repair (valid while HasValue()).
  Repair Current() const { return Repair(db_, choice_); }

  /// Advances to the next repair; returns false when exhausted.
  bool Next();

 private:
  const Database* db_;
  std::vector<std::uint32_t> choice_;
  bool has_value_;
};

/// Draws repairs uniformly at random (independent across calls).
class RepairSampler {
 public:
  RepairSampler(const Database& db, std::uint64_t seed)
      : db_(&db), rng_(seed) {}

  Repair Sample();

 private:
  const Database* db_;
  Rng rng_;
};

}  // namespace cqa

#endif  // CQA_DATA_REPAIR_H_
