#include "data/audit.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "algo/components.h"
#include "algo/dynamic_components.h"
#include "base/hash.h"
#include "query/query.h"

namespace cqa {

void AuditReport::Add(std::string structure, std::string message) {
  ++total_violations;
  if (violations.size() < kMaxRecorded) {
    violations.push_back({std::move(structure), std::move(message)});
  }
}

void AuditReport::Merge(const AuditReport& other) {
  total_violations += other.total_violations;
  checks += other.checks;
  for (const AuditViolation& v : other.violations) {
    if (violations.size() >= kMaxRecorded) break;
    violations.push_back(v);
  }
}

bool AuditReport::Names(std::string_view structure) const {
  for (const AuditViolation& v : violations) {
    if (v.structure == structure) return true;
  }
  return false;
}

std::string AuditReport::ToString() const {
  if (ok()) return "audit clean (" + std::to_string(checks) + " checks)";
  std::string out = "audit: " + std::to_string(total_violations) +
                    " violation(s) in " + std::to_string(checks) +
                    " checks\n";
  for (const AuditViolation& v : violations) {
    out += "  [" + v.structure + "] " + v.message + "\n";
  }
  if (total_violations > violations.size()) {
    out += "  ... " +
           std::to_string(total_violations - violations.size()) +
           " more not recorded\n";
  }
  return out;
}

namespace {

/// Counts one invariant evaluation and records it if it failed.
#define CQA_AUDIT(report, cond, structure, msg) \
  do {                                          \
    ++(report)->checks;                         \
    if (!(cond)) (report)->Add(structure, msg); \
  } while (0)

std::string IdStr(std::uint64_t v) { return std::to_string(v); }

}  // namespace

AuditReport AuditDatabase(const Database& db) {
  AuditReport report;
  const std::size_t n = db.slots_.size();

  // -- Slot columns are parallel arrays --------------------------------
  CQA_AUDIT(&report, db.relation_.size() == n, "slots",
            "relation column has " + IdStr(db.relation_.size()) +
                " entries for " + IdStr(n) + " slots");
  CQA_AUDIT(&report, db.alive_.size() == n, "slots",
            "alive column has " + IdStr(db.alive_.size()) + " entries for " +
                IdStr(n) + " slots");
  if (db.relation_.size() != n || db.alive_.size() != n) return report;

  // -- Arena: offsets monotone and dense, arity matches the schema ------
  std::uint32_t expected_offset = 0;
  for (FactId id = 0; id < n; ++id) {
    const auto& slot = db.slots_[id];
    CQA_AUDIT(&report, slot.offset == expected_offset, "arena",
              "slot " + IdStr(id) + " offset " + IdStr(slot.offset) +
                  ", dense layout expects " + IdStr(expected_offset));
    if (db.relation_[id] < db.schema_.NumRelations()) {
      std::uint32_t arity = db.schema_.Relation(db.relation_[id]).arity;
      CQA_AUDIT(&report, slot.arity == arity, "arena",
                "slot " + IdStr(id) + " arity " + IdStr(slot.arity) +
                    " vs schema arity " + IdStr(arity));
    } else {
      report.Add("slots", "slot " + IdStr(id) + " names relation " +
                              IdStr(db.relation_[id]) + " outside the schema");
    }
    // Walk the stored offset (not the expected one) so a single corrupt
    // slot yields one arena violation, not a cascade.
    expected_offset = slot.offset + slot.arity;
  }
  CQA_AUDIT(&report, expected_offset == db.arg_arena_.size(), "arena",
            "last span ends at " + IdStr(expected_offset) + " but arena has " +
                IdStr(db.arg_arena_.size()) + " elements");
  for (ElementId el : db.arg_arena_) {
    if (el >= db.elements_.size()) {
      report.Add("arena", "arena element id " + IdStr(el) +
                              " outside the interner (size " +
                              IdStr(db.elements_.size()) + ")");
      break;  // One dangling id is enough evidence.
    }
  }
  ++report.checks;

  // -- Alive accounting -------------------------------------------------
  std::size_t alive = 0;
  for (FactId id = 0; id < n; ++id) alive += db.alive_[id] ? 1 : 0;
  CQA_AUDIT(&report, alive == db.num_alive_, "slots",
            "alive column counts " + IdStr(alive) + " but num_alive_ is " +
                IdStr(db.num_alive_));
  CQA_AUDIT(&report, db.NumDeadSlots() == n - alive, "slots",
            "NumDeadSlots " + IdStr(db.NumDeadSlots()) + " vs counted " +
                IdStr(n - alive));

  // -- Content index <-> arena, both directions -------------------------
  // Every alive fact must be found under its own content hash (this also
  // proves set semantics: a duplicate pair cannot both probe to
  // themselves), and every id any bucket holds must be an alive fact
  // whose content hashes to that bucket.
  for (FactId id = 0; id < n; ++id) {
    if (!db.alive_[id]) continue;
    FactId probed = db.ProbeFact(db.relation_[id], db.fact(id).args);
    CQA_AUDIT(&report, probed == id, "content-index",
              "alive fact " + IdStr(id) + " probes to " +
                  (probed == Database::kNoFact ? std::string("nothing")
                                               : IdStr(probed)));
  }
  for (const auto& [hash, bucket] : db.fact_index_) {
    CQA_AUDIT(&report, !bucket.empty(), "content-index",
              "empty bucket for hash " + IdStr(hash));
    for (FactId id : bucket) {
      if (id >= n || !db.alive_[id]) {
        report.Add("content-index",
                   "bucket " + IdStr(hash) + " holds " +
                       (id >= n ? "out-of-range" : "tombstoned") + " fact " +
                       IdStr(id));
        ++report.checks;
        continue;
      }
      CQA_AUDIT(&report, FactHash{}(db.fact(id)) == hash, "content-index",
                "fact " + IdStr(id) + " filed under hash " + IdStr(hash) +
                    " but hashes to " + IdStr(FactHash{}(db.fact(id))));
    }
  }

  // -- Block partition <-> key index <-> per-fact mapping ---------------
  const std::vector<Block>& blocks = db.blocks();  // Forces the partition.
  std::vector<std::uint32_t> seen(n, 0);
  for (BlockId b = 0; b < blocks.size(); ++b) {
    const Block& block = blocks[b];
    CQA_AUDIT(&report, !block.facts.empty(), "blocks",
              "block " + IdStr(b) + " is empty");
    for (FactId f : block.facts) {
      if (f >= n) {
        report.Add("blocks", "block " + IdStr(b) + " holds out-of-range fact " +
                                 IdStr(f));
        ++report.checks;
        continue;
      }
      ++seen[f];
      CQA_AUDIT(&report, db.alive_[f] != 0, "blocks",
                "block " + IdStr(b) + " holds tombstoned fact " + IdStr(f));
      CQA_AUDIT(&report, db.relation_[f] == block.relation, "blocks",
                "block " + IdStr(b) + " (relation " + IdStr(block.relation) +
                    ") holds fact " + IdStr(f) + " of relation " +
                    IdStr(db.relation_[f]));
      if (db.alive_[f]) {
        KeyView key = db.KeyViewOf(f);
        KeyView block_key{block.key.data(),
                          static_cast<std::uint32_t>(block.key.size())};
        CQA_AUDIT(&report, key == block_key, "blocks",
                  "fact " + IdStr(f) + " key differs from its block " +
                      IdStr(b) + " key");
        CQA_AUDIT(&report, db.block_of_[f] == b, "blocks",
                  "block_of_[" + IdStr(f) + "] is " + IdStr(db.block_of_[f]) +
                      ", partition places it in " + IdStr(b));
      }
    }
    // Key-index agreement: probing the block's own key must route here.
    KeyView block_key{block.key.data(),
                      static_cast<std::uint32_t>(block.key.size())};
    BlockId probed = db.ProbeBlock(block.relation, block_key);
    CQA_AUDIT(&report, probed == b, "key-index",
              "block " + IdStr(b) + " key probes to " +
                  (probed == Database::kNoBlock ? std::string("nothing")
                                                : IdStr(probed)));
  }
  for (FactId f = 0; f < n; ++f) {
    std::uint32_t want = db.alive_[f] ? 1 : 0;
    CQA_AUDIT(&report, seen[f] == want, "blocks",
              "fact " + IdStr(f) + " appears in " + IdStr(seen[f]) +
                  " blocks, expected " + IdStr(want));
  }
  // Reverse direction: every key-index entry points at a real block that
  // hashes to its bucket (a stale entry misroutes the next same-key
  // insert into a duplicate block).
  for (const auto& [hash, bucket] : db.block_index_) {
    CQA_AUDIT(&report, !bucket.empty(), "key-index",
              "empty bucket for hash " + IdStr(hash));
    std::unordered_set<BlockId> in_bucket;
    for (BlockId b : bucket) {
      if (b >= blocks.size()) {
        report.Add("key-index", "bucket " + IdStr(hash) +
                                    " holds out-of-range block " + IdStr(b));
        ++report.checks;
        continue;
      }
      CQA_AUDIT(&report, in_bucket.insert(b).second, "key-index",
                "block " + IdStr(b) + " filed twice under hash " +
                    IdStr(hash));
      KeyView key{blocks[b].key.data(),
                  static_cast<std::uint32_t>(blocks[b].key.size())};
      CQA_AUDIT(&report, HashRelationKey(blocks[b].relation, key) == hash,
                "key-index",
                "block " + IdStr(b) + " filed under hash " + IdStr(hash) +
                    " but its key hashes elsewhere");
    }
  }

  return report;
}

AuditReport AuditPrepared(const PreparedDatabase& pdb) {
  AuditReport report;
  const Database& db = pdb.db();
  const std::size_t num_relations = db.schema().NumRelations();

  CQA_AUDIT(&report, pdb.facts_by_relation_.size() == num_relations,
            "prepared",
            "facts_by_relation has " + IdStr(pdb.facts_by_relation_.size()) +
                " entries for " + IdStr(num_relations) + " relations");
  CQA_AUDIT(&report, pdb.blocks_by_relation_.size() == num_relations,
            "prepared",
            "blocks_by_relation has " + IdStr(pdb.blocks_by_relation_.size()) +
                " entries for " + IdStr(num_relations) + " relations");
  CQA_AUDIT(&report, pdb.pos_in_relation_.size() >= db.NumFacts(), "prepared",
            "position index covers " + IdStr(pdb.pos_in_relation_.size()) +
                " of " + IdStr(db.NumFacts()) + " slots");
  if (!report.ok()) return report;

  // Fresh scan: the alive facts of each relation, as a set.
  std::vector<std::size_t> want_counts(num_relations, 0);
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    if (db.alive(f)) ++want_counts[db.fact(f).relation];
  }
  std::vector<char> listed(db.NumFacts(), 0);
  for (RelationId r = 0; r < num_relations; ++r) {
    const std::vector<FactId>& facts = pdb.facts_by_relation_[r];
    CQA_AUDIT(&report, facts.size() == want_counts[r], "prepared",
              "relation " + IdStr(r) + " lists " + IdStr(facts.size()) +
                  " facts, database has " + IdStr(want_counts[r]));
    for (std::uint32_t i = 0; i < facts.size(); ++i) {
      FactId f = facts[i];
      if (f >= db.NumFacts()) {
        report.Add("prepared", "relation " + IdStr(r) +
                                   " lists out-of-range fact " + IdStr(f));
        ++report.checks;
        continue;
      }
      CQA_AUDIT(&report, listed[f] == 0, "prepared",
                "fact " + IdStr(f) + " listed twice");
      listed[f] = 1;
      CQA_AUDIT(&report, db.alive(f), "prepared",
                "relation " + IdStr(r) + " lists tombstoned fact " +
                    IdStr(f));
      CQA_AUDIT(&report, db.alive(f) && db.fact(f).relation == r, "prepared",
                "relation " + IdStr(r) + " lists fact " + IdStr(f) +
                    " of another relation");
      CQA_AUDIT(&report, pdb.pos_in_relation_[f] == i, "prepared",
                "pos_in_relation_[" + IdStr(f) + "] is " +
                    IdStr(pdb.pos_in_relation_[f]) + ", fact sits at index " +
                    IdStr(i));
    }
  }
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    CQA_AUDIT(&report, listed[f] == (db.alive(f) ? 1 : 0), "prepared",
              "alive fact " + IdStr(f) + " missing from its relation list");
  }

  // Block lists: exactly the partition's blocks, grouped by relation.
  const std::vector<Block>& blocks = db.blocks();
  std::vector<char> block_listed(blocks.size(), 0);
  for (RelationId r = 0; r < num_relations; ++r) {
    for (BlockId b : pdb.blocks_by_relation_[r]) {
      if (b >= blocks.size()) {
        report.Add("prepared", "relation " + IdStr(r) +
                                   " lists out-of-range block " + IdStr(b));
        ++report.checks;
        continue;
      }
      CQA_AUDIT(&report, block_listed[b] == 0, "prepared",
                "block " + IdStr(b) + " listed twice");
      block_listed[b] = 1;
      CQA_AUDIT(&report, blocks[b].relation == r, "prepared",
                "relation " + IdStr(r) + " lists block " + IdStr(b) +
                    " of relation " + IdStr(blocks[b].relation));
    }
  }
  for (BlockId b = 0; b < blocks.size(); ++b) {
    CQA_AUDIT(&report, block_listed[b] == 1, "prepared",
              "block " + IdStr(b) + " missing from its relation list");
  }

  return report;
}

namespace {

/// Const union-find walk (no path compression): the root of f.
FactId RootOf(const std::vector<FactId>& parent, FactId f) {
  // Bounded walk so a corrupted parent cycle cannot hang the audit, and
  // bounds-checked so a corrupted link cannot read out of range.
  for (std::size_t steps = 0; steps <= parent.size(); ++steps) {
    if (f >= parent.size()) return Database::kNoFact;
    FactId up = parent[f];
    if (up == f) return f;
    f = up;
  }
  return Database::kNoFact;  // Cycle.
}

}  // namespace

AuditReport AuditComponents(const ConjunctiveQuery& q,
                            const PreparedDatabase& pdb,
                            const DynamicComponents& components) {
  AuditReport report;
  const Database& db = pdb.db();

  // -- Internal consistency --------------------------------------------
  CQA_AUDIT(&report, components.parent_.size() == db.NumFacts(), "components",
            "union-find covers " + IdStr(components.parent_.size()) +
                " ids for " + IdStr(db.NumFacts()) + " fact slots");
  std::vector<char> member_of(db.NumFacts(), 0);
  for (const auto& [root, comp] : components.components_) {
    CQA_AUDIT(&report, !comp.members.empty(), "components",
              "component " + IdStr(root) + " has no members");
    FactId min_member = Database::kNoFact;
    ComponentFingerprint fresh;
    bool members_ok = true;
    for (FactId m : comp.members) {
      if (m >= db.NumFacts()) {
        report.Add("components", "component " + IdStr(root) +
                                     " holds out-of-range fact " + IdStr(m));
        ++report.checks;
        members_ok = false;
        continue;
      }
      CQA_AUDIT(&report, member_of[m] == 0, "components",
                "fact " + IdStr(m) + " belongs to two components");
      ++member_of[m];
      CQA_AUDIT(&report, db.alive(m), "components",
                "component " + IdStr(root) + " holds tombstoned fact " +
                    IdStr(m));
      if (m < components.parent_.size()) {
        FactId found_root = RootOf(components.parent_, m);
        CQA_AUDIT(&report, found_root == root, "components",
                  "member " + IdStr(m) + " of component " + IdStr(root) +
                      " unions to " +
                      (found_root == Database::kNoFact
                           ? std::string("a cycle")
                           : IdStr(found_root)));
      }
      min_member = std::min(min_member, m);
      if (db.alive(m)) fresh.Add(db, m);
    }
    CQA_AUDIT(&report, comp.min_member == min_member, "components",
              "component " + IdStr(root) + " min_member " +
                  IdStr(comp.min_member) + " vs actual " + IdStr(min_member));
    if (members_ok) {
      CQA_AUDIT(&report, fresh == comp.fingerprint, "components",
                "component " + IdStr(root) +
                    " fingerprint differs from one recomputed from its "
                    "members");
    }
  }
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    CQA_AUDIT(&report, member_of[f] == (db.alive(f) ? 1 : 0), "components",
              db.alive(f)
                  ? "alive fact " + IdStr(f) + " is in no component"
                  : "tombstoned fact " + IdStr(f) + " is in a component");
  }
  if (!report.ok()) return report;  // Partition compare needs sane members.

  // -- Equality with a fresh q-connected repartition --------------------
  std::vector<QConnectedComponent> fresh = QConnectedComponents(q, db);
  CQA_AUDIT(&report, fresh.size() == components.components_.size(),
            "components",
            "partition has " + IdStr(components.components_.size()) +
                " components, fresh recompute has " + IdStr(fresh.size()));
  // Same component count + every fresh component inside one maintained
  // component of the same size => identical partitions.
  std::unordered_map<FactId, FactId> root_of;  // fact -> maintained root.
  std::unordered_map<FactId, std::size_t> size_of;
  for (const auto& [root, comp] : components.components_) {
    size_of[root] = comp.members.size();
    for (FactId m : comp.members) root_of[m] = root;
  }
  for (const QConnectedComponent& fc : fresh) {
    if (fc.original_facts.empty()) continue;
    FactId root = root_of.count(fc.original_facts.front())
                      ? root_of[fc.original_facts.front()]
                      : Database::kNoFact;
    bool together = root != Database::kNoFact;
    for (FactId m : fc.original_facts) {
      together = together && root_of.count(m) != 0 && root_of[m] == root;
    }
    CQA_AUDIT(&report, together, "components",
              "freshly computed component of fact " +
                  IdStr(fc.original_facts.front()) +
                  " is split across maintained components");
    if (together) {
      CQA_AUDIT(&report, size_of[root] == fc.original_facts.size(),
                "components",
                "maintained component " + IdStr(root) + " has " +
                    IdStr(size_of[root]) + " members, fresh recompute has " +
                    IdStr(fc.original_facts.size()));
    }
  }

  return report;
}

}  // namespace cqa
