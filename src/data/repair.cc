#include "data/repair.h"

#include "base/check.h"

namespace cqa {

bool Repair::Contains(FactId id) const {
  BlockId b = db_->BlockOf(id);
  return FactIn(b) == id;
}

std::vector<FactId> Repair::Facts() const {
  std::vector<FactId> out;
  out.reserve(choice_.size());
  for (BlockId b = 0; b < choice_.size(); ++b) out.push_back(FactIn(b));
  return out;
}

void Repair::Select(FactId id) {
  BlockId b = db_->BlockOf(id);
  const std::vector<FactId>& facts = db_->blocks()[b].facts;
  for (std::uint32_t i = 0; i < facts.size(); ++i) {
    if (facts[i] == id) {
      choice_[b] = i;
      return;
    }
  }
  CQA_CHECK_MSG(false, "fact not found in its own block");
}

RepairIterator::RepairIterator(const Database& db) : db_(&db) {
  choice_.assign(db.blocks().size(), 0);
  // A database with no facts has exactly one (empty) repair.
  has_value_ = true;
}

bool RepairIterator::Next() {
  const auto& blocks = db_->blocks();
  for (std::size_t b = 0; b < choice_.size(); ++b) {
    if (choice_[b] + 1 < blocks[b].facts.size()) {
      ++choice_[b];
      for (std::size_t j = 0; j < b; ++j) choice_[j] = 0;
      return true;
    }
  }
  has_value_ = false;
  return false;
}

Repair RepairSampler::Sample() {
  const auto& blocks = db_->blocks();
  std::vector<std::uint32_t> choice(blocks.size());
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    choice[b] =
        static_cast<std::uint32_t>(rng_.Below(blocks[b].facts.size()));
  }
  return Repair(db_, std::move(choice));
}

}  // namespace cqa
