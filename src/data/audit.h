// Deep cross-structure invariant auditing.
//
// The columnar fact store keeps five structures consistent by hand-rolled
// delta protocols (FactIdRemap / ApplyInsert / ApplyRemove): the argument
// arena + slot columns, the content index, the block partition + key
// index, the PreparedDatabase per-relation indexes, and the
// DynamicComponents union-find partition. Each protocol is O(1)-ish and
// therefore easy to get subtly wrong in ways no single query notices —
// a stale key-index entry only misroutes the *next* insert with that key;
// a split component only changes answers when the two halves disagree.
//
// The auditors here re-derive every one of those structures from first
// principles and report each disagreement as a structured violation:
//
//   AuditDatabase    arena offsets monotone + dense, slot columns
//                    parallel, alive counts vs tombstones, content index
//                    <-> arena agreement (both directions), block
//                    partition <-> key index <-> per-fact block mapping.
//   AuditPrepared    per-relation fact/block indexes and the per-fact
//                    position index vs a fresh scan of the database.
//   AuditComponents  union-find structure, member lists, fingerprints,
//                    and min_member vs a freshly recomputed q-connected
//                    partition (algo/components.h).
//
// The functions are friends of the structures they audit, so they check
// the real internals (the position index, the union-find parents, the
// hash buckets) and not just the public views. They take no locks: the
// caller must hold whatever exclusion normally guards the structures
// (cqa::Service::AuditDatabase runs them under the per-database structure
// lock). Cost is O(n log n) plus one fresh component partition — debug
// and test tooling, not a production path.
//
// Wired in: the metamorphic/incremental/compaction/soak suites audit
// after mutation batches, the fuzz/ mutation harness audits after every
// step, and Service::AuditDatabase exposes the same checks per registered
// database with cumulative counters in Service::Stats().

#ifndef CQA_DATA_AUDIT_H_
#define CQA_DATA_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/prepared.h"

namespace cqa {

class ConjunctiveQuery;
class DynamicComponents;

/// One invariant that does not hold: which structure broke and how.
struct AuditViolation {
  std::string structure;  ///< "arena", "slots", "content-index", "blocks",
                          ///< "key-index", "prepared", "components", "lru".
  std::string message;    ///< Human-readable pinpoint (ids, offsets, keys).
};

/// Outcome of one or more audit passes. Violations beyond kMaxRecorded
/// are counted but not stored (a corrupted index tends to fail thousands
/// of ways at once).
struct AuditReport {
  static constexpr std::size_t kMaxRecorded = 64;

  std::vector<AuditViolation> violations;
  /// Total violations found, including ones dropped past kMaxRecorded.
  std::uint64_t total_violations = 0;
  /// Individual invariant evaluations performed (a zero-violation report
  /// with zero checks means "audited nothing", not "clean").
  std::uint64_t checks = 0;

  bool ok() const { return total_violations == 0; }

  /// Records a violation (stored only while under kMaxRecorded).
  void Add(std::string structure, std::string message);

  /// Folds `other` into this report.
  void Merge(const AuditReport& other);

  /// True if any recorded violation names this structure.
  bool Names(std::string_view structure) const;

  /// Multi-line rendering: "clean (N checks)" or one line per violation.
  std::string ToString() const;
};

/// Audits the Database's own structures: arena layout, slot columns,
/// alive accounting, content index, block partition, and key index.
AuditReport AuditDatabase(const Database& db);

/// Audits the PreparedDatabase's per-relation fact/block indexes and
/// position index against a fresh scan of its database.
AuditReport AuditPrepared(const PreparedDatabase& pdb);

/// Audits a DynamicComponents partition: internal consistency (union-find
/// roots, member lists, fingerprints, min_member) and equality with the
/// freshly recomputed q-connected partition of the current database.
AuditReport AuditComponents(const ConjunctiveQuery& q,
                            const PreparedDatabase& pdb,
                            const DynamicComponents& components);

}  // namespace cqa

#endif  // CQA_DATA_AUDIT_H_
