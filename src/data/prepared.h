// PreparedDatabase: eagerly-built, immutable per-database indexes.
//
// Every certain-answer backend needs the same access paths — the block
// partition, the facts of a given relation, and key-based block lookup.
// Before the engine layer each algorithm rebuilt those ad hoc on every call
// (ComputeSolutions scanned all facts per atom, Cert_k re-forced the lazy
// block index, the matching code rebuilt the block list). PreparedDatabase
// builds them once, up front, and is then safe to share across backend
// calls and to read concurrently from multiple threads (it never mutates
// after construction, and construction forces the Database's own lazy
// block index so later const reads are race-free).
//
// Precondition for all accessors: the underlying Database must not gain
// facts after preparation (views and indexes would go stale).

#ifndef CQA_DATA_PREPARED_H_
#define CQA_DATA_PREPARED_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "data/database.h"

namespace cqa {

class PreparedDatabase {
 public:
  explicit PreparedDatabase(const Database& db);

  const Database& db() const { return *db_; }
  const Schema& schema() const { return db_->schema(); }
  std::size_t NumFacts() const { return db_->NumFacts(); }
  const Fact& fact(FactId id) const { return db_->fact(id); }

  /// The block partition (forced at construction).
  const std::vector<Block>& blocks() const { return db_->blocks(); }

  /// Block containing fact `id` (O(1), no lazy rebuild).
  BlockId BlockOf(FactId id) const { return block_of_[id]; }

  /// Facts of a database relation, in insertion order.
  const std::vector<FactId>& FactsOf(RelationId relation) const {
    return facts_by_relation_[relation];
  }

  /// Blocks whose facts belong to a database relation, in block order.
  const std::vector<BlockId>& BlocksOf(RelationId relation) const {
    return blocks_by_relation_[relation];
  }

  /// Looks up the block with the given relation and key tuple, or kNoBlock.
  /// No built-in backend does key point lookups (they scan blocks), so the
  /// underlying index is built lazily on first call; this accessor exists
  /// for engine-level consumers (routing, sharding, ingest dedup) and is
  /// free when unused.
  BlockId FindBlock(RelationId relation, KeyView key) const;

  static constexpr BlockId kNoBlock = 0xffffffffu;

 private:
  void EnsureKeyIndex() const;

  const Database* db_;
  std::vector<BlockId> block_of_;
  std::vector<std::vector<FactId>> facts_by_relation_;
  std::vector<std::vector<BlockId>> blocks_by_relation_;
  // Key index: hash of (relation, key tuple) -> blocks with that hash.
  // Bucketing by explicit hash (instead of a vector key) keeps FindBlock
  // allocation-free under C++17's homogeneous-lookup maps; the rare
  // collisions are resolved by comparing the stored blocks' keys.
  // Built on first FindBlock; call_once keeps the concurrent-read
  // contract.
  mutable std::once_flag key_index_once_;
  mutable std::unordered_map<std::size_t, std::vector<BlockId>> key_index_;
};

}  // namespace cqa

#endif  // CQA_DATA_PREPARED_H_
