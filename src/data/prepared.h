// PreparedDatabase: eagerly-built per-database indexes, delta-maintained.
//
// Every certain-answer backend needs the same access paths — the block
// partition, the facts of a given relation, and key-based block lookup.
// Before the engine layer each algorithm rebuilt those ad hoc on every call
// (ComputeSolutions scanned all facts per atom, Cert_k re-forced the lazy
// block index, the matching code rebuilt the block list). PreparedDatabase
// builds them once, up front, and is then safe to share across backend
// calls and to read concurrently from multiple threads (construction forces
// the Database's block partition so later const reads are race-free).
//
// Mutation: the underlying Database may change only through the owner
// calling ApplyInsert/ApplyRemove here for every Database::AddFact/
// RemoveFact — the per-relation indexes are then patched in place instead
// of rebuilt (the block partition and key index are maintained by the
// Database itself). Concurrent readers must be excluded while a delta is
// applied; cqa::Service does this with a per-database reader/writer lock.

#ifndef CQA_DATA_PREPARED_H_
#define CQA_DATA_PREPARED_H_

#include <cstdint>
#include <vector>

#include "data/database.h"

namespace cqa {

class PreparedDatabase {
 public:
  explicit PreparedDatabase(const Database& db);

  const Database& db() const { return *db_; }
  const Schema& schema() const { return db_->schema(); }
  /// Fact-slot count (the iteration bound for id-indexed arrays); see
  /// Database::NumFacts vs NumAliveFacts.
  std::size_t NumFacts() const { return db_->NumFacts(); }
  FactRef fact(FactId id) const { return db_->fact(id); }

  /// The block partition (forced at construction, maintained by the
  /// Database across mutations).
  const std::vector<Block>& blocks() const { return db_->blocks(); }

  /// Block containing fact `id` (O(1), the partition is always built).
  BlockId BlockOf(FactId id) const { return db_->BlockOf(id); }

  /// Facts of a database relation. Insertion order for append-only
  /// databases; arbitrary after deletions (removals swap-remove in O(1)).
  const std::vector<FactId>& FactsOf(RelationId relation) const {
    return facts_by_relation_[relation];
  }

  /// Blocks whose facts belong to a database relation. Block order within
  /// a relation is arbitrary after deletions (emptied blocks swap-remove).
  const std::vector<BlockId>& BlocksOf(RelationId relation) const {
    return blocks_by_relation_[relation];
  }

  /// Looks up the block with the given relation and key tuple, or kNoBlock
  /// (served by the Database's persistent key index).
  BlockId FindBlock(RelationId relation, KeyView key) const {
    return db_->FindBlock(relation, key);
  }

  /// Mirrors a Database::AddFact that created fact `id` (call once per
  /// newly created id, after the AddFact). O(1).
  void ApplyInsert(FactId id);

  /// Mirrors a Database::RemoveFact of fact `id` (call once, after the
  /// RemoveFact, with the RemovedFact it returned). O(1): the per-fact
  /// position index turns the erase into a swap-remove.
  void ApplyRemove(FactId id, const Database::RemovedFact& removed);

  /// Mirrors a Database::Compact (call once, right after, with the remap
  /// it returned): rewrites the fact ids held by the per-relation indexes
  /// in place. Block ids are compaction-stable, so the block indexes need
  /// no patching. O(alive facts).
  void ApplyRemap(const FactIdRemap& remap);

  static constexpr BlockId kNoBlock = Database::kNoBlock;

 private:
  // data/audit.h checks pos_in_relation_ (invisible through the public
  // accessors, but load-bearing for ApplyRemove); audit_test corrupts it.
  friend AuditReport AuditPrepared(const PreparedDatabase& pdb);
  friend class TestCorruptor;

  const Database* db_;
  std::vector<std::vector<FactId>> facts_by_relation_;
  std::vector<std::vector<BlockId>> blocks_by_relation_;
  /// pos_in_relation_[f] is f's index within FactsOf(fact(f).relation);
  /// meaningful for alive facts only. Makes ApplyRemove O(1).
  std::vector<std::uint32_t> pos_in_relation_;
};

}  // namespace cqa

#endif  // CQA_DATA_PREPARED_H_
