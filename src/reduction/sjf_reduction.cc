#include "reduction/sjf_reduction.h"

#include <string>
#include <vector>

#include "base/check.h"

namespace cqa {

ConjunctiveQuery MakeSjfQuery(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK_MSG(!q.IsSelfJoinFree(), "q must be a self-join query");
  const RelationSchema& rel = q.schema().Relation(q.atoms()[0].relation);

  Schema schema;
  RelationId r1 = schema.AddRelation(rel.name + "1", rel.arity, rel.key_len);
  RelationId r2 = schema.AddRelation(rel.name + "2", rel.arity, rel.key_len);

  std::vector<std::string> var_names;
  for (VarId v = 0; v < q.NumVars(); ++v) var_names.push_back(q.VarName(v));

  std::vector<QueryAtom> atoms = {QueryAtom{r1, q.atoms()[0].vars},
                                  QueryAtom{r2, q.atoms()[1].vars}};
  return ConjunctiveQuery(std::move(schema), std::move(var_names),
                          std::move(atoms));
}

Database TranslateSjfDatabase(const ConjunctiveQuery& q,
                              const Database& sjf_db) {
  CQA_CHECK(q.NumAtoms() == 2);
  Database out(q.schema());

  const RelationSchema& rel = q.schema().Relation(q.atoms()[0].relation);
  RelationId r1 = sjf_db.schema().Find(rel.name + "1");
  RelationId r2 = sjf_db.schema().Find(rel.name + "2");
  CQA_CHECK_MSG(r1 != Schema::kNotFound && r2 != Schema::kNotFound,
                "sjf database lacks the expected relations");

  for (FactId fid = 0; fid < sjf_db.NumFacts(); ++fid) {
    FactRef fact = sjf_db.fact(fid);
    const QueryAtom* atom = nullptr;
    if (fact.relation == r1) {
      atom = &q.atoms()[0];
    } else if (fact.relation == r2) {
      atom = &q.atoms()[1];
    } else {
      CQA_CHECK_MSG(false, "fact over unexpected relation in sjf database");
    }
    std::vector<ElementId> args;
    args.reserve(fact.args.size());
    for (std::size_t i = 0; i < fact.args.size(); ++i) {
      // Position i becomes the pair <variable-at-i, original element>.
      std::string name = "<" + q.VarName(atom->vars[i]) + "," +
                         sjf_db.elements().Name(fact.args[i]) + ">";
      args.push_back(out.elements().Intern(name));
    }
    out.AddFact(q.atoms()[0].relation, std::move(args));
  }
  return out;
}

}  // namespace cqa
