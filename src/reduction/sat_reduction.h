// The Section 9 hardness gadget: from 3-SAT (each variable occurring 2 or 3
// times, both polarities) to certain(q) for a 2way-determined query q with
// a *nice* fork-tripath Theta.
//
// For each occurrence of a variable l in a clause C, the database D[phi]
// contains a copy Theta_{l,C} of Theta with the niceness witnesses
// substituted:
//   x, y, z  -> elements annotated <C, l>   (making internal blocks of
//               different copies disjoint),
//   u        -> C                           (roots of the copies of the
//               literals of C become one block: the clause block),
//   v, w     -> leaf labels <Ci, Cj, l>     (chaining the copies of the
//               positive occurrence to those of the negative occurrences,
//               as in Figure 2).
// Finally every singleton block is padded with a fresh fact forming no
// solution. Lemma 9.2: phi is satisfiable iff D[phi] |/= certain(q).

#ifndef CQA_REDUCTION_SAT_REDUCTION_H_
#define CQA_REDUCTION_SAT_REDUCTION_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/database.h"
#include "data/prepared.h"
#include "query/eval.h"
#include "query/query.h"
#include "sat/cdcl.h"
#include "sat/cnf.h"
#include "tripath/search.h"

namespace cqa {

/// The assembled gadget database plus bookkeeping for tests and demos.
struct SatGadget {
  Database db;
  /// Root fact of the copy Theta_{l,C}, keyed by (clause index, variable).
  /// These are the facts of the clause blocks ("literal facts").
  std::map<std::pair<std::uint32_t, std::uint32_t>, FactId> literal_fact;
  std::size_t num_padding_facts = 0;

  SatGadget() : db(Schema()) {}
};

/// Builds D[phi]. Preconditions (CHECKed): phi.IsReductionReady(), every
/// clause has at least two literals, and `nice_fork` is a nice fork-tripath
/// of q (validation.nice).
SatGadget BuildSatGadget(const ConjunctiveQuery& q,
                         const FoundTripath& nice_fork,
                         const CnfFormula& phi);

/// The reverse direction of the Section 9 connection: encodes the existence
/// of a falsifying repair as propositional satisfiability. One variable per
/// fact; clauses:
///   - at-least-one per block (a repair picks a fact from every block);
///   - a unit ¬x_a for every self-solution fact (q(aa) facts can never be
///     in a falsifying repair);
///   - (¬x_a ∨ ¬x_b) for every cross-block solution pair {a, b}.
/// Satisfiable iff some repair falsifies q, so D |= certain(q) iff the
/// formula is unsatisfiable. At-most-one-per-block constraints are
/// unnecessary: restricting a satisfying assignment to one chosen fact per
/// block keeps it solution-free, and the chosen set is a falsifying repair.
CnfFormula EncodeFalsifierCnf(const SolutionSet& solutions,
                              const PreparedDatabase& pdb);

/// Incremental falsifier search over a persistent CdclSolver: the warm
/// counterpart of EncodeFalsifierCnf + SolveCdcl for repeated solves of a
/// mutating q-connected component.
///
/// Encoding: one solver variable per fact (allocated on first sight,
/// never freed) plus one *activation* variable per encoded block version.
/// A block's at-least-one constraint is guarded by its activation:
///   (~act v x_f1 v ... v x_fm)
/// and enabled by assuming `act` at solve time. Self-solution facts and
/// deleted facts are pinned with permanent units `~x_f`; cross-block
/// solution pairs get permanent clauses (~x_a v ~x_b). Pair and unit
/// clauses are *globally* true statements about immutable fact tuples, so
/// they — and every clause the solver learns from them — stay valid
/// forever. Only the membership clauses are versioned: when a diff against
/// the block's exact current members shows a change, the old version is
/// retracted for good with the unit `~act_old` and the block is re-encoded
/// under a fresh activation variable. Everything learned over the
/// unchanged prefix survives.
///
/// Because every solve diffs against the exact current membership and
/// assumes exactly the current component's activation variables,
/// correctness never depends on which component this instance is paired
/// with — solver reuse is purely a performance heuristic, so the engine's
/// anchor-keyed cache can be wrong (after merges, splits, evictions) and
/// still gets the right verdict.
///
/// Not thread-safe; the engine serializes access per instance under
/// LockRank::kSolverInternal.
class IncrementalFalsifier {
 public:
  explicit IncrementalFalsifier(const ConjunctiveQuery& q,
                                CdclOptions options = CdclOptions());

  struct Verdict {
    bool certain = false;
    /// When not certain and a witness was requested: one chosen fact per
    /// component block (parent-database ids), jointly a falsifying
    /// repair of the component.
    std::vector<FactId> witness;
  };

  /// Decides certainty of the component `members` (whole blocks of
  /// pdb.db()). Callable any number of times as the database mutates
  /// between calls; fact ids must be stable since the last ApplyRemap.
  Verdict SolveComponent(const PreparedDatabase& pdb,
                         const std::vector<FactId>& members,
                         bool want_witness);

  /// Mirrors a Database::Compact: rewrites every held FactId. Ids that
  /// vanished (tombstones reclaimed) have their variables pinned false.
  void ApplyRemap(const FactIdRemap& remap);

  /// Cumulative solver counters (solves, warm_solves, learned_kept,
  /// clauses_retracted, ...).
  const CdclStats& stats() const { return solver_.stats(); }

  /// Rough resident size for cache byte-accounting.
  std::size_t MemoryEstimateBytes() const;

 private:
  struct BlockKey {
    RelationId relation = 0;
    std::vector<ElementId> key;
    bool operator==(const BlockKey& o) const {
      return relation == o.relation && key == o.key;
    }
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const {
      return HashRelationKey(
          k.relation,
          KeyView{k.key.data(), static_cast<std::uint32_t>(k.key.size())});
    }
  };
  struct BlockState {
    std::vector<FactId> members;  ///< Sorted, as last encoded.
    std::uint32_t act_var = 0;
  };

  /// Solver variable of fact `f`, allocated on first request.
  std::uint32_t VarOf(FactId f);

  const ConjunctiveQuery* q_;
  CdclSolver solver_;
  std::unordered_map<FactId, std::uint32_t> fact_var_;
  std::unordered_map<BlockKey, BlockState, BlockKeyHash> blocks_;
  /// Cross-block pair clauses already added, keyed by solver-variable
  /// pair (stable across compactions, unlike fact ids).
  std::unordered_set<std::uint64_t> pair_clauses_;
};

}  // namespace cqa

#endif  // CQA_REDUCTION_SAT_REDUCTION_H_
