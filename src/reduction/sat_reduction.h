// The Section 9 hardness gadget: from 3-SAT (each variable occurring 2 or 3
// times, both polarities) to certain(q) for a 2way-determined query q with
// a *nice* fork-tripath Theta.
//
// For each occurrence of a variable l in a clause C, the database D[phi]
// contains a copy Theta_{l,C} of Theta with the niceness witnesses
// substituted:
//   x, y, z  -> elements annotated <C, l>   (making internal blocks of
//               different copies disjoint),
//   u        -> C                           (roots of the copies of the
//               literals of C become one block: the clause block),
//   v, w     -> leaf labels <Ci, Cj, l>     (chaining the copies of the
//               positive occurrence to those of the negative occurrences,
//               as in Figure 2).
// Finally every singleton block is padded with a fresh fact forming no
// solution. Lemma 9.2: phi is satisfiable iff D[phi] |/= certain(q).

#ifndef CQA_REDUCTION_SAT_REDUCTION_H_
#define CQA_REDUCTION_SAT_REDUCTION_H_

#include <cstdint>
#include <map>
#include <utility>

#include "data/database.h"
#include "data/prepared.h"
#include "query/eval.h"
#include "query/query.h"
#include "sat/cnf.h"
#include "tripath/search.h"

namespace cqa {

/// The assembled gadget database plus bookkeeping for tests and demos.
struct SatGadget {
  Database db;
  /// Root fact of the copy Theta_{l,C}, keyed by (clause index, variable).
  /// These are the facts of the clause blocks ("literal facts").
  std::map<std::pair<std::uint32_t, std::uint32_t>, FactId> literal_fact;
  std::size_t num_padding_facts = 0;

  SatGadget() : db(Schema()) {}
};

/// Builds D[phi]. Preconditions (CHECKed): phi.IsReductionReady(), every
/// clause has at least two literals, and `nice_fork` is a nice fork-tripath
/// of q (validation.nice).
SatGadget BuildSatGadget(const ConjunctiveQuery& q,
                         const FoundTripath& nice_fork,
                         const CnfFormula& phi);

/// The reverse direction of the Section 9 connection: encodes the existence
/// of a falsifying repair as propositional satisfiability. One variable per
/// fact; clauses:
///   - at-least-one per block (a repair picks a fact from every block);
///   - a unit ¬x_a for every self-solution fact (q(aa) facts can never be
///     in a falsifying repair);
///   - (¬x_a ∨ ¬x_b) for every cross-block solution pair {a, b}.
/// Satisfiable iff some repair falsifies q, so D |= certain(q) iff the
/// formula is unsatisfiable. At-most-one-per-block constraints are
/// unnecessary: restricting a satisfying assignment to one chosen fact per
/// block keeps it solution-free, and the chosen set is a falsifying repair.
CnfFormula EncodeFalsifierCnf(const SolutionSet& solutions,
                              const PreparedDatabase& pdb);

}  // namespace cqa

#endif  // CQA_REDUCTION_SAT_REDUCTION_H_
