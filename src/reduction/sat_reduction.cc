#include "reduction/sat_reduction.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "query/eval.h"

namespace cqa {
namespace {

std::string LeafName(std::uint32_t ci, std::uint32_t cj, std::uint32_t var) {
  return "lf:" + std::to_string(ci) + ":" + std::to_string(cj) + ":v" +
         std::to_string(var);
}

}  // namespace

SatGadget BuildSatGadget(const ConjunctiveQuery& q,
                         const FoundTripath& nice_fork,
                         const CnfFormula& phi) {
  CQA_CHECK_MSG(nice_fork.validation.nice && !nice_fork.validation.triangle,
                "the reduction needs a nice fork-tripath");
  CQA_CHECK_MSG(phi.IsReductionReady(),
                "formula must have 2-3 occurrences per variable, both "
                "polarities (run LimitOccurrences + "
                "EliminatePureAndSingletons first)");
  for (const Clause& c : phi.clauses) {
    CQA_CHECK_MSG(c.size() >= 2,
                  "unit clauses must be propagated away before the gadget");
  }

  const Tripath& theta = nice_fork.tripath;
  const TripathValidation& val = nice_fork.validation;

  SatGadget out;
  out.db = Database(q.schema());

  // Instantiates Theta[alpha_x, alpha_y, alpha_z, alpha_u, alpha_v,
  // alpha_w] into the target database. Non-witness elements are shared
  // verbatim across all copies (the paper's construction).
  auto add_copy = [&](std::uint32_t var, std::uint32_t clause,
                      const std::string& alpha_v,
                      const std::string& alpha_w) {
    std::map<ElementId, ElementId> rename;
    auto map_role = [&](ElementId el, const std::string& name) {
      // alpha_x = alpha_y iff x = y: first mapping wins for shared roles.
      rename.emplace(el, out.db.elements().Intern(name));
    };
    std::string tag = "C" + std::to_string(clause) + ",v" +
                      std::to_string(var);
    map_role(val.x, "<" + tag + ">x");
    map_role(val.y, "<" + tag + ">y");
    map_role(val.z, "<" + tag + ">z");
    map_role(val.u, "cl:" + std::to_string(clause));
    map_role(val.v, alpha_v);
    map_role(val.w, alpha_w);

    FactId root_copy = Database::kNoFact;
    for (FactId fid = 0; fid < theta.db.NumFacts(); ++fid) {
      FactRef fact = theta.db.fact(fid);
      std::vector<ElementId> args;
      args.reserve(fact.args.size());
      for (ElementId el : fact.args) {
        auto it = rename.find(el);
        args.push_back(it != rename.end()
                           ? it->second
                           : out.db.elements().Intern(
                                 "sh:" + theta.db.elements().Name(el)));
      }
      FactId nid = out.db.AddFact(fact.relation, std::move(args));
      if (fid == theta.u0()) root_copy = nid;
    }
    CQA_CHECK(root_copy != Database::kNoFact);
    auto inserted =
        out.literal_fact.emplace(std::make_pair(clause, var), root_copy);
    CQA_CHECK_MSG(inserted.second, "duplicate (clause, variable) copy");
  };

  // Occurrence lists per variable.
  std::vector<std::vector<std::uint32_t>> pos(phi.num_vars);
  std::vector<std::vector<std::uint32_t>> neg(phi.num_vars);
  for (std::uint32_t c = 0; c < phi.clauses.size(); ++c) {
    for (const Literal& lit : phi.clauses[c]) {
      (lit.positive ? pos : neg)[lit.var].push_back(c);
    }
  }

  for (std::uint32_t var = 0; var < phi.num_vars; ++var) {
    std::size_t total = pos[var].size() + neg[var].size();
    if (total == 0) continue;
    CQA_CHECK(total == 2 || total == 3);
    if (total == 2) {
      // V2: one occurrence per polarity; copies coupled via the w-leaf.
      std::uint32_t c = pos[var][0];
      std::uint32_t cp = neg[var][0];
      add_copy(var, c, LeafName(c, c, var), LeafName(c, cp, var));
      add_copy(var, cp, LeafName(cp, cp, var), LeafName(c, cp, var));
    } else {
      // V3: the minority polarity occurs once (its clause is C), the
      // majority twice (C1, C2).
      std::uint32_t c, c1, c2;
      if (pos[var].size() == 1) {
        c = pos[var][0];
        c1 = neg[var][0];
        c2 = neg[var][1];
      } else {
        CQA_CHECK(neg[var].size() == 1);
        c = neg[var][0];
        c1 = pos[var][0];
        c2 = pos[var][1];
      }
      add_copy(var, c, LeafName(c, c2, var), LeafName(c, c1, var));
      add_copy(var, c1, LeafName(c1, c1, var), LeafName(c, c1, var));
      add_copy(var, c2, LeafName(c, c2, var), LeafName(c2, c2, var));
    }
  }

  // Structural sanity: each clause block holds one fact per literal.
  for (std::uint32_t c = 0; c < phi.clauses.size(); ++c) {
    FactId first = out.literal_fact.at(
        {c, phi.clauses[c].front().var});
    BlockId blk = out.db.BlockOf(first);
    CQA_CHECK_MSG(
        out.db.blocks()[blk].facts.size() == phi.clauses[c].size(),
        "clause block size mismatch: literal facts collided or split");
    for (const Literal& lit : phi.clauses[c]) {
      FactId lf = out.literal_fact.at({c, lit.var});
      CQA_CHECK_MSG(out.db.BlockOf(lf) == blk,
                    "literal fact landed outside its clause block");
    }
  }

  // Padding: every singleton block gets a fresh fact that forms no
  // solution with anything.
  std::set<FactId> padding;
  {
    std::vector<Block> snapshot = out.db.blocks();
    for (const Block& b : snapshot) {
      if (b.facts.size() != 1) continue;
      FactRef orig = out.db.fact(b.facts[0]);
      const RelationSchema& rel = out.db.schema().Relation(b.relation);
      std::vector<ElementId> args(orig.args.begin(),
                                  orig.args.begin() + rel.key_len);
      for (std::uint32_t i = rel.key_len; i < rel.arity; ++i) {
        args.push_back(out.db.elements().Fresh("pad"));
      }
      FactId pid = out.db.AddFact(b.relation, std::move(args));
      padding.insert(pid);
      ++out.num_padding_facts;
    }
  }

  // Verify the padding facts are solution-inert (the paper asserts such
  // facts always exist; fresh non-key elements achieve it for
  // 2way-determined queries because every solution shares key elements).
  SolutionSet solutions = ComputeSolutions(q, out.db);
  for (const auto& [a, b] : solutions.pairs) {
    CQA_CHECK_MSG(padding.find(a) == padding.end() &&
                      padding.find(b) == padding.end(),
                  "a padding fact participates in a solution");
  }
  return out;
}

CnfFormula EncodeFalsifierCnf(const SolutionSet& solutions,
                              const PreparedDatabase& pdb) {
  CnfFormula f;
  f.num_vars = static_cast<std::uint32_t>(pdb.NumFacts());

  // A repair selects at least one fact from every block.
  for (const Block& block : pdb.blocks()) {
    Clause at_least_one;
    at_least_one.reserve(block.facts.size());
    for (FactId fact : block.facts) {
      at_least_one.push_back(Literal{fact, true});
    }
    f.clauses.push_back(std::move(at_least_one));
  }

  // Self-solution facts are unusable.
  for (FactId fact = 0; fact < solutions.self.size(); ++fact) {
    if (solutions.self[fact]) f.clauses.push_back({Literal{fact, false}});
  }

  // No two selected facts may form a solution. Directed pairs (a, b) and
  // (b, a) yield the same clause; normalize and dedupe. Same-block pairs
  // are skipped: they never co-occur in the chosen one-per-block subset.
  std::vector<std::pair<FactId, FactId>> edges;
  edges.reserve(solutions.pairs.size());
  for (const auto& [a, b] : solutions.pairs) {
    if (a == b || pdb.BlockOf(a) == pdb.BlockOf(b)) continue;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [a, b] : edges) {
    f.clauses.push_back({Literal{a, false}, Literal{b, false}});
  }
  return f;
}

}  // namespace cqa
