#include "reduction/sat_reduction.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/check.h"
#include "query/eval.h"

namespace cqa {
namespace {

std::string LeafName(std::uint32_t ci, std::uint32_t cj, std::uint32_t var) {
  return "lf:" + std::to_string(ci) + ":" + std::to_string(cj) + ":v" +
         std::to_string(var);
}

}  // namespace

SatGadget BuildSatGadget(const ConjunctiveQuery& q,
                         const FoundTripath& nice_fork,
                         const CnfFormula& phi) {
  CQA_CHECK_MSG(nice_fork.validation.nice && !nice_fork.validation.triangle,
                "the reduction needs a nice fork-tripath");
  CQA_CHECK_MSG(phi.IsReductionReady(),
                "formula must have 2-3 occurrences per variable, both "
                "polarities (run LimitOccurrences + "
                "EliminatePureAndSingletons first)");
  for (const Clause& c : phi.clauses) {
    CQA_CHECK_MSG(c.size() >= 2,
                  "unit clauses must be propagated away before the gadget");
  }

  const Tripath& theta = nice_fork.tripath;
  const TripathValidation& val = nice_fork.validation;

  SatGadget out;
  out.db = Database(q.schema());

  // Instantiates Theta[alpha_x, alpha_y, alpha_z, alpha_u, alpha_v,
  // alpha_w] into the target database. Non-witness elements are shared
  // verbatim across all copies (the paper's construction).
  auto add_copy = [&](std::uint32_t var, std::uint32_t clause,
                      const std::string& alpha_v,
                      const std::string& alpha_w) {
    std::map<ElementId, ElementId> rename;
    auto map_role = [&](ElementId el, const std::string& name) {
      // alpha_x = alpha_y iff x = y: first mapping wins for shared roles.
      rename.emplace(el, out.db.elements().Intern(name));
    };
    std::string tag = "C" + std::to_string(clause) + ",v" +
                      std::to_string(var);
    map_role(val.x, "<" + tag + ">x");
    map_role(val.y, "<" + tag + ">y");
    map_role(val.z, "<" + tag + ">z");
    map_role(val.u, "cl:" + std::to_string(clause));
    map_role(val.v, alpha_v);
    map_role(val.w, alpha_w);

    FactId root_copy = Database::kNoFact;
    for (FactId fid = 0; fid < theta.db.NumFacts(); ++fid) {
      FactRef fact = theta.db.fact(fid);
      std::vector<ElementId> args;
      args.reserve(fact.args.size());
      for (ElementId el : fact.args) {
        auto it = rename.find(el);
        args.push_back(it != rename.end()
                           ? it->second
                           : out.db.elements().Intern(
                                 "sh:" + theta.db.elements().Name(el)));
      }
      FactId nid = out.db.AddFact(fact.relation, std::move(args));
      if (fid == theta.u0()) root_copy = nid;
    }
    CQA_CHECK(root_copy != Database::kNoFact);
    auto inserted =
        out.literal_fact.emplace(std::make_pair(clause, var), root_copy);
    CQA_CHECK_MSG(inserted.second, "duplicate (clause, variable) copy");
  };

  // Occurrence lists per variable.
  std::vector<std::vector<std::uint32_t>> pos(phi.num_vars);
  std::vector<std::vector<std::uint32_t>> neg(phi.num_vars);
  for (std::uint32_t c = 0; c < phi.clauses.size(); ++c) {
    for (const Literal& lit : phi.clauses[c]) {
      (lit.positive ? pos : neg)[lit.var].push_back(c);
    }
  }

  for (std::uint32_t var = 0; var < phi.num_vars; ++var) {
    std::size_t total = pos[var].size() + neg[var].size();
    if (total == 0) continue;
    CQA_CHECK(total == 2 || total == 3);
    if (total == 2) {
      // V2: one occurrence per polarity; copies coupled via the w-leaf.
      std::uint32_t c = pos[var][0];
      std::uint32_t cp = neg[var][0];
      add_copy(var, c, LeafName(c, c, var), LeafName(c, cp, var));
      add_copy(var, cp, LeafName(cp, cp, var), LeafName(c, cp, var));
    } else {
      // V3: the minority polarity occurs once (its clause is C), the
      // majority twice (C1, C2).
      std::uint32_t c, c1, c2;
      if (pos[var].size() == 1) {
        c = pos[var][0];
        c1 = neg[var][0];
        c2 = neg[var][1];
      } else {
        CQA_CHECK(neg[var].size() == 1);
        c = neg[var][0];
        c1 = pos[var][0];
        c2 = pos[var][1];
      }
      add_copy(var, c, LeafName(c, c2, var), LeafName(c, c1, var));
      add_copy(var, c1, LeafName(c1, c1, var), LeafName(c, c1, var));
      add_copy(var, c2, LeafName(c, c2, var), LeafName(c2, c2, var));
    }
  }

  // Structural sanity: each clause block holds one fact per literal.
  for (std::uint32_t c = 0; c < phi.clauses.size(); ++c) {
    FactId first = out.literal_fact.at(
        {c, phi.clauses[c].front().var});
    BlockId blk = out.db.BlockOf(first);
    CQA_CHECK_MSG(
        out.db.blocks()[blk].facts.size() == phi.clauses[c].size(),
        "clause block size mismatch: literal facts collided or split");
    for (const Literal& lit : phi.clauses[c]) {
      FactId lf = out.literal_fact.at({c, lit.var});
      CQA_CHECK_MSG(out.db.BlockOf(lf) == blk,
                    "literal fact landed outside its clause block");
    }
  }

  // Padding: every singleton block gets a fresh fact that forms no
  // solution with anything.
  std::set<FactId> padding;
  {
    std::vector<Block> snapshot = out.db.blocks();
    for (const Block& b : snapshot) {
      if (b.facts.size() != 1) continue;
      FactRef orig = out.db.fact(b.facts[0]);
      const RelationSchema& rel = out.db.schema().Relation(b.relation);
      std::vector<ElementId> args(orig.args.begin(),
                                  orig.args.begin() + rel.key_len);
      for (std::uint32_t i = rel.key_len; i < rel.arity; ++i) {
        args.push_back(out.db.elements().Fresh("pad"));
      }
      FactId pid = out.db.AddFact(b.relation, std::move(args));
      padding.insert(pid);
      ++out.num_padding_facts;
    }
  }

  // Verify the padding facts are solution-inert (the paper asserts such
  // facts always exist; fresh non-key elements achieve it for
  // 2way-determined queries because every solution shares key elements).
  SolutionSet solutions = ComputeSolutions(q, out.db);
  for (const auto& [a, b] : solutions.pairs) {
    CQA_CHECK_MSG(padding.find(a) == padding.end() &&
                      padding.find(b) == padding.end(),
                  "a padding fact participates in a solution");
  }
  return out;
}

CnfFormula EncodeFalsifierCnf(const SolutionSet& solutions,
                              const PreparedDatabase& pdb) {
  CnfFormula f;
  f.num_vars = static_cast<std::uint32_t>(pdb.NumFacts());

  // A repair selects at least one fact from every block.
  for (const Block& block : pdb.blocks()) {
    Clause at_least_one;
    at_least_one.reserve(block.facts.size());
    for (FactId fact : block.facts) {
      at_least_one.push_back(Literal{fact, true});
    }
    f.clauses.push_back(std::move(at_least_one));
  }

  // Self-solution facts are unusable.
  for (FactId fact = 0; fact < solutions.self.size(); ++fact) {
    if (solutions.self[fact]) f.clauses.push_back({Literal{fact, false}});
  }

  // No two selected facts may form a solution. Directed pairs (a, b) and
  // (b, a) yield the same clause; normalize and dedupe. Same-block pairs
  // are skipped: they never co-occur in the chosen one-per-block subset.
  std::vector<std::pair<FactId, FactId>> edges;
  edges.reserve(solutions.pairs.size());
  for (const auto& [a, b] : solutions.pairs) {
    if (a == b || pdb.BlockOf(a) == pdb.BlockOf(b)) continue;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (const auto& [a, b] : edges) {
    f.clauses.push_back({Literal{a, false}, Literal{b, false}});
  }
  return f;
}

IncrementalFalsifier::IncrementalFalsifier(const ConjunctiveQuery& q,
                                           CdclOptions options)
    : q_(&q), solver_(options) {}

std::uint32_t IncrementalFalsifier::VarOf(FactId f) {
  auto it = fact_var_.find(f);
  if (it != fact_var_.end()) return it->second;
  std::uint32_t var = solver_.AddVars(1);
  fact_var_.emplace(f, var);
  return var;
}

IncrementalFalsifier::Verdict IncrementalFalsifier::SolveComponent(
    const PreparedDatabase& pdb, const std::vector<FactId>& members,
    bool want_witness) {
  const Database& db = pdb.db();

  // The component is a union of whole blocks (Prop 10.6 decomposition);
  // visit them in ascending-min-member order so clause insertion — and
  // with it the solver's search bias — is independent of union-find
  // history.
  std::vector<FactId> ordered = members;
  std::sort(ordered.begin(), ordered.end());
  std::vector<BlockId> block_ids;
  {
    std::unordered_set<BlockId> seen;
    seen.reserve(ordered.size());
    for (FactId f : ordered) {
      CQA_DCHECK(db.alive(f));
      BlockId b = pdb.BlockOf(f);
      if (seen.insert(b).second) block_ids.push_back(b);
    }
  }

  // Diff each block against its last encoded version. A changed block
  // retires the old activation variable for good (permanent unit ~act)
  // and re-encodes under a fresh one; vanished facts are pinned false.
  std::vector<Literal> assumptions;
  assumptions.reserve(block_ids.size());
  for (BlockId b : block_ids) {
    const Block& block = pdb.blocks()[b];
    std::vector<FactId> current = block.facts;
    std::sort(current.begin(), current.end());

    BlockKey key{block.relation, block.key};
    auto [it, inserted] = blocks_.emplace(std::move(key), BlockState{});
    BlockState& state = it->second;
    if (!inserted && state.members == current) {
      assumptions.push_back(Literal{state.act_var, true});
      continue;
    }
    if (!inserted && !state.members.empty()) {
      solver_.AddClause({Literal{state.act_var, false}});
      solver_.NoteRetraction(1);
      for (FactId old : state.members) {
        if (!std::binary_search(current.begin(), current.end(), old)) {
          solver_.AddClause({Literal{VarOf(old), false}});
        }
      }
    }
    std::uint32_t act = solver_.AddVars(1);
    Clause at_least_one;
    at_least_one.reserve(current.size() + 1);
    at_least_one.push_back(Literal{act, false});
    for (FactId f : current) at_least_one.push_back(Literal{VarOf(f), true});
    solver_.AddClause(at_least_one);
    state.members = std::move(current);
    state.act_var = act;
    assumptions.push_back(Literal{act, true});
  }

  // Solution structure among the current members. Pair and self clauses
  // are permanent — a solution depends only on the two immutable tuples —
  // so only the ones not yet added go in.
  SolutionSet solutions = ComputeSolutionsAmong(*q_, db, members);
  for (FactId f : members) {
    if (solutions.self[f]) solver_.AddClause({Literal{VarOf(f), false}});
  }
  for (const auto& [a, b] : solutions.pairs) {
    if (a == b || pdb.BlockOf(a) == pdb.BlockOf(b)) continue;
    std::uint32_t va = VarOf(a), vb = VarOf(b);
    std::uint64_t key = (static_cast<std::uint64_t>(std::min(va, vb)) << 32) |
                        std::max(va, vb);
    if (!pair_clauses_.insert(key).second) continue;
    solver_.AddClause({Literal{va, false}, Literal{vb, false}});
  }

  // Every permanent clause is satisfied by the all-false assignment, so
  // the solver can never become unconditionally unsatisfiable.
  CQA_CHECK(solver_.ok());

  Verdict verdict;
  bool sat = solver_.SolveUnderAssumptions(assumptions);
  verdict.certain = !sat;
  if (sat && want_witness) {
    // Restricting the model to one chosen fact per block keeps it
    // solution-free (same argument as EncodeFalsifierCnf), so the chosen
    // set is a falsifying repair of the component.
    verdict.witness.reserve(block_ids.size());
    for (BlockId b : block_ids) {
      FactId chosen = Database::kNoFact;
      for (FactId f : pdb.blocks()[b].facts) {
        if (solver_.ValueOf(fact_var_.at(f))) {
          chosen = f;
          break;
        }
      }
      CQA_CHECK_MSG(chosen != Database::kNoFact,
                    "activated block has no selected fact in the model");
      verdict.witness.push_back(chosen);
    }
  }
  return verdict;
}

void IncrementalFalsifier::ApplyRemap(const FactIdRemap& remap) {
  // Variables of reclaimed tombstones are pinned false: their old pair
  // clauses become vacuous and any at-least-one clause still listing them
  // effectively shrinks to the survivors.
  std::unordered_map<FactId, std::uint32_t> next;
  next.reserve(fact_var_.size());
  for (const auto& [fid, var] : fact_var_) {
    FactId nid = remap.Apply(fid);
    if (nid == Database::kNoFact) {
      solver_.AddClause({Literal{var, false}});
    } else {
      next.emplace(nid, var);
    }
  }
  fact_var_.swap(next);

  // Member lists stay sorted: the remap is monotone on survivors.
  for (auto& [key, state] : blocks_) {
    std::size_t keep = 0;
    for (FactId m : state.members) {
      FactId nid = remap.Apply(m);
      if (nid != Database::kNoFact) state.members[keep++] = nid;
    }
    state.members.resize(keep);
  }
}

std::size_t IncrementalFalsifier::MemoryEstimateBytes() const {
  std::size_t bytes = sizeof(IncrementalFalsifier);
  bytes += solver_.ArenaWords() * sizeof(std::uint32_t);
  bytes += solver_.num_vars() * 32;  // Per-var solver columns, roughly.
  bytes += fact_var_.size() * (sizeof(FactId) + sizeof(std::uint32_t) + 16);
  bytes += pair_clauses_.size() * (sizeof(std::uint64_t) + 16);
  for (const auto& [key, state] : blocks_) {
    bytes += sizeof(BlockKey) + sizeof(BlockState) +
             key.key.size() * sizeof(ElementId) +
             state.members.size() * sizeof(FactId);
  }
  return bytes;
}

}  // namespace cqa
