// Proposition 4.1: certain(sjf(q)) reduces in polynomial time to
// certain(q).
//
// sjf(q) renames the relation of atom A to R1 and of atom B to R2. Given a
// database D over {R1, R2}, the reduction maps every fact to an R-fact
// whose position i holds the *pair* <z, alpha> where z is the variable at
// position i of the corresponding atom and alpha the original element.
// Tagging positions with the atom's variables ensures that translated
// R1-facts can only match atom A and translated R2-facts only atom B (this
// uses that q is not equivalent to a one-atom query), so repairs of the
// translated database correspond exactly to repairs of D.

#ifndef CQA_REDUCTION_SJF_REDUCTION_H_
#define CQA_REDUCTION_SJF_REDUCTION_H_

#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// The canonical self-join-free variant sjf(q) of a two-atom self-join
/// query: atom A over "<R>1", atom B over "<R>2" (same signatures).
ConjunctiveQuery MakeSjfQuery(const ConjunctiveQuery& q);

/// Translates a database over sjf(q)'s schema into one over q's schema per
/// Proposition 4.1. `sjf_db` must contain only R1/R2 facts.
Database TranslateSjfDatabase(const ConjunctiveQuery& q,
                              const Database& sjf_db);

}  // namespace cqa

#endif  // CQA_REDUCTION_SJF_REDUCTION_H_
