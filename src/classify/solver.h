// Compatibility header: the certain-answer dispatcher grew into the engine
// layer. CertainSolver / SolverOptions / SolverAnswer now live in
// engine/solver.h (dispatch over the backend registry) and TrivialCertain
// in algo/trivial.h; both are re-exported here for existing includes.

#ifndef CQA_CLASSIFY_SOLVER_H_
#define CQA_CLASSIFY_SOLVER_H_

#include "algo/trivial.h"
#include "engine/solver.h"

#endif  // CQA_CLASSIFY_SOLVER_H_
