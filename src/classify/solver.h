// Top-level certain-answer solver: classifies the query once, then
// dispatches each database to the algorithm the dichotomy prescribes.
//
//   trivial            -> per-block pattern scan (exact, linear)
//   Theorem 6.1 class  -> Cert_2 (exact)
//   no-tripath class   -> Cert_k (exact for k at the Proposition 8.2 bound;
//                         the configured practical k is used, which is
//                         exact on all workloads we generate and always
//                         sound)
//   triangle-only      -> Cert_k OR NOT matching (Theorem 10.5)
//   coNP-hard classes  -> exhaustive falsifier search (exact, exponential)
//   sjf classes        -> Cert_2 for PTime/FO, exhaustive for coNP.

#ifndef CQA_CLASSIFY_SOLVER_H_
#define CQA_CLASSIFY_SOLVER_H_

#include <cstdint>
#include <string>

#include "classify/classifier.h"
#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// Which algorithm actually answered.
enum class SolverAlgorithm {
  kTrivialScan,
  kCert2,
  kCertK,
  kCertKOrMatching,
  kExhaustive,
};

/// Options for the solver.
struct SolverOptions {
  /// Practical k for Cert_k in the no-tripath class. The theoretical bound
  /// of Proposition 8.2 (already 8 for key length 1) is exact but usually
  /// overkill; Cert_k is sound for every k.
  std::uint32_t practical_k = 4;
  TripathSearchLimits tripath_limits;
};

/// Answer with provenance.
struct SolverAnswer {
  bool certain = false;
  SolverAlgorithm algorithm = SolverAlgorithm::kExhaustive;
};

/// Classify-once, solve-many certain-answer engine for two-atom queries.
class CertainSolver {
 public:
  explicit CertainSolver(ConjunctiveQuery query, SolverOptions options = {});

  /// Decides whether `query()` is certain for db.
  SolverAnswer Solve(const Database& db) const;

  const Classification& classification() const { return classification_; }
  const ConjunctiveQuery& query() const { return query_; }

 private:
  ConjunctiveQuery query_;
  SolverOptions options_;
  Classification classification_;
};

/// Exact certain answering for trivial (one-atom-equivalent) queries:
/// certain(q) holds iff some block's facts all satisfy the one-atom
/// residue of q. Exposed for tests.
bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const Database& db);

std::string ToString(SolverAlgorithm a);

}  // namespace cqa

#endif  // CQA_CLASSIFY_SOLVER_H_
