#include "classify/classifier.h"

#include "base/check.h"
#include "classify/conditions.h"

namespace cqa {

Classification ClassifyQuery(const ConjunctiveQuery& q,
                             const TripathSearchLimits& limits) {
  CQA_CHECK_MSG(q.NumAtoms() == 2, "classifier handles two-atom queries");
  Classification out;

  // Step 1: trivial queries (Section 2).
  out.trivial_reason = ClassifyTrivial(q);
  if (out.trivial_reason != TrivialReason::kNotTrivial) {
    out.query_class = QueryClass::kTrivial;
    out.complexity = Complexity::kPTime;
    out.explanation =
        out.trivial_reason == TrivialReason::kHomToSingleAtom
            ? "q maps homomorphically onto one of its atoms, so it is "
              "equivalent to a one-atom query; certain(q) is decided by a "
              "per-block scan (Section 2)."
            : "key(A) = key(B), so over consistent databases q is "
              "equivalent to a one-atom query; certain(q) is decided by a "
              "per-block scan (Section 2).";
    return out;
  }

  // Step 2: self-join-free queries are outside the paper's new territory;
  // classify with the Koutris–Wijsen attack graph (reference [7]).
  if (q.IsSelfJoinFree()) {
    switch (ClassifySjf(q)) {
      case SjfComplexity::kFirstOrder:
        out.query_class = QueryClass::kSjfFirstOrder;
        out.complexity = Complexity::kPTime;
        out.explanation =
            "self-join-free with acyclic attack graph: FO-rewritable "
            "(Koutris–Wijsen).";
        return out;
      case SjfComplexity::kPTime:
        out.query_class = QueryClass::kSjfPTime;
        out.complexity = Complexity::kPTime;
        out.explanation =
            "self-join-free with only weak attack cycles: PTime "
            "(Koutris–Wijsen).";
        return out;
      case SjfComplexity::kCoNPComplete:
        out.query_class = QueryClass::kSjfCoNPComplete;
        out.complexity = Complexity::kCoNPComplete;
        out.explanation =
            "self-join-free with a strong attack cycle: coNP-complete "
            "(Koutris–Wijsen; for two atoms, Kolaitis–Pema).";
        return out;
    }
  }

  // Step 3: condition (1) of Theorem 4.2 fails -> Theorem 6.1.
  if (!Theorem42Condition1(q)) {
    CQA_CHECK(Theorem61Applies(q));
    out.query_class = QueryClass::kPTimeCert2;
    out.complexity = Complexity::kPTime;
    out.explanation =
        "condition (1) of Theorem 4.2 fails, so the zig-zag property holds "
        "and Cert_2(q) computes certain(q) (Theorem 6.1).";
    return out;
  }

  // Step 4: conditions (1) and (2) -> hard via the sjf reduction.
  if (Theorem42Condition2(q)) {
    out.query_class = QueryClass::kCoNPHardCondition;
    out.complexity = Complexity::kCoNPComplete;
    out.explanation =
        "conditions (1) and (2) of Theorem 4.2 hold: certain(sjf(q)) is "
        "coNP-hard (Kolaitis–Pema) and reduces to certain(q) "
        "(Proposition 4.1).";
    return out;
  }

  // Step 5: 2way-determined; decide by tripath existence.
  out.two_way_determined = true;
  CQA_CHECK(Is2WayDetermined(q));
  out.tripath_search = SearchTripaths(q, limits);
  const TripathSearchResult& search = out.tripath_search;
  if (search.HasFork()) {
    out.query_class = QueryClass::kCoNPForkTripath;
    out.complexity = Complexity::kCoNPComplete;
    out.explanation =
        "2way-determined and admits a fork-tripath: coNP-complete via the "
        "3-SAT gadget (Theorem 9.1).";
    return out;
  }
  if (!search.exhausted) {
    out.query_class = QueryClass::kUnresolved;
    out.complexity = Complexity::kUnknown;
    out.explanation =
        "2way-determined; the bounded tripath search did not exhaust its "
        "space, so fork-tripath existence is unresolved within the "
        "configured limits (raise TripathSearchLimits).";
    return out;
  }
  if (search.HasTriangle()) {
    out.query_class = QueryClass::kPTimeTriangleOnly;
    out.complexity = Complexity::kPTime;
    out.explanation =
        "2way-determined, admits a triangle-tripath but no fork-tripath "
        "(within exhausted bounds): PTime via Cert_k OR NOT matching "
        "(Theorem 10.5); no Cert_k alone suffices (Theorem 10.1).";
    return out;
  }
  out.query_class = QueryClass::kPTimeNoTripath;
  out.complexity = Complexity::kPTime;
  out.explanation =
      "2way-determined with no tripath (within exhausted bounds): PTime "
      "via Cert_k (Theorem 8.1).";
  return out;
}

std::string ToString(QueryClass c) {
  switch (c) {
    case QueryClass::kTrivial: return "trivial (one-atom equivalent)";
    case QueryClass::kSjfFirstOrder: return "sjf / FO-rewritable";
    case QueryClass::kSjfPTime: return "sjf / PTime";
    case QueryClass::kSjfCoNPComplete: return "sjf / coNP-complete";
    case QueryClass::kPTimeCert2: return "PTime via Cert_2 (Thm 6.1)";
    case QueryClass::kCoNPHardCondition:
      return "coNP-complete via sjf reduction (Thm 4.2)";
    case QueryClass::kPTimeNoTripath:
      return "PTime via Cert_k, no tripath (Thm 8.1)";
    case QueryClass::kCoNPForkTripath:
      return "coNP-complete via fork-tripath (Thm 9.1)";
    case QueryClass::kPTimeTriangleOnly:
      return "PTime via Cert_k + matching, triangle-tripath only (Thm 10.5)";
    case QueryClass::kUnresolved: return "unresolved within search bounds";
  }
  return "?";
}

std::string ToString(Complexity c) {
  switch (c) {
    case Complexity::kPTime: return "PTime";
    case Complexity::kCoNPComplete: return "coNP-complete";
    case Complexity::kUnknown: return "unknown";
  }
  return "?";
}

std::optional<QueryClass> QueryClassFromString(std::string_view s) {
  static constexpr QueryClass kAll[] = {
      QueryClass::kTrivial,           QueryClass::kSjfFirstOrder,
      QueryClass::kSjfPTime,          QueryClass::kSjfCoNPComplete,
      QueryClass::kPTimeCert2,        QueryClass::kCoNPHardCondition,
      QueryClass::kPTimeNoTripath,    QueryClass::kCoNPForkTripath,
      QueryClass::kPTimeTriangleOnly, QueryClass::kUnresolved,
  };
  for (QueryClass c : kAll) {
    if (ToString(c) == s) return c;
  }
  return std::nullopt;
}

std::optional<Complexity> ComplexityFromString(std::string_view s) {
  static constexpr Complexity kAll[] = {
      Complexity::kPTime,
      Complexity::kCoNPComplete,
      Complexity::kUnknown,
  };
  for (Complexity c : kAll) {
    if (ToString(c) == s) return c;
  }
  return std::nullopt;
}

}  // namespace cqa
