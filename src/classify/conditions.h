// Syntactic classification conditions for two-atom queries
// (Theorems 4.2 and 6.1, and the 2way-determined shape of Section 7).
//
// Throughout, key(A) and vars(A) are *sets* of variables; conditions are
// plain set algebra on 64-bit masks.

#ifndef CQA_CLASSIFY_CONDITIONS_H_
#define CQA_CLASSIFY_CONDITIONS_H_

#include "query/query.h"

namespace cqa {

/// vars(A) ∩ vars(B).
VarMask SharedVars(const ConjunctiveQuery& q);

/// Condition (1) of Theorem 4.2:
///   vars(A)∩vars(B) ⊄ key(A)  and  vars(A)∩vars(B) ⊄ key(B)  and
///   key(A) ⊄ key(B)           and  key(B) ⊄ key(A).
bool Theorem42Condition1(const ConjunctiveQuery& q);

/// Condition (2) of Theorem 4.2:
///   key(A) ⊄ vars(B)  or  key(B) ⊄ vars(A).
bool Theorem42Condition2(const ConjunctiveQuery& q);

/// Hypothesis of Theorem 6.1 for q = A B as written:
///   key(A) ⊆ key(B)  or  vars(A)∩vars(B) ⊆ key(B).
/// The theorem also applies to q's swap BA; Theorem61Applies checks both.
bool Theorem61Hypothesis(const ConjunctiveQuery& q);

/// True if Theorem 6.1 applies to q = A B or to B A, i.e. condition (1) of
/// Theorem 4.2 fails and Cert_2 computes certain(q).
bool Theorem61Applies(const ConjunctiveQuery& q);

/// 2way-determined (Section 7):
///   key(A) ⊄ key(B), key(B) ⊄ key(A),
///   key(A) ⊆ vars(B), key(B) ⊆ vars(A).
bool Is2WayDetermined(const ConjunctiveQuery& q);

/// The zig-zag property hypothesis of Lemma 6.2 (same as
/// Theorem61Hypothesis; exposed under its own name for tests that check
/// the zig-zag property semantically).
inline bool ZigZagHypothesis(const ConjunctiveQuery& q) {
  return Theorem61Hypothesis(q);
}

}  // namespace cqa

#endif  // CQA_CLASSIFY_CONDITIONS_H_
