// Koutris–Wijsen attack graphs for self-join-free conjunctive queries.
//
// This is the baseline substrate for the self-join-free side of the story:
// the paper's Theorem 4.2 hardness condition comes from the two-atom
// self-join-free dichotomy (Kolaitis–Pema), which the attack graph
// generalizes (Koutris & Wijsen, TODS 2017, reference [7] of the paper).
//
// Definitions. For a sjf Boolean CQ q and atom F of q, let K(q \ {F}) be
// the functional dependencies {key(G) -> vars(G) : G != F}, and F+ the
// closure of key(F) under K(q \ {F}). F *attacks* G (F != G) if there is a
// witness path F = F0, x1, F1, ..., xn, Fn = G with each xi a variable
// shared by F_{i-1}, F_i and xi not in F+. An attack F -> G is *weak* if
// K(q) entails key(F) -> key(G), else *strong*.
//
// Dichotomy: certain(q) is first-order rewritable iff the attack graph is
// acyclic; PTime (but not FO) iff it has cycles and all are weak; and
// coNP-complete iff it has a strong cycle. We use the Koutris–Wijsen lemma
// that the attack graph has a cycle iff it has a cycle of length two, so
// cycle analysis reduces to mutually-attacking atom pairs.

#ifndef CQA_CLASSIFY_ATTACK_GRAPH_H_
#define CQA_CLASSIFY_ATTACK_GRAPH_H_

#include <string>
#include <vector>

#include "query/query.h"

namespace cqa {

/// The attack graph of a self-join-free CQ.
struct AttackGraph {
  /// attacks[i][j]: atom i attacks atom j.
  std::vector<std::vector<bool>> attacks;
  /// weak[i][j]: the attack i -> j (if present) is weak.
  std::vector<std::vector<bool>> weak;

  bool Attacks(std::size_t i, std::size_t j) const { return attacks[i][j]; }
  bool StrongAttack(std::size_t i, std::size_t j) const {
    return attacks[i][j] && !weak[i][j];
  }
};

/// Complexity classes of certain(q) for sjf queries per Koutris–Wijsen.
enum class SjfComplexity {
  kFirstOrder,    ///< Acyclic attack graph: FO-rewritable.
  kPTime,         ///< Cycles, all weak: PTime, not FO.
  kCoNPComplete,  ///< Some strong cycle.
};

/// Computes the attack graph. CHECKs q.IsSelfJoinFree().
AttackGraph BuildAttackGraph(const ConjunctiveQuery& q);

/// Classifies certain(q) for a sjf query via its attack graph.
SjfComplexity ClassifySjf(const ConjunctiveQuery& q);

/// Closure of the variable set `start` under the FDs key(G) -> vars(G) of
/// the atoms listed in `atom_indices`. Exposed for tests.
VarMask FdClosure(const ConjunctiveQuery& q, VarMask start,
                  const std::vector<std::size_t>& atom_indices);

std::string ToString(SjfComplexity c);

}  // namespace cqa

#endif  // CQA_CLASSIFY_ATTACK_GRAPH_H_
