#include "classify/fo_rewriting.h"

#include <vector>

#include "base/check.h"
#include "query/eval.h"

namespace cqa {
namespace {

/// Closure of `start` (plus the already-bound variables, which behave as
/// constants) under the FDs key(G) -> vars(G) of the atoms in `atoms`.
VarMask ClosureWithBound(const ConjunctiveQuery& q, VarMask start,
                         VarMask bound, const std::vector<std::size_t>& atoms) {
  VarMask closure = start | bound;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t g : atoms) {
      if ((q.KeyVarsOf(g) & ~closure) == 0 &&
          (q.VarsOf(g) & ~closure) != 0) {
        closure |= q.VarsOf(g);
        changed = true;
      }
    }
  }
  return closure;
}

/// True if atom `f` is unattacked within the subquery `remaining` given
/// the bound variables.
bool IsUnattacked(const ConjunctiveQuery& q,
                  const std::vector<std::size_t>& remaining, std::size_t f,
                  VarMask bound) {
  for (std::size_t g : remaining) {
    if (g == f) continue;
    // Does g attack f? Witness path from g to f avoiding g's closure.
    std::vector<std::size_t> others;
    for (std::size_t h : remaining) {
      if (h != g) others.push_back(h);
    }
    VarMask g_plus = ClosureWithBound(q, q.KeyVarsOf(g), bound, others);
    // BFS over remaining atoms from g.
    std::vector<bool> reached(q.NumAtoms(), false);
    std::vector<std::size_t> stack = {g};
    while (!stack.empty()) {
      std::size_t cur = stack.back();
      stack.pop_back();
      for (std::size_t h : remaining) {
        if (h == cur || reached[h]) continue;
        if ((q.VarsOf(cur) & q.VarsOf(h) & ~g_plus) != 0) {
          reached[h] = true;
          stack.push_back(h);
        }
      }
    }
    if (reached[f]) return false;
  }
  return true;
}

class FoEvaluator {
 public:
  FoEvaluator(const ConjunctiveQuery& q, const Database& db)
      : q_(&q), db_(&db), binding_(q, db) {}

  bool Certain() {
    std::vector<std::size_t> all;
    for (std::size_t i = 0; i < q_->NumAtoms(); ++i) all.push_back(i);
    std::vector<ElementId> mu(q_->NumVars(), kUnassigned);
    return Rec(all, 0, &mu);
  }

 private:
  bool Rec(const std::vector<std::size_t>& remaining, VarMask bound,
           std::vector<ElementId>* mu) {
    if (remaining.empty()) return true;

    // Pick an unattacked atom; acyclicity guarantees one exists.
    std::size_t chosen = remaining.size();
    for (std::size_t idx = 0; idx < remaining.size(); ++idx) {
      if (IsUnattacked(*q_, remaining, remaining[idx], bound)) {
        chosen = idx;
        break;
      }
    }
    CQA_CHECK_MSG(chosen != remaining.size(),
                  "attack graph is cyclic: CertainFO does not apply");
    std::size_t f = remaining[chosen];
    std::vector<std::size_t> rest;
    for (std::size_t g : remaining) {
      if (g != f) rest.push_back(g);
    }
    const QueryAtom& atom = q_->atoms()[f];
    RelationId rel = binding_.Resolve(atom.relation);
    VarMask new_bound = bound | q_->VarsOf(f);

    // Exists a block whose every fact matches F under mu and makes the
    // rest certain.
    for (const Block& block : db_->blocks()) {
      if (block.relation != rel) continue;
      bool block_ok = true;
      for (FactId fid : block.facts) {
        std::vector<ElementId> mu2 = *mu;
        if (!ExtendMatch(atom, db_->fact(fid), &mu2) ||
            !Rec(rest, new_bound, &mu2)) {
          block_ok = false;
          break;
        }
      }
      if (block_ok) return true;
    }
    return false;
  }

  const ConjunctiveQuery* q_;
  const Database* db_;
  RelationBinding binding_;
};

}  // namespace

bool CertainFO(const ConjunctiveQuery& q, const Database& db) {
  CQA_CHECK_MSG(q.IsSelfJoinFree(), "CertainFO requires a sjf query");
  FoEvaluator evaluator(q, db);
  return evaluator.Certain();
}

}  // namespace cqa
