#include "classify/attack_graph.h"

#include "base/check.h"

namespace cqa {

VarMask FdClosure(const ConjunctiveQuery& q, VarMask start,
                  const std::vector<std::size_t>& atom_indices) {
  VarMask closure = start;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t g : atom_indices) {
      VarMask key_g = q.KeyVarsOf(g);
      if ((key_g & ~closure) == 0 && (q.VarsOf(g) & ~closure) != 0) {
        closure |= q.VarsOf(g);
        changed = true;
      }
    }
  }
  return closure;
}

AttackGraph BuildAttackGraph(const ConjunctiveQuery& q) {
  CQA_CHECK_MSG(q.IsSelfJoinFree(), "attack graphs require sjf queries");
  std::size_t n = q.NumAtoms();
  AttackGraph graph;
  graph.attacks.assign(n, std::vector<bool>(n, false));
  graph.weak.assign(n, std::vector<bool>(n, false));

  std::vector<std::size_t> all_atoms(n);
  for (std::size_t i = 0; i < n; ++i) all_atoms[i] = i;

  for (std::size_t f = 0; f < n; ++f) {
    // F+ = closure of key(F) under the FDs of the other atoms.
    std::vector<std::size_t> others;
    for (std::size_t g = 0; g < n; ++g) {
      if (g != f) others.push_back(g);
    }
    VarMask f_plus = FdClosure(q, q.KeyVarsOf(f), others);

    // BFS over atoms: step from G to H via a shared variable outside F+.
    std::vector<bool> reached(n, false);
    std::vector<std::size_t> stack = {f};
    while (!stack.empty()) {
      std::size_t g = stack.back();
      stack.pop_back();
      for (std::size_t h = 0; h < n; ++h) {
        if (h == g || reached[h]) continue;
        VarMask link = q.VarsOf(g) & q.VarsOf(h) & ~f_plus;
        if (link != 0) {
          reached[h] = true;
          stack.push_back(h);
        }
      }
    }
    VarMask full_closure = FdClosure(q, q.KeyVarsOf(f), all_atoms);
    for (std::size_t g = 0; g < n; ++g) {
      if (g == f || !reached[g]) continue;
      graph.attacks[f][g] = true;
      // Weak iff K(q) |= key(F) -> key(G).
      graph.weak[f][g] = (q.KeyVarsOf(g) & ~full_closure) == 0;
    }
  }
  return graph;
}

SjfComplexity ClassifySjf(const ConjunctiveQuery& q) {
  AttackGraph graph = BuildAttackGraph(q);
  std::size_t n = q.NumAtoms();
  bool any_cycle = false;
  bool any_strong_cycle = false;
  // Koutris–Wijsen: a cyclic attack graph always has a 2-cycle, and it has
  // a strong cycle iff some 2-cycle contains a strong attack.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (graph.Attacks(i, j) && graph.Attacks(j, i)) {
        any_cycle = true;
        if (graph.StrongAttack(i, j) || graph.StrongAttack(j, i)) {
          any_strong_cycle = true;
        }
      }
    }
  }
  if (any_strong_cycle) return SjfComplexity::kCoNPComplete;
  if (any_cycle) return SjfComplexity::kPTime;
  return SjfComplexity::kFirstOrder;
}

std::string ToString(SjfComplexity c) {
  switch (c) {
    case SjfComplexity::kFirstOrder: return "FO-rewritable";
    case SjfComplexity::kPTime: return "PTime (not FO)";
    case SjfComplexity::kCoNPComplete: return "coNP-complete";
  }
  return "?";
}

}  // namespace cqa
