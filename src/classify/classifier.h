// The full dichotomy classifier for two-atom queries (Section 3).
//
// Decision procedure:
//   1. q equivalent to a one-atom query        -> trivial (PTime).
//   2. q self-join-free                        -> Koutris–Wijsen attack
//      graph (subsumes the Kolaitis–Pema two-atom dichotomy).
//   3. condition (1) of Theorem 4.2 fails      -> PTime via Cert_2
//      (Theorem 6.1).
//   4. conditions (1) and (2) both hold        -> coNP-complete
//      (Theorem 4.2 via Proposition 4.1).
//   5. otherwise q is 2way-determined; run the bounded tripath search:
//        fork-tripath found      -> coNP-complete (Theorem 9.1);
//        triangle only           -> PTime via Cert_k OR NOT matching
//                                   (Theorem 10.5);
//        none found, exhausted   -> PTime via Cert_k (Theorem 8.1);
//        none found, not exhausted -> unresolved within bounds.

#ifndef CQA_CLASSIFY_CLASSIFIER_H_
#define CQA_CLASSIFY_CLASSIFIER_H_

#include <optional>
#include <string>
#include <string_view>

#include "classify/attack_graph.h"
#include "query/hom.h"
#include "query/query.h"
#include "tripath/search.h"

namespace cqa {

/// Where a two-atom query lands in the dichotomy.
enum class QueryClass {
  kTrivial,            ///< Equivalent to a one-atom query.
  kSjfFirstOrder,      ///< Self-join-free, acyclic attack graph.
  kSjfPTime,           ///< Self-join-free, weak cycles only.
  kSjfCoNPComplete,    ///< Self-join-free, strong cycle.
  kPTimeCert2,         ///< Theorem 6.1: Cert_2 is exact.
  kCoNPHardCondition,  ///< Theorem 4.2: syntactic hardness.
  kPTimeNoTripath,     ///< Theorem 8.1: Cert_k is exact.
  kCoNPForkTripath,    ///< Theorem 9.1: fork-tripath hardness.
  kPTimeTriangleOnly,  ///< Theorem 10.5: Cert_k OR NOT matching.
  kUnresolved,         ///< Tripath search hit its bounds.
};

enum class Complexity { kPTime, kCoNPComplete, kUnknown };

/// Classification result with provenance.
struct Classification {
  QueryClass query_class = QueryClass::kUnresolved;
  Complexity complexity = Complexity::kUnknown;
  TrivialReason trivial_reason = TrivialReason::kNotTrivial;
  bool two_way_determined = false;
  /// Populated when the tripath search ran (2way-determined queries).
  TripathSearchResult tripath_search;
  /// One-paragraph human-readable justification citing the theorem used.
  std::string explanation;
};

/// Runs the full decision procedure.
Classification ClassifyQuery(const ConjunctiveQuery& q,
                             const TripathSearchLimits& limits = {});

std::string ToString(QueryClass c);
std::string ToString(Complexity c);

/// Inverses of the ToString functions above (exact match of their
/// output); nullopt for unrecognized strings. Reports and logs round-trip
/// through these, so enums never surface as raw ints.
std::optional<QueryClass> QueryClassFromString(std::string_view s);
std::optional<Complexity> ComplexityFromString(std::string_view s);

}  // namespace cqa

#endif  // CQA_CLASSIFY_CLASSIFIER_H_
