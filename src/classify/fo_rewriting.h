// First-order certain answering for self-join-free queries with acyclic
// attack graphs (Koutris–Wijsen, reference [7] of the paper).
//
// When the attack graph of a sjf CQ q is acyclic, certain(q) is
// first-order rewritable; the rewriting evaluates by structural recursion:
// pick an atom F unattacked in the current (partially instantiated)
// query; then
//   certain(q, mu) iff some block B of F's relation satisfies:
//     every fact a in B extends mu through F, and
//     certain(q - F, mu + bindings from a) holds.
// Variables bound by mu act as constants: they seed every functional-
// dependency closure, which can only remove attacks, so acyclicity is
// preserved along the recursion.
//
// This is the PTime (indeed FO/SQL-expressible) baseline that the paper's
// Section 4 builds on for the self-join-free side of the dichotomy.

#ifndef CQA_CLASSIFY_FO_REWRITING_H_
#define CQA_CLASSIFY_FO_REWRITING_H_

#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// True if the attack graph of q (restricted per recursion step) stays
/// acyclic so that the rewriting applies; use ClassifySjf first.
/// CHECKs q.IsSelfJoinFree().
bool CertainFO(const ConjunctiveQuery& q, const Database& db);

}  // namespace cqa

#endif  // CQA_CLASSIFY_FO_REWRITING_H_
