#include "classify/solver.h"

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "base/check.h"
#include "query/eval.h"

namespace cqa {

bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const Database& db) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(reason != TrivialReason::kNotTrivial);
  RelationBinding binding(q, db);

  if (reason == TrivialReason::kEqualKeys) {
    // Over consistent databases both atoms must be matched by the same
    // fact, so a repair satisfies q iff it contains a fact a with q(a a).
    // A falsifying repair avoids such facts; it exists iff every block has
    // a fact without a self-solution.
    for (const Block& block : db.blocks()) {
      bool all_self = true;
      for (FactId f : block.facts) {
        if (!IsSolution(q, binding, db, f, f)) {
          all_self = false;
          break;
        }
      }
      if (all_self) return true;
    }
    return false;
  }

  // Homomorphism case: q is equivalent to one of its atoms; find which.
  for (std::size_t i = 0; i < 2; ++i) {
    if (!FindHomomorphism(q, AtomSubquery(q, i)).has_value()) continue;
    const QueryAtom& atom = q.atoms()[i];
    RelationId rel = binding.Resolve(atom.relation);
    // Certain iff some block consists entirely of facts matching the
    // atom's repeated-variable pattern.
    for (const Block& block : db.blocks()) {
      if (block.relation != rel) continue;
      bool all_match = true;
      for (FactId f : block.facts) {
        if (!MatchesPattern(atom, db.fact(f))) {
          all_match = false;
          break;
        }
      }
      if (all_match) return true;
    }
    return false;
  }
  CQA_CHECK_MSG(false, "trivial reason does not match the query");
}

CertainSolver::CertainSolver(ConjunctiveQuery query, SolverOptions options)
    : query_(std::move(query)),
      options_(options),
      classification_(ClassifyQuery(query_, options.tripath_limits)) {}

SolverAnswer CertainSolver::Solve(const Database& db) const {
  SolverAnswer answer;
  switch (classification_.query_class) {
    case QueryClass::kTrivial:
      answer.algorithm = SolverAlgorithm::kTrivialScan;
      answer.certain =
          TrivialCertain(query_, classification_.trivial_reason, db);
      return answer;
    case QueryClass::kPTimeCert2:
    case QueryClass::kSjfFirstOrder:
    case QueryClass::kSjfPTime:
      // [3] shows Cert_2 captures all PTime self-join-free two-atom cases;
      // Theorem 6.1 covers the self-join ones.
      answer.algorithm = SolverAlgorithm::kCert2;
      answer.certain = CertK(query_, db, 2);
      return answer;
    case QueryClass::kPTimeNoTripath:
      answer.algorithm = SolverAlgorithm::kCertK;
      answer.certain = CertK(query_, db, options_.practical_k);
      return answer;
    case QueryClass::kPTimeTriangleOnly:
      answer.algorithm = SolverAlgorithm::kCertKOrMatching;
      answer.certain = CombinedCertain(query_, db, options_.practical_k);
      return answer;
    case QueryClass::kCoNPHardCondition:
    case QueryClass::kCoNPForkTripath:
    case QueryClass::kSjfCoNPComplete:
    case QueryClass::kUnresolved:
      answer.algorithm = SolverAlgorithm::kExhaustive;
      answer.certain = ExhaustiveCertain(query_, db);
      return answer;
  }
  CQA_CHECK_MSG(false, "unhandled query class");
}

std::string ToString(SolverAlgorithm a) {
  switch (a) {
    case SolverAlgorithm::kTrivialScan: return "trivial per-block scan";
    case SolverAlgorithm::kCert2: return "Cert_2 greedy fixpoint";
    case SolverAlgorithm::kCertK: return "Cert_k greedy fixpoint";
    case SolverAlgorithm::kCertKOrMatching:
      return "Cert_k OR NOT matching";
    case SolverAlgorithm::kExhaustive: return "exhaustive falsifier search";
  }
  return "?";
}

}  // namespace cqa
