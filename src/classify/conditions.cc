#include "classify/conditions.h"

#include "base/check.h"

namespace cqa {
namespace {

bool SubsetMask(VarMask a, VarMask b) { return (a & ~b) == 0; }

}  // namespace

VarMask SharedVars(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  return q.VarsOf(0) & q.VarsOf(1);
}

bool Theorem42Condition1(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  VarMask shared = SharedVars(q);
  VarMask key_a = q.KeyVarsOf(0);
  VarMask key_b = q.KeyVarsOf(1);
  return !SubsetMask(shared, key_a) && !SubsetMask(shared, key_b) &&
         !SubsetMask(key_a, key_b) && !SubsetMask(key_b, key_a);
}

bool Theorem42Condition2(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  return !SubsetMask(q.KeyVarsOf(0), q.VarsOf(1)) ||
         !SubsetMask(q.KeyVarsOf(1), q.VarsOf(0));
}

bool Theorem61Hypothesis(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  VarMask shared = SharedVars(q);
  return SubsetMask(q.KeyVarsOf(0), q.KeyVarsOf(1)) ||
         SubsetMask(shared, q.KeyVarsOf(1));
}

bool Theorem61Applies(const ConjunctiveQuery& q) {
  return Theorem61Hypothesis(q) || Theorem61Hypothesis(q.Swapped());
}

bool Is2WayDetermined(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  VarMask key_a = q.KeyVarsOf(0);
  VarMask key_b = q.KeyVarsOf(1);
  return !SubsetMask(key_a, key_b) && !SubsetMask(key_b, key_a) &&
         SubsetMask(key_a, q.VarsOf(1)) && SubsetMask(key_b, q.VarsOf(0));
}

}  // namespace cqa
