// Workload generators for tests and benchmarks.
//
// Random inconsistent databases are built from three ingredients:
//   - pattern facts: instantiations of the query's atoms under random
//     variable assignments over a small domain (guaranteeing matches and,
//     with domain collisions, solutions);
//   - blockmates: facts re-using an existing fact's key with fresh
//     non-key values (creating the inconsistencies repairs must resolve);
//   - noise: uniformly random tuples.
// All generation is deterministic given the seed (splitmix64).

#ifndef CQA_GEN_WORKLOADS_H_
#define CQA_GEN_WORKLOADS_H_

#include <cstdint>

#include "base/rng.h"
#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// Knobs for RandomInstance.
struct InstanceParams {
  std::uint32_t num_facts = 40;
  std::uint32_t domain_size = 8;   ///< Elements e0..e{d-1}.
  double pattern_bias = 0.6;       ///< P(instantiate a random atom).
  double blockmate_bias = 0.3;     ///< P(clone an existing fact's key).
};

/// Random database for a (self-join) two-atom query. All relations used by
/// the query are populated; facts are deduplicated by Database semantics,
/// so the result may have slightly fewer than num_facts facts.
Database RandomInstance(const ConjunctiveQuery& q,
                        const InstanceParams& params, Rng* rng);

/// A chain-of-solutions instance: `num_links` solution pairs instantiated
/// with assignments that overlap the previous link's assignment (sharing
/// elements with probability `reuse_bias`), plus blockmates. Produces long
/// q-connected components, the worst case for Cert_k's antichain.
Database ChainInstance(const ConjunctiveQuery& q, std::uint32_t num_links,
                       double reuse_bias, double blockmate_bias, Rng* rng);

}  // namespace cqa

#endif  // CQA_GEN_WORKLOADS_H_
