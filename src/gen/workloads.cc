#include "gen/workloads.h"

#include <string>
#include <vector>

#include "base/check.h"

namespace cqa {
namespace {

ElementId DomainElement(Database* db, std::uint64_t index) {
  return db->elements().Intern("e" + std::to_string(index));
}

/// Instantiates atom `a` of q under the assignment, interning elements.
void AddAtomInstance(const ConjunctiveQuery& q, std::size_t atom_index,
                     const std::vector<ElementId>& assignment,
                     Database* db) {
  const QueryAtom& atom = q.atoms()[atom_index];
  std::vector<ElementId> args;
  args.reserve(atom.vars.size());
  for (VarId v : atom.vars) args.push_back(assignment[v]);
  db->AddFact(atom.relation, std::move(args));
}

}  // namespace

Database RandomInstance(const ConjunctiveQuery& q,
                        const InstanceParams& params, Rng* rng) {
  Database db(q.schema());
  CQA_CHECK(params.domain_size >= 1);
  // Small domains may not admit num_facts distinct facts; the attempt cap
  // guarantees termination (the instance is then simply smaller).
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 50ull * params.num_facts + 1000;
  while (db.NumFacts() < params.num_facts && attempts++ < max_attempts) {
    double roll = rng->Uniform();
    if (roll < params.blockmate_bias && db.NumFacts() > 0) {
      // Clone a random fact's key, fresh random rest.
      FactRef base = db.fact(
          static_cast<FactId>(rng->Below(db.NumFacts())));
      const RelationSchema& rel = db.schema().Relation(base.relation);
      std::vector<ElementId> args(base.args.begin(),
                                  base.args.begin() + rel.key_len);
      for (std::uint32_t i = rel.key_len; i < rel.arity; ++i) {
        args.push_back(DomainElement(&db, rng->Below(params.domain_size)));
      }
      db.AddFact(base.relation, std::move(args));
    } else if (roll < params.blockmate_bias + params.pattern_bias) {
      // Instantiate a random atom under a random assignment.
      std::vector<ElementId> assignment(q.NumVars());
      for (VarId v = 0; v < q.NumVars(); ++v) {
        assignment[v] = DomainElement(&db, rng->Below(params.domain_size));
      }
      AddAtomInstance(q, rng->Below(q.NumAtoms()), assignment, &db);
    } else {
      // Uniform noise tuple over a random relation used by the query.
      const QueryAtom& atom = q.atoms()[rng->Below(q.NumAtoms())];
      const RelationSchema& rel = db.schema().Relation(atom.relation);
      std::vector<ElementId> args;
      for (std::uint32_t i = 0; i < rel.arity; ++i) {
        args.push_back(DomainElement(&db, rng->Below(params.domain_size)));
      }
      db.AddFact(atom.relation, std::move(args));
    }
  }
  return db;
}

Database ChainInstance(const ConjunctiveQuery& q, std::uint32_t num_links,
                       double reuse_bias, double blockmate_bias, Rng* rng) {
  Database db(q.schema());
  std::uint64_t fresh = 0;
  std::vector<ElementId> prev_assignment;
  for (std::uint32_t link = 0; link < num_links; ++link) {
    std::vector<ElementId> assignment(q.NumVars());
    for (VarId v = 0; v < q.NumVars(); ++v) {
      if (!prev_assignment.empty() && rng->Chance(reuse_bias)) {
        assignment[v] = prev_assignment[rng->Below(prev_assignment.size())];
      } else {
        assignment[v] = DomainElement(&db, 1000000 + fresh++);
      }
    }
    AddAtomInstance(q, 0, assignment, &db);
    AddAtomInstance(q, 1, assignment, &db);
    // Blockmates for inconsistency.
    std::size_t before = db.NumFacts();
    for (std::size_t i = 0; i < before; ++i) {
      if (!rng->Chance(blockmate_bias / before)) continue;
      FactRef base = db.fact(static_cast<FactId>(i));
      const RelationSchema& rel = db.schema().Relation(base.relation);
      std::vector<ElementId> args(base.args.begin(),
                                  base.args.begin() + rel.key_len);
      for (std::uint32_t p = rel.key_len; p < rel.arity; ++p) {
        args.push_back(DomainElement(&db, 1000000 + fresh++));
      }
      db.AddFact(base.relation, std::move(args));
    }
    prev_assignment = std::move(assignment);
  }
  return db;
}

}  // namespace cqa
