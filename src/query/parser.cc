#include <stdexcept>
#include <string>
#include <unordered_map>

#include "base/strings.h"
#include "query/query.h"

namespace cqa {
namespace {

/// Internal-only error signal; never escapes this translation unit.
/// ParseQueryOrStatus converts it into a Status with a formatted message,
/// so there is exactly one formatting path for both public entry points.
struct ParseError {
  std::size_t pos;
  std::string why;
};

[[noreturn]] void Fail(std::size_t pos, std::string why) {
  throw ParseError{pos, std::move(why)};
}

/// "line 2, column 5" plus the offending line with a caret under the
/// column. Offsets are clamped to the text (end-of-input errors point one
/// past the last character).
std::string FormatParseError(std::string_view text, std::size_t pos,
                             const std::string& why) {
  if (pos > text.size()) pos = text.size();
  std::size_t line = 1;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i < pos; ++i) {
    if (text[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
  }
  std::size_t column = pos - line_start + 1;
  std::size_t line_end = text.find('\n', line_start);
  if (line_end == std::string_view::npos) line_end = text.size();
  std::string_view line_text = text.substr(line_start, line_end - line_start);

  std::string out = "query parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(column) + ": " + why;
  out += "\n  ";
  out += line_text;
  out += "\n  ";
  // Tabs in the offending line keep their width so the caret stays aligned.
  for (std::size_t i = 0; i + 1 < column; ++i) {
    out += line_text[i] == '\t' ? '\t' : ' ';
  }
  out += '^';
  return out;
}

ConjunctiveQuery ParseImpl(std::string_view text) {
  Schema schema;
  std::vector<std::string> var_names;
  std::unordered_map<std::string, VarId> var_ids;
  std::vector<QueryAtom> atoms;

  auto var_id = [&](const std::string& name, std::size_t pos) -> VarId {
    if (!IsIdentifier(name)) Fail(pos, "bad variable name '" + name + "'");
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    if (var_names.size() >= 64) Fail(pos, "more than 64 variables");
    VarId id = static_cast<VarId>(var_names.size());
    var_names.push_back(name);
    var_ids.emplace(name, id);
    return id;
  };

  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n'))
      ++i;
  };

  skip_ws();
  while (i < text.size()) {
    // Relation name.
    std::size_t name_start = i;
    while (i < text.size() && text[i] != '(') ++i;
    if (i == text.size()) Fail(name_start, "expected '('");
    std::string rel_name(Trim(text.substr(name_start, i - name_start)));
    if (!IsIdentifier(rel_name))
      Fail(name_start, "bad relation name '" + rel_name + "'");
    ++i;  // consume '('

    // Argument list up to ')'.
    std::size_t args_start = i;
    int depth = 1;
    while (i < text.size() && depth > 0) {
      if (text[i] == '(') ++depth;
      if (text[i] == ')') --depth;
      if (depth > 0) ++i;
    }
    if (depth != 0) Fail(args_start, "unbalanced parentheses");
    std::string_view args = text.substr(args_start, i - args_start);
    ++i;  // consume ')'

    // Split on '|' into key part and rest.
    std::size_t bar = args.find('|');
    std::vector<std::string> key_part;
    std::vector<std::string> rest_part;
    if (bar == std::string_view::npos) {
      rest_part = SplitAndTrim(args, ',');
      key_part.clear();
    } else {
      key_part = SplitAndTrim(args.substr(0, bar), ',');
      rest_part = SplitAndTrim(args.substr(bar + 1), ',');
    }
    auto drop_empty_singleton = [](std::vector<std::string>& v) {
      if (v.size() == 1 && v[0].empty()) v.clear();
    };
    drop_empty_singleton(key_part);
    drop_empty_singleton(rest_part);

    std::vector<VarId> vars;
    for (const std::string& n : key_part) {
      if (n.empty()) Fail(args_start, "empty variable");
      vars.push_back(var_id(n, args_start));
    }
    std::uint32_t key_len = static_cast<std::uint32_t>(vars.size());
    for (const std::string& n : rest_part) {
      if (n.empty()) Fail(args_start, "empty variable");
      vars.push_back(var_id(n, args_start));
    }
    if (vars.empty()) Fail(args_start, "atom with no variables");

    std::uint32_t arity = static_cast<std::uint32_t>(vars.size());
    RelationId rel = schema.Find(rel_name);
    if (rel == Schema::kNotFound) {
      rel = schema.AddRelation(rel_name, arity, key_len);
    } else {
      const RelationSchema& existing = schema.Relation(rel);
      if (existing.arity != arity || existing.key_len != key_len) {
        Fail(name_start,
             "atoms over '" + rel_name + "' disagree on signature");
      }
    }
    atoms.push_back(QueryAtom{rel, std::move(vars)});
    skip_ws();
  }

  if (atoms.empty()) Fail(0, "no atoms");
  return ConjunctiveQuery(std::move(schema), std::move(var_names),
                          std::move(atoms));
}

}  // namespace

StatusOr<ConjunctiveQuery> ParseQueryOrStatus(std::string_view text) {
  try {
    return ParseImpl(text);
  } catch (const ParseError& e) {
    return Status(StatusCode::kInvalidQuery,
                  FormatParseError(text, e.pos, e.why));
  }
}

ConjunctiveQuery ParseQuery(std::string_view text) {
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus(text);
  if (!parsed.ok()) throw std::invalid_argument(parsed.status().message());
  return std::move(parsed).value();
}

}  // namespace cqa
