#include "query/eval.h"

#include <algorithm>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"

namespace cqa {

StatusOr<RelationBinding> RelationBinding::Create(
    const ConjunctiveQuery& query, const Database& db) {
  RelationBinding binding;
  binding.map_.resize(query.schema().NumRelations());
  for (RelationId r = 0; r < query.schema().NumRelations(); ++r) {
    const RelationSchema& qrel = query.schema().Relation(r);
    RelationId db_rel = db.schema().Find(qrel.name);
    if (db_rel == Schema::kNotFound) {
      return Status(StatusCode::kSchemaMismatch,
                    "database lacks relation '" + qrel.name +
                        "' used by the query");
    }
    const RelationSchema& drel = db.schema().Relation(db_rel);
    if (drel.arity != qrel.arity || drel.key_len != qrel.key_len) {
      return Status(
          StatusCode::kSchemaMismatch,
          "relation '" + qrel.name + "' signature mismatch: query wants " +
              std::to_string(qrel.arity) + "/" +
              std::to_string(qrel.key_len) + " (arity/key), database has " +
              std::to_string(drel.arity) + "/" +
              std::to_string(drel.key_len));
    }
    binding.map_[r] = db_rel;
  }
  return binding;
}

Status ValidateBinding(const ConjunctiveQuery& query, const Database& db) {
  StatusOr<RelationBinding> created = RelationBinding::Create(query, db);
  return created.ok() ? Status::Ok() : created.status();
}

RelationBinding::RelationBinding(const ConjunctiveQuery& query,
                                 const Database& db) {
  StatusOr<RelationBinding> created = Create(query, db);
  CQA_CHECK_MSG(created.ok(), "relation binding failed (see Create)");
  *this = std::move(created).value();
}

bool ExtendMatch(const QueryAtom& atom, FactRef fact,
                 std::vector<ElementId>* mu) {
  CQA_DCHECK(atom.vars.size() == fact.args.size());
  for (std::size_t i = 0; i < atom.vars.size(); ++i) {
    ElementId& slot = (*mu)[atom.vars[i]];
    if (slot == kUnassigned) {
      slot = fact.args[i];
    } else if (slot != fact.args[i]) {
      return false;
    }
  }
  return true;
}

bool MatchesPattern(const QueryAtom& atom, FactRef fact) {
  for (std::size_t i = 0; i < atom.vars.size(); ++i) {
    for (std::size_t j = i + 1; j < atom.vars.size(); ++j) {
      if (atom.vars[i] == atom.vars[j] && fact.args[i] != fact.args[j]) {
        return false;
      }
    }
  }
  return true;
}

bool IsSolution(const ConjunctiveQuery& q, const RelationBinding& binding,
                const Database& db, FactId a, FactId b) {
  CQA_CHECK(q.NumAtoms() == 2);
  FactRef fa = db.fact(a);
  FactRef fb = db.fact(b);
  if (fa.relation != binding.Resolve(q.atoms()[0].relation)) return false;
  if (fb.relation != binding.Resolve(q.atoms()[1].relation)) return false;
  std::vector<ElementId> mu(q.NumVars(), kUnassigned);
  return ExtendMatch(q.atoms()[0], fa, &mu) && ExtendMatch(q.atoms()[1], fb, &mu);
}

bool IsSolutionEither(const ConjunctiveQuery& q,
                      const RelationBinding& binding, const Database& db,
                      FactId a, FactId b) {
  return IsSolution(q, binding, db, a, b) || IsSolution(q, binding, db, b, a);
}

namespace {

/// Shared hash-join core: candidates for each atom are given explicitly
/// (per-relation index for the prepared path, a linear scan for the
/// convenience path).
SolutionSet JoinSolutions(const ConjunctiveQuery& q, const Database& db,
                          const std::vector<FactId>& a_facts,
                          const std::vector<FactId>& b_facts) {
  SolutionSet out;
  out.self.assign(db.NumFacts(), false);

  // Shared variables, in ascending VarId order, define the join signature.
  VarMask shared = q.VarsOf(0) & q.VarsOf(1);
  std::vector<VarId> shared_vars;
  for (VarId v = 0; v < q.NumVars(); ++v) {
    if (shared & (VarMask{1} << v)) shared_vars.push_back(v);
  }

  auto signature = [&](const std::vector<ElementId>& mu) {
    std::vector<ElementId> sig;
    sig.reserve(shared_vars.size());
    for (VarId v : shared_vars) {
      CQA_DCHECK(mu[v] != kUnassigned);
      sig.push_back(mu[v]);
    }
    return sig;
  };

  // Bucket the facts matching each atom by their shared-variable signature.
  std::unordered_map<std::vector<ElementId>, std::vector<FactId>, VectorHash>
      a_side;
  std::unordered_map<std::vector<ElementId>, std::vector<FactId>, VectorHash>
      b_side;
  std::vector<ElementId> mu(q.NumVars(), kUnassigned);
  for (FactId f : a_facts) {
    std::fill(mu.begin(), mu.end(), kUnassigned);
    if (ExtendMatch(q.atoms()[0], db.fact(f), &mu)) {
      a_side[signature(mu)].push_back(f);
    }
  }
  for (FactId f : b_facts) {
    std::fill(mu.begin(), mu.end(), kUnassigned);
    if (ExtendMatch(q.atoms()[1], db.fact(f), &mu)) {
      b_side[signature(mu)].push_back(f);
    }
  }

  for (const auto& [sig, as] : a_side) {
    auto it = b_side.find(sig);
    if (it == b_side.end()) continue;
    for (FactId a : as) {
      for (FactId b : it->second) {
        out.pairs.emplace_back(a, b);
        if (a == b) out.self[a] = true;
      }
    }
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  return out;
}

}  // namespace

SolutionSet ComputeSolutions(const ConjunctiveQuery& q,
                             const PreparedDatabase& pdb) {
  CQA_CHECK(q.NumAtoms() == 2);
  RelationBinding binding(q, pdb.db());
  return JoinSolutions(q, pdb.db(),
                       pdb.FactsOf(binding.Resolve(q.atoms()[0].relation)),
                       pdb.FactsOf(binding.Resolve(q.atoms()[1].relation)));
}

SolutionSet ComputeSolutions(const ConjunctiveQuery& q, const Database& db) {
  CQA_CHECK(q.NumAtoms() == 2);
  RelationBinding binding(q, db);
  // One linear scan instead of a throwaway PreparedDatabase: callers on
  // this path (tripath validation, component analysis) neither need nor
  // want the block partition forced.
  RelationId rel_a = binding.Resolve(q.atoms()[0].relation);
  RelationId rel_b = binding.Resolve(q.atoms()[1].relation);
  std::vector<FactId> a_facts;
  std::vector<FactId> b_facts;
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    if (!db.alive(f)) continue;
    RelationId rel = db.fact(f).relation;
    if (rel == rel_a) a_facts.push_back(f);
    if (rel == rel_b) b_facts.push_back(f);
  }
  return JoinSolutions(q, db, a_facts, b_facts);
}

SolutionSet ComputeSolutionsAmong(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const std::vector<FactId>& facts) {
  CQA_CHECK(q.NumAtoms() == 2);
  RelationBinding binding(q, db);
  RelationId rel_a = binding.Resolve(q.atoms()[0].relation);
  RelationId rel_b = binding.Resolve(q.atoms()[1].relation);
  std::vector<FactId> a_facts;
  std::vector<FactId> b_facts;
  for (FactId f : facts) {
    CQA_DCHECK(db.alive(f));
    RelationId rel = db.fact(f).relation;
    if (rel == rel_a) a_facts.push_back(f);
    if (rel == rel_b) b_facts.push_back(f);
  }
  return JoinSolutions(q, db, a_facts, b_facts);
}

std::vector<FactId> SolutionPartners(const ConjunctiveQuery& q,
                                     const RelationBinding& binding,
                                     const PreparedDatabase& pdb, FactId f) {
  CQA_CHECK(q.NumAtoms() == 2);
  const Database& db = pdb.db();
  FactRef fact = db.fact(f);
  std::vector<FactId> partners;
  std::vector<ElementId> base(q.NumVars(), kUnassigned);
  std::vector<ElementId> mu(q.NumVars(), kUnassigned);
  // f as atom 0 joined with every atom-1 candidate, then the mirror.
  for (int side = 0; side < 2; ++side) {
    const QueryAtom& f_atom = q.atoms()[side];
    const QueryAtom& g_atom = q.atoms()[1 - side];
    if (fact.relation != binding.Resolve(f_atom.relation)) continue;
    std::fill(base.begin(), base.end(), kUnassigned);
    if (!ExtendMatch(f_atom, fact, &base)) continue;
    for (FactId g : pdb.FactsOf(binding.Resolve(g_atom.relation))) {
      if (side == 1 && g == f) continue;  // q(f f) already seen as side 0.
      mu = base;
      if (ExtendMatch(g_atom, db.fact(g), &mu)) partners.push_back(g);
    }
  }
  return partners;
}

namespace {

bool SatisfiesRec(const ConjunctiveQuery& q,
                  const std::vector<std::vector<FactRef>>& by_relation,
                  std::size_t atom_index, std::vector<ElementId>* mu) {
  if (atom_index == q.NumAtoms()) return true;
  const QueryAtom& atom = q.atoms()[atom_index];
  std::vector<ElementId> saved = *mu;
  for (FactRef fact : by_relation[atom.relation]) {
    *mu = saved;
    if (ExtendMatch(atom, fact, mu) &&
        SatisfiesRec(q, by_relation, atom_index + 1, mu)) {
      return true;
    }
  }
  *mu = saved;
  return false;
}

bool SatisfiesFacts(const ConjunctiveQuery& q, const Database& db,
                    const std::vector<FactId>& facts) {
  RelationBinding binding(q, db);
  // by_relation is indexed by *query* relation id.
  std::vector<std::vector<FactRef>> by_relation(q.schema().NumRelations());
  for (FactId f : facts) {
    FactRef fact = db.fact(f);
    for (RelationId r = 0; r < q.schema().NumRelations(); ++r) {
      if (binding.Resolve(r) == fact.relation) {
        by_relation[r].push_back(fact);
      }
    }
  }
  std::vector<ElementId> mu(q.NumVars(), kUnassigned);
  return SatisfiesRec(q, by_relation, 0, &mu);
}

}  // namespace

bool SatisfiesSubset(const ConjunctiveQuery& q, const Database& db,
                     const std::vector<FactId>& facts) {
  return SatisfiesFacts(q, db, facts);
}

bool Satisfies(const ConjunctiveQuery& q, const Database& db) {
  std::vector<FactId> all;
  all.reserve(db.NumAliveFacts());
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    if (db.alive(f)) all.push_back(f);
  }
  return SatisfiesFacts(q, db, all);
}

bool SatisfiesRepair(const ConjunctiveQuery& q, const Database& db,
                     const Repair& repair) {
  return SatisfiesFacts(q, db, repair.Facts());
}

}  // namespace cqa
