#include "query/hom.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {
namespace {

constexpr VarId kUnmapped = 0xffffffffu;

bool HomRec(const ConjunctiveQuery& from, const ConjunctiveQuery& to,
            const std::vector<std::vector<std::size_t>>& candidates,
            std::size_t atom_index, std::vector<VarId>* h) {
  if (atom_index == from.NumAtoms()) return true;
  const QueryAtom& atom = from.atoms()[atom_index];
  std::vector<VarId> saved = *h;
  for (std::size_t target_index : candidates[atom_index]) {
    const QueryAtom& target = to.atoms()[target_index];
    *h = saved;
    bool ok = true;
    for (std::size_t p = 0; p < atom.vars.size() && ok; ++p) {
      VarId& slot = (*h)[atom.vars[p]];
      if (slot == kUnmapped) {
        slot = target.vars[p];
      } else if (slot != target.vars[p]) {
        ok = false;
      }
    }
    if (ok && HomRec(from, to, candidates, atom_index + 1, h)) return true;
  }
  *h = saved;
  return false;
}

}  // namespace

std::optional<std::vector<VarId>> FindHomomorphism(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to) {
  // Candidate target atoms per source atom: same relation name + signature.
  std::vector<std::vector<std::size_t>> candidates(from.NumAtoms());
  for (std::size_t i = 0; i < from.NumAtoms(); ++i) {
    const RelationSchema& frel =
        from.schema().Relation(from.atoms()[i].relation);
    for (std::size_t j = 0; j < to.NumAtoms(); ++j) {
      const RelationSchema& trel =
          to.schema().Relation(to.atoms()[j].relation);
      if (frel.name == trel.name && frel.arity == trel.arity &&
          frel.key_len == trel.key_len) {
        candidates[i].push_back(j);
      }
    }
    if (candidates[i].empty()) return std::nullopt;
  }
  std::vector<VarId> h(from.NumVars(), kUnmapped);
  if (HomRec(from, to, candidates, 0, &h)) return h;
  return std::nullopt;
}

bool HomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return FindHomomorphism(a, b).has_value() &&
         FindHomomorphism(b, a).has_value();
}

ConjunctiveQuery AtomSubquery(const ConjunctiveQuery& q, std::size_t i) {
  CQA_CHECK(i < q.NumAtoms());
  const QueryAtom& atom = q.atoms()[i];
  // Renumber variables densely, preserving first-occurrence order.
  std::vector<VarId> remap(q.NumVars(), kUnmapped);
  std::vector<std::string> names;
  std::vector<VarId> vars;
  vars.reserve(atom.vars.size());
  for (VarId v : atom.vars) {
    if (remap[v] == kUnmapped) {
      remap[v] = static_cast<VarId>(names.size());
      names.push_back(q.VarName(v));
    }
    vars.push_back(remap[v]);
  }
  const RelationSchema& rel = q.schema().Relation(atom.relation);
  Schema schema;
  RelationId r = schema.AddRelation(rel.name, rel.arity, rel.key_len);
  std::vector<QueryAtom> atoms = {QueryAtom{r, std::move(vars)}};
  return ConjunctiveQuery(std::move(schema), std::move(names),
                          std::move(atoms));
}

TrivialReason ClassifyTrivial(const ConjunctiveQuery& q) {
  CQA_CHECK(q.NumAtoms() == 2);
  if (q.KeyTupleOf(0) == q.KeyTupleOf(1) &&
      q.atoms()[0].relation == q.atoms()[1].relation) {
    return TrivialReason::kEqualKeys;
  }
  for (std::size_t i = 0; i < 2; ++i) {
    if (FindHomomorphism(q, AtomSubquery(q, i)).has_value()) {
      return TrivialReason::kHomToSingleAtom;
    }
  }
  return TrivialReason::kNotTrivial;
}

}  // namespace cqa
