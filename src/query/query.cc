#include "query/query.h"

#include <sstream>

#include "base/check.h"

namespace cqa {

ConjunctiveQuery::ConjunctiveQuery(Schema schema,
                                   std::vector<std::string> var_names,
                                   std::vector<QueryAtom> atoms)
    : schema_(std::move(schema)),
      var_names_(std::move(var_names)),
      atoms_(std::move(atoms)) {
  CQA_CHECK_MSG(var_names_.size() <= 64,
                "queries are limited to 64 variables");
  atom_vars_.reserve(atoms_.size());
  atom_key_vars_.reserve(atoms_.size());
  for (const QueryAtom& a : atoms_) {
    const RelationSchema& rel = schema_.Relation(a.relation);
    CQA_CHECK_MSG(a.vars.size() == rel.arity, "atom arity mismatch");
    VarMask vars = 0;
    VarMask key_vars = 0;
    for (std::size_t i = 0; i < a.vars.size(); ++i) {
      CQA_CHECK(a.vars[i] < var_names_.size());
      vars |= VarMask{1} << a.vars[i];
      if (i < rel.key_len) key_vars |= VarMask{1} << a.vars[i];
    }
    atom_vars_.push_back(vars);
    atom_key_vars_.push_back(key_vars);
  }
}

std::vector<VarId> ConjunctiveQuery::KeyTupleOf(std::size_t i) const {
  const QueryAtom& a = atoms_[i];
  std::uint32_t l = KeyLenOf(i);
  return std::vector<VarId>(a.vars.begin(), a.vars.begin() + l);
}

bool ConjunctiveQuery::IsSelfJoinFree() const {
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = i + 1; j < atoms_.size(); ++j) {
      if (atoms_[i].relation == atoms_[j].relation) return false;
    }
  }
  return true;
}

const QueryAtom& ConjunctiveQuery::A() const {
  CQA_CHECK(atoms_.size() == 2);
  return atoms_[0];
}

const QueryAtom& ConjunctiveQuery::B() const {
  CQA_CHECK(atoms_.size() == 2);
  return atoms_[1];
}

ConjunctiveQuery ConjunctiveQuery::Swapped() const {
  CQA_CHECK(atoms_.size() == 2);
  std::vector<QueryAtom> swapped = {atoms_[1], atoms_[0]};
  return ConjunctiveQuery(schema_, var_names_, std::move(swapped));
}

std::string ConjunctiveQuery::AtomToString(std::size_t i) const {
  const QueryAtom& a = atoms_[i];
  const RelationSchema& rel = schema_.Relation(a.relation);
  std::ostringstream out;
  out << rel.name << '(';
  for (std::size_t p = 0; p < a.vars.size(); ++p) {
    if (p == rel.key_len && rel.key_len > 0) out << " | ";
    else if (p > 0) out << ", ";
    out << var_names_[a.vars[p]];
  }
  out << ')';
  return out.str();
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i) out << ' ';
    out << AtomToString(i);
  }
  return out.str();
}

}  // namespace cqa
