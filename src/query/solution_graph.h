// The solution graph G(D, q) of Section 10.1.
//
// Vertices are the facts of D; there is an (undirected) edge between facts
// a != b iff D |= q{ab}. Facts with D |= q(aa) are flagged separately: a
// repair containing such a fact always satisfies q regardless of the rest.

#ifndef CQA_QUERY_SOLUTION_GRAPH_H_
#define CQA_QUERY_SOLUTION_GRAPH_H_

#include <cstddef>
#include <vector>

#include "data/database.h"
#include "graph/undirected.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {

/// Solution graph plus the underlying directed solution set.
struct SolutionGraph {
  SolutionSet solutions;   ///< Directed pairs and self-solution flags.
  UndirectedGraph graph;   ///< Undirected q{ab} edges between distinct facts.
  Components components;   ///< Connected components of `graph`.
};

/// Builds the solution graph of a two-atom query on a prepared database.
SolutionGraph BuildSolutionGraph(const ConjunctiveQuery& q,
                                 const PreparedDatabase& pdb);

/// Builds the graph from an already-computed solution set (callers that
/// run Cert_k first reuse its ComputeSolutions pass and only pay for the
/// edge list and components when they actually need the graph).
SolutionGraph BuildSolutionGraph(SolutionSet solutions,
                                 std::size_t num_facts);

/// Convenience overload preparing the database on the fly.
SolutionGraph BuildSolutionGraph(const ConjunctiveQuery& q,
                                 const Database& db);

/// True if component `comp` is a quasi-clique: every two facts of the
/// component that are not key-equal are adjacent (Section 10.1).
bool IsQuasiClique(const SolutionGraph& sg, const Database& db,
                   const std::vector<std::uint32_t>& component_vertices);

/// True if every connected component of G(D, q) is a quasi-clique, i.e. D
/// is a clique-database for q.
bool IsCliqueDatabase(const SolutionGraph& sg, const Database& db);

}  // namespace cqa

#endif  // CQA_QUERY_SOLUTION_GRAPH_H_
