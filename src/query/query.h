// Boolean conjunctive queries with primary-key constraints.
//
// A query is a set of atoms over a schema; all variables are existentially
// quantified (Section 2). The paper's object of study is the two-atom
// self-join query q = A B with both atoms over the same relation; the
// substrate supports arbitrary conjunctive queries because the reductions
// (Section 4) and the Koutris–Wijsen baseline need self-join-free queries
// over several relations.
//
// Variable sets are exposed both as sorted vectors and as 64-bit masks
// (queries with more than 64 variables are rejected by the parser), which
// makes the syntactic classification conditions of Theorems 4.2/6.1 direct
// set-algebra on masks.

#ifndef CQA_QUERY_QUERY_H_
#define CQA_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"
#include "data/schema.h"

namespace cqa {

/// Dense id of a variable within a query.
using VarId = std::uint32_t;

/// Bitmask over a query's variables (VarId < 64).
using VarMask = std::uint64_t;

/// One atom R(x1, ..., xk); vars has length k = arity of the relation.
struct QueryAtom {
  RelationId relation = 0;
  std::vector<VarId> vars;
};

/// A Boolean conjunctive query over `schema()`.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery(Schema schema, std::vector<std::string> var_names,
                   std::vector<QueryAtom> atoms);

  const Schema& schema() const { return schema_; }
  const std::vector<QueryAtom>& atoms() const { return atoms_; }
  std::size_t NumAtoms() const { return atoms_.size(); }
  std::size_t NumVars() const { return var_names_.size(); }
  const std::string& VarName(VarId v) const { return var_names_[v]; }

  /// Key length of the relation of atom `i`.
  std::uint32_t KeyLenOf(std::size_t i) const {
    return schema_.Relation(atoms_[i].relation).key_len;
  }

  /// Set of variables occurring in atom i (vars(A) in the paper).
  VarMask VarsOf(std::size_t i) const { return atom_vars_[i]; }

  /// Set of variables occurring in key positions of atom i (key(A)).
  VarMask KeyVarsOf(std::size_t i) const { return atom_key_vars_[i]; }

  /// Key tuple of atom i: the first key_len variables, in order (key(A)).
  std::vector<VarId> KeyTupleOf(std::size_t i) const;

  /// True if the query is self-join-free (no two atoms share a relation).
  bool IsSelfJoinFree() const;

  /// Two-atom convenience accessors (CHECK NumAtoms() == 2).
  const QueryAtom& A() const;
  const QueryAtom& B() const;

  /// Returns the query with atom order reversed (q = AB becomes BA); the
  /// classification of Section 6 applies some conditions "by symmetry".
  ConjunctiveQuery Swapped() const;

  /// Pretty-prints, e.g. "R(x, u | x, y) R(u, y | x, z)".
  std::string ToString() const;

  /// Pretty-prints one atom.
  std::string AtomToString(std::size_t i) const;

 private:
  Schema schema_;
  std::vector<std::string> var_names_;
  std::vector<QueryAtom> atoms_;
  std::vector<VarMask> atom_vars_;
  std::vector<VarMask> atom_key_vars_;
};

/// Parses a query from a compact textual form.
///
/// Syntax: one or more atoms "Name(v1, ..., vl | vl+1, ..., vk)" separated
/// by whitespace; the '|' separates key positions from non-key positions and
/// may be omitted when the key is empty. All atoms with the same relation
/// name must agree on arity and key length. Examples from the paper:
///   q2: "R(x, u | x, y) R(u, y | x, z)"
///   q3: "R(x | y) R(y | z)"
///   q6: "R(x | y, z) R(z | x, y)"
/// Malformed input yields StatusCode::kInvalidQuery; the message locates
/// the error as line:column and includes a caret snippet, e.g.
///   query parse error at line 1, column 9: expected '('
///     R(x | y R(y | z)
///             ^
[[nodiscard]] StatusOr<ConjunctiveQuery> ParseQueryOrStatus(std::string_view text);

/// Throwing shim over ParseQueryOrStatus for source compatibility:
/// throws std::invalid_argument with the same message on malformed input.
ConjunctiveQuery ParseQuery(std::string_view text);

}  // namespace cqa

#endif  // CQA_QUERY_QUERY_H_
