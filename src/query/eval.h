// Query evaluation: matching facts against atoms, enumerating solutions of
// two-atom queries, and general conjunctive-query satisfaction.
//
// Terminology follows Section 2 of the paper: a pair of facts (a, b) is a
// *solution* to q = A B in D, written D |= q(ab), if a single assignment mu
// maps A to a and B to b. q{ab} denotes q(ab) or q(ba).

#ifndef CQA_QUERY_EVAL_H_
#define CQA_QUERY_EVAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "api/status.h"
#include "data/database.h"
#include "data/prepared.h"
#include "data/repair.h"
#include "query/query.h"

namespace cqa {

/// Sentinel for unassigned variables in partial assignments.
inline constexpr ElementId kUnassigned = 0xffffffffu;

/// Resolves the relations of a query against the relations of a database by
/// name, checking that signatures agree. Queries and databases can be built
/// against independent Schema values; this binding is the bridge.
class RelationBinding {
 public:
  /// CHECK-aborts on a mismatch; internal callers reach this point only
  /// with pre-validated pairs. API-boundary callers use Create.
  RelationBinding(const ConjunctiveQuery& query, const Database& db);

  /// Status-returning variant: kSchemaMismatch (naming the offending
  /// relation) instead of aborting, so one bad database is a per-request
  /// error rather than a process death.
  [[nodiscard]] static StatusOr<RelationBinding> Create(const ConjunctiveQuery& query,
                                          const Database& db);

  /// Database relation id corresponding to query relation `query_rel`.
  RelationId Resolve(RelationId query_rel) const { return map_[query_rel]; }

 private:
  RelationBinding() = default;
  std::vector<RelationId> map_;
};

/// Ok iff every relation the query uses exists in db with the same arity
/// and key length (i.e. RelationBinding::Create would succeed).
[[nodiscard]] Status ValidateBinding(const ConjunctiveQuery& query, const Database& db);

/// Tries to extend the partial assignment `mu` (indexed by VarId, with
/// kUnassigned holes) so that `atom` maps onto `fact`. Returns false and
/// leaves `mu` in an unspecified state on failure; callers re-seed `mu`.
bool ExtendMatch(const QueryAtom& atom, FactRef fact,
                 std::vector<ElementId>* mu);

/// True if fact's tuple is consistent with the atom's repeated-variable
/// pattern (ignoring any outer assignment).
bool MatchesPattern(const QueryAtom& atom, FactRef fact);

/// Directed solution test D |= q(a b) for a two-atom query.
bool IsSolution(const ConjunctiveQuery& q, const RelationBinding& binding,
                const Database& db, FactId a, FactId b);

/// Undirected solution test D |= q{a b}.
bool IsSolutionEither(const ConjunctiveQuery& q,
                      const RelationBinding& binding, const Database& db,
                      FactId a, FactId b);

/// All solutions of a two-atom query in a database.
struct SolutionSet {
  /// Directed pairs (a, b) with D |= q(a b); includes a == b.
  std::vector<std::pair<FactId, FactId>> pairs;
  /// self[f] is true iff D |= q(f f).
  std::vector<bool> self;
};

/// Enumerates all solutions via a hash join on the shared variables, using
/// the prepared per-relation fact index (only the facts of the two atoms'
/// relations are scanned). Complexity: O(n + |output|) expected.
SolutionSet ComputeSolutions(const ConjunctiveQuery& q,
                             const PreparedDatabase& pdb);

/// Convenience overload preparing the database on the fly (one extra O(n)
/// indexing pass); batch callers should prepare once and reuse.
SolutionSet ComputeSolutions(const ConjunctiveQuery& q, const Database& db);

/// Solutions of q restricted to an explicit subset of (alive) facts: the
/// same hash join, scanning only `facts`. Incremental component
/// maintenance uses this to re-partition one q-connected component after
/// a deletion without touching the rest of the database.
SolutionSet ComputeSolutionsAmong(const ConjunctiveQuery& q,
                                  const Database& db,
                                  const std::vector<FactId>& facts);

/// All alive facts g with D |= q{f g} (including g == f when q(f f)),
/// for a two-atom query. Scans the two atom relations' prepared indexes;
/// incremental component maintenance probes this for a newly inserted
/// fact instead of recomputing the full solution set.
std::vector<FactId> SolutionPartners(const ConjunctiveQuery& q,
                                     const RelationBinding& binding,
                                     const PreparedDatabase& pdb, FactId f);

/// General conjunctive-query satisfaction over an explicit set of facts
/// (e.g. a repair). Backtracking join; exponential only in the number of
/// atoms, which is fixed.
bool SatisfiesSubset(const ConjunctiveQuery& q, const Database& db,
                     const std::vector<FactId>& facts);

/// D |= q over the full database.
bool Satisfies(const ConjunctiveQuery& q, const Database& db);

/// r |= q for a repair r of db.
bool SatisfiesRepair(const ConjunctiveQuery& q, const Database& db,
                     const Repair& repair);

}  // namespace cqa

#endif  // CQA_QUERY_EVAL_H_
