// Query homomorphisms and the one-atom-equivalence test of Section 2.
//
// certain(q) is trivial when q = A B is equivalent, over consistent
// databases, to a one-atom query. Per the paper this happens exactly when
// (1) there is a homomorphism from q onto one of its atoms, or
// (2) key(A) = key(B) as variable tuples (then on consistent databases both
//     atoms must be matched by the same fact, so q is equivalent to a single
//     atom R(C) where C superimposes the equality patterns of A and B).

#ifndef CQA_QUERY_HOM_H_
#define CQA_QUERY_HOM_H_

#include <optional>
#include <vector>

#include "query/query.h"

namespace cqa {

/// Searches for a homomorphism from `from` to `to`: a variable map h such
/// that every atom of `from` is mapped positionwise onto some atom of `to`
/// over the same relation (relations are matched by name). Returns the map
/// (indexed by `from` VarId) or nullopt.
std::optional<std::vector<VarId>> FindHomomorphism(
    const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// True if the two CQs are homomorphically equivalent.
bool HomEquivalent(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

/// The sub-query consisting of atom `i` only (variables renumbered).
ConjunctiveQuery AtomSubquery(const ConjunctiveQuery& q, std::size_t i);

/// Why a two-atom query is "trivial" for certain answering.
enum class TrivialReason {
  kNotTrivial,
  kHomToSingleAtom,  ///< q maps homomorphically onto one of its atoms.
  kEqualKeys,        ///< key(A) = key(B) as tuples of variables.
};

/// Tests the one-atom-equivalence conditions for a two-atom query.
TrivialReason ClassifyTrivial(const ConjunctiveQuery& q);

}  // namespace cqa

#endif  // CQA_QUERY_HOM_H_
