#include "query/solution_graph.h"

namespace cqa {

SolutionGraph BuildSolutionGraph(const ConjunctiveQuery& q,
                                 const Database& db) {
  SolutionGraph sg{ComputeSolutions(q, db), UndirectedGraph(db.NumFacts()),
                   Components{}};
  for (const auto& [a, b] : sg.solutions.pairs) {
    if (a != b) sg.graph.AddEdge(a, b);
  }
  sg.graph.Finalize();
  sg.components = ConnectedComponents(sg.graph);
  return sg;
}

bool IsQuasiClique(const SolutionGraph& sg, const Database& db,
                   const std::vector<std::uint32_t>& component_vertices) {
  for (std::size_t i = 0; i < component_vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < component_vertices.size(); ++j) {
      std::uint32_t a = component_vertices[i];
      std::uint32_t b = component_vertices[j];
      if (!db.KeyEqual(a, b) && !sg.graph.HasEdge(a, b)) return false;
    }
  }
  return true;
}

bool IsCliqueDatabase(const SolutionGraph& sg, const Database& db) {
  for (const auto& group : sg.components.Groups()) {
    if (!IsQuasiClique(sg, db, group)) return false;
  }
  return true;
}

}  // namespace cqa
