#include "query/solution_graph.h"

#include <utility>

namespace cqa {

SolutionGraph BuildSolutionGraph(SolutionSet solutions,
                                 std::size_t num_facts) {
  SolutionGraph sg{std::move(solutions), UndirectedGraph(num_facts),
                   Components{}};
  for (const auto& [a, b] : sg.solutions.pairs) {
    if (a != b) sg.graph.AddEdge(a, b);
  }
  sg.graph.Finalize();
  sg.components = ConnectedComponents(sg.graph);
  return sg;
}

SolutionGraph BuildSolutionGraph(const ConjunctiveQuery& q,
                                 const PreparedDatabase& pdb) {
  return BuildSolutionGraph(ComputeSolutions(q, pdb), pdb.NumFacts());
}

SolutionGraph BuildSolutionGraph(const ConjunctiveQuery& q,
                                 const Database& db) {
  return BuildSolutionGraph(q, PreparedDatabase(db));
}

bool IsQuasiClique(const SolutionGraph& sg, const Database& db,
                   const std::vector<std::uint32_t>& component_vertices) {
  for (std::size_t i = 0; i < component_vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < component_vertices.size(); ++j) {
      std::uint32_t a = component_vertices[i];
      std::uint32_t b = component_vertices[j];
      if (!db.KeyEqual(a, b) && !sg.graph.HasEdge(a, b)) return false;
    }
  }
  return true;
}

bool IsCliqueDatabase(const SolutionGraph& sg, const Database& db) {
  for (const auto& group : sg.components.Groups()) {
    if (!IsQuasiClique(sg, db, group)) return false;
  }
  return true;
}

}  // namespace cqa
