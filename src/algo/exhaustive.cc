#include "algo/exhaustive.h"

#include <algorithm>

#include "base/check.h"
#include "data/repair.h"
#include "query/eval.h"
#include "query/solution_graph.h"

namespace cqa {
namespace {

/// Backtracking search for a repair that avoids all solutions.
///
/// State: per fact, a count of chosen neighbors ("banned" when > 0); per
/// block, the number of not-yet-banned candidate facts. Blocks are processed
/// most-constrained-first, recomputed at each node (the databases involved
/// are small enough that the O(blocks) scan per node is dwarfed by the
/// pruning it buys).
class FalsifierSearch {
 public:
  FalsifierSearch(const PreparedDatabase& pdb, const SolutionGraph& sg)
      : db_(&pdb), sg_(&sg) {
    std::size_t n = pdb.NumFacts();
    banned_count_.assign(n, 0);
    // Facts with a self-solution can never be part of a falsifying repair.
    for (FactId f = 0; f < n; ++f) {
      if (sg.solutions.self[f]) banned_count_[f] = 1;
    }
    assigned_.assign(pdb.blocks().size(), false);
    choice_.assign(pdb.blocks().size(), 0);
  }

  bool FindFalsifier(std::uint64_t* nodes) {
    return Search(nodes);
  }

  /// Per-block selection of the falsifier; valid after FindFalsifier
  /// returned true (every block was assigned on the success path).
  const std::vector<std::uint32_t>& choice() const { return choice_; }

 private:
  /// Number of selectable facts in block b; also reports one of them.
  std::uint32_t CountAvailable(BlockId b, FactId* witness) const {
    std::uint32_t count = 0;
    for (FactId f : db_->blocks()[b].facts) {
      if (banned_count_[f] == 0) {
        ++count;
        *witness = f;
      }
    }
    return count;
  }

  bool Search(std::uint64_t* nodes) {
    ++*nodes;
    // Pick the unassigned block with the fewest available facts.
    BlockId best_block = 0;
    std::uint32_t best_count = 0xffffffffu;
    bool found_unassigned = false;
    for (BlockId b = 0; b < assigned_.size(); ++b) {
      if (assigned_[b]) continue;
      found_unassigned = true;
      FactId w;
      std::uint32_t count = CountAvailable(b, &w);
      if (count < best_count) {
        best_count = count;
        best_block = b;
        if (count == 0) break;
      }
    }
    if (!found_unassigned) return true;  // All blocks assigned: falsifier.
    if (best_count == 0) return false;   // Dead end.

    assigned_[best_block] = true;
    const std::vector<FactId>& facts = db_->blocks()[best_block].facts;
    for (std::uint32_t idx = 0; idx < facts.size(); ++idx) {
      FactId f = facts[idx];
      if (banned_count_[f] != 0) continue;
      // Choose f: ban all its solution-graph neighbors.
      choice_[best_block] = idx;
      for (FactId nb : sg_->graph.Neighbors(f)) ++banned_count_[nb];
      bool ok = Search(nodes);
      for (FactId nb : sg_->graph.Neighbors(f)) --banned_count_[nb];
      if (ok) return true;
    }
    assigned_[best_block] = false;
    return false;
  }

  const PreparedDatabase* db_;
  const SolutionGraph* sg_;
  std::vector<std::uint32_t> banned_count_;
  std::vector<bool> assigned_;
  std::vector<std::uint32_t> choice_;
};

}  // namespace

bool ExhaustiveCertain(const PreparedDatabase& pdb, const SolutionGraph& sg,
                       ExhaustiveStats* stats) {
  return !FindFalsifyingRepair(pdb, sg, stats).has_value();
}

std::optional<Repair> FindFalsifyingRepair(const PreparedDatabase& pdb,
                                           const SolutionGraph& sg,
                                           ExhaustiveStats* stats) {
  FalsifierSearch search(pdb, sg);
  std::uint64_t nodes = 0;
  bool falsifier_exists = search.FindFalsifier(&nodes);
  if (stats != nullptr) stats->nodes_explored = nodes;
  if (!falsifier_exists) return std::nullopt;
  return Repair(&pdb.db(), search.choice());
}

std::optional<Repair> FindFalsifyingRepair(const ConjunctiveQuery& q,
                                           const PreparedDatabase& pdb,
                                           ExhaustiveStats* stats) {
  CQA_CHECK(q.NumAtoms() == 2);
  return FindFalsifyingRepair(pdb, BuildSolutionGraph(q, pdb), stats);
}

bool ExhaustiveCertain(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                       ExhaustiveStats* stats) {
  CQA_CHECK(q.NumAtoms() == 2);
  return ExhaustiveCertain(pdb, BuildSolutionGraph(q, pdb), stats);
}

bool ExhaustiveCertain(const ConjunctiveQuery& q, const Database& db,
                       ExhaustiveStats* stats) {
  return ExhaustiveCertain(q, PreparedDatabase(db), stats);
}

bool CertainByEnumeration(const ConjunctiveQuery& q, const Database& db,
                          double max_repairs) {
  CQA_CHECK_MSG(db.CountRepairs() <= max_repairs,
                "too many repairs for enumeration");
  for (RepairIterator it(db); it.HasValue(); it.Next()) {
    if (!SatisfiesRepair(q, db, it.Current())) return false;
  }
  return true;
}

}  // namespace cqa
