// Dynamically maintained q-connected components (Proposition 10.6).
//
// algo/components.h computes the q-connected partition from scratch; this
// class keeps it alive across single-fact mutations so a streaming
// workload never pays the full O(n + solutions) repartition:
//
//   - insert: the new fact is unioned with its blockmates and with its
//     solution partners (a single-fact probe of the two atom relations)
//     — components only merge, so a persistent union-find absorbs the
//     change in near-constant time plus the probe;
//   - delete: components can split, which union-find cannot express, so
//     the deleted fact's component — and only that component — is
//     repartitioned locally (blockmate edges plus a hash join restricted
//     to its members).
//
// Each component carries a content fingerprint: an order-independent
// combination of its member facts' tuple hashes. Fingerprints are the
// cache key for per-component certain-answer verdicts (engine/
// incremental.h): a component untouched by a delta keeps its fingerprint
// bit-for-bit, while any member change moves it, so "fingerprint hit"
// means "same fact content, verdict reusable" (up to 192-bit hash
// collisions).
//
// The underlying fact-level union-find is sound because a q-connected
// component is a union of blocks closed under solution pairs: key-equal
// facts (blockmates) and solution partners generate exactly that closure.

#ifndef CQA_ALGO_DYNAMIC_COMPONENTS_H_
#define CQA_ALGO_DYNAMIC_COMPONENTS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/hash.h"
#include "data/prepared.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {

/// Order-independent digest of a component's member fact tuples.
/// Commutative combines (sum and xor of independently mixed tuple hashes,
/// plus the member count) make membership changes cheap and splits
/// recomputable from member lists. Tuples are hashed by element *names*,
/// not ids, so equal content yields equal fingerprints regardless of
/// interning order (databases that were mutated into a state and
/// databases built directly in it agree).
struct ComponentFingerprint {
  std::uint64_t sum = 0;
  std::uint64_t xr = 0;
  std::uint64_t count = 0;

  void Add(const Database& db, FactId f);
  void Merge(const ComponentFingerprint& other);

  bool operator==(const ComponentFingerprint& o) const {
    return sum == o.sum && xr == o.xr && count == o.count;
  }
  bool operator!=(const ComponentFingerprint& o) const {
    return !(*this == o);
  }
};

struct ComponentFingerprintHash {
  std::size_t operator()(const ComponentFingerprint& fp) const {
    return HashCombine(HashCombine(fp.sum, fp.xr), fp.count);
  }
};

/// The q-connected partition of a mutating database, for two-atom queries.
class DynamicComponents {
 public:
  struct Component {
    std::vector<FactId> members;  ///< Alive facts; unsorted.
    FactId min_member = 0;        ///< Smallest member id (order handle).
    ComponentFingerprint fingerprint;
  };

  /// Builds the partition of the current (alive) facts. `q` and `pdb`
  /// must outlive this object; q must have exactly two atoms and bind to
  /// pdb's schema.
  DynamicComponents(const ConjunctiveQuery& q, const PreparedDatabase& pdb);

  /// Absorbs a Database::AddFact of `f`. Call after the database and the
  /// PreparedDatabase have been updated. O(alpha) plus the partner probe.
  /// Deltas may be applied later than the database updates as long as
  /// they arrive in mutation order (engine/incremental.h queues them):
  /// facts the database already holds beyond this partition's horizon are
  /// skipped during the probe and connect themselves when their own
  /// delta arrives.
  void OnInsert(FactId f);

  /// Absorbs a Database::RemoveFact of `f`. Call after the database has
  /// tombstoned `f` (its tuple must still be readable — compaction must
  /// not run before the delta is applied) and the PreparedDatabase has
  /// been updated. Repartitions f's component only.
  void OnRemove(FactId f);

  /// Absorbs a Database::Compact (call once, right after, with the remap
  /// it returned): renumbers the union-find and component members in
  /// place. The remap is monotonic on survivors, so min_member stays the
  /// minimum, and fingerprints are content-addressed, so they are
  /// untouched. O(alive facts).
  void ApplyRemap(const FactIdRemap& remap);

  /// Current components, keyed by representative member. Key stability is
  /// not guaranteed across mutations; fingerprints are the stable handle.
  const std::unordered_map<FactId, Component>& components() const {
    return components_;
  }

  std::size_t NumComponents() const { return components_.size(); }

 private:
  // data/audit.h walks parent_ (without path compression) to verify the
  // union-find against the member lists; audit_test corrupts it.
  friend AuditReport AuditComponents(const ConjunctiveQuery& q,
                                     const PreparedDatabase& pdb,
                                     const DynamicComponents& components);
  friend class TestCorruptor;

  FactId Find(FactId f);
  /// Merges the components of a and b (no-op when already joined).
  void Union(FactId a, FactId b);
  /// Registers `f` as a fresh singleton component.
  void MakeSingleton(FactId f);
  /// Unions `f` with its blockmates and its solution partners.
  void ConnectWithinBlockAndSolutions(FactId f);

  const ConjunctiveQuery* q_;
  const PreparedDatabase* pdb_;
  RelationBinding binding_;
  std::vector<FactId> parent_;  ///< Indexed by FactId; grows on insert.
  std::unordered_map<FactId, Component> components_;  ///< By root.
};

}  // namespace cqa

#endif  // CQA_ALGO_DYNAMIC_COMPONENTS_H_
