// Exact certain answering for trivial (one-atom-equivalent) queries.
//
// certain(q) holds iff some block's facts all satisfy the one-atom residue
// of q: for equal-key queries that residue is the self-solution pattern
// q(a a); for homomorphism-trivial queries it is the repeated-variable
// pattern of the equivalent atom. Linear in the database either way.

#ifndef CQA_ALGO_TRIVIAL_H_
#define CQA_ALGO_TRIVIAL_H_

#include <optional>

#include "data/database.h"
#include "data/prepared.h"
#include "data/repair.h"
#include "query/hom.h"
#include "query/query.h"

namespace cqa {

/// `reason` must be ClassifyTrivial(q) and must not be kNotTrivial.
bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const PreparedDatabase& pdb);

/// Convenience overload preparing the database on the fly.
bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const Database& db);

/// The witness form of TrivialCertain: a repair of pdb.db() that falsifies
/// q, or nullopt iff q is certain. Picks, in every block of the residue's
/// relation, a fact that fails the one-atom residue (such a fact exists in
/// each of them exactly when certain(q) is false); other relations'
/// blocks keep an arbitrary fact. Linear in the database.
std::optional<Repair> TrivialFalsifyingRepair(const ConjunctiveQuery& q,
                                              TrivialReason reason,
                                              const PreparedDatabase& pdb);

}  // namespace cqa

#endif  // CQA_ALGO_TRIVIAL_H_
