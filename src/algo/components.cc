#include "algo/components.h"

#include "algo/combined.h"
#include "base/check.h"
#include "base/union_find.h"
#include "query/eval.h"

namespace cqa {

std::vector<QConnectedComponent> QConnectedComponents(
    const ConjunctiveQuery& q, const Database& db) {
  CQA_CHECK(q.NumAtoms() == 2);
  const auto& blocks = db.blocks();
  UnionFind uf(blocks.size());
  SolutionSet solutions = ComputeSolutions(q, db);
  for (const auto& [a, b] : solutions.pairs) {
    uf.Union(db.BlockOf(a), db.BlockOf(b));
  }

  // Group blocks by component representative, preserving block order.
  std::vector<int> component_index(blocks.size(), -1);
  std::vector<QConnectedComponent> components;
  for (BlockId blk = 0; blk < blocks.size(); ++blk) {
    std::uint32_t rep = uf.Find(blk);
    if (component_index[rep] < 0) {
      component_index[rep] = static_cast<int>(components.size());
      components.emplace_back();
      components.back().db = Database(db.schema());
    }
    QConnectedComponent& comp = components[component_index[rep]];
    for (FactId fid : blocks[blk].facts) {
      FactRef fact = db.fact(fid);
      std::vector<ElementId> args;
      args.reserve(fact.args.size());
      for (ElementId el : fact.args) {
        args.push_back(comp.db.elements().Intern(db.elements().Name(el)));
      }
      comp.db.AddFact(fact.relation, std::move(args));
      comp.original_facts.push_back(fid);
    }
  }
  return components;
}

bool ComponentwiseCertain(const ConjunctiveQuery& q, const Database& db,
                          std::uint32_t k) {
  for (const QConnectedComponent& comp : QConnectedComponents(q, db)) {
    if (CombinedCertain(q, comp.db, k)) return true;
  }
  return false;
}

}  // namespace cqa
