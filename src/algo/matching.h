// The bipartite matching-based algorithm matching(q) of Section 10.1.
//
// On input D the algorithm builds the solution graph G(D, q), groups facts
// into "cliques" (a fact's connected component when that component is a
// quasi-clique, else the fact alone), and forms the bipartite graph H(D, q)
// with V1 = blocks of D and V2 = cliques; (v1, v2) is an edge iff block v1
// contains a fact a of clique v2 with not q(aa). matching(q) answers yes
// iff some matching of H saturates V1.
//
// Guarantees (for 2way-determined q):
//   - Proposition 10.2: D |= ¬matching(q) implies D |= certain(q)
//     (¬matching is a sound under-approximation).
//   - Proposition 10.3: on clique-databases, ¬matching(q) == certain(q).
//   - Theorem 10.4: for clique-queries (e.g. q6), certain == ¬matching.

#ifndef CQA_ALGO_MATCHING_H_
#define CQA_ALGO_MATCHING_H_

#include <cstdint>

#include "data/database.h"
#include "data/prepared.h"
#include "query/query.h"
#include "query/solution_graph.h"

namespace cqa {

/// Statistics from a matching(q) run.
struct MatchingStats {
  std::uint64_t num_cliques = 0;       ///< |V2|.
  std::uint64_t matching_size = 0;     ///< Size of the maximum matching.
  bool clique_database = false;        ///< Every component a quasi-clique.
};

/// Runs matching(q) on a prebuilt solution graph: true iff H(D, q) has a
/// matching saturating the blocks.
bool MatchingAlgorithm(const PreparedDatabase& pdb, const SolutionGraph& sg,
                       MatchingStats* stats = nullptr);

/// As above, building the solution graph internally.
bool MatchingAlgorithm(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                       MatchingStats* stats = nullptr);

/// Convenience overload preparing the database on the fly.
bool MatchingAlgorithm(const ConjunctiveQuery& q, const Database& db,
                       MatchingStats* stats = nullptr);

/// The certain-answer under-approximation ¬matching(q).
inline bool NotMatchingCertain(const ConjunctiveQuery& q, const Database& db,
                               MatchingStats* stats = nullptr) {
  return !MatchingAlgorithm(q, db, stats);
}

inline bool NotMatchingCertain(const PreparedDatabase& pdb,
                               const SolutionGraph& sg,
                               MatchingStats* stats = nullptr) {
  return !MatchingAlgorithm(pdb, sg, stats);
}

}  // namespace cqa

#endif  // CQA_ALGO_MATCHING_H_
