// The combined polynomial-time algorithm of Theorem 10.5:
//   certain(q) = Cert_k(q) OR NOT matching(q)
// for 2way-determined queries without a fork-tripath
// (k = 2^(2κ+1) + κ - 1, κ = l^l).
//
// The two components cover complementary parts of the q-connected partition
// of Proposition 10.6: components without tripaths are handled by Cert_k,
// clique-database components by ¬matching.

#ifndef CQA_ALGO_COMBINED_H_
#define CQA_ALGO_COMBINED_H_

#include <cstdint>

#include "algo/certk.h"
#include "algo/matching.h"
#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// Which component of the combined algorithm decided the answer.
enum class CombinedDecision {
  kCertK,        ///< Cert_k said certain.
  kNotMatching,  ///< matching(q) failed to saturate: certain.
  kNotCertain,   ///< Neither: not certain (valid for fork-free queries).
};

/// The theoretical k of Proposition 8.2 / Theorem 10.5 for key length l:
/// 2^(2κ+1) + κ - 1 with κ = l^l. Grows fast; callers typically use a
/// small practical k (the answer is still sound for any k and exact on all
/// the paper's worked examples already for k <= 4).
std::uint64_t TheoreticalCertKBound(std::uint32_t key_len);

/// Runs Cert_k(q) OR ¬matching(q). Exact for 2way-determined queries with
/// no fork-tripath when k is at least the theoretical bound; sound (only
/// "certain" answers can be trusted) for every two-atom query and any k.
/// The solution graph is computed once and shared by both components.
bool CombinedCertain(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                     std::uint32_t k, CombinedDecision* decision = nullptr);

/// Convenience overload preparing the database on the fly.
bool CombinedCertain(const ConjunctiveQuery& q, const Database& db,
                     std::uint32_t k, CombinedDecision* decision = nullptr);

}  // namespace cqa

#endif  // CQA_ALGO_COMBINED_H_
