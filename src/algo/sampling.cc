#include "algo/sampling.h"

#include "data/repair.h"
#include "query/eval.h"

namespace cqa {

SamplingResult SampleRepairs(const ConjunctiveQuery& q, const Database& db,
                             std::uint64_t samples, std::uint64_t seed,
                             bool stop_at_falsifier) {
  SamplingResult result;
  RepairSampler sampler(db, seed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    Repair r = sampler.Sample();
    ++result.samples;
    if (SatisfiesRepair(q, db, r)) {
      ++result.satisfying;
    } else {
      result.found_falsifier = true;
      if (stop_at_falsifier) break;
    }
  }
  return result;
}

}  // namespace cqa
