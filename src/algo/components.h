// q-connected components (Proposition 10.6).
//
// Two blocks B, B' of a database D are q-connected if (B, B') is in the
// reflexive-symmetric-transitive closure of "some a in B, b in B' form a
// solution q{ab}". The partition of D into q-connected components C1..Cn
// satisfies:
//   (1) if q is 2way-determined with no fork-tripath, every Ci either
//       contains no tripath or is a clique-database for q;
//   (2) D |= certain(q) iff some Ci |= certain(q);
//   (3) Ci |= Cert_k(q) implies D |= Cert_k(q);
//   (4) D |= matching(q) implies Ci |= matching(q) for all i.
// This is the decomposition behind Theorem 10.5; we expose it both for the
// component-wise solver and for property tests of (2)-(4).

#ifndef CQA_ALGO_COMPONENTS_H_
#define CQA_ALGO_COMPONENTS_H_

#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// The q-connected partition: for each component, the sub-database plus
/// the original FactIds it came from.
struct QConnectedComponent {
  Database db;
  std::vector<FactId> original_facts;  ///< Parallel to db's fact ids.

  QConnectedComponent() : db(Schema()) {}
};

/// Computes the q-connected components of db (two-atom queries).
/// Component sub-databases share the original element names, so solutions
/// and blocks are preserved verbatim.
std::vector<QConnectedComponent> QConnectedComponents(
    const ConjunctiveQuery& q, const Database& db);

/// Component-wise certain answering per the Theorem 10.5 proof shape:
/// answers true iff some component is certain, deciding each component
/// with Cert_k OR NOT matching. Exact under the same hypotheses as
/// CombinedCertain; sound in general.
bool ComponentwiseCertain(const ConjunctiveQuery& q, const Database& db,
                          std::uint32_t k);

}  // namespace cqa

#endif  // CQA_ALGO_COMPONENTS_H_
