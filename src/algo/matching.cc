#include "algo/matching.h"

#include <algorithm>
#include <vector>

#include "base/check.h"
#include "graph/hopcroft_karp.h"

namespace cqa {

bool MatchingAlgorithm(const PreparedDatabase& pdb, const SolutionGraph& sg,
                       MatchingStats* stats) {
  const Database& db = pdb.db();

  // Identify which components are quasi-cliques.
  auto groups = sg.components.Groups();
  std::vector<bool> is_quasi(groups.size(), false);
  bool all_quasi = true;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    is_quasi[c] = IsQuasiClique(sg, db, groups[c]);
    all_quasi = all_quasi && is_quasi[c];
  }

  // V2 node ids: one node per quasi-clique component; one node per fact in
  // a non-quasi-clique component.
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> component_node(groups.size(), kNone);
  std::vector<std::uint32_t> fact_node(db.NumFacts(), kNone);
  std::uint32_t num_v2 = 0;
  for (std::size_t c = 0; c < groups.size(); ++c) {
    if (is_quasi[c]) {
      component_node[c] = num_v2++;
    } else {
      for (std::uint32_t f : groups[c]) fact_node[f] = num_v2++;
    }
  }

  auto clique_node_of = [&](FactId f) -> std::uint32_t {
    std::uint32_t c = sg.components.component_of[f];
    return is_quasi[c] ? component_node[c] : fact_node[f];
  };

  // H(D, q): blocks on the left, cliques on the right; edge iff the block
  // has a fact of the clique with no self-solution. Duplicate edges are
  // harmless for Hopcroft–Karp but we dedupe per block for efficiency.
  const auto& blocks = pdb.blocks();
  BipartiteGraph h(blocks.size(), num_v2);
  for (BlockId b = 0; b < blocks.size(); ++b) {
    std::vector<std::uint32_t> targets;
    for (FactId f : blocks[b].facts) {
      if (sg.solutions.self[f]) continue;  // q(aa): fact unusable.
      targets.push_back(clique_node_of(f));
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (std::uint32_t t : targets) h.AddEdge(static_cast<std::uint32_t>(b), t);
  }

  MatchingResult result = MaximumMatching(h);
  if (stats != nullptr) {
    stats->num_cliques = num_v2;
    stats->matching_size = result.size;
    stats->clique_database = all_quasi;
  }
  return result.SaturatesLeft();
}

bool MatchingAlgorithm(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                       MatchingStats* stats) {
  CQA_CHECK(q.NumAtoms() == 2);
  return MatchingAlgorithm(pdb, BuildSolutionGraph(q, pdb), stats);
}

bool MatchingAlgorithm(const ConjunctiveQuery& q, const Database& db,
                       MatchingStats* stats) {
  return MatchingAlgorithm(q, PreparedDatabase(db), stats);
}

}  // namespace cqa
