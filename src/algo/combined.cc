#include "algo/combined.h"

#include <utility>

namespace cqa {

std::uint64_t TheoreticalCertKBound(std::uint32_t key_len) {
  // κ = l^l (κ = 1 for l ∈ {0, 1}).
  std::uint64_t kappa = 1;
  for (std::uint32_t i = 0; i < key_len; ++i) kappa *= key_len;
  if (kappa == 0) kappa = 1;
  // 2^(2κ+1) + κ - 1, saturating at 2^63 to avoid overflow for large keys.
  std::uint64_t exponent = 2 * kappa + 1;
  std::uint64_t power = exponent >= 63 ? (1ULL << 63) : (1ULL << exponent);
  return power + kappa - 1;
}

bool CombinedCertain(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                     std::uint32_t k, CombinedDecision* decision) {
  // One ComputeSolutions pass feeds both components; the graph's edge list
  // and connected components are only materialized if Cert_k says no.
  SolutionSet solutions = ComputeSolutions(q, pdb);
  if (CertK(q, pdb, solutions, k)) {
    if (decision != nullptr) *decision = CombinedDecision::kCertK;
    return true;
  }
  SolutionGraph sg = BuildSolutionGraph(std::move(solutions), pdb.NumFacts());
  if (NotMatchingCertain(pdb, sg)) {
    if (decision != nullptr) *decision = CombinedDecision::kNotMatching;
    return true;
  }
  if (decision != nullptr) *decision = CombinedDecision::kNotCertain;
  return false;
}

bool CombinedCertain(const ConjunctiveQuery& q, const Database& db,
                     std::uint32_t k, CombinedDecision* decision) {
  return CombinedCertain(q, PreparedDatabase(db), k, decision);
}

}  // namespace cqa
