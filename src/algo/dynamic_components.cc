#include "algo/dynamic_components.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace cqa {
namespace {

/// splitmix64 finalizer: decorrelates FactHash values before the
/// commutative combines so that sum/xor over members behave like
/// independent digests.
std::uint64_t Mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void ComponentFingerprint::Add(const Database& db, FactId f) {
  FactRef fact = db.fact(f);
  std::uint64_t h = fact.relation;
  for (ElementId el : fact.args) {
    const std::string& name = db.elements().Name(el);
    h = HashCombine(h, HashRange(name.begin(), name.end()));
  }
  sum += Mix(h + 0x9e3779b97f4a7c15ULL);
  xr ^= Mix(h + 0x7f4a7c159e3779b9ULL);
  ++count;
}

void ComponentFingerprint::Merge(const ComponentFingerprint& other) {
  sum += other.sum;
  xr ^= other.xr;
  count += other.count;
}

DynamicComponents::DynamicComponents(const ConjunctiveQuery& q,
                                     const PreparedDatabase& pdb)
    : q_(&q), pdb_(&pdb), binding_(q, pdb.db()) {
  CQA_CHECK(q.NumAtoms() == 2);
  const Database& db = pdb.db();
  parent_.resize(db.NumFacts());
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    parent_[f] = f;
    if (db.alive(f)) MakeSingleton(f);
  }
  for (const Block& block : db.blocks()) {
    for (FactId f : block.facts) Union(block.facts.front(), f);
  }
  // One full hash join at construction; every later delta is absorbed by
  // the single-fact probe (insert) or a component-local join (delete).
  for (const auto& [a, b] : ComputeSolutions(*q_, pdb).pairs) Union(a, b);
}

FactId DynamicComponents::Find(FactId f) {
  FactId root = f;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[f] != root) {
    FactId next = parent_[f];
    parent_[f] = root;
    f = next;
  }
  return root;
}

void DynamicComponents::MakeSingleton(FactId f) {
  parent_[f] = f;
  Component& comp = components_[f];
  comp.members.assign(1, f);
  comp.min_member = f;
  comp.fingerprint = ComponentFingerprint();
  comp.fingerprint.Add(pdb_->db(), f);
}

void DynamicComponents::Union(FactId a, FactId b) {
  FactId ra = Find(a);
  FactId rb = Find(b);
  if (ra == rb) return;
  // Splice the smaller member list into the larger: total union work over
  // any merge sequence stays O(n log n).
  if (components_[ra].members.size() < components_[rb].members.size()) {
    std::swap(ra, rb);
  }
  Component& big = components_[ra];
  Component& small = components_[rb];
  parent_[rb] = ra;
  big.members.insert(big.members.end(), small.members.begin(),
                     small.members.end());
  big.min_member = std::min(big.min_member, small.min_member);
  big.fingerprint.Merge(small.fingerprint);
  components_.erase(rb);
}

void DynamicComponents::ConnectWithinBlockAndSolutions(FactId f) {
  // The database may be *ahead* of this partition: deltas are queued and
  // flushed in mutation order (engine/incremental.h), so while f's insert
  // flushes, later-inserted facts already sit in the block lists and
  // solution indexes with ids >= parent_.size(). Skip them — each will
  // union with its own (by then known) blockmates and partners when its
  // own delta flushes, and both relations are symmetric, so no edge is
  // lost. All *known* blockmates are already mutually unioned (blocks are
  // cliques, maintained inductively), so one union per block suffices.
  for (FactId g : pdb_->blocks()[pdb_->BlockOf(f)].facts) {
    if (g < parent_.size()) {
      Union(f, g);
      break;
    }
  }
  for (FactId g : SolutionPartners(*q_, binding_, *pdb_, f)) {
    if (g < parent_.size()) Union(f, g);
  }
}

void DynamicComponents::OnInsert(FactId f) {
  CQA_CHECK(f == parent_.size());  // Ids are append-only.
  parent_.push_back(f);
  MakeSingleton(f);
  // A fact inserted and removed by later-queued deltas is already
  // tombstoned here: register it as a singleton (its tuple is still
  // readable) and let its own OnRemove erase it; probing the block
  // partition for a dead fact is meaningless.
  if (pdb_->db().alive(f)) ConnectWithinBlockAndSolutions(f);
}

void DynamicComponents::OnRemove(FactId f) {
  CQA_CHECK(f < parent_.size());
  FactId root = Find(f);
  std::vector<FactId> members = std::move(components_[root].members);
  components_.erase(root);

  // Deletion can split the component; repartition its survivors locally.
  // Resetting every survivor's parent also clears any compression chain
  // that ran through f.
  for (FactId m : members) {
    if (m != f) MakeSingleton(m);
  }
  const Database& db = pdb_->db();
  for (FactId m : members) {
    if (m == f) continue;
    // Members tombstoned by later-queued deltas have no block slot any
    // more; they stay singletons until their own OnRemove flushes. An
    // alive member's block list can contain later-inserted (unknown)
    // ids — union with a known blockmate (the clique needs only one).
    if (!db.alive(m)) continue;
    for (FactId g : db.blocks()[db.BlockOf(m)].facts) {
      if (g < parent_.size()) {
        Union(m, g);
        break;
      }
    }
  }
  // Dead members (tombstoned by later-queued deltas) sit the join out:
  // they have no index entries, and their own OnRemove erases them.
  std::vector<FactId> survivors;
  survivors.reserve(members.size() - 1);
  for (FactId m : members) {
    if (m != f && db.alive(m)) survivors.push_back(m);
  }
  for (const auto& [a, b] : ComputeSolutionsAmong(*q_, db, survivors).pairs) {
    Union(a, b);
  }
}

void DynamicComponents::ApplyRemap(const FactIdRemap& remap) {
  CQA_CHECK(parent_.size() == remap.old_slots);
  // Alive facts' parent chains pass only through alive facts (dead slots
  // are reset to singletons at construction and survivors re-rooted on
  // every OnRemove), so every alive parent pointer remaps cleanly.
  std::vector<FactId> parent(remap.new_slots);
  for (FactId old = 0; old < remap.old_slots; ++old) {
    FactId nid = remap.Apply(old);
    if (nid == Database::kNoFact) continue;
    FactId new_parent = remap.Apply(parent_[old]);
    CQA_CHECK(new_parent != Database::kNoFact);
    parent[nid] = new_parent;
  }
  parent_ = std::move(parent);

  std::unordered_map<FactId, Component> components;
  components.reserve(components_.size());
  for (auto& [root, comp] : components_) {
    Component moved = std::move(comp);
    for (FactId& m : moved.members) m = remap.Apply(m);
    moved.min_member = remap.Apply(moved.min_member);
    components.emplace(remap.Apply(root), std::move(moved));
  }
  components_ = std::move(components);
}

}  // namespace cqa
