#include "algo/trivial.h"

#include "base/check.h"
#include "query/eval.h"

namespace cqa {

bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const PreparedDatabase& pdb) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(reason != TrivialReason::kNotTrivial);
  const Database& db = pdb.db();
  RelationBinding binding(q, db);

  if (reason == TrivialReason::kEqualKeys) {
    // Over consistent databases both atoms must be matched by the same
    // fact, so a repair satisfies q iff it contains a fact a with q(a a).
    // A falsifying repair avoids such facts; it exists iff every block has
    // a fact without a self-solution.
    for (const Block& block : pdb.blocks()) {
      bool all_self = true;
      for (FactId f : block.facts) {
        if (!IsSolution(q, binding, db, f, f)) {
          all_self = false;
          break;
        }
      }
      if (all_self) return true;
    }
    return false;
  }

  // Homomorphism case: q is equivalent to one of its atoms; find which.
  for (std::size_t i = 0; i < 2; ++i) {
    if (!FindHomomorphism(q, AtomSubquery(q, i)).has_value()) continue;
    const QueryAtom& atom = q.atoms()[i];
    RelationId rel = binding.Resolve(atom.relation);
    // Certain iff some block of the atom's relation consists entirely of
    // facts matching its repeated-variable pattern; only those blocks are
    // visited, via the prepared per-relation block index.
    for (BlockId b : pdb.BlocksOf(rel)) {
      const Block& block = pdb.blocks()[b];
      bool all_match = true;
      for (FactId f : block.facts) {
        if (!MatchesPattern(atom, db.fact(f))) {
          all_match = false;
          break;
        }
      }
      if (all_match) return true;
    }
    return false;
  }
  CQA_CHECK_MSG(false, "trivial reason does not match the query");
}

bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const Database& db) {
  return TrivialCertain(q, reason, PreparedDatabase(db));
}

}  // namespace cqa
