#include "algo/trivial.h"

#include "base/check.h"
#include "query/eval.h"

namespace cqa {
namespace {

/// Which one-atom residue decides the query. A repair satisfies a trivial
/// q iff it contains a residue fact, so certain(q) iff some block of the
/// residue's relation consists entirely of residue facts, and a
/// falsifying repair is any per-block choice of a non-residue fact.
struct Residue {
  /// Equal-keys case: the residue is the self-solution pattern q(a a).
  bool self_solution = false;
  /// Homomorphism case: the residue is this atom's repeated-variable
  /// pattern (null in the equal-keys case).
  const QueryAtom* atom = nullptr;
  /// Database relation the residue lives in; kAllRelations for the
  /// equal-keys case (whose blocks() scan is relation-agnostic).
  RelationId relation = kAllRelations;

  static constexpr RelationId kAllRelations = 0xffffffffu;
};

Residue ResidueOf(const ConjunctiveQuery& q, TrivialReason reason,
                  const RelationBinding& binding) {
  Residue residue;
  if (reason == TrivialReason::kEqualKeys) {
    // Over consistent databases both atoms must be matched by the same
    // fact, so a repair satisfies q iff it contains a fact a with q(a a).
    residue.self_solution = true;
    return residue;
  }
  // Homomorphism case: q is equivalent to one of its atoms; find which.
  for (std::size_t i = 0; i < 2; ++i) {
    if (!FindHomomorphism(q, AtomSubquery(q, i)).has_value()) continue;
    residue.atom = &q.atoms()[i];
    residue.relation = binding.Resolve(residue.atom->relation);
    return residue;
  }
  CQA_CHECK_MSG(false, "trivial reason does not match the query");
}

bool Holds(const Residue& residue, const ConjunctiveQuery& q,
           const RelationBinding& binding, const Database& db, FactId f) {
  if (residue.self_solution) return IsSolution(q, binding, db, f, f);
  return MatchesPattern(*residue.atom, db.fact(f));
}

/// Index within `block` of the first non-residue fact, or nullopt if the
/// block consists entirely of residue facts (the certain case).
std::optional<std::uint32_t> NonResidueChoice(const Residue& residue,
                                              const ConjunctiveQuery& q,
                                              const RelationBinding& binding,
                                              const Database& db,
                                              const Block& block) {
  for (std::uint32_t idx = 0; idx < block.facts.size(); ++idx) {
    if (!Holds(residue, q, binding, db, block.facts[idx])) return idx;
  }
  return std::nullopt;
}

/// The blocks that can be all-residue: every block in the equal-keys
/// case, only the residue relation's blocks (via the prepared
/// per-relation index) in the homomorphism case.
std::vector<BlockId> CandidateBlocks(const Residue& residue,
                                     const PreparedDatabase& pdb) {
  if (residue.relation != Residue::kAllRelations) {
    return pdb.BlocksOf(residue.relation);
  }
  std::vector<BlockId> all(pdb.blocks().size());
  for (BlockId b = 0; b < all.size(); ++b) all[b] = b;
  return all;
}

}  // namespace

bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const PreparedDatabase& pdb) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(reason != TrivialReason::kNotTrivial);
  const Database& db = pdb.db();
  RelationBinding binding(q, db);
  Residue residue = ResidueOf(q, reason, binding);
  for (BlockId b : CandidateBlocks(residue, pdb)) {
    if (!NonResidueChoice(residue, q, binding, db, pdb.blocks()[b])
             .has_value()) {
      return true;
    }
  }
  return false;
}

std::optional<Repair> TrivialFalsifyingRepair(const ConjunctiveQuery& q,
                                              TrivialReason reason,
                                              const PreparedDatabase& pdb) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(reason != TrivialReason::kNotTrivial);
  const Database& db = pdb.db();
  RelationBinding binding(q, db);
  Residue residue = ResidueOf(q, reason, binding);
  // Blocks outside the residue's relation cannot satisfy q no matter
  // what they keep; any choice (0) falsifies there.
  std::vector<std::uint32_t> choice(pdb.blocks().size(), 0);
  for (BlockId b : CandidateBlocks(residue, pdb)) {
    std::optional<std::uint32_t> idx =
        NonResidueChoice(residue, q, binding, db, pdb.blocks()[b]);
    // An all-residue block means every repair satisfies q: certain.
    if (!idx.has_value()) return std::nullopt;
    choice[b] = *idx;
  }
  return Repair(&pdb.db(), std::move(choice));
}

bool TrivialCertain(const ConjunctiveQuery& q, TrivialReason reason,
                    const Database& db) {
  return TrivialCertain(q, reason, PreparedDatabase(db));
}

}  // namespace cqa
