// Monte Carlo repair sampling: a probabilistic baseline for certain
// answering and a tool for profiling workloads ("how often does a random
// repair satisfy q?").
//
// Sampling can only *refute* certainty: a sampled falsifying repair proves
// D |/= certain(q); absence of one after many samples is evidence, not
// proof. The benchmarks use the estimator to characterize generated
// workloads, and the tests use it as a one-sided cross-check against the
// exact algorithms.

#ifndef CQA_ALGO_SAMPLING_H_
#define CQA_ALGO_SAMPLING_H_

#include <cstdint>

#include "data/database.h"
#include "query/query.h"

namespace cqa {

struct SamplingResult {
  std::uint64_t samples = 0;
  std::uint64_t satisfying = 0;       ///< Samples where the repair |= q.
  bool found_falsifier = false;       ///< Proof that q is not certain.

  double SatisfyingFraction() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(satisfying) /
                              static_cast<double>(samples);
  }
};

/// Draws `samples` uniform repairs and evaluates q on each. Stops early at
/// the first falsifier when `stop_at_falsifier` is set.
SamplingResult SampleRepairs(const ConjunctiveQuery& q, const Database& db,
                             std::uint64_t samples, std::uint64_t seed,
                             bool stop_at_falsifier = false);

}  // namespace cqa

#endif  // CQA_ALGO_SAMPLING_H_
