// The greedy fixpoint algorithm Cert_k(q) of Section 5 (from [3], Figueira,
// Padmanabha, Segoufin, Sirangelo, ICDT 2023).
//
// Delta_k(q, D) is the least set of k-sets (sets of <= k facts extendable to
// a repair) closed under:
//   (init)  every k-set S with S |= q is in Delta_k;
//   (step)  S is added whenever some block B of D satisfies: for every fact
//           u in B there is S' subset of (S union {u}) with S' in Delta_k.
// Cert_k(q) answers yes iff the empty set enters Delta_k. The invariant is
// that whenever S in Delta_k and S is contained in a repair r, then r |= q;
// hence Cert_k is a sound under-approximation of certain(q).
//
// Implementation: Delta_k is upward closed within k-sets, so we maintain
// only its subset-minimal members (an antichain). The inductive step is
// generative: for a block B = {u_1..u_m}, the minimal new sets are unions
// over i of (m_i \ {u_i}) for choices of minimal witnesses m_i *containing
// u_i* (a witness without u_i sits whole inside the union, which is then
// implied); we explore those unions with a DFS that prunes on size, block
// conflicts, and already-derived supersets. The fixpoint is driven by a
// worklist in the style of watched-literal propagation, not a
// scan-until-stable rescan loop: inserting a member (re-)enqueues exactly
// the blocks it intersects — the only blocks it can newly trigger — and a
// visited block splits its witness pieces into seen/unseen by insertion
// generation, skipping every union built purely from pieces already
// settled at its previous visit. This is exact (it derives a set iff the
// textbook fixpoint does) without materializing all O(n^k) k-sets and
// without revisiting blocks no new member touches.
//
// Correctness guarantees from the paper:
//   - Theorem 6.1: if key(A) ⊆ key(B) or vars(A)∩vars(B) ⊆ key(B)
//     (or symmetrically), Cert_2 == certain.
//   - Proposition 8.2: for 2way-determined q with no tripath,
//     Cert_k == certain for k = 2^(2κ+1)+κ-1, κ = l^l.
//   - Theorem 10.1: if q is 2way-determined and admits a triangle-tripath,
//     no Cert_k computes certain(q).

#ifndef CQA_ALGO_CERTK_H_
#define CQA_ALGO_CERTK_H_

#include <cstdint>
#include <vector>

#include "data/database.h"
#include "data/prepared.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {

/// Statistics from a Cert_k run.
struct CertKStats {
  std::uint64_t minimal_sets = 0;  ///< Antichain size at fixpoint.
  std::uint64_t rounds = 0;        ///< Fixpoint iterations.
};

/// Runs Cert_k(q) on a prepared database. Sound: a true answer implies
/// D |= certain(q). Two-atom queries only.
bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           std::uint32_t k, CertKStats* stats = nullptr);

/// As above with a precomputed solution set (callers that also run the
/// matching algorithm share one ComputeSolutions pass this way).
bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           const SolutionSet& solutions, std::uint32_t k,
           CertKStats* stats = nullptr);

/// Convenience overload preparing the database on the fly.
bool CertK(const ConjunctiveQuery& q, const Database& db, std::uint32_t k,
           CertKStats* stats = nullptr);

}  // namespace cqa

#endif  // CQA_ALGO_CERTK_H_
