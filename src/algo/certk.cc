#include "algo/certk.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "base/check.h"
#include "base/hash.h"
#include "query/eval.h"

namespace cqa {
namespace {

using FactSet = std::vector<FactId>;  // Sorted, unique.

FactSet SetMinus(const FactSet& s, FactId u) {
  FactSet out;
  out.reserve(s.size());
  for (FactId f : s) {
    if (f != u) out.push_back(f);
  }
  return out;
}

bool IsSubset(const FactSet& small, const FactSet& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

FactSet Union(const FactSet& a, const FactSet& b) {
  FactSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Antichain of subset-minimal derived sets, indexed for the worklist
/// fixpoint: members live in append-only slots stamped with the insertion
/// generation (so a block can split pieces into seen/unseen), and a
/// per-fact bucket maps each fact to the slots containing it. The bucket
/// serves two queries: Implies(s) scans only members whose *smallest* fact
/// lies in s (a subset's minimum is an element, so no member is missed and
/// each is visited once), and ForEachContaining(u) enumerates exactly the
/// members a block fact u can use as a witness piece. Removed members keep
/// their slot (alive_ goes false); bucket entries are filtered lazily.
class Antichain {
 public:
  /// Generation of the most recent insertion (0 before any).
  std::uint64_t generation() const { return gen_; }

  /// True if some member is a subset of s.
  bool Implies(const FactSet& s) const {
    if (has_empty_) return true;
    for (FactId f : s) {
      auto it = by_fact_.find(f);
      if (it == by_fact_.end()) continue;
      for (std::uint32_t slot : it->second) {
        if (!alive_[slot]) continue;
        const FactSet& m = slots_[slot];
        if (m.front() != f) continue;  // Visit each member at its min only.
        if (m.size() <= s.size() && IsSubset(m, s)) return true;
      }
    }
    return false;
  }

  /// Inserts s, removing members that become non-minimal. Returns false if
  /// s was already implied.
  bool Insert(const FactSet& s) {
    if (Implies(s)) return false;
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (alive_[slot] && IsSubset(s, slots_[slot])) {
        alive_[slot] = false;
        --alive_count_;
      }
    }
    std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
    for (FactId f : s) by_fact_[f].push_back(slot);
    slots_.push_back(s);
    alive_.push_back(true);
    slot_gen_.push_back(++gen_);
    ++alive_count_;
    if (s.empty()) has_empty_ = true;
    return true;
  }

  bool ContainsEmpty() const { return has_empty_; }

  std::uint64_t NumAlive() const { return alive_count_; }

  /// Calls fn(member, generation) for every live member containing u.
  template <typename Fn>
  void ForEachContaining(FactId u, Fn fn) const {
    auto it = by_fact_.find(u);
    if (it == by_fact_.end()) return;
    for (std::uint32_t slot : it->second) {
      if (alive_[slot]) fn(slots_[slot], slot_gen_[slot]);
    }
  }

 private:
  std::vector<FactSet> slots_;
  std::vector<char> alive_;
  std::vector<std::uint64_t> slot_gen_;
  std::unordered_map<FactId, std::vector<std::uint32_t>> by_fact_;
  std::uint64_t gen_ = 0;
  std::uint64_t alive_count_ = 0;
  bool has_empty_ = false;
};

/// Per-block conflict check: a k-set may contain at most one fact per block.
bool ExtendableToRepair(const PreparedDatabase& pdb, const FactSet& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (pdb.BlockOf(s[i]) == pdb.BlockOf(s[j])) return false;
    }
  }
  return true;
}

/// One candidate witness piece for a block fact: m \ {u} for a member m
/// containing u, tagged with whether m postdates the block's last visit.
struct Piece {
  FactSet set;
  bool is_new = false;
};

/// DFS over per-fact witness pieces for one block, accumulating the union.
/// pieces[i] lists candidate sets P = m \ {u_i} over antichain members m
/// *containing* u_i (a member without u_i would sit whole inside the
/// union, making it implied — such choices can never derive anything).
/// Delta discipline: a union of pieces all of which were already present
/// at the block's previous visit was derived-or-pruned then, so every
/// useful branch must pick at least one new piece; has_new_suffix_ lets
/// the search abandon a branch the moment that becomes impossible. Newly
/// derived sets are inserted into the antichain immediately — which both
/// strengthens the pruning for the remainder of the search and lets the
/// empty set abort everything — and reported to on_insert (the worklist
/// re-enqueues the blocks they touch).
template <typename OnInsert>
class BlockDeriver {
 public:
  BlockDeriver(const PreparedDatabase& pdb, std::uint32_t k,
               const std::vector<std::vector<Piece>>& pieces,
               Antichain* antichain, const OnInsert& on_insert)
      : pdb_(&pdb),
        k_(k),
        pieces_(&pieces),
        antichain_(antichain),
        on_insert_(&on_insert) {
    // has_new_suffix_[i]: some pieces_[j], j >= i, offers a new piece.
    has_new_suffix_.assign(pieces.size() + 1, false);
    for (std::size_t i = pieces.size(); i-- > 0;) {
      bool any_new = false;
      for (const Piece& p : pieces[i]) any_new = any_new || p.is_new;
      has_new_suffix_[i] = any_new || has_new_suffix_[i + 1];
    }
  }

  bool has_new() const { return has_new_suffix_[0]; }

  void Run() { Rec(0, FactSet{}, /*used_new=*/false); }

 private:
  void Rec(std::size_t fact_index, const FactSet& acc, bool used_new) {
    if (antichain_->ContainsEmpty()) return;
    if (acc.size() > k_) return;
    if (!used_new && !has_new_suffix_[fact_index]) return;  // All-old
                                                            // union: already
                                                            // settled last
                                                            // visit.
    if (antichain_->Implies(acc)) return;  // Already derivable; extensions
                                           // of acc are redundant.
    if (!ExtendableToRepair(*pdb_, acc)) return;
    if (fact_index == pieces_->size()) {
      if (antichain_->Insert(acc)) (*on_insert_)(acc);
      return;
    }
    for (const Piece& piece : (*pieces_)[fact_index]) {
      Rec(fact_index + 1, Union(acc, piece.set), used_new || piece.is_new);
    }
  }

  const PreparedDatabase* pdb_;
  std::uint32_t k_;
  const std::vector<std::vector<Piece>>* pieces_;
  Antichain* antichain_;
  const OnInsert* on_insert_;
  std::vector<bool> has_new_suffix_;
};

}  // namespace

bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           const SolutionSet& solutions, std::uint32_t k, CertKStats* stats) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(k >= 1);

  const auto& blocks = pdb.blocks();
  Antichain antichain;

  // Worklist of blocks that might derive something new: a block B can only
  // produce a fresh set from pieces m \ {u}, u in B, m a member containing
  // u — so B needs (re)visiting exactly when a new member intersects it.
  // Chaotic iteration over that trigger reaches the same least fixpoint as
  // the original scan-all-blocks-until-stable loop, without rescanning the
  // (typically vast) majority of blocks no new member touches.
  std::deque<BlockId> worklist;
  std::vector<char> in_queue(blocks.size(), 0);
  std::vector<std::uint64_t> last_seen_gen(blocks.size(), 0);
  auto enqueue_touched = [&](const FactSet& s) {
    for (FactId f : s) {
      BlockId b = pdb.BlockOf(f);
      if (!in_queue[b]) {
        in_queue[b] = 1;
        worklist.push_back(b);
      }
    }
  };

  // (init): minimal supports of solutions. A solution (a, b) needs both
  // facts in the same repair, so pairs within one block (a != b) are
  // discarded.
  for (const auto& [a, b] : solutions.pairs) {
    if (a == b) {
      FactSet s{a};
      if (antichain.Insert(s)) enqueue_touched(s);
    } else if (pdb.BlockOf(a) != pdb.BlockOf(b)) {
      FactSet s = a < b ? FactSet{a, b} : FactSet{b, a};
      if (s.size() <= k && antichain.Insert(s)) enqueue_touched(s);
    }
  }

  std::uint64_t rounds = 0;  // Worklist pops == block visits.
  while (!worklist.empty() && !antichain.ContainsEmpty()) {
    BlockId b = worklist.front();
    worklist.pop_front();
    in_queue[b] = 0;
    ++rounds;
    const Block& block = blocks[b];
    // Members inserted while this block runs count as unseen next visit
    // (they re-enqueue b themselves if they intersect it).
    std::uint64_t gen_before = antichain.generation();

    // pieces[i]: for fact u_i of the block, m \ {u_i} over live members m
    // containing u_i, tagged new if m postdates this block's last visit.
    // Only ⊆-minimal pieces are kept (a non-minimal piece can only produce
    // superset candidates), sorted by size so small unions are explored
    // first. Minimality must not drop the is_new tag: when an old piece
    // dominates an equal-or-smaller new one, the surviving piece inherits
    // newness, or the delta pruning would skip a live branch.
    std::vector<std::vector<Piece>> pieces(block.facts.size());
    bool feasible = true;
    for (std::size_t i = 0; i < block.facts.size(); ++i) {
      FactId u = block.facts[i];
      std::vector<Piece>& out = pieces[i];
      antichain.ForEachContaining(
          u, [&](const FactSet& m, std::uint64_t gen) {
            Piece p{SetMinus(m, u), gen > last_seen_gen[b]};
            if (p.set.size() <= k) out.push_back(std::move(p));
          });
      if (out.empty()) {
        feasible = false;
        break;
      }
      std::sort(out.begin(), out.end(), [](const Piece& a, const Piece& c) {
        return a.set.size() != c.set.size() ? a.set.size() < c.set.size()
                                            : a.set < c.set;
      });
      // Merge duplicates (OR-ing newness) and drop dominated pieces,
      // OR-ing their newness into the dominating piece.
      std::vector<Piece> minimal;
      for (Piece& p : out) {
        bool dominated = false;
        for (Piece& q2 : minimal) {
          if (IsSubset(q2.set, p.set)) {
            q2.is_new = q2.is_new || p.is_new;
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.push_back(std::move(p));
      }
      pieces[i] = std::move(minimal);
    }
    last_seen_gen[b] = gen_before;
    if (!feasible) continue;

    BlockDeriver deriver(pdb, k, pieces, &antichain, enqueue_touched);
    if (!deriver.has_new()) continue;  // Nothing unseen: visit is a no-op.
    deriver.Run();
  }

  if (stats != nullptr) {
    stats->minimal_sets = antichain.NumAlive();
    stats->rounds = rounds;
  }
  return antichain.ContainsEmpty();
}

bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           std::uint32_t k, CertKStats* stats) {
  return CertK(q, pdb, ComputeSolutions(q, pdb), k, stats);
}

bool CertK(const ConjunctiveQuery& q, const Database& db, std::uint32_t k,
           CertKStats* stats) {
  return CertK(q, PreparedDatabase(db), k, stats);
}

}  // namespace cqa
