#include "algo/certk.h"

#include <algorithm>
#include <unordered_set>

#include "base/check.h"
#include "base/hash.h"
#include "query/eval.h"

namespace cqa {
namespace {

using FactSet = std::vector<FactId>;  // Sorted, unique.

FactSet SetMinus(const FactSet& s, FactId u) {
  FactSet out;
  out.reserve(s.size());
  for (FactId f : s) {
    if (f != u) out.push_back(f);
  }
  return out;
}

bool IsSubset(const FactSet& small, const FactSet& big) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

FactSet Union(const FactSet& a, const FactSet& b) {
  FactSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Antichain of subset-minimal derived sets, with a hash index for
/// duplicate suppression.
class Antichain {
 public:
  /// True if some member is a subset of s.
  bool Implies(const FactSet& s) const {
    for (const FactSet& m : members_) {
      if (m.size() <= s.size() && IsSubset(m, s)) return true;
    }
    return false;
  }

  /// Inserts s, removing members that become non-minimal. Returns false if
  /// s was already implied.
  bool Insert(const FactSet& s) {
    if (Implies(s)) return false;
    members_.erase(
        std::remove_if(members_.begin(), members_.end(),
                       [&](const FactSet& m) { return IsSubset(s, m); }),
        members_.end());
    members_.push_back(s);
    return true;
  }

  bool ContainsEmpty() const {
    return members_.size() == 1 && members_[0].empty();
  }

  const std::vector<FactSet>& members() const { return members_; }

 private:
  std::vector<FactSet> members_;
};

/// Per-block conflict check: a k-set may contain at most one fact per block.
bool ExtendableToRepair(const PreparedDatabase& pdb, const FactSet& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      if (pdb.BlockOf(s[i]) == pdb.BlockOf(s[j])) return false;
    }
  }
  return true;
}

/// DFS over per-fact witness pieces for one block, accumulating the union.
/// pieces[i] lists candidate sets P with P ⊆ S ∪ {u_i} ⇔ P \ {u_i} ⊆ S;
/// we build S as the union of one piece per fact. Newly derived sets are
/// inserted into the antichain immediately, which both strengthens the
/// pruning for the remainder of the search and lets the empty set abort
/// everything.
class BlockDeriver {
 public:
  BlockDeriver(const PreparedDatabase& pdb, std::uint32_t k,
               const std::vector<std::vector<FactSet>>& pieces,
               Antichain* antichain, bool* changed)
      : pdb_(&pdb),
        k_(k),
        pieces_(&pieces),
        antichain_(antichain),
        changed_(changed) {}

  void Run() { Rec(0, FactSet{}); }

 private:
  void Rec(std::size_t fact_index, const FactSet& acc) {
    if (antichain_->ContainsEmpty()) return;
    if (acc.size() > k_) return;
    if (antichain_->Implies(acc)) return;  // Already derivable; extensions
                                           // of acc are redundant.
    if (!ExtendableToRepair(*pdb_, acc)) return;
    if (fact_index == pieces_->size()) {
      if (antichain_->Insert(acc)) *changed_ = true;
      return;
    }
    for (const FactSet& piece : (*pieces_)[fact_index]) {
      Rec(fact_index + 1, Union(acc, piece));
    }
  }

  const PreparedDatabase* pdb_;
  std::uint32_t k_;
  const std::vector<std::vector<FactSet>>* pieces_;
  Antichain* antichain_;
  bool* changed_;
};

}  // namespace

bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           const SolutionSet& solutions, std::uint32_t k, CertKStats* stats) {
  CQA_CHECK(q.NumAtoms() == 2);
  CQA_CHECK(k >= 1);

  Antichain antichain;

  // (init): minimal supports of solutions. A solution (a, b) needs both
  // facts in the same repair, so pairs within one block (a != b) are
  // discarded.
  for (const auto& [a, b] : solutions.pairs) {
    if (a == b) {
      antichain.Insert(FactSet{a});
    } else if (pdb.BlockOf(a) != pdb.BlockOf(b)) {
      FactSet s = a < b ? FactSet{a, b} : FactSet{b, a};
      if (s.size() <= k) antichain.Insert(s);
    }
  }

  const auto& blocks = pdb.blocks();
  bool changed = true;
  std::uint64_t rounds = 0;
  while (changed && !antichain.ContainsEmpty()) {
    changed = false;
    ++rounds;
    for (const Block& block : blocks) {
      // pieces[i]: for fact u_i of the block, all m \ {u_i} over minimal
      // derived sets m. Only ⊆-minimal pieces are kept (a non-minimal
      // piece can only produce superset candidates), sorted by size so
      // small unions are explored first.
      std::vector<std::vector<FactSet>> pieces(block.facts.size());
      bool feasible = true;
      for (std::size_t i = 0; i < block.facts.size(); ++i) {
        FactId u = block.facts[i];
        for (const FactSet& m : antichain.members()) {
          FactSet piece = SetMinus(m, u);
          if (piece.size() > k) continue;
          pieces[i].push_back(std::move(piece));
        }
        if (pieces[i].empty()) {
          feasible = false;
          break;
        }
        std::sort(pieces[i].begin(), pieces[i].end(),
                  [](const FactSet& a, const FactSet& b) {
                    return a.size() != b.size() ? a.size() < b.size()
                                                : a < b;
                  });
        pieces[i].erase(std::unique(pieces[i].begin(), pieces[i].end()),
                        pieces[i].end());
        // Minimality filter: earlier (smaller) pieces dominate supersets.
        std::vector<FactSet> minimal;
        for (const FactSet& p : pieces[i]) {
          bool dominated = false;
          for (const FactSet& q2 : minimal) {
            if (IsSubset(q2, p)) {
              dominated = true;
              break;
            }
          }
          if (!dominated) minimal.push_back(p);
        }
        pieces[i] = std::move(minimal);
      }
      if (!feasible) continue;

      BlockDeriver(pdb, k, pieces, &antichain, &changed).Run();
      if (antichain.ContainsEmpty()) break;
    }
  }

  if (stats != nullptr) {
    stats->minimal_sets = antichain.members().size();
    stats->rounds = rounds;
  }
  return antichain.ContainsEmpty();
}

bool CertK(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
           std::uint32_t k, CertKStats* stats) {
  return CertK(q, pdb, ComputeSolutions(q, pdb), k, stats);
}

bool CertK(const ConjunctiveQuery& q, const Database& db, std::uint32_t k,
           CertKStats* stats) {
  return CertK(q, PreparedDatabase(db), k, stats);
}

}  // namespace cqa
