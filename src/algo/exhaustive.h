// Exact certain answering by searching for a falsifying repair.
//
// certain(q) is in coNP: D |= certain(q) iff no repair of D falsifies q.
// For two-atom queries a repair falsifies q iff it selects no self-solution
// fact and no pair of facts forming a solution — i.e. the selected facts are
// an independent set of the solution graph avoiding self-solution facts.
// ExhaustiveCertain searches for such a selection with backtracking and
// forward pruning; CertainByEnumeration iterates all repairs and is used to
// cross-check the backtracking solver in tests.
//
// Both are exponential in the worst case (certain(q) is coNP-complete for
// some q; Theorems 4.2 and 9.1) and serve as the exact baseline against
// which all polynomial-time algorithms are validated.

#ifndef CQA_ALGO_EXHAUSTIVE_H_
#define CQA_ALGO_EXHAUSTIVE_H_

#include <cstdint>
#include <optional>

#include "data/database.h"
#include "data/prepared.h"
#include "data/repair.h"
#include "query/query.h"
#include "query/solution_graph.h"

namespace cqa {

/// Statistics from a falsifier search.
struct ExhaustiveStats {
  std::uint64_t nodes_explored = 0;  ///< Backtracking nodes visited.
};

/// Exact: true iff q holds in every repair of the prepared database.
/// Two-atom queries only.
bool ExhaustiveCertain(const ConjunctiveQuery& q, const PreparedDatabase& pdb,
                       ExhaustiveStats* stats = nullptr);

/// As above with a prebuilt solution graph.
bool ExhaustiveCertain(const PreparedDatabase& pdb, const SolutionGraph& sg,
                       ExhaustiveStats* stats = nullptr);

/// Convenience overload preparing the database on the fly.
bool ExhaustiveCertain(const ConjunctiveQuery& q, const Database& db,
                       ExhaustiveStats* stats = nullptr);

/// Exact by brute-force repair enumeration; any conjunctive query. CHECKs
/// that the number of repairs is at most `max_repairs`.
bool CertainByEnumeration(const ConjunctiveQuery& q, const Database& db,
                          double max_repairs = 1e7);

/// The witness form of ExhaustiveCertain: a repair of pdb.db() that
/// falsifies q, or nullopt iff q is certain. The same backtracking search,
/// returning the selection it found instead of discarding it.
std::optional<Repair> FindFalsifyingRepair(const ConjunctiveQuery& q,
                                           const PreparedDatabase& pdb,
                                           ExhaustiveStats* stats = nullptr);

/// As above with a prebuilt solution graph.
std::optional<Repair> FindFalsifyingRepair(const PreparedDatabase& pdb,
                                           const SolutionGraph& sg,
                                           ExhaustiveStats* stats = nullptr);

}  // namespace cqa

#endif  // CQA_ALGO_EXHAUSTIVE_H_
