// String interner mapping element names to dense 32-bit ids.
//
// All domain elements in a database are interned strings. The core
// algorithms only ever compare ids for equality; reductions (Section 4 and
// Section 9 of the paper) build structured element names like "(C1,s).x" or
// "<x@3,alpha>" and intern them here, so the core never needs to interpret
// element structure.

#ifndef CQA_BASE_INTERNER_H_
#define CQA_BASE_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cqa {

/// Dense id for an interned domain element.
using ElementId = std::uint32_t;

/// Bidirectional map between element names and dense ids.
///
/// Ids are assigned consecutively from 0 in insertion order, which keeps
/// derived structures (databases, union-find domains) compact.
class Interner {
 public:
  Interner() = default;

  /// Returns the id for `name`, interning it if new.
  ElementId Intern(std::string_view name);

  /// Returns the id for `name` or `kNotFound` if it was never interned.
  ElementId Find(std::string_view name) const;

  /// Returns the name for `id`. Precondition: id < size().
  const std::string& Name(ElementId id) const;

  /// Number of distinct interned elements.
  std::size_t size() const { return names_.size(); }

  /// Creates a fresh element guaranteed distinct from all existing ones.
  /// The name is `prefix` followed by a uniquifying counter.
  ElementId Fresh(std::string_view prefix);

  static constexpr ElementId kNotFound = 0xffffffffu;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ElementId> ids_;
  std::uint64_t fresh_counter_ = 0;
};

}  // namespace cqa

#endif  // CQA_BASE_INTERNER_H_
