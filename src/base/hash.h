// Hash utilities: combination and range hashing for small integer tuples.
//
// Key tuples and fact tuples are short vectors of 32-bit ids; we hash them
// with a simple multiplicative mix (FNV-ish with avalanche), which is fast
// and adequate for hash-map bucketing. Nothing here is cryptographic.

#ifndef CQA_BASE_HASH_H_
#define CQA_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cqa {

/// Mixes `value` into the running hash `seed` (boost::hash_combine style,
/// strengthened with a 64-bit avalanche step).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  std::uint64_t x = static_cast<std::uint64_t>(value) + 0x9e3779b97f4a7c15ULL +
                    (static_cast<std::uint64_t>(seed) << 6) + (seed >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(seed ^ x);
}

/// Hashes a contiguous range of integral values.
template <typename It>
std::size_t HashRange(It first, It last) {
  std::size_t h = 0x2545f4914f6cdd1dULL;
  for (; first != last; ++first) {
    h = HashCombine(h, static_cast<std::size_t>(*first));
  }
  return h;
}

/// Hash functor for std::vector of integral ids, usable as unordered_map key.
struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end());
  }
};

}  // namespace cqa

#endif  // CQA_BASE_HASH_H_
