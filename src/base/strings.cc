#include "base/strings.h"

#include <cctype>

namespace cqa {

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(Trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto tail = [&](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '\'' || c == '.';
  };
  if (!head(s[0])) return false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!tail(s[i])) return false;
  }
  return true;
}

}  // namespace cqa
