// Union-find (disjoint set union) over dense integer domains.
//
// Used by the tripath searcher to maintain element-equality classes while
// unifying atom patterns, and by the query engine for connected components
// of equality constraints.

#ifndef CQA_BASE_UNION_FIND_H_
#define CQA_BASE_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace cqa {

/// Disjoint-set forest with union by rank and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0) { Reset(n); }

  /// Reinitializes to n singleton classes {0}, {1}, ..., {n-1}.
  void Reset(std::size_t n);

  /// Adds a fresh singleton class and returns its index.
  std::uint32_t Add();

  /// Returns the canonical representative of x's class.
  std::uint32_t Find(std::uint32_t x) const;

  /// Merges the classes of a and b; returns false if already merged.
  bool Union(std::uint32_t a, std::uint32_t b);

  /// True if a and b are in the same class.
  bool Same(std::uint32_t a, std::uint32_t b) const {
    return Find(a) == Find(b);
  }

  std::size_t size() const { return parent_.size(); }

  /// Number of distinct classes.
  std::size_t NumClasses() const { return num_classes_; }

 private:
  // parent_ is mutable so Find can do path halving while staying logically
  // const (the represented partition does not change).
  mutable std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t num_classes_ = 0;
};

}  // namespace cqa

#endif  // CQA_BASE_UNION_FIND_H_
