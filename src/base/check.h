// Lightweight assertion macros used throughout the library.
//
// CQA_CHECK is always on (it guards invariants whose violation would make
// answers meaningless, e.g. a fact with the wrong arity being inserted into
// a database). CQA_DCHECK compiles away in NDEBUG builds.

#ifndef CQA_BASE_CHECK_H_
#define CQA_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace cqa {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace cqa

#define CQA_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr)) ::cqa::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define CQA_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) ::cqa::CheckFailed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

#ifdef NDEBUG
#define CQA_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define CQA_DCHECK(expr) CQA_CHECK(expr)
#endif

#endif  // CQA_BASE_CHECK_H_
