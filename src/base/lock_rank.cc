#include "base/lock_rank.h"

#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define CQA_HAVE_EXECINFO 1
#endif
#endif

namespace cqa {

const char* ToString(LockRank rank) {
  switch (rank) {
    case LockRank::kSolverInternal:
      return "kSolverInternal";
    case LockRank::kVerdictShard:
      return "kVerdictShard";
    case LockRank::kComponents:
      return "kComponents";
    case LockRank::kWal:
      return "kWal";
    case LockRank::kDbEntry:
      return "kDbEntry";
    case LockRank::kServiceRegistry:
      return "kServiceRegistry";
  }
  return "<bad LockRank>";
}

namespace lock_rank_internal {
namespace {

constexpr int kMaxHeld = 16;    // Deeper nesting is itself a bug.
constexpr int kMaxFrames = 32;  // Acquisition-stack capture depth.

/// One held (or pending) lock acquisition, with the stack that made it.
struct HeldLock {
  LockRank rank = LockRank::kSolverInternal;
  const void* mutex = nullptr;
  void* frames[kMaxFrames];
  int num_frames = 0;
};

/// The per-thread stack of held ranks. A plain thread_local POD-ish
/// struct: no heap allocation on the lock path.
struct ThreadLockStack {
  HeldLock held[kMaxHeld];
  int depth = 0;
};

thread_local ThreadLockStack tls_stack;

void CaptureStack(HeldLock* held) {
#if defined(CQA_HAVE_EXECINFO)
  held->num_frames = backtrace(held->frames, kMaxFrames);
#else
  held->num_frames = 0;
#endif
}

void PrintStack(const HeldLock& held) {
#if defined(CQA_HAVE_EXECINFO)
  if (held.num_frames > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(held.frames),
                         held.num_frames, /*fd=*/2);
    return;
  }
#endif
  std::fprintf(stderr, "  <no acquisition stack captured>\n");
}

[[noreturn]] void RankInversion(const HeldLock& pending,
                                const HeldLock& blocker) {
  std::fprintf(stderr,
               "lock-rank inversion: acquiring %s (mutex %p) while holding "
               "%s (mutex %p)\n",
               ToString(pending.rank), pending.mutex, ToString(blocker.rank),
               blocker.mutex);
  std::fprintf(stderr, "acquisition stack of the violating lock (%s):\n",
               ToString(pending.rank));
  PrintStack(pending);
  std::fprintf(stderr, "acquisition stack of the held lock (%s):\n",
               ToString(blocker.rank));
  PrintStack(blocker);
  std::abort();
}

}  // namespace

void PushRank(LockRank rank, const void* mutex) {
  ThreadLockStack& stack = tls_stack;
  if (stack.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock-rank: thread holds %d ranked locks at once "
                 "(acquiring %s, mutex %p) — runaway nesting\n",
                 stack.depth, ToString(rank), mutex);
    std::abort();
  }
  HeldLock& pending = stack.held[stack.depth];
  pending.rank = rank;
  pending.mutex = mutex;
  CaptureStack(&pending);
  // Strictly-decreasing discipline: every held rank must be above the one
  // being acquired. Equal ranks never nest (same-rank locks — the shard
  // locks, the solver-map lock — are taken one at a time by design), so
  // equality is an inversion too.
  for (int i = 0; i < stack.depth; ++i) {
    if (static_cast<int>(stack.held[i].rank) <= static_cast<int>(rank)) {
      RankInversion(pending, stack.held[i]);
    }
  }
  ++stack.depth;
}

void PopRank(LockRank rank, const void* mutex) {
  ThreadLockStack& stack = tls_stack;
  // Match by address from the top: unlock order is normally LIFO, but a
  // manually managed unique_lock may release out of order.
  for (int i = stack.depth - 1; i >= 0; --i) {
    if (stack.held[i].mutex != mutex) continue;
    for (int j = i; j + 1 < stack.depth; ++j) stack.held[j] = stack.held[j + 1];
    --stack.depth;
    return;
  }
  std::fprintf(stderr,
               "lock-rank: releasing %s (mutex %p) this thread does not "
               "hold\n",
               ToString(rank), mutex);
  std::abort();
}

int HeldDepth() { return tls_stack.depth; }

}  // namespace lock_rank_internal
}  // namespace cqa
