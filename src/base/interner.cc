#include "base/interner.h"

#include "base/check.h"

namespace cqa {

ElementId Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  ElementId id = static_cast<ElementId>(names_.size());
  CQA_CHECK_MSG(id != kNotFound, "interner overflow");
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

ElementId Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& Interner::Name(ElementId id) const {
  CQA_CHECK(id < names_.size());
  return names_[id];
}

ElementId Interner::Fresh(std::string_view prefix) {
  for (;;) {
    std::string candidate =
        std::string(prefix) + "#" + std::to_string(fresh_counter_++);
    if (ids_.find(candidate) == ids_.end()) return Intern(candidate);
  }
}

}  // namespace cqa
