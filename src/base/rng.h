// Deterministic random number generation for workload generators and tests.
//
// We use splitmix64: tiny, fast, and fully reproducible across platforms
// (std::mt19937 distributions are not guaranteed identical across standard
// library implementations, which would make recorded experiment outputs
// machine-dependent).

#ifndef CQA_BASE_RNG_H_
#define CQA_BASE_RNG_H_

#include <cstdint>

#include "base/check.h"

namespace cqa {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t Below(std::uint64_t bound) {
    CQA_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias; bias is irrelevant for our
    // workloads but cheap to eliminate.
    std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    CQA_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli with probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace cqa

#endif  // CQA_BASE_RNG_H_
