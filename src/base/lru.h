// LruCache: a size- and byte-bounded least-recently-used map.
//
// The storage lifecycle refactor bounds every cache that used to grow
// without limit (the per-component verdict cache in engine/incremental.h,
// the per-query solver map in api/service.h) with this one policy: each
// entry carries a caller-supplied byte estimate, Find refreshes recency,
// and Insert evicts from the cold end until both configured caps hold.
// Hit/miss/eviction counters feed Service::Stats().
//
// Not internally synchronized: callers that share a cache across threads
// wrap it in their own mutex (engine/incremental.h shards the cache and
// gives every shard its own lock so disjoint components never contend).

#ifndef CQA_BASE_LRU_H_
#define CQA_BASE_LRU_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace cqa {

/// Caps for one LruCache. A zero cap means "unbounded" on that axis; the
/// default is fully unbounded so plain map semantics are opt-out.
struct CacheOptions {
  std::size_t max_entries = 0;  ///< 0 = no entry-count bound.
  std::size_t max_bytes = 0;    ///< 0 = no byte bound.
};

/// Point-in-time counters of one LruCache (or a sum over shards).
struct CacheCounters {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    entries += o.entries;
    bytes += o.bytes;
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(CacheOptions options = {}) : options_(options) {}

  /// Looks up `key`, refreshing its recency; counts a hit or a miss when
  /// `count` (callers re-probing under a fill lock pass false so one
  /// logical lookup is counted once). The returned pointer is valid until
  /// the next Insert (which may evict the entry) — copy out anything that
  /// must outlive further cache traffic.
  Value* Find(const Key& key, bool count = true) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      if (count) ++misses_;
      return nullptr;
    }
    if (count) ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  /// Records the outcome of a lookup the caller probed with count=false
  /// — for callers whose usability of a found value depends on more than
  /// presence (a present-but-unusable value is a miss to them).
  void CountLookup(bool hit) { hit ? ++hits_ : ++misses_; }

  /// Inserts (or overwrites) `key`, making it most-recent, then evicts
  /// cold entries until both caps hold (the fresh entry itself is never
  /// evicted, so a single oversized value still caches). Returns how many
  /// entries were evicted.
  std::size_t Insert(Key key, Value value, std::size_t value_bytes = 1) {
    return InsertWithEvictions(std::move(key), std::move(value), value_bytes,
                               [](const Key&, const Value&) {});
  }

  /// Insert variant for caches whose values carry state the owner must
  /// salvage before it is dropped (e.g. cumulative counters of an evicted
  /// warm solver): `on_evict(key, value)` runs for every entry evicted by
  /// this insertion, before the entry is destroyed.
  template <typename EvictFn>
  std::size_t InsertWithEvictions(Key key, Value value,
                                  std::size_t value_bytes, EvictFn on_evict) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = value_bytes;
      bytes_ += value_bytes;
      order_.splice(order_.begin(), order_, it->second);
      return EvictOverCaps(on_evict);
    }
    order_.push_front(Entry{key, std::move(value), value_bytes});
    index_.emplace(std::move(key), order_.begin());
    bytes_ += value_bytes;
    return EvictOverCaps(on_evict);
  }

  /// Visits every entry, most-recent first, as fn(key, value).
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Entry& e : order_) fn(e.key, e.value);
  }

  std::size_t size() const { return order_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  const CacheOptions& options() const { return options_; }

  CacheCounters Counters() const {
    CacheCounters c;
    c.entries = order_.size();
    c.bytes = bytes_;
    c.hits = hits_;
    c.misses = misses_;
    c.evictions = evictions_;
    return c;
  }

  /// Deep self-check for the invariant auditor (data/audit.h): reports
  /// each broken invariant as fn(message). Checks index<->list agreement
  /// (every list entry indexed, every index entry pointing back at a node
  /// holding its key), the byte ledger against a fresh sum, and the caps
  /// (EvictOverCaps always keeps at least one entry, so an oversized
  /// singleton is compliant). Returns the number of violations reported.
  template <typename Fn>
  std::size_t AuditInvariants(Fn fn) const {
    std::size_t violations = 0;
    if (index_.size() != order_.size()) {
      fn("index has " + std::to_string(index_.size()) +
         " entries, recency list has " + std::to_string(order_.size()));
      ++violations;
    }
    std::size_t summed_bytes = 0;
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      summed_bytes += it->bytes;
      auto idx = index_.find(it->key);
      if (idx == index_.end()) {
        fn("list entry missing from the index");
        ++violations;
      } else if (idx->second != it) {
        fn("index entry points at a different list node than its key's");
        ++violations;
      }
    }
    if (summed_bytes != bytes_) {
      fn("byte ledger holds " + std::to_string(bytes_) +
         ", entries sum to " + std::to_string(summed_bytes));
      ++violations;
    }
    if (order_.size() > 1 && OverCaps()) {
      fn("cache exceeds its caps with more than one entry resident");
      ++violations;
    }
    return violations;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
  };

  bool OverCaps() const {
    return (options_.max_entries != 0 && order_.size() > options_.max_entries) ||
           (options_.max_bytes != 0 && bytes_ > options_.max_bytes);
  }

  template <typename EvictFn>
  std::size_t EvictOverCaps(EvictFn on_evict) {
    std::size_t evicted = 0;
    while (order_.size() > 1 && OverCaps()) {
      const Entry& cold = order_.back();
      on_evict(cold.key, cold.value);
      bytes_ -= cold.bytes;
      index_.erase(cold.key);
      order_.pop_back();
      ++evicted;
      ++evictions_;
    }
    return evicted;
  }

  CacheOptions options_;
  std::list<Entry> order_;  ///< Front = most recent.
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace cqa

#endif  // CQA_BASE_LRU_H_
