#include "base/union_find.h"

#include <numeric>

#include "base/check.h"

namespace cqa {

void UnionFind::Reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0u);
  rank_.assign(n, 0);
  num_classes_ = n;
}

std::uint32_t UnionFind::Add() {
  std::uint32_t id = static_cast<std::uint32_t>(parent_.size());
  parent_.push_back(id);
  rank_.push_back(0);
  ++num_classes_;
  return id;
}

std::uint32_t UnionFind::Find(std::uint32_t x) const {
  CQA_DCHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(std::uint32_t a, std::uint32_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_classes_;
  return true;
}

}  // namespace cqa
