// Lock-rank checking: the service's lock hierarchy as an enforced order.
//
// The engine's locking discipline spans three layers — the service
// registry lock, each database entry's structure lock and solver-map
// lock, and the verdict cache's sixteen component-shard locks — and the
// only thing that keeps them deadlock-free is the *order* they are
// acquired in. TSan finds data races but not lock-order inversions that
// never happen to deadlock during a test run; this header makes the
// order itself machine-checked.
//
// The hierarchy (higher rank = acquired first; a thread may only acquire
// a lock whose rank is strictly below every rank it already holds):
//
//   kServiceRegistry   Service::mutex_ (registry + compile cache). Held
//                      only for map lookups; never while taking any
//                      per-database lock.
//   kDbEntry           DbEntry::structure, the per-database
//                      reader/writer lock. Mutations/compactions hold it
//                      exclusive, solves shared.
//   kWal               DurableStore's mutex serializing WAL appends and
//                      snapshot writes. Mutations take it under the
//                      structure lock (append-then-apply); a snapshot
//                      takes verdict-shard locks under it to export the
//                      verdict cache.
//   kComponents        Each IncrementalSolver's reader/writer lock over
//                      its component partition. Mutations only *enqueue*
//                      deltas (under the exclusive structure lock, no
//                      kComponents acquisition); the next solve flushes
//                      the queue exclusive, then reads the partition
//                      shared while its shard-locked backend runs fill
//                      the verdict cache. Never taken with kWal held
//                      (compaction flushes before the snapshot path).
//   kVerdictShard      DbEntry::inc_mu (the solver-map lock) and the
//                      16 IncrementalSolver shard locks. Taken under the
//                      structure lock; inc_mu and a shard lock are never
//                      nested inside each other (Service::Stats snapshots
//                      the solver list under inc_mu, then sums shard
//                      counters after releasing it).
//   kSolverInternal    Reserved for locks inside a backend run (none in
//                      the tree today); anything a backend adds must sit
//                      below the shard locks it runs under.
//
// RankedMutex/RankedSharedMutex wrap std::mutex/std::shared_mutex and, in
// checking builds, maintain a per-thread stack of held ranks; an
// out-of-order acquisition prints the acquisition stack of the violating
// lock AND of the already-held lock, then aborts. In release builds
// (CQA_LOCK_RANK off) the wrappers compile down to the plain standard
// types with zero per-acquisition overhead.
//
// The `Checked` template parameter exists so tests can exercise the
// checking machinery in every build configuration: library code uses the
// build-wide default (kLockRankCheckedByDefault), while lock_rank_test
// instantiates RankedMutex<R, true> explicitly.

#ifndef CQA_BASE_LOCK_RANK_H_
#define CQA_BASE_LOCK_RANK_H_

#include <mutex>
#include <shared_mutex>

namespace cqa {

/// The lock hierarchy, highest (acquired first) to lowest. Numeric value
/// grows with rank so "may acquire" is a plain integer comparison.
enum class LockRank : int {
  kSolverInternal = 0,  ///< Below everything: locks inside a backend run.
  kVerdictShard = 1,    ///< Solver-map lock + verdict-cache shard locks.
  kComponents = 2,      ///< Each IncrementalSolver's component-partition
                        ///< lock: solves hold it shared while reading the
                        ///< partition (and across their shard-locked
                        ///< backend runs); flushing queued mutation
                        ///< deltas, remaps, and audits take it exclusive.
  kWal = 3,             ///< DurableStore's WAL/snapshot lock. Taken under
                        ///< the structure lock (mutations append before
                        ///< applying); may take verdict-shard locks below
                        ///< it (snapshot exports the verdict cache).
  kDbEntry = 4,         ///< Per-database structure (reader/writer) lock.
  kServiceRegistry = 5, ///< Service registry / compile-cache lock.
};

/// Stable name of a rank, e.g. "kDbEntry".
const char* ToString(LockRank rank);

#if defined(CQA_LOCK_RANK) && CQA_LOCK_RANK
inline constexpr bool kLockRankCheckedByDefault = true;
#else
inline constexpr bool kLockRankCheckedByDefault = false;
#endif

namespace lock_rank_internal {

// Always compiled (not gated on CQA_LOCK_RANK) so a test can instantiate
// checked wrappers in any build configuration.

/// Records that the current thread is about to acquire `mutex` at `rank`,
/// capturing the acquisition stack. Aborts — printing this stack and the
/// stack that acquired the offending held lock — unless `rank` is
/// strictly below every rank the thread already holds.
void PushRank(LockRank rank, const void* mutex);

/// Records the release of `mutex` (matched by address, so non-LIFO
/// unlock orders are fine).
void PopRank(LockRank rank, const void* mutex);

/// Depth of the calling thread's held-rank stack (tests).
int HeldDepth();

}  // namespace lock_rank_internal

/// std::mutex with rank checking. Satisfies Lockable, so it works with
/// std::lock_guard / std::unique_lock (use CTAD: `std::lock_guard lock(mu)`).
template <LockRank Rank, bool Checked = kLockRankCheckedByDefault>
class RankedMutex {
 public:
  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    return true;
  }
  void unlock() {
    if (Checked) lock_rank_internal::PopRank(Rank, this);
    mu_.unlock();
  }

  static constexpr LockRank rank() { return Rank; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with rank checking. Shared and exclusive
/// acquisitions obey the same hierarchy (a reader out of order is just as
/// much a deadlock ingredient as a writer — it blocks writers above it).
template <LockRank Rank, bool Checked = kLockRankCheckedByDefault>
class RankedSharedMutex {
 public:
  RankedSharedMutex() = default;
  RankedSharedMutex(const RankedSharedMutex&) = delete;
  RankedSharedMutex& operator=(const RankedSharedMutex&) = delete;

  void lock() {
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    return true;
  }
  void unlock() {
    if (Checked) lock_rank_internal::PopRank(Rank, this);
    mu_.unlock();
  }

  void lock_shared() {
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    if (Checked) lock_rank_internal::PushRank(Rank, this);
    return true;
  }
  void unlock_shared() {
    if (Checked) lock_rank_internal::PopRank(Rank, this);
    mu_.unlock_shared();
  }

  static constexpr LockRank rank() { return Rank; }

 private:
  std::shared_mutex mu_;
};

}  // namespace cqa

#endif  // CQA_BASE_LOCK_RANK_H_
