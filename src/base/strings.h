// Small string helpers shared by the parser, printers, and reductions.

#ifndef CQA_BASE_STRINGS_H_
#define CQA_BASE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cqa {

/// Splits `s` on `sep`, trimming ASCII whitespace from each piece; empty
/// pieces are kept (the parser treats them as syntax errors with position
/// information).
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_'.]*
/// (primes and dots are allowed so reductions can name elements "x'" or
/// "C1.s").
bool IsIdentifier(std::string_view s);

}  // namespace cqa

#endif  // CQA_BASE_STRINGS_H_
