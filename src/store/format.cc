#include "store/format.h"

#include <array>

namespace cqa {
namespace store {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> kTable = MakeCrcTable();
  std::uint32_t c = 0xffffffffu;
  for (char ch : data) {
    c = kTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void ByteWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

bool ByteReader::U8(std::uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::U32(std::uint32_t* v) {
  if (remaining() < 4) return false;
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool ByteReader::U64(std::uint64_t* v) {
  if (remaining() < 8) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool ByteReader::Skip(std::size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

bool ByteReader::Str(std::string* s) {
  std::uint32_t len = 0;
  if (!U32(&len)) return false;
  if (remaining() < len) return false;
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

}  // namespace store
}  // namespace cqa
