#include "store/wal.h"

#include "store/format.h"

namespace cqa {
namespace store {

namespace {

Status Corrupt(std::string message) {
  return Status(StatusCode::kCorruptedData, std::move(message));
}

/// Parses one checksummed payload into `record`. The payload has already
/// passed its CRC, so a parse failure here means an encoder/decoder
/// mismatch or a CRC collision on garbage — corrupt either way.
bool ParsePayload(std::string_view payload, WalRecord* record) {
  ByteReader reader(payload);
  std::uint8_t kind = 0;
  std::uint32_t nfacts = 0;
  if (!reader.U8(&kind) || !reader.U64(&record->seq) || !reader.U32(&nfacts)) {
    return false;
  }
  if (kind != static_cast<std::uint8_t>(WalRecord::Kind::kInsert) &&
      kind != static_cast<std::uint8_t>(WalRecord::Kind::kDelete)) {
    return false;
  }
  record->kind = static_cast<WalRecord::Kind>(kind);
  record->facts.clear();
  // No reserve from the untrusted count: each fact consumes at least 8
  // bytes, so the bounds-checked reads terminate the loop on their own.
  for (std::uint32_t i = 0; i < nfacts; ++i) {
    NamedFact fact;
    std::uint32_t nargs = 0;
    if (!reader.Str(&fact.relation) || !reader.U32(&nargs)) return false;
    for (std::uint32_t a = 0; a < nargs; ++a) {
      std::string arg;
      if (!reader.Str(&arg)) return false;
      fact.args.push_back(std::move(arg));
    }
    record->facts.push_back(std::move(fact));
  }
  return reader.AtEnd();
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  ByteWriter payload;
  payload.U8(static_cast<std::uint8_t>(record.kind));
  payload.U64(record.seq);
  payload.U32(static_cast<std::uint32_t>(record.facts.size()));
  for (const NamedFact& fact : record.facts) {
    payload.Str(fact.relation);
    payload.U32(static_cast<std::uint32_t>(fact.args.size()));
    for (const std::string& arg : fact.args) payload.Str(arg);
  }

  ByteWriter frame;
  frame.U32(static_cast<std::uint32_t>(payload.bytes().size()));
  frame.U32(Crc32(payload.bytes()));
  std::string out = frame.Take();
  out += payload.bytes();
  return out;
}

WalDecodeResult DecodeWal(std::string_view bytes) {
  WalDecodeResult result;

  // File magic. An empty file is a valid empty log (the header write
  // itself can be lost to a crash); anything shorter than the magic is a
  // truncated header, anything different is garbage.
  if (bytes.empty()) return result;
  if (bytes.size() < kWalMagic.size()) {
    result.tail = Corrupt("wal: truncated header");
    return result;
  }
  if (bytes.substr(0, kWalMagic.size()) != kWalMagic) {
    result.tail = Corrupt("wal: garbage header");
    return result;
  }
  result.valid_bytes = kWalMagic.size();

  ByteReader reader(bytes);
  reader.Skip(kWalMagic.size());

  while (!reader.AtEnd()) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!reader.U32(&len) || !reader.U32(&crc)) {
      result.tail = Corrupt("wal: truncated record frame");
      return result;
    }
    if (len > kMaxWalPayload) {
      result.tail = Corrupt("wal: garbage record length");
      return result;
    }
    if (reader.remaining() < len) {
      result.tail = Corrupt("wal: truncated record payload");
      return result;
    }
    std::string_view payload = bytes.substr(reader.pos(), len);
    if (Crc32(payload) != crc) {
      result.tail = Corrupt("wal: bad record checksum");
      return result;
    }
    WalRecord record;
    if (!ParsePayload(payload, &record)) {
      result.tail = Corrupt("wal: bad record payload");
      return result;
    }
    reader.Skip(len);
    result.records.push_back(std::move(record));
    result.valid_bytes = reader.pos();
  }
  return result;
}

}  // namespace store
}  // namespace cqa
