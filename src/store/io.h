// Storage I/O with crash-point fault injection.
//
// Every byte the durability layer persists flows through this file, and
// every *state-changing* operation — buffering an append, flushing and
// fsyncing, writing a file, renaming it into place, truncating, removing
// — is one numbered "I/O op". A test installs a FaultPlan naming an op
// index and a crash mode; when the numbered op is reached the simulated
// process "dies": the op fails (kBeforeOp) or persists only a prefix of
// its bytes (kPartialWrite, a torn write), and every subsequent op
// returns kIoError until the fault is cleared. Reads are never faulted —
// they model the *next* process, after the restart.
//
// The append path models a volatile page cache: AppendFile::Append only
// buffers in memory, and the bytes reach the real file system only when
// Sync flushes and fsyncs them. A crash therefore loses exactly the
// un-synced suffix — which is what makes the fsync-policy matrix in
// recovery_test mean something: under FsyncPolicy::kEveryBatch an
// acknowledged mutation is durable by construction, while batched fsync
// genuinely trades a window of acknowledged-but-lost batches for
// throughput.
//
// With no fault installed the ops still count (IoOpCount), so a harness
// can dry-run a workload once to learn the total op count W and then
// enumerate crash points 0..W-1. All fault state is process-global and
// mutex-guarded; production code never installs a fault, and the check
// is one relaxed atomic load when none is installed.

#ifndef CQA_STORE_IO_H_
#define CQA_STORE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"

namespace cqa {
namespace store {

// -- Fault injection (test hook) --------------------------------------

struct FaultPlan {
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// Index of the I/O op at which to crash (0-based, counted from the
  /// last InstallFault/ClearFault). kNever = count ops, never crash.
  std::uint64_t crash_at_op = kNever;

  enum class Mode {
    /// The op fails before changing anything; nothing of it is durable.
    kBeforeOp,
    /// The op persists a prefix of its bytes, then dies — a torn write.
    /// Ops that move no bytes (rename, remove) degrade to kBeforeOp.
    kPartialWrite,
  };
  Mode mode = Mode::kBeforeOp;
};

/// Installs `plan` and resets the op counter and the dead flag.
void InstallFault(const FaultPlan& plan);

/// Removes any fault and resets the op counter ("the process restarted").
void ClearFault();

/// I/O ops performed since the last InstallFault/ClearFault.
std::uint64_t IoOpCount();

/// True once an installed fault has fired (the simulated process is dead).
bool FaultTripped();

// -- Whole-file operations --------------------------------------------

/// Writes `bytes` to `path` atomically: tmp file + fsync + rename, three
/// I/O ops. A crash leaves either the old file or the new one, never a
/// torn mix (a torn *tmp* is abandoned and ignored by readers).
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     std::string_view bytes);

/// Reads the whole file. kNotFound if absent, kIoError on a read failure.
[[nodiscard]] StatusOr<std::string> ReadFile(const std::string& path);

bool FileExists(const std::string& path);

/// Removes a file; absent is not an error. One I/O op.
[[nodiscard]] Status RemoveFile(const std::string& path);

/// mkdir -p. One I/O op.
[[nodiscard]] Status MakeDirs(const std::string& path);

/// Names (not paths) of the entries in `path`, unsorted; "." and ".."
/// excluded. kNotFound if the directory does not exist.
[[nodiscard]] StatusOr<std::vector<std::string>> ListDir(
    const std::string& path);

/// rm -rf. One I/O op for the whole tree; absent is not an error.
[[nodiscard]] Status RemoveDirRecursive(const std::string& path);

// -- Append-only files (the WAL) --------------------------------------

/// An append-only file with an explicit durability barrier. Append
/// buffers in memory (one op); Sync flushes the buffer to the OS file
/// and fsyncs it (one op). synced_size() is the byte count guaranteed to
/// survive a crash. Not thread-safe: the caller serializes (the service
/// holds the WAL lock).
class AppendFile {
 public:
  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  /// Opens (creating if needed) for appending. `truncate_to` >= 0 first
  /// truncates the file to that many bytes — recovery uses this to drop
  /// a torn WAL tail before appending resumes.
  [[nodiscard]] static StatusOr<AppendFile> Open(const std::string& path,
                                                 std::int64_t truncate_to = -1);

  /// Buffers `bytes` for the next Sync. One I/O op.
  [[nodiscard]] Status Append(std::string_view bytes);

  /// Flushes buffered bytes to the file and fsyncs. One I/O op; under
  /// FaultPlan::Mode::kPartialWrite a prefix of the buffer lands on disk
  /// (a torn record) before the simulated death.
  [[nodiscard]] Status Sync();

  /// Bytes known durable (synced). Buffered-but-unsynced bytes excluded.
  std::uint64_t synced_size() const { return synced_size_; }
  /// Bytes appended in total (synced + still buffered).
  std::uint64_t appended_size() const {
    return synced_size_ + pending_.size();
  }

  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  std::string pending_;
  std::uint64_t synced_size_ = 0;
};

}  // namespace store
}  // namespace cqa

#endif  // CQA_STORE_IO_H_
