// Snapshots: the compacted columnar fact store, serialized directly.
//
// A snapshot is one atomically-written file ("CQASNP01" magic, then a
// CRC-32 over the rest) holding everything needed to rebuild a Database
// byte-for-byte equivalent to the one it was taken from:
//
//   - the schema (relation names, arities, key lengths),
//   - the full element interner, in insertion order — so every ElementId
//     in the columns below (and in persisted witness facts) means the
//     same element after the rebuild,
//   - the fact columns: per-slot relation and alive flags plus the
//     argument arena, concatenated span-by-span in slot order (offsets
//     are re-derived densely; snapshots are written right after
//     Compact(), so this is the layout the store already has),
//   - the last WAL sequence number the snapshot covers, and the
//     database's cumulative meta counters (compactions, audits) so
//     Stats() survives a restart.
//
// DecodeSnapshot validates before it believes: every count against the
// remaining bytes, every relation/element id against the decoded tables,
// and — while rebuilding through the ordinary public Database API — that
// AddFact assigns exactly the expected slot ids (which catches duplicate
// facts and interner drift that the flat checks cannot see). Arbitrary
// bytes yield a typed kCorruptedData, never an abort or a half-built
// database.
//
// Verdict files ("CQAVRD01") ride alongside a snapshot: per solver cache
// key, the component-fingerprint-keyed verdicts with their witness
// tuples. Fingerprints hash element *names*, so a persisted verdict is
// valid after recovery by construction; witness facts are stored by
// element id, which the verbatim interner restore keeps meaningful (and
// DecodeVerdicts re-validates every id against the recovered database).

#ifndef CQA_STORE_SNAPSHOT_H_
#define CQA_STORE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/status.h"
#include "data/database.h"

namespace cqa {
namespace store {

inline constexpr std::string_view kSnapshotMagic = "CQASNP01";
inline constexpr std::string_view kVerdictMagic = "CQAVRD01";

/// Cumulative per-database counters that must survive a restart (the
/// parts of Stats() that are history, not derivable from the facts).
struct MetaCounters {
  std::uint64_t compactions = 0;
  std::uint64_t audits_run = 0;
  std::uint64_t audit_violations = 0;
};

/// Serializes `db` (schema + interner + columns) with its WAL watermark
/// and meta counters.
std::string EncodeSnapshot(const Database& db, std::uint64_t last_seq,
                           const MetaCounters& meta);

/// A successfully decoded and rebuilt snapshot.
struct DecodedSnapshot {
  Database db;
  std::uint64_t last_seq = 0;
  MetaCounters meta;

  explicit DecodedSnapshot(Database d) : db(std::move(d)) {}
};

/// Decodes and rebuilds. Never aborts on any input; all failures are
/// typed kCorruptedData.
StatusOr<DecodedSnapshot> DecodeSnapshot(std::string_view bytes);

/// One cached solve verdict, persisted content-addressed by component
/// fingerprint. Mirrors engine/incremental.h's CachedVerdict (which this
/// layer cannot include — the engine sits above the store).
struct PersistedVerdict {
  ComponentFingerprint fingerprint;
  bool certain = false;
  bool has_witness = false;
  std::vector<Fact> witness_facts;
};

/// Verdicts grouped by solver cache key (std::map: deterministic encode
/// order, so identical caches produce identical files).
using PersistedVerdictMap =
    std::map<std::string, std::vector<PersistedVerdict>>;

std::string EncodeVerdicts(const PersistedVerdictMap& verdicts);

/// Decodes a verdict file, validating every relation id, arity, and
/// element id against `db` (the recovered database the verdicts will be
/// imported into). Typed kCorruptedData on any violation — a corrupt
/// verdict is never imported.
StatusOr<PersistedVerdictMap> DecodeVerdicts(std::string_view bytes,
                                             const Database& db);

}  // namespace store
}  // namespace cqa

#endif  // CQA_STORE_SNAPSHOT_H_
