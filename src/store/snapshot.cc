#include "store/snapshot.h"

#include <utility>

#include "store/format.h"

namespace cqa {
namespace store {

namespace {

/// Caps that turn absurd counts into "garbage" before any loop runs.
/// Every count is *also* bounds-checked against the remaining bytes by
/// the reader; these just keep error messages honest.
constexpr std::uint32_t kMaxRelations = 1u << 20;
constexpr std::uint32_t kMaxArity = 1u << 16;

Status Corrupt(std::string message) {
  return Status(StatusCode::kCorruptedData, std::move(message));
}

/// Frames `body` as magic + crc + body.
std::string Frame(std::string_view magic, std::string body) {
  ByteWriter header;
  for (char c : magic) header.U8(static_cast<std::uint8_t>(c));
  header.U32(Crc32(body));
  std::string out = header.Take();
  out += body;
  return out;
}

/// Strips and verifies magic + crc; returns the body view, or an error
/// naming what failed.
StatusOr<std::string_view> Unframe(std::string_view magic,
                                   std::string_view bytes, const char* what) {
  if (bytes.size() < magic.size() + 4) {
    return Corrupt(std::string(what) + ": truncated header");
  }
  if (bytes.substr(0, magic.size()) != magic) {
    return Corrupt(std::string(what) + ": garbage header");
  }
  std::string_view body = bytes.substr(magic.size() + 4);
  ByteReader crc_reader(bytes.substr(magic.size(), 4));
  std::uint32_t crc = 0;
  crc_reader.U32(&crc);
  if (Crc32(body) != crc) {
    return Corrupt(std::string(what) + ": bad checksum");
  }
  return body;
}

}  // namespace

std::string EncodeSnapshot(const Database& db, std::uint64_t last_seq,
                           const MetaCounters& meta) {
  ByteWriter body;
  body.U64(last_seq);
  body.U64(meta.compactions);
  body.U64(meta.audits_run);
  body.U64(meta.audit_violations);

  const Schema& schema = db.schema();
  body.U32(static_cast<std::uint32_t>(schema.NumRelations()));
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const RelationSchema& rel = schema.Relation(r);
    body.Str(rel.name);
    body.U32(rel.arity);
    body.U32(rel.key_len);
  }

  const Interner& elements = db.elements();
  body.U32(static_cast<std::uint32_t>(elements.size()));
  for (ElementId e = 0; e < elements.size(); ++e) body.Str(elements.Name(e));

  const std::uint32_t nslots = static_cast<std::uint32_t>(db.NumFacts());
  body.U32(nslots);
  for (FactId f = 0; f < nslots; ++f) body.U32(db.fact(f).relation);
  for (FactId f = 0; f < nslots; ++f) body.U8(db.alive(f) ? 1 : 0);
  // The arena, span by span in slot order. Offsets are not stored: the
  // rebuild re-derives them densely (snapshots follow a Compact(), so
  // the source layout is already dense).
  std::uint64_t arena_len = 0;
  for (FactId f = 0; f < nslots; ++f) arena_len += db.fact(f).args.size();
  body.U64(arena_len);
  for (FactId f = 0; f < nslots; ++f) {
    for (ElementId e : db.fact(f).args) body.U32(e);
  }

  return Frame(kSnapshotMagic, body.Take());
}

StatusOr<DecodedSnapshot> DecodeSnapshot(std::string_view bytes) {
  StatusOr<std::string_view> body = Unframe(kSnapshotMagic, bytes, "snapshot");
  if (!body.ok()) return body.status();
  ByteReader reader(*body);

  std::uint64_t last_seq = 0;
  MetaCounters meta;
  if (!reader.U64(&last_seq) || !reader.U64(&meta.compactions) ||
      !reader.U64(&meta.audits_run) || !reader.U64(&meta.audit_violations)) {
    return Corrupt("snapshot: truncated meta");
  }

  // Schema. Schema::AddRelation CHECK-aborts on a duplicate name or a
  // bad signature, so both are validated here first.
  std::uint32_t nrelations = 0;
  if (!reader.U32(&nrelations) || nrelations > kMaxRelations) {
    return Corrupt("snapshot: bad relation count");
  }
  Schema schema;
  std::vector<std::uint32_t> arity_of;
  for (std::uint32_t r = 0; r < nrelations; ++r) {
    std::string name;
    std::uint32_t arity = 0;
    std::uint32_t key_len = 0;
    if (!reader.Str(&name) || !reader.U32(&arity) || !reader.U32(&key_len)) {
      return Corrupt("snapshot: truncated relation");
    }
    if (arity == 0 || arity > kMaxArity || key_len > arity ||
        schema.Find(name) != Schema::kNotFound) {
      return Corrupt("snapshot: bad relation signature");
    }
    schema.AddRelation(name, arity, key_len);
    arity_of.push_back(arity);
  }

  DecodedSnapshot snap{Database(std::move(schema))};
  snap.last_seq = last_seq;
  snap.meta = meta;
  Database& db = snap.db;

  // Elements, in stored (== original insertion) order. Intern must hand
  // back exactly the sequential id; a duplicate name would not.
  std::uint32_t nelements = 0;
  if (!reader.U32(&nelements)) return Corrupt("snapshot: bad element count");
  for (std::uint32_t e = 0; e < nelements; ++e) {
    std::string name;
    if (!reader.Str(&name)) return Corrupt("snapshot: truncated element");
    if (db.elements().Intern(name) != e) {
      return Corrupt("snapshot: duplicate element");
    }
  }

  // Columns.
  std::uint32_t nslots = 0;
  if (!reader.U32(&nslots)) return Corrupt("snapshot: bad slot count");
  if (reader.remaining() / 4 < nslots) {
    return Corrupt("snapshot: truncated relation column");
  }
  std::vector<RelationId> relation_col(nslots);
  std::uint64_t expected_arena = 0;
  for (std::uint32_t f = 0; f < nslots; ++f) {
    if (!reader.U32(&relation_col[f])) {
      return Corrupt("snapshot: truncated relation column");
    }
    if (relation_col[f] >= nrelations) {
      return Corrupt("snapshot: bad relation id");
    }
    expected_arena += arity_of[relation_col[f]];
  }
  std::vector<char> alive_col(nslots);
  for (std::uint32_t f = 0; f < nslots; ++f) {
    std::uint8_t a = 0;
    if (!reader.U8(&a)) return Corrupt("snapshot: truncated alive column");
    if (a > 1) return Corrupt("snapshot: bad alive flag");
    alive_col[f] = static_cast<char>(a);
  }
  std::uint64_t arena_len = 0;
  if (!reader.U64(&arena_len) || arena_len != expected_arena) {
    return Corrupt("snapshot: arena length mismatch");
  }
  if (reader.remaining() != arena_len * 4) {
    return Corrupt("snapshot: arena size mismatch");
  }

  // Rebuild through the public API. AddFact must assign exactly the
  // sequential slot id — anything else means the columns encode a state
  // no real database could have held (e.g. a duplicate alive fact).
  for (std::uint32_t f = 0; f < nslots; ++f) {
    std::vector<ElementId> args(arity_of[relation_col[f]]);
    for (ElementId& arg : args) {
      if (!reader.U32(&arg)) return Corrupt("snapshot: truncated arena");
      if (arg >= nelements) return Corrupt("snapshot: bad element id");
    }
    if (db.AddFact(relation_col[f], std::move(args)) != f) {
      return Corrupt("snapshot: duplicate fact");
    }
    if (!alive_col[f]) db.RemoveFact(f);
  }
  if (!reader.AtEnd()) return Corrupt("snapshot: trailing bytes");
  return std::move(snap);
}

std::string EncodeVerdicts(const PersistedVerdictMap& verdicts) {
  ByteWriter body;
  body.U32(static_cast<std::uint32_t>(verdicts.size()));
  for (const auto& [key, list] : verdicts) {
    body.Str(key);
    body.U32(static_cast<std::uint32_t>(list.size()));
    for (const PersistedVerdict& v : list) {
      body.U64(v.fingerprint.sum);
      body.U64(v.fingerprint.xr);
      body.U64(v.fingerprint.count);
      body.U8(v.certain ? 1 : 0);
      body.U8(v.has_witness ? 1 : 0);
      body.U32(static_cast<std::uint32_t>(v.witness_facts.size()));
      for (const Fact& fact : v.witness_facts) {
        body.U32(fact.relation);
        body.U32(static_cast<std::uint32_t>(fact.args.size()));
        for (ElementId e : fact.args) body.U32(e);
      }
    }
  }
  return Frame(kVerdictMagic, body.Take());
}

StatusOr<PersistedVerdictMap> DecodeVerdicts(std::string_view bytes,
                                             const Database& db) {
  StatusOr<std::string_view> body = Unframe(kVerdictMagic, bytes, "verdicts");
  if (!body.ok()) return body.status();
  ByteReader reader(*body);

  const std::uint32_t nrelations =
      static_cast<std::uint32_t>(db.schema().NumRelations());
  const std::uint32_t nelements =
      static_cast<std::uint32_t>(db.elements().size());

  PersistedVerdictMap out;
  std::uint32_t nsolvers = 0;
  if (!reader.U32(&nsolvers)) return Corrupt("verdicts: bad solver count");
  for (std::uint32_t s = 0; s < nsolvers; ++s) {
    std::string key;
    std::uint32_t nverdicts = 0;
    if (!reader.Str(&key) || !reader.U32(&nverdicts)) {
      return Corrupt("verdicts: truncated solver entry");
    }
    if (out.count(key) != 0) return Corrupt("verdicts: duplicate solver key");
    std::vector<PersistedVerdict>& list = out[key];
    for (std::uint32_t i = 0; i < nverdicts; ++i) {
      PersistedVerdict v;
      std::uint8_t certain = 0;
      std::uint8_t has_witness = 0;
      std::uint32_t nfacts = 0;
      if (!reader.U64(&v.fingerprint.sum) || !reader.U64(&v.fingerprint.xr) ||
          !reader.U64(&v.fingerprint.count) || !reader.U8(&certain) ||
          !reader.U8(&has_witness) || !reader.U32(&nfacts)) {
        return Corrupt("verdicts: truncated verdict");
      }
      if (certain > 1 || has_witness > 1) {
        return Corrupt("verdicts: bad verdict flags");
      }
      v.certain = certain != 0;
      v.has_witness = has_witness != 0;
      for (std::uint32_t f = 0; f < nfacts; ++f) {
        Fact fact;
        std::uint32_t nargs = 0;
        if (!reader.U32(&fact.relation) || !reader.U32(&nargs)) {
          return Corrupt("verdicts: truncated witness fact");
        }
        if (fact.relation >= nrelations ||
            nargs != db.schema().Relation(fact.relation).arity) {
          return Corrupt("verdicts: bad witness relation");
        }
        for (std::uint32_t a = 0; a < nargs; ++a) {
          ElementId e = 0;
          if (!reader.U32(&e)) return Corrupt("verdicts: truncated witness");
          if (e >= nelements) return Corrupt("verdicts: bad witness element");
          fact.args.push_back(e);
        }
        v.witness_facts.push_back(std::move(fact));
      }
      list.push_back(std::move(v));
    }
  }
  if (!reader.AtEnd()) return Corrupt("verdicts: trailing bytes");
  return out;
}

}  // namespace store
}  // namespace cqa
