// Binary encoding primitives of the durability layer.
//
// Everything the store writes — WAL records, snapshots, verdict files —
// is built from three primitives: fixed-width little-endian integers,
// length-prefixed strings, and a CRC-32 over a finished payload. Writers
// append into a std::string; readers are bounds-checked and *never* trust
// a length field before checking it against the remaining bytes, so a
// decoder fed arbitrary bytes (fuzz_wal_replay, a torn write) fails with
// a typed Status instead of reading out of bounds.
//
// The encoding is deliberately fixed-width (no varints): snapshot columns
// are bulk arrays of u32, and a fixed layout keeps the decoder's bounds
// arithmetic trivially auditable.

#ifndef CQA_STORE_FORMAT_H_
#define CQA_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cqa {
namespace store {

/// CRC-32 (IEEE 802.3 polynomial, the zlib recipe) over `data`. The one
/// checksum of the on-disk formats: every WAL record and every snapshot
/// body carries one, so a torn or bit-flipped write is detected before a
/// single decoded field is believed.
std::uint32_t Crc32(std::string_view data);

/// Appends fixed-width little-endian values to an owned buffer.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void Str(std::string_view s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte view. Every accessor returns false
/// (leaving the output untouched) instead of reading past the end; a
/// decoder turns that into a typed "truncated" Status.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* v);
  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  /// Length-prefixed string; fails if the prefix exceeds the remaining
  /// bytes (so a corrupt length cannot force a huge allocation).
  bool Str(std::string* s);
  /// Advances past `n` bytes; fails (without moving) if fewer remain.
  bool Skip(std::size_t n);

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace store
}  // namespace cqa

#endif  // CQA_STORE_FORMAT_H_
