#include "store/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <utility>

namespace cqa {
namespace store {
namespace {

// Process-global fault state. `armed` is the fast-path gate: with no
// fault installed the per-op cost is one relaxed load plus the counter
// increment. The mutex (a plain std::mutex, deliberately outside the
// ranked hierarchy: it is a leaf that never nests with any other lock)
// guards the slow path.
std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_op_count{0};
std::atomic<bool> g_tripped{false};
std::mutex g_fault_mu;
FaultPlan g_plan;

/// What the current numbered op must do.
enum class OpFate { kProceed, kFailCleanly, kPartialThenFail };

/// Numbers this op and consults the fault plan. Called once per
/// state-changing I/O operation, before it touches anything.
OpFate CheckOp() {
  std::uint64_t index = g_op_count.fetch_add(1, std::memory_order_relaxed);
  if (!g_armed.load(std::memory_order_relaxed)) return OpFate::kProceed;
  std::lock_guard lock(g_fault_mu);
  if (g_tripped.load(std::memory_order_relaxed)) return OpFate::kFailCleanly;
  if (index < g_plan.crash_at_op) return OpFate::kProceed;
  g_tripped.store(true, std::memory_order_relaxed);
  return g_plan.mode == FaultPlan::Mode::kPartialWrite
             ? OpFate::kPartialThenFail
             : OpFate::kFailCleanly;
}

Status CrashStatus(const char* what) {
  return Status(StatusCode::kIoError,
                std::string("simulated crash: ") + what);
}

Status Errno(const char* what, const std::string& path) {
  return Status(StatusCode::kIoError, std::string(what) + " " + path + ": " +
                                          std::strerror(errno));
}

/// Writes all of `bytes` to `fd` (retrying short writes).
bool WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

Status RemoveTreeImpl(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) return Status::Ok();
    // Not a directory: remove as a file.
    if (errno == ENOTDIR) {
      if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        return Errno("unlink", path);
      }
      return Status::Ok();
    }
    return Errno("opendir", path);
  }
  Status result = Status::Ok();
  struct dirent* entry = nullptr;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    Status sub = RemoveTreeImpl(path + "/" + name);
    if (!sub.ok() && result.ok()) result = sub;
  }
  ::closedir(dir);
  if (!result.ok()) return result;
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("rmdir", path);
  }
  return Status::Ok();
}

}  // namespace

void InstallFault(const FaultPlan& plan) {
  std::lock_guard lock(g_fault_mu);
  g_plan = plan;
  g_tripped.store(false, std::memory_order_relaxed);
  g_op_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
}

void ClearFault() {
  std::lock_guard lock(g_fault_mu);
  g_armed.store(false, std::memory_order_relaxed);
  g_tripped.store(false, std::memory_order_relaxed);
  g_op_count.store(0, std::memory_order_relaxed);
}

std::uint64_t IoOpCount() {
  return g_op_count.load(std::memory_order_relaxed);
}

bool FaultTripped() { return g_tripped.load(std::memory_order_relaxed); }

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";

  // Op 1: write the tmp file (a torn write leaves a prefix in tmp, which
  // readers never look at).
  OpFate fate = CheckOp();
  if (fate == OpFate::kFailCleanly) return CrashStatus("write");
  std::size_t to_write =
      fate == OpFate::kPartialThenFail ? bytes.size() / 2 : bytes.size();
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  bool wrote = WriteAll(fd, bytes.data(), to_write);
  if (fate == OpFate::kPartialThenFail) {
    ::fsync(fd);  // The torn prefix is what "survived the crash".
    ::close(fd);
    return CrashStatus("torn write");
  }
  if (!wrote) {
    ::close(fd);
    return Errno("write", tmp);
  }

  // Op 2: fsync the tmp file.
  if (CheckOp() != OpFate::kProceed) {
    ::close(fd);
    return CrashStatus("fsync");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Errno("fsync", tmp);
  }
  ::close(fd);

  // Op 3: rename into place (atomic on POSIX).
  if (CheckOp() != OpFate::kProceed) return CrashStatus("rename");
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", tmp + " -> " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status(StatusCode::kNotFound, "no such file: " + path);
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Status RemoveFile(const std::string& path) {
  if (CheckOp() != OpFate::kProceed) return CrashStatus("remove");
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

Status MakeDirs(const std::string& path) {
  if (CheckOp() != OpFate::kProceed) return CrashStatus("mkdir");
  std::string partial;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    partial = path.substr(0, slash);
    start = slash + 1;
    if (partial.empty()) continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    if (errno == ENOENT) {
      return Status(StatusCode::kNotFound, "no such directory: " + path);
    }
    return Errno("opendir", path);
  }
  std::vector<std::string> names;
  struct dirent* entry = nullptr;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  return names;
}

Status RemoveDirRecursive(const std::string& path) {
  if (CheckOp() != OpFate::kProceed) return CrashStatus("rmtree");
  return RemoveTreeImpl(path);
}

// -- AppendFile --------------------------------------------------------

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      pending_(std::move(other.pending_)),
      synced_size_(other.synced_size_) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    pending_ = std::move(other.pending_);
    synced_size_ = other.synced_size_;
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

void AppendFile::Close() {
  // No implicit flush: durability comes from Sync only (a destructor that
  // silently synced would hide missing-fsync bugs from the crash tests).
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path,
                                      std::int64_t truncate_to) {
  if (truncate_to >= 0) {
    if (CheckOp() != OpFate::kProceed) return CrashStatus("truncate");
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (truncate_to >= 0 &&
      static_cast<std::uint64_t>(truncate_to) < size) {
    if (::ftruncate(fd, truncate_to) != 0) {
      ::close(fd);
      return Errno("ftruncate", path);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Errno("fsync", path);
    }
    size = static_cast<std::uint64_t>(truncate_to);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  AppendFile file;
  file.fd_ = fd;
  file.synced_size_ = size;
  return file;
}

Status AppendFile::Append(std::string_view bytes) {
  if (fd_ < 0) {
    return Status(StatusCode::kIoError, "append on a closed file");
  }
  if (CheckOp() != OpFate::kProceed) return CrashStatus("append");
  pending_.append(bytes.data(), bytes.size());
  return Status::Ok();
}

Status AppendFile::Sync() {
  if (fd_ < 0) {
    return Status(StatusCode::kIoError, "sync on a closed file");
  }
  OpFate fate = CheckOp();
  if (fate == OpFate::kFailCleanly) return CrashStatus("sync");
  std::size_t to_write = fate == OpFate::kPartialThenFail
                             ? pending_.size() / 2
                             : pending_.size();
  if (!WriteAll(fd_, pending_.data(), to_write)) {
    return Errno("write", "wal");
  }
  if (::fsync(fd_) != 0) return Errno("fsync", "wal");
  if (fate == OpFate::kPartialThenFail) {
    // The torn prefix is durable; the rest of the buffer died with the
    // process.
    synced_size_ += to_write;
    pending_.clear();
    return CrashStatus("torn sync");
  }
  synced_size_ += pending_.size();
  pending_.clear();
  return Status::Ok();
}

}  // namespace store
}  // namespace cqa
