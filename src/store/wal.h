// Write-ahead log: length-prefixed, checksummed mutation records.
//
// One record per all-or-nothing InsertFacts/DeleteFacts batch, framed as
//
//   [u32 payload_len][u32 crc32(payload)][payload]
//   payload = u8 kind | u64 seq | u32 nfacts |
//             per fact: str relation | u32 nargs | nargs * str
//
// after an 8-byte file magic ("CQAWAL01"). Facts are logged by *name*
// (relation and element strings, exactly the service's FactSpec shape),
// so replay goes through the same interning path as the original
// mutation and is independent of element-id assignment order.
//
// Sequence numbers are assigned by the writer, strictly increasing
// across the database's lifetime; the snapshot records the last sequence
// number it covers, and replay skips records at or below it, which makes
// the snapshot-then-reset-WAL sequence crash-safe in any order.
//
// DecodeWal is the recovery (and fuzz) entry point: it decodes the
// longest valid prefix and reports *why* it stopped as a typed Status —
// kOk (clean end), or kCorruptedData naming a truncated record, a bad
// checksum, a garbage header, or an unparseable payload. Recovery
// truncates the file to the valid prefix; corrupt tails are never
// silently replayed.

#ifndef CQA_STORE_WAL_H_
#define CQA_STORE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.h"

namespace cqa {
namespace store {

/// 8-byte magic opening every WAL file.
inline constexpr std::string_view kWalMagic = "CQAWAL01";

/// Upper bound on one record's payload; a length prefix past this is a
/// garbage header, not a huge allocation.
inline constexpr std::uint32_t kMaxWalPayload = 1u << 26;

/// One fact named at the storage boundary: relation name plus element
/// names. Identical in shape to the service's FactSpec (which converts).
struct NamedFact {
  std::string relation;
  std::vector<std::string> args;
};

/// One all-or-nothing mutation batch.
struct WalRecord {
  enum class Kind : std::uint8_t { kInsert = 1, kDelete = 2 };

  std::uint64_t seq = 0;
  Kind kind = Kind::kInsert;
  std::vector<NamedFact> facts;
};

/// Frames one record (length prefix + checksum + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// Outcome of decoding a WAL byte stream.
struct WalDecodeResult {
  std::vector<WalRecord> records;  ///< The longest valid prefix, in order.
  /// Byte length of that prefix (including the magic); the recovery
  /// truncation point when `tail` is not ok.
  std::size_t valid_bytes = 0;
  /// Why decoding stopped: Ok for a clean end of file, kCorruptedData
  /// (with a message naming the failure: truncated record, bad checksum,
  /// garbage header, bad payload) for anything else.
  Status tail = Status::Ok();
};

/// Decodes `bytes` as a WAL file. Never aborts on any input; an empty
/// input is a valid empty log.
WalDecodeResult DecodeWal(std::string_view bytes);

}  // namespace store
}  // namespace cqa

#endif  // CQA_STORE_WAL_H_
