// DurableStore: one database's on-disk state — WAL + snapshots.
//
// Directory layout (one directory per database):
//
//   wal.log                    append-only record stream ("CQAWAL01")
//   snapshot-<seq 20d>.snap    full state through WAL sequence <seq>
//   verdicts-<seq 20d>.bin     verdict cache exported with that snapshot
//
// The mutation protocol is WAL-before-apply: the service validates a
// batch, calls AppendBatch (which frames, appends, and — under
// FsyncPolicy::kEveryBatch — fsyncs one record), and only then applies
// the batch in memory and acknowledges it. An acknowledged batch is
// therefore durable by construction under kEveryBatch; kInterval and
// kNone trade a bounded (resp. unbounded-until-snapshot) window of
// acknowledged-but-lost batches for throughput, and the recovery_test
// matrix distinguishes the two guarantees explicitly.
//
// Snapshots: after every `snapshot_interval` records the service forces a
// Compact() and calls WriteSnapshot, which atomically writes the columns
// (tmp + fsync + rename), writes the verdict export beside it, prunes all
// but the two newest snapshots, and resets the WAL to its header. A crash
// anywhere in that sequence is safe: the WAL covers everything until the
// rename lands, and replay skips records at or below the snapshot's
// sequence number, so an un-reset WAL merely replays into no-ops.
//
// Open() is recovery: pick the newest snapshot that decodes cleanly
// (falling back to the previous one), replay the WAL tail above its
// sequence number, truncate any torn or corrupt WAL suffix (detected by
// length/checksum, never silently loaded), and hand back the rebuilt
// database plus the persisted verdict cache for the service to import.
//
// All methods serialize on one RankedMutex<kWal>, which sits below the
// per-database structure lock (mutations already hold that exclusively)
// and above the verdict-shard locks (snapshot export takes them).

#ifndef CQA_STORE_STORE_H_
#define CQA_STORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/status.h"
#include "base/lock_rank.h"
#include "data/database.h"
#include "store/io.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace cqa {
namespace store {

/// When an acknowledged batch is guaranteed durable.
enum class FsyncPolicy {
  kEveryBatch,  ///< fsync before every acknowledgement (the guarantee).
  kInterval,    ///< fsync every fsync_interval batches (bounded loss).
  kNone,        ///< fsync only at snapshots (throughput benchmark floor).
};

class DurableStore {
 public:
  struct Options {
    FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
    /// Batches between fsyncs under FsyncPolicy::kInterval.
    std::uint32_t fsync_interval = 32;
    /// WAL records between snapshots; 0 disables automatic snapshots.
    std::uint32_t snapshot_interval = 1024;
    /// Export/import the verdict cache with each snapshot.
    bool persist_verdicts = true;
  };

  /// Live WAL/snapshot accounting, surfaced through Service::Stats().
  struct Counters {
    std::uint64_t wal_records = 0;  ///< Records in the current WAL.
    std::uint64_t wal_bytes = 0;    ///< Bytes appended to it (incl. header).
    std::uint64_t snapshots = 0;    ///< Snapshots written by this store.
    std::uint64_t last_seq = 0;     ///< Highest sequence number assigned.
  };

  /// Everything Open() recovered; the service rebuilds the in-memory
  /// entry from it.
  struct OpenResult {
    std::unique_ptr<DurableStore> store;
    Database db;
    std::uint64_t last_seq = 0;
    MetaCounters meta;
    PersistedVerdictMap verdicts;
    std::uint64_t replayed_records = 0;  ///< WAL records applied on top
                                         ///< of the snapshot.
  };

  /// Initializes `dir` for a new database: wipes any previous contents,
  /// writes snapshot 0 of `db`, and opens a fresh WAL.
  [[nodiscard]] static StatusOr<std::unique_ptr<DurableStore>> Create(
      const std::string& dir, const Database& db, const MetaCounters& meta,
      const Options& options);

  /// Recovers from `dir`: newest valid snapshot + WAL tail replay + torn
  /// tail truncation. kNotFound if the directory holds no snapshot at
  /// all; kCorruptedData if snapshots exist but none decodes.
  [[nodiscard]] static StatusOr<OpenResult> Open(const std::string& dir,
                                                 const Options& options);

  /// Appends one batch as a WAL record (assigning the next sequence
  /// number) and applies the configured fsync policy. Must be called
  /// BEFORE the batch is applied in memory; an error means the batch must
  /// not be acknowledged.
  [[nodiscard]] Status AppendBatch(WalRecord::Kind kind,
                                   std::vector<NamedFact> facts);

  /// True when snapshot_interval records have accumulated since the last
  /// snapshot (never true when the interval is 0).
  bool ShouldSnapshot() const;

  /// Writes a snapshot of `db` (which must reflect every acknowledged
  /// batch) plus the verdict export, prunes old snapshots, and resets the
  /// WAL. On error the store remains usable and the WAL still covers
  /// everything — a failed snapshot loses no data.
  [[nodiscard]] Status WriteSnapshot(const Database& db,
                                     const MetaCounters& meta,
                                     const PersistedVerdictMap& verdicts);

  Counters counters() const;

  /// Deletes the database's directory tree (DropDatabase).
  [[nodiscard]] static Status Destroy(const std::string& dir);

 private:
  DurableStore(std::string dir, const Options& options);

  Status AppendLocked(std::string bytes);
  Status ResetWalLocked();

  const std::string dir_;
  const Options options_;

  mutable RankedMutex<LockRank::kWal> mu_;
  AppendFile wal_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t records_since_sync_ = 0;
  Counters counters_;
};

}  // namespace store
}  // namespace cqa

#endif  // CQA_STORE_STORE_H_
