#include "store/store.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <optional>
#include <utility>

namespace cqa {
namespace store {

namespace {

constexpr char kWalFile[] = "wal.log";

Status Corrupt(std::string message) {
  return Status(StatusCode::kCorruptedData, std::move(message));
}

/// "snapshot-00000000000000000042.snap" — fixed width so lexicographic
/// and numeric order agree.
std::string SeqName(const char* prefix, std::uint64_t seq,
                    const char* suffix) {
  char digits[21];
  std::snprintf(digits, sizeof(digits), "%020llu",
                static_cast<unsigned long long>(seq));
  return std::string(prefix) + digits + suffix;
}

std::string SnapshotName(std::uint64_t seq) {
  return SeqName("snapshot-", seq, ".snap");
}

std::string VerdictName(std::uint64_t seq) {
  return SeqName("verdicts-", seq, ".bin");
}

/// Parses `name` as prefix + 20 digits + suffix.
bool ParseSeqName(const std::string& name, const std::string& prefix,
                  const std::string& suffix, std::uint64_t* seq) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(prefix.size() + 20, suffix.size(), suffix) != 0) {
    return false;
  }
  std::uint64_t out = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = out;
  return true;
}

/// Applies one replayed record to the bare database. The service
/// validated the batch before it was logged, so anything unresolvable
/// here means the WAL and the snapshot disagree — corruption.
Status ReplayRecord(const WalRecord& record, Database* db) {
  for (const NamedFact& fact : record.facts) {
    RelationId relation = db->schema().Find(fact.relation);
    if (relation == Schema::kNotFound) {
      return Corrupt("wal replay: unknown relation " + fact.relation);
    }
    if (fact.args.size() != db->schema().Relation(relation).arity) {
      return Corrupt("wal replay: arity mismatch for " + fact.relation);
    }
    if (record.kind == WalRecord::Kind::kInsert) {
      // Set semantics make replayed inserts idempotent.
      db->AddFactNamed(relation, fact.args);
    } else {
      Fact target;
      target.relation = relation;
      for (const std::string& name : fact.args) {
        ElementId e = db->elements().Find(name);
        if (e == Interner::kNotFound) {
          return Corrupt("wal replay: deleted fact names unknown element");
        }
        target.args.push_back(e);
      }
      FactId id = db->FindFact(target);
      if (id == Database::kNoFact) {
        return Corrupt("wal replay: deleted fact not present");
      }
      db->RemoveFact(id);
    }
  }
  return Status::Ok();
}

}  // namespace

DurableStore::DurableStore(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {}

StatusOr<std::unique_ptr<DurableStore>> DurableStore::Create(
    const std::string& dir, const Database& db, const MetaCounters& meta,
    const Options& options) {
  Status wiped = RemoveDirRecursive(dir);
  if (!wiped.ok()) return wiped;
  Status made = MakeDirs(dir);
  if (!made.ok()) return made;

  Status snap = WriteFileAtomic(dir + "/" + SnapshotName(0),
                                EncodeSnapshot(db, 0, meta));
  if (!snap.ok()) return snap;

  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));
  StatusOr<AppendFile> wal =
      AppendFile::Open(dir + "/" + kWalFile, /*truncate_to=*/0);
  if (!wal.ok()) return wal.status();
  store->wal_ = std::move(wal).value();
  Status header = store->wal_.Append(kWalMagic);
  if (header.ok()) header = store->wal_.Sync();
  if (!header.ok()) return header;

  store->counters_.wal_bytes = kWalMagic.size();
  store->counters_.snapshots = 1;
  return store;
}

StatusOr<DurableStore::OpenResult> DurableStore::Open(const std::string& dir,
                                                      const Options& options) {
  StatusOr<std::vector<std::string>> entries = ListDir(dir);
  if (!entries.ok()) {
    if (entries.status().code() == StatusCode::kNotFound) {
      return Status(StatusCode::kNotFound, "no durable state at " + dir);
    }
    return entries.status();
  }

  std::vector<std::uint64_t> snapshot_seqs;
  for (const std::string& name : *entries) {
    std::uint64_t seq = 0;
    if (ParseSeqName(name, "snapshot-", ".snap", &seq)) {
      snapshot_seqs.push_back(seq);
    }
  }
  if (snapshot_seqs.empty()) {
    return Status(StatusCode::kNotFound, "no snapshot in " + dir);
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());

  // Newest snapshot that decodes cleanly wins.
  std::optional<DecodedSnapshot> snapshot;
  std::uint64_t snapshot_seq = 0;
  Status snapshot_error = Status::Ok();
  for (std::uint64_t seq : snapshot_seqs) {
    StatusOr<std::string> bytes = ReadFile(dir + "/" + SnapshotName(seq));
    if (!bytes.ok()) {
      snapshot_error = bytes.status();
      continue;
    }
    StatusOr<DecodedSnapshot> decoded = DecodeSnapshot(*bytes);
    if (!decoded.ok()) {
      snapshot_error = decoded.status();
      continue;
    }
    snapshot.emplace(std::move(decoded).value());
    snapshot_seq = seq;
    break;
  }
  if (!snapshot.has_value()) {
    return Corrupt("no snapshot decodes cleanly: " +
                   snapshot_error.ToString());
  }
  Database db = std::move(snapshot->db);
  std::uint64_t last_seq = snapshot->last_seq;

  // WAL tail: decode the valid prefix, replay records above the
  // snapshot's watermark, and physically truncate anything after the
  // prefix (torn record, bad checksum) so appends resume from a clean
  // end. A missing WAL (crash before the header landed) is empty.
  const std::string wal_path = dir + "/" + kWalFile;
  std::string wal_bytes;
  StatusOr<std::string> read = ReadFile(wal_path);
  if (read.ok()) {
    wal_bytes = std::move(read).value();
  } else if (read.status().code() != StatusCode::kNotFound) {
    return read.status();
  }
  WalDecodeResult decoded_wal = DecodeWal(wal_bytes);
  std::uint64_t replayed = 0;
  for (const WalRecord& record : decoded_wal.records) {
    if (record.seq <= snapshot_seq) continue;  // Covered by the snapshot.
    if (record.seq <= last_seq) {
      return Corrupt("wal replay: sequence numbers not increasing");
    }
    Status applied = ReplayRecord(record, &db);
    if (!applied.ok()) return applied;
    last_seq = record.seq;
    ++replayed;
  }

  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));
  StatusOr<AppendFile> wal = AppendFile::Open(
      wal_path,
      /*truncate_to=*/static_cast<std::int64_t>(decoded_wal.valid_bytes));
  if (!wal.ok()) return wal.status();
  store->wal_ = std::move(wal).value();
  if (decoded_wal.valid_bytes < kWalMagic.size()) {
    // The header itself was lost or torn; rewrite it.
    Status header = store->wal_.Append(kWalMagic);
    if (header.ok()) header = store->wal_.Sync();
    if (!header.ok()) return header;
    store->counters_.wal_bytes = kWalMagic.size();
  } else {
    store->counters_.wal_bytes = decoded_wal.valid_bytes;
  }
  store->counters_.wal_records = decoded_wal.records.size();
  store->counters_.last_seq = last_seq;
  store->next_seq_ = last_seq + 1;

  // The persisted verdict cache is an optimization: a missing or corrupt
  // file costs warm starts, never correctness, so it is discarded (not
  // fatal) on any validation failure.
  PersistedVerdictMap verdicts;
  if (options.persist_verdicts) {
    const std::string verdict_path = dir + "/" + VerdictName(snapshot_seq);
    StatusOr<std::string> verdict_bytes = ReadFile(verdict_path);
    if (verdict_bytes.ok()) {
      StatusOr<PersistedVerdictMap> imported =
          DecodeVerdicts(*verdict_bytes, db);
      if (imported.ok()) verdicts = std::move(imported).value();
    }
  }

  OpenResult result{std::move(store),    std::move(db),
                    last_seq,            snapshot->meta,
                    std::move(verdicts), replayed};
  return std::move(result);
}

Status DurableStore::AppendBatch(WalRecord::Kind kind,
                                 std::vector<NamedFact> facts) {
  std::lock_guard lock(mu_);
  WalRecord record;
  record.seq = next_seq_;
  record.kind = kind;
  record.facts = std::move(facts);
  std::string bytes = EncodeWalRecord(record);

  Status appended = wal_.Append(bytes);
  if (!appended.ok()) return appended;
  switch (options_.fsync) {
    case FsyncPolicy::kEveryBatch: {
      Status synced = wal_.Sync();
      if (!synced.ok()) return synced;
      break;
    }
    case FsyncPolicy::kInterval:
      if (++records_since_sync_ >= options_.fsync_interval) {
        records_since_sync_ = 0;
        Status synced = wal_.Sync();
        if (!synced.ok()) return synced;
      }
      break;
    case FsyncPolicy::kNone:
      break;
  }

  counters_.last_seq = next_seq_;
  ++next_seq_;
  ++records_since_snapshot_;
  ++counters_.wal_records;
  counters_.wal_bytes += bytes.size();
  return Status::Ok();
}

bool DurableStore::ShouldSnapshot() const {
  std::lock_guard lock(mu_);
  return options_.snapshot_interval > 0 &&
         records_since_snapshot_ >= options_.snapshot_interval;
}

Status DurableStore::WriteSnapshot(const Database& db,
                                   const MetaCounters& meta,
                                   const PersistedVerdictMap& verdicts) {
  std::lock_guard lock(mu_);
  const std::uint64_t seq = next_seq_ - 1;

  Status written = WriteFileAtomic(dir_ + "/" + SnapshotName(seq),
                                   EncodeSnapshot(db, seq, meta));
  if (!written.ok()) return written;
  if (options_.persist_verdicts && !verdicts.empty()) {
    Status vwritten = WriteFileAtomic(dir_ + "/" + VerdictName(seq),
                                      EncodeVerdicts(verdicts));
    if (!vwritten.ok()) return vwritten;
  }

  // Prune: keep this snapshot and the newest older one (recovery's
  // fallback), drop everything else including orphaned verdict files and
  // abandoned tmp files.
  StatusOr<std::vector<std::string>> entries = ListDir(dir_);
  if (entries.ok()) {
    std::uint64_t keep_older = 0;
    bool have_older = false;
    for (const std::string& name : *entries) {
      std::uint64_t s = 0;
      if (ParseSeqName(name, "snapshot-", ".snap", &s) && s < seq &&
          (!have_older || s > keep_older)) {
        keep_older = s;
        have_older = true;
      }
    }
    for (const std::string& name : *entries) {
      std::uint64_t s = 0;
      bool drop = false;
      if (ParseSeqName(name, "snapshot-", ".snap", &s)) {
        drop = s != seq && (!have_older || s != keep_older);
      } else if (ParseSeqName(name, "verdicts-", ".bin", &s)) {
        drop = s != seq && (!have_older || s != keep_older);
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        drop = true;
      }
      if (drop) {
        Status removed = RemoveFile(dir_ + "/" + name);
        if (!removed.ok()) return removed;
      }
    }
  }

  // Reset the WAL to its header: every record at or below `seq` is now
  // covered by the snapshot (and replay would skip it anyway, which is
  // what makes a crash before this truncation harmless).
  Status reset = ResetWalLocked();
  if (!reset.ok()) return reset;

  ++counters_.snapshots;
  counters_.wal_records = 0;
  counters_.wal_bytes = kWalMagic.size();
  records_since_snapshot_ = 0;
  records_since_sync_ = 0;
  return Status::Ok();
}

Status DurableStore::ResetWalLocked() {
  wal_.Close();  // Drops any unsynced buffer — those records are in the
                 // snapshot that was just made durable.
  StatusOr<AppendFile> wal = AppendFile::Open(
      dir_ + "/" + kWalFile,
      /*truncate_to=*/static_cast<std::int64_t>(kWalMagic.size()));
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  return Status::Ok();
}

DurableStore::Counters DurableStore::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

Status DurableStore::Destroy(const std::string& dir) {
  return RemoveDirRecursive(dir);
}

}  // namespace store
}  // namespace cqa
