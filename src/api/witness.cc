#include "api/witness.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "query/eval.h"

namespace cqa {

Status VerifyWitness(const ConjunctiveQuery& q, const Database& db,
                     const Repair& witness) {
  Status bound = ValidateBinding(q, db);
  if (!bound.ok()) return bound;
  if (witness.database() != &db) {
    return Status(StatusCode::kInvalidArgument,
                  "witness repair is not bound to this database");
  }
  const std::vector<Block>& blocks = db.blocks();
  if (witness.choice().size() != blocks.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "witness selects " +
                      std::to_string(witness.choice().size()) +
                      " blocks, database has " +
                      std::to_string(blocks.size()));
  }
  for (BlockId b = 0; b < blocks.size(); ++b) {
    if (witness.choice()[b] >= blocks[b].facts.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "witness choice out of range in block " +
                        std::to_string(b));
    }
  }
  if (SatisfiesRepair(q, db, witness)) {
    return Status(StatusCode::kInvalidArgument,
                  "witness repair satisfies the query (not falsifying)");
  }
  return Status::Ok();
}

StatusOr<Repair> WitnessFromSpecs(const Database& db,
                                  const std::vector<FactSpec>& specs) {
  const std::vector<Block>& blocks = db.blocks();
  std::vector<std::uint32_t> choice(blocks.size(), 0);
  std::vector<char> covered(blocks.size(), 0);
  for (const FactSpec& spec : specs) {
    RelationId rel = db.schema().Find(spec.relation);
    if (rel == Schema::kNotFound) {
      return Status(StatusCode::kSchemaMismatch,
                    "witness names unknown relation '" + spec.relation + "'");
    }
    if (spec.args.size() != db.schema().Relation(rel).arity) {
      return Status(StatusCode::kSchemaMismatch,
                    "witness fact arity mismatch for '" + spec.relation + "'");
    }
    Fact fact;
    fact.relation = rel;
    fact.args.reserve(spec.args.size());
    bool exists = true;
    for (const std::string& name : spec.args) {
      ElementId el = db.elements().Find(name);
      if (el == Interner::kNotFound) {
        exists = false;
        break;
      }
      fact.args.push_back(el);
    }
    FactId id = exists ? db.FindFact(fact) : Database::kNoFact;
    if (id == Database::kNoFact) {
      return Status(StatusCode::kNotFound,
                    "witness names a fact absent from the database ('" +
                        spec.relation + "')");
    }
    BlockId b = db.BlockOf(id);
    if (covered[b] != 0) {
      return Status(StatusCode::kInvalidArgument,
                    "witness selects block " + std::to_string(b) + " twice");
    }
    const std::vector<FactId>& facts = blocks[b].facts;
    choice[b] = static_cast<std::uint32_t>(
        std::find(facts.begin(), facts.end(), id) - facts.begin());
    covered[b] = 1;
  }
  for (BlockId b = 0; b < blocks.size(); ++b) {
    if (covered[b] == 0) {
      return Status(StatusCode::kInvalidArgument,
                    "witness leaves block " + std::to_string(b) +
                        " unselected");
    }
  }
  return Repair(&db, std::move(choice));
}

}  // namespace cqa
