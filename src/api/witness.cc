#include "api/witness.h"

#include <string>

#include "query/eval.h"

namespace cqa {

Status VerifyWitness(const ConjunctiveQuery& q, const Database& db,
                     const Repair& witness) {
  Status bound = ValidateBinding(q, db);
  if (!bound.ok()) return bound;
  if (witness.database() != &db) {
    return Status(StatusCode::kInvalidArgument,
                  "witness repair is not bound to this database");
  }
  const std::vector<Block>& blocks = db.blocks();
  if (witness.choice().size() != blocks.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "witness selects " +
                      std::to_string(witness.choice().size()) +
                      " blocks, database has " +
                      std::to_string(blocks.size()));
  }
  for (BlockId b = 0; b < blocks.size(); ++b) {
    if (witness.choice()[b] >= blocks[b].facts.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "witness choice out of range in block " +
                        std::to_string(b));
    }
  }
  if (SatisfiesRepair(q, db, witness)) {
    return Status(StatusCode::kInvalidArgument,
                  "witness repair satisfies the query (not falsifying)");
  }
  return Status::Ok();
}

}  // namespace cqa
