// cqa::Service — the one stable entry point to the certain-answer engine.
//
// Everything outside src/ and tests/ (examples, benches, future servers)
// talks to this facade and nothing else:
//
//   Service service;
//   auto q = service.Compile("R(x | y) R(y | z)");
//   if (!q.ok()) { /* q.status(): typed code + line:column message */ }
//   service.RegisterDatabase("orders", std::move(db));   // prepared once
//   auto report = service.Solve(*q, "orders");
//   if (report.ok() && !report->certain && report->witness) {
//     // report->witness is a repair falsifying the query.
//   }
//
// Design:
//   - No exception crosses this boundary: every fallible call returns
//     Status or StatusOr (api/status.h).
//   - Compile parses, classifies, and binds the dichotomy backend once,
//     caching the handle by canonical query text (so "R(x|y)  R(y|z)"
//     and "R(x | y) R(y | z)" share one compilation) plus compile
//     options. Handles are cheap shared_ptr copies and stay valid for
//     the life of the Service.
//   - RegisterDatabase ingests and prepares (block partition + indexes)
//     once; every later solve against that name reuses the preparation.
//   - InsertFacts/DeleteFacts mutate a registered database in place:
//     the preparation is delta-maintained (never rebuilt) and solves
//     after a delta re-solve only the q-connected components the delta
//     touched, merging cached verdicts for the rest (see
//     engine/incremental.h; SolveReport::components_* report the reuse).
//   - Solves return SolveReport (api/report.h): answer, class,
//     algorithm, per-phase timings, size counters, and a
//     falsifying-repair witness for non-certain answers when the
//     backend supports Explain.
//
// Memory model: every per-database cache is bounded. The per-query
// incremental-solver map and each solver's per-component verdict cache
// are LRU-bounded (ServiceOptions::solver_cache / verdict_cache), and
// sustained deletion churn triggers tombstone compaction once the
// dead-slot ratio passes ServiceOptions::compact_dead_ratio: the Database
// reclaims its slots and publishes a FactIdRemap that delta-patches the
// prepared indexes and component partitions (content-addressed verdicts
// and witnesses survive). Service::Stats() snapshots cache sizes, hit
// rates, evictions, live-vs-tombstoned facts, and compactions run.
//
// Thread-safety: all methods lock internally around the shared maps, and
// each registered database carries a structure lock (shared_mutex):
// mutations and compactions take it exclusive for their (short, index-
// patching) critical section, while every solve — including cache-filling
// incremental solves — takes it shared. Mutations do NOT maintain the
// per-query component partitions inline: under the exclusive lock they
// only enqueue O(1) deltas per solver (engine/incremental.h), so batches
// touching disjoint components spend their exclusive window on the
// database/index writes alone; the union-find catch-up happens on the
// next solve or audit of each query, under that solver's own components
// lock. Concurrent cache-filling solves coordinate through the verdict
// cache's component-sharded locks: solvers of disjoint components run
// their backend passes in parallel; two solvers racing on the same
// component serialize, and the loser reuses the winner's verdict.
// Compile, registration, and solves on different databases also run
// concurrently; a database dropped mid-solve stays alive until the solve
// returns. ServiceOptions::exclusive_lock_baseline restores the
// pre-sharding behavior (every incremental solve exclusive) for
// benchmarking.
//
// The acquisition order across these locks is a machine-checked hierarchy
// (base/lock_rank.h): kServiceRegistry (mutex_) > kDbEntry (structure) >
// kWal (the DurableStore's WAL/snapshot lock) > kComponents (each
// incremental solver's deferred-delta/partition lock) > kVerdictShard
// (inc_mu and the verdict-cache shard locks). Checking builds
// (Debug/sanitizer trees, CQA_LOCK_RANK) abort with both acquisition
// stacks on any out-of-order acquisition.

#ifndef CQA_API_SERVICE_H_
#define CQA_API_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/report.h"
#include "api/status.h"
#include "api/witness.h"
#include "base/lock_rank.h"
#include "base/lru.h"
#include "classify/classifier.h"
#include "data/audit.h"
#include "data/database.h"
#include "data/prepared.h"
#include "engine/batch.h"
#include "engine/incremental.h"
#include "engine/solver.h"
#include "store/store.h"

namespace cqa {

/// Service-wide knobs, fixed at construction.
struct ServiceOptions {
  /// Practical k for Cert_k-based backends (see SolverOptions).
  std::uint32_t practical_k = 4;
  /// Bounds for the classifier's tripath search.
  TripathSearchLimits tripath_limits;
  /// Worker threads for SolveBatch; 0 means hardware concurrency.
  std::uint32_t batch_threads = 0;
  /// Attach falsifying-repair witnesses to non-certain reports (backends
  /// without Explain still report no witness).
  bool explain_non_certain = true;
  /// Solve registered databases through the per-component verdict cache
  /// (two-atom queries only; others always take the full-solve path).
  /// Costs one component partition per (database, query) pair up front;
  /// pays off as soon as the database mutates between solves.
  bool incremental_solving = true;

  // -- Memory & concurrency knobs (see the header comment) ------------

  /// Bounds for each incremental solver's per-component verdict cache
  /// (0 = unbounded on that axis). The entry cap rounds up to a multiple
  /// of IncrementalSolver::kNumShards. Size it above the database's
  /// expected component count: a cap below it turns the steady-state
  /// round-robin over components into LRU cycle-thrash where every solve
  /// re-solves everything (~100 bytes/verdict, so the default costs at
  /// most a few MB per database/query pair).
  CacheOptions verdict_cache{/*max_entries=*/65536, /*max_bytes=*/0};
  /// Keep per-component warm SAT sessions alive across mutations: with a
  /// session-capable backend (currently "sat"), each incremental solver
  /// holds one ComponentSession whose per-component CDCL solvers retain
  /// learned clauses, VSIDS scores, and phase saves between solves;
  /// mutations retract stale clauses via activation-literal assumptions
  /// instead of re-encoding. Off restores the materialize-a-sub-database
  /// cold path for every component solve.
  bool warm_sat_solvers = true;
  /// Bounds for each warm session's per-component solver pool (0 =
  /// unbounded on that axis). Evicted solvers lose their learned clauses
  /// (the next solve of that component starts cold) but their cumulative
  /// counters are salvaged into the session totals.
  CacheOptions sat_solver_cache{/*max_entries=*/64, /*max_bytes=*/0};
  /// CDCL knobs for each warm session's solvers (clause-DB reduction
  /// cadence, glue threshold, restart base). The defaults suit real
  /// workloads; tests crank the reduction thresholds down to force churn.
  CdclOptions sat_cdcl;
  /// Bounds for the per-database map of incremental solvers (one per
  /// distinct compiled query ever solved incrementally against it).
  /// Evicting a solver drops its component partition and verdict cache;
  /// the next solve of that query rebuilds them from the current state.
  CacheOptions solver_cache{/*max_entries=*/64, /*max_bytes=*/0};
  /// Bounds for the service-wide map of compiled queries (keyed by
  /// canonical text + forced backend). Handles pin their state via
  /// shared_ptr, so evicting a compiled query never invalidates handles
  /// already issued — the next Compile of an evicted text re-classifies.
  CacheOptions compile_cache{/*max_entries=*/256, /*max_bytes=*/0};
  /// Compact a registered database when its tombstoned slots exceed this
  /// fraction of all slots (checked after each DeleteFacts batch). With
  /// ratio r the slot count stays below alive/(1-r): the default keeps
  /// resident slots within 1.67x of the live size. A value >= 1 disables
  /// automatic compaction (CompactDatabase still works).
  double compact_dead_ratio = 0.4;
  /// Never auto-compact below this many slots (churn on tiny databases
  /// isn't worth the remap traffic).
  std::size_t compact_min_slots = 256;
  /// Benchmark baseline: take the per-database lock exclusively for every
  /// incremental solve (the pre-sharding PR 3 behavior) instead of
  /// running cache-filling solves in parallel under the shared lock.
  bool exclusive_lock_baseline = false;

  // -- Durability (src/store) -----------------------------------------

  /// On-disk durability for registered databases. When enabled, every
  /// mutation batch is WAL-logged (and, per `fsync`, fsync'd) *before*
  /// it is applied in memory and acknowledged; snapshots of the
  /// compacted fact store are written every `snapshot_interval` batches;
  /// RecoverDatabase rebuilds a database from the latest valid snapshot
  /// plus the WAL tail, deferring index preparation to first use.
  struct DurabilityOptions {
    bool enabled = false;
    /// Root directory; each database lives in <data_dir>/<escaped name>.
    std::string data_dir;
    /// When an acknowledged batch is guaranteed durable.
    store::FsyncPolicy fsync = store::FsyncPolicy::kEveryBatch;
    /// Batches between fsyncs under FsyncPolicy::kInterval.
    std::uint32_t fsync_interval = 32;
    /// WAL records between automatic snapshots; 0 disables them
    /// (CheckpointDatabase still snapshots on demand).
    std::uint32_t snapshot_interval = 1024;
    /// Persist the verdict caches with each snapshot; recovery re-seeds
    /// them (fingerprints are content-addressed, so persisted verdicts
    /// are valid across restarts by construction).
    bool persist_verdicts = true;
  };
  DurabilityOptions durability;
};

/// What a mutation batch did.
struct MutationStats {
  std::uint64_t applied = 0;             ///< Facts inserted or deleted.
  std::uint64_t ignored_duplicates = 0;  ///< Insert-only: already present.
  std::uint64_t compactions = 0;         ///< Compactions the batch triggered.
};

/// Point-in-time snapshot of the service's storage and cache state
/// (Service::Stats()): how state lives and ages across every layer —
/// fact slots vs tombstones and compactions at the data layer, verdict
/// caches at the engine layer, solver maps at the API layer.
struct ServiceStats {
  struct DatabaseStats {
    std::string name;
    /// Data layer: live facts, allocated slots (>= alive; the gap is
    /// tombstones awaiting compaction), blocks, compactions run so far.
    std::uint64_t alive_facts = 0;
    std::uint64_t fact_slots = 0;
    std::uint64_t tombstoned = 0;
    std::uint64_t blocks = 0;
    std::uint64_t compactions = 0;
    /// API layer: the LRU map of per-query incremental solvers.
    CacheCounters solvers;
    /// Engine layer: per-component verdict caches, summed over this
    /// database's live solvers.
    CacheCounters verdicts;
    /// SAT layer: cumulative warm-session CDCL counters (decisions,
    /// conflicts, learned kept/deleted, restarts, warm re-solves, clauses
    /// retracted), summed over this database's live solvers' sessions.
    /// All-zero when warm_sat_solvers is off or no session-capable
    /// backend has solved here.
    CdclStats sat;
    /// SAT layer: the sessions' per-component solver pools, summed.
    CacheCounters sat_solvers;
    /// Debug layer: Service::AuditDatabase runs against this database
    /// and cumulative violations they found (0 is the healthy value).
    /// Both survive a restart (they are persisted with each snapshot).
    std::uint64_t audits_run = 0;
    std::uint64_t audit_violations = 0;
    /// Store layer (durability on): records/bytes in the live WAL,
    /// snapshots written by this process, and whether this entry was
    /// rebuilt from disk (1) or registered fresh (0).
    std::uint64_t wal_records = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t recoveries = 0;
  };

  /// Serving layer (src/server): admission-queue and request-pipeline
  /// counters. The Service itself never writes these — they are all-zero
  /// until a server::Server wraps this service and fills them in its
  /// Stats() (the struct lives here so the one stats snapshot callers
  /// already consume covers the network boundary too).
  struct ServerCounters {
    /// Bounded admission queue: capacity, instantaneous depth, and the
    /// high-water mark since the server started.
    std::uint64_t queue_capacity = 0;
    std::uint64_t queue_depth = 0;
    std::uint64_t peak_queue_depth = 0;
    /// Requests accepted into the queue / completed with a response.
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    /// Requests shed with kOverloaded because the queue was full.
    std::uint64_t shed_overloaded = 0;
    /// Requests rejected with kDeadlineExceeded: at admission (already
    /// expired when decoded), at dequeue (expired while queued), and
    /// between pipeline stages (expired mid-execution).
    std::uint64_t deadline_rejected_admission = 0;
    std::uint64_t deadline_rejected_dequeue = 0;
    std::uint64_t deadline_rejected_pipeline = 0;
    /// Connections ever accepted / currently open, and frames that
    /// failed to decode into a request.
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_open = 0;
    std::uint64_t decode_errors = 0;
  };

  std::uint64_t compiled_queries = 0;
  /// API layer: the LRU map of compiled queries (Service::Compile).
  CacheCounters compiled;
  ServerCounters server;
  std::vector<DatabaseStats> databases;

  /// Multi-line human-readable rendering of the snapshot.
  std::string ToString() const;
};

/// Per-Compile knobs; part of the cache key.
struct CompileOptions {
  /// When nonempty, bypass the dichotomy dispatch and answer with this
  /// registry backend (e.g. "sat", "exhaustive").
  std::string forced_backend;
  /// Accept queries the classifier could not resolve within its tripath
  /// bounds (they fall back to the exact, exponential backend). Off by
  /// default: an unresolved classification is a typed error so callers
  /// explicitly opt into potentially exponential work.
  bool allow_unresolved = false;
};

/// A parsed + classified + backend-bound query; obtained from
/// Service::Compile, valid for the life of the Service. Cheap to copy.
class CompiledQuery {
 public:
  /// Empty handle; using it in a solve yields kInvalidArgument.
  CompiledQuery() = default;

  bool valid() const { return state_ != nullptr; }

  /// Canonical text (the parser's normal form, e.g. "R(x | y) R(y | z)").
  const std::string& text() const { return state_->text; }
  const ConjunctiveQuery& query() const { return state_->solver.query(); }
  const Classification& classification() const {
    return state_->solver.classification();
  }
  /// Registry name of the backend the dichotomy bound, e.g. "cert2".
  std::string_view backend_name() const {
    return state_->solver.backend().name();
  }
  SolverAlgorithm algorithm() const {
    return state_->solver.backend().algorithm();
  }

 private:
  friend class Service;
  struct State {
    State(std::string text_in, CertainSolver solver_in)
        : text(std::move(text_in)), solver(std::move(solver_in)) {}
    std::string text;
    CertainSolver solver;
    double parse_seconds = 0.0;
    double classify_seconds = 0.0;
  };
  explicit CompiledQuery(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<const State> state_;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});

  // Disallow copies: handles and prepared state point into this object.
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // -- Queries --------------------------------------------------------

  /// Parses, classifies, and binds `text` (cached). Errors:
  /// kInvalidQuery (with line:column + caret), kUnknownBackend,
  /// kCapabilityMismatch, kUnresolvedClass.
  [[nodiscard]] StatusOr<CompiledQuery> Compile(std::string_view text,
                                  const CompileOptions& options = {});

  /// Number of distinct compilations currently cached.
  std::size_t CompiledCount() const;

  // -- Databases ------------------------------------------------------

  /// Ingests `db` under `name`, preparing its indexes once. Errors:
  /// kAlreadyExists.
  [[nodiscard]] Status RegisterDatabase(std::string_view name, Database db);

  /// Removes a registered database. Errors: kNotFound. In-flight solves
  /// keep the entry alive (shared ownership) and finish normally; the
  /// storage is freed when the last of them returns. Witnesses held
  /// beyond that point into freed memory — discard them with the report.
  /// With durability enabled, the database's on-disk WAL/snapshot
  /// directory is deleted too, so a later RegisterDatabase under the
  /// same name starts from a clean slate.
  [[nodiscard]] Status DropDatabase(std::string_view name);

  // -- Durability (requires ServiceOptions::durability.enabled) -------

  /// Rebuilds `name` from its on-disk state: latest valid snapshot, WAL
  /// tail replayed on top (any torn or corrupt tail is detected by
  /// checksum and cleanly truncated, never loaded), persisted verdict
  /// cache re-seeded. Index preparation is deferred to the first solve
  /// or mutation. Errors: kInvalidArgument (durability off),
  /// kAlreadyExists (name registered), kNotFound (no durable state),
  /// kCorruptedData (state exists but nothing decodes).
  [[nodiscard]] Status RecoverDatabase(std::string_view name);

  /// Recovers every database with durable state under data_dir; returns
  /// the names recovered. Directories that fail to recover (partially
  /// created, corrupt beyond the snapshot fallback) are skipped.
  [[nodiscard]] StatusOr<std::vector<std::string>> RecoverAllDatabases();

  /// Forces a durability checkpoint now: compacts the database, writes a
  /// snapshot (with the verdict-cache export) and resets the WAL.
  /// Errors: kNotFound, kInvalidArgument (database not durable),
  /// kIoError.
  [[nodiscard]] Status CheckpointDatabase(std::string_view name);

  /// All alive facts of a registered database by name, in slot order
  /// (recovery tests compare this against a shadow model). Errors:
  /// kNotFound.
  [[nodiscard]] StatusOr<std::vector<FactSpec>> ListFacts(
      std::string_view db_name) const;

  /// Registered names in lexicographic order.
  std::vector<std::string> DatabaseNames() const;

  // -- Mutations ------------------------------------------------------

  /// Inserts facts into a registered database, delta-maintaining its
  /// preparation and component partitions. All-or-nothing: the whole
  /// batch is validated against the schema before anything is applied.
  /// Re-inserting an existing fact is a counted no-op (set semantics).
  /// Any mutation invalidates witnesses from earlier reports on this
  /// database (their block/choice indexes shift) — discard them.
  /// Errors: kNotFound (database), kSchemaMismatch (unknown relation or
  /// arity mismatch).
  [[nodiscard]] Status InsertFacts(std::string_view db_name,
                     const std::vector<FactSpec>& facts,
                     MutationStats* stats = nullptr);

  /// Deletes facts from a registered database, delta-maintaining its
  /// preparation and component partitions. All-or-nothing: every named
  /// fact must exist (and be named once) or nothing is deleted. Errors:
  /// kNotFound (database or fact), kSchemaMismatch (unknown relation or
  /// arity mismatch), kInvalidArgument (fact named twice in the batch).
  [[nodiscard]] Status DeleteFacts(std::string_view db_name,
                     const std::vector<FactSpec>& facts,
                     MutationStats* stats = nullptr);

  /// Compacts a registered database's tombstoned fact slots now,
  /// regardless of the automatic dead-slot-ratio trigger, delta-patching
  /// every dependent structure with the resulting FactIdRemap. A no-op
  /// (not an error) when there are no dead slots. Errors: kNotFound.
  [[nodiscard]] Status CompactDatabase(std::string_view db_name);

  // -- Solving --------------------------------------------------------

  /// Answers certain(q) on a registered database. Errors: kNotFound,
  /// kSchemaMismatch, kInvalidArgument (empty handle).
  ///
  /// With `name_witness`, a non-certain report additionally carries
  /// SolveReport::named_witness — the falsifying repair as fact *names*,
  /// resolved under the same lock hold as the solve, so it is consistent
  /// even when other threads mutate the database right after this call
  /// returns (the id-based `witness` is not: the serving layer always
  /// names). Costs one name lookup per block on non-certain answers.
  [[nodiscard]] StatusOr<SolveReport> Solve(const CompiledQuery& q,
                                            std::string_view db_name,
                                            bool name_witness) const;
  [[nodiscard]] StatusOr<SolveReport> Solve(const CompiledQuery& q,
                                            std::string_view db_name) const {
    return Solve(q, db_name, /*name_witness=*/false);
  }

  /// Answers certain(q) on a caller-owned database (prepared per call).
  [[nodiscard]] StatusOr<SolveReport> Solve(const CompiledQuery& q,
                                            const Database& db) const;

  /// One report per registered name, in input order; per-slot errors.
  std::vector<StatusOr<SolveReport>> SolveMany(
      const CompiledQuery& q, const std::vector<std::string>& db_names) const;

  /// Answers certain(q) on N caller-owned databases on the batch thread
  /// pool; per-slot errors (see BatchSolver::SolveAllReports).
  std::vector<StatusOr<SolveReport>> SolveBatch(
      const CompiledQuery& q, const std::vector<const Database*>& dbs,
      BatchStats* stats = nullptr) const;

  /// Convenience overload for owned databases.
  std::vector<StatusOr<SolveReport>> SolveBatch(
      const CompiledQuery& q, const std::vector<Database>& dbs,
      BatchStats* stats = nullptr) const;

  // -- Introspection --------------------------------------------------

  /// Registered backend names (the forced_backend vocabulary).
  static std::vector<std::string> BackendNames();

  /// Snapshots storage and cache state across all registered databases:
  /// live vs tombstoned facts, compactions run, solver-map and
  /// verdict-cache sizes, hit/miss/eviction counters.
  ServiceStats Stats() const;

  /// Deep-audits a registered database (data/audit.h): the fact store's
  /// arena/index/partition invariants, the prepared per-relation indexes,
  /// every live incremental solver's component partition and verdict
  /// cache, the solver map's LRU invariants, and the compile cache's.
  /// Runs under the shared structure lock, so it can race only against
  /// other readers; mutations wait. O(facts log facts) plus a fresh
  /// component partition per live solver — a debug/test entry point, not
  /// a production path. Cumulative audits_run/audit_violations counters
  /// surface in Stats(). Errors: kNotFound.
  [[nodiscard]] StatusOr<AuditReport> AuditDatabase(std::string_view db_name) const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct DbEntry {
    DbEntry(Database db_in, CacheOptions solver_cache)
        : db(std::move(db_in)), incremental(solver_cache) {}
    Database db;
    // Prepared after `db` has its final address (construction order).
    // Lazily built (EnsurePrepared): registration prepares eagerly, but
    // recovery defers the O(db) index build to the first solve or
    // mutation. `prepared_ready` lets Stats() peek without forcing the
    // build; everyone else goes through EnsurePrepared.
    mutable std::optional<PreparedDatabase> prepared;
    mutable double prepare_seconds = 0.0;
    mutable std::once_flag prepare_once;
    mutable std::atomic<bool> prepared_ready{false};
    // Structure lock: mutations and compactions (which patch the
    // database, its preparation, and the component partitions) are
    // exclusive; every solve — including cache-filling incremental
    // solves, which coordinate through the verdict cache's component
    // shard locks — is shared. Rank kDbEntry: below the registry lock,
    // above the solver-map and shard locks.
    mutable RankedSharedMutex<LockRank::kDbEntry> structure;
    struct IncrementalEntry {
      // Pins the compiled state the solver points into — a handle
      // compiled by another Service (or a future evictable compile
      // cache) must not be freed while this entry can still use it.
      std::shared_ptr<const CompiledQuery::State> state;
      std::unique_ptr<IncrementalSolver> solver;
    };
    // Incremental solver per compiled query, keyed by canonical query
    // text + backend name; created on first incremental solve and
    // LRU-evicted past ServiceOptions::solver_cache. Values are
    // shared_ptr so an eviction cannot free a solver out from under an
    // in-flight solve (the solve keeps its own reference; the evicted
    // solver simply stops receiving mutations and dies with the last
    // user). Guarded by inc_mu (the structure lock alone is not enough:
    // shared-mode solves mutate the map's LRU order). Rank kVerdictShard,
    // like the solver's shard locks: both are taken under the structure
    // lock and never inside each other.
    mutable RankedMutex<LockRank::kVerdictShard> inc_mu;
    LruCache<std::string, std::shared_ptr<IncrementalEntry>> incremental;
    // Compactions run on this database; written under the exclusive
    // structure lock, read under the shared one.
    std::uint64_t compactions = 0;
    // Cumulative Service::AuditDatabase outcomes; atomic because audits
    // run under the *shared* structure lock (they are reads). Seeded
    // from the snapshot's meta counters on recovery, so they survive a
    // restart.
    mutable std::atomic<std::uint64_t> audits_run{0};
    mutable std::atomic<std::uint64_t> audit_violations{0};
    // Durability (null when ServiceOptions::durability is off): the
    // database's WAL + snapshot store. Mutations append under the
    // exclusive structure lock before applying.
    std::unique_ptr<store::DurableStore> durable;
    // Verdicts loaded by recovery, imported into each incremental solver
    // when it is (re)created; read-only after recovery. Content-
    // addressed fingerprints keep them valid indefinitely.
    store::PersistedVerdictMap recovered_verdicts;
    // 1 when this entry was rebuilt from disk, 0 when registered fresh.
    std::uint64_t recoveries = 0;
  };

  /// Looks up a registered database (service lock held inside).
  StatusOr<std::shared_ptr<DbEntry>> FindEntry(std::string_view db_name) const;

  /// Builds the entry's prepared indexes if they are not built yet.
  /// Caller holds the structure lock (shared suffices: preparation only
  /// reads the database, and call_once serializes builders).
  void EnsurePrepared(DbEntry& entry) const;

  /// The on-disk directory of a database name under durability.data_dir.
  std::string DbDir(std::string_view name) const;

  /// Exports every live solver's verdict cache (plus still-unclaimed
  /// recovered verdicts) keyed by solver cache key, for WriteSnapshot.
  /// Caller holds the structure lock.
  store::PersistedVerdictMap ExportAllVerdicts(DbEntry& entry) const;

  /// Compacts (post-Compact is the snapshot's layout contract) and
  /// writes a snapshot + verdict export + WAL reset. Caller holds the
  /// exclusive structure lock.
  Status SnapshotLocked(DbEntry& entry) const;

  /// The entry's incremental solver for `q`, created on first use.
  /// Caller holds the entry's structure lock (shared suffices: the map
  /// itself is guarded by inc_mu, and solver construction only reads the
  /// database).
  std::shared_ptr<DbEntry::IncrementalEntry> IncrementalFor(
      DbEntry& entry, const CompiledQuery& q) const;

  /// Snapshots the entry's live solvers (for mutation fan-out).
  std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> LiveSolvers(
      DbEntry& entry) const;

  /// Compacts `entry` if its dead-slot ratio passed the configured
  /// trigger (or `force`), delta-patching the prepared indexes and the
  /// given solver snapshot with the remap. Caller holds the exclusive
  /// structure lock (so the snapshot cannot be stale). Returns true if a
  /// compaction ran.
  bool MaybeCompact(
      DbEntry& entry,
      const std::vector<std::shared_ptr<DbEntry::IncrementalEntry>>& solvers,
      bool force) const;

  /// Stamps the compile-time phase timings onto a finished report.
  void FillCompileTimings(const CompiledQuery& q, SolveReport* report) const;

  ServiceOptions options_;

  // Registry lock (rank kServiceRegistry, the hierarchy's top): guards
  // the database map and the compile cache; never held while taking any
  // per-database lock.
  mutable RankedMutex<LockRank::kServiceRegistry> mutex_;
  // shared_ptr values: CompiledQuery handles and incremental solvers pin
  // the state they use, so an LRU eviction only unlinks the cache entry —
  // the classification dies with its last user.
  mutable LruCache<std::string, std::shared_ptr<const CompiledQuery::State>>
      compiled_;
  // shared_ptr: a Solve copies the entry's ownership under the lock, so
  // a concurrent DropDatabase cannot free the database under it.
  std::map<std::string, std::shared_ptr<DbEntry>, std::less<>> databases_;
};

}  // namespace cqa

#endif  // CQA_API_SERVICE_H_
