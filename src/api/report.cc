#include "api/report.h"

#include <chrono>
#include <cstdio>

namespace cqa {

std::string SolveReport::Summary() const {
  char buffer[320];
  int written = std::snprintf(
      buffer, sizeof(buffer),
      "certain=%s class=[%s] algorithm=[%s] backend=%s "
      "facts=%llu blocks=%llu solve=%.3fms%s",
      certain ? "yes" : "no", ToString(query_class).c_str(),
      ToString(algorithm).c_str(), backend_name.c_str(),
      static_cast<unsigned long long>(num_facts),
      static_cast<unsigned long long>(num_blocks),
      timings.solve_seconds * 1e3,
      witness.has_value() ? " witness=present" : "");
  if (incremental && written > 0 &&
      static_cast<std::size_t>(written) < sizeof(buffer)) {
    std::snprintf(buffer + written, sizeof(buffer) - written,
                  " components=%llu resolved=%llu cached=%llu evicted=%llu",
                  static_cast<unsigned long long>(components_total),
                  static_cast<unsigned long long>(components_resolved),
                  static_cast<unsigned long long>(components_cached),
                  static_cast<unsigned long long>(cache_evictions));
  }
  return buffer;
}

SolveReport ExecuteReport(const Classification& classification,
                          const CertainBackend& backend,
                          const PreparedDatabase& pdb, bool want_witness) {
  SolveReport report;
  report.query_class = classification.query_class;
  report.complexity = classification.complexity;
  report.algorithm = backend.algorithm();
  report.backend_name = std::string(backend.name());
  report.num_facts = pdb.db().NumAliveFacts();
  report.num_blocks = pdb.blocks().size();

  auto start = std::chrono::steady_clock::now();
  if (want_witness && backend.CanExplain()) {
    // One pass answers both questions: certain iff no falsifier exists.
    report.witness = backend.Explain(pdb);
    report.certain = !report.witness.has_value();
  } else {
    report.certain = backend.Solve(pdb);
  }
  report.timings.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace cqa
