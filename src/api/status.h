// Status / StatusOr: the exception-free error model of the public API.
//
// Nothing that crosses the cqa::Service boundary throws. Fallible
// operations return Status (or StatusOr<T> when they also produce a
// value) with a typed code and a human-readable message; the legacy
// throwing entry points (ParseQuery, the CertainSolver constructor) are
// thin shims over the Status-returning variants and exist only for source
// compatibility inside the library.
//
// This header is deliberately a leaf: it depends on the standard library
// only, so every layer (query/, engine/, api/) can return Status without
// upward includes.

#ifndef CQA_API_STATUS_H_
#define CQA_API_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "base/check.h"

namespace cqa {

/// Why an API call failed. kOk is the only success code.
enum class StatusCode {
  kOk = 0,
  kInvalidQuery,       ///< Malformed query text (parse error, with position).
  kUnknownBackend,     ///< forced_backend names no registered backend.
  kCapabilityMismatch, ///< The chosen backend cannot answer this query.
  kUnresolvedClass,    ///< Classification hit its tripath search bounds.
  kSchemaMismatch,     ///< Database lacks or disagrees on a query relation.
  kNotFound,           ///< Unknown database name or stale handle.
  kAlreadyExists,      ///< Duplicate database registration.
  kInvalidArgument,    ///< Any other rejected input.
  kIoError,            ///< A durability I/O operation failed (or a
                       ///< simulated crash killed the store).
  kCorruptedData,      ///< On-disk bytes failed a checksum or structural
                       ///< validation; nothing of them was loaded.
  kOverloaded,         ///< The server's admission queue is full; the
                       ///< request was shed without being executed. Safe
                       ///< to retry (with backoff).
  kDeadlineExceeded,   ///< The request's deadline expired before (or
                       ///< while) it executed; it was abandoned at a
                       ///< pipeline-stage boundary.
};

/// Stable UPPER_SNAKE name of a code, e.g. "UNKNOWN_BACKEND".
std::string_view ToString(StatusCode code);

/// Inverse of ToString(StatusCode); nullopt for unrecognized names.
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Outcome of a fallible call: a code plus a message when not ok.
///
/// [[nodiscard]]: silently dropping a Status swallows the error — every
/// caller must test ok() or explicitly opt out. The same marker on
/// StatusOr and on each Status-returning method makes the compiler (and
/// clang-tidy's cert-err33-c) flag any discarded result.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value of type T; exactly one is present.
///
/// The accessors CHECK instead of throwing: dereferencing an error
/// StatusOr is a programming bug (the caller skipped the ok() test), not
/// a runtime condition, and the API boundary must stay exception-free.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Error state. CHECKs that `status` is not ok (an ok StatusOr must
  /// carry a value).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    CQA_CHECK_MSG(!status_.ok(), "StatusOr built from an ok Status");
  }

  /// Value state.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CQA_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  T& value() & {
    CQA_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  T&& value() && {
    CQA_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cqa

#endif  // CQA_API_STATUS_H_
