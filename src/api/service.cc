#include "api/service.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "engine/registry.h"
#include "query/eval.h"

namespace cqa {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::string SpecToString(const FactSpec& spec) {
  std::string out = spec.relation + "(";
  for (std::size_t i = 0; i < spec.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += spec.args[i];
  }
  return out + ")";
}

/// Escapes a database name into a file-system-safe directory name:
/// [A-Za-z0-9_-] pass through, everything else becomes %XX. Injective,
/// so UnescapeDbName can list a data_dir and recover the names.
std::string EscapeDbName(std::string_view name) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  for (char c : name) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (safe) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

/// Inverse of EscapeDbName; false on a malformed escape.
bool UnescapeDbName(const std::string& dir, std::string* name) {
  name->clear();
  for (std::size_t i = 0; i < dir.size(); ++i) {
    if (dir[i] != '%') {
      name->push_back(dir[i]);
      continue;
    }
    if (i + 2 >= dir.size()) return false;
    auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    int hi = nibble(dir[i + 1]);
    int lo = nibble(dir[i + 2]);
    if (hi < 0 || lo < 0) return false;
    name->push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return true;
}

/// The WAL's view of a FactSpec batch.
std::vector<store::NamedFact> ToNamedFacts(const std::vector<FactSpec>& facts) {
  std::vector<store::NamedFact> named;
  named.reserve(facts.size());
  for (const FactSpec& spec : facts) {
    named.push_back(store::NamedFact{spec.relation, spec.args});
  }
  return named;
}

/// Resolves a FactSpec's relation against the database schema, checking
/// the arity. Shared validation step of InsertFacts and DeleteFacts.
StatusOr<RelationId> ResolveSpec(const Database& db, const FactSpec& spec) {
  RelationId rel = db.schema().Find(spec.relation);
  if (rel == Schema::kNotFound) {
    return Status(StatusCode::kSchemaMismatch,
                  "unknown relation '" + spec.relation + "' in fact " +
                      SpecToString(spec));
  }
  std::uint32_t arity = db.schema().Relation(rel).arity;
  if (spec.args.size() != arity) {
    return Status(StatusCode::kSchemaMismatch,
                  "fact " + SpecToString(spec) + " has " +
                      std::to_string(spec.args.size()) +
                      " arguments, relation '" + spec.relation +
                      "' has arity " + std::to_string(arity));
  }
  return rel;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), compiled_(options_.compile_cache) {}

StatusOr<CompiledQuery> Service::Compile(std::string_view text,
                                         const CompileOptions& options) {
  auto parse_start = std::chrono::steady_clock::now();
  StatusOr<ConjunctiveQuery> parsed = ParseQueryOrStatus(text);
  if (!parsed.ok()) return parsed.status();
  double parse_seconds = SecondsSince(parse_start);

  // The cache key is the parser's canonical form, so formatting variants
  // of one query share a compilation. allow_unresolved is deliberately
  // not part of the key: the unresolved gate is re-applied on every hit.
  std::string key = parsed->ToString();
  key += '\x1f';
  key += options.forced_backend;

  std::shared_ptr<const CompiledQuery::State> cached;
  {
    std::lock_guard lock(mutex_);
    if (auto* hit = compiled_.Find(key)) cached = *hit;
  }
  if (cached == nullptr) {
    // Classify outside the lock: the tripath search can be slow, and a
    // hard compile must not stall every other Compile and Solve. A lost
    // race just means two threads classified the same query; the first
    // insertion wins and the duplicate is discarded.
    SolverOptions solver_options;
    solver_options.practical_k = options_.practical_k;
    solver_options.tripath_limits = options_.tripath_limits;
    solver_options.forced_backend = options.forced_backend;
    auto classify_start = std::chrono::steady_clock::now();
    StatusOr<CertainSolver> solver =
        CertainSolver::Create(std::move(parsed).value(),
                              std::move(solver_options));
    if (!solver.ok()) return solver.status();
    double classify_seconds = SecondsSince(classify_start);

    auto state = std::make_shared<CompiledQuery::State>(
        solver->query().ToString(), std::move(solver).value());
    state->parse_seconds = parse_seconds;
    state->classify_seconds = classify_seconds;

    std::lock_guard lock(mutex_);
    // A lost race means two threads classified the same query; keep the
    // first insertion (re-probe without recounting the lookup).
    if (auto* hit = compiled_.Find(key, /*count=*/false)) {
      cached = *hit;
    } else {
      cached = state;
      compiled_.Insert(std::move(key), std::move(state),
                       sizeof(CompiledQuery::State) + cached->text.size());
    }
  }

  const CompiledQuery::State& state = *cached;
  if (state.solver.classification().query_class == QueryClass::kUnresolved &&
      options.forced_backend.empty() && !options.allow_unresolved) {
    return Status(
        StatusCode::kUnresolvedClass,
        "classification unresolved within tripath search bounds for " +
            state.text +
            " (pass CompileOptions::allow_unresolved to fall back to the "
            "exact exponential backend, or raise "
            "ServiceOptions::tripath_limits): " +
            state.solver.classification().explanation);
  }
  return CompiledQuery(std::move(cached));
}

std::size_t Service::CompiledCount() const {
  std::lock_guard lock(mutex_);
  return compiled_.size();
}

void Service::EnsurePrepared(DbEntry& entry) const {
  std::call_once(entry.prepare_once, [&] {
    auto prepare_start = std::chrono::steady_clock::now();
    entry.prepared.emplace(entry.db);
    entry.prepare_seconds = SecondsSince(prepare_start);
    entry.prepared_ready.store(true, std::memory_order_release);
  });
}

std::string Service::DbDir(std::string_view name) const {
  return options_.durability.data_dir + "/" + EscapeDbName(name);
}

Status Service::RegisterDatabase(std::string_view name, Database db) {
  auto entry = std::make_shared<DbEntry>(std::move(db), options_.solver_cache);
  EnsurePrepared(*entry);  // Registration prepares eagerly.

  // Reserve the name first: only one caller per name ever reaches the
  // store-creation I/O below, so a racing Register cannot wipe the
  // directory another one just initialized.
  {
    std::lock_guard lock(mutex_);
    if (databases_.find(name) != databases_.end()) {
      return Status(StatusCode::kAlreadyExists,
                    "database \"" + std::string(name) +
                        "\" is already registered (DropDatabase first to "
                        "replace it)");
    }
    databases_.emplace(std::string(name), entry);
  }
  if (!options_.durability.enabled) return Status::Ok();

  // Initialize the on-disk store (wiping any leftover directory from a
  // dropped predecessor) outside the registry lock — it fsyncs.
  store::DurableStore::Options store_options;
  store_options.fsync = options_.durability.fsync;
  store_options.fsync_interval = options_.durability.fsync_interval;
  store_options.snapshot_interval = options_.durability.snapshot_interval;
  store_options.persist_verdicts = options_.durability.persist_verdicts;
  StatusOr<std::unique_ptr<store::DurableStore>> durable =
      store::DurableStore::Create(DbDir(name), entry->db, {}, store_options);
  if (!durable.ok()) {
    // Roll the reservation back: a durability-enabled database must not
    // exist without its store.
    std::lock_guard lock(mutex_);
    auto it = databases_.find(name);
    if (it != databases_.end() && it->second == entry) databases_.erase(it);
    return durable.status();
  }
  std::unique_lock lock(entry->structure);
  entry->durable = std::move(durable).value();
  return Status::Ok();
}

Status Service::DropDatabase(std::string_view name) {
  bool durable = false;
  {
    std::lock_guard lock(mutex_);
    auto it = databases_.find(name);
    if (it == databases_.end()) {
      return Status(StatusCode::kNotFound,
                    "unknown database \"" + std::string(name) + "\"");
    }
    durable = it->second->durable != nullptr;
    databases_.erase(it);
  }
  // Delete the on-disk state outside the registry lock (I/O). In-flight
  // solves still hold the entry; removing files under an open WAL fd is
  // fine on POSIX, and a re-register re-creates the directory fresh.
  if (durable) return store::DurableStore::Destroy(DbDir(name));
  return Status::Ok();
}

Status Service::RecoverDatabase(std::string_view name) {
  if (!options_.durability.enabled) {
    return Status(StatusCode::kInvalidArgument,
                  "RecoverDatabase requires ServiceOptions::durability");
  }
  {
    std::lock_guard lock(mutex_);
    if (databases_.find(name) != databases_.end()) {
      return Status(StatusCode::kAlreadyExists,
                    "database \"" + std::string(name) +
                        "\" is already registered");
    }
  }

  store::DurableStore::Options store_options;
  store_options.fsync = options_.durability.fsync;
  store_options.fsync_interval = options_.durability.fsync_interval;
  store_options.snapshot_interval = options_.durability.snapshot_interval;
  store_options.persist_verdicts = options_.durability.persist_verdicts;
  // Recover outside the registry lock: replay is O(state) and must not
  // stall the service. A racing recovery of the same name does redundant
  // read-only work; the registry insert keeps exactly one result.
  StatusOr<store::DurableStore::OpenResult> opened =
      store::DurableStore::Open(DbDir(name), store_options);
  if (!opened.ok()) return opened.status();

  auto entry = std::make_shared<DbEntry>(std::move(opened->db),
                                         options_.solver_cache);
  entry->durable = std::move(opened->store);
  entry->recovered_verdicts = std::move(opened->verdicts);
  entry->compactions = opened->meta.compactions;
  entry->audits_run.store(opened->meta.audits_run,
                          std::memory_order_relaxed);
  entry->audit_violations.store(opened->meta.audit_violations,
                                std::memory_order_relaxed);
  entry->recoveries = 1;
  // Preparation is deferred: the first solve or mutation pays the index
  // build, so recovering N databases is I/O-bound, not index-bound.

  std::lock_guard lock(mutex_);
  if (databases_.find(name) != databases_.end()) {
    return Status(StatusCode::kAlreadyExists,
                  "database \"" + std::string(name) +
                      "\" was registered while it was being recovered");
  }
  databases_.emplace(std::string(name), std::move(entry));
  return Status::Ok();
}

StatusOr<std::vector<std::string>> Service::RecoverAllDatabases() {
  if (!options_.durability.enabled) {
    return Status(StatusCode::kInvalidArgument,
                  "RecoverAllDatabases requires ServiceOptions::durability");
  }
  StatusOr<std::vector<std::string>> entries =
      store::ListDir(options_.durability.data_dir);
  if (!entries.ok()) {
    if (entries.status().code() == StatusCode::kNotFound) {
      return std::vector<std::string>{};  // Nothing persisted yet.
    }
    return entries.status();
  }
  std::vector<std::string> recovered;
  for (const std::string& dir : *entries) {
    std::string name;
    if (!UnescapeDbName(dir, &name)) continue;
    // Partially-created or corrupt-beyond-fallback directories are
    // skipped, not fatal: recovering the healthy databases matters more.
    if (RecoverDatabase(name).ok()) recovered.push_back(std::move(name));
  }
  return recovered;
}

std::vector<std::string> Service::DatabaseNames() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, entry] : databases_) names.push_back(name);
  return names;
}

void Service::FillCompileTimings(const CompiledQuery& q,
                                 SolveReport* report) const {
  report->timings.parse_seconds = q.state_->parse_seconds;
  report->timings.classify_seconds = q.state_->classify_seconds;
}

StatusOr<std::shared_ptr<Service::DbEntry>> Service::FindEntry(
    std::string_view db_name) const {
  // Copying the shared_ptr keeps the entry alive through the caller's
  // work even if DropDatabase erases it concurrently.
  std::lock_guard lock(mutex_);
  auto it = databases_.find(db_name);
  if (it == databases_.end()) {
    std::vector<std::string> names;
    names.reserve(databases_.size());
    for (const auto& [name, unused] : databases_) names.push_back(name);
    return Status(StatusCode::kNotFound,
                  "unknown database \"" + std::string(db_name) +
                      "\" (registered: " + JoinNames(names) + ")");
  }
  return it->second;
}

namespace {

// Keyed by canonical text + backend so formatting variants — and a
// forced backend that matches the dichotomy's own choice — share one
// component cache.
std::string IncrementalKey(const CompiledQuery& q) {
  std::string key = q.text();
  key += '\x1f';
  key += q.backend_name();
  return key;
}

// Resolves report->witness into named FactSpecs. Must run under the same
// structure-lock hold as the solve that produced the witness: the Repair
// holds block indexes into the current partition, and a mutation between
// solve and naming would shift them under us.
void NameWitness(const Database& db, SolveReport* report) {
  if (!report->witness.has_value()) return;
  const Repair& repair = *report->witness;
  std::vector<FactSpec> specs;
  specs.reserve(db.blocks().size());
  for (BlockId b = 0; b < db.blocks().size(); ++b) {
    FactRef fact = db.fact(repair.FactIn(b));
    FactSpec spec;
    spec.relation = db.schema().Relation(fact.relation).name;
    spec.args.reserve(fact.args.size());
    for (ElementId el : fact.args) spec.args.push_back(db.elements().Name(el));
    specs.push_back(std::move(spec));
  }
  report->named_witness = std::move(specs);
}

}  // namespace

std::shared_ptr<Service::DbEntry::IncrementalEntry> Service::IncrementalFor(
    DbEntry& entry, const CompiledQuery& q) const {
  std::string key = IncrementalKey(q);
  {
    std::lock_guard lock(entry.inc_mu);
    if (auto* hit = entry.incremental.Find(key)) return *hit;
  }
  // Build outside inc_mu: the component partition is O(db) and must not
  // stall other queries' solver lookups. Construction only reads the
  // database (safe under the caller's shared structure lock); a lost
  // race means two threads partitioned the same query and the first
  // insertion wins.
  auto made = std::make_shared<DbEntry::IncrementalEntry>();
  made->state = q.state_;
  made->solver = std::make_unique<IncrementalSolver>(
      q.state_->solver, *entry.prepared, options_.verdict_cache,
      IncrementalSolver::SessionOptions{options_.warm_sat_solvers,
                                        options_.sat_solver_cache,
                                        options_.sat_cdcl});
  // Seed the fresh cache with this query's persisted verdicts (recovery).
  // Content-addressed fingerprints make them valid whenever a component
  // re-reaches the recorded content, so re-seeding after an eviction is
  // just as sound as the first seeding.
  auto recovered = entry.recovered_verdicts.find(key);
  if (recovered != entry.recovered_verdicts.end()) {
    made->solver->ImportVerdicts(recovered->second);
  }
  std::lock_guard lock(entry.inc_mu);
  // Same logical lookup as the probe above: don't count a second miss.
  if (auto* hit = entry.incremental.Find(key, /*count=*/false)) return *hit;
  entry.incremental.Insert(std::move(key), made);
  return made;
}

std::vector<std::shared_ptr<Service::DbEntry::IncrementalEntry>>
Service::LiveSolvers(DbEntry& entry) const {
  std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> solvers;
  std::lock_guard lock(entry.inc_mu);
  entry.incremental.ForEach(
      [&](const std::string&,
          const std::shared_ptr<DbEntry::IncrementalEntry>& inc) {
        solvers.push_back(inc);
      });
  return solvers;
}

store::PersistedVerdictMap Service::ExportAllVerdicts(DbEntry& entry) const {
  std::vector<std::pair<std::string,
                        std::shared_ptr<DbEntry::IncrementalEntry>>> solvers;
  {
    std::lock_guard lock(entry.inc_mu);
    entry.incremental.ForEach(
        [&](const std::string& key,
            const std::shared_ptr<DbEntry::IncrementalEntry>& inc) {
          solvers.emplace_back(key, inc);
        });
  }
  store::PersistedVerdictMap map;
  for (auto& [key, inc] : solvers) {
    std::vector<store::PersistedVerdict> verdicts =
        inc->solver->ExportVerdicts();
    if (!verdicts.empty()) map.emplace(key, std::move(verdicts));
  }
  // Recovered verdicts whose solver was never re-created this run are
  // carried forward — still valid (content-addressed), still worth a
  // warm start next time.
  for (const auto& [key, verdicts] : entry.recovered_verdicts) {
    map.emplace(key, verdicts);  // No-op when a live export exists.
  }
  return map;
}

Status Service::SnapshotLocked(DbEntry& entry) const {
  // Snapshots serialize the *compacted* columns (dense arena offsets are
  // the format's contract), so reclaim tombstones first.
  MaybeCompact(entry, LiveSolvers(entry), /*force=*/true);
  store::MetaCounters meta;
  meta.compactions = entry.compactions;
  meta.audits_run = entry.audits_run.load(std::memory_order_relaxed);
  meta.audit_violations =
      entry.audit_violations.load(std::memory_order_relaxed);
  return entry.durable->WriteSnapshot(entry.db, meta,
                                      ExportAllVerdicts(entry));
}

bool Service::MaybeCompact(
    DbEntry& entry,
    const std::vector<std::shared_ptr<DbEntry::IncrementalEntry>>& solvers,
    bool force) const {
  if (!force) {
    if (entry.db.NumFacts() < options_.compact_min_slots) return false;
    if (entry.db.DeadSlotRatio() <= options_.compact_dead_ratio) return false;
  }
  if (entry.db.NumDeadSlots() == 0) return false;
  // Settle every solver's queued deltas first: they hold pre-remap fact
  // ids and read tombstoned tuples the compaction is about to destroy.
  for (const auto& inc : solvers) inc->solver->FlushPending();
  FactIdRemap remap = entry.db.Compact();
  entry.prepared->ApplyRemap(remap);
  for (const auto& inc : solvers) inc->solver->ApplyRemap(remap);
  ++entry.compactions;
  return true;
}

StatusOr<SolveReport> Service::Solve(const CompiledQuery& q,
                                     std::string_view db_name,
                                     bool name_witness) const {
  if (!q.valid()) {
    return Status(StatusCode::kInvalidArgument,
                  "empty CompiledQuery handle (use Service::Compile)");
  }
  StatusOr<std::shared_ptr<DbEntry>> entry = FindEntry(db_name);
  if (!entry.ok()) return entry.status();
  Status bound = ValidateBinding(q.query(), (*entry)->db);
  if (!bound.ok()) return bound;

  SolveReport report;
  if (options_.incremental_solving && q.query().NumAtoms() == 2) {
    if (options_.exclusive_lock_baseline) {
      // Benchmark baseline: the pre-sharding behavior, every incremental
      // solve exclusive per database.
      std::unique_lock lock((*entry)->structure);
      EnsurePrepared(**entry);
      auto inc = IncrementalFor(**entry, q);
      report = inc->solver->Solve(options_.explain_non_certain);
      if (name_witness) NameWitness((*entry)->db, &report);
    } else {
      // The shared lock only excludes mutations/compactions: concurrent
      // solves — cache hits and cache fills alike — proceed in parallel,
      // coordinating per component through the solver's shard locks.
      std::shared_lock lock((*entry)->structure);
      EnsurePrepared(**entry);
      auto inc = IncrementalFor(**entry, q);
      report = inc->solver->Solve(options_.explain_non_certain);
      if (name_witness) NameWitness((*entry)->db, &report);
    }
  } else {
    std::shared_lock lock((*entry)->structure);
    EnsurePrepared(**entry);
    report = ExecuteReport(q.classification(), q.state_->solver.backend(),
                           *(*entry)->prepared, options_.explain_non_certain);
    if (name_witness) NameWitness((*entry)->db, &report);
  }
  report.timings.prepare_seconds = (*entry)->prepare_seconds;
  FillCompileTimings(q, &report);
  return report;
}

Status Service::InsertFacts(std::string_view db_name,
                            const std::vector<FactSpec>& facts,
                            MutationStats* stats) {
  StatusOr<std::shared_ptr<DbEntry>> found = FindEntry(db_name);
  if (!found.ok()) return found.status();
  DbEntry& entry = **found;
  std::unique_lock lock(entry.structure);
  EnsurePrepared(entry);

  // Validate the whole batch before touching anything: a mutation either
  // applies completely or not at all.
  std::vector<RelationId> relations;
  relations.reserve(facts.size());
  for (const FactSpec& spec : facts) {
    StatusOr<RelationId> rel = ResolveSpec(entry.db, spec);
    if (!rel.ok()) return rel.status();
    relations.push_back(*rel);
  }

  // WAL-before-apply: the batch is durable (per the fsync policy) before
  // a single fact lands in memory; an append failure rejects the whole
  // batch un-applied.
  if (entry.durable != nullptr) {
    Status logged = entry.durable->AppendBatch(
        store::WalRecord::Kind::kInsert, ToNamedFacts(facts));
    if (!logged.ok()) return logged;
  }

  std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> solvers =
      LiveSolvers(entry);
  for (std::size_t i = 0; i < facts.size(); ++i) {
    std::vector<ElementId> args;
    args.reserve(facts[i].args.size());
    for (const std::string& name : facts[i].args) {
      args.push_back(entry.db.elements().Intern(name));
    }
    std::size_t slots_before = entry.db.NumFacts();
    FactId id = entry.db.AddFact(relations[i], std::move(args));
    if (entry.db.NumFacts() == slots_before) {
      // Set semantics: the fact was already present.
      if (stats != nullptr) ++stats->ignored_duplicates;
      continue;
    }
    entry.prepared->ApplyInsert(id);
    for (const auto& inc : solvers) inc->solver->OnInsert(id);
    if (stats != nullptr) ++stats->applied;
  }
  if (entry.durable != nullptr && entry.durable->ShouldSnapshot()) {
    // The batch is already durable in the WAL; a snapshot failure only
    // postpones compaction of the log, so it is deliberately swallowed.
    Status snapshot = SnapshotLocked(entry);
    (void)snapshot;
  }
  return Status::Ok();
}

Status Service::DeleteFacts(std::string_view db_name,
                            const std::vector<FactSpec>& facts,
                            MutationStats* stats) {
  StatusOr<std::shared_ptr<DbEntry>> found = FindEntry(db_name);
  if (!found.ok()) return found.status();
  DbEntry& entry = **found;
  std::unique_lock lock(entry.structure);
  EnsurePrepared(entry);

  // Validate and resolve the whole batch before touching anything.
  std::vector<FactId> ids;
  ids.reserve(facts.size());
  std::unordered_set<FactId> seen;
  seen.reserve(facts.size());
  for (const FactSpec& spec : facts) {
    StatusOr<RelationId> rel = ResolveSpec(entry.db, spec);
    if (!rel.ok()) return rel.status();
    Fact fact;
    fact.relation = *rel;
    fact.args.reserve(spec.args.size());
    bool exists = true;
    for (const std::string& name : spec.args) {
      ElementId el = entry.db.elements().Find(name);
      if (el == Interner::kNotFound) {
        exists = false;
        break;
      }
      fact.args.push_back(el);
    }
    FactId id = exists ? entry.db.FindFact(fact) : Database::kNoFact;
    if (id == Database::kNoFact) {
      return Status(StatusCode::kNotFound,
                    "no such fact " + SpecToString(spec) + " in database \"" +
                        std::string(db_name) + "\"");
    }
    if (!seen.insert(id).second) {
      return Status(StatusCode::kInvalidArgument,
                    "fact " + SpecToString(spec) +
                        " named twice in one DeleteFacts batch");
    }
    ids.push_back(id);
  }

  // WAL-before-apply, as in InsertFacts: validated, then logged, then
  // applied; never acknowledged without the log append succeeding.
  if (entry.durable != nullptr) {
    Status logged = entry.durable->AppendBatch(
        store::WalRecord::Kind::kDelete, ToNamedFacts(facts));
    if (!logged.ok()) return logged;
  }

  std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> solvers =
      LiveSolvers(entry);
  for (FactId id : ids) {
    Database::RemovedFact removed = entry.db.RemoveFact(id);
    entry.prepared->ApplyRemove(id, removed);
    for (const auto& inc : solvers) inc->solver->OnRemove(id);
    if (stats != nullptr) ++stats->applied;
  }
  // Deletion churn is the only thing that grows the dead-slot ratio;
  // reclaim tombstones once it passes the configured trigger. The solver
  // snapshot above is still current: no solver can appear while the
  // exclusive structure lock is held.
  if (MaybeCompact(entry, solvers, /*force=*/false) && stats != nullptr) {
    ++stats->compactions;
  }
  if (entry.durable != nullptr && entry.durable->ShouldSnapshot()) {
    Status snapshot = SnapshotLocked(entry);
    (void)snapshot;  // See InsertFacts: the WAL already covers the batch.
  }
  return Status::Ok();
}

Status Service::CompactDatabase(std::string_view db_name) {
  StatusOr<std::shared_ptr<DbEntry>> found = FindEntry(db_name);
  if (!found.ok()) return found.status();
  DbEntry& entry = **found;
  std::unique_lock lock(entry.structure);
  EnsurePrepared(entry);
  MaybeCompact(entry, LiveSolvers(entry), /*force=*/true);
  return Status::Ok();
}

Status Service::CheckpointDatabase(std::string_view name) {
  StatusOr<std::shared_ptr<DbEntry>> found = FindEntry(name);
  if (!found.ok()) return found.status();
  DbEntry& entry = **found;
  std::unique_lock lock(entry.structure);
  if (entry.durable == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "database \"" + std::string(name) +
                      "\" has no durable store (enable "
                      "ServiceOptions::durability)");
  }
  EnsurePrepared(entry);
  return SnapshotLocked(entry);
}

StatusOr<std::vector<FactSpec>> Service::ListFacts(
    std::string_view db_name) const {
  StatusOr<std::shared_ptr<DbEntry>> found = FindEntry(db_name);
  if (!found.ok()) return found.status();
  DbEntry& entry = **found;
  std::shared_lock lock(entry.structure);
  std::vector<FactSpec> out;
  out.reserve(entry.db.NumAliveFacts());
  for (FactId f = 0; f < entry.db.NumFacts(); ++f) {
    if (!entry.db.alive(f)) continue;
    FactRef fact = entry.db.fact(f);
    FactSpec spec;
    spec.relation = entry.db.schema().Relation(fact.relation).name;
    spec.args.reserve(fact.args.size());
    for (ElementId el : fact.args) {
      spec.args.push_back(entry.db.elements().Name(el));
    }
    out.push_back(std::move(spec));
  }
  return out;
}

StatusOr<SolveReport> Service::Solve(const CompiledQuery& q,
                                     const Database& db) const {
  if (!q.valid()) {
    return Status(StatusCode::kInvalidArgument,
                  "empty CompiledQuery handle (use Service::Compile)");
  }
  Status bound = ValidateBinding(q.query(), db);
  if (!bound.ok()) return bound;
  auto prepare_start = std::chrono::steady_clock::now();
  PreparedDatabase pdb(db);
  double prepare_seconds = SecondsSince(prepare_start);
  SolveReport report =
      ExecuteReport(q.classification(), q.state_->solver.backend(), pdb,
                    options_.explain_non_certain);
  report.timings.prepare_seconds = prepare_seconds;
  FillCompileTimings(q, &report);
  return report;
}

std::vector<StatusOr<SolveReport>> Service::SolveMany(
    const CompiledQuery& q, const std::vector<std::string>& db_names) const {
  std::vector<StatusOr<SolveReport>> reports;
  reports.reserve(db_names.size());
  for (const std::string& name : db_names) reports.push_back(Solve(q, name));
  return reports;
}

std::vector<StatusOr<SolveReport>> Service::SolveBatch(
    const CompiledQuery& q, const std::vector<const Database*>& dbs,
    BatchStats* stats) const {
  if (!q.valid()) {
    std::vector<StatusOr<SolveReport>> reports;
    reports.reserve(dbs.size());
    for (std::size_t i = 0; i < dbs.size(); ++i) {
      reports.push_back(
          Status(StatusCode::kInvalidArgument,
                 "empty CompiledQuery handle (use Service::Compile)"));
    }
    return reports;
  }
  BatchOptions batch_options;
  batch_options.num_threads = options_.batch_threads;
  batch_options.want_witness = options_.explain_non_certain;
  BatchSolver batch(q.state_->solver, batch_options);
  std::vector<StatusOr<SolveReport>> reports =
      batch.SolveAllReports(dbs, stats);
  for (StatusOr<SolveReport>& report : reports) {
    if (report.ok()) FillCompileTimings(q, &report.value());
  }
  return reports;
}

std::vector<StatusOr<SolveReport>> Service::SolveBatch(
    const CompiledQuery& q, const std::vector<Database>& dbs,
    BatchStats* stats) const {
  std::vector<const Database*> pointers;
  pointers.reserve(dbs.size());
  for (const Database& db : dbs) pointers.push_back(&db);
  return SolveBatch(q, pointers, stats);
}

std::vector<std::string> Service::BackendNames() {
  return BackendRegistry::Global().Names();
}

ServiceStats Service::Stats() const {
  ServiceStats stats;
  std::vector<std::pair<std::string, std::shared_ptr<DbEntry>>> entries;
  {
    std::lock_guard lock(mutex_);
    stats.compiled_queries = compiled_.size();
    stats.compiled = compiled_.Counters();
    entries.reserve(databases_.size());
    for (const auto& [name, entry] : databases_) {
      entries.emplace_back(name, entry);
    }
  }
  for (const auto& [name, entry] : entries) {
    // Shared: a stats poll must never stall solves; it can briefly delay
    // a mutation, like any reader.
    std::shared_lock lock(entry->structure);
    ServiceStats::DatabaseStats d;
    d.name = name;
    d.alive_facts = entry->db.NumAliveFacts();
    d.fact_slots = entry->db.NumFacts();
    d.tombstoned = entry->db.NumDeadSlots();
    // A stats poll must not force a recovered entry's deferred index
    // build; blocks read 0 until the first solve or mutation prepares.
    d.blocks = entry->prepared_ready.load(std::memory_order_acquire)
                   ? entry->prepared->blocks().size()
                   : 0;
    d.compactions = entry->compactions;
    if (entry->durable != nullptr) {
      store::DurableStore::Counters wal = entry->durable->counters();
      d.wal_records = wal.wal_records;
      d.wal_bytes = wal.wal_bytes;
      d.snapshots = wal.snapshots;
    }
    d.recoveries = entry->recoveries;
    // Snapshot the solver-map counters and list in one inc_mu section,
    // but sum the shard counters outside it: a shard mutex can be held
    // across a backend run, and blocking on it while holding inc_mu
    // would stall every solve's solver-map probe for the duration
    // (solvers are shared_ptr-held, so the snapshot stays valid).
    std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> solvers;
    {
      std::lock_guard inc_lock(entry->inc_mu);
      d.solvers = entry->incremental.Counters();
      entry->incremental.ForEach(
          [&](const std::string&,
              const std::shared_ptr<DbEntry::IncrementalEntry>& inc) {
            solvers.push_back(inc);
          });
    }
    for (const auto& inc : solvers) {
      d.verdicts += inc->solver->VerdictCacheCounters();
      d.sat += inc->solver->SatSessionStats();
      d.sat_solvers += inc->solver->SessionCacheCounters();
    }
    d.audits_run = entry->audits_run.load(std::memory_order_relaxed);
    d.audit_violations =
        entry->audit_violations.load(std::memory_order_relaxed);
    stats.databases.push_back(std::move(d));
  }
  return stats;
}

StatusOr<AuditReport> Service::AuditDatabase(std::string_view db_name) const {
  StatusOr<std::shared_ptr<DbEntry>> entry_or = FindEntry(db_name);
  if (!entry_or.ok()) return entry_or.status();
  const std::shared_ptr<DbEntry>& entry = entry_or.value();

  AuditReport report;
  // The compile cache lives under the registry lock; audit it before any
  // per-database lock (the hierarchy forbids registry-after-structure).
  {
    std::lock_guard lock(mutex_);
    report.checks += 4;
    compiled_.AuditInvariants([&](const std::string& message) {
      report.Add("lru", "compile cache: " + message);
    });
  }

  // Shared: auditing only reads, so it rides alongside solves; mutations
  // and compactions (exclusive) wait, which is what makes the snapshot
  // below internally consistent.
  std::shared_lock lock(entry->structure);
  EnsurePrepared(*entry);
  report.Merge(::cqa::AuditDatabase(entry->db));
  report.Merge(AuditPrepared(*entry->prepared));

  // Snapshot the solver map under inc_mu, but run each solver's audit
  // after releasing it: AuditInto takes the verdict shard locks, which
  // share inc_mu's rank precisely because the two never nest.
  std::vector<std::shared_ptr<DbEntry::IncrementalEntry>> solvers;
  {
    std::lock_guard inc_lock(entry->inc_mu);
    report.checks += 4;
    entry->incremental.AuditInvariants([&](const std::string& message) {
      report.Add("lru", "solver map: " + message);
    });
    entry->incremental.ForEach(
        [&](const std::string&,
            const std::shared_ptr<DbEntry::IncrementalEntry>& inc) {
          solvers.push_back(inc);
        });
  }
  for (const auto& inc : solvers) {
    inc->solver->AuditInto(report);
  }

  entry->audits_run.fetch_add(1, std::memory_order_relaxed);
  entry->audit_violations.fetch_add(report.total_violations,
                                    std::memory_order_relaxed);
  return report;
}

std::string ServiceStats::ToString() const {
  std::string out =
      "compiled queries: " + std::to_string(compiled_queries) +
      " (hits=" + std::to_string(compiled.hits) +
      " misses=" + std::to_string(compiled.misses) +
      " evictions=" + std::to_string(compiled.evictions) + ")\n";
  if (server.queue_capacity != 0) {
    out += "server: queue=" + std::to_string(server.queue_depth) + "/" +
           std::to_string(server.queue_capacity) +
           " (peak " + std::to_string(server.peak_queue_depth) + ")" +
           " admitted=" + std::to_string(server.admitted) +
           " completed=" + std::to_string(server.completed) +
           " shed=" + std::to_string(server.shed_overloaded) +
           " deadline=" +
           std::to_string(server.deadline_rejected_admission) + "/" +
           std::to_string(server.deadline_rejected_dequeue) + "/" +
           std::to_string(server.deadline_rejected_pipeline) +
           " conns=" + std::to_string(server.connections_open) + "/" +
           std::to_string(server.connections_accepted) +
           " decode_errors=" + std::to_string(server.decode_errors) + "\n";
  }
  for (const DatabaseStats& d : databases) {
    out += "database \"" + d.name + "\": facts=" +
           std::to_string(d.alive_facts) + " slots=" +
           std::to_string(d.fact_slots) + " (tombstoned " +
           std::to_string(d.tombstoned) + ") blocks=" +
           std::to_string(d.blocks) + " compactions=" +
           std::to_string(d.compactions) + "\n";
    out += "  solvers: entries=" + std::to_string(d.solvers.entries) +
           " hits=" + std::to_string(d.solvers.hits) +
           " misses=" + std::to_string(d.solvers.misses) +
           " evictions=" + std::to_string(d.solvers.evictions) + "\n";
    out += "  verdicts: entries=" + std::to_string(d.verdicts.entries) +
           " bytes=" + std::to_string(d.verdicts.bytes) +
           " hits=" + std::to_string(d.verdicts.hits) +
           " misses=" + std::to_string(d.verdicts.misses) +
           " evictions=" + std::to_string(d.verdicts.evictions) + "\n";
    if (d.sat.solves != 0) {
      out += "  sat: solves=" + std::to_string(d.sat.solves) +
             " (warm " + std::to_string(d.sat.warm_solves) + ")" +
             " conflicts=" + std::to_string(d.sat.conflicts) +
             " restarts=" + std::to_string(d.sat.restarts) +
             " learned kept=" + std::to_string(d.sat.learned_kept) +
             " deleted=" + std::to_string(d.sat.learned_deleted) +
             " retracted=" + std::to_string(d.sat.clauses_retracted) +
             " solvers=" + std::to_string(d.sat_solvers.entries) +
             " (evicted " + std::to_string(d.sat_solvers.evictions) + ")\n";
    }
    if (d.audits_run != 0) {
      out += "  audits: runs=" + std::to_string(d.audits_run) +
             " violations=" + std::to_string(d.audit_violations) + "\n";
    }
  }
  return out;
}

}  // namespace cqa
