#include "api/status.h"

namespace cqa {

std::string_view ToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidQuery: return "INVALID_QUERY";
    case StatusCode::kUnknownBackend: return "UNKNOWN_BACKEND";
    case StatusCode::kCapabilityMismatch: return "CAPABILITY_MISMATCH";
    case StatusCode::kUnresolvedClass: return "UNRESOLVED_CLASSIFICATION";
    case StatusCode::kSchemaMismatch: return "SCHEMA_MISMATCH";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruptedData: return "CORRUPTED_DATA";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "?";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,              StatusCode::kInvalidQuery,
      StatusCode::kUnknownBackend,  StatusCode::kCapabilityMismatch,
      StatusCode::kUnresolvedClass, StatusCode::kSchemaMismatch,
      StatusCode::kNotFound,        StatusCode::kAlreadyExists,
      StatusCode::kInvalidArgument, StatusCode::kIoError,
      StatusCode::kCorruptedData,   StatusCode::kOverloaded,
      StatusCode::kDeadlineExceeded,
  };
  for (StatusCode code : kAll) {
    if (ToString(code) == name) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(cqa::ToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cqa
