// SolveReport: the answer to certain(q) with full provenance.
//
// Like api/status.h, this is boundary *vocabulary*, not machinery: it
// depends only on layers below engine/, so engine/batch.h can speak
// StatusOr<SolveReport> without pulling the Service in — the dependency
// between engine/ and the api/ machinery stays one-way (api uses engine).
//
// Replaces the bare SolverAnswer {bool, enum} at the API boundary: every
// solve reports what was decided, by which dichotomy class and algorithm,
// how long each phase took, how big the instance was, and — when the
// answer is not certain and the backend supports Explain — a falsifying
// repair witness that VerifyWitness (api/witness.h) can check
// independently.

#ifndef CQA_API_REPORT_H_
#define CQA_API_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "data/prepared.h"
#include "data/repair.h"
#include "engine/backend.h"

namespace cqa {

/// One fact named at the API boundary: a relation name plus element names
/// (interned on insert). The schema decides which prefix is the key.
/// Mutation batches are vectors of these, and named witnesses use them
/// too — names survive mutations and process boundaries where FactIds
/// and block indexes do not.
struct FactSpec {
  std::string relation;
  std::vector<std::string> args;
};

/// Wall-clock seconds per phase. Parse and classify happen once per
/// compiled query (Service::Compile) and are amortized over every solve
/// with that handle; prepare happens once per registered database (or per
/// ad-hoc solve); solve is per call.
struct PhaseTimings {
  double parse_seconds = 0.0;
  double classify_seconds = 0.0;
  double prepare_seconds = 0.0;
  double solve_seconds = 0.0;
};

/// Answer with provenance; the only result type the public API returns.
struct SolveReport {
  bool certain = false;

  /// Where the query landed in the dichotomy and what answered.
  QueryClass query_class = QueryClass::kUnresolved;
  Complexity complexity = Complexity::kUnknown;
  SolverAlgorithm algorithm = SolverAlgorithm::kExhaustive;
  std::string backend_name;

  PhaseTimings timings;

  /// Instance size counters (num_facts counts alive facts).
  std::uint64_t num_facts = 0;
  std::uint64_t num_blocks = 0;

  /// Component-level reuse (set only by the incremental solve path of
  /// mutable registered databases; zero/false on the full-solve path).
  /// components_resolved + components_cached == components_total.
  bool incremental = false;
  std::uint64_t components_total = 0;
  std::uint64_t components_resolved = 0;
  std::uint64_t components_cached = 0;
  /// Verdict-cache entries this solve evicted to stay within the
  /// configured CacheOptions bounds (incremental path only).
  std::uint64_t cache_evictions = 0;

  /// Warm-SAT observability (incremental path with a session-capable
  /// backend only; all-zero otherwise). True when a warm per-component
  /// solver session served this solve's backend runs.
  bool sat_warm = false;
  /// Cumulative CDCL counters of the database's warm session as of the
  /// end of this solve: solves/warm_solves, learned kept/deleted,
  /// restarts, clauses retracted by activation-literal retraction, ...
  CdclStats sat;

  /// A repair falsifying the query: present only when certain is false
  /// and the backend supports Explain. Points into the solved database
  /// and is valid while that database lives AND keeps its current
  /// content: mutating a registered database (Service::InsertFacts/
  /// DeleteFacts) shifts blocks and choices, so previously returned
  /// witnesses must be discarded (re-solve for a fresh one).
  std::optional<Repair> witness;

  /// The same falsifying repair as named fact tuples (one per block),
  /// filled only when the solve was asked to name it
  /// (Service::Solve(q, db_name, /*name_witness=*/true)). Unlike
  /// `witness`, names stay meaningful after later mutations and across
  /// process boundaries — the serving layer ships these over the wire,
  /// and WitnessFromSpecs (api/witness.h) rebuilds a checkable Repair.
  std::optional<std::vector<FactSpec>> named_witness;

  /// One-line human-readable summary (never prints raw enum ints).
  std::string Summary() const;
};

/// Runs a prepared `backend` on `pdb` and assembles the per-call part of
/// the report: answer, provenance, counters, solve timing, and (when
/// `want_witness` and not certain) the backend's witness. For backends
/// with CanExplain the answer and witness come from one Explain pass
/// (never Solve *and* Explain, which would double the expensive
/// searches). Parse/classify/prepare timings are the caller's to fill
/// in. Shared by Service and BatchSolver so single-shot and batch
/// reports can never drift apart.
SolveReport ExecuteReport(const Classification& classification,
                          const CertainBackend& backend,
                          const PreparedDatabase& pdb, bool want_witness);

}  // namespace cqa

#endif  // CQA_API_REPORT_H_
