// VerifyWitness: independent check of a falsifying-repair witness.
//
// SolveReports carry a witness repair when the answer is not certain and
// the answering backend supports CertainBackend::Explain. VerifyWitness
// re-derives the claim from first principles — the witness is a
// structurally valid repair of the database and the query fails on it —
// using only the evaluator, never the backend that produced it, so a
// buggy backend cannot vouch for itself.

#ifndef CQA_API_WITNESS_H_
#define CQA_API_WITNESS_H_

#include <vector>

#include "api/report.h"
#include "api/status.h"
#include "data/database.h"
#include "data/repair.h"
#include "query/query.h"

namespace cqa {

/// Ok iff `witness` is a well-formed repair of `db` (one in-range choice
/// per block, bound to this database) and q fails on it. Error codes:
/// kInvalidArgument for a malformed or satisfied witness, kSchemaMismatch
/// when db cannot be bound to q at all.
[[nodiscard]] Status VerifyWitness(const ConjunctiveQuery& q, const Database& db,
                     const Repair& witness);

/// Rebuilds a Repair from a named witness (SolveReport::named_witness or
/// a wire response): each spec must resolve to exactly one alive fact of
/// `db`, and together they must select one fact per block. The result is
/// checkable with VerifyWitness against the same database state. Error
/// codes: kSchemaMismatch (unknown relation/arity), kNotFound (no such
/// fact), kInvalidArgument (a block selected twice or not at all).
[[nodiscard]] StatusOr<Repair> WitnessFromSpecs(
    const Database& db, const std::vector<FactSpec>& specs);

}  // namespace cqa

#endif  // CQA_API_WITNESS_H_
