// VerifyWitness: independent check of a falsifying-repair witness.
//
// SolveReports carry a witness repair when the answer is not certain and
// the answering backend supports CertainBackend::Explain. VerifyWitness
// re-derives the claim from first principles — the witness is a
// structurally valid repair of the database and the query fails on it —
// using only the evaluator, never the backend that produced it, so a
// buggy backend cannot vouch for itself.

#ifndef CQA_API_WITNESS_H_
#define CQA_API_WITNESS_H_

#include "api/status.h"
#include "data/database.h"
#include "data/repair.h"
#include "query/query.h"

namespace cqa {

/// Ok iff `witness` is a well-formed repair of `db` (one in-range choice
/// per block, bound to this database) and q fails on it. Error codes:
/// kInvalidArgument for a malformed or satisfied witness, kSchemaMismatch
/// when db cannot be bound to q at all.
[[nodiscard]] Status VerifyWitness(const ConjunctiveQuery& q, const Database& db,
                     const Repair& witness);

}  // namespace cqa

#endif  // CQA_API_WITNESS_H_
