#include "sat/dpll.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {
namespace {

enum class Value : std::uint8_t { kUnset, kTrue, kFalse };

struct DpllState {
  const CnfFormula* formula;
  std::vector<Value> values;

  bool LitTrue(const Literal& lit) const {
    Value v = values[lit.var];
    if (v == Value::kUnset) return false;
    return (v == Value::kTrue) == lit.positive;
  }
  bool LitFalse(const Literal& lit) const {
    Value v = values[lit.var];
    if (v == Value::kUnset) return false;
    return (v == Value::kTrue) != lit.positive;
  }
};

/// Returns false on conflict. On success, appends propagated vars to trail.
bool UnitPropagate(DpllState* state, std::vector<std::uint32_t>* trail) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& c : state->formula->clauses) {
      std::uint32_t unset_count = 0;
      const Literal* unset_lit = nullptr;
      bool satisfied = false;
      for (const Literal& lit : c) {
        if (state->LitTrue(lit)) {
          satisfied = true;
          break;
        }
        if (state->values[lit.var] == Value::kUnset) {
          ++unset_count;
          unset_lit = &lit;
        }
      }
      if (satisfied) continue;
      if (unset_count == 0) return false;  // Conflict.
      if (unset_count == 1) {
        state->values[unset_lit->var] =
            unset_lit->positive ? Value::kTrue : Value::kFalse;
        trail->push_back(unset_lit->var);
        changed = true;
      }
    }
  }
  return true;
}

bool DpllRec(DpllState* state) {
  std::vector<std::uint32_t> trail;
  if (!UnitPropagate(state, &trail)) {
    for (std::uint32_t v : trail) state->values[v] = Value::kUnset;
    return false;
  }

  // Pick the unset variable with the most occurrences in unsatisfied
  // clauses; if none, all clauses are satisfied or vacuous.
  std::vector<std::uint32_t> score(state->values.size(), 0);
  bool all_satisfied = true;
  for (const Clause& c : state->formula->clauses) {
    bool satisfied = false;
    for (const Literal& lit : c) {
      if (state->LitTrue(lit)) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    all_satisfied = false;
    for (const Literal& lit : c) {
      if (state->values[lit.var] == Value::kUnset) ++score[lit.var];
    }
  }
  if (all_satisfied) return true;

  std::uint32_t best = 0;
  std::uint32_t best_score = 0;
  for (std::uint32_t v = 0; v < score.size(); ++v) {
    if (state->values[v] == Value::kUnset && score[v] >= best_score) {
      best = v;
      best_score = score[v];
    }
  }

  for (Value choice : {Value::kTrue, Value::kFalse}) {
    state->values[best] = choice;
    if (DpllRec(state)) return true;
    state->values[best] = Value::kUnset;
  }
  for (std::uint32_t v : trail) state->values[v] = Value::kUnset;
  return false;
}

}  // namespace

SatResult SolveDpll(const CnfFormula& f) {
  // Empty clause => unsat immediately.
  for (const Clause& c : f.clauses) {
    if (c.empty()) return SatResult{false, {}};
  }
  DpllState state{&f, std::vector<Value>(f.num_vars, Value::kUnset)};
  SatResult result;
  result.satisfiable = DpllRec(&state);
  if (result.satisfiable) {
    result.assignment.resize(f.num_vars);
    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      result.assignment[v] = state.values[v] == Value::kTrue;
    }
    CQA_CHECK(f.Evaluate(result.assignment));
  }
  return result;
}

SatResult SolveBruteForce(const CnfFormula& f) {
  CQA_CHECK_MSG(f.num_vars <= 24, "brute force limited to 24 variables");
  std::vector<bool> assignment(f.num_vars, false);
  for (std::uint64_t bits = 0; bits < (1ULL << f.num_vars); ++bits) {
    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      assignment[v] = (bits >> v) & 1;
    }
    if (f.Evaluate(assignment)) return SatResult{true, assignment};
  }
  return SatResult{false, {}};
}

}  // namespace cqa
