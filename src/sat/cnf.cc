#include "sat/cnf.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/check.h"

namespace cqa {

std::vector<std::uint32_t> CnfFormula::OccurrenceCounts() const {
  std::vector<std::uint32_t> counts(num_vars, 0);
  for (const Clause& c : clauses) {
    for (const Literal& lit : c) ++counts[lit.var];
  }
  return counts;
}

void CnfFormula::PolarityCounts(std::vector<std::uint32_t>* positive,
                                std::vector<std::uint32_t>* negative) const {
  positive->assign(num_vars, 0);
  negative->assign(num_vars, 0);
  for (const Clause& c : clauses) {
    for (const Literal& lit : c) {
      if (lit.positive) ++(*positive)[lit.var];
      else ++(*negative)[lit.var];
    }
  }
}

bool CnfFormula::MaxClauseSize(std::uint32_t k) const {
  for (const Clause& c : clauses) {
    if (c.size() > k) return false;
  }
  return true;
}

bool CnfFormula::IsReductionReady() const {
  std::vector<std::uint32_t> pos, neg;
  PolarityCounts(&pos, &neg);
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    std::uint32_t total = pos[v] + neg[v];
    if (total == 0) continue;  // Unused variable is fine.
    if (total < 2 || total > 3) return false;
    if (pos[v] == 0 || neg[v] == 0) return false;
  }
  for (const Clause& c : clauses) {
    std::set<std::uint32_t> vars;
    for (const Literal& lit : c) {
      if (!vars.insert(lit.var).second) return false;
    }
  }
  return true;
}

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  CQA_CHECK(assignment.size() >= num_vars);
  for (const Clause& c : clauses) {
    bool satisfied = false;
    for (const Literal& lit : c) {
      if (assignment[lit.var] == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (i) out << " & ";
    out << '(';
    for (std::size_t j = 0; j < clauses[i].size(); ++j) {
      if (j) out << " | ";
      if (!clauses[i][j].positive) out << '~';
      out << 'v' << clauses[i][j].var;
    }
    out << ')';
  }
  return out.str();
}

namespace {

/// Simplifies clauses: merges duplicate literals, drops tautologies.
CnfFormula SimplifyClauses(const CnfFormula& f) {
  CnfFormula out;
  out.num_vars = f.num_vars;
  for (const Clause& c : f.clauses) {
    Clause simplified;
    bool tautology = false;
    for (const Literal& lit : c) {
      bool duplicate = false;
      for (const Literal& prev : simplified) {
        if (prev == lit) duplicate = true;
        if (prev.var == lit.var && prev.positive != lit.positive) {
          tautology = true;
        }
      }
      if (!duplicate) simplified.push_back(lit);
    }
    if (!tautology) out.clauses.push_back(std::move(simplified));
  }
  return out;
}

}  // namespace

CnfFormula LimitOccurrences(const CnfFormula& f) {
  CnfFormula simplified = SimplifyClauses(f);
  std::vector<std::uint32_t> counts = simplified.OccurrenceCounts();

  CnfFormula out;
  out.num_vars = simplified.num_vars;
  // next_copy[v]: which fresh copy to hand out next for variable v.
  std::vector<std::uint32_t> seen(simplified.num_vars, 0);
  // copies[v]: list of fresh variable ids standing in for v (empty if v is
  // not split).
  std::vector<std::vector<std::uint32_t>> copies(simplified.num_vars);
  for (std::uint32_t v = 0; v < simplified.num_vars; ++v) {
    if (counts[v] <= 3) continue;
    copies[v].resize(counts[v]);
    for (std::uint32_t i = 0; i < counts[v]; ++i) {
      copies[v][i] = out.num_vars++;
    }
  }

  for (const Clause& c : simplified.clauses) {
    Clause rewritten;
    for (const Literal& lit : c) {
      if (copies[lit.var].empty()) {
        rewritten.push_back(lit);
      } else {
        std::uint32_t copy = copies[lit.var][seen[lit.var]++];
        rewritten.push_back(Literal{copy, lit.positive});
      }
    }
    out.clauses.push_back(std::move(rewritten));
  }
  // Equality chain: (~xi | xi+1) for consecutive copies, cyclically. Each
  // copy gains exactly 2 extra occurrences, for a total of 3.
  for (std::uint32_t v = 0; v < simplified.num_vars; ++v) {
    const auto& cs = copies[v];
    for (std::size_t i = 0; i < cs.size(); ++i) {
      std::uint32_t from = cs[i];
      std::uint32_t to = cs[(i + 1) % cs.size()];
      out.clauses.push_back(Clause{Literal{from, false}, Literal{to, true}});
    }
  }
  return out;
}

CnfFormula EliminatePureAndSingletons(const CnfFormula& f) {
  CnfFormula cur = SimplifyClauses(f);
  for (;;) {
    std::vector<std::uint32_t> pos, neg;
    cur.PolarityCounts(&pos, &neg);
    // A variable is removable if pure (one polarity only) — setting it to
    // its preferred value satisfies all clauses containing it. Variables
    // with exactly one occurrence are a special case of pure.
    std::vector<bool> removable(cur.num_vars, false);
    bool any = false;
    for (std::uint32_t v = 0; v < cur.num_vars; ++v) {
      std::uint32_t total = pos[v] + neg[v];
      if (total > 0 && (pos[v] == 0 || neg[v] == 0)) {
        removable[v] = true;
        any = true;
      }
    }
    if (!any) return cur;
    CnfFormula next;
    next.num_vars = cur.num_vars;
    for (const Clause& c : cur.clauses) {
      bool satisfied_by_pure = false;
      for (const Literal& lit : c) {
        if (removable[lit.var]) {
          satisfied_by_pure = true;
          break;
        }
      }
      if (!satisfied_by_pure) next.clauses.push_back(c);
    }
    cur = std::move(next);
  }
}

}  // namespace cqa
