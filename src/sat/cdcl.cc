#include "sat/cdcl.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "base/check.h"

namespace cqa {
namespace {

// Literal encoding: var * 2 for the positive literal, var * 2 + 1 for the
// negative one. `lit ^ 1` negates.
using Lit = std::uint32_t;
constexpr Lit kNoLit = 0xffffffffu;

inline Lit MakeLit(std::uint32_t var, bool positive) {
  return var * 2 + (positive ? 0 : 1);
}
inline std::uint32_t VarOf(Lit l) { return l >> 1; }
inline bool Sign(Lit l) { return (l & 1) == 0; }  // True for positive.

// Clauses live in one flat literal arena; a ClauseRef is the offset of a
// clause's header. Layout: [size][meta][activity][lit_0 ... lit_{size-1}].
// `meta` packs the learned flag (bit 31), a deleted mark used only inside
// ReduceDb (bit 30), and the literal-block distance at learn time (low 30
// bits). `activity` holds float bits, bumped when the clause participates
// in conflict analysis. Learned clauses are appended after the problem
// clauses; refs stay stable between garbage collections, and collections
// happen only at decision level 0 with all reasons cleared.
using ClauseRef = std::uint32_t;
constexpr ClauseRef kNoReason = 0xffffffffu;
constexpr std::uint32_t kHeaderWords = 3;
constexpr std::uint32_t kLearnedBit = 0x80000000u;
constexpr std::uint32_t kDeletedBit = 0x40000000u;
constexpr std::uint32_t kLbdMask = 0x3fffffffu;

enum class Value : std::int8_t { kFalse = -1, kUnset = 0, kTrue = 1 };

struct Watch {
  ClauseRef cref = 0;
  Lit blocker = 0;  ///< Some other literal of the clause; if it is already
                    ///< true the clause needs no inspection.
};

inline float BitsToFloat(std::uint32_t bits) {
  float f;
  static_assert(sizeof(f) == sizeof(bits));
  __builtin_memcpy(&f, &bits, sizeof(f));
  return f;
}
inline std::uint32_t FloatToBits(float f) {
  std::uint32_t bits;
  __builtin_memcpy(&bits, &f, sizeof(bits));
  return bits;
}

}  // namespace

struct CdclSolver::Impl {
  explicit Impl(CdclOptions opts) : options(opts) {
    next_reduce_interval = options.first_reduce_conflicts;
    next_reduce_at = options.first_reduce_conflicts;
  }

  CdclOptions options;
  std::uint32_t num_vars = 0;
  bool ok = true;  // False once permanently unsatisfiable.

  std::vector<std::uint32_t> arena;         // Clause storage.
  std::vector<ClauseRef> problem_clauses;   // Refs of input clauses.
  std::vector<ClauseRef> learned;           // Refs of live learned clauses.
  std::vector<std::vector<Watch>> watches;  // Indexed by literal: clauses
                                            // to visit when it turns false.
  std::vector<Value> assigns;               // Indexed by var.
  std::vector<std::uint32_t> level;         // Decision level per var.
  std::vector<ClauseRef> reason;            // Propagating clause per var.
  std::vector<Lit> trail;
  std::vector<std::uint32_t> trail_lim;     // Trail index per decision level.
  std::size_t qhead = 0;                    // Propagation frontier.

  // VSIDS: bumped on conflict participation, decayed per conflict, with a
  // lazy max-heap over activity and saved phases for decisions.
  std::vector<double> activity;
  double var_inc = 1.0;
  float cla_inc = 1.0f;
  std::vector<std::uint32_t> heap;       // Binary max-heap of vars.
  std::vector<std::uint32_t> heap_pos;   // Position in heap, or kNotInHeap.
  std::vector<char> saved_phase;         // Last assigned polarity per var.

  std::vector<char> seen;                  // Scratch for conflict analysis.
  std::vector<std::uint64_t> level_stamp;  // Scratch for LBD counting.
  std::uint64_t stamp = 0;

  std::vector<char> model;  // Assignment of the last successful solve.

  std::uint64_t next_reduce_at = 0;
  std::uint64_t next_reduce_interval = 0;
  std::uint64_t restarts_this_solve = 0;

  CdclStats stats;

  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  std::uint32_t ClauseSize(ClauseRef c) const { return arena[c]; }
  std::uint32_t Meta(ClauseRef c) const { return arena[c + 1]; }
  bool IsLearned(ClauseRef c) const { return (Meta(c) & kLearnedBit) != 0; }
  std::uint32_t Lbd(ClauseRef c) const { return Meta(c) & kLbdMask; }
  float ClauseActivity(ClauseRef c) const { return BitsToFloat(arena[c + 2]); }
  const std::uint32_t* ClauseLits(ClauseRef c) const {
    return &arena[c + kHeaderWords];
  }
  std::uint32_t* ClauseLits(ClauseRef c) { return &arena[c + kHeaderWords]; }

  Value ValueOfLit(Lit l) const {
    Value v = assigns[VarOf(l)];
    if (v == Value::kUnset) return Value::kUnset;
    return (v == Value::kTrue) == Sign(l) ? Value::kTrue : Value::kFalse;
  }

  std::uint32_t DecisionLevel() const {
    return static_cast<std::uint32_t>(trail_lim.size());
  }

  // -- Activity heap ------------------------------------------------------

  bool HeapLess(std::uint32_t a, std::uint32_t b) const {
    return activity[a] < activity[b];
  }

  void HeapSwap(std::uint32_t i, std::uint32_t j) {
    std::swap(heap[i], heap[j]);
    heap_pos[heap[i]] = i;
    heap_pos[heap[j]] = j;
  }

  void SiftUp(std::uint32_t i) {
    while (i > 0) {
      std::uint32_t parent = (i - 1) / 2;
      if (!HeapLess(heap[parent], heap[i])) break;
      HeapSwap(parent, i);
      i = parent;
    }
  }

  void SiftDown(std::uint32_t i) {
    for (;;) {
      std::uint32_t left = 2 * i + 1, best = i;
      if (left < heap.size() && HeapLess(heap[best], heap[left])) best = left;
      if (left + 1 < heap.size() && HeapLess(heap[best], heap[left + 1])) {
        best = left + 1;
      }
      if (best == i) return;
      HeapSwap(i, best);
      i = best;
    }
  }

  void HeapInsert(std::uint32_t var) {
    if (heap_pos[var] != kNotInHeap) return;
    heap_pos[var] = static_cast<std::uint32_t>(heap.size());
    heap.push_back(var);
    SiftUp(heap_pos[var]);
  }

  std::uint32_t HeapPopMax() {
    std::uint32_t top = heap[0];
    HeapSwap(0, static_cast<std::uint32_t>(heap.size() - 1));
    heap.pop_back();
    heap_pos[top] = kNotInHeap;
    if (!heap.empty()) SiftDown(0);
    return top;
  }

  void BumpVar(std::uint32_t var) {
    activity[var] += var_inc;
    if (activity[var] > 1e100) {
      for (double& a : activity) a *= 1e-100;
      var_inc *= 1e-100;
    }
    if (heap_pos[var] != kNotInHeap) SiftUp(heap_pos[var]);
  }

  void BumpClause(ClauseRef c) {
    float act = ClauseActivity(c) + cla_inc;
    arena[c + 2] = FloatToBits(act);
    if (act > 1e20f) {
      for (ClauseRef l : learned) {
        arena[l + 2] = FloatToBits(ClauseActivity(l) * 1e-20f);
      }
      cla_inc *= 1e-20f;
    }
  }

  void DecayActivities() {
    var_inc /= 0.95;
    cla_inc /= 0.999f;
  }

  // -- Assignment / trail -------------------------------------------------

  void Enqueue(Lit l, ClauseRef from) {
    std::uint32_t var = VarOf(l);
    CQA_DCHECK(assigns[var] == Value::kUnset);
    assigns[var] = Sign(l) ? Value::kTrue : Value::kFalse;
    saved_phase[var] = Sign(l) ? 1 : 0;
    level[var] = DecisionLevel();
    reason[var] = from;
    trail.push_back(l);
  }

  void CancelUntil(std::uint32_t target_level) {
    if (DecisionLevel() <= target_level) return;
    for (std::size_t i = trail.size(); i > trail_lim[target_level];) {
      --i;
      std::uint32_t var = VarOf(trail[i]);
      assigns[var] = Value::kUnset;
      reason[var] = kNoReason;
      HeapInsert(var);
    }
    trail.resize(trail_lim[target_level]);
    trail_lim.resize(target_level);
    qhead = trail.size();
  }

  // -- Clauses ------------------------------------------------------------

  ClauseRef AddClauseInternal(const std::uint32_t* lits, std::uint32_t size,
                              bool is_learned, std::uint32_t lbd) {
    CQA_DCHECK(size >= 2);
    ClauseRef c = static_cast<ClauseRef>(arena.size());
    arena.push_back(size);
    arena.push_back((is_learned ? kLearnedBit : 0u) | (lbd & kLbdMask));
    arena.push_back(FloatToBits(0.0f));
    arena.insert(arena.end(), lits, lits + size);
    watches[lits[0] ^ 1].push_back(Watch{c, lits[1]});
    watches[lits[1] ^ 1].push_back(Watch{c, lits[0]});
    if (is_learned) {
      learned.push_back(c);
    } else {
      problem_clauses.push_back(c);
    }
    return c;
  }

  /// Propagates to fixpoint; returns the conflicting clause or kNoReason.
  ClauseRef Propagate() {
    while (qhead < trail.size()) {
      Lit p = trail[qhead++];  // p is true; visit clauses watching ~p.
      ++stats.propagations;
      std::vector<Watch>& ws = watches[p];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        Watch w = ws[i];
        if (ValueOfLit(w.blocker) == Value::kTrue) {
          ws[keep++] = w;
          continue;
        }
        std::uint32_t size = ClauseSize(w.cref);
        std::uint32_t* lits = ClauseLits(w.cref);
        // Normalize so lits[0] is the other watched literal.
        Lit false_lit = p ^ 1;
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        CQA_DCHECK(lits[1] == false_lit);
        if (ValueOfLit(lits[0]) == Value::kTrue) {
          ws[keep++] = Watch{w.cref, lits[0]};
          continue;
        }
        // Look for a non-false literal to watch instead.
        bool moved = false;
        for (std::uint32_t j = 2; j < size; ++j) {
          if (ValueOfLit(lits[j]) != Value::kFalse) {
            std::swap(lits[1], lits[j]);
            watches[lits[1] ^ 1].push_back(Watch{w.cref, lits[0]});
            moved = true;
            break;
          }
        }
        if (moved) continue;
        // Unit or conflicting on lits[0].
        ws[keep++] = Watch{w.cref, lits[0]};
        if (ValueOfLit(lits[0]) == Value::kFalse) {
          // Conflict: keep the remaining watches, then report.
          for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
          ws.resize(keep);
          qhead = trail.size();
          return w.cref;
        }
        Enqueue(lits[0], w.cref);
      }
      ws.resize(keep);
    }
    return kNoReason;
  }

  /// First-UIP conflict analysis. Fills `learned_out` (learned_out[0] is
  /// the asserting literal), computes the clause's LBD, and returns the
  /// backjump level. Bumps variable and clause activities along the way.
  std::uint32_t Analyze(ClauseRef confl, std::vector<Lit>* learned_out,
                        std::uint32_t* lbd_out) {
    learned_out->clear();
    learned_out->push_back(kNoLit);  // Slot for the asserting literal.
    std::uint32_t counter = 0;       // Current-level literals to resolve.
    std::size_t index = trail.size();
    Lit p = kNoLit;

    do {
      CQA_DCHECK(confl != kNoReason);
      if (IsLearned(confl)) BumpClause(confl);
      std::uint32_t size = ClauseSize(confl);
      const std::uint32_t* lits = ClauseLits(confl);
      // Skip lits[0] on resolution steps: it is the literal being resolved.
      for (std::uint32_t j = (p == kNoLit ? 0 : 1); j < size; ++j) {
        std::uint32_t var = VarOf(lits[j]);
        if (seen[var] || level[var] == 0) continue;
        seen[var] = 1;
        BumpVar(var);
        if (level[var] == DecisionLevel()) {
          ++counter;
        } else {
          learned_out->push_back(lits[j]);
        }
      }
      // Walk the trail back to the next marked current-level literal.
      do {
        --index;
      } while (!seen[VarOf(trail[index])]);
      p = trail[index];
      seen[VarOf(p)] = 0;
      confl = reason[VarOf(p)];
      --counter;
    } while (counter > 0);
    (*learned_out)[0] = p ^ 1;

    // Literals implied at level 0 were already skipped; now compute the
    // backjump level (highest level among the non-asserting literals).
    std::uint32_t backjump = 0;
    std::size_t max_at = 1;
    for (std::size_t j = 1; j < learned_out->size(); ++j) {
      std::uint32_t l = level[VarOf((*learned_out)[j])];
      if (l > backjump) {
        backjump = l;
        max_at = j;
      }
    }
    if (learned_out->size() > 1) {
      std::swap((*learned_out)[1], (*learned_out)[max_at]);  // Second watch.
    }
    for (std::size_t j = 1; j < learned_out->size(); ++j) {
      seen[VarOf((*learned_out)[j])] = 0;
    }

    // LBD: distinct decision levels among the clause's literals.
    ++stamp;
    std::uint32_t lbd = 0;
    for (Lit l : *learned_out) {
      std::uint32_t lv = level[VarOf(l)];
      if (level_stamp[lv] != stamp) {
        level_stamp[lv] = stamp;
        ++lbd;
      }
    }
    *lbd_out = lbd;
    return backjump;
  }

  // -- Learned-clause database reduction ----------------------------------

  /// Deletes the worst half of the non-glue learned clauses (highest LBD,
  /// then lowest activity) and garbage-collects the arena. Must run at
  /// decision level 0. Safe because Analyze never traces a level-0
  /// variable's reason, so clearing those reasons leaves no dangling ref.
  void ReduceDb() {
    CQA_DCHECK(DecisionLevel() == 0);
    ++stats.db_reductions;
    for (Lit l : trail) reason[VarOf(l)] = kNoReason;

    std::vector<ClauseRef> deletable;
    deletable.reserve(learned.size());
    for (ClauseRef c : learned) {
      if (Lbd(c) > options.glue_lbd) deletable.push_back(c);
    }
    std::sort(deletable.begin(), deletable.end(),
              [this](ClauseRef a, ClauseRef b) {
                std::uint32_t la = Lbd(a), lb = Lbd(b);
                if (la != lb) return la > lb;
                return ClauseActivity(a) < ClauseActivity(b);
              });
    std::size_t to_delete = deletable.size() / 2;
    for (std::size_t i = 0; i < to_delete; ++i) {
      arena[deletable[i] + 1] |= kDeletedBit;
    }
    stats.learned_deleted += to_delete;

    std::size_t keep = 0;
    for (ClauseRef c : learned) {
      if ((Meta(c) & kDeletedBit) == 0) learned[keep++] = c;
    }
    learned.resize(keep);

    // Compact the arena: problem clauses first, surviving learned after,
    // rewriting the refs in place. Nothing else holds a ClauseRef (level-0
    // reasons were cleared above; there are no other assigned variables).
    std::vector<std::uint32_t> fresh;
    fresh.reserve(arena.size());
    auto relocate = [&](ClauseRef& ref) {
      std::uint32_t words = kHeaderWords + arena[ref];
      ClauseRef moved = static_cast<ClauseRef>(fresh.size());
      fresh.insert(fresh.end(), arena.begin() + ref,
                   arena.begin() + ref + words);
      ref = moved;
    };
    for (ClauseRef& c : problem_clauses) relocate(c);
    for (ClauseRef& c : learned) relocate(c);
    arena.swap(fresh);

    // Rebuild every watch list. Propagate keeps the watched pair at
    // lits[0]/lits[1], so this reproduces the exact watch structure.
    for (std::vector<Watch>& w : watches) w.clear();
    auto rewatch = [&](ClauseRef c) {
      const std::uint32_t* lits = ClauseLits(c);
      watches[lits[0] ^ 1].push_back(Watch{c, lits[1]});
      watches[lits[1] ^ 1].push_back(Watch{c, lits[0]});
    };
    for (ClauseRef c : problem_clauses) rewatch(c);
    for (ClauseRef c : learned) rewatch(c);

    stats.learned_kept = learned.size();
    next_reduce_interval += options.reduce_increment;
    next_reduce_at = stats.conflicts + next_reduce_interval;
  }

  // -- Search -------------------------------------------------------------

  /// CDCL search under `assumptions` (internal literals). Returns true on
  /// SAT; on false, `ok` distinguishes permanent UNSAT from UNSAT under
  /// the assumptions.
  bool Search(const std::vector<Lit>& assumptions) {
    std::vector<Lit> learned_scratch;
    std::uint64_t conflicts_until_restart = LubyRestartLimit();
    for (;;) {
      ClauseRef confl = Propagate();
      if (confl != kNoReason) {
        ++stats.conflicts;
        if (DecisionLevel() == 0) {
          ok = false;  // Conflict under no decisions: permanently UNSAT.
          return false;
        }
        std::uint32_t lbd = 0;
        std::uint32_t backjump = Analyze(confl, &learned_scratch, &lbd);
        CancelUntil(backjump);
        if (learned_scratch.size() == 1) {
          Enqueue(learned_scratch[0], kNoReason);
        } else {
          ClauseRef c = AddClauseInternal(
              learned_scratch.data(),
              static_cast<std::uint32_t>(learned_scratch.size()),
              /*is_learned=*/true, lbd);
          ++stats.learned_clauses;
          stats.learned_literals += learned_scratch.size();
          Enqueue(learned_scratch[0], c);
        }
        DecayActivities();
        if (--conflicts_until_restart == 0) {
          ++stats.restarts;
          ++restarts_this_solve;
          CancelUntil(0);
          if (stats.conflicts >= next_reduce_at) ReduceDb();
          conflicts_until_restart = LubyRestartLimit();
        }
        continue;
      }
      // Extend: assumptions first (as pseudo-decisions), then decide.
      Lit next = kNoLit;
      while (DecisionLevel() < assumptions.size()) {
        Lit p = assumptions[DecisionLevel()];
        Value v = ValueOfLit(p);
        if (v == Value::kTrue) {
          // Already satisfied: open an empty level so indices line up.
          trail_lim.push_back(static_cast<std::uint32_t>(trail.size()));
        } else if (v == Value::kFalse) {
          return false;  // UNSAT under the assumptions; clauses are fine.
        } else {
          next = p;
          break;
        }
      }
      if (next == kNoLit) {
        std::uint32_t var = kNotInHeap;
        while (!heap.empty()) {
          std::uint32_t candidate = HeapPopMax();
          if (assigns[candidate] == Value::kUnset) {
            var = candidate;
            break;
          }
        }
        if (var == kNotInHeap) return true;  // Total assignment: SAT.
        ++stats.decisions;
        next = MakeLit(var, saved_phase[var] != 0);
      }
      trail_lim.push_back(static_cast<std::uint32_t>(trail.size()));
      Enqueue(next, kNoReason);
    }
  }

  std::uint64_t LubyRestartLimit() {
    // luby(i) * restart_base conflicts for restart number i within this
    // solve (0-based), computed with the standard find-the-subsequence
    // loop (Luby et al. 1993). Counting per solve keeps the cadence fresh
    // for every incremental call.
    std::uint64_t x = restarts_this_solve;
    std::uint64_t size = 1, seq = 0;
    while (size < x + 1) {
      ++seq;
      size = 2 * size + 1;
    }
    while (size - 1 != x) {
      size = (size - 1) >> 1;
      --seq;
      x = x % size;
    }
    return (1ULL << seq) * options.restart_base;
  }

  bool SolveInternal(const std::vector<Lit>& assumptions) {
    ++stats.solves;
    if (stats.solves > 1) ++stats.warm_solves;
    if (!ok) return false;
    CQA_DCHECK(DecisionLevel() == 0);
    // Every unassigned variable must be decidable so the model is total,
    // including variables no clause mentions and ones added since the
    // last call.
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      if (assigns[v] == Value::kUnset) HeapInsert(v);
    }
    restarts_this_solve = 0;
    if (stats.conflicts >= next_reduce_at) {
      // Reduction needs a clean level-0 state: propagate pending units
      // first. A conflict here is a level-0 conflict — permanently UNSAT.
      if (Propagate() != kNoReason) {
        ++stats.conflicts;
        ok = false;
        stats.learned_kept = learned.size();
        return false;
      }
      ReduceDb();
    }
    bool sat = Search(assumptions);
    if (sat) {
      model.resize(num_vars);
      for (std::uint32_t v = 0; v < num_vars; ++v) {
        model[v] = assigns[v] == Value::kTrue ? 1 : 0;
      }
    }
    CancelUntil(0);
    stats.learned_kept = learned.size();
    return sat;
  }
};

CdclSolver::CdclSolver(CdclOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
CdclSolver::~CdclSolver() = default;
CdclSolver::CdclSolver(CdclSolver&&) noexcept = default;
CdclSolver& CdclSolver::operator=(CdclSolver&&) noexcept = default;

std::uint32_t CdclSolver::num_vars() const { return impl_->num_vars; }

std::uint32_t CdclSolver::AddVars(std::uint32_t n) {
  Impl& s = *impl_;
  std::uint32_t first = s.num_vars;
  s.num_vars += n;
  s.watches.resize(2 * s.num_vars);
  s.assigns.resize(s.num_vars, Value::kUnset);
  s.level.resize(s.num_vars, 0);
  s.reason.resize(s.num_vars, kNoReason);
  s.activity.resize(s.num_vars, 0.0);
  s.heap_pos.resize(s.num_vars, Impl::kNotInHeap);
  s.saved_phase.resize(s.num_vars, 0);
  s.seen.resize(s.num_vars, 0);
  s.level_stamp.resize(s.num_vars + 1, 0);
  return first;
}

bool CdclSolver::AddClause(const Clause& clause) {
  Impl& s = *impl_;
  if (!s.ok) return false;
  CQA_DCHECK(s.DecisionLevel() == 0);
  // Normalize: drop duplicates and level-0-false literals, detect
  // tautologies and level-0-satisfied clauses.
  std::vector<Lit> scratch;
  scratch.reserve(clause.size());
  for (const Literal& lit : clause) {
    CQA_CHECK_MSG(lit.var < s.num_vars, "literal out of range");
    Lit l = MakeLit(lit.var, lit.positive);
    Value v = s.ValueOfLit(l);
    if (v == Value::kTrue) return true;   // Satisfied at level 0.
    if (v == Value::kFalse) continue;     // Permanently false literal.
    if (std::find(scratch.begin(), scratch.end(), l) != scratch.end()) {
      continue;
    }
    if (std::find(scratch.begin(), scratch.end(), l ^ 1) != scratch.end()) {
      return true;  // Tautology.
    }
    scratch.push_back(l);
  }
  if (scratch.empty()) {
    s.ok = false;
    return false;
  }
  if (scratch.size() == 1) {
    // Unit at level 0: enqueue now, propagate lazily at the next solve.
    s.Enqueue(scratch[0], kNoReason);
    return true;
  }
  s.AddClauseInternal(scratch.data(),
                      static_cast<std::uint32_t>(scratch.size()),
                      /*is_learned=*/false, /*lbd=*/0);
  return true;
}

bool CdclSolver::ok() const { return impl_->ok; }

bool CdclSolver::Solve() { return impl_->SolveInternal({}); }

bool CdclSolver::SolveUnderAssumptions(
    const std::vector<Literal>& assumptions) {
  Impl& s = *impl_;
  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const Literal& a : assumptions) {
    CQA_CHECK_MSG(a.var < s.num_vars, "assumption out of range");
    lits.push_back(MakeLit(a.var, a.positive));
  }
  return s.SolveInternal(lits);
}

bool CdclSolver::ValueOf(std::uint32_t var) const {
  CQA_CHECK_MSG(var < impl_->model.size(), "no model for this variable");
  return impl_->model[var] != 0;
}

const CdclStats& CdclSolver::stats() const { return impl_->stats; }

std::size_t CdclSolver::ArenaWords() const { return impl_->arena.size(); }

void CdclSolver::NoteRetraction(std::uint64_t clauses) {
  impl_->stats.clauses_retracted += clauses;
}

SatResult SolveCdcl(const CnfFormula& f, CdclStats* stats) {
  CdclSolver solver;
  solver.AddVars(f.num_vars);
  bool ok = true;
  for (const Clause& c : f.clauses) {
    if (!solver.AddClause(c)) {
      ok = false;
      break;
    }
  }
  SatResult result;
  result.satisfiable = ok && solver.Solve();
  if (result.satisfiable) {
    result.assignment.resize(f.num_vars);
    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      result.assignment[v] = solver.ValueOf(v);
    }
    CQA_CHECK(f.Evaluate(result.assignment));
  }
  if (stats != nullptr) *stats = solver.stats();
  return result;
}

}  // namespace cqa
