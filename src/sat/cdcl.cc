#include "sat/cdcl.h"

#include <algorithm>
#include <vector>

#include "base/check.h"

namespace cqa {
namespace {

// Literal encoding: var * 2 for the positive literal, var * 2 + 1 for the
// negative one. `lit ^ 1` negates.
using Lit = std::uint32_t;
constexpr Lit kNoLit = 0xffffffffu;

inline Lit MakeLit(std::uint32_t var, bool positive) {
  return var * 2 + (positive ? 0 : 1);
}
inline std::uint32_t VarOf(Lit l) { return l >> 1; }
inline bool Sign(Lit l) { return (l & 1) == 0; }  // True for positive.

// Clauses live in one flat literal arena; a ClauseRef is the offset of a
// clause's header. Layout: [size][lit_0 ... lit_{size-1}]. Learned clauses
// are appended after the problem clauses; nothing is ever moved, so refs
// stay stable for reasons on the trail.
using ClauseRef = std::uint32_t;
constexpr ClauseRef kNoReason = 0xffffffffu;

enum class Value : std::int8_t { kFalse = -1, kUnset = 0, kTrue = 1 };

struct Watch {
  ClauseRef cref = 0;
  Lit blocker = 0;  ///< Some other literal of the clause; if it is already
                    ///< true the clause needs no inspection.
};

struct Solver {
  std::uint32_t num_vars = 0;
  std::vector<std::uint32_t> arena;         // Clause storage.
  std::vector<std::vector<Watch>> watches;  // Indexed by literal: clauses
                                            // to visit when it turns false.
  std::vector<Value> assigns;               // Indexed by var.
  std::vector<std::uint32_t> level;         // Decision level per var.
  std::vector<ClauseRef> reason;            // Propagating clause per var.
  std::vector<Lit> trail;
  std::vector<std::uint32_t> trail_lim;     // Trail index per decision level.
  std::size_t qhead = 0;                    // Propagation frontier.

  // VSIDS: bumped on conflict participation, decayed per conflict, with a
  // lazy max-heap over activity and saved phases for decisions.
  std::vector<double> activity;
  double var_inc = 1.0;
  std::vector<std::uint32_t> heap;       // Binary max-heap of vars.
  std::vector<std::uint32_t> heap_pos;   // Position in heap, or kNotInHeap.
  std::vector<char> saved_phase;         // Last assigned polarity per var.

  std::vector<char> seen;  // Scratch for conflict analysis.
  CdclStats stats;

  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  std::uint32_t ClauseSize(ClauseRef c) const { return arena[c]; }
  const std::uint32_t* ClauseLits(ClauseRef c) const { return &arena[c + 1]; }
  std::uint32_t* ClauseLits(ClauseRef c) { return &arena[c + 1]; }

  Value ValueOfLit(Lit l) const {
    Value v = assigns[VarOf(l)];
    if (v == Value::kUnset) return Value::kUnset;
    return (v == Value::kTrue) == Sign(l) ? Value::kTrue : Value::kFalse;
  }

  std::uint32_t DecisionLevel() const {
    return static_cast<std::uint32_t>(trail_lim.size());
  }

  // -- Activity heap ------------------------------------------------------

  bool HeapLess(std::uint32_t a, std::uint32_t b) const {
    return activity[a] < activity[b];
  }

  void HeapSwap(std::uint32_t i, std::uint32_t j) {
    std::swap(heap[i], heap[j]);
    heap_pos[heap[i]] = i;
    heap_pos[heap[j]] = j;
  }

  void SiftUp(std::uint32_t i) {
    while (i > 0) {
      std::uint32_t parent = (i - 1) / 2;
      if (!HeapLess(heap[parent], heap[i])) break;
      HeapSwap(parent, i);
      i = parent;
    }
  }

  void SiftDown(std::uint32_t i) {
    for (;;) {
      std::uint32_t left = 2 * i + 1, best = i;
      if (left < heap.size() && HeapLess(heap[best], heap[left])) best = left;
      if (left + 1 < heap.size() && HeapLess(heap[best], heap[left + 1])) {
        best = left + 1;
      }
      if (best == i) return;
      HeapSwap(i, best);
      i = best;
    }
  }

  void HeapInsert(std::uint32_t var) {
    if (heap_pos[var] != kNotInHeap) return;
    heap_pos[var] = static_cast<std::uint32_t>(heap.size());
    heap.push_back(var);
    SiftUp(heap_pos[var]);
  }

  std::uint32_t HeapPopMax() {
    std::uint32_t top = heap[0];
    HeapSwap(0, static_cast<std::uint32_t>(heap.size() - 1));
    heap.pop_back();
    heap_pos[top] = kNotInHeap;
    if (!heap.empty()) SiftDown(0);
    return top;
  }

  void BumpVar(std::uint32_t var) {
    activity[var] += var_inc;
    if (activity[var] > 1e100) {
      for (double& a : activity) a *= 1e-100;
      var_inc *= 1e-100;
    }
    if (heap_pos[var] != kNotInHeap) SiftUp(heap_pos[var]);
  }

  void DecayActivities() { var_inc /= 0.95; }

  // -- Assignment / trail -------------------------------------------------

  void Enqueue(Lit l, ClauseRef from) {
    std::uint32_t var = VarOf(l);
    CQA_DCHECK(assigns[var] == Value::kUnset);
    assigns[var] = Sign(l) ? Value::kTrue : Value::kFalse;
    saved_phase[var] = Sign(l) ? 1 : 0;
    level[var] = DecisionLevel();
    reason[var] = from;
    trail.push_back(l);
  }

  void CancelUntil(std::uint32_t target_level) {
    if (DecisionLevel() <= target_level) return;
    for (std::size_t i = trail.size(); i > trail_lim[target_level];) {
      --i;
      std::uint32_t var = VarOf(trail[i]);
      assigns[var] = Value::kUnset;
      reason[var] = kNoReason;
      HeapInsert(var);
    }
    trail.resize(trail_lim[target_level]);
    trail_lim.resize(target_level);
    qhead = trail.size();
  }

  // -- Clauses ------------------------------------------------------------

  ClauseRef AddClause(const std::uint32_t* lits, std::uint32_t size) {
    CQA_DCHECK(size >= 2);
    ClauseRef c = static_cast<ClauseRef>(arena.size());
    arena.push_back(size);
    arena.insert(arena.end(), lits, lits + size);
    watches[lits[0] ^ 1].push_back(Watch{c, lits[1]});
    watches[lits[1] ^ 1].push_back(Watch{c, lits[0]});
    return c;
  }

  /// Propagates to fixpoint; returns the conflicting clause or kNoReason.
  ClauseRef Propagate() {
    while (qhead < trail.size()) {
      Lit p = trail[qhead++];  // p is true; visit clauses watching ~p.
      ++stats.propagations;
      std::vector<Watch>& ws = watches[p];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < ws.size(); ++i) {
        Watch w = ws[i];
        if (ValueOfLit(w.blocker) == Value::kTrue) {
          ws[keep++] = w;
          continue;
        }
        std::uint32_t size = ClauseSize(w.cref);
        std::uint32_t* lits = ClauseLits(w.cref);
        // Normalize so lits[0] is the other watched literal.
        Lit false_lit = p ^ 1;
        if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
        CQA_DCHECK(lits[1] == false_lit);
        if (ValueOfLit(lits[0]) == Value::kTrue) {
          ws[keep++] = Watch{w.cref, lits[0]};
          continue;
        }
        // Look for a non-false literal to watch instead.
        bool moved = false;
        for (std::uint32_t j = 2; j < size; ++j) {
          if (ValueOfLit(lits[j]) != Value::kFalse) {
            std::swap(lits[1], lits[j]);
            watches[lits[1] ^ 1].push_back(Watch{w.cref, lits[0]});
            moved = true;
            break;
          }
        }
        if (moved) continue;
        // Unit or conflicting on lits[0].
        ws[keep++] = Watch{w.cref, lits[0]};
        if (ValueOfLit(lits[0]) == Value::kFalse) {
          // Conflict: keep the remaining watches, then report.
          for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
          ws.resize(keep);
          qhead = trail.size();
          return w.cref;
        }
        Enqueue(lits[0], w.cref);
      }
      ws.resize(keep);
    }
    return kNoReason;
  }

  /// First-UIP conflict analysis. Fills `learned` (learned[0] is the
  /// asserting literal) and returns the backjump level.
  std::uint32_t Analyze(ClauseRef confl, std::vector<Lit>* learned) {
    learned->clear();
    learned->push_back(kNoLit);  // Slot for the asserting literal.
    std::uint32_t counter = 0;   // Current-level literals still to resolve.
    std::size_t index = trail.size();
    Lit p = kNoLit;

    do {
      CQA_DCHECK(confl != kNoReason);
      std::uint32_t size = ClauseSize(confl);
      const std::uint32_t* lits = ClauseLits(confl);
      // Skip lits[0] on resolution steps: it is the literal being resolved.
      for (std::uint32_t j = (p == kNoLit ? 0 : 1); j < size; ++j) {
        std::uint32_t var = VarOf(lits[j]);
        if (seen[var] || level[var] == 0) continue;
        seen[var] = 1;
        BumpVar(var);
        if (level[var] == DecisionLevel()) {
          ++counter;
        } else {
          learned->push_back(lits[j]);
        }
      }
      // Walk the trail back to the next marked current-level literal.
      do {
        --index;
      } while (!seen[VarOf(trail[index])]);
      p = trail[index];
      seen[VarOf(p)] = 0;
      confl = reason[VarOf(p)];
      --counter;
    } while (counter > 0);
    (*learned)[0] = p ^ 1;

    // Cheap minimization: drop literals implied at level 0 were already
    // skipped; now compute the backjump level (highest level among the
    // non-asserting literals).
    std::uint32_t backjump = 0;
    std::size_t max_at = 1;
    for (std::size_t j = 1; j < learned->size(); ++j) {
      std::uint32_t l = level[VarOf((*learned)[j])];
      if (l > backjump) {
        backjump = l;
        max_at = j;
      }
    }
    if (learned->size() > 1) {
      std::swap((*learned)[1], (*learned)[max_at]);  // Second watch.
    }
    for (std::size_t j = 1; j < learned->size(); ++j) {
      seen[VarOf((*learned)[j])] = 0;
    }
    return backjump;
  }

  bool Search() {
    std::vector<Lit> learned;
    std::uint64_t conflicts_until_restart = LubyRestartLimit();
    for (;;) {
      ClauseRef confl = Propagate();
      if (confl != kNoReason) {
        ++stats.conflicts;
        if (DecisionLevel() == 0) return false;  // Conflict under no
                                                 // assumptions: UNSAT.
        std::uint32_t backjump = Analyze(confl, &learned);
        CancelUntil(backjump);
        if (learned.size() == 1) {
          Enqueue(learned[0], kNoReason);
        } else {
          ClauseRef c = AddClause(learned.data(),
                                  static_cast<std::uint32_t>(learned.size()));
          ++stats.learned_clauses;
          stats.learned_literals += learned.size();
          Enqueue(learned[0], c);
        }
        DecayActivities();
        if (--conflicts_until_restart == 0) {
          ++stats.restarts;
          CancelUntil(0);
          conflicts_until_restart = LubyRestartLimit();
        }
        continue;
      }
      // Decide.
      std::uint32_t var = kNotInHeap;
      while (!heap.empty()) {
        std::uint32_t candidate = HeapPopMax();
        if (assigns[candidate] == Value::kUnset) {
          var = candidate;
          break;
        }
      }
      if (var == kNotInHeap) return true;  // Total assignment: SAT.
      ++stats.decisions;
      trail_lim.push_back(static_cast<std::uint32_t>(trail.size()));
      Enqueue(MakeLit(var, saved_phase[var] != 0), kNoReason);
    }
  }

  std::uint64_t LubyRestartLimit() {
    // luby(i) * 64 conflicts for restart number i (0-based), computed with
    // the standard find-the-subsequence loop (Luby et al. 1993).
    std::uint64_t x = stats.restarts;
    std::uint64_t size = 1, seq = 0;
    while (size < x + 1) {
      ++seq;
      size = 2 * size + 1;
    }
    while (size - 1 != x) {
      size = (size - 1) >> 1;
      --seq;
      x = x % size;
    }
    return (1ULL << seq) * 64;
  }
};

}  // namespace

SatResult SolveCdcl(const CnfFormula& f, CdclStats* stats) {
  Solver s;
  s.num_vars = f.num_vars;
  s.watches.assign(2 * f.num_vars, {});
  s.assigns.assign(f.num_vars, Value::kUnset);
  s.level.assign(f.num_vars, 0);
  s.reason.assign(f.num_vars, kNoReason);
  s.activity.assign(f.num_vars, 0.0);
  s.heap_pos.assign(f.num_vars, Solver::kNotInHeap);
  s.saved_phase.assign(f.num_vars, 0);
  s.seen.assign(f.num_vars, 0);

  // Ingest clauses: drop tautologies and duplicate literals, enqueue units
  // at level 0, fail immediately on an empty clause.
  std::vector<Lit> scratch;
  bool ok = true;
  for (const Clause& c : f.clauses) {
    scratch.clear();
    bool tautology = false;
    for (const Literal& lit : c) {
      CQA_CHECK_MSG(lit.var < f.num_vars, "literal out of range");
      Lit l = MakeLit(lit.var, lit.positive);
      if (std::find(scratch.begin(), scratch.end(), l) != scratch.end()) {
        continue;
      }
      if (std::find(scratch.begin(), scratch.end(), l ^ 1) != scratch.end()) {
        tautology = true;
        break;
      }
      scratch.push_back(l);
    }
    if (tautology) continue;
    if (scratch.empty()) {
      ok = false;
      break;
    }
    if (scratch.size() == 1) {
      Value v = s.ValueOfLit(scratch[0]);
      if (v == Value::kFalse) {
        ok = false;
        break;
      }
      if (v == Value::kUnset) s.Enqueue(scratch[0], kNoReason);
      continue;
    }
    s.AddClause(scratch.data(), static_cast<std::uint32_t>(scratch.size()));
  }

  // Seed the decision heap with every variable so the model is total even
  // for variables no clause mentions.
  for (std::uint32_t v = 0; v < f.num_vars; ++v) s.HeapInsert(v);

  SatResult result;
  result.satisfiable = ok && s.Search();
  if (result.satisfiable) {
    result.assignment.resize(f.num_vars);
    for (std::uint32_t v = 0; v < f.num_vars; ++v) {
      result.assignment[v] = s.assigns[v] == Value::kTrue;
    }
    CQA_CHECK(f.Evaluate(result.assignment));
  }
  if (stats != nullptr) *stats = s.stats;
  return result;
}

}  // namespace cqa
