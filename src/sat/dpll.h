// DPLL SAT solver with unit propagation and pure-literal elimination.
//
// Used as the satisfiability oracle when validating the Section 9 reduction
// (Lemma 9.2: phi is satisfiable iff D[phi] is not certain) and as a
// baseline in the hardness benchmarks. A brute-force oracle is provided for
// cross-checking the solver itself in tests.

#ifndef CQA_SAT_DPLL_H_
#define CQA_SAT_DPLL_H_

#include <optional>
#include <vector>

#include "sat/cnf.h"

namespace cqa {

/// Result of a SAT call: satisfying assignment if one exists.
struct SatResult {
  bool satisfiable = false;
  std::vector<bool> assignment;  ///< Valid iff satisfiable.
};

/// Decides satisfiability with DPLL (unit propagation, pure literals,
/// most-frequent-variable branching).
SatResult SolveDpll(const CnfFormula& f);

/// Brute-force oracle: tries all 2^num_vars assignments. Only for tests
/// (CHECKs num_vars <= 24).
SatResult SolveBruteForce(const CnfFormula& f);

}  // namespace cqa

#endif  // CQA_SAT_DPLL_H_
