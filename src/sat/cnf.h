// CNF formulas for the Section 9 hardness gadget.
//
// The reduction of Theorem 9.1 is from 3-SAT where every variable occurs at
// most three times, at least once positively and at least once negatively.
// This module provides the formula representation, occurrence statistics,
// and the normalizations needed to bring an arbitrary CNF into that shape.

#ifndef CQA_SAT_CNF_H_
#define CQA_SAT_CNF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cqa {

/// A literal: variable index (0-based) with a sign.
struct Literal {
  std::uint32_t var = 0;
  bool positive = true;

  bool operator==(const Literal& o) const {
    return var == o.var && positive == o.positive;
  }
  Literal Negated() const { return Literal{var, !positive}; }
};

/// A clause is a disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula over variables 0..num_vars-1.
struct CnfFormula {
  std::uint32_t num_vars = 0;
  std::vector<Clause> clauses;

  /// Number of occurrences of each variable (either polarity).
  std::vector<std::uint32_t> OccurrenceCounts() const;

  /// Per variable: does it occur positively / negatively anywhere?
  void PolarityCounts(std::vector<std::uint32_t>* positive,
                      std::vector<std::uint32_t>* negative) const;

  /// True if every clause has at most `k` literals.
  bool MaxClauseSize(std::uint32_t k) const;

  /// True if the formula satisfies the preconditions of the Section 9
  /// reduction: every variable occurs 2 or 3 times in total, at least once
  /// positively and at least once negatively, and no clause contains a
  /// variable twice (in either polarity).
  bool IsReductionReady() const;

  /// Evaluates under a total assignment (indexed by variable).
  bool Evaluate(const std::vector<bool>& assignment) const;

  std::string ToString() const;
};

/// Rewrites a CNF so that every variable occurs at most 3 times, keeping
/// satisfiability: a variable x with m > 3 occurrences is replaced by fresh
/// copies x1..xm chained with implication clauses (xi -> xi+1, cyclically),
/// which forces all copies equal. Clauses with duplicate variables are
/// simplified first (tautologies dropped, duplicate literals merged).
CnfFormula LimitOccurrences(const CnfFormula& f);

/// Removes variables that occur with a single polarity (pure literals) and
/// variables occurring exactly once, iterating to a fixpoint; the result is
/// equisatisfiable and, if nonempty, reduction-ready provided every clause
/// had <= 3 distinct variables. Returns the simplified formula; an empty
/// clause list means satisfiable-by-pure-assignment, a formula containing
/// an empty clause means unsatisfiable.
CnfFormula EliminatePureAndSingletons(const CnfFormula& f);

}  // namespace cqa

#endif  // CQA_SAT_CNF_H_
