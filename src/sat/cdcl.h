// CDCL SAT solver: two-watched-literal propagation, first-UIP clause
// learning with non-chronological backjumping, VSIDS-style activity
// ordering with phase saving, and Luby restarts.
//
// This is the production satisfiability oracle behind the `sat` backend
// (engine/backends.cc): it answers the same solve-and-model interface as
// the legacy chronological DPLL (sat/dpll.h), so the Section 9 reduction
// and the backend's witness decoding are untouched. The DPLL is kept as
// an A/B baseline for the benchmarks and as a differential oracle in
// sat_test; new callers should use SolveCdcl.

#ifndef CQA_SAT_CDCL_H_
#define CQA_SAT_CDCL_H_

#include <cstdint>

#include "sat/cnf.h"
#include "sat/dpll.h"  // SatResult

namespace cqa {

/// Search counters of one SolveCdcl call.
struct CdclStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t restarts = 0;
};

/// Decides satisfiability with conflict-driven clause learning. On a
/// satisfiable formula the returned assignment is total and verified
/// against the input (same contract as SolveDpll).
SatResult SolveCdcl(const CnfFormula& f, CdclStats* stats = nullptr);

}  // namespace cqa

#endif  // CQA_SAT_CDCL_H_
