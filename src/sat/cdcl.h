// CDCL SAT solver: two-watched-literal propagation, first-UIP clause
// learning with non-chronological backjumping, VSIDS-style activity
// ordering with phase saving, and Luby restarts.
//
// The solver is persistent and incremental. A `CdclSolver` keeps its
// watched-literal structures, activity scores, saved phases, and learned
// clauses alive across calls: grow the variable space with `AddVars`, add
// clauses at any point between solves with `AddClause`, and decide
// satisfiability under a set of assumption literals with
// `SolveUnderAssumptions`. Assumptions are handled MiniSat-style, as
// pseudo-decisions at successive decision levels, so an UNSAT-under-
// assumptions answer leaves the clause database (and everything learned
// while refuting them) intact for the next call. Clauses cannot be
// removed, but a clause guarded by an activation literal `a` — encoded as
// `(~a v ...)` and enabled by assuming `a` — is retracted for good by
// adding the unit clause `~a`.
//
// The learned-clause database is kept bounded by LBD/activity-based
// reduction: every learned clause records its literal-block distance
// (number of distinct decision levels at learn time) and an activity
// bumped whenever the clause participates in conflict analysis. At
// restart boundaries, once enough conflicts have accumulated, the worst
// half (highest LBD, then lowest activity) is deleted and the arena is
// garbage-collected; "glue" clauses (LBD <= CdclOptions::glue_lbd) are
// kept forever. Reduction never changes any verdict — learned clauses
// are logical consequences, so deleting them only costs search time.
//
// This is the production satisfiability oracle behind the `sat` backend
// (engine/backends.cc) and the incremental per-component falsifier
// sessions (reduction/sat_reduction.h). The legacy one-shot entry point
// `SolveCdcl` remains as a thin wrapper that builds a fresh solver; the
// chronological DPLL (sat/dpll.h) is kept as an A/B baseline for the
// benchmarks and as a differential oracle in sat_test.

#ifndef CQA_SAT_CDCL_H_
#define CQA_SAT_CDCL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/cnf.h"
#include "sat/dpll.h"  // SatResult

namespace cqa {

/// Cumulative search counters of one CdclSolver (or one SolveCdcl call).
struct CdclStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;   ///< Total ever learned.
  std::uint64_t learned_literals = 0;
  std::uint64_t restarts = 0;

  // Incremental-lifecycle counters.
  std::uint64_t solves = 0;            ///< Solve/SolveUnderAssumptions calls.
  std::uint64_t warm_solves = 0;       ///< Solves after the first, i.e. calls
                                       ///< that reused a warm database.
  std::uint64_t learned_kept = 0;      ///< Gauge: learned clauses currently
                                       ///< in the database.
  std::uint64_t learned_deleted = 0;   ///< Total deleted by DB reduction.
  std::uint64_t db_reductions = 0;     ///< Reduction passes run.
  std::uint64_t clauses_retracted = 0; ///< Clauses retired by activation-
                                       ///< literal retraction (caller-counted
                                       ///< via NoteRetraction).

  CdclStats& operator+=(const CdclStats& o) {
    decisions += o.decisions;
    propagations += o.propagations;
    conflicts += o.conflicts;
    learned_clauses += o.learned_clauses;
    learned_literals += o.learned_literals;
    restarts += o.restarts;
    solves += o.solves;
    warm_solves += o.warm_solves;
    learned_kept += o.learned_kept;
    learned_deleted += o.learned_deleted;
    db_reductions += o.db_reductions;
    clauses_retracted += o.clauses_retracted;
    return *this;
  }
};

/// Tuning knobs. The defaults suit the falsifier workloads; tests lower
/// the reduction thresholds to force aggressive deletion churn.
struct CdclOptions {
  /// Conflicts accumulated before the first learned-DB reduction.
  std::uint64_t first_reduce_conflicts = 2000;
  /// Added to the threshold after every reduction (slows the cadence as
  /// the solver matures).
  std::uint64_t reduce_increment = 1000;
  /// Learned clauses with LBD <= glue_lbd are never deleted.
  std::uint32_t glue_lbd = 2;
  /// Luby restart unit (conflicts per base restart interval).
  std::uint64_t restart_base = 64;
};

/// A persistent incremental CDCL solver.
///
/// Not thread-safe; callers serialize access (the engine holds such
/// solvers under LockRank::kSolverInternal).
class CdclSolver {
 public:
  explicit CdclSolver(CdclOptions options = CdclOptions());
  ~CdclSolver();
  CdclSolver(CdclSolver&&) noexcept;
  CdclSolver& operator=(CdclSolver&&) noexcept;
  CdclSolver(const CdclSolver&) = delete;
  CdclSolver& operator=(const CdclSolver&) = delete;

  /// Number of variables currently allocated.
  std::uint32_t num_vars() const;

  /// Grows the variable space by `n`; returns the index of the first new
  /// variable. Existing state is untouched.
  std::uint32_t AddVars(std::uint32_t n);

  /// Adds a clause (callable only between solves). Tautologies are
  /// dropped and duplicate/level-0-false literals removed. Returns false
  /// iff the solver is now (or already was) permanently unsatisfiable.
  bool AddClause(const Clause& clause);

  /// False once the clause set is unsatisfiable regardless of assumptions.
  bool ok() const;

  /// Decides satisfiability of the current clause set. Equivalent to
  /// SolveUnderAssumptions({}).
  bool Solve();

  /// Decides satisfiability under the given assumption literals. The
  /// clause database, learned clauses, scores, and phases persist across
  /// calls either way. Returns false if unsatisfiable under the
  /// assumptions (check ok() to distinguish permanent unsatisfiability).
  bool SolveUnderAssumptions(const std::vector<Literal>& assumptions);

  /// Value of `var` in the model of the last successful solve. Only valid
  /// after a solve that returned true, for vars allocated at that time.
  bool ValueOf(std::uint32_t var) const;

  const CdclStats& stats() const;

  /// Current size of the clause arena in 32-bit words (problem + learned
  /// clauses + headers). The clause-DB reduction keeps this bounded;
  /// cache byte-accounting and the soak memory assertions read it.
  std::size_t ArenaWords() const;

  /// Records `clauses` permanently retired via activation-literal units.
  /// The solver cannot see retraction itself — a `~a` unit looks like any
  /// other clause — so the encoder layer reports it for observability.
  void NoteRetraction(std::uint64_t clauses);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Decides satisfiability with conflict-driven clause learning. On a
/// satisfiable formula the returned assignment is total and verified
/// against the input (same contract as SolveDpll). Thin wrapper over a
/// fresh CdclSolver.
SatResult SolveCdcl(const CnfFormula& f, CdclStats* stats = nullptr);

}  // namespace cqa

#endif  // CQA_SAT_CDCL_H_
