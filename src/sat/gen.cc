#include "sat/gen.h"

#include <algorithm>

#include "base/check.h"

namespace cqa {

CnfFormula RandomKSat(std::uint32_t num_vars, std::uint32_t num_clauses,
                      std::uint32_t k, Rng* rng) {
  CQA_CHECK(num_vars >= k && k >= 1);
  CnfFormula f;
  f.num_vars = num_vars;
  f.clauses.reserve(num_clauses);
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    Clause clause;
    std::vector<std::uint32_t> vars;
    while (vars.size() < k) {
      std::uint32_t v = static_cast<std::uint32_t>(rng->Below(num_vars));
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    for (std::uint32_t v : vars) {
      clause.push_back(Literal{v, rng->Chance(0.5)});
    }
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

CnfFormula RandomReductionReady3Sat(std::uint32_t num_vars,
                                    std::uint32_t num_clauses, Rng* rng) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    CnfFormula raw = RandomKSat(num_vars, num_clauses, 3, rng);
    CnfFormula limited = LimitOccurrences(raw);
    CnfFormula ready = EliminatePureAndSingletons(limited);
    if (!ready.clauses.empty() && ready.IsReductionReady() &&
        ready.MaxClauseSize(3)) {
      return ready;
    }
  }
  CQA_CHECK_MSG(false, "failed to generate a reduction-ready 3-SAT formula");
}

CnfFormula Figure2Formula() {
  // (~s | t | u) & (~s | ~t | u) & (s | ~t | ~u); s=0, t=1, u=2.
  CnfFormula f;
  f.num_vars = 3;
  f.clauses = {
      {Literal{0, false}, Literal{1, true}, Literal{2, true}},
      {Literal{0, false}, Literal{1, false}, Literal{2, true}},
      {Literal{0, true}, Literal{1, false}, Literal{2, false}},
  };
  return f;
}

}  // namespace cqa
