// Network front end for cqa::Service.
//
// Architecture: one reader thread per connection decodes frames off the
// socket and *admits* requests into one bounded queue; a fixed worker
// pool drains the queue and runs the request pipeline (mutate → compile
// → solve) against the wrapped Service; responses go back over the
// request's connection under a per-connection write lock, tagged with the
// request's id (a pipelined fast query may overtake a slow one, so
// responses are matched by id, not order).
//
// Admission control: the queue is the only buffer. When it is full the
// reader sheds the request immediately with kOverloaded — a typed,
// retry-safe signal that the request was *never executed* — instead of
// queueing unboundedly and timing everything out. Deadlines ride along
// as a microsecond budget stamped at decode time and are re-checked at
// every hand-off: at admission, at dequeue, and between pipeline stages,
// so an expired request stops consuming the server at the next boundary
// (kDeadlineExceeded; a mutation already applied is reported as such in
// the error message — mutations are not rolled back mid-pipeline).
//
// Shutdown is graceful: Stop() closes the listener, wakes the readers,
// then lets the workers drain every admitted request to a response
// before joining — an admitted request is never silently dropped.
//
// Thread-safety: all public methods are safe to call from any thread;
// Stop() is idempotent. The Server holds no lock while calling into the
// Service, so its internals sit outside the engine's lock hierarchy.

#ifndef CQA_SERVER_SERVER_H_
#define CQA_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/status.h"
#include "server/protocol.h"

namespace cqa {
namespace server {

struct ServerOptions {
  /// Worker threads executing requests; 0 means hardware concurrency.
  std::uint32_t num_workers = 4;
  /// Admission-queue bound; a request arriving at a full queue is shed
  /// with kOverloaded without executing.
  std::size_t max_queue = 64;
  /// Test hooks: artificial stalls before the admission deadline check
  /// (reader side) and after dequeue before the dequeue deadline check
  /// (worker side). They make "deadline expired while queued/admitted"
  /// deterministic in tests; zero (always, in production) disables them.
  std::chrono::microseconds test_admission_delay{0};
  std::chrono::microseconds test_dequeue_delay{0};
};

/// One server per Service. Connections come from ServeFd (an adopted
/// socket, e.g. one end of a socketpair) or ListenTcp; both can be mixed.
class Server {
 public:
  Server(Service& service, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adopts `fd` (the server closes it) as a client connection and
  /// starts serving it. Errors: kInvalidArgument after Stop().
  [[nodiscard]] Status ServeFd(int fd);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// with port()) and accepts connections until Stop(). Errors:
  /// kIoError (bind/listen), kInvalidArgument (already listening or
  /// stopped).
  [[nodiscard]] Status ListenTcp(std::uint16_t port);

  /// Port bound by ListenTcp; 0 before a successful ListenTcp.
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stops accepting, unblocks readers, drains every
  /// admitted request to a response, joins all threads. Idempotent.
  void Stop();

  /// Service stats with ServiceStats::server filled in.
  ServiceStats Stats() const;

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mu;
    std::thread reader;
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    Request request;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WorkerLoop();
  void AcceptLoop();
  /// Decode one framed payload and either enqueue it or answer the
  /// admission error (shed / expired / malformed) directly.
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const std::string& payload);
  void Execute(Job& job);
  void Respond(const std::shared_ptr<Connection>& conn,
               const Response& resp);
  void RespondError(const std::shared_ptr<Connection>& conn,
                    std::uint64_t request_id, const Status& status);

  Service& service_;
  const ServerOptions options_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;  // guarded by queue_mu_

  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;  // guarded by conns_mu_
  bool accepting_ = true;                           // guarded by conns_mu_

  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  std::thread acceptor_;

  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_overloaded_{0};
  std::atomic<std::uint64_t> deadline_admission_{0};
  std::atomic<std::uint64_t> deadline_dequeue_{0};
  std::atomic<std::uint64_t> deadline_pipeline_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
};

}  // namespace server
}  // namespace cqa

#endif  // CQA_SERVER_SERVER_H_
