// Wire protocol of the serving layer (src/server).
//
// One frame per message, symmetric in both directions:
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// built from the same little-endian primitives and CRC discipline as the
// on-disk formats (store/format.h) — a reader that trusts no length field
// before bounds-checking it, and a checksum verified before a single
// payload field is believed. Framing errors (bad CRC, payload_len over
// kMaxFramePayload) are *connection-fatal*: after them the stream offset
// itself is untrustworthy. A frame that passes framing but whose payload
// fails to decode is a *request*-level error: the server answers with a
// typed error response and the connection lives on.
//
// Payload encodings are canonical: exactly one byte string encodes a
// given Request/Response, and decoders reject trailing bytes. Round-trip
// (decode then re-encode) reproduces the input byte-for-byte, which is
// what fuzz_protocol leans on.

#ifndef CQA_SERVER_PROTOCOL_H_
#define CQA_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/report.h"
#include "api/status.h"

namespace cqa {
namespace server {

/// Bumped on any incompatible payload-layout change. A request with a
/// different version gets a kCapabilityMismatch response.
inline constexpr std::uint8_t kProtocolVersion = 1;

/// Hard cap on a frame payload. Anything larger is declared corrupt
/// before allocation: no legitimate request or response approaches this,
/// and the cap keeps a flipped length byte from provoking a 4 GiB
/// buffer.
inline constexpr std::uint32_t kMaxFramePayload = 4u << 20;  // 4 MiB

/// Bytes of frame header preceding the payload: payload_len + crc.
inline constexpr std::size_t kFrameHeaderSize = 8;

enum class MutationKind : std::uint8_t {
  kNone = 0,
  kInsert = 1,
  kDelete = 2,
};

/// One client->server message: solve `query_text` against database
/// `db_name`, optionally preceded by a mutation batch (applied before
/// the solve; a query-less pure mutation has empty query_text).
struct Request {
  std::uint64_t request_id = 0;
  std::string db_name;
  std::string query_text;
  /// Forces a named backend (Service::Compile's forced_backend); empty
  /// picks the dichotomy's own choice.
  std::string forced_backend;
  bool allow_unresolved = false;
  /// Ask for the falsifying repair as named facts in the response.
  bool want_witness = false;
  /// Remaining budget in microseconds; 0 means no deadline. A *budget*
  /// rather than an absolute time so client and server clocks never need
  /// agreement; the server stamps the absolute deadline when it decodes
  /// the frame.
  std::uint64_t deadline_micros = 0;
  MutationKind mutation_kind = MutationKind::kNone;
  std::vector<FactSpec> mutation;
};

/// One server->client message. `request_id` echoes the request —
/// responses may arrive out of submission order (a pipelined fast query
/// can overtake a slow one), so the id is the only pairing.
struct Response {
  std::uint64_t request_id = 0;
  /// StatusCode as its UPPER_SNAKE wire name (StatusCodeToString), so
  /// the wire stays readable and new codes never renumber old ones.
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool certain = false;
  bool mutated = false;
  std::string backend_name;
  std::uint64_t num_facts = 0;
  std::uint64_t num_blocks = 0;
  std::uint64_t components_total = 0;
  std::uint64_t components_cached = 0;
  /// Falsifying repair as named facts (present only when the request set
  /// want_witness, the answer was non-certain, and the backend explains).
  bool has_witness = false;
  std::vector<FactSpec> witness;
};

/// Wraps a finished payload in a frame header.
std::string Frame(std::string_view payload);

std::string EncodeRequest(const Request& req);
std::string EncodeResponse(const Response& resp);

/// Strict decoders over a *payload* (frame header already stripped and
/// CRC already verified): any truncation, bound violation, unknown
/// enum value, or trailing byte is a typed kCorruptedData error.
[[nodiscard]] Status DecodeRequest(std::string_view payload, Request* out);
[[nodiscard]] Status DecodeResponse(std::string_view payload, Response* out);

/// Incremental frame decoder for a byte stream. Feed() appends whatever
/// the socket produced; Next() yields one decoded payload at a time.
class FrameReader {
 public:
  enum class Result {
    kFrame,     ///< *payload filled with one complete, CRC-checked payload.
    kNeedMore,  ///< No complete frame buffered; Feed() more bytes.
    kCorrupt,   ///< Bad CRC or oversized length. Connection-fatal: the
                ///< reader stays poisoned and yields kCorrupt forever.
  };

  void Feed(std::string_view bytes);
  Result Next(std::string* payload);

  /// Bytes buffered but not yet consumed by Next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  bool corrupt_ = false;
};

}  // namespace server
}  // namespace cqa

#endif  // CQA_SERVER_PROTOCOL_H_
