#include "server/protocol.h"

#include <cstring>
#include <optional>
#include <utility>

#include "store/format.h"

namespace cqa {
namespace server {

namespace {

Status Corrupt(const std::string& what) {
  return Status(StatusCode::kCorruptedData, "wire payload: " + what);
}

void EncodeFacts(store::ByteWriter* w, const std::vector<FactSpec>& facts) {
  w->U32(static_cast<std::uint32_t>(facts.size()));
  for (const FactSpec& f : facts) {
    w->Str(f.relation);
    w->U32(static_cast<std::uint32_t>(f.args.size()));
    for (const std::string& a : f.args) w->Str(a);
  }
}

Status DecodeFacts(store::ByteReader* r, const char* field,
                   std::vector<FactSpec>* out) {
  std::uint32_t count = 0;
  if (!r->U32(&count)) return Corrupt(std::string("truncated ") + field);
  // Each fact costs at least 8 bytes (two u32 length prefixes), so a
  // count beyond remaining()/8 cannot be honest — reject before
  // reserving memory for it.
  if (count > r->remaining() / 8) {
    return Corrupt(std::string(field) + " count exceeds payload size");
  }
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FactSpec spec;
    if (!r->Str(&spec.relation)) {
      return Corrupt(std::string("truncated ") + field);
    }
    std::uint32_t nargs = 0;
    if (!r->U32(&nargs)) return Corrupt(std::string("truncated ") + field);
    if (nargs > r->remaining() / 4) {
      return Corrupt(std::string(field) + " arity exceeds payload size");
    }
    spec.args.reserve(nargs);
    for (std::uint32_t a = 0; a < nargs; ++a) {
      std::string arg;
      if (!r->Str(&arg)) return Corrupt(std::string("truncated ") + field);
      spec.args.push_back(std::move(arg));
    }
    out->push_back(std::move(spec));
  }
  return Status::Ok();
}

}  // namespace

std::string Frame(std::string_view payload) {
  store::ByteWriter header;
  header.U32(static_cast<std::uint32_t>(payload.size()));
  header.U32(store::Crc32(payload));
  std::string out = header.Take();
  out.append(payload);
  return out;
}

std::string EncodeRequest(const Request& req) {
  store::ByteWriter w;
  w.U8(kProtocolVersion);
  w.U64(req.request_id);
  w.Str(req.db_name);
  w.Str(req.query_text);
  w.Str(req.forced_backend);
  std::uint8_t flags = 0;
  if (req.allow_unresolved) flags |= 1u;
  if (req.want_witness) flags |= 2u;
  w.U8(flags);
  w.U64(req.deadline_micros);
  w.U8(static_cast<std::uint8_t>(req.mutation_kind));
  EncodeFacts(&w, req.mutation);
  return w.Take();
}

Status DecodeRequest(std::string_view payload, Request* out) {
  store::ByteReader r(payload);
  std::uint8_t version = 0;
  if (!r.U8(&version)) return Corrupt("truncated header");
  if (version != kProtocolVersion) {
    return Status(StatusCode::kCapabilityMismatch,
                  "protocol version " + std::to_string(version) +
                      " (this server speaks " +
                      std::to_string(kProtocolVersion) + ")");
  }
  Request req;
  std::uint8_t flags = 0;
  std::uint8_t kind = 0;
  if (!r.U64(&req.request_id) || !r.Str(&req.db_name) ||
      !r.Str(&req.query_text) || !r.Str(&req.forced_backend) ||
      !r.U8(&flags) || !r.U64(&req.deadline_micros) || !r.U8(&kind)) {
    return Corrupt("truncated request");
  }
  if ((flags & ~3u) != 0) return Corrupt("unknown request flag bits");
  req.allow_unresolved = (flags & 1u) != 0;
  req.want_witness = (flags & 2u) != 0;
  if (kind > static_cast<std::uint8_t>(MutationKind::kDelete)) {
    return Corrupt("unknown mutation kind " + std::to_string(kind));
  }
  req.mutation_kind = static_cast<MutationKind>(kind);
  Status facts = DecodeFacts(&r, "mutation batch", &req.mutation);
  if (!facts.ok()) return facts;
  if (req.mutation_kind == MutationKind::kNone && !req.mutation.empty()) {
    return Corrupt("mutation facts present with kind=none");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after request");
  *out = std::move(req);
  return Status::Ok();
}

std::string EncodeResponse(const Response& resp) {
  store::ByteWriter w;
  w.U8(kProtocolVersion);
  w.U64(resp.request_id);
  w.Str(ToString(resp.code));
  w.Str(resp.message);
  std::uint8_t flags = 0;
  if (resp.certain) flags |= 1u;
  if (resp.has_witness) flags |= 2u;
  if (resp.mutated) flags |= 4u;
  w.U8(flags);
  w.Str(resp.backend_name);
  w.U64(resp.num_facts);
  w.U64(resp.num_blocks);
  w.U64(resp.components_total);
  w.U64(resp.components_cached);
  EncodeFacts(&w, resp.witness);
  return w.Take();
}

Status DecodeResponse(std::string_view payload, Response* out) {
  store::ByteReader r(payload);
  std::uint8_t version = 0;
  if (!r.U8(&version)) return Corrupt("truncated header");
  if (version != kProtocolVersion) {
    return Status(StatusCode::kCapabilityMismatch,
                  "protocol version " + std::to_string(version) +
                      " (this client speaks " +
                      std::to_string(kProtocolVersion) + ")");
  }
  Response resp;
  std::string code_name;
  std::uint8_t flags = 0;
  if (!r.U64(&resp.request_id) || !r.Str(&code_name) ||
      !r.Str(&resp.message) || !r.U8(&flags) || !r.Str(&resp.backend_name) ||
      !r.U64(&resp.num_facts) || !r.U64(&resp.num_blocks) ||
      !r.U64(&resp.components_total) || !r.U64(&resp.components_cached)) {
    return Corrupt("truncated response");
  }
  std::optional<StatusCode> code = StatusCodeFromString(code_name);
  if (!code.has_value()) {
    return Corrupt("unknown status code \"" + code_name + "\"");
  }
  resp.code = *code;
  if ((flags & ~7u) != 0) return Corrupt("unknown response flag bits");
  resp.certain = (flags & 1u) != 0;
  resp.has_witness = (flags & 2u) != 0;
  resp.mutated = (flags & 4u) != 0;
  Status facts = DecodeFacts(&r, "witness", &resp.witness);
  if (!facts.ok()) return facts;
  if (!resp.has_witness && !resp.witness.empty()) {
    return Corrupt("witness facts present without has_witness");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes after response");
  *out = std::move(resp);
  return Status::Ok();
}

void FrameReader::Feed(std::string_view bytes) {
  if (corrupt_) return;
  // Drop fully consumed prefix before growing: a long-lived connection
  // must not accrete every frame it ever received.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

FrameReader::Result FrameReader::Next(std::string* payload) {
  if (corrupt_) return Result::kCorrupt;
  std::string_view view(buffer_.data() + consumed_,
                        buffer_.size() - consumed_);
  if (view.size() < kFrameHeaderSize) return Result::kNeedMore;
  store::ByteReader header(view.substr(0, kFrameHeaderSize));
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  header.U32(&len);
  header.U32(&crc);
  if (len > kMaxFramePayload) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  if (view.size() < kFrameHeaderSize + len) return Result::kNeedMore;
  std::string_view body = view.substr(kFrameHeaderSize, len);
  if (store::Crc32(body) != crc) {
    corrupt_ = true;
    return Result::kCorrupt;
  }
  payload->assign(body);
  consumed_ += kFrameHeaderSize + len;
  return Result::kFrame;
}

}  // namespace server
}  // namespace cqa
