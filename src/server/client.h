// Blocking client for the serving layer's wire protocol.
//
// Thin by design: it frames requests, reads frames back, and decodes
// responses — no retry, no connection pool. Send() and Receive() are
// independent, so a caller can pipeline (send many, then collect) and
// pair responses to requests by request_id; Call() is the convenience
// for the non-pipelined case. Tests and bench_server drive the server
// through this class so the parity harness exercises the same code path
// a real client would.
//
// Not thread-safe: one Client per thread (the server side handles the
// concurrency).

#ifndef CQA_SERVER_CLIENT_H_
#define CQA_SERVER_CLIENT_H_

#include <cstdint>

#include "api/status.h"
#include "server/protocol.h"

namespace cqa {
namespace server {

/// A connected AF_UNIX stream pair for in-process serving: hand
/// `server_fd` to Server::ServeFd and `client_fd` to Client::FromFd.
/// Errors: kIoError.
[[nodiscard]] Status LocalSocketPair(int* client_fd, int* server_fd);

class Client {
 public:
  /// Adopts a connected socket (the Client closes it).
  static Client FromFd(int fd) { return Client(fd); }

  /// Connects to a Server listening on 127.0.0.1:`port`. Errors:
  /// kIoError.
  static StatusOr<Client> ConnectTcp(std::uint16_t port);

  Client() = default;
  ~Client() { Close(); }
  Client(Client&& other) noexcept : fd_(other.fd_), frames_(std::move(other.frames_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Frames and writes one request. Errors: kIoError (connection gone).
  [[nodiscard]] Status Send(const Request& req);

  /// Blocks for the next response frame. Errors: kIoError (EOF before a
  /// full frame), kCorruptedData (bad CRC / undecodable payload).
  [[nodiscard]] StatusOr<Response> Receive();

  /// Send + Receive until the response matching `req.request_id` arrives
  /// (for non-pipelined use; responses to other ids are discarded).
  [[nodiscard]] StatusOr<Response> Call(const Request& req);

  /// Half-closes the write side: the server sees EOF and finishes what
  /// was already sent; Receive() still works for in-flight responses.
  void ShutdownWrite();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameReader frames_;
};

}  // namespace server
}  // namespace cqa

#endif  // CQA_SERVER_CLIENT_H_
