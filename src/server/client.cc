#include "server/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>

namespace cqa {
namespace server {

Status LocalSocketPair(int* client_fd, int* server_fd) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status(StatusCode::kIoError,
                  std::string("socketpair() failed: ") +
                      std::strerror(errno));
  }
  *client_fd = fds[0];
  *server_fd = fds[1];
  return Status::Ok();
}

StatusOr<Client> Client::ConnectTcp(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kIoError, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kIoError,
                  "connect to 127.0.0.1:" + std::to_string(port) +
                      " failed: " + std::strerror(errno));
  }
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    frames_ = std::move(other.frames_);
    other.fd_ = -1;
  }
  return *this;
}

Status Client::Send(const Request& req) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "client not connected");
  std::string frame = Frame(EncodeRequest(req));
  std::string_view bytes = frame;
  while (!bytes.empty()) {
    ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      return Status(StatusCode::kIoError, "send() failed mid-request");
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

StatusOr<Response> Client::Receive() {
  if (fd_ < 0) return Status(StatusCode::kIoError, "client not connected");
  std::string payload;
  char buf[64 * 1024];
  for (;;) {
    FrameReader::Result result = frames_.Next(&payload);
    if (result == FrameReader::Result::kFrame) {
      Response resp;
      Status decoded = DecodeResponse(payload, &resp);
      if (!decoded.ok()) return decoded;
      return resp;
    }
    if (result == FrameReader::Result::kCorrupt) {
      return Status(StatusCode::kCorruptedData,
                    "corrupt response frame (bad CRC or oversized)");
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      return Status(StatusCode::kIoError,
                    "connection closed before a full response frame");
    }
    frames_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

StatusOr<Response> Client::Call(const Request& req) {
  Status sent = Send(req);
  if (!sent.ok()) return sent;
  for (;;) {
    StatusOr<Response> resp = Receive();
    if (!resp.ok()) return resp;
    if (resp->request_id == req.request_id) return resp;
  }
}

void Client::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace cqa
