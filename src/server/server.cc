#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "store/format.h"

namespace cqa {
namespace server {

namespace {

// Best-effort request id from a payload that failed full decode, so the
// error response can still be paired by a pipelining client. Zero when
// not even the header survived.
std::uint64_t PeekRequestId(std::string_view payload) {
  store::ByteReader r(payload);
  std::uint8_t version = 0;
  std::uint64_t id = 0;
  if (!r.U8(&version) || !r.U64(&id)) return 0;
  return id;
}

bool SendAll(int fd, std::string_view bytes) {
  // MSG_NOSIGNAL: a client that hung up must cost EPIPE, not SIGPIPE.
  while (!bytes.empty()) {
    ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(Service& service, ServerOptions options)
    : service_(service), options_(options) {
  std::uint32_t n = options_.num_workers;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 2;
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Stop(); }

Status Server::ServeFd(int fd) {
  auto conn = std::make_shared<Connection>(fd);
  std::lock_guard lock(conns_mu_);
  if (!accepting_) {
    return Status(StatusCode::kInvalidArgument,
                  "server is stopped; cannot adopt a connection");
  }
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  connections_open_.fetch_add(1, std::memory_order_relaxed);
  conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  conns_.push_back(conn);
  return Status::Ok();
}

Status Server::ListenTcp(std::uint16_t port) {
  {
    std::lock_guard lock(conns_mu_);
    if (!accepting_) {
      return Status(StatusCode::kInvalidArgument, "server is stopped");
    }
    if (listen_fd_ >= 0) {
      return Status(StatusCode::kInvalidArgument, "already listening");
    }
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kIoError, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return Status(StatusCode::kIoError,
                  "bind/listen on 127.0.0.1:" + std::to_string(port) +
                      " failed: " + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status(StatusCode::kIoError, "getsockname() failed");
  }
  {
    std::lock_guard lock(conns_mu_);
    listen_fd_ = fd;
  }
  port_.store(ntohs(addr.sin_port), std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down (or fatal): stop accepting
    if (!ServeFd(fd).ok()) return;
  }
}

void Server::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  FrameReader frames;
  std::string payload;
  char buf[64 * 1024];
  bool corrupt = false;
  while (!corrupt) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, peer reset, or Stop()'s shutdown(SHUT_RD)
    frames.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
    for (;;) {
      FrameReader::Result result = frames.Next(&payload);
      if (result == FrameReader::Result::kNeedMore) break;
      if (result == FrameReader::Result::kCorrupt) {
        // The stream offset itself is gone; no response can be paired.
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        corrupt = true;
        break;
      }
      HandleFrame(conn, payload);
    }
  }
  // A poisoned stream gets a full hang-up so the client sees EOF rather
  // than waiting on responses that can never be paired. A clean EOF
  // (client half-closed to collect pipelined responses) must NOT: the
  // write side stays open until the workers have answered everything.
  if (corrupt) ::shutdown(conn->fd, SHUT_RDWR);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const std::string& payload) {
  Job job;
  job.conn = conn;
  Status decoded = DecodeRequest(payload, &job.request);
  if (!decoded.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    RespondError(conn, PeekRequestId(payload), decoded);
    return;
  }
  if (job.request.deadline_micros != 0) {
    job.has_deadline = true;
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::microseconds(job.request.deadline_micros);
  }
  if (options_.test_admission_delay.count() != 0) {
    std::this_thread::sleep_for(options_.test_admission_delay);
  }
  if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
    deadline_admission_.fetch_add(1, std::memory_order_relaxed);
    RespondError(conn, job.request.request_id,
                 Status(StatusCode::kDeadlineExceeded,
                        "deadline expired before admission"));
    return;
  }
  {
    std::lock_guard lock(queue_mu_);
    if (stopping_) {
      shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
      RespondError(conn, job.request.request_id,
                   Status(StatusCode::kOverloaded,
                          "server stopping; request not admitted"));
      return;
    }
    if (queue_.size() >= options_.max_queue) {
      shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
      RespondError(conn, job.request.request_id,
                   Status(StatusCode::kOverloaded,
                          "admission queue full (" +
                              std::to_string(options_.max_queue) +
                              "); request not executed, safe to retry"));
      return;
    }
    queue_.push_back(std::move(job));
    admitted_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t depth = queue_.size();
    std::uint64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peak_queue_depth_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
  }
  queue_cv_.notify_one();
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful drain: exit only once every admitted request is gone.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (options_.test_dequeue_delay.count() != 0) {
      std::this_thread::sleep_for(options_.test_dequeue_delay);
    }
    // Counted before the response goes out, so a client holding a
    // response can never observe completed < its own request.
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (job.has_deadline &&
        std::chrono::steady_clock::now() >= job.deadline) {
      deadline_dequeue_.fetch_add(1, std::memory_order_relaxed);
      RespondError(job.conn, job.request.request_id,
                   Status(StatusCode::kDeadlineExceeded,
                          "deadline expired while queued"));
    } else {
      Execute(job);
    }
  }
}

void Server::Execute(Job& job) {
  const Request& req = job.request;
  auto expired = [&job] {
    return job.has_deadline &&
           std::chrono::steady_clock::now() >= job.deadline;
  };

  Response resp;
  resp.request_id = req.request_id;

  if (req.mutation_kind != MutationKind::kNone) {
    Status mutated =
        req.mutation_kind == MutationKind::kInsert
            ? service_.InsertFacts(req.db_name, req.mutation)
            : service_.DeleteFacts(req.db_name, req.mutation);
    if (!mutated.ok()) {
      RespondError(job.conn, req.request_id, mutated);
      return;
    }
    resp.mutated = true;
    if (expired()) {
      deadline_pipeline_.fetch_add(1, std::memory_order_relaxed);
      RespondError(job.conn, req.request_id,
                   Status(StatusCode::kDeadlineExceeded,
                          "deadline expired after mutation "
                          "(mutation applied, query not run)"));
      return;
    }
  }

  if (req.query_text.empty()) {
    // Pure mutation: acknowledge it.
    Respond(job.conn, resp);
    return;
  }

  CompileOptions copts;
  copts.forced_backend = req.forced_backend;
  copts.allow_unresolved = req.allow_unresolved;
  StatusOr<CompiledQuery> q = service_.Compile(req.query_text, copts);
  if (!q.ok()) {
    RespondError(job.conn, req.request_id, q.status());
    return;
  }
  if (expired()) {
    deadline_pipeline_.fetch_add(1, std::memory_order_relaxed);
    RespondError(job.conn, req.request_id,
                 Status(StatusCode::kDeadlineExceeded,
                        "deadline expired after compile"));
    return;
  }

  StatusOr<SolveReport> report =
      service_.Solve(*q, req.db_name, /*name_witness=*/req.want_witness);
  if (!report.ok()) {
    RespondError(job.conn, req.request_id, report.status());
    return;
  }
  resp.certain = report->certain;
  resp.backend_name = report->backend_name;
  resp.num_facts = report->num_facts;
  resp.num_blocks = report->num_blocks;
  resp.components_total = report->components_total;
  resp.components_cached = report->components_cached;
  if (req.want_witness && report->named_witness.has_value()) {
    resp.has_witness = true;
    resp.witness = *report->named_witness;
  }
  Respond(job.conn, resp);
}

void Server::Respond(const std::shared_ptr<Connection>& conn,
                     const Response& resp) {
  std::string frame = Frame(EncodeResponse(resp));
  std::lock_guard lock(conn->write_mu);
  SendAll(conn->fd, frame);  // a vanished client is its own problem
}

void Server::RespondError(const std::shared_ptr<Connection>& conn,
                          std::uint64_t request_id, const Status& status) {
  Response resp;
  resp.request_id = request_id;
  resp.code = status.code();
  resp.message = status.message();
  Respond(conn, resp);
}

void Server::Stop() {
  std::vector<std::shared_ptr<Connection>> conns;
  int listen_fd = -1;
  {
    std::lock_guard lock(conns_mu_);
    if (!accepting_) return;  // idempotent
    accepting_ = false;
    conns.swap(conns_);
    listen_fd = listen_fd_;
    listen_fd_ = -1;
  }
  // Wake the acceptor: shutdown() on a listening socket fails the
  // blocked accept() on Linux; then the fd can be closed safely.
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd);
  }
  // Unblock every reader (recv returns 0) and let them finish enqueueing
  // what they had already buffered.
  for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  // No reader remains, so no new admissions: drain and join the workers.
  {
    std::lock_guard lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // Dropping `conns` closes the sockets (after all responses are out).
}

ServiceStats Server::Stats() const {
  ServiceStats stats = service_.Stats();
  auto& s = stats.server;
  s.queue_capacity = options_.max_queue;
  {
    std::lock_guard lock(queue_mu_);
    s.queue_depth = queue_.size();
  }
  s.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_overloaded = shed_overloaded_.load(std::memory_order_relaxed);
  s.deadline_rejected_admission =
      deadline_admission_.load(std::memory_order_relaxed);
  s.deadline_rejected_dequeue =
      deadline_dequeue_.load(std::memory_order_relaxed);
  s.deadline_rejected_pipeline =
      deadline_pipeline_.load(std::memory_order_relaxed);
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace server
}  // namespace cqa
