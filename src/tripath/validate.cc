#include "tripath/validate.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "base/check.h"
#include "query/eval.h"

namespace cqa {
namespace {

using ElementSet = std::vector<ElementId>;  // Sorted, unique.

bool Contains(const ElementSet& s, ElementId e) {
  return std::binary_search(s.begin(), s.end(), e);
}

bool SetSubset(const ElementSet& a, const ElementSet& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

ElementSet SetUnion(const ElementSet& a, const ElementSet& b) {
  ElementSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

struct Fail {
  TripathValidation* out;
  bool Check(bool cond, const char* what) {
    if (!cond && out->error.empty()) out->error = what;
    return cond;
  }
};

}  // namespace

TripathValidation ValidateTripath(const ConjunctiveQuery& q,
                                  const Tripath& t) {
  TripathValidation result;
  Fail fail{&result};
  const Database& db = t.db;
  const std::size_t m = t.blocks.size();

  // --- Structural checks on the declared tree. -------------------------
  if (!fail.Check(m >= 4, "a tripath needs at least 4 blocks")) return result;
  if (!fail.Check(t.root >= 0 && t.center >= 0 && t.leaf1 >= 0 &&
                      t.leaf2 >= 0 && t.root < static_cast<int>(m) &&
                      t.center < static_cast<int>(m) &&
                      t.leaf1 < static_cast<int>(m) &&
                      t.leaf2 < static_cast<int>(m),
                  "role indices out of range")) {
    return result;
  }
  if (!fail.Check(t.leaf1 != t.leaf2 && t.root != t.center,
                  "root, center and leaves must be distinct")) {
    return result;
  }

  std::vector<int> num_children(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    int p = t.blocks[i].parent;
    if (static_cast<int>(i) == t.root) {
      if (!fail.Check(p == -1, "root must have no parent")) return result;
    } else {
      if (!fail.Check(p >= 0 && p < static_cast<int>(m) &&
                          p != static_cast<int>(i),
                      "non-root block needs a valid parent")) {
        return result;
      }
      ++num_children[p];
    }
  }
  // Reachability from the root (also rules out parent cycles).
  for (std::size_t i = 0; i < m; ++i) {
    int cur = static_cast<int>(i);
    std::size_t steps = 0;
    while (cur != t.root && steps <= m) {
      cur = t.blocks[cur].parent;
      ++steps;
    }
    if (!fail.Check(cur == t.root, "block not connected to the root")) {
      return result;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    int expected;
    if (static_cast<int>(i) == t.leaf1 || static_cast<int>(i) == t.leaf2) {
      expected = 0;
    } else if (static_cast<int>(i) == t.center) {
      expected = 2;
    } else {
      expected = 1;
    }
    if (!fail.Check(num_children[i] == expected,
                    "wrong number of children for a block")) {
      return result;
    }
  }

  // --- Fact roles per block. -------------------------------------------
  for (std::size_t i = 0; i < m; ++i) {
    const TripathBlock& blk = t.blocks[i];
    bool is_root = static_cast<int>(i) == t.root;
    bool is_leaf =
        static_cast<int>(i) == t.leaf1 || static_cast<int>(i) == t.leaf2;
    if (is_root) {
      if (!fail.Check(blk.a != TripathBlock::kNoFact &&
                          blk.b == TripathBlock::kNoFact,
                      "root block must contain exactly a(B)")) {
        return result;
      }
    } else if (is_leaf) {
      if (!fail.Check(blk.b != TripathBlock::kNoFact &&
                          blk.a == TripathBlock::kNoFact,
                      "leaf block must contain exactly b(B)")) {
        return result;
      }
    } else {
      if (!fail.Check(blk.a != TripathBlock::kNoFact &&
                          blk.b != TripathBlock::kNoFact && blk.a != blk.b,
                      "internal block must contain distinct a(B), b(B)")) {
        return result;
      }
    }
  }

  // --- Declared blocks must be exactly the database's block partition. --
  // (Key-equal facts across declared blocks would merge blocks and break
  // the tree; this also enforces "each block has at most two facts".)
  {
    std::size_t declared_facts = 0;
    std::set<BlockId> seen_db_blocks;
    for (std::size_t i = 0; i < m; ++i) {
      const TripathBlock& blk = t.blocks[i];
      std::vector<FactId> members;
      if (blk.a != TripathBlock::kNoFact) members.push_back(blk.a);
      if (blk.b != TripathBlock::kNoFact) members.push_back(blk.b);
      declared_facts += members.size();
      BlockId db_block = db.BlockOf(members[0]);
      for (FactId fid : members) {
        if (!fail.Check(db.BlockOf(fid) == db_block,
                        "declared block spans database blocks")) {
          return result;
        }
      }
      if (!fail.Check(db.blocks()[db_block].facts.size() == members.size(),
                      "database block has extra key-equal facts")) {
        return result;
      }
      if (!fail.Check(seen_db_blocks.insert(db_block).second,
                      "two declared blocks are key-equal")) {
        return result;
      }
    }
    if (!fail.Check(declared_facts == db.NumFacts(),
                    "database has facts outside the tripath")) {
      return result;
    }
  }

  // --- Required solutions along tree edges. ----------------------------
  RelationBinding binding(q, db);
  for (std::size_t i = 0; i < m; ++i) {
    if (static_cast<int>(i) == t.root) continue;
    const TripathBlock& blk = t.blocks[i];
    FactId parent_a = t.blocks[blk.parent].a;
    if (!fail.Check(IsSolutionEither(q, binding, db, parent_a, blk.b),
                    "missing solution q{a(B) b(B')} on a tree edge")) {
      return result;
    }
  }

  // --- Center: e branching with d and f, directed. ---------------------
  const TripathBlock& center = t.blocks[t.center];
  if (!fail.Check(center.a == t.e, "e must be a(center)")) return result;
  // d and f must be the b-facts of the center's two children.
  {
    std::vector<FactId> child_bs;
    for (std::size_t i = 0; i < m; ++i) {
      if (t.blocks[i].parent == t.center) child_bs.push_back(t.blocks[i].b);
    }
    CQA_CHECK(child_bs.size() == 2);
    bool match = (child_bs[0] == t.d && child_bs[1] == t.f) ||
                 (child_bs[0] == t.f && child_bs[1] == t.d);
    if (!fail.Check(match, "d, f must be the children's b-facts")) {
      return result;
    }
  }
  if (!fail.Check(IsSolution(q, binding, db, t.d, t.e), "q(d e) must hold")) {
    return result;
  }
  if (!fail.Check(IsSolution(q, binding, db, t.e, t.f), "q(e f) must hold")) {
    return result;
  }

  // --- g(e) conditions against root and leaf keys. ----------------------
  ElementSet g = ComputeGOfE(db, t.d, t.e, t.f);
  for (FactId ui : {t.u0(), t.u1(), t.u2()}) {
    if (!fail.Check(!SetSubset(g, KeyElementSet(db, ui)),
                    "g(e) is contained in the key of u0, u1 or u2")) {
      return result;
    }
  }

  result.valid = true;
  result.triangle = IsSolution(q, binding, db, t.f, t.d);

  // --- Niceness. ---------------------------------------------------------
  const FactId u0 = t.u0();
  const FactId u1 = t.u1();
  const FactId u2 = t.u2();
  ElementSet key_u0 = KeyElementSet(db, u0);
  ElementSet key_u1 = KeyElementSet(db, u1);
  ElementSet key_u2 = KeyElementSet(db, u2);
  ElementSet forbidden = SetUnion(SetUnion(key_u0, key_u1), key_u2);

  // Variable-nice: x in key(d), y in key(e), z in key(f) all avoiding the
  // keys of u0, u1, u2.
  ElementSet key_d = KeyElementSet(db, t.d);
  ElementSet key_e = KeyElementSet(db, t.e);
  ElementSet key_f = KeyElementSet(db, t.f);
  auto admissible = [&](const ElementSet& key) {
    ElementSet out;
    for (ElementId el : key) {
      if (!Contains(forbidden, el)) out.push_back(el);
    }
    return out;
  };
  ElementSet xs = admissible(key_d);
  ElementSet ys = admissible(key_e);
  ElementSet zs = admissible(key_f);
  result.variable_nice = !xs.empty() && !ys.empty() && !zs.empty();

  // Solution-nice: the only solutions are the tree edges and possibly
  // {f, d}.
  {
    std::set<std::pair<FactId, FactId>> allowed;
    auto allow = [&](FactId s, FactId t2) {
      allowed.insert({s, t2});
      allowed.insert({t2, s});
    };
    for (std::size_t i = 0; i < m; ++i) {
      if (static_cast<int>(i) == t.root) continue;
      allow(t.blocks[t.blocks[i].parent].a, t.blocks[i].b);
    }
    allow(t.f, t.d);
    result.solution_nice = true;
    SolutionSet solutions = ComputeSolutions(q, db);
    for (const auto& [s, t2] : solutions.pairs) {
      if (s == t2 || allowed.find({s, t2}) == allowed.end()) {
        result.solution_nice = false;
        break;
      }
    }
  }

  if (!result.variable_nice || !result.solution_nice) return result;

  // Condition 3: one of x, y, z occurs in the key of all facts except
  // u0, u1, u2. Candidates must come from the admissible sets.
  ElementSet everywhere;  // Elements present in every non-u key.
  {
    bool first = true;
    for (FactId fid = 0; fid < db.NumFacts(); ++fid) {
      if (fid == u0 || fid == u1 || fid == u2) continue;
      ElementSet key = KeyElementSet(db, fid);
      if (first) {
        everywhere = key;
        first = false;
      } else {
        ElementSet inter;
        std::set_intersection(everywhere.begin(), everywhere.end(),
                              key.begin(), key.end(),
                              std::back_inserter(inter));
        everywhere = std::move(inter);
      }
    }
  }
  ElementId alpha = 0;
  bool have_alpha = false;
  for (const ElementSet* side : {&xs, &ys, &zs}) {
    for (ElementId el : *side) {
      if (Contains(everywhere, el)) {
        alpha = el;
        have_alpha = true;
        break;
      }
    }
    if (have_alpha) break;
  }
  if (!have_alpha) return result;

  // Pick the witness triple, preferring alpha wherever admissible so that
  // a single shared element can play several roles (x, y, z need not be
  // distinct).
  auto pick = [&](const ElementSet& side) {
    return Contains(side, alpha) ? alpha : side.front();
  };
  result.x = pick(xs);
  result.y = pick(ys);
  result.z = pick(zs);

  // Condition 4: each of u0, u1, u2 has a private key element.
  auto private_element = [&](FactId ui, ElementId* out) {
    ElementSet key = KeyElementSet(db, ui);
    for (ElementId el : key) {
      bool found_elsewhere = false;
      for (FactId fid = 0; fid < db.NumFacts() && !found_elsewhere; ++fid) {
        if (fid == ui) continue;
        if (Contains(KeyElementSet(db, fid), el)) found_elsewhere = true;
      }
      if (!found_elsewhere) {
        *out = el;
        return true;
      }
    }
    return false;
  };
  if (private_element(u0, &result.u) && private_element(u1, &result.v) &&
      private_element(u2, &result.w)) {
    result.nice = true;
  }
  return result;
}

}  // namespace cqa
