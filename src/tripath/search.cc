#include "tripath/search.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/union_find.h"

namespace cqa {
namespace {

constexpr std::uint32_t kUnset = 0xffffffffu;

/// Facts over element-equivalence classes; unification merges classes.
struct SymbolicDb {
  UnionFind uf;
  std::vector<std::vector<std::uint32_t>> facts;
  std::vector<RelationId> relations;

  int AddFreshFact(RelationId rel, std::uint32_t arity) {
    std::vector<std::uint32_t> classes(arity);
    for (auto& c : classes) c = uf.Add();
    facts.push_back(std::move(classes));
    relations.push_back(rel);
    return static_cast<int>(facts.size()) - 1;
  }

  /// Most-general unification of `atom` onto fact `fact_index`, extending
  /// `binding` (VarId -> class). Always succeeds (atoms have no constants).
  void BindAtom(const QueryAtom& atom, int fact_index,
                std::vector<std::uint32_t>* binding) {
    const auto& fact = facts[fact_index];
    CQA_DCHECK(atom.vars.size() == fact.size());
    for (std::size_t i = 0; i < atom.vars.size(); ++i) {
      std::uint32_t& slot = (*binding)[atom.vars[i]];
      if (slot == kUnset) {
        slot = fact[i];
      } else {
        uf.Union(slot, fact[i]);
      }
    }
  }

  /// New fact instantiating `atom` under `binding`, with fresh classes for
  /// unbound variables.
  int InstantiateAtom(const QueryAtom& atom,
                      std::vector<std::uint32_t>* binding) {
    std::vector<std::uint32_t> classes;
    classes.reserve(atom.vars.size());
    for (VarId v : atom.vars) {
      std::uint32_t& slot = (*binding)[v];
      if (slot == kUnset) slot = uf.Add();
      classes.push_back(slot);
    }
    facts.push_back(std::move(classes));
    relations.push_back(atom.relation);
    return static_cast<int>(facts.size()) - 1;
  }

  /// Fresh fact key-equal to `fact_index` (its blockmate).
  int AddBlockmate(int fact_index, std::uint32_t key_len) {
    std::uint32_t arity =
        static_cast<std::uint32_t>(facts[fact_index].size());
    int mate = AddFreshFact(relations[fact_index], arity);
    for (std::uint32_t i = 0; i < key_len; ++i) {
      uf.Union(facts[mate][i], facts[fact_index][i]);
    }
    return mate;
  }

  /// Canonical key tuple of a fact (class representatives).
  std::vector<std::uint32_t> CanonicalKey(int fact_index,
                                          std::uint32_t key_len) const {
    std::vector<std::uint32_t> key(key_len);
    for (std::uint32_t i = 0; i < key_len; ++i) {
      key[i] = uf.Find(facts[fact_index][i]);
    }
    return key;
  }
};

struct SymbolicBlock {
  int parent = -1;
  int a = -1;  ///< Fact index, -1 if absent.
  int b = -1;
};

struct Candidate {
  SymbolicDb sdb;
  std::vector<SymbolicBlock> blocks;
  int root = -1, center = -1, leaf1 = -1, leaf2 = -1;
  int d = -1, e = -1, f = -1;
};

int NewBlock(Candidate* c, int parent, int a, int b) {
  c->blocks.push_back(SymbolicBlock{parent, a, b});
  return static_cast<int>(c->blocks.size()) - 1;
}

class Builder {
 public:
  explicit Builder(const ConjunctiveQuery& q) : q_(&q) {
    CQA_CHECK(q.NumAtoms() == 2);
  }

  /// Most-general center: q(d e) from one copy of the query, q(e f) from a
  /// second copy whose A-atom is unified onto e.
  Candidate BuildCenter() const {
    Candidate c;
    std::vector<std::uint32_t> binding1(q_->NumVars(), kUnset);
    c.d = c.sdb.InstantiateAtom(q_->atoms()[0], &binding1);
    c.e = c.sdb.InstantiateAtom(q_->atoms()[1], &binding1);
    std::vector<std::uint32_t> binding2(q_->NumVars(), kUnset);
    c.sdb.BindAtom(q_->atoms()[0], c.e, &binding2);
    c.f = c.sdb.InstantiateAtom(q_->atoms()[1], &binding2);
    return c;
  }

  /// Grows the tree around the center: t0 internal blocks up to the root,
  /// t1 / t2 internal blocks down each branch; `bits` gives one orientation
  /// bit per free edge.
  void BuildChains(Candidate* c, int t0, int t1, int t2,
                   std::uint32_t bits) const {
    std::uint32_t cursor = 0;
    auto next_bit = [&]() -> std::uint32_t { return (bits >> cursor++) & 1u; };

    int bc = c->sdb.AddBlockmate(c->e, KeyLenOf(c, c->e));
    c->center = NewBlock(c, -1, c->e, bc);

    int below = c->center;
    int cur_b = bc;
    for (int j = 0; j < t0; ++j) {
      int a_up = LinkUp(c, cur_b, next_bit());
      int b_up = c->sdb.AddBlockmate(a_up, KeyLenOf(c, a_up));
      int blk = NewBlock(c, -1, a_up, b_up);
      c->blocks[below].parent = blk;
      below = blk;
      cur_b = b_up;
    }
    int u0 = LinkUp(c, cur_b, next_bit());
    c->root = NewBlock(c, -1, u0, -1);
    c->blocks[below].parent = c->root;

    c->leaf1 = BuildBranch(c, c->d, t1, next_bit);
    c->leaf2 = BuildBranch(c, c->f, t2, next_bit);
  }

  /// Concretizes into real elements ("n<class>") and a Tripath value.
  Tripath Concretize(const Candidate& c) const {
    Database db(q_->schema());
    std::vector<FactId> fact_of(c.sdb.facts.size());
    for (std::size_t i = 0; i < c.sdb.facts.size(); ++i) {
      std::vector<ElementId> args;
      args.reserve(c.sdb.facts[i].size());
      for (std::uint32_t cls : c.sdb.facts[i]) {
        args.push_back(db.elements().Intern(
            "n" + std::to_string(c.sdb.uf.Find(cls))));
      }
      fact_of[i] = db.AddFact(c.sdb.relations[i], std::move(args));
    }
    Tripath t(std::move(db));
    t.blocks.reserve(c.blocks.size());
    for (const SymbolicBlock& sb : c.blocks) {
      TripathBlock tb;
      tb.parent = sb.parent;
      tb.a = sb.a >= 0 ? fact_of[sb.a] : TripathBlock::kNoFact;
      tb.b = sb.b >= 0 ? fact_of[sb.b] : TripathBlock::kNoFact;
      t.blocks.push_back(tb);
    }
    t.root = c.root;
    t.center = c.center;
    t.leaf1 = c.leaf1;
    t.leaf2 = c.leaf2;
    t.d = fact_of[c.d];
    t.e = fact_of[c.e];
    t.f = fact_of[c.f];
    return t;
  }

 private:
  std::uint32_t KeyLenOf(const Candidate* c, int fact_index) const {
    return q_->schema().Relation(c->sdb.relations[fact_index]).key_len;
  }

  /// Parent-side fact linked to `cur_b` (solution q{a_new, cur_b}):
  /// bit 0: q(a_new, cur_b); bit 1: q(cur_b, a_new).
  int LinkUp(Candidate* c, int cur_b, std::uint32_t bit) const {
    std::vector<std::uint32_t> binding(q_->NumVars(), kUnset);
    if (bit == 0) {
      c->sdb.BindAtom(q_->atoms()[1], cur_b, &binding);
      return c->sdb.InstantiateAtom(q_->atoms()[0], &binding);
    }
    c->sdb.BindAtom(q_->atoms()[0], cur_b, &binding);
    return c->sdb.InstantiateAtom(q_->atoms()[1], &binding);
  }

  /// Child-side fact linked to `cur_a` (solution q{cur_a, b_new}):
  /// bit 0: q(cur_a, b_new); bit 1: q(b_new, cur_a).
  int LinkDown(Candidate* c, int cur_a, std::uint32_t bit) const {
    std::vector<std::uint32_t> binding(q_->NumVars(), kUnset);
    if (bit == 0) {
      c->sdb.BindAtom(q_->atoms()[0], cur_a, &binding);
      return c->sdb.InstantiateAtom(q_->atoms()[1], &binding);
    }
    c->sdb.BindAtom(q_->atoms()[1], cur_a, &binding);
    return c->sdb.InstantiateAtom(q_->atoms()[0], &binding);
  }

  /// One branch below the center from its b-fact `top` (d or f); returns
  /// the leaf block index.
  template <typename NextBit>
  int BuildBranch(Candidate* c, int top, int length, NextBit&& next_bit) const {
    if (length == 0) {
      return NewBlock(c, c->center, -1, top);
    }
    int a1 = c->sdb.AddBlockmate(top, KeyLenOf(c, top));
    int prev = NewBlock(c, c->center, a1, top);
    int cur_a = a1;
    for (int j = 1; j < length; ++j) {
      int b_next = LinkDown(c, cur_a, next_bit());
      int a_next = c->sdb.AddBlockmate(b_next, KeyLenOf(c, b_next));
      prev = NewBlock(c, prev, a_next, b_next);
      cur_a = a_next;
    }
    int b_leaf = LinkDown(c, cur_a, next_bit());
    return NewBlock(c, prev, -1, b_leaf);
  }

  const ConjunctiveQuery* q_;
};

/// Enumerates merge sets over `num_classes` center classes: all partitions
/// reachable with at most `max_merges` union operations, deduplicated by
/// partition signature. With max_merges >= num_classes - 1 this is the full
/// partition lattice.
std::vector<std::vector<std::pair<int, int>>> EnumerateMergeSets(
    int num_classes, int max_merges) {
  auto signature = [num_classes](const std::vector<std::pair<int, int>>& ms) {
    UnionFind uf(num_classes);
    for (auto [i, j] : ms) uf.Union(i, j);
    std::vector<int> sig(num_classes);
    std::map<std::uint32_t, int> rename;
    for (int i = 0; i < num_classes; ++i) {
      std::uint32_t r = uf.Find(i);
      auto it = rename.emplace(r, static_cast<int>(rename.size())).first;
      sig[i] = it->second;
    }
    return sig;
  };

  std::vector<std::vector<std::pair<int, int>>> all;
  std::set<std::vector<int>> seen;
  std::vector<std::vector<std::pair<int, int>>> frontier = {{}};
  seen.insert(signature({}));
  all.push_back({});
  for (int level = 0; level < max_merges; ++level) {
    std::vector<std::vector<std::pair<int, int>>> next;
    for (const auto& ms : frontier) {
      for (int i = 0; i < num_classes; ++i) {
        for (int j = i + 1; j < num_classes; ++j) {
          auto ext = ms;
          ext.emplace_back(i, j);
          if (seen.insert(signature(ext)).second) {
            all.push_back(ext);
            next.push_back(std::move(ext));
          }
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return all;
}

}  // namespace

TripathSearchResult SearchTripaths(const ConjunctiveQuery& q,
                                   const TripathSearchLimits& limits,
                                   const TripathSearchGoals& goals) {
  TripathSearchResult result;
  if (q.NumAtoms() != 2) return result;

  Builder builder(q);
  Candidate center = builder.BuildCenter();

  // Distinct element classes of the center facts.
  std::vector<std::uint32_t> classes;
  for (int fi : {center.d, center.e, center.f}) {
    for (std::uint32_t cls : center.sdb.facts[fi]) {
      classes.push_back(center.sdb.uf.Find(cls));
    }
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  int num_classes = static_cast<int>(classes.size());
  int max_merges = num_classes <= limits.full_partition_threshold
                       ? num_classes - 1
                       : limits.max_merges;
  auto merge_sets = EnumerateMergeSets(num_classes, max_merges);

  // Shapes ordered by total size so minimal witnesses are found first.
  std::vector<std::tuple<int, int, int>> shapes;
  for (int t0 = 0; t0 <= limits.max_up; ++t0) {
    for (int t1 = 0; t1 <= limits.max_down; ++t1) {
      for (int t2 = 0; t2 <= limits.max_down; ++t2) {
        shapes.emplace_back(t0, t1, t2);
      }
    }
  }
  std::sort(shapes.begin(), shapes.end(), [](const auto& a, const auto& b) {
    auto sum = [](const auto& s) {
      return std::get<0>(s) + std::get<1>(s) + std::get<2>(s);
    };
    return sum(a) != sum(b) ? sum(a) < sum(b) : a < b;
  });

  auto done = [&]() {
    return (!goals.fork || result.fork.has_value()) &&
           (!goals.triangle || result.triangle.has_value()) &&
           (!goals.nice_fork || result.nice_fork.has_value());
  };

  std::uint32_t key_len_a =
      q.schema().Relation(q.atoms()[0].relation).key_len;
  std::uint32_t key_len_b =
      q.schema().Relation(q.atoms()[1].relation).key_len;

  for (const auto& merges : merge_sets) {
    // Apply the merges to a copy of the center and discard degenerate ones
    // (two center facts key-equal). Chains only merge further, so the
    // degeneracy cannot heal: skip all shapes for this merge set.
    Candidate merged = center;
    for (auto [i, j] : merges) {
      merged.sdb.uf.Union(classes[i], classes[j]);
    }
    auto kd = merged.sdb.CanonicalKey(merged.d, key_len_a);
    auto ke = merged.sdb.CanonicalKey(merged.e, key_len_b);
    auto kf = merged.sdb.CanonicalKey(merged.f, key_len_b);
    if (kd == ke || ke == kf || kd == kf) continue;

    for (const auto& [t0, t1, t2] : shapes) {
      int free_edges = t0 + 1 + t1 + t2;
      for (std::uint32_t bits = 0; bits < (1u << free_edges); ++bits) {
        if (result.candidates >= limits.max_candidates) {
          result.exhausted = false;
          return result;
        }
        ++result.candidates;
        Candidate c = merged;
        builder.BuildChains(&c, t0, t1, t2, bits);
        Tripath t = builder.Concretize(c);
        TripathValidation v = ValidateTripath(q, t);
        if (!v.valid) continue;
        if (v.triangle) {
          if (!result.triangle.has_value()) {
            result.triangle = FoundTripath{t, v};
          }
        } else {
          if (v.nice && !result.nice_fork.has_value()) {
            result.nice_fork = FoundTripath{t, v};
          }
          if (!result.fork.has_value()) {
            result.fork = FoundTripath{std::move(t), v};
          }
        }
        if (done()) return result;
      }
    }
  }
  return result;
}

TripathSearchResult SearchTripaths(const ConjunctiveQuery& q,
                                   const TripathSearchLimits& limits) {
  return SearchTripaths(q, limits, TripathSearchGoals{});
}

std::optional<FoundTripath> FindNiceForkTripath(
    const ConjunctiveQuery& q, const TripathSearchLimits& limits) {
  TripathSearchGoals goals;
  goals.fork = false;
  goals.triangle = false;
  goals.nice_fork = true;
  TripathSearchResult r = SearchTripaths(q, limits, goals);
  return r.nice_fork;
}

}  // namespace cqa
