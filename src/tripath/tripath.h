// Tripaths (Section 7): the semantic witness structures that pinpoint the
// complexity of certain(q) for 2way-determined queries.
//
// A tripath of q is a database whose blocks form a rooted tree: a chain
// from the root block down to the unique *branching block* (the center),
// then two chains to the two leaf blocks. The root holds a single fact
// a(B0) = u0; each leaf holds a single fact b(Bi) = ui; every other block
// holds two facts a(B), b(B). Whenever B = s(B') (parent), q{a(B) b(B')}
// holds. The branching fact e = a(center) forms directed solutions
// q(d e) and q(e f) with the b-facts d, f of its two children, and the
// tuple g(e) (defined below) must not be covered by the keys of u0, u1, u2.
//
// If q(f d) also holds, the center d e f is a *triangle* and the tripath a
// triangle-tripath; otherwise a fork-tripath. The dichotomy for
// 2way-determined queries (Sections 8-10):
//   no tripath            -> PTime via Cert_k,
//   fork-tripath          -> coNP-complete,
//   triangle-tripath only -> PTime via Cert_k OR NOT matching.

#ifndef CQA_TRIPATH_TRIPATH_H_
#define CQA_TRIPATH_TRIPATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/database.h"
#include "query/query.h"

namespace cqa {

/// One block of a tripath with its tree position and distinguished facts.
/// `a` is the fact forming solutions with children's b-facts; `b` the fact
/// forming a solution with the parent's a-fact. Root blocks have only `a`,
/// leaf blocks only `b`.
struct TripathBlock {
  int parent = -1;             ///< Index into Tripath::blocks, -1 for root.
  FactId a = 0xffffffffu;      ///< a(B), or kNoFact.
  FactId b = 0xffffffffu;      ///< b(B), or kNoFact.

  static constexpr FactId kNoFact = 0xffffffffu;
};

/// A concrete tripath: its facts (as a self-contained database) plus the
/// declared tree structure. Validity is checked by ValidateTripath; the
/// searcher never self-certifies.
struct Tripath {
  Database db;
  std::vector<TripathBlock> blocks;
  int root = -1;
  int center = -1;  ///< The branching block.
  int leaf1 = -1;   ///< Leaf ending the branch that starts with d.
  int leaf2 = -1;   ///< Leaf ending the branch that starts with f.
  FactId d = 0, e = 0, f = 0;  ///< Center facts: q(d e), q(e f).

  Tripath() : db(Schema()) {}
  explicit Tripath(Database database) : db(std::move(database)) {}

  FactId u0() const { return blocks[root].a; }
  FactId u1() const { return blocks[leaf1].b; }
  FactId u2() const { return blocks[leaf2].b; }

  /// Human-readable rendering of facts and tree structure.
  std::string ToString() const;
};

/// Key of a fact as a *set* of elements (key(a) underlined in the paper).
std::vector<ElementId> KeyElementSet(const Database& db, FactId fact);

/// The tuple ḡ(e) of Section 7, computed from the center facts d, e, f by
/// the five-case key-inclusion analysis; returned as the element set g(e).
/// Precondition: d, e, f are facts of db.
std::vector<ElementId> ComputeGOfE(const Database& db, FactId d, FactId e,
                                   FactId f);

}  // namespace cqa

#endif  // CQA_TRIPATH_TRIPATH_H_
