// Bounded search for tripaths (fork, triangle, and nice fork) of a
// 2way-determined query.
//
// Strategy: tripath candidates are built symbolically by unification.
//   1. The *center* d, e, f is instantiated most-generally from two copies
//      of the query: q(d e) and q(e f) share the fact e, so the B-atom of
//      the first copy is unified with the A-atom of the second.
//   2. Optional extra equalities ("merges") between center elements are
//      enumerated (bounded by max_merges, or exhaustively when the center
//      has few element classes); these are needed e.g. to expose the nice
//      fork-tripath of q2 (Figure 1c) and triangle centers that the most
//      general instantiation misses.
//   3. Chains are grown most-generally: up from the center to the root and
//      down both branches to the leaves, over all shapes (t0, t1, t2) and
//      all orientations of the undirected tree-edge solutions.
//   4. Every candidate is concretized into a Database and checked by the
//      independent validator; the search never self-certifies.
//
// Soundness: any returned tripath is valid (validator-checked).
// Completeness: relative to the bounds; `exhausted` reports whether the
// space was fully explored. The paper shows tripath existence is decidable
// with exponential-size witnesses; the default bounds decide all queries of
// the paper's catalog (q2, q5, q6, q7, ...). See DESIGN.md §3.

#ifndef CQA_TRIPATH_SEARCH_H_
#define CQA_TRIPATH_SEARCH_H_

#include <cstdint>
#include <optional>

#include "query/query.h"
#include "tripath/tripath.h"
#include "tripath/validate.h"

namespace cqa {

/// Bounds of the tripath search space.
struct TripathSearchLimits {
  int max_up = 2;        ///< Max internal blocks between center and root.
  int max_down = 2;      ///< Max internal blocks per branch.
  int max_merges = 2;    ///< Max extra element merges in the center.
  int full_partition_threshold = 5;  ///< Enumerate all center partitions
                                     ///< when it has at most this many
                                     ///< element classes.
  std::uint64_t max_candidates = 2000000;  ///< Hard cap on candidates.
};

/// A validated tripath together with its validation record (which carries
/// the niceness witnesses used by the Section 9 reduction).
struct FoundTripath {
  Tripath tripath;
  TripathValidation validation;
};

/// What the search is asked to find; it stops once all requested artifacts
/// are found or the bounded space is exhausted.
struct TripathSearchGoals {
  bool fork = true;
  bool triangle = true;
  bool nice_fork = false;
};

struct TripathSearchResult {
  std::optional<FoundTripath> fork;
  std::optional<FoundTripath> triangle;
  std::optional<FoundTripath> nice_fork;
  bool exhausted = true;     ///< Space fully explored within the limits.
  std::uint64_t candidates = 0;

  bool HasFork() const { return fork.has_value(); }
  bool HasTriangle() const { return triangle.has_value(); }
};

/// Runs the bounded search. Two-atom queries only; intended for
/// 2way-determined queries (centers cannot exist otherwise, but the search
/// is safe to run on any two-atom query).
TripathSearchResult SearchTripaths(const ConjunctiveQuery& q,
                                   const TripathSearchLimits& limits,
                                   const TripathSearchGoals& goals);

/// Convenience: searches with default goals (fork + triangle).
TripathSearchResult SearchTripaths(const ConjunctiveQuery& q,
                                   const TripathSearchLimits& limits = {});

/// Convenience: searches for a nice fork-tripath (needed by the SAT
/// reduction); widens merges/shapes relative to `limits` is the caller's
/// responsibility.
std::optional<FoundTripath> FindNiceForkTripath(
    const ConjunctiveQuery& q, const TripathSearchLimits& limits = {});

}  // namespace cqa

#endif  // CQA_TRIPATH_SEARCH_H_
