#include "tripath/tripath.h"

#include <algorithm>
#include <sstream>

#include "base/check.h"

namespace cqa {

std::string Tripath::ToString() const {
  std::ostringstream out;
  out << "tripath: root=" << root << " center=" << center << " leaves=("
      << leaf1 << ", " << leaf2 << ")\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const TripathBlock& blk = blocks[i];
    out << "  block " << i << " (parent " << blk.parent << "):";
    if (blk.a != TripathBlock::kNoFact) out << " a=" << db.FactToString(blk.a);
    if (blk.b != TripathBlock::kNoFact) out << " b=" << db.FactToString(blk.b);
    out << '\n';
  }
  out << "  center facts: d=" << db.FactToString(d)
      << " e=" << db.FactToString(e) << " f=" << db.FactToString(f) << '\n';
  return out.str();
}

std::vector<ElementId> KeyElementSet(const Database& db, FactId fact) {
  std::vector<ElementId> key = db.KeyOf(fact);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

namespace {

bool SetSubset(const std::vector<ElementId>& a,
               const std::vector<ElementId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

std::vector<ElementId> ComputeGOfE(const Database& db, FactId d, FactId e,
                                   FactId f) {
  std::vector<ElementId> kd = KeyElementSet(db, d);
  std::vector<ElementId> ke = KeyElementSet(db, e);
  std::vector<ElementId> kf = KeyElementSet(db, f);
  bool d_in_e = SetSubset(kd, ke);
  bool f_in_e = SetSubset(kf, ke);
  // Five-case definition of ḡ(e), checked in the paper's order.
  if (d_in_e && !f_in_e) return kd;
  if (!d_in_e && f_in_e) return kf;
  if (SetSubset(kd, kf) && f_in_e) return kd;  // key(d) ⊆ key(f) ⊆ key(e).
  if (SetSubset(kf, kd) && d_in_e) return kf;  // key(f) ⊆ key(d) ⊆ key(e).
  return ke;
}

}  // namespace cqa
