// Independent validation of tripaths and their normal forms (Section 7).
//
// The searcher proposes candidate structures; this validator re-checks
// every condition of the tripath definition against the concrete facts, so
// that searcher bugs cannot produce unsound classifications. It also checks
// the normal-form ("nice") conditions needed by the Section 9 reduction and
// extracts the witnesses x, y, z (variable-niceness) and u, v, w (private
// key elements of root/leaves) that the reduction substitutes.

#ifndef CQA_TRIPATH_VALIDATE_H_
#define CQA_TRIPATH_VALIDATE_H_

#include <string>

#include "query/query.h"
#include "tripath/tripath.h"

namespace cqa {

/// Outcome of validating a candidate tripath.
struct TripathValidation {
  bool valid = false;          ///< All tripath conditions hold.
  bool triangle = false;       ///< q(f d) holds (center is a triangle).
  bool variable_nice = false;
  bool solution_nice = false;
  bool nice = false;           ///< All four niceness conditions.
  std::string error;           ///< First failed condition, for diagnostics.

  // Witnesses, meaningful when nice:
  ElementId x = 0, y = 0, z = 0;  ///< From key(d), key(e), key(f).
  ElementId u = 0, v = 0, w = 0;  ///< Private key elements of u0, u1, u2.
};

/// Validates all structural and semantic tripath conditions; when valid,
/// additionally evaluates niceness and fills witnesses when nice.
TripathValidation ValidateTripath(const ConjunctiveQuery& q,
                                  const Tripath& t);

}  // namespace cqa

#endif  // CQA_TRIPATH_VALIDATE_H_
