// Pluggable certain-answer backends.
//
// A backend is one algorithm for answering certain(q): it is bound to a
// query once (Prepare) and then answers any number of prepared databases
// (Solve). The uniform interface makes the dichotomy's algorithms
// interchangeable and benchmarkable against each other, and lets the
// dispatcher (engine/solver.h) and the batch engine (engine/batch.h)
// treat them opaquely.
//
// Thread-safety contract: after Prepare returns, Solve must be const and
// safe to call concurrently from multiple threads on distinct
// PreparedDatabase instances. All built-in backends keep their per-call
// state on the stack.

#ifndef CQA_ENGINE_BACKEND_H_
#define CQA_ENGINE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/lru.h"
#include "data/prepared.h"
#include "data/repair.h"
#include "query/query.h"
#include "sat/cdcl.h"

namespace cqa {

/// Which algorithm actually answered.
enum class SolverAlgorithm {
  kTrivialScan,
  kCert2,
  kCertK,
  kCertKOrMatching,
  kExhaustive,
  kSat,
};

std::string ToString(SolverAlgorithm a);

/// Inverse of ToString(SolverAlgorithm); nullopt for unrecognized strings.
std::optional<SolverAlgorithm> SolverAlgorithmFromString(std::string_view s);

/// Knobs shared by all backends.
struct BackendOptions {
  /// Practical k for Cert_k-based backends. The theoretical bound of
  /// Proposition 8.2 (already 8 for key length 1) is exact but usually
  /// overkill; Cert_k is sound for every k.
  std::uint32_t practical_k = 4;
};

/// Verdict of one in-place component solve through a warm session.
struct ComponentVerdict {
  bool certain = false;
  /// When not certain and a witness was requested: one chosen fact per
  /// component block (parent-database ids), jointly a falsifying repair
  /// of the component. Empty otherwise.
  std::vector<FactId> witness;
};

/// A per-database warm-solver session: state a backend keeps alive across
/// repeated component solves of one mutating database (e.g. the sat
/// backend's per-component incremental CDCL solvers, which retain learned
/// clauses across mutations). Sessions solve components *in place* over
/// the parent database — no sub-database materialization.
///
/// Not internally synchronized: the engine serializes all calls on one
/// session instance (IncrementalSolver holds it under a
/// LockRank::kSolverInternal mutex, which nests under the verdict-shard
/// locks).
class ComponentSession {
 public:
  virtual ~ComponentSession() = default;

  /// Decides certainty of the component `members` (whole blocks of
  /// pdb.db()). Repeated calls across mutations of the same database are
  /// the point; results must equal the backend's Solve/Explain on the
  /// materialized component.
  virtual ComponentVerdict SolveComponent(const PreparedDatabase& pdb,
                                          const std::vector<FactId>& members,
                                          bool want_witness) = 0;

  /// Mirrors a Database::Compact (ApplyRemap protocol): every held FactId
  /// must be rewritten before the next SolveComponent.
  virtual void ApplyRemap(const FactIdRemap& remap) = 0;

  /// Aggregated solver counters over the session's lifetime (including
  /// solvers that have since been evicted from its internal cache).
  virtual CdclStats Stats() const = 0;

  /// Counters of the session's warm-solver cache.
  virtual CacheCounters CacheStats() const = 0;
};

/// One certain-answer algorithm behind a uniform prepare/solve interface.
class CertainBackend {
 public:
  virtual ~CertainBackend() = default;

  /// Registry name, e.g. "cert2".
  virtual std::string_view name() const = 0;

  /// Provenance tag reported in SolverAnswer.
  virtual SolverAlgorithm algorithm() const = 0;

  /// Binds the backend to a query. Must be called exactly once, before any
  /// Solve. Returns false if the backend cannot answer this query (e.g.
  /// the trivial scan on a query that is not one-atom-equivalent).
  virtual bool Prepare(const ConjunctiveQuery& query) = 0;

  /// Decides certain(query) on a prepared database. Exactness depends on
  /// the backend and the query's dichotomy class; every built-in backend
  /// is at least sound (a true answer implies certainty).
  virtual bool Solve(const PreparedDatabase& pdb) const = 0;

  /// True if Explain is implemented. For such backends Explain is an
  /// exact replacement for Solve (certain iff no witness), so callers
  /// wanting a witness ask Explain once instead of Solve + Explain.
  virtual bool CanExplain() const { return false; }

  /// Optional witness hook: a repair of pdb.db() that falsifies the query,
  /// i.e. the evidence behind a Solve(pdb) == false answer. Backends that
  /// cannot exhibit one (the Cert_k family decides via a fixpoint, not a
  /// repair) return nullopt; so does every backend when the answer is
  /// certain. The returned Repair points into pdb.db() and is valid while
  /// that database lives. Same thread-safety contract as Solve.
  virtual std::optional<Repair> Explain(const PreparedDatabase& pdb) const {
    (void)pdb;
    return std::nullopt;
  }

  /// Optional warm-session hook: a backend that can amortize state across
  /// repeated component solves returns a fresh session (cache caps bound
  /// its per-component solver pool; solver_options tunes each solver's
  /// clause-DB reduction cadence); backends without one return nullptr
  /// and the engine falls back to materialized Solve/Explain calls.
  virtual std::unique_ptr<ComponentSession> NewSession(
      const CacheOptions& cache_options,
      const CdclOptions& solver_options) const {
    (void)cache_options;
    (void)solver_options;
    return nullptr;
  }
};

}  // namespace cqa

#endif  // CQA_ENGINE_BACKEND_H_
