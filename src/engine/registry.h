// Backend registry: name -> factory for certain-answer backends.
//
// The global registry comes pre-loaded with the six built-in backends:
//   trivial         per-block pattern scan (exact on trivial queries)
//   cert2           Cert_2 greedy fixpoint (Theorem 6.1 classes)
//   certk           Cert_k at the configured practical k (Theorem 8.1)
//   certk+matching  Cert_k OR NOT matching (Theorem 10.5)
//   exhaustive      backtracking falsifier search (exact, exponential)
//   sat             falsifier-existence CNF encoding solved by DPLL
//                   (exact, exponential; cross-checks `exhaustive`)
// Custom backends (approximate solvers, remote engines, ...) can be
// registered under new names without touching the dispatcher.

#ifndef CQA_ENGINE_REGISTRY_H_
#define CQA_ENGINE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/backend.h"

namespace cqa {

class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<CertainBackend>(const BackendOptions&)>;

  /// Registers a factory; overwrites any previous binding of `name`.
  void Register(std::string_view name, Factory factory);

  /// Instantiates a backend, or nullptr if the name is unknown.
  std::unique_ptr<CertainBackend> Create(
      std::string_view name, const BackendOptions& options = {}) const;

  bool Has(std::string_view name) const;

  /// Registered names in lexicographic order.
  std::vector<std::string> Names() const;

  /// The process-wide registry, pre-loaded with the built-in backends.
  static BackendRegistry& Global();

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

/// Registers the six built-in backends into `registry` (idempotent).
void RegisterBuiltinBackends(BackendRegistry* registry);

}  // namespace cqa

#endif  // CQA_ENGINE_REGISTRY_H_
