#include "engine/registry.h"

namespace cqa {

void BackendRegistry::Register(std::string_view name, Factory factory) {
  factories_[std::string(name)] = std::move(factory);
}

std::unique_ptr<CertainBackend> BackendRegistry::Create(
    std::string_view name, const BackendOptions& options) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(options);
}

bool BackendRegistry::Has(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> BackendRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

BackendRegistry& BackendRegistry::Global() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    RegisterBuiltinBackends(r);
    return r;
  }();
  return *registry;
}

std::string ToString(SolverAlgorithm a) {
  switch (a) {
    case SolverAlgorithm::kTrivialScan: return "trivial per-block scan";
    case SolverAlgorithm::kCert2: return "Cert_2 greedy fixpoint";
    case SolverAlgorithm::kCertK: return "Cert_k greedy fixpoint";
    case SolverAlgorithm::kCertKOrMatching:
      return "Cert_k OR NOT matching";
    case SolverAlgorithm::kExhaustive: return "exhaustive falsifier search";
    case SolverAlgorithm::kSat: return "falsifier CNF + DPLL";
  }
  return "?";
}

std::optional<SolverAlgorithm> SolverAlgorithmFromString(std::string_view s) {
  static constexpr SolverAlgorithm kAll[] = {
      SolverAlgorithm::kTrivialScan,     SolverAlgorithm::kCert2,
      SolverAlgorithm::kCertK,           SolverAlgorithm::kCertKOrMatching,
      SolverAlgorithm::kExhaustive,      SolverAlgorithm::kSat,
  };
  for (SolverAlgorithm a : kAll) {
    if (ToString(a) == s) return a;
  }
  return std::nullopt;
}

}  // namespace cqa
