// The six built-in certain-answer backends and the global registry.

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "algo/trivial.h"
#include "base/check.h"
#include "engine/registry.h"
#include "query/hom.h"
#include "reduction/sat_reduction.h"
#include "sat/cdcl.h"

namespace cqa {
namespace {

/// Common Prepare bookkeeping: all built-in backends answer two-atom
/// queries bound once at prepare time.
class TwoAtomBackend : public CertainBackend {
 public:
  bool Prepare(const ConjunctiveQuery& query) override {
    CQA_CHECK_MSG(!query_.has_value(), "Prepare called twice");
    if (query.NumAtoms() != 2) return false;
    query_.emplace(query);
    return PrepareImpl(*query_);
  }

 protected:
  virtual bool PrepareImpl(const ConjunctiveQuery&) { return true; }

  const ConjunctiveQuery& query() const {
    CQA_CHECK_MSG(query_.has_value(), "Solve before Prepare");
    return *query_;
  }

 private:
  std::optional<ConjunctiveQuery> query_;
};

class TrivialScanBackend : public TwoAtomBackend {
 public:
  std::string_view name() const override { return "trivial"; }
  SolverAlgorithm algorithm() const override {
    return SolverAlgorithm::kTrivialScan;
  }
  bool Solve(const PreparedDatabase& pdb) const override {
    return TrivialCertain(query(), reason_, pdb);
  }
  bool CanExplain() const override { return true; }
  std::optional<Repair> Explain(const PreparedDatabase& pdb) const override {
    return TrivialFalsifyingRepair(query(), reason_, pdb);
  }

 protected:
  bool PrepareImpl(const ConjunctiveQuery& q) override {
    reason_ = ClassifyTrivial(q);
    return reason_ != TrivialReason::kNotTrivial;
  }

 private:
  TrivialReason reason_ = TrivialReason::kNotTrivial;
};

class Cert2Backend : public TwoAtomBackend {
 public:
  std::string_view name() const override { return "cert2"; }
  SolverAlgorithm algorithm() const override { return SolverAlgorithm::kCert2; }
  bool Solve(const PreparedDatabase& pdb) const override {
    return CertK(query(), pdb, 2);
  }
};

class CertKBackend : public TwoAtomBackend {
 public:
  explicit CertKBackend(std::uint32_t k) : k_(k) {}
  std::string_view name() const override { return "certk"; }
  SolverAlgorithm algorithm() const override { return SolverAlgorithm::kCertK; }
  bool Solve(const PreparedDatabase& pdb) const override {
    return CertK(query(), pdb, k_);
  }

 private:
  std::uint32_t k_;
};

class CertKOrMatchingBackend : public TwoAtomBackend {
 public:
  explicit CertKOrMatchingBackend(std::uint32_t k) : k_(k) {}
  std::string_view name() const override { return "certk+matching"; }
  SolverAlgorithm algorithm() const override {
    return SolverAlgorithm::kCertKOrMatching;
  }
  bool Solve(const PreparedDatabase& pdb) const override {
    return CombinedCertain(query(), pdb, k_);
  }

 private:
  std::uint32_t k_;
};

class ExhaustiveBackend : public TwoAtomBackend {
 public:
  std::string_view name() const override { return "exhaustive"; }
  SolverAlgorithm algorithm() const override {
    return SolverAlgorithm::kExhaustive;
  }
  bool Solve(const PreparedDatabase& pdb) const override {
    return ExhaustiveCertain(query(), pdb);
  }
  bool CanExplain() const override { return true; }
  std::optional<Repair> Explain(const PreparedDatabase& pdb) const override {
    return FindFalsifyingRepair(query(), pdb);
  }
};

/// Warm per-component session of the sat backend: an LRU pool of
/// IncrementalFalsifier instances, one per component lineage, keyed by a
/// content *anchor* — the (relation, key) hash of the smallest member's
/// block. Element ids are immutable and block keys survive compaction, so
/// the anchor is stable where fact ids are not; and because every
/// falsifier re-diffs against the exact current membership on each solve,
/// a wrong pairing (component merged, split, or anchor hash collision)
/// costs only warmth, never correctness.
class SatSession : public ComponentSession {
 public:
  SatSession(ConjunctiveQuery query, const CacheOptions& cache_options,
             const CdclOptions& solver_options)
      : query_(std::move(query)),
        cache_(cache_options),
        solver_options_(solver_options) {}

  ComponentVerdict SolveComponent(const PreparedDatabase& pdb,
                                  const std::vector<FactId>& members,
                                  bool want_witness) override {
    const Database& db = pdb.db();
    FactId min_f = *std::min_element(members.begin(), members.end());
    std::size_t anchor =
        HashRelationKey(db.fact(min_f).relation, db.KeyViewOf(min_f));

    std::shared_ptr<IncrementalFalsifier> falsifier;
    if (std::shared_ptr<IncrementalFalsifier>* hit = cache_.Find(anchor)) {
      falsifier = *hit;
    } else {
      falsifier = std::make_shared<IncrementalFalsifier>(query_, solver_options_);
    }
    IncrementalFalsifier::Verdict v =
        falsifier->SolveComponent(pdb, members, want_witness);
    // (Re-)insert with a fresh byte estimate; salvage the counters of any
    // solver the insertion evicts so session stats stay cumulative.
    cache_.InsertWithEvictions(
        anchor, falsifier, falsifier->MemoryEstimateBytes(),
        [this](const std::size_t&,
               const std::shared_ptr<IncrementalFalsifier>& evicted) {
          retired_ += evicted->stats();
        });
    return ComponentVerdict{v.certain, std::move(v.witness)};
  }

  void ApplyRemap(const FactIdRemap& remap) override {
    // Anchors are content hashes — no rekeying, only the held fact ids.
    cache_.ForEach([&](const std::size_t&,
                       const std::shared_ptr<IncrementalFalsifier>& f) {
      f->ApplyRemap(remap);
    });
  }

  CdclStats Stats() const override {
    CdclStats total = retired_;
    cache_.ForEach([&](const std::size_t&,
                       const std::shared_ptr<IncrementalFalsifier>& f) {
      total += f->stats();
    });
    return total;
  }

  CacheCounters CacheStats() const override { return cache_.Counters(); }

 private:
  ConjunctiveQuery query_;
  LruCache<std::size_t, std::shared_ptr<IncrementalFalsifier>> cache_;
  CdclOptions solver_options_;
  CdclStats retired_;  ///< Counters of evicted falsifiers.
};

class SatBackend : public TwoAtomBackend {
 public:
  std::string_view name() const override { return "sat"; }
  SolverAlgorithm algorithm() const override { return SolverAlgorithm::kSat; }
  bool Solve(const PreparedDatabase& pdb) const override {
    SolutionSet solutions = ComputeSolutions(query(), pdb);
    CnfFormula falsifier = EncodeFalsifierCnf(solutions, pdb);
    return !SolveCdcl(falsifier).satisfiable;
  }
  bool CanExplain() const override { return true; }
  std::optional<Repair> Explain(const PreparedDatabase& pdb) const override {
    SolutionSet solutions = ComputeSolutions(query(), pdb);
    CnfFormula falsifier = EncodeFalsifierCnf(solutions, pdb);
    SatResult sat = SolveCdcl(falsifier);
    if (!sat.satisfiable) return std::nullopt;
    // CNF variables are fact ids; the at-least-one clauses guarantee a
    // true fact in every block, and restricting the satisfying assignment
    // to one true fact per block stays solution-free (see
    // EncodeFalsifierCnf), so any such restriction is a falsifying repair.
    std::vector<std::uint32_t> choice(pdb.blocks().size(), 0);
    for (BlockId b = 0; b < pdb.blocks().size(); ++b) {
      const Block& block = pdb.blocks()[b];
      bool found = false;
      for (std::uint32_t idx = 0; idx < block.facts.size(); ++idx) {
        if (sat.assignment[block.facts[idx]]) {
          choice[b] = idx;
          found = true;
          break;
        }
      }
      CQA_CHECK_MSG(found, "satisfying assignment misses a block");
    }
    return Repair(&pdb.db(), std::move(choice));
  }
  std::unique_ptr<ComponentSession> NewSession(
      const CacheOptions& cache_options,
      const CdclOptions& solver_options) const override {
    return std::make_unique<SatSession>(query(), cache_options,
                                        solver_options);
  }
};

}  // namespace

void RegisterBuiltinBackends(BackendRegistry* registry) {
  registry->Register("trivial", [](const BackendOptions&) {
    return std::make_unique<TrivialScanBackend>();
  });
  registry->Register("cert2", [](const BackendOptions&) {
    return std::make_unique<Cert2Backend>();
  });
  registry->Register("certk", [](const BackendOptions& options) {
    return std::make_unique<CertKBackend>(options.practical_k);
  });
  registry->Register("certk+matching", [](const BackendOptions& options) {
    return std::make_unique<CertKOrMatchingBackend>(options.practical_k);
  });
  registry->Register("exhaustive", [](const BackendOptions&) {
    return std::make_unique<ExhaustiveBackend>();
  });
  registry->Register("sat", [](const BackendOptions&) {
    return std::make_unique<SatBackend>();
  });
}

}  // namespace cqa
