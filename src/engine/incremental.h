// IncrementalSolver: certain-answer solving with a per-component verdict
// cache, for databases that change between solves.
//
// Proposition 10.6(2) makes certain(q) decompose over the q-connected
// components: D |= certain(q) iff some component does. This solver keeps
// the component partition alive across mutations (algo/
// dynamic_components.h) and caches each component's verdict — and, for
// Explain-capable backends, its falsifying-repair witness — keyed by the
// component's content fingerprint. A delta dirties only the components
// whose fact content changed; a solve after the delta re-runs the backend
// on exactly those and merges cached verdicts for the rest:
//
//   certain(D)  = OR over components of certain(C_i)
//   witness(D)  = union of the per-component falsifying repairs
//                 (every block lives in exactly one component).
//
// Cached witnesses are stored as fact tuples (content, not ids), so they
// survive any sequence of mutations that leaves their component's content
// intact; components whose content changed are re-solved, recomputing
// their witness. The cache is unbounded — an eviction policy for
// long-lived high-churn databases is an open roadmap item.
//
// Not thread-safe: Solve mutates the cache. cqa::Service serializes
// access per registered database.

#ifndef CQA_ENGINE_INCREMENTAL_H_
#define CQA_ENGINE_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/report.h"
#include "data/prepared.h"
#include "engine/solver.h"

namespace cqa {

class IncrementalSolver {
 public:
  /// Builds the component partition of the current database state.
  /// `solver` (whose query must have exactly two atoms) and `pdb` must
  /// outlive this object, and `pdb` must stay in sync with the database
  /// through OnInsert/OnRemove.
  IncrementalSolver(const CertainSolver& solver, const PreparedDatabase& pdb);

  /// Absorbs a fact insertion/removal; same call contract as
  /// DynamicComponents::OnInsert/OnRemove.
  void OnInsert(FactId f) { components_.OnInsert(f); }
  void OnRemove(FactId f) { components_.OnRemove(f); }

  /// Answers certain(q) on the current state, re-solving only components
  /// absent from the cache. The report's incremental/components_* fields
  /// record the reuse; parse/classify/prepare timings are the caller's.
  SolveReport Solve(bool want_witness);

  /// Read-only fast path: answers from the cache alone, mutating
  /// nothing; nullopt as soon as any component's verdict is missing (or
  /// lacks a witness the caller needs). Safe to call concurrently with
  /// other const reads — cqa::Service runs steady-state solves of
  /// unchanged databases through this under its shared lock.
  std::optional<SolveReport> SolveCached(bool want_witness) const;

  const DynamicComponents& components() const { return components_; }
  std::size_t CachedVerdicts() const { return cache_.size(); }

 private:
  struct CachedVerdict {
    bool certain = false;
    bool has_witness = false;
    /// The component's falsifying repair as fact tuples (original
    /// element ids): one chosen fact per component block.
    std::vector<Fact> witness_facts;
  };

  /// Runs the backend on one component's sub-database.
  CachedVerdict SolveComponent(const std::vector<FactId>& members,
                               bool want_witness) const;

  /// Shared body of Solve/SolveCached. When `cache_only`, performs no
  /// mutation and returns nullopt on the first unusable cache entry
  /// (which is what makes the const_cast in SolveCached sound).
  std::optional<SolveReport> SolveImpl(bool want_witness, bool cache_only);

  const CertainSolver* solver_;
  const PreparedDatabase* pdb_;
  DynamicComponents components_;
  std::unordered_map<ComponentFingerprint, CachedVerdict,
                     ComponentFingerprintHash>
      cache_;
};

}  // namespace cqa

#endif  // CQA_ENGINE_INCREMENTAL_H_
