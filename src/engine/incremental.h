// IncrementalSolver: certain-answer solving with a bounded, sharded
// per-component verdict cache, for databases that change between solves.
//
// Proposition 10.6(2) makes certain(q) decompose over the q-connected
// components: D |= certain(q) iff some component does. This solver keeps
// the component partition alive across mutations (algo/
// dynamic_components.h) and caches each component's verdict — and, for
// Explain-capable backends, its falsifying-repair witness — keyed by the
// component's content fingerprint. A delta dirties only the components
// whose fact content changed; a solve after the delta re-runs the backend
// on exactly those and merges cached verdicts for the rest:
//
//   certain(D)  = OR over components of certain(C_i)
//   witness(D)  = union of the per-component falsifying repairs
//                 (every block lives in exactly one component).
//
// Cached witnesses are stored as fact tuples (content, not ids), so they
// survive any sequence of mutations — and any compaction — that leaves
// their component's content intact; components whose content changed are
// re-solved, recomputing their witness.
//
// Memory: the verdict cache is bounded (CacheOptions{max_entries,
// max_bytes}, split evenly over the shards) and evicts least-recently-used
// components, so a long-lived high-churn database sheds stale fingerprints
// instead of accumulating them. Evictions performed by a solve are counted
// in its SolveReport::cache_evictions.
//
// Concurrency: Solve is const and safe to call from any number of threads
// at once. The cache is sharded by fingerprint; each shard carries its own
// mutex, held across a backend run so concurrent solvers of the *same*
// component serialize (the loser finds a cache hit) while components on
// different shards fill in parallel — this is the component-sharded
// locking cqa::Service relies on to run cache-filling solves under its
// shared (not exclusive) per-database lock.
//
// Mutations are *deferred*: OnInsert/OnRemove only append a delta to a
// per-solver queue (O(1), so the caller's exclusive critical section stays
// short — this is what lets disjoint-database mutations overlap with
// everything but the index patch itself). The queue drains in mutation
// order under the components lock (rank kComponents, exclusive) at the
// next Solve/audit — or via FlushPending, which compaction MUST call
// before Database::Compact (queued deltas hold pre-remap ids and dead
// facts whose tuples a flush still reads). Solve then holds the
// components lock shared across its cache passes, so concurrent solves
// read one settled partition. The caller's locking contract: enqueues
// require exclusive structure access (Service's per-database writer
// lock); Solve/audit/flush run under shared structure access and
// serialize among themselves on the components lock.

#ifndef CQA_ENGINE_INCREMENTAL_H_
#define CQA_ENGINE_INCREMENTAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/report.h"
#include "base/lock_rank.h"
#include "base/lru.h"
#include "data/prepared.h"
#include "engine/solver.h"
#include "store/snapshot.h"

namespace cqa {

class IncrementalSolver {
 public:
  /// Warm-session knobs: whether to ask the backend for a per-component
  /// warm-solver session (backends without one are unaffected) and the
  /// caps of its solver pool.
  struct SessionOptions {
    bool enabled = true;
    CacheOptions cache{/*max_entries=*/64, /*max_bytes=*/0};
    /// Per-solver CDCL knobs (clause-DB reduction cadence, restarts).
    CdclOptions solver;
  };

  /// Builds the component partition of the current database state.
  /// `solver` (whose query must have exactly two atoms) and `pdb` must
  /// outlive this object, and `pdb` must stay in sync with the database
  /// through OnInsert/OnRemove/ApplyRemap. `cache_options` caps the
  /// verdict cache (0 = unbounded); the caps are split over kNumShards
  /// shards, so the effective entry bound rounds up to a multiple of the
  /// shard count.
  IncrementalSolver(const CertainSolver& solver, const PreparedDatabase& pdb,
                    CacheOptions cache_options = {});
  IncrementalSolver(const CertainSolver& solver, const PreparedDatabase& pdb,
                    CacheOptions cache_options, SessionOptions session_options);

  /// Queues a fact insertion/removal delta (O(1)); the partition absorbs
  /// it at the next Solve/audit/FlushPending, in call order. Call after
  /// the database and PreparedDatabase have been updated, with exclusive
  /// structure access (no concurrent Solve/flush).
  void OnInsert(FactId f) { Enqueue(f, /*insert=*/true); }
  void OnRemove(FactId f) { Enqueue(f, /*insert=*/false); }

  /// Drains the queued deltas into the component partition now. Called
  /// implicitly by Solve and AuditInto; compaction must call it
  /// explicitly *before* Database::Compact (queued deltas hold pre-remap
  /// ids). Safe under shared structure access.
  void FlushPending() const;

  /// Absorbs a Database::Compact (call once, right after, with the remap
  /// it returned, after PreparedDatabase::ApplyRemap). Requires
  /// FlushPending to have run before the Compact. The verdict cache is
  /// content-addressed and survives untouched; the warm session's
  /// solvers rewrite their held fact ids. Requires exclusive access.
  void ApplyRemap(const FactIdRemap& remap);

  /// Answers certain(q) on the current state, re-solving only components
  /// absent from the cache. The report's incremental/components_*/
  /// cache_evictions fields record the reuse; parse/classify/prepare
  /// timings are the caller's. Thread-safe against concurrent Solve calls
  /// (but not against OnInsert/OnRemove/ApplyRemap — see above).
  SolveReport Solve(bool want_witness) const;

  /// The settled partition (queued deltas are flushed first). Debug/test
  /// accessor: the reference is only stable while the caller excludes
  /// mutators.
  const DynamicComponents& components() const {
    FlushPending();
    return components_;
  }

  /// Counters of the verdict cache (entries, bytes, hits, misses,
  /// evictions), summed over the shards.
  CacheCounters VerdictCacheCounters() const;

  /// True if the backend provided a warm per-component session.
  bool has_session() const { return session_ != nullptr; }

  /// Cumulative solver counters of the warm session (all-zero without
  /// one). Safe alongside concurrent solves.
  CdclStats SatSessionStats() const;

  /// Counters of the warm session's solver pool (all-zero without one).
  CacheCounters SessionCacheCounters() const;

  /// Exports every cached verdict for snapshot persistence. Fingerprints
  /// hash element *names*, so an exported verdict is valid in any future
  /// process whose component reaches the same content. Takes each shard
  /// lock in turn; safe alongside concurrent solves.
  std::vector<store::PersistedVerdict> ExportVerdicts() const;

  /// Seeds the cache from persisted verdicts (recovery). Entries beyond
  /// the cache caps evict LRU as usual; the import is an optimization, so
  /// losing some to the cap is fine.
  void ImportVerdicts(const std::vector<store::PersistedVerdict>& verdicts);

  /// Deep-audits this solver's structures into `report` (data/audit.h):
  /// the component partition against a fresh repartition, and every
  /// verdict-cache shard's LRU invariants (taken one shard lock at a
  /// time). Requires the caller to exclude mutators, like Solve.
  void AuditInto(AuditReport& report) const;

  static constexpr std::size_t kNumShards = 16;

 private:
  struct CachedVerdict {
    bool certain = false;
    bool has_witness = false;
    /// The component's falsifying repair as fact tuples (original
    /// element ids): one chosen fact per component block.
    std::vector<Fact> witness_facts;
  };

  /// One cache shard: entries whose fingerprint hashes here, plus the
  /// lock that serializes both cache access and same-shard backend runs.
  /// Default-constructed (mutexes pin it in place); the constructor
  /// re-seats each shard's cache with the per-shard slice of the caps.
  /// Verdicts are shared_ptr-held so a cache hit is a pointer copy (not
  /// a deep copy of witness tuples) and stays valid after a concurrent
  /// solve evicts the entry.
  struct Shard {
    // Rank kVerdictShard: taken under the Service's per-database
    // structure lock (kDbEntry), never nested with another shard's lock
    // or the solver-map lock.
    mutable RankedMutex<LockRank::kVerdictShard> mu;
    LruCache<ComponentFingerprint, std::shared_ptr<const CachedVerdict>,
             ComponentFingerprintHash>
        cache;
  };

  /// One queued OnInsert/OnRemove, applied at the next flush.
  struct PendingDelta {
    FactId id;
    bool insert;
  };

  void Enqueue(FactId f, bool insert);

  /// Applies the queued deltas in order. Caller holds components_mu_
  /// exclusive.
  void FlushPendingLocked() const;

  Shard& ShardFor(const ComponentFingerprint& fp) const;

  /// Rough resident size of a cached verdict, for the byte cap.
  static std::size_t VerdictBytes(const CachedVerdict& verdict);

  /// Runs the backend on one component's sub-database.
  CachedVerdict SolveComponent(const std::vector<FactId>& members,
                               bool want_witness) const;

  const CertainSolver* solver_;
  const PreparedDatabase* pdb_;

  /// Component-partition lock (rank kComponents, between the structure
  /// lock and the verdict shards): Solve holds it shared across its
  /// cache passes; flushing the delta queue, ApplyRemap, and the
  /// partition audit take it exclusive. Enqueues don't touch it — the
  /// caller's exclusive structure lock already excludes every holder.
  mutable RankedSharedMutex<LockRank::kComponents> components_mu_;
  /// Deltas queued since the last flush, in mutation order. Written by
  /// Enqueue (exclusive structure access), drained by FlushPendingLocked
  /// (components_mu_ exclusive, shared structure access) — the structure
  /// lock makes those two mutually exclusive. pending_count_ lets a
  /// solve skip the exclusive acquisition when the queue is empty.
  mutable std::vector<PendingDelta> pending_;
  mutable std::atomic<std::size_t> pending_count_{0};
  mutable DynamicComponents components_;
  mutable std::array<Shard, kNumShards> shards_;

  /// Warm per-component session, when the backend offers one. All access
  /// goes through session_mu_: rank kSolverInternal (0), the innermost
  /// rank, taken while a verdict-shard lock (rank 1) is held across a
  /// backend run. Serializing the session across shards trades a little
  /// cross-component parallelism for learned-clause reuse.
  mutable RankedMutex<LockRank::kSolverInternal> session_mu_;
  std::unique_ptr<ComponentSession> session_;
};

}  // namespace cqa

#endif  // CQA_ENGINE_INCREMENTAL_H_
