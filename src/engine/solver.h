// Top-level certain-answer solver: classifies the query once, then
// dispatches every database to the backend the dichotomy prescribes.
//
//   trivial            -> "trivial" (per-block pattern scan; exact, linear)
//   Theorem 6.1 class  -> "cert2" (exact)
//   no-tripath class   -> "certk" (exact for k at the Proposition 8.2
//                         bound; the configured practical k is used, which
//                         is exact on all workloads we generate and always
//                         sound)
//   triangle-only      -> "certk+matching" (Theorem 10.5)
//   coNP-hard classes  -> "exhaustive" (exact, exponential)
//   sjf classes        -> "cert2" for PTime/FO, "exhaustive" for coNP.
//
// Backends are looked up in the global BackendRegistry, so alternative
// implementations (e.g. the "sat" backend) can be forced via
// SolverOptions::forced_backend or registered under new names without
// touching this dispatcher.

#ifndef CQA_ENGINE_SOLVER_H_
#define CQA_ENGINE_SOLVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/status.h"
#include "classify/classifier.h"
#include "data/database.h"
#include "data/prepared.h"
#include "engine/backend.h"
#include "query/query.h"

namespace cqa {

/// Options for the solver.
struct SolverOptions {
  /// Practical k for Cert_k in the no-tripath class. The theoretical bound
  /// of Proposition 8.2 (already 8 for key length 1) is exact but usually
  /// overkill; Cert_k is sound for every k.
  std::uint32_t practical_k = 4;
  TripathSearchLimits tripath_limits;
  /// When nonempty, bypass the dichotomy dispatch and answer every
  /// database with this registry backend (e.g. "sat", "exhaustive").
  std::string forced_backend;
};

/// Answer with provenance.
struct SolverAnswer {
  bool certain = false;
  SolverAlgorithm algorithm = SolverAlgorithm::kExhaustive;
};

/// Classify-once, solve-many certain-answer engine for two-atom queries.
class CertainSolver {
 public:
  /// Exception-free construction: classifies the query and binds its
  /// backend. Errors: kUnknownBackend when `options.forced_backend` names
  /// no registered backend, kCapabilityMismatch when the chosen backend
  /// cannot answer `query`.
  [[nodiscard]] static StatusOr<CertainSolver> Create(ConjunctiveQuery query,
                                        SolverOptions options = {});

  /// Decides whether `query()` is certain for db.
  SolverAnswer Solve(const Database& db) const;

  /// As above on an already-prepared database; thread-safe, so batch
  /// callers may share one solver across worker threads.
  SolverAnswer Solve(const PreparedDatabase& pdb) const;

  const Classification& classification() const { return classification_; }
  const ConjunctiveQuery& query() const { return query_; }
  const CertainBackend& backend() const { return *backend_; }

 private:
  CertainSolver(ConjunctiveQuery query, SolverOptions options,
                Classification classification,
                std::unique_ptr<CertainBackend> backend);

  ConjunctiveQuery query_;
  SolverOptions options_;
  Classification classification_;
  std::unique_ptr<CertainBackend> backend_;
};

}  // namespace cqa

#endif  // CQA_ENGINE_SOLVER_H_
