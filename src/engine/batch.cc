#include "engine/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_set>

#include "base/check.h"
#include "data/prepared.h"
#include "query/eval.h"

namespace cqa {
namespace {

/// Runs `worker(job)` for jobs 0..num_jobs-1 on up to `num_threads`
/// threads (work stealing via a shared atomic cursor; workers write to
/// disjoint slots, so no further synchronization is needed). Returns the
/// number of threads actually used.
template <typename Worker>
std::uint32_t RunJobs(std::size_t num_jobs, std::uint32_t num_threads,
                      const Worker& worker) {
  std::atomic<std::size_t> next{0};
  auto loop = [&]() {
    for (;;) {
      std::size_t job = next.fetch_add(1, std::memory_order_relaxed);
      if (job >= num_jobs) return;
      worker(job);
    }
  };
  std::uint32_t spawned = static_cast<std::uint32_t>(
      std::min<std::size_t>(num_threads, num_jobs));
  if (spawned <= 1) {
    loop();
    return num_jobs == 0 ? 0 : 1;
  }
  std::vector<std::thread> pool;
  pool.reserve(spawned);
  for (std::uint32_t t = 0; t < spawned; ++t) pool.emplace_back(loop);
  for (std::thread& t : pool) t.join();
  return spawned;
}

void FillStats(BatchStats* stats, std::uint32_t threads_used,
               std::uint64_t queries,
               std::chrono::steady_clock::time_point start) {
  if (stats == nullptr) return;
  auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  stats->threads_used = threads_used;
  stats->queries = queries;
  stats->wall_seconds = elapsed.count();
  stats->queries_per_sec =
      stats->wall_seconds > 0.0
          ? static_cast<double>(queries) / stats->wall_seconds
          : 0.0;
}

}  // namespace

BatchSolver::BatchSolver(const CertainSolver& solver, BatchOptions options)
    : solver_(&solver),
      num_threads_(options.num_threads),
      want_witness_(options.want_witness) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
    if (num_threads_ == 0) num_threads_ = 1;
  }
}

std::vector<SolverAnswer> BatchSolver::SolveAll(
    const std::vector<const Database*>& dbs, BatchStats* stats) const {
  {
    std::unordered_set<const Database*> seen;
    for (const Database* db : dbs) {
      CQA_CHECK_MSG(db != nullptr, "null database in batch");
      CQA_CHECK_MSG(seen.insert(db).second,
                    "duplicate database pointer in batch (each job must "
                    "own its lazy block index)");
    }
  }

  std::vector<SolverAnswer> answers(dbs.size());
  auto start = std::chrono::steady_clock::now();
  std::uint32_t spawned = RunJobs(dbs.size(), num_threads_,
                                  [&](std::size_t job) {
                                    PreparedDatabase pdb(*dbs[job]);
                                    answers[job] = solver_->Solve(pdb);
                                  });
  FillStats(stats, spawned, dbs.size(), start);
  return answers;
}

std::vector<StatusOr<SolveReport>> BatchSolver::SolveAllReports(
    const std::vector<const Database*>& dbs, BatchStats* stats) const {
  // Pre-screen poisoned entries on the caller's thread: null and
  // duplicate pointers (a duplicate's lazy block index is a data race
  // between workers), and databases the query cannot bind to. Bad slots
  // get their error Status here and are skipped by the workers.
  std::vector<Status> slot_errors(dbs.size());
  std::unordered_set<const Database*> seen;
  std::uint64_t solvable = 0;
  for (std::size_t i = 0; i < dbs.size(); ++i) {
    if (dbs[i] == nullptr) {
      slot_errors[i] = Status(StatusCode::kInvalidArgument,
                              "null database in batch slot " +
                                  std::to_string(i));
    } else if (!seen.insert(dbs[i]).second) {
      slot_errors[i] = Status(
          StatusCode::kInvalidArgument,
          "duplicate database pointer in batch slot " + std::to_string(i) +
              " (each job must own its lazy block index)");
    } else {
      slot_errors[i] = ValidateBinding(solver_->query(), *dbs[i]);
      if (slot_errors[i].ok()) ++solvable;
    }
  }

  std::vector<std::optional<SolveReport>> reports(dbs.size());
  auto start = std::chrono::steady_clock::now();
  std::uint32_t spawned =
      RunJobs(dbs.size(), num_threads_, [&](std::size_t job) {
        if (!slot_errors[job].ok()) return;
        auto prepare_start = std::chrono::steady_clock::now();
        PreparedDatabase pdb(*dbs[job]);
        double prepare_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          prepare_start)
                .count();
        SolveReport report =
            ExecuteReport(solver_->classification(), solver_->backend(), pdb,
                          want_witness_);
        report.timings.prepare_seconds = prepare_seconds;
        reports[job] = std::move(report);
      });
  FillStats(stats, spawned, solvable, start);

  std::vector<StatusOr<SolveReport>> out;
  out.reserve(dbs.size());
  for (std::size_t i = 0; i < dbs.size(); ++i) {
    if (reports[i].has_value()) {
      out.push_back(std::move(*reports[i]));
    } else {
      out.push_back(std::move(slot_errors[i]));
    }
  }
  return out;
}

std::vector<StatusOr<SolveReport>> BatchSolver::SolveAllReports(
    const std::vector<Database>& dbs, BatchStats* stats) const {
  std::vector<const Database*> pointers;
  pointers.reserve(dbs.size());
  for (const Database& db : dbs) pointers.push_back(&db);
  return SolveAllReports(pointers, stats);
}

std::vector<SolverAnswer> BatchSolver::SolveAll(
    const std::vector<Database>& dbs, BatchStats* stats) const {
  std::vector<const Database*> pointers;
  pointers.reserve(dbs.size());
  for (const Database& db : dbs) pointers.push_back(&db);
  return SolveAll(pointers, stats);
}

}  // namespace cqa
