#include "engine/batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "base/check.h"
#include "data/prepared.h"

namespace cqa {

BatchSolver::BatchSolver(const CertainSolver& solver, BatchOptions options)
    : solver_(&solver), num_threads_(options.num_threads) {
  if (num_threads_ == 0) {
    num_threads_ = std::thread::hardware_concurrency();
    if (num_threads_ == 0) num_threads_ = 1;
  }
}

std::vector<SolverAnswer> BatchSolver::SolveAll(
    const std::vector<const Database*>& dbs, BatchStats* stats) const {
  {
    std::unordered_set<const Database*> seen;
    for (const Database* db : dbs) {
      CQA_CHECK_MSG(db != nullptr, "null database in batch");
      CQA_CHECK_MSG(seen.insert(db).second,
                    "duplicate database pointer in batch (each job must "
                    "own its lazy block index)");
    }
  }

  std::vector<SolverAnswer> answers(dbs.size());
  auto start = std::chrono::steady_clock::now();

  // Work stealing via a shared atomic cursor: threads claim the next
  // unclaimed job until none remain. Answers are written to disjoint
  // slots, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      std::size_t job = next.fetch_add(1, std::memory_order_relaxed);
      if (job >= dbs.size()) return;
      PreparedDatabase pdb(*dbs[job]);
      answers[job] = solver_->Solve(pdb);
    }
  };

  std::uint32_t spawned =
      static_cast<std::uint32_t>(std::min<std::size_t>(num_threads_,
                                                       dbs.size()));
  if (spawned <= 1) {
    worker();
    spawned = dbs.empty() ? 0 : 1;
  } else {
    std::vector<std::thread> pool;
    pool.reserve(spawned);
    for (std::uint32_t t = 0; t < spawned; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  if (stats != nullptr) {
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    stats->threads_used = spawned;
    stats->queries = dbs.size();
    stats->wall_seconds = elapsed.count();
    stats->queries_per_sec =
        stats->wall_seconds > 0.0
            ? static_cast<double>(dbs.size()) / stats->wall_seconds
            : 0.0;
  }
  return answers;
}

std::vector<SolverAnswer> BatchSolver::SolveAll(
    const std::vector<Database>& dbs, BatchStats* stats) const {
  std::vector<const Database*> pointers;
  pointers.reserve(dbs.size());
  for (const Database& db : dbs) pointers.push_back(&db);
  return SolveAll(pointers, stats);
}

}  // namespace cqa
