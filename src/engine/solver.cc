#include "engine/solver.h"

#include <stdexcept>
#include <utility>

#include "base/check.h"
#include "engine/registry.h"

namespace cqa {
namespace {

/// The dichotomy dispatch: which registry backend answers each class.
std::string_view BackendNameFor(QueryClass query_class) {
  switch (query_class) {
    case QueryClass::kTrivial:
      return "trivial";
    case QueryClass::kPTimeCert2:
    case QueryClass::kSjfFirstOrder:
    case QueryClass::kSjfPTime:
      // [3] shows Cert_2 captures all PTime self-join-free two-atom cases;
      // Theorem 6.1 covers the self-join ones.
      return "cert2";
    case QueryClass::kPTimeNoTripath:
      return "certk";
    case QueryClass::kPTimeTriangleOnly:
      return "certk+matching";
    case QueryClass::kCoNPHardCondition:
    case QueryClass::kCoNPForkTripath:
    case QueryClass::kSjfCoNPComplete:
    case QueryClass::kUnresolved:
      return "exhaustive";
  }
  CQA_CHECK_MSG(false, "unhandled query class");
}

}  // namespace

CertainSolver::CertainSolver(ConjunctiveQuery query, SolverOptions options)
    : query_(std::move(query)),
      options_(std::move(options)),
      classification_(ClassifyQuery(query_, options_.tripath_limits)) {
  std::string_view name = options_.forced_backend.empty()
                              ? BackendNameFor(classification_.query_class)
                              : std::string_view(options_.forced_backend);
  BackendOptions backend_options;
  backend_options.practical_k = options_.practical_k;
  backend_ = BackendRegistry::Global().Create(name, backend_options);
  // forced_backend is user input; reject it like ParseQuery rejects bad
  // query text rather than aborting.
  if (backend_ == nullptr) {
    throw std::invalid_argument("unknown certain-answer backend \"" +
                                std::string(name) + "\"");
  }
  if (!backend_->Prepare(query_)) {
    throw std::invalid_argument("backend \"" + std::string(name) +
                                "\" cannot answer query " +
                                query_.ToString());
  }
}

SolverAnswer CertainSolver::Solve(const PreparedDatabase& pdb) const {
  SolverAnswer answer;
  answer.algorithm = backend_->algorithm();
  answer.certain = backend_->Solve(pdb);
  return answer;
}

SolverAnswer CertainSolver::Solve(const Database& db) const {
  return Solve(PreparedDatabase(db));
}

}  // namespace cqa
