#include "engine/solver.h"

#include <stdexcept>
#include <utility>

#include "base/check.h"
#include "engine/registry.h"

namespace cqa {
namespace {

/// The dichotomy dispatch: which registry backend answers each class.
std::string_view BackendNameFor(QueryClass query_class) {
  switch (query_class) {
    case QueryClass::kTrivial:
      return "trivial";
    case QueryClass::kPTimeCert2:
    case QueryClass::kSjfFirstOrder:
    case QueryClass::kSjfPTime:
      // [3] shows Cert_2 captures all PTime self-join-free two-atom cases;
      // Theorem 6.1 covers the self-join ones.
      return "cert2";
    case QueryClass::kPTimeNoTripath:
      return "certk";
    case QueryClass::kPTimeTriangleOnly:
      return "certk+matching";
    case QueryClass::kCoNPHardCondition:
    case QueryClass::kCoNPForkTripath:
    case QueryClass::kSjfCoNPComplete:
    case QueryClass::kUnresolved:
      return "exhaustive";
  }
  CQA_CHECK_MSG(false, "unhandled query class");
}

}  // namespace

StatusOr<CertainSolver> CertainSolver::Create(ConjunctiveQuery query,
                                              SolverOptions options) {
  Classification classification =
      ClassifyQuery(query, options.tripath_limits);
  std::string_view name = options.forced_backend.empty()
                              ? BackendNameFor(classification.query_class)
                              : std::string_view(options.forced_backend);
  BackendOptions backend_options;
  backend_options.practical_k = options.practical_k;
  std::unique_ptr<CertainBackend> backend =
      BackendRegistry::Global().Create(name, backend_options);
  // forced_backend is user input; reject it like the parser rejects bad
  // query text rather than aborting.
  if (backend == nullptr) {
    std::string registered;
    for (const std::string& n : BackendRegistry::Global().Names()) {
      if (!registered.empty()) registered += ", ";
      registered += n;
    }
    return Status(StatusCode::kUnknownBackend,
                  "unknown certain-answer backend \"" + std::string(name) +
                      "\" (registered: " + registered + ")");
  }
  if (!backend->Prepare(query)) {
    return Status(StatusCode::kCapabilityMismatch,
                  "backend \"" + std::string(name) +
                      "\" cannot answer query " + query.ToString());
  }
  return CertainSolver(std::move(query), std::move(options),
                       std::move(classification), std::move(backend));
}

CertainSolver::CertainSolver(ConjunctiveQuery query, SolverOptions options,
                             Classification classification,
                             std::unique_ptr<CertainBackend> backend)
    : query_(std::move(query)),
      options_(std::move(options)),
      classification_(std::move(classification)),
      backend_(std::move(backend)) {}

SolverAnswer CertainSolver::Solve(const PreparedDatabase& pdb) const {
  SolverAnswer answer;
  answer.algorithm = backend_->algorithm();
  answer.certain = backend_->Solve(pdb);
  return answer;
}

SolverAnswer CertainSolver::Solve(const Database& db) const {
  return Solve(PreparedDatabase(db));
}

}  // namespace cqa
