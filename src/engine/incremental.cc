#include "engine/incremental.h"

#include <algorithm>
#include <chrono>

#include "base/check.h"
#include "data/repair.h"

namespace cqa {

IncrementalSolver::IncrementalSolver(const CertainSolver& solver,
                                     const PreparedDatabase& pdb)
    : solver_(&solver), pdb_(&pdb), components_(solver.query(), pdb) {}

IncrementalSolver::CachedVerdict IncrementalSolver::SolveComponent(
    const std::vector<FactId>& members, bool want_witness) const {
  const Database& db = pdb_->db();

  // Materialize the component as its own database, re-interning element
  // names so blocks and solutions are preserved verbatim (the shape
  // QConnectedComponents uses). Sorting keeps the sub-database — and so
  // the backend's search order and witness choice — deterministic
  // regardless of union-find history.
  std::vector<FactId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  Database sub(db.schema());
  std::vector<FactId> original;  // Parallel to sub's fact ids.
  original.reserve(sorted.size());
  for (FactId fid : sorted) {
    const Fact& fact = db.fact(fid);
    std::vector<ElementId> args;
    args.reserve(fact.args.size());
    for (ElementId el : fact.args) {
      args.push_back(sub.elements().Intern(db.elements().Name(el)));
    }
    FactId local = sub.AddFact(fact.relation, std::move(args));
    CQA_CHECK(local == original.size());  // Members are distinct facts.
    original.push_back(fid);
  }
  PreparedDatabase sub_pdb(sub);

  CachedVerdict verdict;
  const CertainBackend& backend = solver_->backend();
  if (want_witness && backend.CanExplain()) {
    // One pass answers both questions: certain iff no falsifier exists.
    std::optional<Repair> repair = backend.Explain(sub_pdb);
    verdict.certain = !repair.has_value();
    if (repair.has_value()) {
      verdict.has_witness = true;
      const std::vector<Block>& sub_blocks = sub.blocks();
      verdict.witness_facts.reserve(sub_blocks.size());
      for (BlockId b = 0; b < sub_blocks.size(); ++b) {
        verdict.witness_facts.push_back(db.fact(original[repair->FactIn(b)]));
      }
    }
  } else {
    verdict.certain = backend.Solve(sub_pdb);
  }
  return verdict;
}

SolveReport IncrementalSolver::Solve(bool want_witness) {
  std::optional<SolveReport> report = SolveImpl(want_witness, false);
  CQA_CHECK(report.has_value());  // Never bails when solving is allowed.
  return *std::move(report);
}

std::optional<SolveReport> IncrementalSolver::SolveCached(
    bool want_witness) const {
  // SolveImpl with cache_only performs no mutation (see its contract).
  return const_cast<IncrementalSolver*>(this)->SolveImpl(want_witness,
                                                         true);
}

std::optional<SolveReport> IncrementalSolver::SolveImpl(bool want_witness,
                                                        bool cache_only) {
  const Database& db = pdb_->db();
  const Classification& classification = solver_->classification();
  const CertainBackend& backend = solver_->backend();
  bool can_explain = want_witness && backend.CanExplain();

  SolveReport report;
  report.query_class = classification.query_class;
  report.complexity = classification.complexity;
  report.algorithm = backend.algorithm();
  report.backend_name = std::string(backend.name());
  report.num_facts = db.NumAliveFacts();
  report.num_blocks = pdb_->blocks().size();
  report.incremental = true;

  auto start = std::chrono::steady_clock::now();

  std::vector<const DynamicComponents::Component*> comps;
  comps.reserve(components_.NumComponents());
  for (const auto& [root, comp] : components_.components()) {
    comps.push_back(&comp);
  }
  // Deterministic component order (by smallest member id) so repeated
  // cache-filling solves of identical content behave identically. The
  // cache-only path skips it: verdict lookup and the OR/witness merges
  // are order-independent, and this is the hot concurrent-read path.
  if (!cache_only) {
    std::sort(comps.begin(), comps.end(),
              [](const DynamicComponents::Component* a,
                 const DynamicComponents::Component* b) {
                return a->min_member < b->min_member;
              });
  }

  report.components_total = comps.size();
  bool certain = false;
  std::vector<const CachedVerdict*> verdicts;
  verdicts.reserve(comps.size());
  for (const DynamicComponents::Component* comp : comps) {
    auto it = cache_.find(comp->fingerprint);
    // A verdict cached by a witness-less solve cannot serve a solve that
    // needs the witness; re-solve to attach it.
    bool usable = it != cache_.end() &&
                  (!can_explain || it->second.certain ||
                   it->second.has_witness);
    if (usable) {
      ++report.components_cached;
    } else if (cache_only) {
      return std::nullopt;
    } else {
      CachedVerdict fresh = SolveComponent(comp->members, want_witness);
      it = cache_.insert_or_assign(comp->fingerprint, std::move(fresh)).first;
      ++report.components_resolved;
    }
    certain = certain || it->second.certain;
    verdicts.push_back(&it->second);
  }
  report.certain = certain;

  // Merge the per-component falsifying repairs into one whole-database
  // witness: every block belongs to exactly one component, so the merged
  // choice vector is total.
  if (!certain && can_explain) {
    const std::vector<Block>& blocks = db.blocks();
    std::vector<std::uint32_t> choice(blocks.size(), 0);
    std::vector<char> covered(blocks.size(), 0);
    bool complete = true;
    for (const CachedVerdict* verdict : verdicts) {
      CQA_CHECK(verdict->has_witness);
      for (const Fact& fact : verdict->witness_facts) {
        FactId id = db.FindFact(fact);
        CQA_CHECK(id != Database::kNoFact);
        BlockId b = db.BlockOf(id);
        const std::vector<FactId>& facts = blocks[b].facts;
        choice[b] = static_cast<std::uint32_t>(
            std::find(facts.begin(), facts.end(), id) - facts.begin());
        covered[b] = 1;
      }
    }
    for (char c : covered) complete = complete && c != 0;
    CQA_CHECK_MSG(complete, "component witnesses left a block unassigned");
    report.witness = Repair(&db, std::move(choice));
  }

  report.timings.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace cqa
