#include "engine/incremental.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "base/check.h"
#include "data/audit.h"
#include "data/repair.h"

namespace cqa {

IncrementalSolver::IncrementalSolver(const CertainSolver& solver,
                                     const PreparedDatabase& pdb,
                                     CacheOptions cache_options)
    : IncrementalSolver(solver, pdb, cache_options, SessionOptions{}) {}

IncrementalSolver::IncrementalSolver(const CertainSolver& solver,
                                     const PreparedDatabase& pdb,
                                     CacheOptions cache_options,
                                     SessionOptions session_options)
    : solver_(&solver), pdb_(&pdb), components_(solver.query(), pdb) {
  if (session_options.enabled) {
    session_ = solver.backend().NewSession(session_options.cache,
                                           session_options.solver);
  }
  // Split the caps evenly over the shards (0 stays "unbounded"). Rounding
  // up keeps the total at least the requested cap; the effective bound is
  // a multiple of kNumShards.
  CacheOptions per_shard;
  if (cache_options.max_entries != 0) {
    per_shard.max_entries =
        (cache_options.max_entries + kNumShards - 1) / kNumShards;
  }
  if (cache_options.max_bytes != 0) {
    per_shard.max_bytes = (cache_options.max_bytes + kNumShards - 1) / kNumShards;
  }
  for (Shard& shard : shards_) {
    shard.cache =
        LruCache<ComponentFingerprint, std::shared_ptr<const CachedVerdict>,
                 ComponentFingerprintHash>(per_shard);
  }
}

void IncrementalSolver::Enqueue(FactId f, bool insert) {
  pending_.push_back(PendingDelta{f, insert});
  pending_count_.store(pending_.size(), std::memory_order_release);
}

void IncrementalSolver::FlushPendingLocked() const {
  for (const PendingDelta& delta : pending_) {
    if (delta.insert) {
      components_.OnInsert(delta.id);
    } else {
      components_.OnRemove(delta.id);
    }
  }
  pending_.clear();
  pending_count_.store(0, std::memory_order_release);
}

void IncrementalSolver::FlushPending() const {
  if (pending_count_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock lock(components_mu_);
  // No re-check needed for correctness (flushing an empty queue is a
  // no-op), but racing flushers both seeing nonzero is common enough
  // that the second pass over an already-empty vector is the cheap path.
  FlushPendingLocked();
}

void IncrementalSolver::ApplyRemap(const FactIdRemap& remap) {
  {
    std::unique_lock lock(components_mu_);
    // Queued deltas hold pre-remap ids and read tombstoned tuples the
    // compaction just destroyed; the caller must have flushed first.
    CQA_CHECK_MSG(pending_.empty(),
                  "ApplyRemap with queued deltas (FlushPending before "
                  "Database::Compact)");
    components_.ApplyRemap(remap);
  }
  if (session_ != nullptr) {
    std::lock_guard lock(session_mu_);
    session_->ApplyRemap(remap);
  }
}

CdclStats IncrementalSolver::SatSessionStats() const {
  if (session_ == nullptr) return CdclStats{};
  std::lock_guard lock(session_mu_);
  return session_->Stats();
}

CacheCounters IncrementalSolver::SessionCacheCounters() const {
  if (session_ == nullptr) return CacheCounters{};
  std::lock_guard lock(session_mu_);
  return session_->CacheStats();
}

IncrementalSolver::Shard& IncrementalSolver::ShardFor(
    const ComponentFingerprint& fp) const {
  return shards_[ComponentFingerprintHash()(fp) % kNumShards];
}

std::size_t IncrementalSolver::VerdictBytes(const CachedVerdict& verdict) {
  std::size_t bytes = sizeof(CachedVerdict) + sizeof(ComponentFingerprint);
  for (const Fact& fact : verdict.witness_facts) {
    bytes += sizeof(Fact) + fact.args.size() * sizeof(ElementId);
  }
  return bytes;
}

CacheCounters IncrementalSolver::VerdictCacheCounters() const {
  CacheCounters total;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.cache.Counters();
  }
  return total;
}

std::vector<store::PersistedVerdict> IncrementalSolver::ExportVerdicts()
    const {
  std::vector<store::PersistedVerdict> out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.cache.ForEach(
        [&](const ComponentFingerprint& fp,
            const std::shared_ptr<const CachedVerdict>& verdict) {
          store::PersistedVerdict p;
          p.fingerprint = fp;
          p.certain = verdict->certain;
          p.has_witness = verdict->has_witness;
          p.witness_facts = verdict->witness_facts;
          out.push_back(std::move(p));
        });
  }
  return out;
}

void IncrementalSolver::ImportVerdicts(
    const std::vector<store::PersistedVerdict>& verdicts) {
  for (const store::PersistedVerdict& p : verdicts) {
    CachedVerdict cv{p.certain, p.has_witness, p.witness_facts};
    std::size_t bytes = VerdictBytes(cv);
    Shard& shard = ShardFor(p.fingerprint);
    std::lock_guard lock(shard.mu);
    if (shard.cache.Find(p.fingerprint, /*count=*/false) != nullptr) continue;
    shard.cache.Insert(p.fingerprint,
                       std::make_shared<const CachedVerdict>(std::move(cv)),
                       bytes);
  }
}

void IncrementalSolver::AuditInto(AuditReport& report) const {
  {
    // Exclusive: the audit drains the delta queue and then compares the
    // settled partition against a fresh repartition; a concurrent solve's
    // flush must not interleave.
    std::unique_lock lock(components_mu_);
    FlushPendingLocked();
    report.Merge(AuditComponents(solver_->query(), *pdb_, components_));
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    report.checks += 4;  // The four LRU invariant families below.
    shard.cache.AuditInvariants([&](const std::string& message) {
      report.Add("lru", "verdict shard " + std::to_string(i) + ": " + message);
    });
  }
}

IncrementalSolver::CachedVerdict IncrementalSolver::SolveComponent(
    const std::vector<FactId>& members, bool want_witness) const {
  const Database& db = pdb_->db();

  // Warm path: the backend session solves the component in place over the
  // parent database, reusing a per-component incremental solver. The
  // session lock (rank kSolverInternal) nests under this call's
  // verdict-shard lock.
  if (session_ != nullptr) {
    bool explain = want_witness && solver_->backend().CanExplain();
    ComponentVerdict v;
    {
      std::lock_guard lock(session_mu_);
      v = session_->SolveComponent(*pdb_, members, explain);
    }
    CachedVerdict verdict;
    verdict.certain = v.certain;
    if (!v.certain && explain) {
      verdict.has_witness = true;
      verdict.witness_facts.reserve(v.witness.size());
      for (FactId f : v.witness) {
        verdict.witness_facts.push_back(db.MaterializeFact(f));
      }
    }
    return verdict;
  }

  // Materialize the component as its own database, re-interning element
  // names so blocks and solutions are preserved verbatim (the shape
  // QConnectedComponents uses). Sorting keeps the sub-database — and so
  // the backend's search order and witness choice — deterministic
  // regardless of union-find history.
  std::vector<FactId> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  Database sub(db.schema());
  std::vector<FactId> original;  // Parallel to sub's fact ids.
  original.reserve(sorted.size());
  for (FactId fid : sorted) {
    FactRef fact = db.fact(fid);
    std::vector<ElementId> args;
    args.reserve(fact.args.size());
    for (ElementId el : fact.args) {
      args.push_back(sub.elements().Intern(db.elements().Name(el)));
    }
    FactId local = sub.AddFact(fact.relation, std::move(args));
    CQA_CHECK(local == original.size());  // Members are distinct facts.
    original.push_back(fid);
  }
  PreparedDatabase sub_pdb(sub);

  CachedVerdict verdict;
  const CertainBackend& backend = solver_->backend();
  if (want_witness && backend.CanExplain()) {
    // One pass answers both questions: certain iff no falsifier exists.
    std::optional<Repair> repair = backend.Explain(sub_pdb);
    verdict.certain = !repair.has_value();
    if (repair.has_value()) {
      verdict.has_witness = true;
      const std::vector<Block>& sub_blocks = sub.blocks();
      verdict.witness_facts.reserve(sub_blocks.size());
      for (BlockId b = 0; b < sub_blocks.size(); ++b) {
        verdict.witness_facts.push_back(
            db.MaterializeFact(original[repair->FactIn(b)]));
      }
    }
  } else {
    verdict.certain = backend.Solve(sub_pdb);
  }
  return verdict;
}

SolveReport IncrementalSolver::Solve(bool want_witness) const {
  const Database& db = pdb_->db();
  const Classification& classification = solver_->classification();
  const CertainBackend& backend = solver_->backend();
  bool can_explain = want_witness && backend.CanExplain();

  SolveReport report;
  report.query_class = classification.query_class;
  report.complexity = classification.complexity;
  report.algorithm = backend.algorithm();
  report.backend_name = std::string(backend.name());
  report.num_facts = db.NumAliveFacts();
  report.num_blocks = pdb_->blocks().size();
  report.incremental = true;

  auto start = std::chrono::steady_clock::now();

  // Settle the partition, then read it shared: deltas queued by earlier
  // mutations are drained here (exclusive, serialized against other
  // flushers), and the shared hold across both cache passes below keeps
  // the partition stable while concurrent solves proceed. No new delta
  // can arrive mid-solve — enqueues need the exclusive structure lock the
  // caller of Solve holds shared.
  FlushPending();
  std::shared_lock components_lock(components_mu_);

  // A verdict cached by a witness-less solve cannot serve a solve that
  // needs the witness; re-solve to attach it.
  auto usable = [can_explain](const CachedVerdict& v) {
    return !can_explain || v.certain || v.has_witness;
  };

  report.components_total = components_.NumComponents();
  // shared_ptr copies: a hit never deep-copies witness tuples, and the
  // verdict stays alive even if a concurrent solve's insert evicts its
  // cache entry before the merge below reads it.
  std::vector<std::shared_ptr<const CachedVerdict>> verdicts;
  verdicts.reserve(report.components_total);
  // First pass, unsorted (the OR and the witness merge below are
  // order-independent): serve cache hits, collect the misses. Only the
  // misses are sorted — by smallest member id, so repeated cache-filling
  // solves of identical content run backends in the same order — keeping
  // the fully-cached steady state free of the O(C log C) sort.
  std::vector<const DynamicComponents::Component*> misses;
  for (const auto& [root, comp] : components_.components()) {
    Shard& shard = ShardFor(comp.fingerprint);
    std::lock_guard lock(shard.mu);
    // A present-but-unusable verdict is a miss to us (the backend will
    // re-run), so count usability, not mere presence.
    auto* hit = shard.cache.Find(comp.fingerprint, /*count=*/false);
    bool served = hit != nullptr && usable(**hit);
    shard.cache.CountLookup(served);
    if (served) {
      ++report.components_cached;
      verdicts.push_back(*hit);
    } else {
      misses.push_back(&comp);
    }
  }
  std::sort(misses.begin(), misses.end(),
            [](const DynamicComponents::Component* a,
               const DynamicComponents::Component* b) {
              return a->min_member < b->min_member;
            });
  for (const DynamicComponents::Component* comp : misses) {
    // The shard lock is held across the backend run: a concurrent solver
    // of the same component blocks here and then finds the hit, so no
    // backend run is duplicated; components on other shards proceed in
    // parallel. The re-probe is the same logical lookup as the first
    // pass's, so it stays out of the hit/miss counters.
    Shard& shard = ShardFor(comp->fingerprint);
    std::lock_guard lock(shard.mu);
    auto* hit = shard.cache.Find(comp->fingerprint, /*count=*/false);
    if (hit != nullptr && usable(**hit)) {
      ++report.components_cached;
      verdicts.push_back(*hit);
      continue;
    }
    auto fresh = std::make_shared<const CachedVerdict>(
        SolveComponent(comp->members, want_witness));
    report.cache_evictions +=
        shard.cache.Insert(comp->fingerprint, fresh, VerdictBytes(*fresh));
    ++report.components_resolved;
    verdicts.push_back(std::move(fresh));
  }
  bool certain = false;
  for (const auto& verdict : verdicts) certain = certain || verdict->certain;
  report.certain = certain;

  // Merge the per-component falsifying repairs into one whole-database
  // witness: every block belongs to exactly one component, so the merged
  // choice vector is total.
  if (!certain && can_explain) {
    const std::vector<Block>& blocks = db.blocks();
    std::vector<std::uint32_t> choice(blocks.size(), 0);
    std::vector<char> covered(blocks.size(), 0);
    bool complete = true;
    for (const std::shared_ptr<const CachedVerdict>& verdict : verdicts) {
      CQA_CHECK(verdict->has_witness);
      for (const Fact& fact : verdict->witness_facts) {
        FactId id = db.FindFact(fact);
        CQA_CHECK(id != Database::kNoFact);
        BlockId b = db.BlockOf(id);
        const std::vector<FactId>& facts = blocks[b].facts;
        choice[b] = static_cast<std::uint32_t>(
            std::find(facts.begin(), facts.end(), id) - facts.begin());
        covered[b] = 1;
      }
    }
    for (char c : covered) complete = complete && c != 0;
    CQA_CHECK_MSG(complete, "component witnesses left a block unassigned");
    report.witness = Repair(&db, std::move(choice));
  }

  if (session_ != nullptr) {
    report.sat_warm = true;
    report.sat = SatSessionStats();
  }

  report.timings.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

}  // namespace cqa
