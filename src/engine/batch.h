// BatchSolver: answers one prepared query on N databases with a fixed-size
// thread pool.
//
// The query is classified and its backend prepared exactly once (by the
// CertainSolver the batch is built around); each job then builds its own
// PreparedDatabase and solves independently. Answers are bit-identical to
// calling CertainSolver::Solve per database — the pool only changes the
// schedule, never the algorithm.
//
// Thread-safety: CertainSolver::Solve(const PreparedDatabase&) is const and
// stateless, so one solver is shared across all workers. The Database
// objects themselves must be distinct per job (their lazy block index is
// forced from the worker thread that prepares them); SolveAll CHECKs that
// no pointer is passed twice.

#ifndef CQA_ENGINE_BATCH_H_
#define CQA_ENGINE_BATCH_H_

#include <cstdint>
#include <vector>

#include "api/report.h"
#include "api/status.h"
#include "data/database.h"
#include "engine/solver.h"

namespace cqa {

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::uint32_t num_threads = 0;
  /// SolveAllReports: attach falsifying-repair witnesses to non-certain
  /// reports (backends without Explain still report no witness).
  bool want_witness = true;
};

/// Throughput accounting for one SolveAll call.
struct BatchStats {
  std::uint32_t threads_used = 0;
  std::uint64_t queries = 0;
  double wall_seconds = 0.0;
  double queries_per_sec = 0.0;
};

class BatchSolver {
 public:
  /// The solver must outlive the BatchSolver.
  explicit BatchSolver(const CertainSolver& solver, BatchOptions options = {});

  /// Answers every database, in input order. Each pointer must be non-null
  /// and distinct (CHECKed); a schema-mismatched database aborts the
  /// process via RelationBinding. Prefer SolveAllReports, which degrades
  /// both into per-slot errors.
  std::vector<SolverAnswer> SolveAll(const std::vector<const Database*>& dbs,
                                     BatchStats* stats = nullptr) const;

  /// Convenience overload for owned databases.
  std::vector<SolverAnswer> SolveAll(const std::vector<Database>& dbs,
                                     BatchStats* stats = nullptr) const;

  /// Fault-isolating variant: one report per database, in input order. A
  /// poisoned entry — null pointer, duplicate pointer (whose lazy block
  /// index two workers would race on), or a database whose schema cannot
  /// be bound to the query — yields an error Status in its slot and never
  /// takes down the rest of the batch. Non-certain answers carry the
  /// backend's falsifying-repair witness when it supports Explain.
  /// BatchStats counts only the slots actually solved.
  std::vector<StatusOr<SolveReport>> SolveAllReports(
      const std::vector<const Database*>& dbs,
      BatchStats* stats = nullptr) const;

  /// Convenience overload for owned databases.
  std::vector<StatusOr<SolveReport>> SolveAllReports(
      const std::vector<Database>& dbs, BatchStats* stats = nullptr) const;

  std::uint32_t num_threads() const { return num_threads_; }

 private:
  const CertainSolver* solver_;
  std::uint32_t num_threads_;
  bool want_witness_;
};

}  // namespace cqa

#endif  // CQA_ENGINE_BATCH_H_
