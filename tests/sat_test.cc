// Unit and property tests for src/sat: CNF machinery, DPLL, the CDCL
// core, and generators.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "sat/cdcl.h"
#include "sat/cnf.h"
#include "sat/dpll.h"
#include "sat/gen.h"

namespace cqa {
namespace {

CnfFormula Parse(std::uint32_t num_vars,
                 std::initializer_list<std::initializer_list<int>> clauses) {
  // Positive literal i+1, negative -(i+1).
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& c : clauses) {
    Clause clause;
    for (int lit : c) {
      clause.push_back(
          Literal{static_cast<std::uint32_t>(std::abs(lit)) - 1, lit > 0});
    }
    f.clauses.push_back(clause);
  }
  return f;
}

TEST(Cnf, EvaluateBasics) {
  CnfFormula f = Parse(2, {{1, -2}, {2}});
  EXPECT_TRUE(f.Evaluate({true, true}));
  EXPECT_FALSE(f.Evaluate({false, false}));
  EXPECT_FALSE(f.Evaluate({true, false}));
}

TEST(Cnf, OccurrenceCounts) {
  CnfFormula f = Parse(3, {{1, -2}, {2, 3}, {-1, 2}});
  auto counts = f.OccurrenceCounts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Cnf, PolarityCounts) {
  CnfFormula f = Parse(2, {{1, -2}, {1, 2}});
  std::vector<std::uint32_t> pos, neg;
  f.PolarityCounts(&pos, &neg);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(neg[0], 0u);
  EXPECT_EQ(pos[1], 1u);
  EXPECT_EQ(neg[1], 1u);
}

TEST(Cnf, ReductionReadyChecks) {
  EXPECT_TRUE(Parse(2, {{1, -2}, {-1, 2}}).IsReductionReady());
  // Variable 1 occurs once: not ready.
  EXPECT_FALSE(Parse(2, {{1, -2}, {-1}, {-1}}).IsReductionReady());
  // Variable occurs 4 times: not ready.
  EXPECT_FALSE(
      Parse(2, {{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}).IsReductionReady());
  // Single polarity: not ready.
  EXPECT_FALSE(Parse(2, {{1, 2}, {1, -2}}).IsReductionReady());
  // Duplicate variable in a clause: not ready.
  EXPECT_FALSE(Parse(2, {{1, 1, -2}, {-1, 2}}).IsReductionReady());
}

TEST(Dpll, SimpleSat) {
  SatResult r = SolveDpll(Parse(2, {{1, 2}, {-1, 2}}));
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[1]);  // 2 must be true? Not forced: -1,2 | 1,2.
}

TEST(Dpll, SimpleUnsat) {
  SatResult r = SolveDpll(Parse(1, {{1}, {-1}}));
  EXPECT_FALSE(r.satisfiable);
}

TEST(Dpll, EmptyFormulaIsSat) {
  CnfFormula f;
  f.num_vars = 3;
  EXPECT_TRUE(SolveDpll(f).satisfiable);
}

TEST(Dpll, EmptyClauseIsUnsat) {
  CnfFormula f;
  f.num_vars = 1;
  f.clauses.push_back({});
  EXPECT_FALSE(SolveDpll(f).satisfiable);
}

TEST(Dpll, UnitPropagationChain) {
  // 1; -1|2; -2|3; -3|4 forces all true.
  SatResult r = SolveDpll(Parse(4, {{1}, {-1, 2}, {-2, 3}, {-3, 4}}));
  ASSERT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[0]);
  EXPECT_TRUE(r.assignment[3]);
}

TEST(Dpll, PigeonholeUnsat) {
  // 3 pigeons, 2 holes. Variables p_{i,h} = 2i + h + 1.
  CnfFormula f = Parse(6, {{1, 2},
                           {3, 4},
                           {5, 6},
                           {-1, -3},
                           {-1, -5},
                           {-3, -5},
                           {-2, -4},
                           {-2, -6},
                           {-4, -6}});
  EXPECT_FALSE(SolveDpll(f).satisfiable);
}

class DpllRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DpllRandomTest, AgreesWithBruteForce) {
  Rng rng(777 + GetParam());
  for (int round = 0; round < 30; ++round) {
    std::uint32_t nv = 3 + rng.Below(6);
    std::uint32_t nc = 2 + rng.Below(20);
    CnfFormula f = RandomKSat(nv, nc, 3, &rng);
    EXPECT_EQ(SolveDpll(f).satisfiable, SolveBruteForce(f).satisfiable)
        << f.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpllRandomTest, ::testing::Range(0, 5));

TEST(LimitOccurrences, CapsAtThree) {
  Rng rng(42);
  for (int round = 0; round < 10; ++round) {
    CnfFormula f = RandomKSat(5, 25, 3, &rng);
    CnfFormula limited = LimitOccurrences(f);
    auto counts = limited.OccurrenceCounts();
    for (std::uint32_t c : counts) EXPECT_LE(c, 3u);
  }
}

TEST(LimitOccurrences, PreservesSatisfiability) {
  Rng rng(43);
  for (int round = 0; round < 20; ++round) {
    CnfFormula f = RandomKSat(4 + rng.Below(3), 5 + rng.Below(15), 3, &rng);
    CnfFormula limited = LimitOccurrences(f);
    EXPECT_EQ(SolveDpll(f).satisfiable, SolveDpll(limited).satisfiable)
        << f.ToString();
  }
}

TEST(LimitOccurrences, DropsTautologies) {
  CnfFormula f = Parse(2, {{1, -1, 2}});
  CnfFormula limited = LimitOccurrences(f);
  EXPECT_TRUE(limited.clauses.empty());
}

TEST(EliminatePure, RemovesSinglePolarityVariables) {
  // Variable 1 occurs only positively: clauses containing it vanish.
  CnfFormula f = Parse(3, {{1, 2}, {-2, 3}, {2, -3}});
  CnfFormula out = EliminatePureAndSingletons(f);
  // After removing clause {1,2}: var 2 occurs -2, +2; var 3 occurs +3, -3.
  EXPECT_EQ(out.clauses.size(), 2u);
}

TEST(EliminatePure, PreservesSatisfiability) {
  Rng rng(44);
  for (int round = 0; round < 20; ++round) {
    CnfFormula f = RandomKSat(5, 6 + rng.Below(10), 3, &rng);
    CnfFormula out = EliminatePureAndSingletons(f);
    // Pure elimination can only preserve or reveal satisfiability; it
    // never turns SAT into UNSAT or vice versa.
    EXPECT_EQ(SolveDpll(f).satisfiable, SolveDpll(out).satisfiable)
        << f.ToString();
  }
}

TEST(Generators, ReductionReady3SatIsReady) {
  Rng rng(45);
  for (int round = 0; round < 10; ++round) {
    CnfFormula f = RandomReductionReady3Sat(6, 8, &rng);
    EXPECT_TRUE(f.IsReductionReady());
    EXPECT_TRUE(f.MaxClauseSize(3));
    EXPECT_FALSE(f.clauses.empty());
  }
}

TEST(Generators, Figure2FormulaMatchesPaper) {
  CnfFormula f = Figure2Formula();
  EXPECT_EQ(f.clauses.size(), 3u);
  EXPECT_TRUE(f.IsReductionReady());
  SatResult r = SolveDpll(f);
  EXPECT_TRUE(r.satisfiable);  // E.g. s=false, t=false, u=false? Check:
  // (~s|t|u)=T, (~s|~t|u)=T, (s|~t|~u)=T with all false. Yes.
  EXPECT_TRUE(f.Evaluate({false, false, false}));
}

TEST(Generators, RandomKSatShape) {
  Rng rng(46);
  CnfFormula f = RandomKSat(7, 12, 3, &rng);
  EXPECT_EQ(f.num_vars, 7u);
  EXPECT_EQ(f.clauses.size(), 12u);
  for (const Clause& c : f.clauses) {
    EXPECT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c[0].var, c[1].var);
    EXPECT_NE(c[1].var, c[2].var);
    EXPECT_NE(c[0].var, c[2].var);
  }
}


// --- CDCL core (sat/cdcl.h) ---------------------------------------------

TEST(Cdcl, SimpleSat) {
  CnfFormula f = Parse(2, {{1, -2}, {2}});
  SatResult r = SolveCdcl(f);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(f.Evaluate(r.assignment));
}

TEST(Cdcl, SimpleUnsat) {
  CnfFormula f = Parse(1, {{1}, {-1}});
  EXPECT_FALSE(SolveCdcl(f).satisfiable);
}

TEST(Cdcl, EmptyFormulaIsSat) {
  CnfFormula f;
  f.num_vars = 3;
  SatResult r = SolveCdcl(f);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_EQ(r.assignment.size(), 3u);  // Total model even with no clauses.
}

TEST(Cdcl, EmptyClauseIsUnsat) {
  CnfFormula f;
  f.num_vars = 2;
  f.clauses.push_back({});
  EXPECT_FALSE(SolveCdcl(f).satisfiable);
}

TEST(Cdcl, UnitPropagationChain) {
  // 1, 1->2, 2->3: all forced at level zero, no decisions needed.
  CnfFormula f = Parse(3, {{1}, {-1, 2}, {-2, 3}});
  CdclStats stats;
  SatResult r = SolveCdcl(f, &stats);
  EXPECT_TRUE(r.satisfiable);
  EXPECT_TRUE(r.assignment[0] && r.assignment[1] && r.assignment[2]);
  EXPECT_EQ(stats.conflicts, 0u);
}

/// Pigeonhole formula PHP(pigeons, holes): variable p_{i,h} says pigeon i
/// sits in hole h. Unsatisfiable whenever pigeons > holes, and famously
/// resolution-hard — deciding it exercises conflict analysis, clause
/// learning, and backjumping rather than plain propagation.
CnfFormula Pigeonhole(std::uint32_t pigeons, std::uint32_t holes) {
  CnfFormula f;
  f.num_vars = pigeons * holes;
  auto var = [&](std::uint32_t i, std::uint32_t h) { return i * holes + h; };
  for (std::uint32_t i = 0; i < pigeons; ++i) {
    Clause some_hole;
    for (std::uint32_t h = 0; h < holes; ++h) {
      some_hole.push_back(Literal{var(i, h), true});
    }
    f.clauses.push_back(some_hole);
  }
  for (std::uint32_t h = 0; h < holes; ++h) {
    for (std::uint32_t i = 0; i < pigeons; ++i) {
      for (std::uint32_t j = i + 1; j < pigeons; ++j) {
        f.clauses.push_back(
            {Literal{var(i, h), false}, Literal{var(j, h), false}});
      }
    }
  }
  return f;
}

TEST(Cdcl, PigeonholeUnsatRequiresLearnedClauses) {
  CdclStats stats;
  EXPECT_FALSE(SolveCdcl(Pigeonhole(5, 4), &stats).satisfiable);
  // The refutation cannot be pure unit propagation: the solver must have
  // hit conflicts and learned clauses from them.
  EXPECT_GT(stats.conflicts, 0u);
  EXPECT_GT(stats.learned_clauses, 0u);
  EXPECT_GT(stats.decisions, 0u);
}

TEST(Cdcl, AgreesWithDpllOnPigeonholeSizes) {
  for (std::uint32_t holes = 1; holes <= 4; ++holes) {
    CnfFormula f = Pigeonhole(holes + 1, holes);
    EXPECT_EQ(SolveCdcl(f).satisfiable, SolveDpll(f).satisfiable);
    EXPECT_TRUE(SolveCdcl(Pigeonhole(holes, holes)).satisfiable);
  }
}

TEST(Cdcl, SatisfiableModelIsTotalAndVerified) {
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    std::uint32_t nv = 5 + rng.Below(20);
    CnfFormula f = RandomKSat(nv, nv * 2, 3, &rng);
    SatResult r = SolveCdcl(f);
    if (!r.satisfiable) continue;
    ASSERT_EQ(r.assignment.size(), nv);
    EXPECT_TRUE(f.Evaluate(r.assignment)) << f.ToString();
  }
}

TEST(Cdcl, HardRandomInstancesCollectStats) {
  // Near the 4.26 threshold the solver must restart and decay activities;
  // this pins the stats plumbing (and implicitly the Luby schedule) on a
  // formula too hard for propagation alone.
  Rng rng(99);
  CnfFormula f = RandomKSat(60, 255, 3, &rng);
  CdclStats stats;
  SatResult r = SolveCdcl(f, &stats);
  SatResult d = SolveDpll(f);
  EXPECT_EQ(r.satisfiable, d.satisfiable);
  EXPECT_GT(stats.propagations, stats.decisions);
  EXPECT_GT(stats.conflicts, 0u);
}

/// ~200 randomized rounds of DPLL-vs-CDCL agreement across formula
/// shapes: 5 seeds x (30 brute-force-sized + 10 medium) rounds.
class CdclRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CdclRandomTest, AgreesWithDpllAndBruteForce) {
  Rng rng(1234 + GetParam());
  for (int round = 0; round < 30; ++round) {
    std::uint32_t nv = 3 + rng.Below(6);
    std::uint32_t nc = 2 + rng.Below(20);
    CnfFormula f = RandomKSat(nv, nc, 3, &rng);
    SatResult r = SolveCdcl(f);
    EXPECT_EQ(r.satisfiable, SolveBruteForce(f).satisfiable) << f.ToString();
    if (r.satisfiable) {
      EXPECT_TRUE(f.Evaluate(r.assignment));
    }
  }
  for (int round = 0; round < 10; ++round) {
    std::uint32_t nv = 15 + rng.Below(25);
    std::uint32_t nc = nv * (2 + rng.Below(3));
    CnfFormula f = RandomKSat(nv, nc, 3, &rng);
    EXPECT_EQ(SolveCdcl(f).satisfiable, SolveDpll(f).satisfiable)
        << f.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdclRandomTest, ::testing::Range(0, 5));

TEST(Cdcl, ReductionReadyFormulasAgree) {
  Rng rng(321);
  for (int round = 0; round < 10; ++round) {
    std::uint32_t nv = 8 + rng.Below(30);
    CnfFormula f = RandomReductionReady3Sat(nv, nv * 3 / 2, &rng);
    EXPECT_EQ(SolveCdcl(f).satisfiable, SolveDpll(f).satisfiable)
        << f.ToString();
  }
}

// --- Incremental solving (CdclSolver) -----------------------------------

/// Loads a CnfFormula into a persistent solver.
void Load(CdclSolver& solver, const CnfFormula& f) {
  solver.AddVars(f.num_vars);
  for (const Clause& c : f.clauses) solver.AddClause(c);
}

TEST(CdclIncremental, PigeonholeUnderAssumptions) {
  // PHP(5,4) *without* pigeon 4's at-least-one clause: satisfiable (pigeon
  // 4 stays homeless). Assuming p_{4,h} for any hole h re-creates the full
  // unsatisfiable pigeonhole instance — but only under assumptions, so the
  // same warm solver must flip back to SAT the moment they are dropped.
  const std::uint32_t holes = 4;
  CnfFormula f = Pigeonhole(5, holes);
  f.clauses.erase(f.clauses.begin() + 4);  // Pigeon 4's some-hole clause.
  CdclSolver solver;
  Load(solver, f);
  EXPECT_TRUE(solver.Solve());
  for (std::uint32_t h = 0; h < holes; ++h) {
    EXPECT_FALSE(solver.SolveUnderAssumptions({Literal{4 * holes + h, true}}))
        << "pigeon 4 forced into hole " << h;
    EXPECT_TRUE(solver.ok());  // UNSAT under assumptions, not permanently.
  }
  EXPECT_TRUE(solver.Solve());  // Everything learned stays sound.
  EXPECT_GT(solver.stats().warm_solves, 0u);
  EXPECT_EQ(solver.stats().solves, 2u + holes);
}

TEST(CdclIncremental, AssumptionsEquivalentToUnitClauses) {
  // Verdict under assumptions == fresh solve with the assumptions as
  // units, across random formulas and random assumption sets — the
  // defining property of SolveUnderAssumptions.
  Rng rng(555);
  for (int round = 0; round < 60; ++round) {
    std::uint32_t nv = 4 + rng.Below(12);
    CnfFormula f = RandomKSat(nv, 3 + rng.Below(4 * nv), 3, &rng);
    CdclSolver solver;
    Load(solver, f);
    std::vector<Literal> assumptions;
    for (std::uint32_t v = 0; v < nv; ++v) {
      if (rng.Below(3) == 0) assumptions.push_back(Literal{v, rng.Below(2) == 0});
    }
    CnfFormula with_units = f;
    for (Literal a : assumptions) with_units.clauses.push_back({a});
    bool incremental = solver.SolveUnderAssumptions(assumptions);
    EXPECT_EQ(incremental, SolveDpll(with_units).satisfiable) << f.ToString();
    // The model must satisfy the assumptions themselves.
    if (incremental) {
      for (Literal a : assumptions) EXPECT_EQ(solver.ValueOf(a.var), a.positive);
    }
    // The solver is not poisoned: the unconstrained verdict still matches.
    EXPECT_EQ(solver.Solve(), SolveDpll(f).satisfiable);
  }
}

TEST(CdclIncremental, AddClauseThenResolveStaysSound) {
  // Grow one warm solver clause by clause, solving after every addition
  // and comparing against a fresh solve of the prefix: everything learned
  // from earlier prefixes must remain a logical consequence of the larger
  // formula. Once UNSAT, the solver must stay UNSAT for good.
  Rng rng(808);
  for (int trial = 0; trial < 8; ++trial) {
    std::uint32_t nv = 5 + rng.Below(8);
    CnfFormula full = RandomKSat(nv, 6 * nv, 3, &rng);
    CdclSolver solver;
    solver.AddVars(nv);
    CnfFormula prefix;
    prefix.num_vars = nv;
    bool was_unsat = false;
    for (const Clause& c : full.clauses) {
      bool accepted = solver.AddClause(c);
      prefix.clauses.push_back(c);
      bool fresh = SolveDpll(prefix).satisfiable;
      EXPECT_EQ(solver.Solve(), fresh) << prefix.ToString();
      EXPECT_EQ(solver.ok(), fresh);
      if (was_unsat) EXPECT_FALSE(accepted);
      was_unsat = was_unsat || !fresh;
    }
    EXPECT_FALSE(was_unsat ? solver.Solve() : false);
  }
}

TEST(CdclIncremental, ActivationLiteralRetraction) {
  // The retraction idiom the falsifier encoder relies on: a clause guarded
  // by activation literal a is live only while a is assumed, and the unit
  // ~a retires it permanently without touching the rest of the database.
  CdclSolver solver;
  std::uint32_t x = solver.AddVars(1);
  std::uint32_t a = solver.AddVars(1);
  // (~a v x) with unit (~x): assuming a forces the conflict, dropping the
  // assumption resolves it.
  EXPECT_TRUE(solver.AddClause({Literal{x, false}}));
  EXPECT_TRUE(solver.AddClause({Literal{a, false}, Literal{x, true}}));
  EXPECT_FALSE(solver.SolveUnderAssumptions({Literal{a, true}}));
  EXPECT_TRUE(solver.ok());
  EXPECT_TRUE(solver.Solve());
  // Retract: ~a for good. The clause can never fire again.
  EXPECT_TRUE(solver.AddClause({Literal{a, false}}));
  solver.NoteRetraction(1);
  EXPECT_TRUE(solver.Solve());
  EXPECT_EQ(solver.stats().clauses_retracted, 1u);
  // Assuming a now contradicts the retraction unit itself.
  EXPECT_FALSE(solver.SolveUnderAssumptions({Literal{a, true}}));
  EXPECT_TRUE(solver.ok());
}

TEST(CdclIncremental, DeletionChurnNeverChangesVerdicts) {
  // 200 randomized rounds against a warm solver whose reduction thresholds
  // are cranked low enough to force constant learned-clause deletion; the
  // verdict after any amount of churn must match a fresh solve (CDCL) and
  // the DPLL oracle. This is the clause-DB-reduction soundness property:
  // deleting learned clauses may cost time, never answers.
  CdclOptions aggressive;
  aggressive.first_reduce_conflicts = 10;
  aggressive.reduce_increment = 5;
  aggressive.restart_base = 8;
  Rng rng(2024);
  CdclSolver solver(aggressive);
  std::uint32_t nv = 24;
  solver.AddVars(nv);
  CnfFormula all;
  all.num_vars = nv;
  bool dead = false;
  for (int round = 0; round < 200; ++round) {
    // Grow: a couple of fresh random clauses per round (wide enough to
    // stay mostly satisfiable for a long streak).
    CnfFormula add = RandomKSat(nv, 2, 3, &rng);
    for (const Clause& c : add.clauses) {
      solver.AddClause(c);
      all.clauses.push_back(c);
    }
    std::vector<Literal> assumptions;
    for (std::uint32_t v = 0; v < nv; ++v) {
      if (rng.Below(8) == 0) assumptions.push_back(Literal{v, rng.Below(2) == 0});
    }
    CnfFormula with_units = all;
    for (Literal a : assumptions) with_units.clauses.push_back({a});
    bool warm = solver.SolveUnderAssumptions(assumptions);
    EXPECT_EQ(warm, SolveDpll(with_units).satisfiable)
        << "round " << round << "\n" << with_units.ToString();
    EXPECT_EQ(warm, SolveCdcl(with_units).satisfiable) << "round " << round;
    dead = dead || !solver.ok();
    if (dead) break;  // Permanently UNSAT: every later verdict is fixed.
  }
  const CdclStats& stats = solver.stats();
  EXPECT_GT(stats.solves, 10u);
  EXPECT_GT(stats.db_reductions, 0u) << "thresholds never triggered: the "
                                        "churn this test exists for never "
                                        "happened";
  EXPECT_GT(stats.learned_deleted, 0u);
  // The kept-gauge is consistent: never more than ever-learned minus
  // deleted.
  EXPECT_LE(stats.learned_kept + stats.learned_deleted,
            stats.learned_clauses);
}

TEST(CdclIncremental, AddVarsGrowsWithoutDisturbingState) {
  CdclSolver solver;
  std::uint32_t x = solver.AddVars(2);
  EXPECT_TRUE(solver.AddClause({Literal{x, true}, Literal{x + 1, true}}));
  EXPECT_TRUE(solver.Solve());
  std::uint32_t y = solver.AddVars(3);
  EXPECT_EQ(y, 2u);
  EXPECT_EQ(solver.num_vars(), 5u);
  EXPECT_TRUE(solver.AddClause({Literal{y + 2, false}}));
  EXPECT_TRUE(solver.Solve());
  EXPECT_FALSE(solver.ValueOf(y + 2));
}

}  // namespace
}  // namespace cqa
