// Incremental-vs-rebuild equivalence: the delta-maintained structures
// (Database block partition, PreparedDatabase indexes, DynamicComponents
// partition, IncrementalSolver verdict cache) must be observationally
// identical to a from-scratch rebuild after ANY sequence of inserts and
// deletes. The 1000-sequence property tests drive random mutation
// sequences through both paths and compare answers, classes, indexes,
// and verified witnesses at every step.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "algo/dynamic_components.h"
#include "api/service.h"
#include "base/rng.h"
#include "data/audit.h"
#include "data/prepared.h"
#include "engine/incremental.h"
#include "gen/workloads.h"
#include "query/eval.h"

namespace cqa {
namespace {

// ---------------------------------------------------------------------
// Canonical (id-free) renderings, comparable across databases that hold
// the same facts under different FactIds/ElementIds.
// ---------------------------------------------------------------------

std::string CanonicalFact(const Database& db, FactId id) {
  return db.FactToString(id);
}

/// The block partition as a sorted list of sorted fact renderings.
std::vector<std::vector<std::string>> CanonicalBlocks(const Database& db) {
  std::vector<std::vector<std::string>> out;
  for (const Block& b : db.blocks()) {
    std::vector<std::string> facts;
    for (FactId f : b.facts) facts.push_back(CanonicalFact(db, f));
    std::sort(facts.begin(), facts.end());
    out.push_back(std::move(facts));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Per-relation fact index as sorted renderings.
std::vector<std::vector<std::string>> CanonicalFactsOf(
    const PreparedDatabase& pdb) {
  std::vector<std::vector<std::string>> out;
  for (RelationId r = 0; r < pdb.schema().NumRelations(); ++r) {
    std::vector<std::string> facts;
    for (FactId f : pdb.FactsOf(r)) {
      facts.push_back(CanonicalFact(pdb.db(), f));
    }
    std::sort(facts.begin(), facts.end());
    out.push_back(std::move(facts));
  }
  return out;
}

/// The component partition as a sorted list of sorted member renderings.
std::vector<std::vector<std::string>> CanonicalComponents(
    const DynamicComponents& comps, const Database& db) {
  std::vector<std::vector<std::string>> out;
  for (const auto& [root, comp] : comps.components()) {
    std::vector<std::string> members;
    for (FactId f : comp.members) members.push_back(CanonicalFact(db, f));
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Structural invariants the delta-maintained structures must uphold:
/// every alive fact is in the block BlockOf claims, every block is
/// findable through the key index, and the prepared per-relation block
/// index matches the partition.
void CheckStructuralInvariants(const Database& db,
                               const PreparedDatabase& pdb) {
  const std::vector<Block>& blocks = db.blocks();
  std::size_t facts_in_blocks = 0;
  for (BlockId b = 0; b < blocks.size(); ++b) {
    ASSERT_FALSE(blocks[b].facts.empty()) << "empty block survived";
    facts_in_blocks += blocks[b].facts.size();
    for (FactId f : blocks[b].facts) {
      ASSERT_TRUE(db.alive(f));
      ASSERT_EQ(db.BlockOf(f), b);
    }
    KeyView key{blocks[b].key.data(),
                static_cast<std::uint32_t>(blocks[b].key.size())};
    ASSERT_EQ(pdb.FindBlock(blocks[b].relation, key), b);
  }
  ASSERT_EQ(facts_in_blocks, db.NumAliveFacts());

  std::multiset<BlockId> indexed;
  for (RelationId r = 0; r < db.schema().NumRelations(); ++r) {
    for (BlockId b : pdb.BlocksOf(r)) {
      ASSERT_EQ(blocks[b].relation, r);
      indexed.insert(b);
    }
  }
  ASSERT_EQ(indexed.size(), blocks.size());
  for (BlockId b = 0; b < blocks.size(); ++b) {
    ASSERT_EQ(indexed.count(b), 1u) << "block missing or duplicated";
  }
}

// ---------------------------------------------------------------------
// Mutation-sequence scaffolding shared by the property tests.
// ---------------------------------------------------------------------

struct SpecPool {
  std::vector<FactSpec> specs;          ///< Distinct candidate facts.
  std::vector<std::size_t> present;     ///< Indices currently in the db.
  std::vector<std::size_t> absent;      ///< Indices currently not.
};

FactSpec SpecOf(const Database& db, FactId id) {
  FactRef fact = db.fact(id);
  FactSpec spec;
  spec.relation = db.schema().Relation(fact.relation).name;
  for (ElementId el : fact.args) spec.args.push_back(db.elements().Name(el));
  return spec;
}

/// A pool of candidate facts drawn from the query's own workload
/// distribution; the first `initial` are present at the start.
SpecPool MakePool(const ConjunctiveQuery& q, std::uint32_t pool_size,
                  std::uint32_t initial, Rng* rng) {
  InstanceParams params;
  params.num_facts = pool_size;
  params.domain_size = 4;
  Database pool = RandomInstance(q, params, rng);
  SpecPool out;
  for (FactId f = 0; f < pool.NumFacts(); ++f) {
    out.specs.push_back(SpecOf(pool, f));
    if (f < initial) {
      out.present.push_back(f);
    } else {
      out.absent.push_back(f);
    }
  }
  return out;
}

Database BuildFromSpecs(const Schema& schema, const SpecPool& pool) {
  Database db(schema);
  for (std::size_t idx : pool.present) {
    const FactSpec& spec = pool.specs[idx];
    db.AddFactNamed(schema.Find(spec.relation), spec.args);
  }
  return db;
}

/// One random mutation step: returns the spec and whether it inserts.
/// Updates the pool's present/absent bookkeeping.
const FactSpec& RandomStep(SpecPool* pool, Rng* rng, bool* is_insert) {
  bool insert = pool->present.empty() ||
                (!pool->absent.empty() && rng->Chance(0.5));
  *is_insert = insert;
  std::vector<std::size_t>& from = insert ? pool->absent : pool->present;
  std::vector<std::size_t>& to = insert ? pool->present : pool->absent;
  std::size_t pick = rng->Below(from.size());
  std::size_t idx = from[pick];
  from.erase(from.begin() + pick);
  to.push_back(idx);
  return pool->specs[idx];
}

// ---------------------------------------------------------------------
// Database + PreparedDatabase delta maintenance basics.
// ---------------------------------------------------------------------

TEST(DatabaseMutation, RemoveFactTombstonesAndMaintainsBlocks) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db(q.schema());
  FactId ab = db.AddFactStr(0, "a b");
  FactId ac = db.AddFactStr(0, "a c");
  FactId bc = db.AddFactStr(0, "b c");
  ASSERT_EQ(db.blocks().size(), 2u);  // Forces the partition.

  Database::RemovedFact removed = db.RemoveFact(ac);
  EXPECT_FALSE(removed.block_removed);
  EXPECT_FALSE(db.alive(ac));
  EXPECT_TRUE(db.alive(ab));
  EXPECT_EQ(db.NumFacts(), 3u);       // Slots stay.
  EXPECT_EQ(db.NumAliveFacts(), 2u);
  EXPECT_EQ(db.blocks().size(), 2u);
  EXPECT_FALSE(db.Contains(db.MaterializeFact(ac)));

  // Removing the last fact of a block swap-removes the block.
  removed = db.RemoveFact(bc);
  EXPECT_TRUE(removed.block_removed);
  EXPECT_EQ(db.blocks().size(), 1u);
  EXPECT_EQ(db.BlockOf(ab), 0u);
  EXPECT_EQ(db.FindBlock(0, db.KeyViewOf(ab)), 0u);

  // Re-adding previously deleted content creates a fresh slot.
  FactId ac2 = db.AddFactStr(0, "a c");
  EXPECT_EQ(ac2, 3u);
  EXPECT_TRUE(db.alive(ac2));
  EXPECT_EQ(db.BlockOf(ac2), db.BlockOf(ab));
  EXPECT_EQ(db.NumAliveFacts(), 2u);
}

TEST(DatabaseMutation, IncrementalInsertAfterPartitionBuiltMatchesLazy) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database lazy(q.schema());
  Database incremental(q.schema());
  const char* rows[] = {"a b", "a c", "b d", "c a", "b e", "a d"};
  (void)incremental.blocks();  // Force early: every insert is incremental.
  for (const char* row : rows) {
    lazy.AddFactStr(0, row);
    incremental.AddFactStr(0, row);
  }
  EXPECT_EQ(CanonicalBlocks(lazy), CanonicalBlocks(incremental));
}

// ---------------------------------------------------------------------
// Property: delta-maintained indexes == from-scratch rebuild, and the
// dynamic component partition == a fresh partition, across 1000 random
// insert/delete sequences (the first half of the ISSUE's equivalence
// bar; the solve-level half follows below).
// ---------------------------------------------------------------------

TEST(IncrementalProperty, IndexesAndComponentsMatchRebuild) {
  const char* kQueries[] = {
      "R(x | y) R(y | z)",
      "R(x, u | x, y) R(u, y | x, z)",
      "R(x | y, z) R(z | x, y)",
      "R(x | y) R(y | y)",
  };
  const int kSequences = 1000;
  const int kSteps = 10;
  for (int seq = 0; seq < kSequences; ++seq) {
    auto q = ParseQuery(kQueries[seq % 4]);
    Rng rng(0x1234000 + seq);
    SpecPool pool = MakePool(q, 40, 20, &rng);

    Database db = BuildFromSpecs(q.schema(), pool);
    PreparedDatabase pdb(db);
    DynamicComponents comps(q, pdb);

    for (int step = 0; step < kSteps; ++step) {
      bool is_insert = false;
      const FactSpec& spec = RandomStep(&pool, &rng, &is_insert);
      RelationId rel = db.schema().Find(spec.relation);
      if (is_insert) {
        FactId id = db.AddFactNamed(rel, spec.args);
        pdb.ApplyInsert(id);
        comps.OnInsert(id);
      } else {
        Fact fact;
        fact.relation = rel;
        for (const std::string& name : spec.args) {
          fact.args.push_back(db.elements().Find(name));
        }
        FactId id = db.FindFact(fact);
        ASSERT_NE(id, Database::kNoFact);
        Database::RemovedFact removed = db.RemoveFact(id);
        pdb.ApplyRemove(id, removed);
        comps.OnRemove(id);
      }

      ASSERT_NO_FATAL_FAILURE(CheckStructuralInvariants(db, pdb))
          << "seq " << seq << " step " << step;

      // Deep audit: every delta-maintained structure against a fresh
      // re-derivation (data/audit.h).
      AuditReport audit = AuditDatabase(db);
      audit.Merge(AuditPrepared(pdb));
      audit.Merge(AuditComponents(q, pdb, comps));
      ASSERT_TRUE(audit.ok())
          << audit.ToString() << "seq " << seq << " step " << step;

      Database fresh = BuildFromSpecs(q.schema(), pool);
      PreparedDatabase fresh_pdb(fresh);
      ASSERT_EQ(CanonicalBlocks(db), CanonicalBlocks(fresh))
          << "seq " << seq << " step " << step;
      ASSERT_EQ(CanonicalFactsOf(pdb), CanonicalFactsOf(fresh_pdb))
          << "seq " << seq << " step " << step;

      DynamicComponents fresh_comps(q, fresh_pdb);
      ASSERT_EQ(CanonicalComponents(comps, db),
                CanonicalComponents(fresh_comps, fresh))
          << "seq " << seq << " step " << step;

      // Fingerprints must agree fact-content-wise with the rebuild: the
      // multiset of fingerprints is the cache key space.
      std::multiset<std::uint64_t> a, b;
      for (const auto& [root, comp] : comps.components()) {
        a.insert(comp.fingerprint.sum ^ comp.fingerprint.xr);
      }
      for (const auto& [root, comp] : fresh_comps.components()) {
        b.insert(comp.fingerprint.sum ^ comp.fingerprint.xr);
      }
      ASSERT_EQ(a, b) << "seq " << seq << " step " << step;
    }
  }
}

// ---------------------------------------------------------------------
// Property: Service-level delta solves == from-scratch rebuild solves
// (answers, classes, verified witnesses), across 1000 random
// insert/delete sequences, covering dispatched and forced backends.
// ---------------------------------------------------------------------

TEST(IncrementalProperty, DeltaSolvesMatchRebuildSolves) {
  struct Setup {
    const char* query;
    const char* forced;  // nullptr: dichotomy dispatch.
  };
  const Setup kSetups[] = {
      {"R(x | y) R(y | z)", nullptr},            // cert2
      {"R(x, u | x, y) R(u, y | x, z)", nullptr},
      {"R(x | y, z) R(z | x, y)", nullptr},
      {"R(x | y) R(y | y)", nullptr},            // trivial (explains)
      {"R(x | y) R(y | z)", "exhaustive"},       // witness-bearing
      {"R(x | y) R(y | z)", "sat"},              // witness-bearing
      {"R(x | y, x) R(y | x, u)", "exhaustive"},
      {"R(x | y, z) R(z | x, y)", "sat"},
  };
  const int kSequences = 1000;
  const int kSteps = 8;
  std::uint64_t total_cached = 0;
  std::uint64_t total_resolved = 0;
  for (int seq = 0; seq < kSequences; ++seq) {
    const Setup& setup = kSetups[seq % 8];
    Service service;
    CompileOptions copts;
    if (setup.forced != nullptr) copts.forced_backend = setup.forced;
    StatusOr<CompiledQuery> q = service.Compile(setup.query, copts);
    ASSERT_TRUE(q.ok()) << q.status().ToString();

    Rng rng(0xABC9000 + seq);
    SpecPool pool = MakePool(q->query(), 36, 18, &rng);
    ASSERT_TRUE(service
                    .RegisterDatabase("db",
                                      BuildFromSpecs(q->query().schema(),
                                                     pool))
                    .ok());

    for (int step = 0; step < kSteps; ++step) {
      bool is_insert = false;
      const FactSpec& spec = RandomStep(&pool, &rng, &is_insert);
      MutationStats stats;
      Status applied =
          is_insert ? service.InsertFacts("db", {spec}, &stats)
                    : service.DeleteFacts("db", {spec}, &stats);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
      ASSERT_EQ(stats.applied, 1u);

      StatusOr<SolveReport> delta = service.Solve(*q, "db");
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      EXPECT_TRUE(delta->incremental);

      // Deep audit of everything the mutation + solve delta-patched,
      // through the service's own entry point.
      StatusOr<AuditReport> audit = service.AuditDatabase("db");
      ASSERT_TRUE(audit.ok()) << audit.status().ToString();
      ASSERT_TRUE(audit->ok())
          << audit->ToString() << "seq " << seq << " step " << step;
      EXPECT_EQ(delta->components_cached + delta->components_resolved,
                delta->components_total);
      total_cached += delta->components_cached;
      total_resolved += delta->components_resolved;

      Database fresh = BuildFromSpecs(q->query().schema(), pool);
      StatusOr<SolveReport> rebuild = service.Solve(*q, fresh);
      ASSERT_TRUE(rebuild.ok()) << rebuild.status().ToString();
      EXPECT_FALSE(rebuild->incremental);

      ASSERT_EQ(delta->certain, rebuild->certain)
          << setup.query << " seq " << seq << " step " << step << "\n"
          << fresh.ToString();
      EXPECT_EQ(delta->query_class, rebuild->query_class);
      EXPECT_EQ(delta->algorithm, rebuild->algorithm);
      EXPECT_EQ(delta->num_facts, rebuild->num_facts);
      EXPECT_EQ(delta->num_blocks, rebuild->num_blocks);

      // Witness parity: both paths explain (or neither does), and every
      // witness verifies against its own database from first principles.
      ASSERT_EQ(delta->witness.has_value(), rebuild->witness.has_value())
          << setup.query << " seq " << seq << " step " << step;
      if (delta->witness.has_value()) {
        Status ok = VerifyWitness(q->query(),
                                  *delta->witness->database(),
                                  *delta->witness);
        ASSERT_TRUE(ok.ok()) << ok.ToString() << "\nseq " << seq;
      }
      if (rebuild->witness.has_value()) {
        Status ok = VerifyWitness(q->query(), fresh, *rebuild->witness);
        ASSERT_TRUE(ok.ok()) << ok.ToString() << "\nseq " << seq;
      }
    }
  }
  // The cache must actually be doing work across the run. (These dense
  // random instances often collapse into one big q-connected component,
  // where a single-fact delta legitimately dirties most of the database;
  // exact per-solve reuse accounting is pinned by
  // IncrementalSolverTest.UntouchedComponentsAreCached below.)
  EXPECT_GT(total_cached, 1000u);
}

// ---------------------------------------------------------------------
// Targeted reuse accounting on a hand-built two-component database.
// ---------------------------------------------------------------------

TEST(IncrementalSolverTest, UntouchedComponentsAreCached) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  Database db(q->query().schema());
  // Component 1: a -> b -> c chain with a blockmate (inconsistent).
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b d");
  // Component 2: disjoint u -> v chain.
  db.AddFactStr(0, "u v");
  db.AddFactStr(0, "v w");
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  StatusOr<SolveReport> first = service.Solve(*q, "db");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->incremental);
  EXPECT_EQ(first->components_total, 2u);
  EXPECT_EQ(first->components_resolved, 2u);  // Cold cache.
  EXPECT_EQ(first->components_cached, 0u);

  // An unchanged re-solve is all cache hits.
  StatusOr<SolveReport> again = service.Solve(*q, "db");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->components_cached, 2u);
  EXPECT_EQ(again->components_resolved, 0u);

  // Touch only component 2: component 1's verdict is reused.
  ASSERT_TRUE(service.InsertFacts("db", {{"R", {"v", "x"}}}).ok());
  StatusOr<SolveReport> delta = service.Solve(*q, "db");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->components_total, 2u);
  EXPECT_EQ(delta->components_cached, 1u);
  EXPECT_EQ(delta->components_resolved, 1u);

  // Deleting the new fact restores component 2's previous fingerprint:
  // everything is cached again.
  ASSERT_TRUE(service.DeleteFacts("db", {{"R", {"v", "x"}}}).ok());
  StatusOr<SolveReport> restored = service.Solve(*q, "db");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->components_cached, 2u);
  EXPECT_EQ(restored->components_resolved, 0u);
}

// ---------------------------------------------------------------------
// Warm per-component SAT sessions vs the materialized cold path.
// ---------------------------------------------------------------------

TEST(IncrementalSolverTest, WarmSatSessionsMatchColdPathOver1000Steps) {
  // Two services solving the same 1000-step mutation sequence through the
  // sat backend: one with warm per-component CDCL sessions (solvers keep
  // learned clauses across mutations; stale blocks retract via
  // activation-literal units), one with sessions disabled (every
  // component solve materializes a sub-database and encodes from
  // scratch). Verdicts and witness validity must agree at every step —
  // the whole point of the encoding's diff-against-current-membership
  // discipline is that warmth is a pure optimization. Aggressive
  // compaction on the warm service routes the sequence through
  // ApplyRemap's var-pinning path too.
  ServiceOptions warm_opts;
  warm_opts.compact_dead_ratio = 0.3;
  warm_opts.compact_min_slots = 8;
  ServiceOptions cold_opts;
  cold_opts.warm_sat_solvers = false;
  Service warm(warm_opts);
  Service cold(cold_opts);
  CompileOptions copts;
  copts.forced_backend = "sat";
  StatusOr<CompiledQuery> qw = warm.Compile("R(x | y) R(y | z)", copts);
  StatusOr<CompiledQuery> qc = cold.Compile("R(x | y) R(y | z)", copts);
  ASSERT_TRUE(qw.ok() && qc.ok());

  Rng rng(0xFEED5EED);
  SpecPool pool = MakePool(qw->query(), 48, 24, &rng);
  Database seed = BuildFromSpecs(qw->query().schema(), pool);
  ASSERT_TRUE(warm.RegisterDatabase("db", seed).ok());
  ASSERT_TRUE(cold.RegisterDatabase("db", std::move(seed)).ok());

  const int kSteps = 1000;
  for (int step = 0; step < kSteps; ++step) {
    bool is_insert = false;
    const FactSpec& spec = RandomStep(&pool, &rng, &is_insert);
    for (Service* s : {&warm, &cold}) {
      Status applied = is_insert ? s->InsertFacts("db", {spec})
                                 : s->DeleteFacts("db", {spec});
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }

    StatusOr<SolveReport> w = warm.Solve(*qw, "db");
    StatusOr<SolveReport> c = cold.Solve(*qc, "db");
    ASSERT_TRUE(w.ok() && c.ok());
    ASSERT_EQ(w->certain, c->certain) << "step " << step;
    EXPECT_TRUE(w->sat_warm);
    EXPECT_FALSE(c->sat_warm);
    ASSERT_EQ(w->witness.has_value(), c->witness.has_value())
        << "step " << step;
    if (w->witness.has_value()) {
      Status ok = VerifyWitness(qw->query(), *w->witness->database(),
                                *w->witness);
      ASSERT_TRUE(ok.ok()) << ok.ToString() << "\nstep " << step;
    }
    // Periodic deep audit + forced compaction: the warm session must
    // survive arbitrary FactId remaps mid-sequence.
    if (step % 97 == 96) {
      ASSERT_TRUE(warm.CompactDatabase("db").ok());
      StatusOr<AuditReport> audit = warm.AuditDatabase("db");
      ASSERT_TRUE(audit.ok() && audit->ok())
          << "step " << step << "\n"
          << (audit.ok() ? audit->ToString() : audit.status().ToString());
      StatusOr<SolveReport> after = warm.Solve(*qw, "db");
      ASSERT_TRUE(after.ok());
      ASSERT_EQ(after->certain, c->certain) << "post-compact step " << step;
    }
  }

  // The warm machinery demonstrably ran: sessions solved, re-solved warm
  // solvers, and retracted stale block clauses as the database churned.
  ServiceStats stats = warm.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  const ServiceStats::DatabaseStats& d = stats.databases[0];
  EXPECT_GT(d.sat.solves, 0u);
  EXPECT_GT(d.sat.warm_solves, 0u);
  EXPECT_GT(d.sat.clauses_retracted, 0u);
  EXPECT_GT(d.sat_solvers.entries, 0u);
  ServiceStats cold_stats = cold.Stats();
  EXPECT_EQ(cold_stats.databases[0].sat.solves, 0u);
}

// ---------------------------------------------------------------------
// Mutation API error paths (all-or-nothing semantics).
// ---------------------------------------------------------------------

TEST(MutationApiTest, ValidatesBeforeApplying) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  Database db(q->query().schema());
  db.AddFactStr(0, "a b");
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  // Unknown database.
  EXPECT_EQ(service.InsertFacts("nope", {{"R", {"a", "b"}}}).code(),
            StatusCode::kNotFound);

  // Unknown relation: nothing applied even though the first spec is fine.
  MutationStats stats;
  Status bad = service.InsertFacts(
      "db", {{"R", {"x", "y"}}, {"S", {"x", "y"}}}, &stats);
  EXPECT_EQ(bad.code(), StatusCode::kSchemaMismatch);
  EXPECT_EQ(stats.applied, 0u);
  StatusOr<SolveReport> report = service.Solve(*q, "db");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_facts, 1u);  // "R(x y)" was not inserted.

  // Arity mismatch.
  EXPECT_EQ(service.InsertFacts("db", {{"R", {"a", "b", "c"}}}).code(),
            StatusCode::kSchemaMismatch);

  // Deleting a missing fact (including never-interned element names).
  EXPECT_EQ(service.DeleteFacts("db", {{"R", {"a", "zzz"}}}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.DeleteFacts("db", {{"R", {"b", "a"}}}).code(),
            StatusCode::kNotFound);

  // The same fact twice in one delete batch.
  EXPECT_EQ(service
                .DeleteFacts("db", {{"R", {"a", "b"}}, {"R", {"a", "b"}}})
                .code(),
            StatusCode::kInvalidArgument);

  // Duplicate insert is a counted no-op.
  MutationStats dup;
  ASSERT_TRUE(service.InsertFacts("db", {{"R", {"a", "b"}}}, &dup).ok());
  EXPECT_EQ(dup.applied, 0u);
  EXPECT_EQ(dup.ignored_duplicates, 1u);

  // Empty database after deleting everything: not certain, empty repair.
  ASSERT_TRUE(service.DeleteFacts("db", {{"R", {"a", "b"}}}).ok());
  StatusOr<SolveReport> empty = service.Solve(*q, "db");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->certain);
  EXPECT_EQ(empty->num_facts, 0u);
  EXPECT_EQ(empty->components_total, 0u);
}

}  // namespace
}  // namespace cqa
