// Tests for the workload generators.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "gen/workloads.h"
#include "query/eval.h"
#include "query/query.h"

namespace cqa {
namespace {

TEST(Workloads, RandomInstanceDeterministic) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  InstanceParams params;
  Rng r1(7);
  Rng r2(7);
  Database a = RandomInstance(q, params, &r1);
  Database b = RandomInstance(q, params, &r2);
  ASSERT_EQ(a.NumFacts(), b.NumFacts());
  for (FactId f = 0; f < a.NumFacts(); ++f) {
    EXPECT_EQ(a.FactToString(f), b.FactToString(f));
  }
}

TEST(Workloads, RandomInstanceHitsRequestedSize) {
  auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  InstanceParams params;
  params.num_facts = 50;
  Rng rng(9);
  Database db = RandomInstance(q, params, &rng);
  EXPECT_EQ(db.NumFacts(), 50u);
}

TEST(Workloads, BlockmateBiasCreatesInconsistency) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  InstanceParams params;
  params.num_facts = 60;
  params.blockmate_bias = 0.6;
  Rng rng(11);
  Database db = RandomInstance(q, params, &rng);
  EXPECT_FALSE(db.IsConsistent());
  EXPECT_LT(db.blocks().size(), db.NumFacts());
}

TEST(Workloads, PatternBiasCreatesSolutions) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  InstanceParams params;
  params.num_facts = 40;
  params.domain_size = 3;
  params.pattern_bias = 0.9;
  params.blockmate_bias = 0.0;
  Rng rng(13);
  Database db = RandomInstance(q, params, &rng);
  EXPECT_FALSE(ComputeSolutions(q, db).pairs.empty());
}

TEST(Workloads, ChainInstanceGrowsWithLinks) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Rng r1(17), r2(17);
  Database small = ChainInstance(q, 5, 0.5, 0.5, &r1);
  Database large = ChainInstance(q, 25, 0.5, 0.5, &r2);
  EXPECT_GT(large.NumFacts(), small.NumFacts());
}

TEST(Workloads, ChainInstanceHasSolutions) {
  auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  Rng rng(19);
  Database db = ChainInstance(q, 10, 0.5, 0.4, &rng);
  EXPECT_FALSE(ComputeSolutions(q, db).pairs.empty());
}

TEST(Workloads, ChainInstanceDeterministic) {
  // Same seed -> bit-identical database (fact order, names, blocks);
  // different seed -> (practically always) a different instance. The
  // differential and property harnesses lean on this to replay failures.
  for (const char* text :
       {"R(x | y) R(y | z)", "R(x, u | x, y) R(u, y | x, z)"}) {
    auto q = ParseQuery(text);
    Rng r1(23), r2(23);
    Database a = ChainInstance(q, 12, 0.5, 0.4, &r1);
    Database b = ChainInstance(q, 12, 0.5, 0.4, &r2);
    ASSERT_EQ(a.NumFacts(), b.NumFacts()) << text;
    for (FactId f = 0; f < a.NumFacts(); ++f) {
      EXPECT_EQ(a.FactToString(f), b.FactToString(f)) << text;
    }
    EXPECT_EQ(a.ToString(), b.ToString()) << text;

    Rng r3(24);
    Database c = ChainInstance(q, 12, 0.5, 0.4, &r3);
    EXPECT_NE(a.ToString(), c.ToString()) << text;
  }
}

TEST(Workloads, InstanceParamsDomainSizeOne) {
  // A one-element domain collapses every tuple onto the same constants:
  // generation must terminate (attempt cap) with the few distinct facts
  // that exist, not loop hunting for num_facts of them.
  auto q = ParseQuery("R(x | y) R(y | z)");
  InstanceParams params;
  params.num_facts = 30;
  params.domain_size = 1;
  Rng rng(29);
  Database db = RandomInstance(q, params, &rng);
  EXPECT_GE(db.NumFacts(), 1u);
  EXPECT_LT(db.NumFacts(), 30u);
  for (FactId f = 0; f < db.NumFacts(); ++f) {
    EXPECT_TRUE(db.alive(f));
  }
  // Still a well-formed database: partition and repair count behave.
  EXPECT_GE(db.blocks().size(), 1u);
  EXPECT_GE(db.CountRepairs(), 1.0);
}

TEST(Workloads, InstanceParamsZeroFacts) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  InstanceParams params;
  params.num_facts = 0;
  Rng rng(31);
  Database db = RandomInstance(q, params, &rng);
  EXPECT_EQ(db.NumFacts(), 0u);
  EXPECT_EQ(db.NumAliveFacts(), 0u);
  EXPECT_TRUE(db.blocks().empty());
  EXPECT_TRUE(db.IsConsistent());
  EXPECT_EQ(db.CountRepairs(), 1.0);  // The empty repair.
  EXPECT_TRUE(ComputeSolutions(q, db).pairs.empty());
}

}  // namespace
}  // namespace cqa
