// Tests for the syntactic classification conditions (Theorems 4.2 / 6.1,
// 2way-determinedness) and the Koutris–Wijsen attack-graph substrate.

#include <gtest/gtest.h>

#include "classify/attack_graph.h"
#include "classify/conditions.h"
#include "query/query.h"

namespace cqa {
namespace {

constexpr const char* kQ1 = "R(x, u | x, v) R(v, y | u, y)";
constexpr const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";
constexpr const char* kQ3 = "R(x | y) R(y | z)";
constexpr const char* kQ4 = "R(x, x | u, v) R(x, y | u, x)";
constexpr const char* kQ5 = "R(x | y, x) R(y | x, u)";
constexpr const char* kQ6 = "R(x | y, z) R(z | x, y)";
constexpr const char* kQ7 =
    "R(x1, x2, x3, y1, y1, y2, y3, z1, z2, z3 | z4, z4, z4, z4) "
    "R(x3, x1, x2, y3, y1, y1, y2, z2, z3, z4 | z1, z2, z3, z4)";

TEST(Conditions, Q1SatisfiesBothHardnessConditions) {
  auto q = ParseQuery(kQ1);
  EXPECT_TRUE(Theorem42Condition1(q));
  EXPECT_TRUE(Theorem42Condition2(q));
  EXPECT_FALSE(Is2WayDetermined(q));
}

TEST(Conditions, Q2IsTwoWayDetermined) {
  auto q = ParseQuery(kQ2);
  EXPECT_TRUE(Theorem42Condition1(q));
  EXPECT_FALSE(Theorem42Condition2(q));
  EXPECT_TRUE(Is2WayDetermined(q));
}

TEST(Conditions, Q3FailsCondition1ViaSharedVars) {
  auto q = ParseQuery(kQ3);
  EXPECT_FALSE(Theorem42Condition1(q));
  EXPECT_TRUE(Theorem61Applies(q));
  EXPECT_FALSE(Is2WayDetermined(q));
}

TEST(Conditions, Q4FailsCondition1ViaKeyInclusion) {
  auto q = ParseQuery(kQ4);
  EXPECT_FALSE(Theorem42Condition1(q));
  EXPECT_TRUE(Theorem61Applies(q));
}

TEST(Conditions, Q5Q6Q7AreTwoWayDetermined) {
  for (const char* text : {kQ5, kQ6, kQ7}) {
    auto q = ParseQuery(text);
    EXPECT_TRUE(Is2WayDetermined(q)) << text;
    EXPECT_TRUE(Theorem42Condition1(q)) << text;
    EXPECT_FALSE(Theorem42Condition2(q)) << text;
  }
}

TEST(Conditions, TwoWayDeterminedAndCondition1AreAligned) {
  // 2way-determined implies condition (1) holds and condition (2) fails
  // (footnote 3 of the paper).
  for (const char* text : {kQ2, kQ5, kQ6, kQ7}) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(Is2WayDetermined(q));
    EXPECT_TRUE(Theorem42Condition1(q)) << text;
    EXPECT_FALSE(Theorem42Condition2(q)) << text;
    EXPECT_FALSE(Theorem61Applies(q)) << text;
  }
}

TEST(Conditions, Theorem61HypothesisIsDirectional) {
  // key(A) = {x} is included in key(B) = {x, y}: hypothesis holds for AB
  // but its swap needs the symmetric check.
  auto q = ParseQuery("R(x, x | y) R(x, y | z)");
  EXPECT_TRUE(Theorem61Hypothesis(q));
  EXPECT_FALSE(Theorem61Hypothesis(q.Swapped()));
  EXPECT_TRUE(Theorem61Applies(q));
  EXPECT_TRUE(Theorem61Applies(q.Swapped()));
}

TEST(Conditions, SharedVarsMask) {
  auto q = ParseQuery(kQ2);
  VarMask shared = SharedVars(q);
  int bits = 0;
  for (VarId v = 0; v < q.NumVars(); ++v) {
    if (shared & (VarMask{1} << v)) ++bits;
  }
  EXPECT_EQ(bits, 3);  // x, u, y.
}

// --- Attack graphs ----------------------------------------------------------

TEST(AttackGraph, FdClosureSimple) {
  auto q = ParseQuery("R1(x | y) R2(y | z)");
  // closure({x}) under both FDs: x -> y (atom 0), then y -> z (atom 1).
  VarMask start = q.KeyVarsOf(0);
  VarMask closure = FdClosure(q, start, {0, 1});
  EXPECT_EQ(closure, q.VarsOf(0) | q.VarsOf(1));
}

TEST(AttackGraph, PathQueryIsAcyclic) {
  // R1(x|y) R2(y|z): R1 attacks R2 (y not in closure of {x} w.r.t. R2's
  // FD y->z... closure of {x} under {key(R2)->vars(R2)} = {x}; y shared,
  // not in closure -> attack. R2 attacks R1? closure of {y} under
  // {x->x,y} = {y}; shared var y... y in closure -> no witness.
  auto q = ParseQuery("R1(x | y) R2(y | z)");
  AttackGraph g = BuildAttackGraph(q);
  EXPECT_TRUE(g.Attacks(0, 1));
  EXPECT_FALSE(g.Attacks(1, 0));
  EXPECT_EQ(ClassifySjf(q), SjfComplexity::kFirstOrder);
}

TEST(AttackGraph, SymmetricCycleWeak) {
  // R1(x|y) R2(y|x): mutual attacks; K(q) |= key(R1) -> key(R2)? closure
  // of {x} under all FDs = {x,y}: contains key(R2) = {y} -> weak. Same the
  // other way: weak cycle -> PTime, not FO.
  auto q = ParseQuery("R1(x | y) R2(y | x)");
  AttackGraph g = BuildAttackGraph(q);
  EXPECT_TRUE(g.Attacks(0, 1));
  EXPECT_TRUE(g.Attacks(1, 0));
  EXPECT_FALSE(g.StrongAttack(0, 1));
  EXPECT_FALSE(g.StrongAttack(1, 0));
  EXPECT_EQ(ClassifySjf(q), SjfComplexity::kPTime);
}

TEST(AttackGraph, StrongCycleIsHard) {
  // sjf(q1) with q1 = R(x,u|x,v) R(v,y|u,y): the Kolaitis–Pema hard case.
  auto q = ParseQuery("R1(x, u | x, v) R2(v, y | u, y)");
  EXPECT_EQ(ClassifySjf(q), SjfComplexity::kCoNPComplete);
}

TEST(AttackGraph, SjfQ2IsPolynomial) {
  // The paper notes certain(sjf(q2)) is in PTime although q2 is hard.
  auto q = ParseQuery("R1(x, u | x, y) R2(u, y | x, z)");
  EXPECT_NE(ClassifySjf(q), SjfComplexity::kCoNPComplete);
}

TEST(AttackGraph, DisconnectedAtomsDoNotAttack) {
  auto q = ParseQuery("R1(x | y) R2(u | v)");
  AttackGraph g = BuildAttackGraph(q);
  EXPECT_FALSE(g.Attacks(0, 1));
  EXPECT_FALSE(g.Attacks(1, 0));
  EXPECT_EQ(ClassifySjf(q), SjfComplexity::kFirstOrder);
}

TEST(AttackGraph, ThreeAtomPath) {
  auto q = ParseQuery("R1(x | y) R2(y | z) R3(z | w)");
  AttackGraph g = BuildAttackGraph(q);
  // R1 attacks R2 and (transitively through the witness path) R3.
  EXPECT_TRUE(g.Attacks(0, 1));
  EXPECT_TRUE(g.Attacks(0, 2));
  EXPECT_FALSE(g.Attacks(2, 0));
  EXPECT_EQ(ClassifySjf(q), SjfComplexity::kFirstOrder);
}

TEST(AttackGraph, SjfOfQ5IsPolynomialOrBetter) {
  auto q = ParseQuery("R1(x | y, x) R2(y | x, u)");
  EXPECT_NE(ClassifySjf(q), SjfComplexity::kCoNPComplete);
}

}  // namespace
}  // namespace cqa
