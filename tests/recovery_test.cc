// Crash-point recovery matrix (label: recovery).
//
// The durability contract under test: a process may die at *any* I/O
// operation — before it, or tearing it half-written — and recovery must
// rebuild a state that (a) passes the deep invariant audit, (b) equals
// some acknowledged prefix of the mutation history (exactly the
// acknowledged prefix under FsyncPolicy::kEveryBatch), and (c) answers
// certain(q) — witness included — identically to a never-crashed service
// holding that same prefix. Corrupt or torn WAL tails must be detected
// by checksum and truncated, never silently replayed.
//
// The harness runs a seeded mutation program (>= 500 batches) against a
// durable Service next to a shadow model (the plain in-memory fact
// history), dry-runs it once to count the I/O ops W, then for each crash
// point 0..W-1 and each crash mode: re-runs the program with the fault
// installed, "reboots" (ClearFault + fresh Service), recovers, checks
// (a)-(c), replays the rest of the program on the recovered service, and
// checks final-state parity again. The default run samples the crash
// points with a stride so the main-CI shard stays fast;
// CQA_RECOVERY_FULL=1 (nightly) sweeps every point.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "api/witness.h"
#include "base/rng.h"
#include "store/io.h"

namespace cqa {
namespace {

constexpr const char* kQueryText = "R(x | y) R(y | z)";
constexpr const char* kDbName = "crashdb";

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "cqa_recovery_test_" + name;
  EXPECT_TRUE(store::RemoveDirRecursive(dir).ok());
  return dir;
}

Schema OneRelationSchema() {
  Schema schema;
  schema.AddRelation("R", 2, 1);
  return schema;
}

// Canonical set form of a fact list, for state equality.
using FactSet = std::set<std::pair<std::string, std::vector<std::string>>>;

FactSet ToSet(const std::vector<FactSpec>& facts) {
  FactSet out;
  for (const FactSpec& f : facts) out.insert({f.relation, f.args});
  return out;
}

// One batch of the seeded program.
struct ProgramBatch {
  bool is_insert = true;
  std::vector<FactSpec> facts;
};

// The deterministic mutation program plus the shadow state after each
// batch: shadow_after[k] is the fact set once batches 0..k-1 applied.
struct Program {
  std::vector<ProgramBatch> batches;
  std::vector<FactSet> shadow_after;  // Size batches.size() + 1.
};

// Builds a >= `n`-batch insert/delete program over a small dense domain
// (so facts collide into shared blocks and q-connected components) with
// every delete naming facts alive in the shadow at that point.
Program BuildProgram(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Program program;
  FactSet shadow;
  program.shadow_after.push_back(shadow);
  auto element = [&](std::uint64_t i) { return "e" + std::to_string(i); };
  while (program.batches.size() < n) {
    ProgramBatch batch;
    bool can_delete = !shadow.empty();
    batch.is_insert = !can_delete || rng.Below(10) < 6;
    if (batch.is_insert) {
      std::uint64_t count = 1 + rng.Below(3);
      for (std::uint64_t i = 0; i < count; ++i) {
        batch.facts.push_back(
            {"R", {element(rng.Below(12)), element(rng.Below(12))}});
      }
      for (const FactSpec& f : batch.facts) shadow.insert({f.relation, f.args});
    } else {
      // Pick 1-2 distinct currently-alive facts.
      std::uint64_t count = std::min<std::uint64_t>(1 + rng.Below(2),
                                                    shadow.size());
      std::set<std::uint64_t> picked;
      while (picked.size() < count) picked.insert(rng.Below(shadow.size()));
      for (std::uint64_t index : picked) {
        auto it = shadow.begin();
        std::advance(it, index);
        batch.facts.push_back({it->first, it->second});
      }
      for (const FactSpec& f : batch.facts) shadow.erase({f.relation, f.args});
    }
    program.batches.push_back(std::move(batch));
    program.shadow_after.push_back(shadow);
  }
  return program;
}

ServiceOptions DurableOptions(const std::string& dir,
                              store::FsyncPolicy fsync) {
  ServiceOptions options;
  options.durability.enabled = true;
  options.durability.data_dir = dir;
  options.durability.fsync = fsync;
  options.durability.fsync_interval = 8;
  // Short interval so the matrix crosses many snapshot writes (the
  // riskiest I/O sequence: atomic write + prune + WAL reset).
  options.durability.snapshot_interval = 64;
  return options;
}

Status ApplyBatch(Service& service, const ProgramBatch& batch) {
  return batch.is_insert ? service.InsertFacts(kDbName, batch.facts)
                         : service.DeleteFacts(kDbName, batch.facts);
}

// Runs the program against a fresh durable service until the first
// failure (the installed fault firing) and returns the number of
// *acknowledged* batches. Solves periodically so snapshots carry a
// populated verdict cache. `service` comes back as the crashed process:
// destroy it without expecting anything more from it.
std::size_t RunUntilCrash(Service& service, const CompiledQuery& q,
                          const Program& program) {
  if (!service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok()) {
    return 0;
  }
  std::size_t acked = 0;
  for (const ProgramBatch& batch : program.batches) {
    if (!ApplyBatch(service, batch).ok()) break;
    ++acked;
    if (acked % 97 == 0) {
      (void)service.Solve(q, kDbName);  // Warm the verdict cache.
    }
  }
  return acked;
}

// The parity oracle: a never-crashed, durability-free service holding
// exactly `facts`. Certain answers and verified witnesses against it are
// the ground truth for the recovered service.
void ExpectSolveParity(Service& recovered, const FactSet& facts,
                       const std::string& context) {
  Service oracle;
  StatusOr<CompiledQuery> q = oracle.Compile(kQueryText);
  ASSERT_TRUE(q.ok());
  Database db(OneRelationSchema());
  for (const auto& [relation, args] : facts) {
    ASSERT_EQ(relation, "R");
    db.AddFactStr(0, args[0] + " " + args[1]);
  }
  StatusOr<SolveReport> expected = oracle.Solve(*q, db);
  ASSERT_TRUE(expected.ok()) << context << ": " << expected.status().ToString();

  StatusOr<CompiledQuery> rq = recovered.Compile(kQueryText);
  ASSERT_TRUE(rq.ok());
  StatusOr<SolveReport> got = recovered.Solve(*rq, kDbName);
  ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
  EXPECT_EQ(got->certain, expected->certain) << context;
  // Witness parity: the recovered service must produce one exactly when
  // the oracle does (cert2 explains whenever there is anything to
  // choose; an empty database has no repair choices and no witness).
  ASSERT_EQ(got->witness.has_value(), expected->witness.has_value()) << context;
  if (!got->certain && got->witness.has_value()) {
    // The witness must verify against the *recovered* database from
    // first principles — a recovered-but-wrong fact store cannot pass.
    StatusOr<std::vector<FactSpec>> listed = recovered.ListFacts(kDbName);
    ASSERT_TRUE(listed.ok());
    Database recovered_db(OneRelationSchema());
    for (const FactSpec& f : *listed) {
      recovered_db.AddFactStr(0, f.args[0] + " " + f.args[1]);
    }
    // The report's witness points into the service's database; re-solve
    // on the rebuilt copy to get a witness bound to it, then verify.
    StatusOr<SolveReport> rebuilt = oracle.Solve(*q, recovered_db);
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_TRUE(rebuilt->witness.has_value()) << context;
    EXPECT_TRUE(
        VerifyWitness(q->query(), recovered_db, *rebuilt->witness).ok())
        << context;
  }
}

// One crash-point run: crash at `crash_at` in `mode`, reboot, recover,
// audit, check prefix + solve parity, finish the program, check again.
void RunCrashPoint(const Program& program, std::uint64_t crash_at,
                   store::FaultPlan::Mode mode, store::FsyncPolicy fsync,
                   const std::string& dir_tag) {
  std::string context = dir_tag + " crash@" + std::to_string(crash_at) +
                        (mode == store::FaultPlan::Mode::kBeforeOp
                             ? " before-op"
                             : " torn-write");
  std::string dir = FreshDir(dir_tag);
  std::size_t acked = 0;
  {
    Service service(DurableOptions(dir, fsync));
    StatusOr<CompiledQuery> q = service.Compile(kQueryText);
    ASSERT_TRUE(q.ok());
    store::FaultPlan plan;
    plan.crash_at_op = crash_at;
    plan.mode = mode;
    store::InstallFault(plan);
    acked = RunUntilCrash(service, *q, program);
    EXPECT_TRUE(store::FaultTripped()) << context << ": fault never fired";
    // The service dies here with the WAL file unflushed — exactly like a
    // process that never got to exit cleanly.
  }
  store::ClearFault();  // Reboot.

  Service service(DurableOptions(dir, fsync));
  Status recovered = service.RecoverDatabase(kDbName);
  if (!recovered.ok()) {
    // Only legitimate if the crash predated the first durable state
    // (RegisterDatabase's initial snapshot never landed).
    EXPECT_EQ(recovered.code(), StatusCode::kNotFound) << context;
    EXPECT_EQ(acked, 0u) << context << ": acknowledged batches lost wholesale";
    return;
  }

  // (a) The recovered structures pass the deep audit.
  StatusOr<AuditReport> audit = service.AuditDatabase(kDbName);
  ASSERT_TRUE(audit.ok()) << context;
  EXPECT_TRUE(audit->ok()) << context << ":\n" << audit->ToString();
  EXPECT_GT(audit->checks, 0u) << context;

  // (b) The recovered facts equal the shadow after some prefix j of the
  // program — durability can lose un-synced acknowledged batches under
  // relaxed fsync policies, but it can never invent state, tear a batch
  // in half, or reorder. Under kEveryBatch, j must be exactly `acked`:
  // an acknowledged batch is durable by construction.
  StatusOr<std::vector<FactSpec>> listed = service.ListFacts(kDbName);
  ASSERT_TRUE(listed.ok()) << context;
  FactSet state = ToSet(*listed);
  std::size_t j = program.shadow_after.size();
  for (std::size_t candidate = 0; candidate <= acked; ++candidate) {
    if (program.shadow_after[candidate] == state) {
      j = candidate;
      // Prefer the largest matching prefix (states can repeat).
      if (fsync != store::FsyncPolicy::kEveryBatch) break;
    }
  }
  ASSERT_NE(j, program.shadow_after.size())
      << context << ": recovered state matches no acknowledged prefix ("
      << acked << " acked, " << state.size() << " facts recovered)";
  if (fsync == store::FsyncPolicy::kEveryBatch) {
    EXPECT_EQ(program.shadow_after[acked], state)
        << context << ": an acknowledged batch was lost under fsync-always";
    j = acked;
  }

  // (c) Solve parity (certain + verified witness) at the recovered
  // prefix.
  ExpectSolveParity(service, program.shadow_after[j], context);

  // Finish the program from j on the recovered service; the end state
  // must be the uncrashed end state.
  for (std::size_t k = j; k < program.batches.size(); ++k) {
    ASSERT_TRUE(ApplyBatch(service, program.batches[k]).ok())
        << context << ": batch " << k << " failed after recovery";
  }
  listed = service.ListFacts(kDbName);
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(ToSet(*listed), program.shadow_after.back())
      << context << ": final state diverged after recovery";
  audit = service.AuditDatabase(kDbName);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->ok()) << context << " (final):\n" << audit->ToString();
  ExpectSolveParity(service, program.shadow_after.back(), context + " final");
}

// Dry-runs the program (no fault) and returns the total I/O op count.
std::uint64_t CountOps(const Program& program, store::FsyncPolicy fsync,
                       const std::string& dir_tag) {
  std::string dir = FreshDir(dir_tag);
  store::ClearFault();  // Reset the op counter.
  Service service(DurableOptions(dir, fsync));
  StatusOr<CompiledQuery> q = service.Compile(kQueryText);
  EXPECT_TRUE(q.ok());
  std::size_t acked = RunUntilCrash(service, *q, program);
  EXPECT_EQ(acked, program.batches.size());
  return store::IoOpCount();
}

bool FullMatrix() {
  const char* env = std::getenv("CQA_RECOVERY_FULL");
  return env != nullptr && env[0] == '1';
}

// The headline matrix: >= 500 batches, every (sampled) crash point, both
// crash modes, under the strict fsync policy where recovery must land on
// exactly the acknowledged prefix.
TEST(RecoveryMatrix, EveryCrashPointRecoversUnderFsyncAlways) {
  Program program = BuildProgram(500, /*seed=*/0xC4A5);
  std::uint64_t ops =
      CountOps(program, store::FsyncPolicy::kEveryBatch, "dryrun_every");
  ASSERT_GT(ops, 1000u);  // >= 500 batches, each at least append + sync.

  // Full sweep: every op. Sampled sweep: a prime stride plus the first
  // few ops (registration / initial snapshot, the densest failure
  // cluster) and the last (mid final snapshot).
  std::uint64_t stride = FullMatrix() ? 1 : 37;
  std::vector<std::uint64_t> points;
  for (std::uint64_t op = 0; op < ops; op += stride) points.push_back(op);
  for (std::uint64_t op : {ops - 1, ops / 2}) points.push_back(op);
  for (std::uint64_t op = 0; op < std::min<std::uint64_t>(ops, 8); ++op) {
    points.push_back(op);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (std::uint64_t op : points) {
    for (store::FaultPlan::Mode mode : {store::FaultPlan::Mode::kBeforeOp,
                                        store::FaultPlan::Mode::kPartialWrite}) {
      RunCrashPoint(program, op, mode, store::FsyncPolicy::kEveryBatch,
                    "matrix_every");
      if (HasFatalFailure()) {
        FAIL() << "first failing crash point: op " << op;
      }
    }
  }
}

// Relaxed policies: acknowledged batches may be lost (that is the deal),
// but the recovered state must still be *some* acknowledged prefix —
// never torn, never invented, never corrupt.
TEST(RecoveryMatrix, RelaxedFsyncRecoversToAPrefix) {
  Program program = BuildProgram(500, /*seed=*/0x5EED);
  for (store::FsyncPolicy fsync :
       {store::FsyncPolicy::kInterval, store::FsyncPolicy::kNone}) {
    std::string tag = fsync == store::FsyncPolicy::kInterval
                          ? "matrix_interval"
                          : "matrix_none";
    std::uint64_t ops = CountOps(program, fsync, "dryrun_" + tag);
    ASSERT_GT(ops, 0u);
    std::uint64_t stride = FullMatrix() ? 1 : 61;
    for (std::uint64_t op = 0; op < ops; op += stride) {
      RunCrashPoint(program, op, store::FaultPlan::Mode::kPartialWrite, fsync,
                    tag);
      if (HasFatalFailure()) {
        FAIL() << "first failing crash point: op " << op << " (" << tag << ")";
      }
    }
  }
}

// Persisted verdicts: solve, checkpoint, crash, recover — the first
// solve after recovery must be served from the imported verdict cache
// (every component cached, none re-solved).
TEST(RecoveryService, VerdictCacheSurvivesRecovery) {
  std::string dir = FreshDir("verdicts");
  Program program = BuildProgram(64, /*seed=*/0xFACE);
  {
    Service service(
        DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
    StatusOr<CompiledQuery> q = service.Compile(kQueryText);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(
        service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok());
    for (const ProgramBatch& batch : program.batches) {
      ASSERT_TRUE(ApplyBatch(service, batch).ok());
    }
    StatusOr<SolveReport> warm = service.Solve(*q, kDbName);
    ASSERT_TRUE(warm.ok());
    ASSERT_GT(warm->components_total, 0u);
    ASSERT_TRUE(service.CheckpointDatabase(kDbName).ok());
    // Die without flushing anything further.
    store::FaultPlan plan;
    plan.crash_at_op = 0;
    store::InstallFault(plan);
  }
  store::ClearFault();

  Service service(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
  ASSERT_TRUE(service.RecoverDatabase(kDbName).ok());
  StatusOr<CompiledQuery> q = service.Compile(kQueryText);
  ASSERT_TRUE(q.ok());
  StatusOr<SolveReport> cold = service.Solve(*q, kDbName);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->components_total, 0u);
  EXPECT_EQ(cold->components_resolved, 0u)
      << "recovery discarded the persisted verdict cache";
  EXPECT_EQ(cold->components_cached, cold->components_total);

  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_EQ(stats.databases[0].recoveries, 1u);
}

// Stats() durability counters: WAL accounting while running, the
// recovery flag after reopening, and the audit counters — cumulative
// history, not derivable from the facts — surviving the restart.
TEST(RecoveryService, CountersSurviveReopen) {
  std::string dir = FreshDir("counters");
  {
    Service service(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
    ASSERT_TRUE(
        service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok());
    ASSERT_TRUE(
        service.InsertFacts(kDbName, {{"R", {"a", "b"}}, {"R", {"a", "c"}}})
            .ok());
    StatusOr<AuditReport> audit = service.AuditDatabase(kDbName);
    ASSERT_TRUE(audit.ok());
    ASSERT_TRUE(service.AuditDatabase(kDbName).ok());

    ServiceStats stats = service.Stats();
    ASSERT_EQ(stats.databases.size(), 1u);
    EXPECT_EQ(stats.databases[0].wal_records, 1u);
    EXPECT_GT(stats.databases[0].wal_bytes, 0u);
    EXPECT_EQ(stats.databases[0].snapshots, 1u);  // The initial snapshot.
    EXPECT_EQ(stats.databases[0].recoveries, 0u);
    EXPECT_EQ(stats.databases[0].audits_run, 2u);
    // Checkpoint so the audit counters reach the snapshot meta.
    ASSERT_TRUE(service.CheckpointDatabase(kDbName).ok());
  }

  Service service(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
  StatusOr<std::vector<std::string>> names = service.RecoverAllDatabases();
  ASSERT_TRUE(names.ok()) << names.status().ToString();
  EXPECT_EQ(*names, std::vector<std::string>{kDbName});

  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_EQ(stats.databases[0].recoveries, 1u);
  EXPECT_EQ(stats.databases[0].audits_run, 2u)
      << "audit history lost across restart";
  EXPECT_EQ(stats.databases[0].alive_facts, 2u);
  // The recovered entry defers index preparation: a stats poll must not
  // have forced the build (blocks reads 0 until first use).
  EXPECT_EQ(stats.databases[0].blocks, 0u);
  StatusOr<CompiledQuery> q = service.Compile(kQueryText);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(service.Solve(*q, kDbName).ok());
  EXPECT_GT(service.Stats().databases[0].blocks, 0u);
}

// DropDatabase must delete the on-disk state too: recreating the same
// name starts from a clean slate instead of resurrecting the old WAL
// (the PR's targeted bug fix).
TEST(RecoveryService, DropThenRecreateStartsClean) {
  std::string dir = FreshDir("drop_recreate");
  Service service(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
  ASSERT_TRUE(
      service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok());
  ASSERT_TRUE(service.InsertFacts(kDbName, {{"R", {"a", "b"}}}).ok());
  ASSERT_TRUE(service.DropDatabase(kDbName).ok());
  // The directory is gone: nothing to recover.
  EXPECT_EQ(service.RecoverDatabase(kDbName).code(), StatusCode::kNotFound);

  // Re-register under the same name and write different state.
  ASSERT_TRUE(
      service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok());
  ASSERT_TRUE(service.InsertFacts(kDbName, {{"R", {"x", "y"}}}).ok());
  StatusOr<std::vector<FactSpec>> listed = service.ListFacts(kDbName);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].args, (std::vector<std::string>{"x", "y"}));

  // And recovery after a restart sees only the new incarnation.
  Service reopened(DurableOptions(dir, store::FsyncPolicy::kEveryBatch));
  ASSERT_TRUE(reopened.RecoverDatabase(kDbName).ok());
  listed = reopened.ListFacts(kDbName);
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].args, (std::vector<std::string>{"x", "y"}));
}

// Durability off: the durable API surfaces typed errors instead of
// touching the filesystem.
TEST(RecoveryService, DurabilityOffIsTypedError) {
  Service service;
  EXPECT_EQ(service.RecoverDatabase("nope").code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(
      service.RegisterDatabase(kDbName, Database(OneRelationSchema())).ok());
  EXPECT_EQ(service.CheckpointDatabase(kDbName).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cqa
