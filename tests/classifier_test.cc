// The dichotomy classification of the paper's query catalog (EXP-T1):
// every worked example of Sections 4-10 must land in its stated class.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "classify/classifier.h"
#include "query/query.h"

namespace cqa {
namespace {

Classification Classify(const char* text) {
  return ClassifyQuery(ParseQuery(text));
}

TEST(Classifier, Q1HardBySyntacticCondition) {
  // q1 = R(x u | x v) R(v y | u y): Theorem 4.2.
  Classification c = Classify("R(x, u | x, v) R(v, y | u, y)");
  EXPECT_EQ(c.query_class, QueryClass::kCoNPHardCondition);
  EXPECT_EQ(c.complexity, Complexity::kCoNPComplete);
}

TEST(Classifier, Q2HardByForkTripath) {
  // q2 = R(x u | x y) R(u y | x z): Theorem 9.1.
  Classification c = Classify("R(x, u | x, y) R(u, y | x, z)");
  EXPECT_EQ(c.query_class, QueryClass::kCoNPForkTripath);
  EXPECT_EQ(c.complexity, Complexity::kCoNPComplete);
  EXPECT_TRUE(c.two_way_determined);
  EXPECT_TRUE(c.tripath_search.HasFork());
}

TEST(Classifier, Q3PolynomialViaCert2) {
  // q3 = R(x | y) R(y | z): Theorem 6.1.
  Classification c = Classify("R(x | y) R(y | z)");
  EXPECT_EQ(c.query_class, QueryClass::kPTimeCert2);
  EXPECT_EQ(c.complexity, Complexity::kPTime);
}

TEST(Classifier, Q4PolynomialViaCert2) {
  // q4 = R(x x | u v) R(x y | u x): Theorem 6.1 (key(A) ⊆ key(B)).
  Classification c = Classify("R(x, x | u, v) R(x, y | u, x)");
  EXPECT_EQ(c.query_class, QueryClass::kPTimeCert2);
  EXPECT_EQ(c.complexity, Complexity::kPTime);
}

TEST(Classifier, Q5PolynomialNoTripath) {
  // q5 = R(x | y x) R(y | x u): Theorem 8.1 (no tripath possible).
  Classification c = Classify("R(x | y, x) R(y | x, u)");
  EXPECT_EQ(c.query_class, QueryClass::kPTimeNoTripath);
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_TRUE(c.two_way_determined);
  EXPECT_TRUE(c.tripath_search.exhausted);
}

TEST(Classifier, Q6PolynomialTriangleOnly) {
  // q6 = R(x | y z) R(z | x y): Theorem 10.5 (clique-query).
  Classification c = Classify("R(x | y, z) R(z | x, y)");
  EXPECT_EQ(c.query_class, QueryClass::kPTimeTriangleOnly);
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_TRUE(c.tripath_search.HasTriangle());
  EXPECT_FALSE(c.tripath_search.HasFork());
}

TEST(Classifier, TrivialHomomorphismCase) {
  Classification c = Classify("R(x | y) R(y | y)");
  EXPECT_EQ(c.query_class, QueryClass::kTrivial);
  EXPECT_EQ(c.trivial_reason, TrivialReason::kHomToSingleAtom);
}

TEST(Classifier, TrivialEqualKeysCase) {
  Classification c = Classify("R(x, y | u) R(x, y | v)");
  EXPECT_EQ(c.query_class, QueryClass::kTrivial);
  EXPECT_EQ(c.trivial_reason, TrivialReason::kEqualKeys);
}

TEST(Classifier, SjfHardCase) {
  Classification c = Classify("R1(x, u | x, v) R2(v, y | u, y)");
  EXPECT_EQ(c.query_class, QueryClass::kSjfCoNPComplete);
  EXPECT_EQ(c.complexity, Complexity::kCoNPComplete);
}

TEST(Classifier, SjfEasyCases) {
  EXPECT_EQ(Classify("R1(x | y) R2(y | z)").query_class,
            QueryClass::kSjfFirstOrder);
  EXPECT_EQ(Classify("R1(x | y) R2(y | x)").query_class,
            QueryClass::kSjfPTime);
}

TEST(Classifier, ExplanationIsNonEmptyEverywhere) {
  for (const char* text :
       {"R(x, u | x, v) R(v, y | u, y)", "R(x, u | x, y) R(u, y | x, z)",
        "R(x | y) R(y | z)", "R(x | y, x) R(y | x, u)",
        "R(x | y, z) R(z | x, y)", "R(x | y) R(y | y)",
        "R1(x | y) R2(y | x)"}) {
    EXPECT_FALSE(Classify(text).explanation.empty()) << text;
  }
}

TEST(Classifier, SwapInvariantComplexity) {
  // certain(AB) == certain(BA): complexity classification must agree.
  for (const char* text :
       {"R(x, u | x, y) R(u, y | x, z)", "R(x | y) R(y | z)",
        "R(x | y, x) R(y | x, u)", "R(x | y, z) R(z | x, y)"}) {
    auto q = ParseQuery(text);
    Classification c1 = ClassifyQuery(q);
    Classification c2 = ClassifyQuery(q.Swapped());
    EXPECT_EQ(c1.complexity, c2.complexity) << text;
  }
}

// The 2way-determined example R(x|y) R(y|x): a clique-query-like case.
TEST(Classifier, SymmetricSwapQuery) {
  Classification c = Classify("R(x | y) R(y | x)");
  EXPECT_TRUE(c.two_way_determined);
  // Whatever the tripath outcome, the dichotomy must resolve it within
  // bounds: the search space for arity 2 is tiny.
  EXPECT_NE(c.query_class, QueryClass::kUnresolved);
}

// q7: the paper's challenge example — triangle-tripath exists, fork does
// not. The search space is large (arity 14), so this uses trimmed limits;
// the classification must still be a PTime class.
TEST(Classifier, Q7IsPolynomial) {
  auto q7 = ParseQuery(
      "R(x1, x2, x3, y1, y1, y2, y3, z1, z2, z3 | z4, z4, z4, z4) "
      "R(x3, x1, x2, y3, y1, y1, y2, z2, z3, z4 | z1, z2, z3, z4)");
  TripathSearchLimits limits;
  limits.max_up = 1;
  limits.max_down = 1;
  limits.max_merges = 1;
  limits.max_candidates = 200000;
  Classification c = ClassifyQuery(q7, limits);
  EXPECT_TRUE(c.two_way_determined);
  EXPECT_FALSE(c.tripath_search.HasFork());
}

// Every enumerator must print a distinct, handled name (never the "?"
// fallthrough) and parse back to itself, so reports and logs can always
// round-trip the dichotomy vocabulary instead of leaking raw ints.
TEST(ClassifierToString, QueryClassRoundTripsExhaustively) {
  const QueryClass kAll[] = {
      QueryClass::kTrivial,           QueryClass::kSjfFirstOrder,
      QueryClass::kSjfPTime,          QueryClass::kSjfCoNPComplete,
      QueryClass::kPTimeCert2,        QueryClass::kCoNPHardCondition,
      QueryClass::kPTimeNoTripath,    QueryClass::kCoNPForkTripath,
      QueryClass::kPTimeTriangleOnly, QueryClass::kUnresolved,
  };
  std::set<std::string> seen;
  for (QueryClass c : kAll) {
    std::string name = ToString(c);
    EXPECT_NE(name, "?");
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name: " << name;
    auto parsed = QueryClassFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, c) << name;
  }
  EXPECT_FALSE(QueryClassFromString("no such class").has_value());
}

TEST(ClassifierToString, ComplexityRoundTripsExhaustively) {
  const Complexity kAll[] = {Complexity::kPTime, Complexity::kCoNPComplete,
                             Complexity::kUnknown};
  std::set<std::string> seen;
  for (Complexity c : kAll) {
    std::string name = ToString(c);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name: " << name;
    auto parsed = ComplexityFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, c) << name;
  }
  EXPECT_FALSE(ComplexityFromString("easy").has_value());
}

}  // namespace
}  // namespace cqa
