// TSan-friendly stress for the component-sharded locking scheme: cache-
// filling solves from many threads must agree and fill the verdict cache
// exactly once per component, and mutations on disjoint key spaces
// interleaved with solves (and automatic compactions) must linearize —
// the final state is the one big sequential history would produce, and
// every intermediate report is internally consistent. Run under
// -fsanitize=thread in CI (label: concurrency).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/witness.h"

namespace cqa {
namespace {

/// `count` disjoint two-fact components for q3 = R(x | y) R(y | z): the
/// block {R(a<i>|b<i>), R(a<i>|c<i>)} has no outgoing solution partner,
/// so every repair falsifies the query — each component is non-certain
/// and witness-bearing, and components never link across indices.
Database ManyComponents(const Schema& schema, int count,
                        const std::string& ns) {
  Database db(schema);
  for (int i = 0; i < count; ++i) {
    std::string a = ns + "a" + std::to_string(i);
    db.AddFactNamed(0, {a, ns + "b" + std::to_string(i)});
    db.AddFactNamed(0, {a, ns + "c" + std::to_string(i)});
  }
  return db;
}

TEST(ConcurrencyTest, ParallelCacheFillingSolvesAgreeAndFillOnce) {
  Service service;
  // Forced exhaustive: explain-capable, so cached verdicts carry their
  // component witnesses and the merged whole-database witness verifies.
  StatusOr<CompiledQuery> q = service.Compile(
      "R(x | y) R(y | z)", CompileOptions{"exhaustive", false});
  ASSERT_TRUE(q.ok());
  const int kComponents = 64;
  ASSERT_TRUE(service
                  .RegisterDatabase(
                      "db", ManyComponents(q->query().schema(), kComponents,
                                           ""))
                  .ok());

  const int kThreads = 8;
  std::atomic<std::uint64_t> resolved{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        StatusOr<SolveReport> report = service.Solve(*q, "db");
        if (!report.ok() || report->certain ||
            report->components_total != kComponents ||
            report->components_resolved + report->components_cached !=
                report->components_total) {
          ++wrong;
          continue;
        }
        resolved += report->components_resolved;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  // The shard locks serialize same-component fills: every component is
  // resolved by exactly one thread; everyone else reuses its verdict.
  EXPECT_EQ(resolved.load(), static_cast<std::uint64_t>(kComponents));

  StatusOr<SolveReport> final_report = service.Solve(*q, "db");
  ASSERT_TRUE(final_report.ok());
  EXPECT_EQ(final_report->components_cached,
            static_cast<std::uint64_t>(kComponents));
  ASSERT_TRUE(final_report->witness.has_value());
  Status verified =
      VerifyWitness(q->query(), *final_report->witness->database(),
                    *final_report->witness);
  EXPECT_TRUE(verified.ok()) << verified.ToString();
}

// Mutators own disjoint element namespaces (so disjoint blocks and
// q-connected components); solvers and a stats poller run against the
// same database throughout, with compaction triggering aggressively.
// Disjoint mutations commute, so the final content is deterministic:
// delta state and answers must match a from-scratch rebuild.
TEST(ConcurrencyTest, DisjointMutationsSolvesAndCompactionsLinearize) {
  ServiceOptions options;
  options.compact_dead_ratio = 0.2;  // Compact often mid-stress.
  options.compact_min_slots = 32;
  options.verdict_cache = CacheOptions{256, 0};
  Service service(options);
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());

  const int kMutators = 4;
  const int kSolvers = 3;
  const int kPerThread = 12;  // Components per mutator namespace.
  const int kRounds = 40;

  Database db(q->query().schema());
  for (int t = 0; t < kMutators; ++t) {
    Database part = ManyComponents(q->query().schema(), kPerThread,
                                   "t" + std::to_string(t) + "_");
    for (FactId f = 0; f < part.NumFacts(); ++f) {
      FactRef fact = part.fact(f);
      std::vector<std::string> names;
      for (ElementId el : fact.args) {
        names.push_back(part.elements().Name(el));
      }
      db.AddFactNamed(fact.relation, names);
    }
  }
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kMutators; ++t) {
    threads.emplace_back([&, t] {
      std::string ns = "t" + std::to_string(t) + "_";
      for (int round = 0; round < kRounds; ++round) {
        int i = round % kPerThread;
        // Delete and re-insert one of this namespace's components' facts:
        // net content change zero per full round, constant churn.
        FactSpec spec{"R", {ns + "a" + std::to_string(i),
                            ns + "c" + std::to_string(i)}};
        if (!service.DeleteFacts("db", {spec}).ok()) ++failures;
        if (!service.InsertFacts("db", {spec}).ok()) ++failures;
      }
    });
  }
  for (int s = 0; s < kSolvers; ++s) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        StatusOr<SolveReport> report = service.Solve(*q, "db");
        if (!report.ok()) {
          ++failures;
          continue;
        }
        // Internal consistency of every mid-stress report.
        if (report->components_resolved + report->components_cached !=
            report->components_total) {
          ++failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < kRounds; ++round) {
      ServiceStats stats = service.Stats();
      if (stats.databases.size() != 1) ++failures;
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Deterministic final state: every namespace ran whole delete+insert
  // rounds, so the content equals the initial content.
  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_EQ(stats.databases[0].alive_facts,
            static_cast<std::uint64_t>(kMutators * kPerThread * 2));
  EXPECT_GT(stats.databases[0].compactions, 0u);
  // The slot bound survived concurrent churn: alive/(1-r) plus slack for
  // batches applied between trigger checks.
  EXPECT_LE(stats.databases[0].fact_slots,
            stats.databases[0].alive_facts * 2);

  StatusOr<SolveReport> delta = service.Solve(*q, "db");
  ASSERT_TRUE(delta.ok());
  Database rebuild(q->query().schema());
  for (int t = 0; t < kMutators; ++t) {
    Database part = ManyComponents(q->query().schema(), kPerThread,
                                   "t" + std::to_string(t) + "_");
    for (FactId f = 0; f < part.NumFacts(); ++f) {
      FactRef fact = part.fact(f);
      std::vector<std::string> names;
      for (ElementId el : fact.args) {
        names.push_back(part.elements().Name(el));
      }
      rebuild.AddFactNamed(fact.relation, names);
    }
  }
  StatusOr<SolveReport> fresh = service.Solve(*q, rebuild);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(delta->certain, fresh->certain);
  EXPECT_EQ(delta->num_facts, fresh->num_facts);
  EXPECT_EQ(delta->num_blocks, fresh->num_blocks);
}

// Solver-map eviction racing live solves: more distinct queries than the
// solver cache holds, solved from many threads, must never crash or
// misanswer (evicted solvers finish their in-flight solve on their own
// shared_ptr reference).
TEST(ConcurrencyTest, SolverEvictionUnderConcurrentSolves) {
  ServiceOptions options;
  options.solver_cache = CacheOptions{2, 0};  // Tiny: constant eviction.
  Service service(options);
  // Four distinct solver-map keys (text or backend differs) that all bind
  // to the same R(arity 2, key 1) schema.
  std::vector<CompiledQuery> compiled;
  for (const auto& [text, backend] :
       std::vector<std::pair<const char*, const char*>>{
           {"R(x | y) R(y | z)", ""},
           {"R(x | y) R(y | z)", "exhaustive"},
           {"R(x | y) R(y | z)", "sat"},
           {"R(x | y) R(y | y)", ""}}) {
    StatusOr<CompiledQuery> q =
        service.Compile(text, CompileOptions{backend, false});
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    compiled.push_back(*q);
  }
  Database db(compiled[0].query().schema());
  for (int i = 0; i < 20; ++i) {
    db.AddFactNamed(0, {"a" + std::to_string(i), "b" + std::to_string(i)});
  }
  ASSERT_TRUE(service.RegisterDatabase("db", std::move(db)).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 30; ++round) {
        const CompiledQuery& q = compiled[(t + round) % 4];
        StatusOr<SolveReport> report = service.Solve(q, "db");
        if (!report.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.databases.size(), 1u);
  EXPECT_LE(stats.databases[0].solvers.entries, 2u);
  EXPECT_GT(stats.databases[0].solvers.evictions, 0u);
}

}  // namespace
}  // namespace cqa
