// Unit tests for src/query: parser, masks, matching, solutions, evaluation,
// homomorphisms, one-atom-equivalence, solution graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "gen/workloads.h"
#include "query/eval.h"
#include "query/hom.h"
#include "query/query.h"
#include "query/solution_graph.h"

namespace cqa {
namespace {

VarMask Mask(const ConjunctiveQuery& q,
             std::initializer_list<const char*> names) {
  VarMask m = 0;
  for (const char* name : names) {
    for (VarId v = 0; v < q.NumVars(); ++v) {
      if (q.VarName(v) == name) m |= VarMask{1} << v;
    }
  }
  return m;
}

TEST(Parser, ParsesTwoAtomSelfJoin) {
  auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_EQ(q.NumVars(), 4u);
  EXPECT_EQ(q.schema().NumRelations(), 1u);
  EXPECT_EQ(q.schema().Relation(0).arity, 4u);
  EXPECT_EQ(q.schema().Relation(0).key_len, 2u);
  EXPECT_FALSE(q.IsSelfJoinFree());
}

TEST(Parser, ParsesSjfQuery) {
  auto q = ParseQuery("R1(x | y) R2(y | x)");
  EXPECT_EQ(q.schema().NumRelations(), 2u);
  EXPECT_TRUE(q.IsSelfJoinFree());
}

TEST(Parser, NoBarMeansEmptyKey) {
  auto q = ParseQuery("R(x, y)");
  EXPECT_EQ(q.schema().Relation(0).key_len, 0u);
  EXPECT_EQ(q.schema().Relation(0).arity, 2u);
}

TEST(Parser, ToStringRoundTrips) {
  const char* text = "R(x, u | x, y) R(u, y | x, z)";
  auto q = ParseQuery(text);
  EXPECT_EQ(q.ToString(), text);
  // Re-parsing the printed form yields the same string again.
  EXPECT_EQ(ParseQuery(q.ToString()).ToString(), text);
}

TEST(Parser, RejectsSignatureMismatch) {
  EXPECT_THROW(ParseQuery("R(x | y) R(x | y, z)"), std::invalid_argument);
  EXPECT_THROW(ParseQuery("R(x | y) R(x, y |)"), std::invalid_argument);
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(ParseQuery(""), std::invalid_argument);
  EXPECT_THROW(ParseQuery("R(x"), std::invalid_argument);
  EXPECT_THROW(ParseQuery("R()"), std::invalid_argument);
  EXPECT_THROW(ParseQuery("R(x,,y)"), std::invalid_argument);
  EXPECT_THROW(ParseQuery("1R(x)"), std::invalid_argument);
}

TEST(Query, VarMasksMatchPaperExampleQ2) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  EXPECT_EQ(q2.KeyVarsOf(0), Mask(q2, {"x", "u"}));
  EXPECT_EQ(q2.KeyVarsOf(1), Mask(q2, {"u", "y"}));
  EXPECT_EQ(q2.VarsOf(0), Mask(q2, {"x", "u", "y"}));
  EXPECT_EQ(q2.VarsOf(1), Mask(q2, {"u", "y", "x", "z"}));
}

TEST(Query, KeyTupleIsOrdered) {
  auto q = ParseQuery("R(x, y | z) R(y, x | z)");
  EXPECT_NE(q.KeyTupleOf(0), q.KeyTupleOf(1));
  EXPECT_EQ(q.KeyVarsOf(0), q.KeyVarsOf(1));  // Same set, different tuples.
}

TEST(Query, SwappedReversesAtoms) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  auto s = q.Swapped();
  EXPECT_EQ(s.AtomToString(0), q.AtomToString(1));
  EXPECT_EQ(s.AtomToString(1), q.AtomToString(0));
}

TEST(Eval, MatchesPatternRepeatedVars) {
  auto q = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  Database db(q.schema());
  FactId good = db.AddFactStr(0, "a b a c");
  FactId bad = db.AddFactStr(0, "a b c d");
  EXPECT_TRUE(MatchesPattern(q.atoms()[0], db.fact(good)));
  EXPECT_FALSE(MatchesPattern(q.atoms()[0], db.fact(bad)));
  // Atom B has no repeats: everything matches.
  EXPECT_TRUE(MatchesPattern(q.atoms()[1], db.fact(bad)));
}

TEST(Eval, DirectedSolutionQ2) {
  auto q2 = ParseQuery("R(x, u | x, y) R(u, y | x, z)");
  Database db(q2.schema());
  // a = R(a b | a c): matches A with x=a, u=b, y=c.
  // b = R(b c | a d): matches B with u=b, y=c, x=a, z=d. Consistent.
  FactId a = db.AddFactStr(0, "a b a c");
  FactId b = db.AddFactStr(0, "b c a d");
  RelationBinding binding(q2, db);
  EXPECT_TRUE(IsSolution(q2, binding, db, a, b));
  EXPECT_FALSE(IsSolution(q2, binding, db, b, a));
  EXPECT_TRUE(IsSolutionEither(q2, binding, db, b, a));
}

TEST(Eval, SelfSolution) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  FactId loop = db.AddFactStr(0, "a a");
  FactId plain = db.AddFactStr(0, "a b");
  RelationBinding binding(q3, db);
  EXPECT_TRUE(IsSolution(q3, binding, db, loop, loop));
  EXPECT_FALSE(IsSolution(q3, binding, db, plain, plain));
}

TEST(Eval, ComputeSolutionsFindsChains) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  FactId ab = db.AddFactStr(0, "a b");
  FactId bc = db.AddFactStr(0, "b c");
  FactId cd = db.AddFactStr(0, "c d");
  SolutionSet s = ComputeSolutions(q3, db);
  auto has = [&](FactId x, FactId y) {
    return std::find(s.pairs.begin(), s.pairs.end(),
                     std::make_pair(x, y)) != s.pairs.end();
  };
  EXPECT_TRUE(has(ab, bc));
  EXPECT_TRUE(has(bc, cd));
  EXPECT_FALSE(has(ab, cd));
  EXPECT_FALSE(has(bc, ab));
  EXPECT_EQ(s.pairs.size(), 2u);
}

// Property: the hash-join solution enumeration agrees with the quadratic
// definition on random instances, for several catalog queries.
class SolutionsAgreeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SolutionsAgreeTest, HashJoinMatchesNaive) {
  auto q = ParseQuery(GetParam());
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 5; ++round) {
    InstanceParams params;
    params.num_facts = 25;
    params.domain_size = 4;
    Database db = RandomInstance(q, params, &rng);
    RelationBinding binding(q, db);
    SolutionSet fast = ComputeSolutions(q, db);
    std::vector<std::pair<FactId, FactId>> naive;
    for (FactId a = 0; a < db.NumFacts(); ++a) {
      for (FactId b = 0; b < db.NumFacts(); ++b) {
        if (IsSolution(q, binding, db, a, b)) naive.emplace_back(a, b);
      }
    }
    std::sort(naive.begin(), naive.end());
    EXPECT_EQ(fast.pairs, naive);
    for (FactId a = 0; a < db.NumFacts(); ++a) {
      EXPECT_EQ(fast.self[a], IsSolution(q, binding, db, a, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, SolutionsAgreeTest,
    ::testing::Values("R(x, u | x, y) R(u, y | x, z)",  // q2
                      "R(x | y) R(y | z)",              // q3
                      "R(x, x | u, v) R(x, y | u, x)",  // q4
                      "R(x | y, x) R(y | x, u)",        // q5
                      "R(x | y, z) R(z | x, y)",        // q6
                      "R(x, u | x, v) R(v, y | u, y)"   // q1
                      ));

TEST(Eval, SatisfiesSubsetBacktracks) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  FactId ab = db.AddFactStr(0, "a b");
  FactId bc = db.AddFactStr(0, "b c");
  FactId xy = db.AddFactStr(0, "x y");
  EXPECT_TRUE(SatisfiesSubset(q3, db, {ab, bc}));
  EXPECT_FALSE(SatisfiesSubset(q3, db, {ab, xy}));
  EXPECT_FALSE(SatisfiesSubset(q3, db, {ab}));
  EXPECT_TRUE(Satisfies(q3, db));
}

TEST(Eval, SatisfiesRepair) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b z");  // Blockmate of "b c": key b.
  int satisfied = 0;
  int total = 0;
  for (RepairIterator it(db); it.HasValue(); it.Next()) {
    satisfied += SatisfiesRepair(q3, db, it.Current()) ? 1 : 0;
    ++total;
  }
  EXPECT_EQ(total, 2);
  EXPECT_EQ(satisfied, 2);  // Both choices continue the chain from a->b.
}

TEST(Hom, HomomorphismToSubAtom) {
  // q = R(x | y) R(y | y): h(x) = y, h(y) = y maps A onto B and fixes B.
  auto q = ParseQuery("R(x | y) R(y | y)");
  auto sub = AtomSubquery(q, 1);
  EXPECT_TRUE(FindHomomorphism(q, sub).has_value());
  EXPECT_EQ(ClassifyTrivial(q), TrivialReason::kHomToSingleAtom);
}

TEST(Hom, NoHomomorphismForQ3) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  EXPECT_FALSE(FindHomomorphism(q3, AtomSubquery(q3, 0)).has_value());
  EXPECT_FALSE(FindHomomorphism(q3, AtomSubquery(q3, 1)).has_value());
  EXPECT_EQ(ClassifyTrivial(q3), TrivialReason::kNotTrivial);
}

TEST(Hom, EqualKeysDetected) {
  auto q = ParseQuery("R(x, y | u) R(x, y | v)");
  EXPECT_EQ(ClassifyTrivial(q), TrivialReason::kEqualKeys);
}

TEST(Hom, EqualKeySetsButDifferentTuplesNotTrivial) {
  auto q = ParseQuery("R(x, y | u) R(y, x | v)");
  EXPECT_EQ(ClassifyTrivial(q), TrivialReason::kNotTrivial);
}

TEST(Hom, IdenticalAtomsAreTrivial) {
  auto q = ParseQuery("R(x | y) R(x | y)");
  // key(A) = key(B) as tuples.
  EXPECT_NE(ClassifyTrivial(q), TrivialReason::kNotTrivial);
}

TEST(Hom, CatalogQueriesAreNotTrivial) {
  for (const char* text :
       {"R(x, u | x, v) R(v, y | u, y)", "R(x, u | x, y) R(u, y | x, z)",
        "R(x | y, x) R(y | x, u)", "R(x | y, z) R(z | x, y)"}) {
    EXPECT_EQ(ClassifyTrivial(ParseQuery(text)), TrivialReason::kNotTrivial)
        << text;
  }
}

TEST(Hom, HomEquivalentSelf) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  EXPECT_TRUE(HomEquivalent(q, q));
}

TEST(SolutionGraph, EdgesAreUndirectedSolutions) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  FactId ab = db.AddFactStr(0, "a b");
  FactId bc = db.AddFactStr(0, "b c");
  FactId zz = db.AddFactStr(0, "q r");
  SolutionGraph sg = BuildSolutionGraph(q3, db);
  EXPECT_TRUE(sg.graph.HasEdge(ab, bc));
  EXPECT_FALSE(sg.graph.HasEdge(ab, zz));
  EXPECT_EQ(sg.components.count, 2u);
}

TEST(SolutionGraph, QuasiCliqueForQ6Triangle) {
  auto q6 = ParseQuery("R(x | y, z) R(z | x, y)");
  Database db(q6.schema());
  // Triangle: q6(a b) etc. R(a | b, c), R(c | a, b), R(b | c, a).
  db.AddFactStr(0, "a b c");
  db.AddFactStr(0, "c a b");
  db.AddFactStr(0, "b c a");
  SolutionGraph sg = BuildSolutionGraph(q6, db);
  EXPECT_EQ(sg.components.count, 1u);
  EXPECT_TRUE(IsCliqueDatabase(sg, db));
}

TEST(SolutionGraph, NonQuasiCliquePath) {
  auto q3 = ParseQuery("R(x | y) R(y | z)");
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "c d");
  SolutionGraph sg = BuildSolutionGraph(q3, db);
  // Path a-b-c with no edge a-c and a !~ c: not a quasi-clique.
  EXPECT_FALSE(IsCliqueDatabase(sg, db));
}

}  // namespace
}  // namespace cqa
