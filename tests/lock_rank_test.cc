// The lock-rank checker (base/lock_rank.h) in both directions: disciplined
// acquisition orders pass (downward nesting, shared and exclusive modes,
// non-LIFO release, try_lock), and a deliberate inversion dies printing
// both acquisition stacks. The tests instantiate RankedMutex<R, true>
// explicitly, so the checking machinery is exercised in every build
// configuration — including Release trees where the library's own locks
// compile down to plain std::mutex.

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

#include "base/lock_rank.h"

namespace cqa {
namespace {

using lock_rank_internal::HeldDepth;

template <LockRank R>
using CheckedMutex = RankedMutex<R, /*Checked=*/true>;
template <LockRank R>
using CheckedSharedMutex = RankedSharedMutex<R, /*Checked=*/true>;

TEST(LockRankTest, DownwardNestingPasses) {
  CheckedMutex<LockRank::kServiceRegistry> registry;
  CheckedSharedMutex<LockRank::kDbEntry> db;
  CheckedMutex<LockRank::kVerdictShard> shard;
  CheckedMutex<LockRank::kSolverInternal> solver;

  EXPECT_EQ(HeldDepth(), 0);
  {
    std::lock_guard r(registry);
    std::unique_lock d(db);
    std::lock_guard s(shard);
    std::lock_guard i(solver);
    EXPECT_EQ(HeldDepth(), 4);
  }
  EXPECT_EQ(HeldDepth(), 0);
}

TEST(LockRankTest, SharedAcquisitionObeysTheSameHierarchy) {
  CheckedSharedMutex<LockRank::kDbEntry> db;
  CheckedMutex<LockRank::kVerdictShard> shard;

  // Shared-then-down mirrors the service's solve path: structure shared,
  // then a verdict shard.
  {
    std::shared_lock d(db);
    std::lock_guard s(shard);
    EXPECT_EQ(HeldDepth(), 2);
  }
  // Exclusive-then-down mirrors the mutation path.
  {
    std::unique_lock d(db);
    std::lock_guard s(shard);
    EXPECT_EQ(HeldDepth(), 2);
  }
  EXPECT_EQ(HeldDepth(), 0);
}

TEST(LockRankTest, SequentialSameRankReacquisitionPasses) {
  // One shard lock at a time — the pattern IncrementalSolver::Solve and
  // AuditInto use — is fine; only *nesting* same-rank locks is banned.
  CheckedMutex<LockRank::kVerdictShard> shard_a;
  CheckedMutex<LockRank::kVerdictShard> shard_b;
  {
    std::lock_guard a(shard_a);
  }
  {
    std::lock_guard b(shard_b);
  }
  EXPECT_EQ(HeldDepth(), 0);
}

TEST(LockRankTest, NonLifoReleaseIsTracked) {
  CheckedMutex<LockRank::kServiceRegistry> registry;
  CheckedSharedMutex<LockRank::kDbEntry> db;

  std::unique_lock r(registry);
  std::unique_lock d(db);
  EXPECT_EQ(HeldDepth(), 2);
  r.unlock();  // Release the *outer* lock first: matched by address.
  EXPECT_EQ(HeldDepth(), 1);
  d.unlock();
  EXPECT_EQ(HeldDepth(), 0);
}

TEST(LockRankTest, TryLockPushesAndPopsLikeLock) {
  CheckedMutex<LockRank::kDbEntry> db;
  ASSERT_TRUE(db.try_lock());
  EXPECT_EQ(HeldDepth(), 1);
  db.unlock();
  EXPECT_EQ(HeldDepth(), 0);

  CheckedSharedMutex<LockRank::kDbEntry> shared_db;
  ASSERT_TRUE(shared_db.try_lock_shared());
  EXPECT_EQ(HeldDepth(), 1);
  shared_db.unlock_shared();
  EXPECT_EQ(HeldDepth(), 0);
}

TEST(LockRankTest, HeldRanksArePerThread) {
  CheckedMutex<LockRank::kVerdictShard> shard;
  std::lock_guard s(shard);
  ASSERT_EQ(HeldDepth(), 1);
  // Another thread starts with an empty stack and may take a *higher*
  // rank than this thread holds: the discipline is per-thread.
  std::thread other([] {
    EXPECT_EQ(HeldDepth(), 0);
    CheckedMutex<LockRank::kServiceRegistry> registry;
    std::lock_guard r(registry);
    EXPECT_EQ(HeldDepth(), 1);
  });
  other.join();
  EXPECT_EQ(HeldDepth(), 1);
}

TEST(LockRankDeathTest, InversionDiesWithBothStacks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CheckedMutex<LockRank::kVerdictShard> shard;
  CheckedSharedMutex<LockRank::kDbEntry> db;
  // Holding a verdict shard while acquiring the per-database structure
  // lock is exactly the inversion the serving-layer refactor could
  // introduce; the checker must name both ranks and print both stacks.
  EXPECT_DEATH(
      {
        std::lock_guard s(shard);
        std::shared_lock d(db);
      },
      "lock-rank inversion: acquiring kDbEntry.*while holding.*kVerdictShard"
      "(.|\n)*acquisition stack of the violating lock"
      "(.|\n)*acquisition stack of the held lock");
}

TEST(LockRankDeathTest, NestedSameRankDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CheckedMutex<LockRank::kVerdictShard> shard_a;
  CheckedMutex<LockRank::kVerdictShard> shard_b;
  // Two shard locks nested would deadlock against a thread nesting them
  // the other way; equal rank is an inversion by design.
  EXPECT_DEATH(
      {
        std::lock_guard a(shard_a);
        std::lock_guard b(shard_b);
      },
      "lock-rank inversion: acquiring kVerdictShard.*while holding.*"
      "kVerdictShard");
}

TEST(LockRankDeathTest, RegistryUnderDbEntryDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CheckedSharedMutex<LockRank::kDbEntry> db;
  CheckedMutex<LockRank::kServiceRegistry> registry;
  // The registry lock is the hierarchy's top: taking it while holding any
  // per-database lock is what Service::FindEntry's contract forbids.
  EXPECT_DEATH(
      {
        std::shared_lock d(db);
        std::lock_guard r(registry);
      },
      "lock-rank inversion: acquiring kServiceRegistry.*while holding.*"
      "kDbEntry");
}

TEST(LockRankTest, RankNamesAreStable) {
  EXPECT_STREQ(ToString(LockRank::kServiceRegistry), "kServiceRegistry");
  EXPECT_STREQ(ToString(LockRank::kDbEntry), "kDbEntry");
  EXPECT_STREQ(ToString(LockRank::kVerdictShard), "kVerdictShard");
  EXPECT_STREQ(ToString(LockRank::kSolverInternal), "kSolverInternal");
}

TEST(LockRankTest, UncheckedWrapperIsAPlainMutex) {
  // Checked=false: no rank bookkeeping at all (what Release builds get).
  RankedMutex<LockRank::kVerdictShard, /*Checked=*/false> low;
  RankedSharedMutex<LockRank::kDbEntry, /*Checked=*/false> high;
  std::lock_guard l(low);
  std::shared_lock h(high);  // Inverted order: legal when unchecked.
  EXPECT_EQ(HeldDepth(), 0);
}

}  // namespace
}  // namespace cqa
