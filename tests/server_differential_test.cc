// Protocol-differential harness: the serving layer must be a *transparent*
// view of the in-process Service. For every request, the wire answer —
// verdict, answering backend, witness, or typed error code — must match
// what the same call against cqa::Service returns directly. Any drift
// means the protocol encode/decode or the server pipeline changed the
// semantics, which no amount of server-side testing in isolation would
// catch.
//
// Three fronts:
//   - 500+ seeded Random/Chain instances solved both ways, witnesses
//     rebuilt from their wire names (WitnessFromSpecs) and re-verified
//     from first principles (VerifyWitness);
//   - every typed error path reachable over the wire, code-for-code;
//   - mutation batches applied over the wire vs. a shadow Service fed
//     the same batches in-process.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/witness.h"
#include "base/check.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace cqa {
namespace {

using server::Client;
using server::Frame;
using server::FrameReader;
using server::MutationKind;
using server::Request;
using server::Response;
using server::Server;
using server::ServerOptions;

/// One Service + Server + in-process Client over a socketpair.
struct Harness {
  explicit Harness(ServiceOptions service_options = {},
                   ServerOptions server_options = {})
      : service(service_options), server(service, server_options) {
    int client_fd = -1;
    int server_fd = -1;
    Status paired = server::LocalSocketPair(&client_fd, &server_fd);
    CQA_CHECK(paired.ok());
    CQA_CHECK(server.ServeFd(server_fd).ok());
    client = Client::FromFd(client_fd);
  }

  Request MakeRequest(std::string db, std::string query) {
    Request req;
    req.request_id = ++next_id;
    req.db_name = std::move(db);
    req.query_text = std::move(query);
    return req;
  }

  Service service;
  Server server;
  Client client;
  std::uint64_t next_id = 0;
};

/// Sends raw pre-framed bytes and decodes one response frame — for the
/// cases the well-behaved Client cannot produce (tampered version bytes,
/// hand-built payloads).
StatusOr<Response> RawCall(Server& server, const std::string& frame) {
  int client_fd = -1;
  int server_fd = -1;
  Status paired = server::LocalSocketPair(&client_fd, &server_fd);
  if (!paired.ok()) return paired;
  Status served = server.ServeFd(server_fd);
  if (!served.ok()) {
    ::close(client_fd);
    return served;
  }
  Client raw = Client::FromFd(client_fd);
  // Reuse the Client's receive loop by sending the bytes ourselves.
  std::string_view bytes = frame;
  while (!bytes.empty()) {
    ssize_t n = ::send(client_fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) return Status(StatusCode::kIoError, "raw send failed");
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return raw.Receive();
}

TEST(ServerDifferentialTest, WireMatchesInProcessOn500PlusParityChecks) {
  const char* kQueries[] = {
      "R(x | y) R(y | z)",              // PTime, cert2 class.
      "R(x, u | x, y) R(u, y | x, z)",  // The paper's q2.
      "R(x | y, z) R(z | x, y)",        // The paper's q6.
      "R1(x | y) R2(y | z)",            // Self-join-free substrate.
  };
  const int kRandomPerQuery = 85;
  const int kChainPerQuery = 45;

  Harness h;
  std::size_t checks = 0;

  for (const char* query_text : kQueries) {
    StatusOr<CompiledQuery> handle = h.service.Compile(query_text);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();

    Rng rng(0x5E12F00D + checks);
    for (int i = 0; i < kRandomPerQuery + kChainPerQuery; ++i) {
      Database local =
          i < kRandomPerQuery
              ? RandomInstance(handle->query(), InstanceParams{16, 4, 0.6, 0.3},
                               &rng)
              : ChainInstance(handle->query(), 6, 0.5, 0.6, &rng);
      // Keep a content-identical copy outside the service: the wire
      // witness is re-verified against it from first principles, without
      // trusting any server state.
      ASSERT_TRUE(
          h.service.RegisterDatabase("wire_db", Database(local)).ok());

      StatusOr<SolveReport> expected =
          h.service.Solve(*handle, "wire_db", /*name_witness=*/true);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      Request req = h.MakeRequest("wire_db", query_text);
      req.want_witness = true;
      StatusOr<Response> resp = h.client.Call(req);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();

      ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
      EXPECT_EQ(resp->certain, expected->certain)
          << query_text << " instance " << i;
      EXPECT_EQ(resp->backend_name, expected->backend_name);
      EXPECT_EQ(resp->num_facts, expected->num_facts);
      EXPECT_EQ(resp->num_blocks, expected->num_blocks);
      EXPECT_EQ(resp->has_witness, expected->named_witness.has_value());
      if (resp->has_witness) {
        StatusOr<Repair> witness =
            WitnessFromSpecs(local, resp->witness);
        ASSERT_TRUE(witness.ok()) << witness.status().ToString();
        Status verified = VerifyWitness(handle->query(), local, *witness);
        EXPECT_TRUE(verified.ok()) << verified.ToString();
      }
      ++checks;
      ASSERT_TRUE(h.service.DropDatabase("wire_db").ok());
    }
  }
  EXPECT_GE(checks, 500u);
}

TEST(ServerDifferentialTest, TypedErrorCodesMatchInProcess) {
  Harness h;
  StatusOr<CompiledQuery> q = h.service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  Rng rng(77);
  Database db = RandomInstance(q->query(), InstanceParams{12, 4, 0.6, 0.3},
                               &rng);
  ASSERT_TRUE(h.service.RegisterDatabase("errs", std::move(db)).ok());

  // Parse error: wire code must equal the in-process Compile code.
  {
    StatusOr<CompiledQuery> direct = h.service.Compile("R(x |");
    ASSERT_FALSE(direct.ok());
    ASSERT_EQ(direct.status().code(), StatusCode::kInvalidQuery);
    StatusOr<Response> resp = h.client.Call(h.MakeRequest("errs", "R(x |"));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->code, direct.status().code());
    EXPECT_FALSE(resp->message.empty());
  }
  // Unknown forced backend.
  {
    Request req = h.MakeRequest("errs", "R(x | y) R(y | z)");
    req.forced_backend = "no-such-backend";
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kUnknownBackend);
  }
  // Backend that cannot answer the query.
  {
    Request req = h.MakeRequest("errs", "R(x | y) R(y | z)");
    req.forced_backend = "trivial";
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kCapabilityMismatch);
  }
  // Unknown database.
  {
    StatusOr<Response> resp =
        h.client.Call(h.MakeRequest("no-such-db", "R(x | y) R(y | z)"));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kNotFound);
  }
  // Query over a relation the database lacks.
  {
    StatusOr<Response> resp =
        h.client.Call(h.MakeRequest("errs", "S(x | y) S(y | z)"));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kSchemaMismatch);
  }
  // Mutation with the wrong arity, parity-checked against InsertFacts.
  {
    std::vector<FactSpec> bad = {{"R", {"a", "b", "c"}}};
    Status direct = h.service.InsertFacts("errs", bad);
    ASSERT_EQ(direct.code(), StatusCode::kSchemaMismatch);
    Request req = h.MakeRequest("errs", "");
    req.mutation_kind = MutationKind::kInsert;
    req.mutation = bad;
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, direct.code());
    EXPECT_FALSE(resp->mutated);
  }
  // Deleting a fact that does not exist.
  {
    std::vector<FactSpec> ghost = {{"R", {"zz1", "zz2"}}};
    Status direct = h.service.DeleteFacts("errs", ghost);
    ASSERT_EQ(direct.code(), StatusCode::kNotFound);
    Request req = h.MakeRequest("errs", "");
    req.mutation_kind = MutationKind::kDelete;
    req.mutation = ghost;
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, direct.code());
  }
  // A framing-valid but semantically malformed payload is a
  // *request*-level kCorruptedData error and the connection survives.
  {
    Request req = h.MakeRequest("errs", "");
    req.mutation_kind = MutationKind::kNone;
    req.mutation = {{"R", {"a", "b"}}};  // facts without a mutation kind
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->code, StatusCode::kCorruptedData);
    StatusOr<Response> after =
        h.client.Call(h.MakeRequest("errs", "R(x | y) R(y | z)"));
    ASSERT_TRUE(after.ok()) << "connection must survive a payload error";
    EXPECT_EQ(after->code, StatusCode::kOk);
  }
  // A wrong protocol version is kCapabilityMismatch, echoing the id.
  {
    Request req = h.MakeRequest("errs", "R(x | y) R(y | z)");
    std::string payload = server::EncodeRequest(req);
    payload[0] = static_cast<char>(server::kProtocolVersion + 1);
    StatusOr<Response> resp = RawCall(h.server, Frame(payload));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->code, StatusCode::kCapabilityMismatch);
    EXPECT_EQ(resp->request_id, req.request_id);
  }
  // A bad CRC is connection-fatal: no response, just a hang-up.
  {
    Request req = h.MakeRequest("errs", "R(x | y) R(y | z)");
    std::string frame = Frame(server::EncodeRequest(req));
    frame[frame.size() - 1] ^= 0x5a;  // flip a payload bit; CRC now lies
    StatusOr<Response> resp = RawCall(h.server, frame);
    ASSERT_FALSE(resp.ok());
    EXPECT_EQ(resp.status().code(), StatusCode::kIoError);
  }

  // kUnresolvedClass needs a classifier starved of search budget; that
  // is a Service-wide option, so it gets its own harness.
  {
    ServiceOptions starved;
    starved.tripath_limits.max_candidates = 1;
    Harness h2(starved);
    Rng rng2(78);
    StatusOr<CompiledQuery> q6 =
        h2.service.Compile("R(x | y, z) R(z | x, y)",
                           [] {
                             CompileOptions allow;
                             allow.allow_unresolved = true;
                             return allow;
                           }());
    ASSERT_TRUE(q6.ok());
    ASSERT_TRUE(h2.service
                    .RegisterDatabase(
                        "u", RandomInstance(q6->query(),
                                            InstanceParams{10, 4, 0.6, 0.3},
                                            &rng2))
                    .ok());
    StatusOr<Response> rejected =
        h2.client.Call(h2.MakeRequest("u", "R(x | y, z) R(z | x, y)"));
    ASSERT_TRUE(rejected.ok());
    EXPECT_EQ(rejected->code, StatusCode::kUnresolvedClass);

    Request opt_in = h2.MakeRequest("u", "R(x | y, z) R(z | x, y)");
    opt_in.allow_unresolved = true;
    StatusOr<Response> accepted = h2.client.Call(opt_in);
    ASSERT_TRUE(accepted.ok());
    EXPECT_EQ(accepted->code, StatusCode::kOk);
    EXPECT_EQ(accepted->backend_name, "exhaustive");
    h2.server.Stop();
  }

  ServiceStats stats = h.server.Stats();
  EXPECT_GE(stats.server.decode_errors, 2u);  // bad payload + bad CRC
  h.server.Stop();
}

TEST(ServerDifferentialTest, WireMutationsTrackInProcessShadow) {
  const char* kQuery = "R(x | y) R(y | z)";
  Harness h;
  Service shadow;
  StatusOr<CompiledQuery> wire_q = h.service.Compile(kQuery);
  StatusOr<CompiledQuery> shadow_q = shadow.Compile(kQuery);
  ASSERT_TRUE(wire_q.ok());
  ASSERT_TRUE(shadow_q.ok());

  Rng rng(0xC0FFEE);
  Database seed = ChainInstance(wire_q->query(), 5, 0.5, 0.6, &rng);
  ASSERT_TRUE(h.service.RegisterDatabase("mut", Database(seed)).ok());
  ASSERT_TRUE(shadow.RegisterDatabase("mut", std::move(seed)).ok());

  std::vector<std::vector<FactSpec>> inserted;
  for (int round = 0; round < 30; ++round) {
    bool do_insert = inserted.empty() || round % 3 != 2;
    std::vector<FactSpec> batch;
    if (do_insert) {
      std::string a = "m" + std::to_string(round);
      std::string b = "m" + std::to_string(round + 1);
      batch = {{"R", {a, b}}, {"R", {b, a}}};
    } else {
      batch = inserted.back();
    }

    Status direct = do_insert ? shadow.InsertFacts("mut", batch)
                              : shadow.DeleteFacts("mut", batch);
    ASSERT_TRUE(direct.ok()) << direct.ToString();

    // One wire request carries the mutation *and* the follow-up solve.
    Request req = h.MakeRequest("mut", kQuery);
    req.mutation_kind =
        do_insert ? MutationKind::kInsert : MutationKind::kDelete;
    req.mutation = batch;
    StatusOr<Response> resp = h.client.Call(req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->code, StatusCode::kOk) << resp->message;
    EXPECT_TRUE(resp->mutated);

    if (do_insert) {
      inserted.push_back(batch);
    } else {
      inserted.pop_back();
    }

    StatusOr<SolveReport> expected = shadow.Solve(*shadow_q, "mut");
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(resp->certain, expected->certain) << "round " << round;
    EXPECT_EQ(resp->num_facts, expected->num_facts) << "round " << round;
  }
  // Structural invariants must hold on the wire-mutated database too.
  StatusOr<AuditReport> audit = h.service.AuditDatabase("mut");
  ASSERT_TRUE(audit.ok());
  EXPECT_EQ(audit->total_violations, 0u) << audit->ToString();
  h.server.Stop();
}

}  // namespace
}  // namespace cqa
