// Lifecycle soak (label: soak; excluded from the default ctest run,
// enabled with -DCQA_ENABLE_SOAK=ON): >=10k random mutations against one
// registered database with deliberately tight bounds, asserting
// throughout that
//   - the resident fact-slot count stays within the compaction bound,
//   - the verdict-cache entry count stays within CacheOptions.max_entries
//     (modulo shard rounding) and the solver map within its cap,
//   - delta-solve answers stay identical to rebuild-solve answers and
//     witnesses verify,
//   - under the sat backend with the clause-DB reduction thresholds
//     cranked low, the warm sessions' resident learned-clause count
//     (CdclStats::learned_kept) stays bounded across the whole churn —
//     reduction is actually shedding clauses, not just accumulating.
// The run is durable: every few hundred mutations the process
// "crashes" (a fault plan kills all further I/O, the Service is torn
// down mid-flight) and a fresh Service recovers the database from its
// WAL + snapshots — after which the recovered fact set must equal the
// shadow model exactly (fsync-per-batch: acknowledged means durable)
// and all of the bounds above keep holding across the reopen.
// This is the ISSUE's 100k-churn acceptance scenario scaled to a CI
// budget; bench_churn covers the full-size run.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "api/witness.h"
#include "base/rng.h"
#include "engine/incremental.h"
#include "gen/workloads.h"
#include "store/io.h"

namespace cqa {
namespace {

TEST(SoakTest, BoundsHoldAndAnswersMatchRebuildUnder10kMutations) {
  const char* kQueries[] = {
      "R(x | y) R(y | z)",         // cert2 dispatch.
      "R(x | y, z) R(z | x, y)",   // certk+matching dispatch.
  };
  const char* kForced[] = {"", "exhaustive", "sat"};
  // Generous ceiling for the resident learned-clause gauge: with
  // reduction thresholds of 20/10 and small sparse components, a warm
  // session that sheds clauses stays two orders of magnitude below this;
  // a session that never deletes would blow through it.
  const std::uint64_t kLearnedCeiling = 2048;

  for (int config = 0; config < 6; ++config) {
    const bool sat_config = (config % 3 == 2);
    ServiceOptions options;
    options.compact_dead_ratio = 0.4;
    options.compact_min_slots = 64;
    // Tight caps so eviction (not just compaction) is exercised: the
    // workload's component count exceeds the verdict bound.
    options.verdict_cache = CacheOptions{/*max_entries=*/160, /*max_bytes=*/0};
    options.solver_cache = CacheOptions{/*max_entries=*/4, /*max_bytes=*/0};
    // Small warm-solver pool (forces evictions + counter salvage) and
    // aggressive clause-DB reduction so the learned-memory bound below is
    // load-bearing, not vacuous.
    options.sat_solver_cache = CacheOptions{/*max_entries=*/32, /*max_bytes=*/0};
    options.sat_cdcl.first_reduce_conflicts = 20;
    options.sat_cdcl.reduce_increment = 10;
    options.sat_cdcl.restart_base = 16;
    // Durable, fsync-per-batch: the periodic simulated crashes below may
    // not lose a single acknowledged mutation.
    options.durability.enabled = true;
    options.durability.data_dir =
        ::testing::TempDir() + "cqa_soak_" + std::to_string(config);
    options.durability.snapshot_interval = 256;
    ASSERT_TRUE(store::RemoveDirRecursive(options.durability.data_dir).ok());
    auto service = std::make_unique<Service>(options);

    CompileOptions copts;
    copts.forced_backend = kForced[config % 3];
    StatusOr<CompiledQuery> q =
        service->Compile(kQueries[config / 3], copts);
    ASSERT_TRUE(q.ok()) << q.status().ToString();

    // A pool of candidate facts; roughly half present at any time.
    Rng rng(0x50A7 + config);
    InstanceParams params;
    params.num_facts = 400;
    params.domain_size = 40;  // Sparse: many small components.
    Database pool = RandomInstance(q->query(), params, &rng);
    std::vector<FactSpec> specs;
    for (FactId f = 0; f < pool.NumFacts(); ++f) {
      FactRef fact = pool.fact(f);
      FactSpec spec;
      spec.relation = pool.schema().Relation(fact.relation).name;
      for (ElementId el : fact.args) {
        spec.args.push_back(pool.elements().Name(el));
      }
      specs.push_back(std::move(spec));
    }
    std::vector<bool> present(specs.size(), false);

    Database initial(q->query().schema());
    for (std::size_t i = 0; i < specs.size() / 2; ++i) {
      RelationId rel = initial.schema().Find(specs[i].relation);
      initial.AddFactNamed(rel, specs[i].args);
      present[i] = true;
    }
    ASSERT_TRUE(service->RegisterDatabase("db", std::move(initial)).ok());

    const int kMutations = 2600;  // x6 configs > 15k total.
    std::uint64_t compactions = 0;
    std::uint64_t peak_slots = 0;
    std::uint64_t peak_verdicts = 0;
    std::uint64_t peak_learned = 0;
    // Eviction/CDCL counters are per-Service; the crash cycles below
    // replace the Service, so carry the counts across generations.
    std::uint64_t evictions_before_crashes = 0;
    CdclStats sat_before_crashes;
    for (int step = 0; step < kMutations; ++step) {
      std::size_t pick = rng.Below(specs.size());
      MutationStats mstats;
      Status applied =
          present[pick]
              ? service->DeleteFacts("db", {specs[pick]}, &mstats)
              : service->InsertFacts("db", {specs[pick]}, &mstats);
      ASSERT_TRUE(applied.ok()) << applied.ToString();
      present[pick] = !present[pick];
      compactions += mstats.compactions;

      // Solve every few mutations so the verdict cache keeps turning
      // over; compare against a rebuild periodically (it is the
      // expensive part).
      if (step % 5 == 0) {
        StatusOr<SolveReport> delta = service->Solve(*q, "db");
        ASSERT_TRUE(delta.ok()) << delta.status().ToString();
        if (delta->witness.has_value()) {
          Status verified =
              VerifyWitness(q->query(), *delta->witness->database(),
                            *delta->witness);
          ASSERT_TRUE(verified.ok()) << verified.ToString();
        }
        if (step % 100 == 0) {
          Database rebuild(q->query().schema());
          for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!present[i]) continue;
            RelationId rel = rebuild.schema().Find(specs[i].relation);
            rebuild.AddFactNamed(rel, specs[i].args);
          }
          StatusOr<SolveReport> fresh = service->Solve(*q, rebuild);
          ASSERT_TRUE(fresh.ok());
          ASSERT_EQ(delta->certain, fresh->certain)
              << "config " << config << " step " << step;
        }
      }

      // Periodic simulated crash + reopen: kill all further I/O (the
      // dying Service cannot flush anything on the way out), tear it
      // down mid-flight, recover on a fresh Service, and require the
      // recovered fact set to equal the shadow model exactly —
      // fsync-per-batch means not one acknowledged mutation may be
      // missing. The solver caches restart cold (minus the persisted
      // verdicts), so the bounds below also re-prove themselves from a
      // recovered state.
      if (step % 650 == 649) {
        {
          ServiceStats dying = service->Stats();
          evictions_before_crashes += dying.databases[0].verdicts.evictions;
          sat_before_crashes += dying.databases[0].sat;
        }
        store::FaultPlan plan;
        plan.crash_at_op = 0;
        store::InstallFault(plan);
        service.reset();  // The "crash": destructor I/O all fails.
        store::ClearFault();

        service = std::make_unique<Service>(options);
        Status recovered = service->RecoverDatabase("db");
        ASSERT_TRUE(recovered.ok())
            << "config " << config << " step " << step << ": "
            << recovered.ToString();
        q = service->Compile(kQueries[config / 3], copts);
        ASSERT_TRUE(q.ok());

        StatusOr<std::vector<FactSpec>> listed = service->ListFacts("db");
        ASSERT_TRUE(listed.ok());
        std::set<std::pair<std::string, std::vector<std::string>>> state;
        for (const FactSpec& f : *listed) state.insert({f.relation, f.args});
        std::set<std::pair<std::string, std::vector<std::string>>> shadow;
        for (std::size_t i = 0; i < specs.size(); ++i) {
          if (present[i]) shadow.insert({specs[i].relation, specs[i].args});
        }
        ASSERT_EQ(state, shadow)
            << "config " << config << " step " << step
            << ": recovery lost or invented facts";

        StatusOr<AuditReport> audit = service->AuditDatabase("db");
        ASSERT_TRUE(audit.ok());
        ASSERT_TRUE(audit->ok()) << audit->ToString();
      }

      // Deep audit of every delta-maintained structure (data/audit.h);
      // its per-pass cost is a fresh repartition, so sample it.
      if (step % 100 == 0) {
        StatusOr<AuditReport> audit = service->AuditDatabase("db");
        ASSERT_TRUE(audit.ok()) << audit.status().ToString();
        ASSERT_TRUE(audit->ok())
            << audit->ToString() << "config " << config << " step " << step;
      }

      if (step % 20 == 0) {
        ServiceStats stats = service->Stats();
        ASSERT_EQ(stats.databases.size(), 1u);
        const ServiceStats::DatabaseStats& d = stats.databases[0];
        peak_slots = std::max(peak_slots, d.fact_slots);
        peak_verdicts = std::max(peak_verdicts, d.verdicts.entries);
        // Slot bound: alive/(1-r) plus slack for the batch applied since
        // the trigger last ran.
        ASSERT_LE(d.fact_slots,
                  static_cast<std::uint64_t>(
                      static_cast<double>(d.alive_facts) / 0.6) +
                      options.compact_min_slots)
            << "config " << config << " step " << step;
        // Verdict bound: max_entries rounds up to a shard multiple.
        ASSERT_LE(d.verdicts.entries,
                  options.verdict_cache.max_entries +
                      IncrementalSolver::kNumShards)
            << "config " << config << " step " << step;
        ASSERT_LE(d.solvers.entries, options.solver_cache.max_entries);
        // Learned-memory bound: clause-DB reduction must keep each warm
        // session's resident learned-clause count from growing without
        // bound across the churn. learned_kept is a gauge (clauses
        // currently resident, summed over the database's sessions).
        peak_learned = std::max(peak_learned, d.sat.learned_kept);
        ASSERT_LE(d.sat.learned_kept, kLearnedCeiling)
            << "config " << config << " step " << step
            << ": learned clauses accumulating without reduction";
      }
    }

    // The run must actually have exercised the lifecycle machinery.
    ServiceStats stats = service->Stats();
    EXPECT_GT(compactions, 0u) << "config " << config;
    EXPECT_GT(peak_slots, stats.databases[0].alive_facts)
        << "config " << config;
    EXPECT_GT(peak_verdicts, 0u) << "config " << config;
    EXPECT_GT(evictions_before_crashes +
                  stats.databases[0].verdicts.evictions,
              0u)
        << "config " << config;
    if (sat_config) {
      // The sat configs must have run their warm sessions for real:
      // solves happened, most were warm re-solves, and mutations
      // retracted stale clauses via activation literals.
      CdclStats total_sat = sat_before_crashes;
      total_sat += stats.databases[0].sat;
      EXPECT_GT(total_sat.solves, 0u) << "config " << config;
      EXPECT_GT(total_sat.warm_solves, 0u) << "config " << config;
      EXPECT_GT(total_sat.clauses_retracted, 0u) << "config " << config;
      EXPECT_LE(peak_learned, kLearnedCeiling) << "config " << config;
    }
  }
}

}  // namespace
}  // namespace cqa
