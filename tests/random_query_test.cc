// Randomized integration sweep: random two-atom self-join queries with
// random instances. Checks that
//   (a) the classifier is total and internally coherent (footnote 3 of the
//       paper: 2way-determined <=> condition (1) holds and (2) fails;
//       Theorem 6.1 applies exactly when condition (1) fails),
//   (b) the dispatching solver agrees with brute-force repair enumeration
//       on every random instance, whatever class the query landed in,
//   (c) Cert_k stays sound on arbitrary queries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/certk.h"
#include "algo/exhaustive.h"
#include "base/check.h"
#include "base/rng.h"
#include "classify/classifier.h"
#include "classify/conditions.h"
#include "engine/solver.h"
#include "gen/workloads.h"

#include "make_solver.h"
#include "query/hom.h"
#include "query/query.h"

namespace cqa {
namespace {


/// A random two-atom self-join query: arity 2..4, key length 1..arity-1,
/// positions drawn from a small variable pool.
ConjunctiveQuery RandomTwoAtomQuery(Rng* rng) {
  std::uint32_t arity = 2 + static_cast<std::uint32_t>(rng->Below(3));
  std::uint32_t key_len =
      1 + static_cast<std::uint32_t>(rng->Below(arity));
  std::uint32_t pool = 2 + static_cast<std::uint32_t>(rng->Below(4));
  Schema schema;
  RelationId rel = schema.AddRelation("R", arity, key_len);
  std::vector<std::string> names;
  for (std::uint32_t v = 0; v < pool; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  auto random_atom = [&] {
    QueryAtom atom;
    atom.relation = rel;
    for (std::uint32_t i = 0; i < arity; ++i) {
      atom.vars.push_back(static_cast<VarId>(rng->Below(pool)));
    }
    return atom;
  };
  return ConjunctiveQuery(std::move(schema), std::move(names),
                          {random_atom(), random_atom()});
}

TripathSearchLimits FastLimits() {
  TripathSearchLimits limits;
  limits.max_up = 1;
  limits.max_down = 1;
  limits.max_merges = 1;
  limits.full_partition_threshold = 4;
  limits.max_candidates = 20000;
  return limits;
}

class RandomQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomQueryTest, ClassifierIsTotalAndCoherent) {
  Rng rng(0xAB00 + GetParam());
  for (int round = 0; round < 30; ++round) {
    ConjunctiveQuery q = RandomTwoAtomQuery(&rng);
    Classification c = ClassifyQuery(q, FastLimits());
    // Complexity assignment is consistent with the class.
    switch (c.query_class) {
      case QueryClass::kTrivial:
      case QueryClass::kPTimeCert2:
      case QueryClass::kPTimeNoTripath:
      case QueryClass::kPTimeTriangleOnly:
      case QueryClass::kSjfFirstOrder:
      case QueryClass::kSjfPTime:
        EXPECT_EQ(c.complexity, Complexity::kPTime) << q.ToString();
        break;
      case QueryClass::kCoNPHardCondition:
      case QueryClass::kCoNPForkTripath:
      case QueryClass::kSjfCoNPComplete:
        EXPECT_EQ(c.complexity, Complexity::kCoNPComplete) << q.ToString();
        break;
      case QueryClass::kUnresolved:
        EXPECT_EQ(c.complexity, Complexity::kUnknown) << q.ToString();
        break;
    }
    // Footnote 3: 2way-determined iff (1) holds and (2) fails, for
    // non-trivial queries.
    if (ClassifyTrivial(q) == TrivialReason::kNotTrivial) {
      EXPECT_EQ(Is2WayDetermined(q),
                Theorem42Condition1(q) && !Theorem42Condition2(q))
          << q.ToString();
      EXPECT_EQ(Theorem61Applies(q), !Theorem42Condition1(q))
          << q.ToString();
    }
  }
}

TEST_P(RandomQueryTest, SolverAgreesWithEnumeration) {
  Rng rng(0xCD00 + GetParam());
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery q = RandomTwoAtomQuery(&rng);
    SolverOptions options;
    options.tripath_limits = FastLimits();
    CertainSolver solver = MakeSolver(q, options);
    for (int inst = 0; inst < 6; ++inst) {
      InstanceParams params;
      params.num_facts = 10;
      params.domain_size = 3;
      Database db = RandomInstance(q, params, &rng);
      if (db.CountRepairs() > 1e5) continue;
      EXPECT_EQ(solver.Solve(db).certain, CertainByEnumeration(q, db))
          << q.ToString() << "\n"
          << ToString(solver.classification().query_class) << "\n"
          << db.ToString();
    }
  }
}

TEST_P(RandomQueryTest, CertKSoundOnRandomQueries) {
  Rng rng(0xEF00 + GetParam());
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery q = RandomTwoAtomQuery(&rng);
    InstanceParams params;
    params.num_facts = 10;
    params.domain_size = 3;
    Database db = RandomInstance(q, params, &rng);
    if (db.CountRepairs() > 1e5) continue;
    if (CertK(q, db, 2)) {
      EXPECT_TRUE(CertainByEnumeration(q, db))
          << q.ToString() << "\n"
          << db.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace cqa
