// Tests for src/algo: the exhaustive baseline, Cert_k, matching(q), the
// combined algorithm, and the semantic lemmas they rely on (zig-zag
// property of Lemma 6.2, the two-solutions bound of Lemma 7.1).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "algo/certk.h"
#include "algo/combined.h"
#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "base/rng.h"
#include "classify/conditions.h"
#include "data/repair.h"
#include "gen/workloads.h"
#include "query/eval.h"
#include "query/query.h"
#include "query/solution_graph.h"

namespace cqa {
namespace {

constexpr const char* kQ1 = "R(x, u | x, v) R(v, y | u, y)";
constexpr const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";
constexpr const char* kQ3 = "R(x | y) R(y | z)";
constexpr const char* kQ4 = "R(x, x | u, v) R(x, y | u, x)";
constexpr const char* kQ5 = "R(x | y, x) R(y | x, u)";
constexpr const char* kQ6 = "R(x | y, z) R(z | x, y)";

Database SmallRandom(const ConjunctiveQuery& q, Rng* rng,
                     std::uint32_t num_facts = 14,
                     std::uint32_t domain = 3) {
  InstanceParams params;
  params.num_facts = num_facts;
  params.domain_size = domain;
  return RandomInstance(q, params, rng);
}

// --- Exhaustive baseline -------------------------------------------------

TEST(Exhaustive, CertainWhenEveryRepairSatisfies) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  EXPECT_TRUE(ExhaustiveCertain(q3, db));
}

TEST(Exhaustive, NotCertainWithEscapeFact) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "a z");  // Repair picking (a z) has no solution.
  EXPECT_FALSE(ExhaustiveCertain(q3, db));
}

TEST(Exhaustive, EmptyDatabaseNotCertain) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  EXPECT_FALSE(ExhaustiveCertain(q3, db));
  EXPECT_FALSE(CertainByEnumeration(q3, db));
}

TEST(Exhaustive, SelfSolutionBlockForcesCertain) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a a");  // q(a a): every repair containing it satisfies.
  EXPECT_TRUE(ExhaustiveCertain(q3, db));
  db.AddFactStr(0, "a z");  // Now the block offers an escape.
  EXPECT_FALSE(ExhaustiveCertain(q3, db));
}

class ExhaustiveAgreesTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ExhaustiveAgreesTest, BacktrackingMatchesEnumeration) {
  auto q = ParseQuery(GetParam());
  Rng rng(0xABCD);
  for (int round = 0; round < 40; ++round) {
    Database db = SmallRandom(q, &rng);
    if (db.CountRepairs() > 1e6) continue;
    EXPECT_EQ(ExhaustiveCertain(q, db), CertainByEnumeration(q, db))
        << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, ExhaustiveAgreesTest,
                         ::testing::Values(kQ1, kQ2, kQ3, kQ4, kQ5, kQ6));

// --- Cert_k ---------------------------------------------------------------

TEST(CertK, YesOnUnavoidableSolution) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  EXPECT_TRUE(CertK(q3, db, 2));
}

TEST(CertK, NoOnEscapableSolution) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b z");
  // Both repairs satisfy q (a->b then b->c or b->z? (b z) gives q(ab)?
  // q3(R(a b), R(b z)) holds: y = b. So still certain.
  EXPECT_TRUE(CertK(q3, db, 2));
  db.AddFactStr(0, "a w");  // Escape for the first block.
  EXPECT_FALSE(CertK(q3, db, 2));
}

TEST(CertK, BlockRuleDerivesEmptySet) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  // Block k: {R(k a), R(k b)}; both continuations present, so q is certain
  // whatever the repair picks.
  db.AddFactStr(0, "k a");
  db.AddFactStr(0, "k b");
  db.AddFactStr(0, "a c");
  db.AddFactStr(0, "b d");
  EXPECT_TRUE(CertK(q3, db, 2));
  EXPECT_TRUE(ExhaustiveCertain(q3, db));
}

TEST(CertK, Cert1WeakerThanCert2) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "k a");
  db.AddFactStr(0, "k b");
  db.AddFactStr(0, "a c");
  db.AddFactStr(0, "b d");
  // Certain, provable with pairs but not with singletons alone.
  EXPECT_FALSE(CertK(q3, db, 1));
  EXPECT_TRUE(CertK(q3, db, 2));
}

class CertKSoundTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CertKSoundTest, CertKImpliesCertain) {
  auto q = ParseQuery(GetParam());
  Rng rng(0xBEEF);
  for (int round = 0; round < 30; ++round) {
    Database db = SmallRandom(q, &rng);
    for (std::uint32_t k = 1; k <= 3; ++k) {
      if (CertK(q, db, k)) {
        EXPECT_TRUE(ExhaustiveCertain(q, db))
            << "unsound Cert_" << k << " on\n"
            << db.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CertKSoundTest,
                         ::testing::Values(kQ1, kQ2, kQ3, kQ4, kQ5, kQ6));

class CertKMonotoneTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CertKMonotoneTest, AnswerMonotoneInK) {
  auto q = ParseQuery(GetParam());
  Rng rng(0xF00D);
  for (int round = 0; round < 20; ++round) {
    Database db = SmallRandom(q, &rng);
    bool prev = CertK(q, db, 1);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      bool cur = CertK(q, db, k);
      EXPECT_TRUE(!prev || cur) << "Cert_k not monotone in k";
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, CertKMonotoneTest,
                         ::testing::Values(kQ2, kQ3, kQ5, kQ6));

// Theorem 6.1: Cert_2 computes certain(q) exactly for q3 and q4.
class Theorem61Test : public ::testing::TestWithParam<const char*> {};

TEST_P(Theorem61Test, Cert2IsExact) {
  auto q = ParseQuery(GetParam());
  ASSERT_FALSE(Theorem42Condition1(q));
  Rng rng(0x61616161);
  int certain_count = 0;
  for (int round = 0; round < 60; ++round) {
    Database db = SmallRandom(q, &rng, 12, 3);
    bool expected = ExhaustiveCertain(q, db);
    certain_count += expected ? 1 : 0;
    EXPECT_EQ(CertK(q, db, 2), expected) << db.ToString();
  }
  // The workload must exercise both answers for the test to mean much.
  EXPECT_GT(certain_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Theorem61Queries, Theorem61Test,
                         ::testing::Values(kQ3, kQ4, "R(x, x | y) R(x, y | z)",
                                           "R(x, y | z) R(y, x | w)"));

// --- matching(q) -----------------------------------------------------------

TEST(Matching, NotMatchingImpliesCertainOnQ6Triangle) {
  auto q6 = ParseQuery(kQ6);
  Database db(q6.schema());
  db.AddFactStr(0, "a b c");
  db.AddFactStr(0, "c a b");
  db.AddFactStr(0, "b c a");
  // Three singleton blocks forming one quasi-clique: only 1 clique for 3
  // blocks, no saturating matching: certain.
  MatchingStats stats;
  EXPECT_FALSE(MatchingAlgorithm(q6, db, &stats));
  EXPECT_TRUE(stats.clique_database);
  EXPECT_TRUE(ExhaustiveCertain(q6, db));
}

TEST(Matching, SaturationWhenBlocksHaveEscapes) {
  auto q6 = ParseQuery(kQ6);
  Database db(q6.schema());
  db.AddFactStr(0, "a b c");
  db.AddFactStr(0, "c a b");
  db.AddFactStr(0, "b c a");
  // Blockmates that participate in no solution: each block can escape.
  db.AddFactStr(0, "a p q");
  db.AddFactStr(0, "c r s");
  db.AddFactStr(0, "b t u");
  EXPECT_TRUE(MatchingAlgorithm(q6, db));
  EXPECT_FALSE(ExhaustiveCertain(q6, db));
}

class MatchingSoundTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MatchingSoundTest, NotMatchingImpliesCertain) {
  auto q = ParseQuery(GetParam());
  Rng rng(0x1234);
  for (int round = 0; round < 40; ++round) {
    Database db = SmallRandom(q, &rng);
    if (NotMatchingCertain(q, db)) {
      EXPECT_TRUE(ExhaustiveCertain(q, db)) << db.ToString();
    }
  }
}

// Proposition 10.2 assumes 2way-determined queries; q2, q5, q6 qualify.
INSTANTIATE_TEST_SUITE_P(TwoWayDetermined, MatchingSoundTest,
                         ::testing::Values(kQ2, kQ5, kQ6));

TEST(Matching, ExactOnCliqueDatabasesForQ6) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(0x5555);
  int checked = 0;
  for (int round = 0; round < 80; ++round) {
    Database db = SmallRandom(q6, &rng, 12, 3);
    SolutionGraph sg = BuildSolutionGraph(q6, db);
    if (!IsCliqueDatabase(sg, db)) continue;
    ++checked;
    EXPECT_EQ(NotMatchingCertain(q6, db), ExhaustiveCertain(q6, db))
        << db.ToString();
  }
  EXPECT_GT(checked, 0);
}

// The "glued triangles" instance: both rotation families of (1,2,3) over
// three two-fact blocks. Every repair keeps two facts of the same family
// (pigeonhole), which always form a solution: certain. The solution graph
// is two disjoint quasi-cliques for three blocks, so matching cannot
// saturate: ¬matching certifies it.
Database GluedTriangles(const ConjunctiveQuery& q6) {
  Database db(q6.schema());
  db.AddFactStr(0, "e1 e2 e3");  // A-family: rotations of (1,2,3).
  db.AddFactStr(0, "e3 e1 e2");
  db.AddFactStr(0, "e2 e3 e1");
  db.AddFactStr(0, "e1 e3 e2");  // B-family: rotations of (1,3,2).
  db.AddFactStr(0, "e2 e1 e3");
  db.AddFactStr(0, "e3 e2 e1");
  return db;
}

// Theorem 10.1 separation (k = 1 witness): the glued-triangles instance is
// certain, Cert_1 cannot prove it (no singleton ever enters Delta_1), and
// the matching algorithm can. (The full Theorem 10.1 statement is per-k
// with instances growing in k.)
TEST(Matching, TriangleSeparatesCertKFromMatching) {
  auto q6 = ParseQuery(kQ6);
  Database db = GluedTriangles(q6);
  EXPECT_EQ(db.blocks().size(), 3u);
  EXPECT_TRUE(ExhaustiveCertain(q6, db));
  EXPECT_TRUE(NotMatchingCertain(q6, db));
  EXPECT_FALSE(CertK(q6, db, 1));
}

TEST(Matching, GluedTrianglesSolutionGraphShape) {
  auto q6 = ParseQuery(kQ6);
  Database db = GluedTriangles(q6);
  SolutionGraph sg = BuildSolutionGraph(q6, db);
  EXPECT_EQ(sg.components.count, 2u);  // One per rotation family.
  EXPECT_TRUE(IsCliqueDatabase(sg, db));
}

// --- Combined algorithm (Theorem 10.5) -------------------------------------

TEST(Combined, ExactOnQ6RandomInstances) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(0x6666);
  for (int round = 0; round < 60; ++round) {
    Database db = SmallRandom(q6, &rng, 12, 3);
    bool expected = ExhaustiveCertain(q6, db);
    EXPECT_EQ(CombinedCertain(q6, db, 4), expected) << db.ToString();
  }
}

TEST(Combined, ExactOnCertainSeededQ6Instances) {
  // Random noise around the glued-triangles core: the core keeps the
  // instance certain, so the yes-branch of the combined algorithm is
  // exercised on nontrivial databases.
  auto q6 = ParseQuery(kQ6);
  Rng rng(0x6667);
  int certain_count = 0;
  for (int round = 0; round < 20; ++round) {
    Database db = GluedTriangles(q6);
    InstanceParams params;
    params.num_facts = 10;
    params.domain_size = 4;
    Database noise = RandomInstance(q6, params, &rng);
    for (FactId f = 0; f < noise.NumFacts(); ++f) {
      FactRef fact = noise.fact(f);
      std::vector<ElementId> args;
      for (ElementId el : fact.args) {
        // Fresh namespace so the noise cannot break the core's blocks.
        args.push_back(
            db.elements().Intern("z" + noise.elements().Name(el)));
      }
      db.AddFact(fact.relation, std::move(args));
    }
    bool expected = ExhaustiveCertain(q6, db);
    certain_count += expected ? 1 : 0;
    EXPECT_EQ(CombinedCertain(q6, db, 4), expected) << db.ToString();
  }
  EXPECT_GT(certain_count, 0);
}

TEST(Combined, DecisionReportsComponent) {
  auto q6 = ParseQuery(kQ6);
  Database db = GluedTriangles(q6);
  // k = 1 is too weak, so the matching component must decide.
  CombinedDecision decision;
  EXPECT_TRUE(CombinedCertain(q6, db, 1, &decision));
  EXPECT_EQ(decision, CombinedDecision::kNotMatching);
}

TEST(Combined, TheoreticalBoundFormula) {
  // l = 1: kappa = 1, k = 2^3 + 0 = 8.
  EXPECT_EQ(TheoreticalCertKBound(1), 8u);
  // l = 2: kappa = 4, k = 2^9 + 3 = 515.
  EXPECT_EQ(TheoreticalCertKBound(2), 515u);
}

// --- Semantic lemmas --------------------------------------------------------

// Lemma 7.1: for 2way-determined q, if q(a b) and q(a c) then b ~ c; if
// q(a b) and q(c b) then c ~ a.
class Lemma71Test : public ::testing::TestWithParam<const char*> {};

TEST_P(Lemma71Test, SolutionsDeterminedUpToKeyEquality) {
  auto q = ParseQuery(GetParam());
  ASSERT_TRUE(Is2WayDetermined(q));
  Rng rng(0x7171);
  for (int round = 0; round < 20; ++round) {
    Database db = SmallRandom(q, &rng, 16, 3);
    SolutionSet s = ComputeSolutions(q, db);
    for (const auto& [a, b] : s.pairs) {
      for (const auto& [a2, c] : s.pairs) {
        if (a == a2) {
          EXPECT_TRUE(db.KeyEqual(b, c)) << db.ToString();
        }
        if (b == c) {
          EXPECT_TRUE(db.KeyEqual(a, a2)) << db.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoWayDetermined, Lemma71Test,
                         ::testing::Values(kQ2, kQ5, kQ6));

// Lemma 6.2 (zig-zag): for q with the Theorem 6.1 hypothesis, if q(a b),
// q(c b') with b ~ b', a !~ c, a != b, then q(a b').
class ZigZagTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ZigZagTest, ZigZagPropertyHolds) {
  auto q = ParseQuery(GetParam());
  ASSERT_TRUE(Theorem61Hypothesis(q));
  Rng rng(0x2162);
  for (int round = 0; round < 15; ++round) {
    Database db = SmallRandom(q, &rng, 14, 3);
    RelationBinding binding(q, db);
    SolutionSet s = ComputeSolutions(q, db);
    for (const auto& [a, b] : s.pairs) {
      for (const auto& [c, bp] : s.pairs) {
        if (!db.KeyEqual(b, bp)) continue;
        if (db.KeyEqual(a, c) || a == b) continue;
        EXPECT_TRUE(IsSolution(q, binding, db, a, bp))
            << "zig-zag violated\n"
            << db.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Theorem61Queries, ZigZagTest,
                         ::testing::Values(kQ3, kQ4,
                                           "R(x, y | z) R(y, x | w)"));

// --- Stats plumbing ---------------------------------------------------------

TEST(Stats, ExhaustiveReportsNodes) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  ExhaustiveStats stats;
  ExhaustiveCertain(q3, db, &stats);
  EXPECT_GT(stats.nodes_explored, 0u);
}

TEST(Stats, CertKReportsAntichain) {
  auto q3 = ParseQuery(kQ3);
  Database db(q3.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  CertKStats stats;
  CertK(q3, db, 2, &stats);
  EXPECT_GT(stats.minimal_sets, 0u);
}

}  // namespace
}  // namespace cqa
