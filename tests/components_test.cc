// Tests for the q-connected partition (Proposition 10.6) and the repair
// sampling baseline.

#include <gtest/gtest.h>

#include "algo/certk.h"
#include "algo/components.h"
#include "algo/exhaustive.h"
#include "algo/matching.h"
#include "algo/sampling.h"
#include "base/rng.h"
#include "gen/workloads.h"
#include "query/query.h"
#include "query/solution_graph.h"
#include "tripath/search.h"

namespace cqa {
namespace {

constexpr const char* kQ2 = "R(x, u | x, y) R(u, y | x, z)";
constexpr const char* kQ5 = "R(x | y, x) R(y | x, u)";
constexpr const char* kQ6 = "R(x | y, z) R(z | x, y)";

Database SmallRandom(const ConjunctiveQuery& q, Rng* rng) {
  InstanceParams params;
  params.num_facts = 16;
  params.domain_size = 3;
  return RandomInstance(q, params, rng);
}

TEST(Components, PartitionCoversAllFacts) {
  auto q = ParseQuery(kQ6);
  Rng rng(0xC0);
  Database db = SmallRandom(q, &rng);
  auto comps = QConnectedComponents(q, db);
  std::size_t total = 0;
  for (const auto& c : comps) total += c.db.NumFacts();
  EXPECT_EQ(total, db.NumFacts());
}

TEST(Components, BlocksNeverSplitAcrossComponents) {
  auto q = ParseQuery(kQ6);
  Rng rng(0xC1);
  Database db = SmallRandom(q, &rng);
  auto comps = QConnectedComponents(q, db);
  // Map original fact -> component; key-equal facts must agree.
  std::vector<int> comp_of(db.NumFacts(), -1);
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    for (FactId orig : comps[ci].original_facts) {
      comp_of[orig] = static_cast<int>(ci);
    }
  }
  for (FactId a = 0; a < db.NumFacts(); ++a) {
    for (FactId b = 0; b < db.NumFacts(); ++b) {
      if (db.KeyEqual(a, b)) {
        EXPECT_EQ(comp_of[a], comp_of[b]);
      }
    }
  }
}

TEST(Components, SolutionsStayWithinComponents) {
  auto q = ParseQuery(kQ2);
  Rng rng(0xC2);
  Database db = SmallRandom(q, &rng);
  auto comps = QConnectedComponents(q, db);
  std::vector<int> comp_of(db.NumFacts(), -1);
  for (std::size_t ci = 0; ci < comps.size(); ++ci) {
    for (FactId orig : comps[ci].original_facts) {
      comp_of[orig] = static_cast<int>(ci);
    }
  }
  SolutionSet s = ComputeSolutions(q, db);
  for (const auto& [a, b] : s.pairs) {
    EXPECT_EQ(comp_of[a], comp_of[b]);
  }
}

// Property (2) of Proposition 10.6: D certain iff some component certain.
class ComponentsProp2Test : public ::testing::TestWithParam<const char*> {};

TEST_P(ComponentsProp2Test, CertainIffSomeComponentCertain) {
  auto q = ParseQuery(GetParam());
  Rng rng(0xC3);
  for (int round = 0; round < 25; ++round) {
    Database db = SmallRandom(q, &rng);
    bool whole = ExhaustiveCertain(q, db);
    bool any_component = false;
    for (const auto& comp : QConnectedComponents(q, db)) {
      if (ExhaustiveCertain(q, comp.db)) {
        any_component = true;
        break;
      }
    }
    EXPECT_EQ(whole, any_component) << db.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(TwoWayDetermined, ComponentsProp2Test,
                         ::testing::Values(kQ2, kQ5, kQ6));

// Property (4): if D |= matching(q) then all components |= matching(q).
TEST(Components, MatchingRestrictsToComponents) {
  auto q = ParseQuery(kQ6);
  Rng rng(0xC4);
  for (int round = 0; round < 25; ++round) {
    Database db = SmallRandom(q, &rng);
    if (!MatchingAlgorithm(q, db)) continue;
    for (const auto& comp : QConnectedComponents(q, db)) {
      EXPECT_TRUE(MatchingAlgorithm(q, comp.db)) << db.ToString();
    }
  }
}

// Property (3): component-level Cert_k lifts to the whole database.
TEST(Components, CertKLiftsFromComponents) {
  auto q = ParseQuery(kQ6);
  Rng rng(0xC5);
  for (int round = 0; round < 25; ++round) {
    Database db = SmallRandom(q, &rng);
    for (const auto& comp : QConnectedComponents(q, db)) {
      if (CertK(q, comp.db, 3)) {
        EXPECT_TRUE(CertK(q, db, 3)) << db.ToString();
        break;
      }
    }
  }
}

// Property (1): without fork-tripaths, every component is clique or
// tripath-free. We verify the clique half observationally for q6.
TEST(Components, Q6ComponentsAreCliqueDatabases) {
  auto q6 = ParseQuery(kQ6);
  ASSERT_FALSE(SearchTripaths(q6).HasFork());
  Rng rng(0xC6);
  for (int round = 0; round < 10; ++round) {
    Database db = SmallRandom(q6, &rng);
    for (const auto& comp : QConnectedComponents(q6, db)) {
      SolutionGraph sg = BuildSolutionGraph(q6, comp.db);
      // q6 is a clique-query: every component must be a clique-database.
      EXPECT_TRUE(IsCliqueDatabase(sg, comp.db)) << comp.db.ToString();
    }
  }
}

TEST(Components, ComponentwiseSolverAgreesOnQ6) {
  auto q6 = ParseQuery(kQ6);
  Rng rng(0xC7);
  for (int round = 0; round < 30; ++round) {
    Database db = SmallRandom(q6, &rng);
    EXPECT_EQ(ComponentwiseCertain(q6, db, 3), ExhaustiveCertain(q6, db))
        << db.ToString();
  }
}

// --- Sampling ---------------------------------------------------------------

TEST(Sampling, FalsifierProvesNotCertain) {
  auto q = ParseQuery(kQ6);
  Rng rng(0x5A);
  for (int round = 0; round < 20; ++round) {
    Database db = SmallRandom(q, &rng);
    SamplingResult r = SampleRepairs(q, db, 64, round);
    if (r.found_falsifier) {
      EXPECT_FALSE(ExhaustiveCertain(q, db)) << db.ToString();
    }
  }
}

TEST(Sampling, CertainInstancesAlwaysSatisfy) {
  auto q = ParseQuery(kQ6);
  Database db(q.schema());
  db.AddFactStr(0, "a b c");
  db.AddFactStr(0, "c a b");
  db.AddFactStr(0, "b c a");
  SamplingResult r = SampleRepairs(q, db, 32, 7);
  EXPECT_FALSE(r.found_falsifier);
  EXPECT_EQ(r.satisfying, r.samples);
  EXPECT_DOUBLE_EQ(r.SatisfyingFraction(), 1.0);
}

TEST(Sampling, EarlyStopOnFalsifier) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");  // No solution at all: every repair falsifies.
  SamplingResult r = SampleRepairs(q, db, 1000, 3, /*stop_at_falsifier=*/true);
  EXPECT_TRUE(r.found_falsifier);
  EXPECT_EQ(r.samples, 1u);
}

}  // namespace
}  // namespace cqa
