// Witness soundness on random workloads: every non-certain SolveReport
// whose backend supports Explain must carry a witness, the witness must
// be a repair that falsifies the query (checked by VerifyWitness, which
// uses only the evaluator), and the report's answer must agree with the
// brute-force repair-enumeration ground truth. The acceptance bar is at
// least 100 verified non-certain instances across the witness-bearing
// backends (exhaustive, sat, trivial).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "algo/exhaustive.h"
#include "api/service.h"
#include "base/rng.h"
#include "gen/workloads.h"

namespace cqa {
namespace {

struct WitnessCase {
  const char* query;
  const char* backend;
};

Database SmallInstance(const ConjunctiveQuery& q, Rng* rng) {
  InstanceParams params;
  params.num_facts = 14;
  params.domain_size = 3;
  return RandomInstance(q, params, rng);
}

TEST(WitnessTest, NonCertainReportsCarryVerifiedWitnesses) {
  // Queries across the dichotomy (trivial, PTime, coNP classes), each
  // answered by every witness-bearing backend that supports it.
  const WitnessCase kCases[] = {
      {"R(x | y) R(y | z)", "exhaustive"},
      {"R(x | y) R(y | z)", "sat"},
      {"R(x | y, x) R(y | x, u)", "exhaustive"},
      {"R(x | y, x) R(y | x, u)", "sat"},
      {"R(x | y, z) R(z | x, y)", "exhaustive"},
      {"R(x | y, z) R(z | x, y)", "sat"},
      {"R(x, u | x, y) R(u, y | x, z)", "exhaustive"},
      {"R(x, u | x, y) R(u, y | x, z)", "sat"},
      {"R(x | y) R(y | y)", "trivial"},
      {"R(x | y) R(y | y)", "exhaustive"},
      {"R(x | y) R(y | y)", "sat"},
  };

  Service service;
  std::size_t non_certain_verified = 0;
  for (const WitnessCase& c : kCases) {
    CompileOptions options;
    options.forced_backend = c.backend;
    StatusOr<CompiledQuery> q = service.Compile(c.query, options);
    ASSERT_TRUE(q.ok()) << c.query << " via " << c.backend << ": "
                        << q.status().ToString();
    Rng rng(0x8171e55);
    for (int round = 0; round < 25; ++round) {
      Database db = SmallInstance(q->query(), &rng);
      StatusOr<SolveReport> report = service.Solve(*q, db);
      ASSERT_TRUE(report.ok()) << report.status().ToString();

      bool truth = CertainByEnumeration(q->query(), db);
      EXPECT_EQ(report->certain, truth)
          << c.query << " via " << c.backend << "\n" << db.ToString();

      if (report->certain) {
        EXPECT_FALSE(report->witness.has_value())
            << "witness on a certain answer (" << c.query << ")";
        continue;
      }
      // These backends always explain their non-certain answers.
      ASSERT_TRUE(report->witness.has_value())
          << c.query << " via " << c.backend << "\n" << db.ToString();
      Status verified = VerifyWitness(q->query(), db, *report->witness);
      EXPECT_TRUE(verified.ok())
          << verified.ToString() << "\n" << c.query << " via " << c.backend
          << "\n" << db.ToString();
      if (verified.ok()) ++non_certain_verified;
    }
  }
  // The ISSUE acceptance bar: >= 100 verified non-certain witnesses.
  EXPECT_GE(non_certain_verified, 100u);
}

TEST(WitnessTest, CertKFamilyReportsNoWitness) {
  Service service;
  StatusOr<CompiledQuery> q = service.Compile("R(x | y) R(y | z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->backend_name(), "cert2");
  Rng rng(0xC47);
  for (int round = 0; round < 10; ++round) {
    Database db = SmallInstance(q->query(), &rng);
    StatusOr<SolveReport> report = service.Solve(*q, db);
    ASSERT_TRUE(report.ok());
    // The fixpoint decides without materializing a repair.
    EXPECT_FALSE(report->witness.has_value());
  }
}

TEST(WitnessTest, ExplainDisabledByServiceOption) {
  ServiceOptions options;
  options.explain_non_certain = false;
  Service service(options);
  CompileOptions forced;
  forced.forced_backend = "exhaustive";
  StatusOr<CompiledQuery> q =
      service.Compile("R(x | y) R(y | z)", forced);
  ASSERT_TRUE(q.ok());
  Database db(q->query().schema());
  db.AddFactStr(0, "a b");  // No join partner: not certain.
  StatusOr<SolveReport> report = service.Solve(*q, db);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->certain);
  EXPECT_FALSE(report->witness.has_value());
}

TEST(WitnessTest, VerifyWitnessRejectsBadRepairs) {
  auto q = ParseQuery("R(x | y) R(y | z)");
  Database db(q.schema());
  db.AddFactStr(0, "a b");
  db.AddFactStr(0, "b c");
  db.AddFactStr(0, "b d");

  // Wrong database binding.
  Database other(q.schema());
  other.AddFactStr(0, "a b");
  Repair foreign(&other, {0});
  EXPECT_EQ(VerifyWitness(q, db, foreign).code(),
            StatusCode::kInvalidArgument);

  // Wrong choice-vector length.
  Repair short_choice(&db, {0});
  EXPECT_EQ(VerifyWitness(q, db, short_choice).code(),
            StatusCode::kInvalidArgument);

  // Out-of-range choice.
  Repair out_of_range(&db, {5, 0});
  EXPECT_EQ(VerifyWitness(q, db, out_of_range).code(),
            StatusCode::kInvalidArgument);

  // A repair that satisfies the query is not a falsifying witness:
  // {R(a|b), R(b|c)} satisfies q.
  Repair satisfying(&db, {0, 0});
  EXPECT_EQ(VerifyWitness(q, db, satisfying).code(),
            StatusCode::kInvalidArgument);

  // Schema mismatch dominates.
  Schema wrong;
  wrong.AddRelation("S", 2, 1);
  Database wrong_db(wrong);
  Repair any(&wrong_db, {});
  EXPECT_EQ(VerifyWitness(q, wrong_db, any).code(),
            StatusCode::kSchemaMismatch);
}

}  // namespace
}  // namespace cqa
